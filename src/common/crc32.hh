/**
 * @file
 * CRC-32C (Castagnoli) over byte spans.
 *
 * Used by the epoch journal and the shipping codec to guard every
 * frame: a torn tail or a flipped bit yields a CRC mismatch, so
 * recovery can distinguish the committed prefix from damage without
 * trusting any frame contents.
 *
 * Two implementations of the same function:
 *  - crc32cScalar(): table-driven, one table per process, portable.
 *  - a hardware path using SSE4.2 `crc32` instructions, selected at
 *    runtime by cpuid (see crc32.cc) and compiled in only on x86-64
 *    builds without DP_NO_HW_CRC.
 *
 * crc32c() dispatches between them. Both produce bit-identical
 * results for every (bytes, seed) input — CRC-32C is one fixed
 * function — which common_test pins with known-answer vectors,
 * seed-chaining sweeps, and hw/sw cross-checks. Artifact bytes
 * therefore never depend on which path a build or a machine takes.
 */

#ifndef DP_COMMON_CRC32_HH
#define DP_COMMON_CRC32_HH

#include <array>
#include <cstdint>
#include <span>

namespace dp
{

namespace detail
{

inline const std::array<std::uint32_t, 256> &
crc32cTable()
{
    static const std::array<std::uint32_t, 256> table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0x82f63b78u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    return table;
}

} // namespace detail

/** Table-driven CRC-32C of @p bytes, continuing from @p seed (0 to
 *  start). The portable reference path; crc32c() is the entry point. */
inline std::uint32_t
crc32cScalar(std::span<const std::uint8_t> bytes, std::uint32_t seed = 0)
{
    const auto &table = detail::crc32cTable();
    std::uint32_t c = ~seed;
    for (std::uint8_t b : bytes)
        c = table[(c ^ b) & 0xff] ^ (c >> 8);
    return ~c;
}

/** True when the SSE4.2 hardware CRC path is compiled in and the CPU
 *  supports it (cpuid probed once per process). */
bool crc32cHwAvailable();

/** Force crc32c() onto the table path even when hardware is available
 *  (identity tests and the ci-speed fallback checks). Not thread-safe
 *  against concurrent crc32c() calls; flip it between sessions. */
void crc32cForceScalar(bool force);

/** "sse4.2" or "table": the path crc32c() currently dispatches to. */
const char *crc32cBackendName();

/** CRC-32C of @p bytes, continuing from @p seed (0 to start). Uses the
 *  hardware path when available, the table otherwise; both paths are
 *  bit-identical. */
std::uint32_t crc32c(std::span<const std::uint8_t> bytes,
                     std::uint32_t seed = 0);

} // namespace dp

#endif // DP_COMMON_CRC32_HH
