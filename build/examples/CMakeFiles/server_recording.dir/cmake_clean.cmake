file(REMOVE_RECURSE
  "CMakeFiles/server_recording.dir/server_recording.cpp.o"
  "CMakeFiles/server_recording.dir/server_recording.cpp.o.d"
  "server_recording"
  "server_recording.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/server_recording.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
