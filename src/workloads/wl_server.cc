/**
 * @file
 * Server workloads: apache (request queue + worker pool) and mysql
 * (lock-striped key-value store).
 */

#include "workloads/factories.hh"

#include "common/logging.hh"
#include "workloads/wl_common.hh"

namespace dp::workloads
{

using enum Reg;
namespace lib = dp::asmlib;

WorkloadBundle
makeApache(const WorkloadParams &p)
{
    const std::uint64_t requests = 48 * p.scale;
    const std::int64_t ringMask = 511;
    const Addr qlock = wlLockBase + 8;
    const Addr tailAddr = wlGlobals + gQueueTail;

    Assembler a;
    Label worker = a.newLabel();

    // ---- main: listener thread ----
    emitSpawnLoop(a, p.threads, worker);

    // Produce `requests` requests, then one poison pill (~0) per
    // worker. Request arrival is paced by the network stream on
    // connection 0 — the genuinely nondeterministic input.
    a.li(r13, 0); // produced so far
    a.li(r14, static_cast<std::int64_t>(requests + p.threads));
    a.lia(r15, qlock);

    Label produce = a.hereLabel();
    Label produced = a.newLabel();
    a.bgeu(r13, r14, produced);

    // Wait for 4 request bytes from the wire (real requests only).
    Label accepted = a.newLabel();
    a.li(r5, static_cast<std::int64_t>(requests));
    a.bgeu(r13, r5, accepted); // poison pills need no network read
    Label poll = a.hereLabel();
    a.li(r1, 0);
    a.lia(r2, wlGlobals + 0x400);
    a.li(r3, 4);
    a.sys(Sys::NetRecv);
    a.bnez(r0, accepted);
    a.sys(Sys::Yield);
    a.jmp(poll);
    a.bind(accepted);

    // Request id: r13 for real requests, ~0 for poison.
    a.li(r5, static_cast<std::int64_t>(requests));
    a.mov(r4, r13);
    Label real_req = a.newLabel();
    a.bltu(r13, r5, real_req);
    a.li(r4, -1);
    a.bind(real_req);

    lib::lockAcquire(a, r15, r3);
    a.lia(r5, wlGlobals);
    a.ld64(r6, r5, gQueueTail);
    a.andi(r7, r6, ringMask);
    a.shli(r7, r7, 3);
    a.li(r2, static_cast<std::int64_t>(wlQueue));
    a.add(r7, r7, r2);
    a.st64(r7, 0, r4); // slot = request id
    a.li(r4, 1);
    a.addi(r6, r5, gQueueTail);
    a.fetchAdd(r4, r6, r4); // tail++ (atomic: it is the futex word)
    lib::lockRelease(a, r15, r3);
    a.lia(r1, tailAddr);
    a.li(r2, 1);
    a.sys(Sys::FutexWake);

    a.addi(r13, r13, 1);
    a.jmp(produce);
    a.bind(produced);

    emitJoinLoop(a, p.threads);
    emitWriteGlobalAndExit(a, gResult); // requests served

    // ---- worker: consume requests until poisoned ----
    a.bind(worker);
    a.lia(r8, wlGlobals);
    a.lia(r9, qlock);
    a.lia(r15, tailAddr);

    Label consume = a.hereLabel();
    Label wexit = a.newLabel();
    Label have = a.newLabel();
    lib::lockAcquire(a, r9, r3);
    a.ld64(r4, r8, gQueueHead);
    a.ld64(r5, r8, gQueueTail);
    a.bne(r4, r5, have);
    // Empty: sleep until the tail moves past what we saw.
    lib::lockRelease(a, r9, r3);
    a.mov(r1, r15);
    a.mov(r2, r5);
    a.sys(Sys::FutexWait);
    a.jmp(consume);

    a.bind(have);
    a.andi(r6, r4, ringMask);
    a.shli(r6, r6, 3);
    a.li(r7, static_cast<std::int64_t>(wlQueue));
    a.add(r6, r6, r7);
    a.ld64(r13, r6, 0); // request id
    a.addi(r4, r4, 1);
    a.st64(r8, gQueueHead, r4); // lock-protected plain store
    lib::lockRelease(a, r9, r3);

    a.li(r5, -1);
    a.beq(r13, r5, wexit);

    // "Handle" the request: a compute kernel sized by the request id.
    a.andi(r5, r13, 255);
    a.muli(r5, r5, 8);
    a.addi(r5, r5, 500);
    a.li(r6, 0x9e3779b9);
    Label handle = a.hereLabel();
    Label handled = a.newLabel();
    a.beqz(r5, handled);
    a.muli(r6, r6, 6364136223846793005ll);
    a.xor_(r6, r6, r5);
    a.addi(r5, r5, -1);
    a.jmp(handle);
    a.bind(handled);

    // Respond on the request's connection and count it served.
    a.addi(r1, r13, 100);
    a.lia(r2, wlGlobals + 0x400);
    a.li(r3, 64);
    a.sys(Sys::NetSend);
    a.lia(r5, wlGlobals + gResult);
    a.li(r4, 1);
    a.fetchAdd(r4, r5, r4);
    a.jmp(consume);

    a.bind(wexit);
    lib::exitWith(a, 0);

    MachineConfig cfg;
    cfg.netSeed = p.seed;
    cfg.netBytesPerConn = 4 * requests;
    cfg.netCyclesPerByte = 16; // requests trickle in over time
    WorkloadBundle b{a.finish("apache"), std::move(cfg), requests};
    return b;
}

WorkloadBundle
makeMysql(const WorkloadParams &p)
{
    const std::uint64_t capacity = 4096; // table entries (16 B each)
    const std::uint64_t keyspace = capacity / 2;
    const std::uint64_t totalOps = 8192ull * p.scale;
    dp_assert(totalOps % p.threads == 0,
              "mysql ops must divide by thread count");
    const std::uint64_t opsPerThread = totalOps / p.threads;
    const Addr stripeBase = wlLockBase + 0x100; // 8 stripe locks

    Assembler a;
    Label worker = a.newLabel();

    // Pre-populate half the keyspace: entry k = (key, value).
    {
        std::vector<std::uint64_t> table(capacity * 2, 0);
        for (std::uint64_t k = 0; k < keyspace; k += 2) {
            table[2 * k] = k;
            table[2 * k + 1] = k * 1000;
        }
        a.dataU64s(wlInput, table);
    }

    emitSpawnJoin(a, p.threads, worker);
    emitWriteGlobalAndExit(a, gResult); // committed transactions

    // ---- worker: opsPerThread transactions ----
    a.bind(worker);
    a.mov(r13, r1); // my index
    a.muli(r12, r13, 0x9E3779B97F4A7C15ll);
    a.addi(r12, r12, 12345); // per-thread rng state
    a.li(r11, static_cast<std::int64_t>(opsPerThread));
    a.lia(r10, wlInput); // table base
    a.li(r14, 0);        // read accumulator (unused result sink)

    Label txn = a.hereLabel();
    Label done = a.newLabel();
    a.beqz(r11, done);
    emitRngNext(a, r12, r5);
    a.andi(r6, r5, static_cast<std::int64_t>(keyspace - 1)); // key
    // stripe lock address: stripeBase + (key & 7) * 8
    a.andi(r7, r6, 7);
    a.shli(r7, r7, 3);
    a.li(r4, static_cast<std::int64_t>(stripeBase));
    a.add(r7, r7, r4);
    lib::lockAcquire(a, r7, r3);
    // Entry address: table + key*16 (direct mapped).
    a.shli(r5, r6, 4);
    a.add(r5, r5, r10);
    Label do_write = a.newLabel();
    Label op_done = a.newLabel();
    a.andi(r4, r6, 8); // deterministic op mix: key bit 3 selects
    a.bnez(r4, do_write);
    a.ld64(r4, r5, 8); // read the value
    a.add(r14, r14, r4);
    a.jmp(op_done);
    a.bind(do_write);
    a.st64(r5, 0, r6); // (re)insert key
    a.ld64(r4, r5, 8);
    a.addi(r4, r4, 1); // bump value
    a.st64(r5, 8, r4);
    a.bind(op_done);
    lib::lockRelease(a, r7, r3);
    a.addi(r11, r11, -1);
    a.jmp(txn);

    a.bind(done);
    a.lia(r5, wlGlobals + gResult);
    a.li(r4, static_cast<std::int64_t>(opsPerThread));
    a.fetchAdd(r6, r5, r4);
    lib::exitWith(a, 0);

    WorkloadBundle b{a.finish("mysql"), {}, totalOps};
    return b;
}

} // namespace dp::workloads
