/**
 * @file
 * E12 (extension) — host execution engine behind the record pipeline.
 *
 * Beyond the paper's evaluation: record and replay now share one
 * persistent worker-pool design (src/exec). This bench measures the
 * two wall-clock effects that engine exists for:
 *
 *   1. Record: epoch-parallel runs execute as pool tasks overlapping
 *      the thread-parallel run. Sweep hostWorkers {0, 2, 4}; the
 *      artifact stays byte-identical (verified here per run and
 *      pinned in exec_test/parallel_record_test).
 *   2. Replay: replayParallel fans out on a persistent pool, so
 *      repeated replays (the live-replica shape) stop paying a
 *      thread-spawn tax per call. Compare pool reuse against a fresh
 *      pool per call.
 *
 * JSON rows (dp-bench-v1): `overhead` holds speedup-1 relative to the
 * row's baseline (hostWorkers=0 / fresh-pool); `logBytes` holds the
 * measured wall-clock in microseconds.
 */

#include <chrono>

#include "bench_common.hh"
#include "replay/recording_io.hh"
#include "replay/replayer.hh"

using namespace dp;
using namespace dp::bench;

namespace
{

using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(Clock::now() -
                                                     t0)
        .count();
}

struct HostRun
{
    double wallMs = 0.0;
    bool ok = false;
    std::uint64_t artifactHash = 0;
    std::uint64_t epochs = 0;
    std::uint64_t threadsSpawned = 0;
};

HostRun
recordHost(const workloads::WorkloadBundle &b, unsigned host_workers)
{
    RecorderOptions opts;
    opts.workerCpus = 2;
    opts.epochLength = 150'000;
    opts.hostWorkers = host_workers;
    opts.keepCheckpoints = false;

    auto t0 = Clock::now();
    UniparallelRecorder rec(b.program, b.config, opts);
    RecordOutcome out = rec.record();

    HostRun r;
    r.wallMs = msSince(t0);
    r.ok = out.ok;
    if (out.ok) {
        r.artifactHash =
            fastHash64(serializeRecording(out.recording));
        r.epochs = out.recording.epochs.size();
        r.threadsSpawned = out.execStats.threadsSpawned;
    }
    return r;
}

} // namespace

int
main()
{
    banner("E12 (extension: host pipeline)",
           "record wall-clock across host pool sizes; parallel-replay "
           "pool reuse vs per-call spawn",
           "[extension] beyond the paper's eval; artifacts are "
           "byte-identical across every pool shape");

    std::vector<BenchResult> rows;

    // --- record sweep: hostWorkers 0 / 2 / 4 ----------------------
    Table t({"benchmark", "sync ms", "2-worker ms", "4-worker ms",
             "best speedup", "identical"});
    for (const char *name : {"pbzip2", "mysql", "fft", "ocean"}) {
        const workloads::Workload *w = workloads::findWorkload(name);
        workloads::WorkloadBundle b =
            w->make({.threads = 2, .scale = 24});
        const HostRun sync_run = recordHost(b, 0);
        const HostRun w2 = recordHost(b, 2);
        const HostRun w4 = recordHost(b, 4);
        if (!sync_run.ok || !w2.ok || !w4.ok) {
            std::cerr << "record failed for " << name << "\n";
            return 1;
        }
        const bool identical =
            sync_run.artifactHash == w2.artifactHash &&
            sync_run.artifactHash == w4.artifactHash;
        const double best = std::min(w2.wallMs, w4.wallMs);
        t.addRow({name, Table::num(sync_run.wallMs, 1),
                  Table::num(w2.wallMs, 1), Table::num(w4.wallMs, 1),
                  Table::num(sync_run.wallMs / best, 2) + "x",
                  identical ? "yes" : "NO"});
        if (!identical) {
            std::cerr << "artifact divergence for " << name << "\n";
            return 1;
        }
        for (const HostRun *r : {&sync_run, &w2, &w4}) {
            BenchResult row;
            row.name = std::string("record:") + name + "@w" +
                       std::to_string(r->threadsSpawned);
            row.workload = name;
            row.workers =
                static_cast<std::uint32_t>(r->threadsSpawned);
            row.overhead =
                r->wallMs > 0 ? sync_run.wallMs / r->wallMs - 1.0
                              : 0.0;
            row.logBytes =
                static_cast<std::uint64_t>(r->wallMs * 1000.0);
            row.epochs = r->epochs;
            rows.push_back(row);
        }
    }
    t.print(std::cout);

    // --- replay: persistent pool vs fresh pool per call -----------
    const workloads::Workload *w = workloads::findWorkload("fft");
    workloads::WorkloadBundle b = w->make({.threads = 2, .scale = 24});
    RecorderOptions opts;
    opts.workerCpus = 2;
    opts.epochLength = 150'000;
    UniparallelRecorder rec(b.program, b.config, opts);
    RecordOutcome out = rec.record();
    if (!out.ok) {
        std::cerr << "record failed for replay bench\n";
        return 1;
    }
    const unsigned tracks = 4;
    constexpr int iters = 20;

    auto t0 = Clock::now();
    {
        Replayer reuse(out.recording); // pool persists across calls
        for (int i = 0; i < iters; ++i)
            if (!reuse.replayParallel(tracks).ok) {
                std::cerr << "replay verdict flipped (reuse)\n";
                return 1;
            }
    }
    const double reuse_ms = msSince(t0);

    t0 = Clock::now();
    for (int i = 0; i < iters; ++i) {
        Replayer fresh(out.recording); // pool torn down every call
        if (!fresh.replayParallel(tracks).ok) {
            std::cerr << "replay verdict flipped (fresh)\n";
            return 1;
        }
    }
    const double fresh_ms = msSince(t0);

    Table rt({"replay mode", "total ms (" + std::to_string(iters) +
                                 " calls)",
              "per call ms"});
    rt.addRow({"persistent pool", Table::num(reuse_ms, 1),
               Table::num(reuse_ms / iters, 2)});
    rt.addRow({"fresh pool/call", Table::num(fresh_ms, 1),
               Table::num(fresh_ms / iters, 2)});
    rt.print(std::cout);

    for (const auto &[label, ms, base] :
         {std::tuple<const char *, double, double>{
              "replay:reuse", reuse_ms, fresh_ms},
          {"replay:spawn", fresh_ms, fresh_ms}}) {
        BenchResult row;
        row.name = label;
        row.workload = "fft";
        row.workers = tracks;
        row.overhead = ms > 0 ? base / ms - 1.0 : 0.0;
        row.logBytes = static_cast<std::uint64_t>(ms * 1000.0);
        row.epochs = out.recording.epochs.size();
        rows.push_back(row);
    }

    return emitBenchJson("host_pipeline", rows) ? 0 : 1;
}
