file(REMOVE_RECURSE
  "CMakeFiles/bench_host_pipeline.dir/bench/bench_host_pipeline.cc.o"
  "CMakeFiles/bench_host_pipeline.dir/bench/bench_host_pipeline.cc.o.d"
  "bench/bench_host_pipeline"
  "bench/bench_host_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_host_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
