/**
 * @file
 * Replayer: deterministic re-execution of a Recording.
 *
 * Sequential replay needs nothing but the initial state and the logs:
 * each epoch's timeslice schedule is followed exactly and injectable
 * syscall results are fed from the log; every other syscall re-executes
 * deterministically and is cross-checked against the recorded result
 * stream. Epoch end states are verified against the recorded digests.
 *
 * Parallel replay exploits uniparallelism's second dividend: with the
 * epoch-start checkpoints retained, epochs are independent jobs and
 * replay runs them concurrently on real host threads.
 */

#ifndef DP_REPLAY_REPLAYER_HH
#define DP_REPLAY_REPLAYER_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "core/epoch_replay.hh"
#include "core/recording.hh"
#include "exec/executor.hh"
#include "timing/cost_model.hh"

namespace dp
{

class TraceRecorder;

/** Outcome of a replay. */
struct ReplayResult
{
    bool ok = false;
    std::uint32_t epochsVerified = 0;
    /** First epoch whose replay failed verification (or ~0u). */
    std::uint32_t firstFailedEpoch = ~std::uint32_t{0};
    /** Virtual cycles consumed (sequential: total; parallel: modeled
     *  makespan over the worker pool). */
    Cycles replayCycles = 0;
    std::uint64_t instrs = 0;
    /** Reproduced whole-run stdout (sequential replay accumulates
     *  it; parallel replay reconstructs it from the last epoch's end
     *  state, which carries everything written before it). */
    std::vector<std::uint8_t> stdoutBytes;
};

/** Replays recordings produced by UniparallelRecorder. */
class Replayer
{
  public:
    explicit Replayer(const Recording &rec, CostModel costs = {})
        : rec_(&rec), costs_(costs)
    {}

    /** Attach an observability sink (nullptr = off). The replayer
     *  emits one "replay-epoch" span per epoch — tid 0 sequentially,
     *  one tid per host worker in parallel replay. Observe-only:
     *  never affects results. (Resets the owned worker pool so the
     *  sink reaches its executor spans too.) */
    void
    setTrace(TraceRecorder *tr)
    {
        trace_ = tr;
        pool_.reset();
    }

    /** Run parallel replay on @p exec instead of the replayer's own
     *  pool (nullptr restores the owned pool). Lets one session
     *  executor serve record and replay alike. */
    void setExecutor(Executor *exec) { exec_ = exec; }

    /** Whole-run replay from the initial state; verifies every epoch
     *  digest and the recorded syscall result stream. @p observer
     *  (optional) watches the re-execution. */
    ReplayResult
    replaySequential(const ReplayObserver *observer = nullptr) const;

    /**
     * Replay all epochs concurrently from their checkpoints.
     * Requires the recording to have retained checkpoints.
     * @p tracks is the modeled replay-worker count: replayCycles is
     * the LPT makespan of the epoch durations over @p tracks
     * single-CPU virtual workers. @p jobs is the real host thread
     * count the epochs fan out over (0, the default, means
     * jobs = tracks); it affects host wall-clock only, never the
     * verdict or the modeled cycles. Epochs execute as tasks on the
     * host executor — the one attached with setExecutor(), else an
     * owned pool sized to @p jobs that persists across calls (reuse
     * is the point: no per-call thread spawning). Not safe to call
     * concurrently on one Replayer.
     */
    ReplayResult replayParallel(unsigned tracks,
                                unsigned jobs = 0) const;

    /**
     * Re-execute a single epoch on @p m (which must hold the epoch's
     * start state); true if its end digest verifies. Building block
     * for the debugger and other epoch-at-a-time consumers.
     */
    bool
    replayOneEpoch(Machine &m, EpochId epoch,
                   const ReplayObserver *observer = nullptr) const
    {
        Cycles cycles = 0;
        std::uint64_t instrs = 0;
        return replayEpochOn(m, rec_->epochs[epoch], cycles, instrs,
                             observer);
    }

    const Recording &recording() const { return *rec_; }

  private:
    /** Replay one epoch on @p m; true if it verifies. */
    bool replayEpochOn(Machine &m, const EpochRecord &epoch,
                       Cycles &cycles, std::uint64_t &instrs,
                       const ReplayObserver *observer = nullptr) const;

    const Recording *rec_;
    CostModel costs_;
    TraceRecorder *trace_ = nullptr;
    /** External executor (setExecutor); wins over the owned pool. */
    Executor *exec_ = nullptr;
    /** Owned pool, built lazily by replayParallel and kept across
     *  calls; rebuilt only when the requested size changes. */
    mutable std::unique_ptr<Executor> pool_;
};

} // namespace dp

#endif // DP_REPLAY_REPLAYER_HH
