file(REMOVE_RECURSE
  "libdp_analysis.a"
)
