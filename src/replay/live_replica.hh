/**
 * @file
 * LiveReplica: a hot-standby machine fed committed epochs online.
 *
 * The paper points out that uniparallel logs are cheap enough to
 * stream to another machine, which can replay epochs as they commit
 * and stand ready to take over (fault tolerance via replay). This is
 * that consumer: feed it each validated EpochRecord in order and it
 * maintains a machine whose state always equals the last committed
 * epoch boundary — verified against the recorded digest on every
 * apply.
 */

#ifndef DP_REPLAY_LIVE_REPLICA_HH
#define DP_REPLAY_LIVE_REPLICA_HH

#include <cstdint>

#include "core/recording.hh"
#include "timing/cost_model.hh"

namespace dp
{

/** An incrementally-replayed standby of a recorded execution. */
class LiveReplica
{
  public:
    LiveReplica(const GuestProgram &prog, MachineConfig cfg,
                CostModel costs = {})
        : machine_(prog, std::move(cfg)), costs_(costs)
    {}
    /** The replica keeps a pointer to the program; see Machine. */
    LiveReplica(GuestProgram &&, MachineConfig, CostModel = {}) =
        delete;

    /**
     * Replay @p epoch on the standby; must be called in commit
     * order. Returns false (and marks the replica unhealthy) if the
     * epoch fails digest verification.
     */
    bool apply(const EpochRecord &epoch);

    /** The standby's state: the last committed epoch boundary. */
    const Machine &machine() const { return machine_; }

    /** Take over: hand the standby machine to the caller. The
     *  replica must not be used afterwards. */
    Machine takeOver() && { return std::move(machine_); }

    std::uint32_t epochsApplied() const { return applied_; }
    bool healthy() const { return healthy_; }
    Cycles replayCycles() const { return cycles_; }

  private:
    Machine machine_;
    CostModel costs_;
    std::uint32_t applied_ = 0;
    bool healthy_ = true;
    Cycles cycles_ = 0;
    std::uint64_t instrs_ = 0;
};

} // namespace dp

#endif // DP_REPLAY_LIVE_REPLICA_HH
