/**
 * @file
 * Value-semantic simulated OS state.
 *
 * Everything the guest-visible OS remembers lives in this struct so a
 * checkpoint is a plain copy and divergence detection can hash it. File
 * contents use shared_ptr copy-on-write like memory pages, so copies
 * are cheap and epochs that merely read files share one buffer.
 */

#ifndef DP_OS_OS_STATE_HH
#define DP_OS_OS_STATE_HH

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"

namespace dp
{

/**
 * Shared, copy-on-write file content buffer. Never written in place
 * while shared (use_count > 1); OsState::writableFile clones first.
 */
using FileContent = std::shared_ptr<std::vector<std::uint8_t>>;

/** One open file description. */
struct FileDesc
{
    std::int32_t fileId = -1; ///< index into OsState::files; -1 = closed
    std::uint64_t offset = 0;
    bool writable = false;
    bool appendOnly = false;  ///< stdout/stderr sinks

    bool operator==(const FileDesc &) const = default;
};

/** An in-kernel byte pipe (unbounded buffer, blocking readers). */
struct SimPipe
{
    std::deque<std::uint8_t> buffer;
    /** FIFO of threads blocked in pipe_read. */
    std::deque<ThreadId> readWaiters;
    bool closed = false;

    bool operator==(const SimPipe &) const = default;
};

/** Per-connection network stream cursor. */
struct NetCursor
{
    std::uint64_t recvOffset = 0;
    std::uint64_t sentBytes = 0;

    bool operator==(const NetCursor &) const = default;
};

/** The complete simulated OS state (one guest process). */
struct OsState
{
    /// @name File system
    /// @{
    std::map<std::string, std::uint32_t> nameToFile;
    std::vector<FileContent> files;
    std::vector<FileDesc> fds;
    /// @}

    /// @name Synchronization
    /// @{
    /** FIFO futex wait queues keyed by guest address. */
    std::map<Addr, std::deque<ThreadId>> futexQueues;
    /** join() waiters keyed by the awaited thread. */
    std::map<ThreadId, std::vector<ThreadId>> joinWaiters;
    /// @}

    /// @name Misc kernel state
    /// @{
    std::map<std::uint64_t, SimPipe> pipes;
    std::map<std::uint64_t, NetCursor> netCursors;
    std::uint64_t rngState = 0x6a09e667f3bcc909ull;
    ThreadId nextTid = 1;
    /// @}

    /** Digest of the whole OS state (for divergence detection). */
    std::uint64_t hash() const;

    /** Mutable access to a file's bytes, cloning if shared (CoW). */
    std::vector<std::uint8_t> &writableFile(std::uint32_t file_id);

    /** Look up or create a file; returns its id. */
    std::uint32_t ensureFile(const std::string &name);

    /** Allocate a descriptor slot. */
    std::uint64_t allocFd(FileDesc desc);
};

} // namespace dp

#endif // DP_OS_OS_STATE_HH
