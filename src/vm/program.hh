/**
 * @file
 * A loaded guest program: code plus initial memory image.
 */

#ifndef DP_VM_PROGRAM_HH
#define DP_VM_PROGRAM_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hh"
#include "vm/isa.hh"

namespace dp
{

class PagedMemory;

/**
 * Immutable program artifact produced by the Assembler. Code addresses
 * are instruction indices (the guest has a Harvard-style code space);
 * data segments are byte images copied into guest memory at load time.
 */
struct GuestProgram
{
    std::string name;
    std::vector<Instr> code;

    /** (base address, bytes) pairs loaded before execution starts. */
    std::vector<std::pair<Addr, std::vector<std::uint8_t>>> dataSegments;

    /** Entry point of the initial thread. */
    std::uint64_t entry = 0;

    /** Copy all data segments into @p mem. */
    void loadInto(PagedMemory &mem) const;

    /** Content digest over code + data (identifies the program). */
    std::uint64_t hash() const;
};

} // namespace dp

#endif // DP_VM_PROGRAM_HH
