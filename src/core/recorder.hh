/**
 * @file
 * UniparallelRecorder: DoublePlay's record pipeline.
 *
 * Runs the application twice, concurrently in virtual time:
 *
 *   thread-parallel run (MultiCpuSim, N CPUs)
 *       |  every epochLength cycles: quiesce, checkpoint,
 *       |  hand off {checkpoint, targets, sync order, injectables}
 *       v
 *   epoch-parallel runs (EpochRunner, 1 CPU each, own memory copy)
 *       |  produce the official logs; end state compared against the
 *       |  next checkpoint
 *       v
 *   divergence? -> squash the speculation, resume the thread-parallel
 *                  run from the epoch-parallel run's state
 *
 * The host-side implementation executes the pipeline stages
 * sequentially and reconstructs the concurrent timing with the fluid
 * pipeline model (timing/pipeline.hh); the benchmark harness reports
 * overheads from that model.
 */

#ifndef DP_CORE_RECORDER_HH
#define DP_CORE_RECORDER_HH

#include <cstdint>
#include <functional>

#include "core/recording.hh"
#include "exec/executor.hh"
#include "fault/fault.hh"
#include "os/machine.hh"
#include "os/run_types.hh"
#include "timing/cost_model.hh"
#include "vm/program.hh"

namespace dp
{

class TraceRecorder;

/** Record-session configuration. */
struct RecorderOptions
{
    /** N: worker CPUs for the thread-parallel execution. */
    CpuId workerCpus = 2;
    /** Epoch length in virtual cycles. */
    Cycles epochLength = 400'000;
    /** Interleaving seed of the thread-parallel run. */
    std::uint64_t seed = 1;
    /** Epoch-parallel timeslice quantum (instructions). */
    std::uint64_t quantum = 50'000;
    /** Retain epoch-start checkpoints for parallel replay. */
    bool keepCheckpoints = true;
    /** Feed the thread-parallel sync order into the epoch-parallel
     *  runs (disable only for the E7 ablation). */
    bool enforceSyncOrder = true;
    /** Charge instrumentation costs to virtual time. */
    bool chargeCosts = true;
    /** Per-execution instruction fuse. */
    std::uint64_t fuel = std::uint64_t{1} << 33;
    /** Abort after this many epochs (runaway guard). */
    std::uint32_t maxEpochs = 1 << 16;
    /** Abort after this many rollbacks (livelock guard). */
    std::uint32_t maxRollbacks = 256;
    /** Thread-parallel per-CPU jitter (see MpOptions). */
    std::uint32_t jitterNum = 1;
    std::uint32_t jitterDen = 8;
    /** Thread-parallel migration quantum. */
    std::uint64_t mpQuantum = 20'000;
    /**
     * Host threads executing epoch-parallel runs concurrently with
     * the thread-parallel run (the deployment's real pipeline).
     * 0 = synchronous reference mode. Both modes produce identical
     * recordings; the parallel mode also overlaps host wall-clock.
     */
    unsigned hostWorkers = 0;
    /** Epochs allowed in flight before the thread-parallel run
     *  stalls (parallel mode only). */
    unsigned maxInFlight = 4;
    /**
     * Deterministic fault injection (nullptr = none). The recorder
     * arms the thread-parallel kernel's syscall sites and evaluates
     * the TornCheckpoint / WorkerDeath sites itself; see
     * fault/fault.hh for the model.
     */
    FaultInjector *faults = nullptr;
    /** Epoch re-executions after simulated worker deaths before the
     *  epoch degrades to an inline sequential execution. */
    unsigned maxWorkerRetries = 2;
    /** Checkpoint recaptures after torn snapshots before the record
     *  session fails closed (StopReason::Stalled). */
    unsigned maxCaptureRetries = 8;
    /**
     * Observability sink (nullptr = tracing off, the zero-work
     * default). The recorder emits tp-epoch and epoch-run spans,
     * checkpoint spans, recovery instants and in-flight counters into
     * it; see trace/trace.hh. Tracing is byte-invisible: it never
     * changes the recording, the journal, or virtual time, and it is
     * excluded from the options fingerprint.
     */
    TraceRecorder *trace = nullptr;
};

/** Which RecorderOptions field is invalid (structured, never UB). */
enum class OptionError : std::uint8_t
{
    None,
    /** workerCpus == 0: the thread-parallel run needs a CPU. */
    ZeroWorkerCpus,
    /** epochLength == 0: the tp run would never advance. */
    ZeroEpochLength,
    /** quantum == 0: an epoch-parallel timeslice cannot be empty. */
    ZeroQuantum,
    /** jitterDen == 0: the per-tick jitter draw would divide by 0. */
    ZeroJitterDen,
    /** mpQuantum == 0: a tp timeslice cannot be empty. */
    ZeroMpQuantum,
    /** maxInFlight == 0 with hostWorkers > 0: the pipeline window
     *  could never admit an epoch. */
    ZeroMaxInFlight,
};

/** Stable human-readable name of @p e (e.g. "zero-epoch-length"). */
const char *optionErrorName(OptionError e);

/**
 * Validate @p opts before a session starts. record()/resume() call
 * this and fail closed with the result in RecordOutcome::optionError;
 * callers constructing options from untrusted input (CLI flags,
 * config files) can pre-check explicitly.
 */
OptionError validateRecorderOptions(const RecorderOptions &opts);

/**
 * Digest of every option that shapes the recorded bytes (CPUs, epoch
 * length, seeds, quanta, jitter, cost charging, sync-order
 * enforcement). The epoch journal stores it in its header frame;
 * resuming under different options would silently produce a
 * frankenstein recording, so resume refuses on mismatch. Fields that
 * only bound resource use (fuses, retry budgets, window size, host
 * workers) are excluded: they never change the bytes.
 */
std::uint64_t recorderOptionsFingerprint(const RecorderOptions &opts);

/** A recovery action the recorder took in response to a failure. */
enum class RecoveryKind : std::uint8_t
{
    /** Speculation squashed; thread-parallel run restarted from the
     *  epoch-parallel truth. */
    Rollback,
    /** A torn checkpoint was detected and recaptured. */
    CheckpointRecapture,
    /** An epoch was re-executed after its worker died. */
    EpochRetry,
    /** An epoch was degraded to an inline sequential execution after
     *  repeated worker deaths. */
    SequentialFallback,
};

/** Stable human-readable name of @p k (e.g. "rollback"). */
const char *recoveryKindName(RecoveryKind k);

/**
 * Callbacks observing a record session as it progresses. Committed
 * epochs are final (a divergence squashes the *speculation*, never an
 * already-committed epoch), so onEpochCommitted can stream them to a
 * LiveReplica or to storage.
 */
struct RecordObserver
{
    /** Epoch @p index was validated and appended, in order. */
    std::function<void(const EpochRecord &, EpochId index)>
        onEpochCommitted;
    /**
     * Additional commit listeners, invoked after onEpochCommitted in
     * registration order. One record session can fan a commit out to
     * several consumers (a journal, a live replica, a metrics probe)
     * without the consumers having to chain each other's callbacks.
     */
    std::vector<
        std::function<void(const EpochRecord &, EpochId index)>>
        epochSinks;

    /** Register an additional commit listener. */
    void
    addEpochSink(
        std::function<void(const EpochRecord &, EpochId)> sink)
    {
        epochSinks.push_back(std::move(sink));
    }
    /**
     * A recovery action was taken while producing epoch @p index
     * (the index the epoch will commit at). Together with
     * FaultInjector::onFault this is the full fault/recovery event
     * stream — deterministic given (seed, plan).
     */
    std::function<void(RecoveryKind, EpochId index)> onRecovery;
};

/** Result of a record session. */
struct RecordOutcome
{
    Recording recording;
    /** Final stop reason of the thread-parallel run. */
    StopReason tpReason = StopReason::AllExited;
    /** The recording is complete and every epoch validated. */
    bool ok = false;
    /** Guest exit code of the main thread. */
    std::uint64_t mainExitCode = 0;
    /** Non-None when the session never started because an option was
     *  invalid (ok is false and the recording is empty). */
    OptionError optionError = OptionError::None;
    /** resume() only: the recovered prefix failed replay verification
     *  (corrupt or mismatched journal); the session never started. */
    bool prefixVerifyFailed = false;
    /**
     * Host-execution counters of the session's worker pool. The
     * no-thread-per-epoch contract lives here: threadsSpawned is
     * exactly hostWorkers however many epochs ran, and
     * tasksCancelled counts speculative epochs a divergence squashed
     * before they ever executed.
     */
    ExecutorStats execStats = {};
};

/** Records a program with uniparallelism. */
class UniparallelRecorder
{
  public:
    UniparallelRecorder(const GuestProgram &prog, MachineConfig cfg,
                        RecorderOptions opts = {}, CostModel costs = {});
    /** The recorder keeps a pointer to the program; see Machine. */
    UniparallelRecorder(GuestProgram &&, MachineConfig,
                        RecorderOptions = {}, CostModel = {}) = delete;

    /** Run the full record pipeline to program completion;
     *  @p observer (optional) sees each epoch as it commits. */
    RecordOutcome record(const RecordObserver *observer = nullptr);

    /**
     * Resume a recording from @p prefix — the committed epochs a
     * journal recovery returned. The prefix is replayed sequentially
     * (verifying every digest) to reconstruct the boundary
     * checkpoint, then recording continues from that boundary;
     * @p observer sees only the newly committed epochs. Because the
     * thread-parallel interleaving is reseeded at every epoch
     * boundary, the resumed session commits the same epochs an
     * uninterrupted run would have — the finished recording
     * serializes byte-identically. The options must match the
     * original session's (see recorderOptionsFingerprint); syscall
     * fault-injection sites (FaultSite::NetRecvFail and friends) draw
     * from session-global decision streams and are the one exception
     * to byte-identity across a resume.
     */
    RecordOutcome resume(std::vector<EpochRecord> prefix,
                         const RecordObserver *observer = nullptr);

  private:
    RecordOutcome runSession(const RecordObserver *observer,
                             std::vector<EpochRecord> *prefix);
    /** The pipeline body; runSession wraps it so @p exec's counters
     *  land in the outcome on every exit path. */
    void runPipeline(RecordOutcome &out, Executor &exec,
                     const RecordObserver *observer,
                     std::vector<EpochRecord> *prefix);

    const GuestProgram *prog_;
    MachineConfig cfg_;
    RecorderOptions opts_;
    CostModel costs_;
};

} // namespace dp

#endif // DP_CORE_RECORDER_HH
