#include "testprogs.hh"

#include <functional>
#include <string_view>

#include "common/rng.hh"
#include "vm/asmlib.hh"
#include "vm/assembler.hh"

namespace dp::testprogs
{

using enum Reg;
namespace lib = dp::asmlib;

namespace
{

/**
 * Emit main-thread prologue/epilogue around a worker body: spawn
 * @p nthreads workers (arg = worker index), join them all, write the
 * counter word to stdout, exit with its value.
 */
GuestProgram
spawnJoinHarness(std::uint64_t nthreads,
                 const std::function<void(Assembler &, Label worker)>
                     &emit_worker,
                 const char *name)
{
    Assembler a;
    Label worker = a.newLabel();

    // r10 = i, r11 = nthreads, r12 = tid array base.
    a.li(r10, 0);
    a.li(r11, static_cast<std::int64_t>(nthreads));
    a.lia(r12, tidArrayAddr);

    Label spawn_loop = a.hereLabel();
    Label spawned = a.newLabel();
    a.bgeu(r10, r11, spawned);
    lib::spawnThread(a, worker, r10);
    a.shli(r3, r10, 3);
    a.add(r3, r12, r3);
    a.st64(r3, 0, r0); // r0 = spawned tid
    a.addi(r10, r10, 1);
    a.jmp(spawn_loop);

    a.bind(spawned);
    a.li(r10, 0);
    Label join_loop = a.hereLabel();
    Label joined = a.newLabel();
    a.bgeu(r10, r11, joined);
    a.shli(r3, r10, 3);
    a.add(r3, r12, r3);
    a.ld64(r4, r3, 0);
    lib::joinThread(a, r4);
    a.addi(r10, r10, 1);
    a.jmp(join_loop);

    a.bind(joined);
    a.lia(r5, counterAddr);
    a.li(r6, 8);
    lib::writeFd(a, fdStdout, r5, r6);
    a.ld64(r7, r5, 0);
    a.mov(r1, r7);
    a.sys(Sys::Exit);

    emit_worker(a, worker);
    return a.finish(name);
}

} // namespace

GuestProgram
lockedCounter(std::uint64_t nthreads, std::uint64_t incs)
{
    return spawnJoinHarness(
        nthreads,
        [&](Assembler &a, Label worker) {
            a.bind(worker);
            a.li(r8, static_cast<std::int64_t>(incs));
            a.lia(r9, lockAddr);
            a.lia(r10, counterAddr);
            Label loop = a.hereLabel();
            Label done = a.newLabel();
            a.beqz(r8, done);
            lib::lockAcquire(a, r9, r3);
            a.ld64(r4, r10, 0);
            a.addi(r4, r4, 1);
            a.st64(r10, 0, r4);
            lib::lockRelease(a, r9, r3);
            a.addi(r8, r8, -1);
            a.jmp(loop);
            a.bind(done);
            lib::exitWith(a, 0);
        },
        "locked_counter");
}

GuestProgram
racyCounter(std::uint64_t nthreads, std::uint64_t incs)
{
    return spawnJoinHarness(
        nthreads,
        [&](Assembler &a, Label worker) {
            a.bind(worker);
            a.li(r8, static_cast<std::int64_t>(incs));
            a.lia(r10, counterAddr);
            Label loop = a.hereLabel();
            Label done = a.newLabel();
            a.beqz(r8, done);
            a.ld64(r4, r10, 0); // racy read
            a.addi(r4, r4, 1);
            a.st64(r10, 0, r4); // racy write: lost updates possible
            a.addi(r8, r8, -1);
            a.jmp(loop);
            a.bind(done);
            lib::exitWith(a, 0);
        },
        "racy_counter");
}

GuestProgram
atomicCounter(std::uint64_t nthreads, std::uint64_t incs)
{
    return spawnJoinHarness(
        nthreads,
        [&](Assembler &a, Label worker) {
            a.bind(worker);
            a.li(r8, static_cast<std::int64_t>(incs));
            a.lia(r10, counterAddr);
            a.li(r5, 1);
            Label loop = a.hereLabel();
            Label done = a.newLabel();
            a.beqz(r8, done);
            a.fetchAdd(r4, r10, r5);
            a.addi(r8, r8, -1);
            a.jmp(loop);
            a.bind(done);
            lib::exitWith(a, 0);
        },
        "atomic_counter");
}

GuestProgram
barrierPhases(std::uint64_t nthreads, std::uint64_t phases)
{
    return spawnJoinHarness(
        nthreads,
        [&](Assembler &a, Label worker) {
            // r1 = worker index on entry.
            a.bind(worker);
            a.mov(r13, r1);                   // my index
            a.li(r8, static_cast<std::int64_t>(phases));
            a.lia(r9, barrierAddr);
            a.li(r11, static_cast<std::int64_t>(nthreads));

            // slot address: scratch + 8*index
            a.shli(r14, r13, 3);
            a.lia(r3, scratchAddr);
            a.add(r14, r3, r14);

            // neighbour slot: scratch + 8*((index+1) % n)
            a.addi(r15, r13, 1);
            a.remu(r15, r15, r11);
            a.shli(r15, r15, 3);
            a.lia(r3, scratchAddr);
            a.add(r15, r3, r15);

            Label loop = a.hereLabel();
            Label done = a.newLabel();
            a.beqz(r8, done);
            // bump my slot
            a.ld64(r4, r14, 0);
            a.addi(r4, r4, 1);
            a.st64(r14, 0, r4);
            lib::barrierWait(a, r9, r11, r5, r6);
            // read the neighbour's slot and fold into an accumulator
            a.ld64(r4, r15, 0);
            a.add(r12, r12, r4);
            lib::barrierWait(a, r9, r11, r5, r6);
            a.addi(r8, r8, -1);
            a.jmp(loop);
            a.bind(done);
            // publish the accumulator into the shared counter
            a.lia(r3, counterAddr);
            a.fetchAdd(r4, r3, r12);
            lib::exitWith(a, 0);
        },
        "barrier_phases");
}

GuestProgram
syscallStorm(std::uint64_t net_bytes)
{
    Assembler a;

    const Addr buf = scratchAddr;
    const Addr path = scratchAddr + 0x800;

    const std::string_view fname = "data/out.bin";
    a.dataBytes(path,
                {reinterpret_cast<const std::uint8_t *>(fname.data()),
                 fname.size()});

    a.li(r15, 0); // checksum accumulator

    // fd = open("data/out.bin", create|write)
    a.lia(r1, path);
    a.li(r2, openCreate | openWrite);
    a.sys(Sys::Open);
    a.mov(r14, r0);

    // Fold the clock into the checksum (injectable result).
    a.sys(Sys::GetTime);
    a.andi(r4, r0, 0xff);
    a.add(r15, r15, r4);

    // Pull net_bytes from connection 7 in a poll loop.
    a.li(r13, static_cast<std::int64_t>(net_bytes)); // remaining
    Label poll = a.hereLabel();
    Label drained = a.newLabel();
    a.beqz(r13, drained);
    a.li(r1, 7);
    a.lia(r2, buf);
    a.li(r3, 256);
    a.sys(Sys::NetRecv);
    a.mov(r12, r0); // got
    Label got_some = a.newLabel();
    a.bnez(r12, got_some);
    a.sys(Sys::Yield); // nothing arrived yet: poll again
    a.jmp(poll);
    a.bind(got_some);
    Label no_clamp = a.newLabel();
    a.bgeu(r13, r12, no_clamp);
    a.mov(r12, r13); // clamp to remaining
    a.bind(no_clamp);
    a.ld8(r4, r2, 0); // first received byte into the checksum
    a.add(r15, r15, r4);
    a.mov(r1, r14); // write(fd, buf, got)
    a.lia(r2, buf);
    a.mov(r3, r12);
    a.sys(Sys::Write);
    a.sub(r13, r13, r12);
    a.jmp(poll);

    a.bind(drained);
    // Reopen for reading and checksum the file's first byte.
    a.lia(r1, path);
    a.li(r2, openRead);
    a.sys(Sys::Open);
    a.mov(r1, r0);
    a.lia(r2, buf);
    a.li(r3, 1);
    a.sys(Sys::Read);
    a.ld8(r4, r2, 0);
    a.add(r15, r15, r4);

    // Publish the checksum and exit with its low bits.
    a.lia(r3, counterAddr);
    a.st64(r3, 0, r15);
    a.lia(r5, counterAddr);
    a.li(r6, 8);
    lib::writeFd(a, fdStdout, r5, r6);
    a.andi(r1, r15, 0xffff);
    a.sys(Sys::Exit);
    return a.finish("syscall_storm");
}

GuestProgram
fileChunkReader()
{
    Assembler a;

    const Addr buf = scratchAddr;
    const Addr path = scratchAddr + 0x800;

    const std::string_view fname = chunkFilePath;
    a.dataBytes(path,
                {reinterpret_cast<const std::uint8_t *>(fname.data()),
                 fname.size()});

    a.li(r15, 0); // checksum accumulator

    // fd = open("data/in.bin", read)
    a.lia(r1, path);
    a.li(r2, openRead);
    a.sys(Sys::Open);
    a.mov(r14, r0);

    // Stream the file in 64-byte chunks; a short read just means the
    // next iteration picks up where the offset left off.
    Label loop = a.hereLabel();
    Label done = a.newLabel();
    a.mov(r1, r14);
    a.lia(r2, buf);
    a.li(r3, 64);
    a.sys(Sys::Read);
    a.beqz(r0, done); // EOF
    a.mov(r12, r0);   // bytes delivered
    a.lia(r4, buf);
    Label fold = a.hereLabel();
    Label folded = a.newLabel();
    a.beqz(r12, folded);
    a.ld8(r5, r4, 0);
    a.add(r15, r15, r5);
    a.addi(r4, r4, 1);
    a.addi(r12, r12, -1);
    a.jmp(fold);
    a.bind(folded);
    a.jmp(loop);

    a.bind(done);
    // Publish the checksum and exit with its low bits.
    a.lia(r3, counterAddr);
    a.st64(r3, 0, r15);
    a.lia(r5, counterAddr);
    a.li(r6, 8);
    lib::writeFd(a, fdStdout, r5, r6);
    a.andi(r1, r15, 0xffff);
    a.sys(Sys::Exit);
    return a.finish("file_chunk_reader");
}

GuestProgram
arithLoop(std::uint64_t iters)
{
    Assembler a;
    a.li(r10, static_cast<std::int64_t>(iters));
    a.li(r11, 0x9e3779b9);
    a.li(r12, 1);
    Label loop = a.hereLabel();
    Label done = a.newLabel();
    a.beqz(r10, done);
    a.mul(r12, r12, r11);
    a.xor_(r12, r12, r10);
    a.shri(r13, r12, 13);
    a.add(r12, r12, r13);
    a.addi(r10, r10, -1);
    a.jmp(loop);
    a.bind(done);
    a.andi(r1, r12, 0xffff);
    a.sys(Sys::Exit);
    return a.finish("arith_loop");
}

constexpr Addr genSharedBase = 0x10000;
constexpr Addr genLockAddr = 0x20000;
constexpr Addr genBarrierAddr = 0x20100;
constexpr Addr genTidArray = 0x20200;
constexpr Addr genPrivateBase = 0x100000;
constexpr std::uint64_t genPrivateStride = 0x10000;
constexpr unsigned numSharedSlots = 16;

/** Emit one random worker-loop action. */
void
emitAction(Assembler &a, Rng &rng, const GenOptions &opts,
           std::uint64_t nthreads)
{
    // Register discipline: r8 loop counter, r9 private base,
    // r10 shared base, r11 lock, r12 rng state, r13 index,
    // r14 barrier, r15 nthreads. r3..r7 scratch.
    const unsigned slot = static_cast<unsigned>(
        rng.below(numSharedSlots));
    const unsigned actions =
        (opts.allowRaces ? 10u : 9u) + (opts.allowSignals ? 1u : 0u);
    switch (rng.below(actions)) {
      case 0: // private arithmetic
        a.muli(r6, r6, 0x9e3779b9);
        a.xori(r6, r6, static_cast<std::int64_t>(rng.below(1 << 20)));
        break;
      case 1: { // private store
        auto off = static_cast<std::int64_t>(rng.below(0x100) * 8);
        a.st64(r9, off, r6);
        break;
      }
      case 2: { // private load
        auto off = static_cast<std::int64_t>(rng.below(0x100) * 8);
        a.ld64(r5, r9, off);
        a.add(r6, r6, r5);
        break;
      }
      case 3: // atomic increment of a shared slot. Slots 0..7 only:
              // an atomic access racing a lock-protected *plain*
              // access to the same word would itself be a data race.
        a.lia(r4, genSharedBase + (slot & 7) * 8);
        a.li(r5, static_cast<std::int64_t>(rng.range(1, 5)));
        a.fetchAdd(r7, r4, r5);
        break;
      case 4: // lock-protected read-modify-write (slots 8..15)
        lib::lockAcquire(a, r11, r3);
        a.ld64(r4, r10, (8 + (slot & 7)) * 8);
        a.addi(r4, r4, 1);
        a.st64(r10, (8 + (slot & 7)) * 8, r4);
        lib::lockRelease(a, r11, r3);
        break;
      case 5: // clock read (injectable result)
        a.sys(Sys::GetTime);
        a.andi(r4, r0, 0xff);
        a.add(r6, r6, r4);
        break;
      case 6: // yield
        a.sys(Sys::Yield);
        break;
      case 7: { // net receive (injectable result)
        a.li(r1, static_cast<std::int64_t>(rng.range(1, 3)));
        a.mov(r2, r9);
        a.li(r3, 16);
        a.sys(Sys::NetRecv);
        a.add(r6, r6, r0);
        break;
      }
      case 8: // small stdout write
        a.st64(r9, 0, r6);
        a.li(r1, fdStdout);
        a.mov(r2, r9);
        a.li(r3, 8);
        a.sys(Sys::Write);
        break;
      case 9:
        if (opts.allowRaces) { // UNPROTECTED shared update
            a.ld64(r4, r10, slot * 8);
            a.addi(r4, r4, 1);
            a.st64(r10, slot * 8, r4);
            break;
        }
        [[fallthrough]];
      case 10: { // async signal to a random worker
        auto target = static_cast<std::int64_t>(
            1 + rng.below(nthreads)); // worker tids are 1..n
        a.li(r1, target);
        a.li(r2, static_cast<std::int64_t>(rng.range(1, 7)));
        a.sys(Sys::Kill);
        break;
      }
    }
}

GuestProgram
randomProgram(std::uint64_t seed, const GenOptions &opts)
{
    Rng rng(seed);
    const auto nthreads =
        static_cast<std::uint64_t>(rng.range(1, 4));
    const auto iterations =
        static_cast<std::int64_t>(rng.range(20, 120));
    const auto actions = static_cast<unsigned>(rng.range(3, 10));
    const bool use_barrier =
        opts.allowBarriers && nthreads > 1 && rng.chance(1, 2);

    Assembler a;
    Label worker = a.newLabel();
    Label handler = a.newLabel();

    // ---- main ----
    a.li(r10, 0);
    a.li(r11, static_cast<std::int64_t>(nthreads));
    a.lia(r12, genTidArray);
    Label spawn_loop = a.hereLabel();
    Label spawned = a.newLabel();
    a.bgeu(r10, r11, spawned);
    lib::spawnThread(a, worker, r10);
    a.shli(r3, r10, 3);
    a.add(r3, r12, r3);
    a.st64(r3, 0, r0);
    a.addi(r10, r10, 1);
    a.jmp(spawn_loop);
    a.bind(spawned);
    a.li(r10, 0);
    Label join_loop = a.hereLabel();
    Label joined = a.newLabel();
    a.bgeu(r10, r11, joined);
    a.shli(r3, r10, 3);
    a.add(r3, r12, r3);
    a.ld64(r4, r3, 0);
    lib::joinThread(a, r4);
    a.addi(r10, r10, 1);
    a.jmp(join_loop);
    a.bind(joined);
    // Checksum the shared slots; exit with it.
    a.lia(r5, genSharedBase);
    a.li(r6, numSharedSlots);
    a.li(r7, 0);
    Label csum = a.hereLabel();
    Label cdone = a.newLabel();
    a.beqz(r6, cdone);
    a.ld64(r4, r5, 0);
    a.add(r7, r7, r4);
    a.addi(r5, r5, 8);
    a.addi(r6, r6, -1);
    a.jmp(csum);
    a.bind(cdone);
    a.mov(r1, r7);
    a.sys(Sys::Exit);

    // ---- worker ----
    a.bind(worker);
    a.mov(r13, r1);
    a.muli(r9, r13, static_cast<std::int64_t>(genPrivateStride));
    a.addi(r9, r9, static_cast<std::int64_t>(genPrivateBase));
    if (opts.allowSignals) {
        a.liLabel(r1, handler);
        a.sys(Sys::SigHandler);
    }
    a.lia(r10, genSharedBase);
    a.lia(r11, genLockAddr);
    a.lia(r14, genBarrierAddr);
    a.li(r15, static_cast<std::int64_t>(nthreads));
    a.muli(r12, r13, 0x9E3779B97F4A7C15ll);
    a.addi(r12, r12, 42);
    a.li(r8, iterations);

    Label loop = a.hereLabel();
    Label done = a.newLabel();
    a.beqz(r8, done);
    for (unsigned k = 0; k < actions; ++k)
        emitAction(a, rng, opts, nthreads);
    if (use_barrier)
        lib::barrierWait(a, r14, r15, r4, r5);
    a.addi(r8, r8, -1);
    a.jmp(loop);
    a.bind(done);
    lib::exitWith(a, 0);

    // ---- signal handler: async-signal-safe only (the signal frame
    // restores every register, so clobbering is fine; blocking or
    // lock-taking would not be) ----
    a.bind(handler);
    const unsigned hslot = static_cast<unsigned>(rng.below(8));
    a.lia(r4, genSharedBase + hslot * 8); // atomic-only slot set
    a.li(r5, 1);
    a.fetchAdd(r6, r4, r5);
    a.st64(r9, 0x7f8, r1); // remember the last signal privately
    a.sys(Sys::SigReturn);

    return a.finish("random_" + std::to_string(seed));
}


} // namespace dp::testprogs
