/**
 * @file
 * Executor: the host execution engine behind every concurrent part of
 * the pipeline.
 *
 * One persistent worker pool with a bounded MPMC task queue replaces
 * the three ad-hoc threading idioms the host side grew — thread-per-
 * epoch std::async in the recorder, a throwaway std::thread pool per
 * replayParallel call, and journal appends serialized on the
 * thread-parallel critical path. Consumers submit typed tasks and get
 * typed futures back; tasks can carry a cancellation token (a
 * divergence squash cancels queued-but-unstarted epochs instead of
 * executing them), exceptions propagate through get(), and the
 * destructor deterministically drains the queue and joins every
 * worker before returning.
 *
 * Determinism contract: the executor schedules host work only; it
 * never touches virtual time, recorded bytes, or fault decisions.
 * For fixed options, recordings and journals are byte-identical
 * across any worker count, including the inline mode (workers == 0:
 * submit() runs the task on the caller's thread and spawns nothing) —
 * pinned by exec_test and trace_test.
 *
 * Trace integration: with a sink attached the pool emits one
 * "worker-start"/"worker-exit" instant per spawned worker and one
 * span per executed task on TraceStage::Exec, tid = worker index —
 * one clean Perfetto track per host worker. Observe-only, never read
 * back.
 */

#ifndef DP_EXEC_EXECUTOR_HH
#define DP_EXEC_EXECUTOR_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "trace/json.hh"

namespace dp
{

class TraceRecorder;

/** Thrown by TaskFuture::get() when the task was cancelled before a
 *  worker picked it up (it never executed). */
class TaskCancelled : public std::exception
{
  public:
    const char *
    what() const noexcept override
    {
        return "task cancelled before execution";
    }
};

/** Lifecycle of a submitted task. */
enum class TaskState : std::uint8_t
{
    Pending,   ///< queued, no worker has claimed it
    Running,   ///< a worker is executing it
    Done,      ///< finished; the future holds the value
    Cancelled, ///< token fired before execution; never ran
    Failed,    ///< the task body threw; the future holds the exception
};

/** Stable human-readable name of @p s (e.g. "cancelled"). */
const char *taskStateName(TaskState s);

/**
 * Read side of a cancellation flag. Cheap to copy; shared with the
 * CancellationSource that controls it. A default-constructed token is
 * "never cancelled".
 */
class CancellationToken
{
  public:
    CancellationToken() = default;

    /** True once the owning source fired. */
    bool
    cancelled() const
    {
        return flag_ && flag_->load(std::memory_order_acquire);
    }

  private:
    friend class CancellationSource;
    explicit CancellationToken(
        std::shared_ptr<std::atomic<bool>> flag)
        : flag_(std::move(flag))
    {}

    std::shared_ptr<std::atomic<bool>> flag_;
};

/** Write side of a cancellation flag. cancel() is idempotent and safe
 *  from any thread; it only prevents *unstarted* tasks from running —
 *  a task already executing runs to completion. */
class CancellationSource
{
  public:
    CancellationSource()
        : flag_(std::make_shared<std::atomic<bool>>(false))
    {}

    void
    cancel()
    {
        flag_->store(true, std::memory_order_release);
    }

    bool
    cancelled() const
    {
        return flag_->load(std::memory_order_acquire);
    }

    CancellationToken token() const { return CancellationToken(flag_); }

  private:
    std::shared_ptr<std::atomic<bool>> flag_;
};

namespace exec_detail
{

struct SharedStateBase
{
    mutable std::mutex mu;
    mutable std::condition_variable cv;
    TaskState state = TaskState::Pending;
    std::exception_ptr error;

    bool
    terminal() const
    {
        return state == TaskState::Done ||
               state == TaskState::Cancelled ||
               state == TaskState::Failed;
    }

    void
    finish(TaskState s, std::exception_ptr e = nullptr)
    {
        {
            std::lock_guard<std::mutex> lock(mu);
            state = s;
            error = std::move(e);
        }
        cv.notify_all();
    }

    void
    wait() const
    {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return terminal(); });
    }
};

template <typename T> struct SharedState : SharedStateBase
{
    std::optional<T> value;
};

template <> struct SharedState<void> : SharedStateBase
{};

} // namespace exec_detail

/**
 * Typed handle to a submitted task. wait() blocks until the task
 * reaches a terminal state; get() additionally returns the value,
 * rethrows the task's exception, or throws TaskCancelled. Futures are
 * cheap to move and copy (shared state); dropping every future never
 * blocks — the Executor's destructor is the drain point.
 */
template <typename T> class TaskFuture
{
  public:
    TaskFuture() = default;

    bool valid() const { return state_ != nullptr; }

    /** Block until the task finished, was cancelled, or failed. */
    void wait() const { state_->wait(); }

    /** Current lifecycle state (racy snapshot unless terminal). */
    TaskState
    state() const
    {
        std::lock_guard<std::mutex> lock(state_->mu);
        return state_->state;
    }

    /** True iff the task was squashed before it ever ran. */
    bool
    cancelled() const
    {
        return state() == TaskState::Cancelled;
    }

    /** Wait, then yield the result (throws TaskCancelled / rethrows
     *  the task's exception). */
    T
    get() const
    {
        state_->wait();
        std::lock_guard<std::mutex> lock(state_->mu);
        if (state_->state == TaskState::Cancelled)
            throw TaskCancelled{};
        if (state_->state == TaskState::Failed)
            std::rethrow_exception(state_->error);
        if constexpr (!std::is_void_v<T>)
            return std::move(*state_->value);
    }

  private:
    friend class Executor;
    explicit TaskFuture(
        std::shared_ptr<exec_detail::SharedState<T>> s)
        : state_(std::move(s))
    {}

    std::shared_ptr<exec_detail::SharedState<T>> state_;
};

/** Worker-side view of the task being executed. */
struct TaskContext
{
    /** Index of the executing worker (0 on the inline path). */
    unsigned worker = 0;
};

/** Per-task submission options. */
struct TaskOptions
{
    /** Cancellation token; a fired token prevents execution of a
     *  still-queued task (its future reports Cancelled). */
    CancellationToken token = {};
    /** Static label for the task's trace span ("task" default). Must
     *  be a string literal / static string — never freed. */
    const char *label = "task";
};

/** Pool-wide configuration. */
struct ExecutorOptions
{
    /** Bounded task-queue capacity; submit() blocks (back-pressure)
     *  while the queue holds this many unclaimed tasks. */
    std::size_t queueCapacity = 64;
    /** Observability sink (nullptr = off, the zero-work default). */
    TraceRecorder *trace = nullptr;
};

/** Monotonic counters describing a pool's lifetime (all totals). */
struct ExecutorStats
{
    std::uint64_t workers = 0;        ///< configured pool size
    std::uint64_t threadsSpawned = 0; ///< OS threads ever created
    std::uint64_t tasksSubmitted = 0;
    std::uint64_t tasksExecuted = 0;  ///< ran to completion or threw
    std::uint64_t tasksCancelled = 0; ///< squashed before execution
    std::uint64_t tasksFailed = 0;    ///< executed and threw
    std::uint64_t peakQueueDepth = 0;
    std::uint64_t backpressureWaits = 0; ///< submits that had to block
};

/**
 * The persistent worker pool. Spawns its workers eagerly at
 * construction (workers == 0 spawns nothing: submit() executes
 * inline), executes tasks in FIFO submission order, and joins
 * deterministically on destruction: every task already submitted is
 * executed (or observed cancelled) before the destructor returns.
 */
class Executor
{
    /** Uniform invocation: tasks may take the TaskContext or not.
     *  (Declared first — submit()'s return type names it.) */
    template <typename F>
    static auto
    invokeTask(F &fn, const TaskContext &ctx)
    {
        if constexpr (std::is_invocable_v<F &, const TaskContext &>)
            return fn(ctx);
        else
            return fn();
    }

  public:
    explicit Executor(unsigned workers, ExecutorOptions opts = {});
    Executor(const Executor &) = delete;
    Executor &operator=(const Executor &) = delete;
    /** Drains the queue, then joins every worker. */
    ~Executor();

    /**
     * Submit @p fn — invocable as fn(const TaskContext &) or fn() —
     * returning a typed future. Blocks while the queue is at
     * capacity. With zero workers the task executes on the calling
     * thread before submit returns (cancellation still honoured).
     */
    template <typename F>
    auto
    submit(F &&fn, TaskOptions opts = {})
        -> TaskFuture<decltype(invokeTask(fn, TaskContext{}))>
    {
        using R = decltype(invokeTask(fn, TaskContext{}));
        auto state =
            std::make_shared<exec_detail::SharedState<R>>();
        auto run = [state, fn = std::forward<F>(fn)](
                       const TaskContext &ctx) mutable -> TaskState {
            {
                std::lock_guard<std::mutex> lock(state->mu);
                state->state = TaskState::Running;
            }
            try {
                if constexpr (std::is_void_v<R>)
                    invokeTask(fn, ctx);
                else
                    state->value.emplace(invokeTask(fn, ctx));
                state->finish(TaskState::Done);
                return TaskState::Done;
            } catch (...) {
                state->finish(TaskState::Failed,
                              std::current_exception());
                return TaskState::Failed;
            }
        };
        auto drop = [state] { state->finish(TaskState::Cancelled); };
        enqueue(std::move(run), std::move(drop), opts);
        return TaskFuture<R>(std::move(state));
    }

    /** Block until every submitted task reached a terminal state.
     *  (Const: draining observes the pool, it never changes what will
     *  have been executed.) */
    void drain() const;

    /** Configured pool size (0 = inline mode). */
    unsigned workerCount() const { return workers_; }

    /** Counter snapshot (safe while the pool runs). */
    ExecutorStats stats() const;

    /** Stats as a "dp-exec-v1" JSON document — the machine-readable
     *  spawn-counter contract ("no thread-per-epoch") tests and tools
     *  check. */
    JsonValue metricsSnapshot() const;

  private:
    struct QueuedTask
    {
        /** Execute the task; reports Done or Failed (the task's own
         *  exception is parked in its shared state, never thrown
         *  across the worker loop). */
        std::function<TaskState(const TaskContext &)> run;
        /** Mark the task cancelled without executing it. */
        std::function<void()> drop;
        CancellationToken token;
        const char *label = "task";
    };

    void enqueue(std::function<TaskState(const TaskContext &)> run,
                 std::function<void()> drop,
                 const TaskOptions &opts);
    /** Run or drop @p t on @p worker, then retire it. */
    void dispatch(QueuedTask t, unsigned worker);
    void workerLoop(unsigned index);

    const unsigned workers_;
    const std::size_t capacity_;
    TraceRecorder *const trace_;

    mutable std::mutex mu_;
    mutable std::condition_variable notEmpty_;
    mutable std::condition_variable notFull_;
    mutable std::condition_variable idle_;
    std::deque<QueuedTask> queue_;
    std::uint64_t outstanding_ = 0; ///< submitted, not yet terminal
    bool stop_ = false;
    ExecutorStats stats_;
    std::vector<std::thread> threads_;
};

} // namespace dp

#endif // DP_EXEC_EXECUTOR_HH
