/**
 * @file
 * M1-M3 — google-benchmark microbenchmarks of the substrate:
 * interpreter throughput, CoW memory operations, state hashing, and
 * log codec speed. These bound how much guest work the experiment
 * harness can simulate per host second.
 */

#include <benchmark/benchmark.h>

#include "bench_common.hh"
#include "common/bytes.hh"
#include "log/logs.hh"
#include "mem/paged_memory.hh"
#include "os/simos.hh"
#include "os/uni_runner.hh"
#include "vm/assembler.hh"

namespace
{

using namespace dp;

GuestProgram
arithProgram(std::int64_t iters)
{
    using enum Reg;
    Assembler a;
    a.li(r10, iters);
    a.li(r11, 0x9e3779b9);
    a.li(r12, 1);
    Label loop = a.hereLabel();
    Label done = a.newLabel();
    a.beqz(r10, done);
    a.mul(r12, r12, r11);
    a.xor_(r12, r12, r10);
    a.shri(r13, r12, 13);
    a.add(r12, r12, r13);
    a.addi(r10, r10, -1);
    a.jmp(loop);
    a.bind(done);
    a.li(r1, 0);
    a.sys(Sys::Exit);
    return a.finish("bench_arith");
}

void
BM_InterpreterArith(benchmark::State &state)
{
    GuestProgram prog = arithProgram(state.range(0));
    std::uint64_t instrs = 0;
    for (auto _ : state) {
        Machine m(prog, {});
        SimOS os;
        UniRunner runner(m, os, {}, {});
        StopReason r = runner.run();
        if (r != StopReason::AllExited)
            state.SkipWithError("guest did not finish");
        instrs += runner.stats().instrs;
    }
    state.counters["instrs/s"] = benchmark::Counter(
        static_cast<double>(instrs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_InterpreterArith)->Arg(10'000)->Arg(100'000);

void
BM_MemoryWrite64(benchmark::State &state)
{
    PagedMemory mem;
    std::uint64_t addr = 0;
    for (auto _ : state) {
        mem.write64(addr & 0xfffff, addr);
        addr += 8;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MemoryWrite64);

void
BM_MemoryRead64(benchmark::State &state)
{
    PagedMemory mem;
    for (std::uint64_t a = 0; a < (1u << 20); a += 8)
        mem.write64(a, a);
    std::uint64_t addr = 0;
    std::uint64_t sink = 0;
    for (auto _ : state) {
        sink ^= mem.read64(addr & 0xfffff);
        addr += 8;
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MemoryRead64);

void
BM_SnapshotCow(benchmark::State &state)
{
    const std::int64_t dirty = state.range(0);
    PagedMemory mem;
    for (std::uint64_t pg = 0; pg < 4096; ++pg)
        mem.write64(pg * Page::bytes, pg);
    MemSnapshot snap = mem.snapshot();
    for (auto _ : state) {
        for (std::int64_t k = 0; k < dirty; ++k)
            mem.write64((k % 4096) * Page::bytes, k);
        benchmark::DoNotOptimize(mem.snapshot());
    }
    state.SetItemsProcessed(state.iterations() * dirty);
}
BENCHMARK(BM_SnapshotCow)->Arg(64)->Arg(1024);

void
BM_StateHash(benchmark::State &state)
{
    PagedMemory mem;
    for (std::uint64_t a = 0; a < (1u << 22); a += 64)
        mem.write64(a, a * 0x9e3779b9);
    for (auto _ : state)
        benchmark::DoNotOptimize(mem.hash());
    state.SetBytesProcessed(state.iterations() *
                            static_cast<std::int64_t>(
                                mem.residentPages() * Page::bytes));
}
BENCHMARK(BM_StateHash);

void
BM_ScheduleLogRoundTrip(benchmark::State &state)
{
    ScheduleLog log;
    for (std::uint32_t i = 0; i < 10'000; ++i)
        log.append({i % 8, 1000 + i % 97, (i % 13) == 0});
    for (auto _ : state) {
        std::vector<std::uint8_t> bytes = log.encode();
        ScheduleLog back = ScheduleLog::decode(bytes);
        benchmark::DoNotOptimize(back.size());
    }
    state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_ScheduleLogRoundTrip);

void
BM_VarintEncode(benchmark::State &state)
{
    for (auto _ : state) {
        ByteWriter w;
        for (std::uint64_t i = 0; i < 4096; ++i)
            w.varu(i * 0x9e3779b97f4a7c15ull >> (i % 48));
        benchmark::DoNotOptimize(w.size());
    }
    state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_VarintEncode);

} // namespace

int
main(int argc, char **argv)
{
    using namespace dp;
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();

    // Machine-readable summary row: one quick end-to-end record
    // measurement, so every bench run leaves a BENCH_*.json behind
    // (see bench_common.hh for the schema).
    const workloads::Workload *w = workloads::findWorkload("pfscan");
    if (!w) {
        std::cerr << "pfscan workload missing\n";
        return 1;
    }
    harness::MeasureOptions mo;
    mo.threads = 2;
    mo.totalCpus = 4;
    mo.scale = 4;
    mo.epochLength = 100'000;
    harness::Measurement m = harness::measure(*w, mo);
    if (!m.recordOk) {
        std::cerr << "record failed for " << w->name << "\n";
        return 1;
    }
    if (!bench::emitBenchJson("micro", {bench::toBenchResult(m)}))
        return 1;
    return 0;
}
