; hello_pipe.s — single-threaded pipe round trip.
.data 0x1000
.ascii "pipes!"
    li r1, 4          ; pipe id
    li r2, 0x1000
    li r3, 6
    li r0, 15         ; pipe_write
    syscall
    li r1, 4
    li r2, 0x2000
    li r3, 6
    li r0, 16         ; pipe_read
    syscall
    mov r15, r0       ; bytes read (6)
    li r2, 0x2000
    ld8 r1, r2, 0     ; 'p'
    add r1, r1, r15
    li r0, 0          ; exit('p' + 6)
    syscall
