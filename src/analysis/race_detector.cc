#include "analysis/race_detector.hh"

#include <algorithm>

namespace dp
{

ReplayObserver
RaceDetector::observer()
{
    ReplayObserver obs;
    obs.onEpochStart = [this](EpochId e) { currentEpoch_ = e; };
    obs.onMemAccess = [this](ThreadId tid, Addr addr, unsigned size,
                             bool is_write, bool is_atomic) {
        handleMemAccess(tid, addr, size, is_write, is_atomic);
    };
    obs.onSync = [this](ThreadId tid, SyncKind, SyncKey key) {
        handleSync(tid, key);
    };
    obs.onWake = [this](ThreadId waker, ThreadId woken) {
        handleWake(waker, woken);
    };
    return obs;
}

RaceDetector::VectorClock &
RaceDetector::clockOf(ThreadId tid)
{
    if (tid >= threadClocks_.size())
        threadClocks_.resize(tid + 1);
    VectorClock &vc = threadClocks_[tid];
    if (vc.size() <= tid)
        vc.resize(tid + 1, 0);
    if (vc[tid] == 0)
        vc[tid] = 1; // birth tick
    return vc;
}

void
RaceDetector::joinInto(VectorClock &dst, const VectorClock &src)
{
    if (dst.size() < src.size())
        dst.resize(src.size(), 0);
    for (std::size_t i = 0; i < src.size(); ++i)
        dst[i] = std::max(dst[i], src[i]);
}

std::uint32_t
RaceDetector::clockEntry(const VectorClock &vc, ThreadId tid)
{
    return tid < vc.size() ? vc[tid] : 0;
}

void
RaceDetector::report(Addr word, ThreadId first, ThreadId second,
                     RaceReport::Kind kind)
{
    races_.push_back({word, first, second, kind, currentEpoch_});
}

void
RaceDetector::handleSync(ThreadId tid, SyncKey key)
{
    ++syncOps_;
    VectorClock &ct = clockOf(tid);
    VectorClock &lm = objectClocks_[key];
    // Our atomics and syscalls are acquire+release: pull the object's
    // knowledge in, publish ours out, then advance our own clock.
    joinInto(ct, lm);
    lm = ct;
    ++ct[tid];
}

void
RaceDetector::handleWake(ThreadId waker, ThreadId woken)
{
    // Materialize both clocks before taking references: clockOf may
    // grow threadClocks_ and invalidate earlier references.
    (void)clockOf(std::max(waker, woken));
    VectorClock &cw = clockOf(waker);
    VectorClock &ct = clockOf(woken);
    joinInto(ct, cw);
    ++cw[waker];
}

void
RaceDetector::handleMemAccess(ThreadId tid, Addr addr, unsigned size,
                              bool is_write, bool is_atomic)
{
    ++accesses_;
    VectorClock &ct = clockOf(tid);
    const Addr first_word = addr & ~Addr{7};
    const Addr last_word = (addr + size - 1) & ~Addr{7};

    for (Addr word = first_word; word <= last_word; word += 8) {
        WordState &ws = words_[word];
        if (ws.reported)
            continue; // dedup per word

        // Check against the last write.
        if (ws.writeTid != invalidThread && ws.writeTid != tid &&
            !(is_atomic && ws.writeWasAtomic) &&
            ws.writeClock > clockEntry(ct, ws.writeTid)) {
            report(word, ws.writeTid, tid,
                   is_write ? RaceReport::Kind::WriteWrite
                            : RaceReport::Kind::WriteRead);
            ws.reported = true;
            continue;
        }

        if (is_write) {
            // A write also conflicts with unordered earlier reads.
            bool raced = false;
            for (ThreadId u = 0; u < ws.readClocks.size(); ++u) {
                if (u == tid || ws.readClocks[u] == 0)
                    continue;
                if (is_atomic && ws.readWasAtomic)
                    continue; // atomic-atomic never races
                if (ws.readClocks[u] > clockEntry(ct, u)) {
                    report(word, u, tid,
                           RaceReport::Kind::ReadWrite);
                    ws.reported = true;
                    raced = true;
                    break;
                }
            }
            if (raced)
                continue;
            ws.writeTid = tid;
            ws.writeClock = ct[tid];
            ws.writeWasAtomic = is_atomic;
            // A new write supersedes the read set.
            ws.readClocks.clear();
            ws.readWasAtomic = false;
        } else {
            if (ws.readClocks.size() <= tid)
                ws.readClocks.resize(tid + 1, 0);
            ws.readClocks[tid] = ct[tid];
            ws.readWasAtomic = ws.readWasAtomic || is_atomic;
        }
    }
}

bool
RaceDetector::isRacyWord(Addr word_addr) const
{
    for (const RaceReport &r : races_)
        if (r.wordAddr == word_addr)
            return true;
    return false;
}

} // namespace dp
