#include "fault/fault.hh"

#include <cmath>
#include <sstream>

#include "common/hash.hh"
#include "common/logging.hh"

namespace dp
{

namespace
{

constexpr const char *siteNames[numFaultSites] = {
    "netrecv-fail",      "netrecv-short", "gettime-fail",
    "file-short-read",   "torn-ckpt",     "worker-death",
    "torn-frame",        "journal-crash", "journal-bitflip",
    "stream-torn-frame", "stream-crash",  "stream-bitflip",
    "link-drop",         "link-dup",      "link-reorder",
    "link-torn",         "link-disconnect", "standby-crash",
};

constexpr std::uint64_t ppmDenominator = 1'000'000;

} // namespace

const char *
faultSiteName(FaultSite site)
{
    const auto i = static_cast<std::size_t>(site);
    return i < numFaultSites ? siteNames[i] : "invalid";
}

FaultPlan &
FaultPlan::with(FaultSite site, double prob,
                std::uint32_t max_per_scope)
{
    dp_assert(prob >= 0.0 && prob <= 1.0,
              "fault probability out of range: ", prob);
    Site &s = sites[static_cast<std::size_t>(site)];
    s.ppm = static_cast<std::uint32_t>(
        std::llround(prob * static_cast<double>(ppmDenominator)));
    s.maxPerScope = max_per_scope;
    return *this;
}

bool
FaultPlan::enabled() const
{
    for (const Site &s : sites)
        if (s.ppm != 0)
            return true;
    return false;
}

FaultPlan
FaultPlan::parse(const std::string &spec, std::uint64_t seed)
{
    FaultPlan plan;
    plan.seed = seed;
    std::istringstream in(spec);
    std::string entry;
    while (std::getline(in, entry, ',')) {
        if (entry.empty())
            continue;
        const std::size_t eq = entry.find('=');
        if (eq == std::string::npos)
            dp_fatal("fault plan entry '", entry,
                     "' is not site=probability[:budget]");
        const std::string name = entry.substr(0, eq);
        std::string rest = entry.substr(eq + 1);
        std::uint32_t budget = ~std::uint32_t{0};
        if (const std::size_t colon = rest.find(':');
            colon != std::string::npos) {
            budget = static_cast<std::uint32_t>(
                std::stoul(rest.substr(colon + 1)));
            rest.resize(colon);
        }
        double prob = 0.0;
        try {
            prob = std::stod(rest);
        } catch (...) {
            dp_fatal("bad fault probability '", rest, "' in '", entry,
                     "'");
        }
        if (prob < 0.0 || prob > 1.0)
            dp_fatal("fault probability ", prob,
                     " out of [0,1] in '", entry, "'");
        bool found = false;
        for (std::size_t i = 0; i < numFaultSites; ++i) {
            if (name == siteNames[i]) {
                plan.with(static_cast<FaultSite>(i), prob, budget);
                found = true;
                break;
            }
        }
        if (!found) {
            std::ostringstream known;
            for (std::size_t i = 0; i < numFaultSites; ++i)
                known << (i ? ", " : "") << siteNames[i];
            dp_fatal("unknown fault site '", name, "' (known: ",
                     known.str(), ")");
        }
    }
    return plan;
}

std::string
FaultPlan::describe() const
{
    std::ostringstream out;
    out << "seed " << seed << ":";
    bool any = false;
    for (std::size_t i = 0; i < numFaultSites; ++i) {
        const Site &s = sites[i];
        if (s.ppm == 0)
            continue;
        out << ' ' << siteNames[i] << '='
            << static_cast<double>(s.ppm) /
                   static_cast<double>(ppmDenominator);
        if (s.maxPerScope != ~std::uint32_t{0})
            out << ':' << s.maxPerScope;
        any = true;
    }
    if (!any)
        out << " (no sites enabled)";
    return out.str();
}

std::uint64_t
FaultStats::totalFired() const
{
    std::uint64_t total = 0;
    for (std::uint64_t f : fired)
        total += f;
    return total;
}

bool
FaultInjector::fire(FaultSite site, std::uint64_t scope)
{
    const auto idx = static_cast<std::size_t>(site);
    dp_assert(idx < numFaultSites, "fire() on an invalid fault site");
    const FaultPlan::Site &cfg = plan_.sites[idx];

    FaultEvent event;
    {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.queried[idx];
        if (cfg.ppm == 0)
            return false;
        ScopeState &st =
            scopes_[{static_cast<std::uint8_t>(idx), scope}];
        const std::uint64_t seq = st.seq++;
        if (st.fired >= cfg.maxPerScope)
            return false;
        // The decision is a pure hash of (seed, site, scope, seq):
        // identical across runs and host-thread interleavings.
        const std::uint64_t draw = mix64(
            plan_.seed ^ mix64((std::uint64_t{idx} << 56) + 1) ^
            mix64(scope * 0x9e3779b97f4a7c15ull + seq + 1));
        if (draw % ppmDenominator >= cfg.ppm)
            return false;
        ++st.fired;
        ++stats_.fired[idx];
        event = {site, scope, seq};
        events_.push_back(event);
    }
    if (onFault)
        onFault(event);
    return true;
}

std::uint64_t
FaultInjector::count(FaultSite site) const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_.fired[static_cast<std::size_t>(site)];
}

FaultStats
FaultInjector::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

std::vector<FaultEvent>
FaultInjector::events() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return events_;
}

} // namespace dp
