file(REMOVE_RECURSE
  "libdp_mem.a"
)
