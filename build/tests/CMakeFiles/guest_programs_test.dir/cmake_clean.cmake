file(REMOVE_RECURSE
  "CMakeFiles/guest_programs_test.dir/guest_programs_test.cc.o"
  "CMakeFiles/guest_programs_test.dir/guest_programs_test.cc.o.d"
  "guest_programs_test"
  "guest_programs_test.pdb"
  "guest_programs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/guest_programs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
