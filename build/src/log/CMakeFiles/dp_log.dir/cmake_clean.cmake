file(REMOVE_RECURSE
  "CMakeFiles/dp_log.dir/logs.cc.o"
  "CMakeFiles/dp_log.dir/logs.cc.o.d"
  "libdp_log.a"
  "libdp_log.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dp_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
