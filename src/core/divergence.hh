/**
 * @file
 * Divergence detection: did the epoch-parallel execution end an epoch
 * in the state the thread-parallel run speculated?
 *
 * The fast path is a single digest comparison. When states differ,
 * report() produces a structured explanation (which pages, which
 * threads, whether OS state differs) for diagnostics and tests.
 */

#ifndef DP_CORE_DIVERGENCE_HH
#define DP_CORE_DIVERGENCE_HH

#include <cstdint>
#include <vector>

#include "ckpt/checkpoint.hh"
#include "os/machine.hh"

namespace dp
{

/** Structured description of a state mismatch. */
struct DivergenceReport
{
    bool equal = true;
    /** Guest page indices whose content differs. */
    std::vector<std::uint32_t> pages;
    /** Thread ids whose contexts differ (or exist on one side only). */
    std::vector<ThreadId> threads;
    bool osDiffers = false;
};

/** Compares epoch-end states. */
class DivergenceDetector
{
  public:
    /** Fast check: digests only. */
    static bool
    matches(const Machine &end_state, const Checkpoint &expected)
    {
        return end_state.stateHash() == expected.stateHash();
    }

    /** Full structural diff for diagnostics. */
    static DivergenceReport report(const Machine &end_state,
                                   const Checkpoint &expected);
};

} // namespace dp

#endif // DP_CORE_DIVERGENCE_HH
