/**
 * @file
 * E12 (extension) — host-parallel record pipeline.
 *
 * Beyond the paper's evaluation: the recorder can execute the
 * epoch-parallel runs on real host threads concurrently with the
 * thread-parallel run, the way a deployment would. Recordings are
 * byte-identical to the synchronous reference mode (tested in
 * parallel_record_test); this bench shows the wall-clock overlap the
 * pipeline buys on this machine and verifies result equivalence.
 */

#include <chrono>

#include "bench_common.hh"
#include "replay/recording_io.hh"

using namespace dp;
using namespace dp::bench;

namespace
{

struct HostRun
{
    double wallMs = 0.0;
    bool ok = false;
    std::uint64_t artifactHash = 0;
};

HostRun
recordHost(const workloads::WorkloadBundle &b, unsigned host_workers)
{
    RecorderOptions opts;
    opts.workerCpus = 2;
    opts.epochLength = 150'000;
    opts.hostWorkers = host_workers;
    opts.keepCheckpoints = false;

    auto t0 = std::chrono::steady_clock::now();
    UniparallelRecorder rec(b.program, b.config, opts);
    RecordOutcome out = rec.record();
    auto t1 = std::chrono::steady_clock::now();

    HostRun r;
    r.wallMs =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    r.ok = out.ok;
    if (out.ok)
        r.artifactHash =
            fastHash64(serializeRecording(out.recording));
    return r;
}

} // namespace

int
main()
{
    banner("E12 (extension: host pipeline)",
           "wall-clock record time, synchronous vs host-parallel "
           "epoch execution",
           "[extension] beyond the paper's eval; recordings are "
           "byte-identical across modes");

    Table t({"benchmark", "sync ms", "2-worker ms", "speedup",
             "identical"});

    for (const char *name : {"pbzip2", "mysql", "fft", "ocean"}) {
        const workloads::Workload *w = workloads::findWorkload(name);
        workloads::WorkloadBundle b =
            w->make({.threads = 2, .scale = 24});
        HostRun sync_run = recordHost(b, 0);
        HostRun par_run = recordHost(b, 2);
        if (!sync_run.ok || !par_run.ok) {
            std::cerr << "record failed for " << name << "\n";
            return 1;
        }
        t.addRow({name, Table::num(sync_run.wallMs, 1),
                  Table::num(par_run.wallMs, 1),
                  Table::num(sync_run.wallMs / par_run.wallMs, 2) +
                      "x",
                  sync_run.artifactHash == par_run.artifactHash
                      ? "yes"
                      : "NO"});
    }
    t.print(std::cout);
    return 0;
}
