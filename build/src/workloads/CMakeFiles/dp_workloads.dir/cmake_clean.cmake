file(REMOVE_RECURSE
  "CMakeFiles/dp_workloads.dir/registry.cc.o"
  "CMakeFiles/dp_workloads.dir/registry.cc.o.d"
  "CMakeFiles/dp_workloads.dir/wl_client.cc.o"
  "CMakeFiles/dp_workloads.dir/wl_client.cc.o.d"
  "CMakeFiles/dp_workloads.dir/wl_common.cc.o"
  "CMakeFiles/dp_workloads.dir/wl_common.cc.o.d"
  "CMakeFiles/dp_workloads.dir/wl_fft.cc.o"
  "CMakeFiles/dp_workloads.dir/wl_fft.cc.o.d"
  "CMakeFiles/dp_workloads.dir/wl_lu.cc.o"
  "CMakeFiles/dp_workloads.dir/wl_lu.cc.o.d"
  "CMakeFiles/dp_workloads.dir/wl_ocean.cc.o"
  "CMakeFiles/dp_workloads.dir/wl_ocean.cc.o.d"
  "CMakeFiles/dp_workloads.dir/wl_pipeline.cc.o"
  "CMakeFiles/dp_workloads.dir/wl_pipeline.cc.o.d"
  "CMakeFiles/dp_workloads.dir/wl_racy.cc.o"
  "CMakeFiles/dp_workloads.dir/wl_racy.cc.o.d"
  "CMakeFiles/dp_workloads.dir/wl_radix.cc.o"
  "CMakeFiles/dp_workloads.dir/wl_radix.cc.o.d"
  "CMakeFiles/dp_workloads.dir/wl_server.cc.o"
  "CMakeFiles/dp_workloads.dir/wl_server.cc.o.d"
  "CMakeFiles/dp_workloads.dir/wl_water.cc.o"
  "CMakeFiles/dp_workloads.dir/wl_water.cc.o.d"
  "libdp_workloads.a"
  "libdp_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dp_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
