file(REMOVE_RECURSE
  "CMakeFiles/parallel_record_test.dir/parallel_record_test.cc.o"
  "CMakeFiles/parallel_record_test.dir/parallel_record_test.cc.o.d"
  "parallel_record_test"
  "parallel_record_test.pdb"
  "parallel_record_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_record_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
