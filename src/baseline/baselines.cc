#include "baseline/baselines.hh"

#include <unordered_map>

#include "common/bytes.hh"
#include "os/multicpu_sim.hh"
#include "os/simos.hh"

namespace dp
{

namespace
{

constexpr Cycles runForever = ~Cycles{0} >> 1;

/** CREW per-page ownership state. */
struct PageOwner
{
    bool exclusive = false;
    CpuId owner = 0; ///< meaningful when exclusive
};

BaselineResult
finish(Machine &m, MultiCpuSim &sim, StopReason reason,
       std::uint64_t events, std::uint64_t log_bytes)
{
    BaselineResult res;
    res.reason = reason;
    res.cycles = m.now;
    res.instrs = sim.stats().instrs;
    res.events = events;
    res.logBytes = log_bytes;
    if (!m.threads.empty())
        res.exitCode = m.threads[0].exitCode;
    return res;
}

} // namespace

CrewRecorder::CrewRecorder(const GuestProgram &prog, MachineConfig cfg,
                           BaselineOptions opts, CostModel costs)
    : prog_(&prog), cfg_(std::move(cfg)), opts_(opts), costs_(costs)
{}

BaselineResult
CrewRecorder::record()
{
    Machine m(*prog_, cfg_);
    SimOS os(costs_);

    std::unordered_map<std::uint64_t, PageOwner> owners;
    std::uint64_t events = 0;
    std::uint64_t log_bytes = 0;

    MpHooks hooks;
    hooks.onMemAccess = [&](ThreadId, CpuId cpu, Addr addr,
                            bool is_write) -> Cycles {
        PageOwner &po = owners[addr >> Page::logBytes];
        bool fault;
        if (is_write) {
            fault = !(po.exclusive && po.owner == cpu);
            po.exclusive = true;
            po.owner = cpu;
        } else {
            fault = po.exclusive && po.owner != cpu;
            if (fault)
                po.exclusive = false; // downgrade to concurrent-read
        }
        if (!fault)
            return 0;
        ++events;
        // Ordering entry: (cpu, page, instruction count) ~ varints.
        ByteWriter w;
        w.varu(cpu);
        w.varu(addr >> Page::logBytes);
        w.varu(m.now);
        log_bytes += w.size();
        return costs_.crewFaultCycles;
    };
    hooks.onSyscall = [&](ThreadId, Sys, std::uint64_t value, bool) {
        log_bytes += 1 + (64 - __builtin_clzll(value | 1) + 6) / 7;
    };

    MpOptions mp;
    mp.cpus = opts_.cpus;
    mp.seed = opts_.seed;
    mp.fuel = opts_.fuel;
    mp.record = true; // charge syscall logging like any recorder
    MultiCpuSim sim(m, os, mp, hooks);
    StopReason reason = sim.run(runForever);
    return finish(m, sim, reason, events, log_bytes);
}

ValueLogRecorder::ValueLogRecorder(const GuestProgram &prog,
                                   MachineConfig cfg,
                                   BaselineOptions opts,
                                   CostModel costs)
    : prog_(&prog), cfg_(std::move(cfg)), opts_(opts), costs_(costs)
{}

BaselineResult
ValueLogRecorder::record()
{
    Machine m(*prog_, cfg_);
    SimOS os(costs_);

    // Last writer per page; ~ThreadId{0} = no writer yet.
    std::unordered_map<std::uint64_t, ThreadId> last_writer;
    std::uint64_t events = 0;
    std::uint64_t log_bytes = 0;

    MpHooks hooks;
    hooks.onMemAccess = [&](ThreadId tid, CpuId, Addr addr,
                            bool is_write) -> Cycles {
        // Every access pays the dynamic-instrumentation dispatch.
        Cycles cost = costs_.valueInstrumentCycles;
        std::uint64_t page = addr >> Page::logBytes;
        if (is_write) {
            last_writer[page] = tid;
            return cost;
        }
        auto it = last_writer.find(page);
        if (it == last_writer.end() || it->second == tid)
            return cost; // thread-local data: no logging needed
        ++events;
        std::uint64_t value = m.mem.read64(addr & ~std::uint64_t{7});
        log_bytes += (64 - __builtin_clzll(value | 1) + 6) / 7;
        return cost + costs_.valueLogCycles;
    };
    hooks.onSyscall = [&](ThreadId, Sys, std::uint64_t value, bool) {
        log_bytes += 1 + (64 - __builtin_clzll(value | 1) + 6) / 7;
    };

    MpOptions mp;
    mp.cpus = opts_.cpus;
    mp.seed = opts_.seed;
    mp.fuel = opts_.fuel;
    mp.record = true;
    MultiCpuSim sim(m, os, mp, hooks);
    StopReason reason = sim.run(runForever);
    return finish(m, sim, reason, events, log_bytes);
}

NativeResult
runNativeBaseline(const GuestProgram &prog, const MachineConfig &cfg,
                  CpuId cpus, std::uint64_t seed, std::uint64_t fuel,
                  CostModel costs)
{
    Machine m(prog, cfg);
    SimOS os(costs);
    MpOptions mp;
    mp.cpus = cpus;
    mp.seed = seed;
    mp.fuel = fuel;
    MultiCpuSim sim(m, os, mp, {});
    NativeResult res;
    res.reason = sim.run(runForever);
    res.cycles = m.now;
    res.instrs = sim.stats().instrs;
    res.syncOps = sim.stats().syncOps;
    res.syscalls = sim.stats().syscalls;
    if (!m.threads.empty())
        res.exitCode = m.threads[0].exitCode;
    res.residentPages = m.mem.residentPages();
    res.stdoutLen = m.stdoutBytes().size();
    res.threadsPeak = static_cast<std::uint32_t>(m.threads.size());
    return res;
}

} // namespace dp
