/**
 * @file
 * The guest instruction interpreter.
 *
 * The interpreter is stateless: all mutable state lives in the
 * ThreadContext and PagedMemory it is given, so the same Interpreter
 * can drive any number of concurrent epoch executions.
 */

#ifndef DP_VM_INTERP_HH
#define DP_VM_INTERP_HH

#include <cstdint>

#include "vm/context.hh"
#include "vm/program.hh"

namespace dp
{

class PagedMemory;

/** Outcome of executing (or attempting) one instruction. */
enum class StepKind : std::uint8_t
{
    Ok,          ///< instruction retired normally
    SyscallTrap, ///< Syscall reached: OS must complete it (pc unchanged)
    Halted,      ///< Halt retired: thread exited with r0 as code
    Fault,       ///< invalid pc or opcode: thread terminated
};

/** Interprets guest code for one program. */
class Interpreter
{
  public:
    explicit Interpreter(const GuestProgram &prog) : prog_(&prog) {}

    /**
     * Execute one instruction of @p tc against @p mem.
     *
     * On Ok, pc and tc.retired advance. On SyscallTrap, pc and retired
     * are left untouched: the OS layer completes the call, writes the
     * result to r0, and calls completeSyscall(). Halt and Fault mark
     * the context Exited.
     */
    StepKind step(ThreadContext &tc, PagedMemory &mem) const;

    /** Retire the trapped syscall: set the result and advance. */
    static void
    completeSyscall(ThreadContext &tc, std::uint64_t result)
    {
        tc.reg(Reg::r0) = result;
        ++tc.pc;
        ++tc.retired;
    }

    /** Opcode of the instruction @p tc will execute next (for
     *  sync-order classification); Nop if pc is out of range. */
    Opcode
    nextOpcode(const ThreadContext &tc) const
    {
        if (tc.pc >= prog_->code.size())
            return Opcode::Nop;
        return prog_->code[tc.pc].op;
    }

    /** Effective address of the atomic op at @p tc's pc. */
    std::uint64_t
    nextAtomicAddr(const ThreadContext &tc) const
    {
        const Instr &in = prog_->code[tc.pc];
        return tc.reg(in.rs1);
    }

    /** The instruction at @p tc's pc (which must be in range). */
    const Instr &
    instrAt(const ThreadContext &tc) const
    {
        return prog_->code[tc.pc];
    }

    /**
     * Effective address and write-ness of the memory instruction at
     * @p tc's pc; only meaningful when isMemOp(nextOpcode(tc)).
     */
    std::pair<std::uint64_t, bool>
    nextMemAccess(const ThreadContext &tc) const
    {
        const Instr &in = prog_->code[tc.pc];
        if (isAtomicOp(in.op))
            return {tc.reg(in.rs1), true};
        bool is_write = in.op >= Opcode::St8 && in.op <= Opcode::St64;
        return {tc.reg(in.rs1) + static_cast<std::uint64_t>(in.imm),
                is_write};
    }

    const GuestProgram &program() const { return *prog_; }

  private:
    const GuestProgram *prog_;
};

} // namespace dp

#endif // DP_VM_INTERP_HH
