/**
 * @file
 * Failover tests for the hot standby (src/ship): the
 * kill-primary-mid-epoch acceptance matrix (promotion under every
 * link fault site lands on exactly the recovered journal prefix's
 * state, deterministically per seed), sharded v3 delivery with
 * lagging and out-of-order streams against recoverShardedJournal's
 * consistent cut, digest-mismatch fail-closed surfacing
 * (LiveReplica::ApplyError), and StandbyCrash recovery.
 */

#include <gtest/gtest.h>

#include "core/recorder.hh"
#include "fault/fault.hh"
#include "journal/sharded.hh"
#include "ship/link.hh"
#include "ship/sender.hh"
#include "ship/standby.hh"
#include "testprogs.hh"

namespace dp
{
namespace
{

RecorderOptions
testOpts()
{
    RecorderOptions opts;
    opts.workerCpus = 2;
    opts.epochLength = 15'000;
    opts.keepCheckpoints = false;
    return opts;
}

std::vector<std::span<const std::uint8_t>>
spansOf(const std::vector<std::vector<std::uint8_t>> &images)
{
    return {images.begin(), images.end()};
}

/** One sharded record session plus everything a shipping test needs
 *  to cut it up. */
struct ShardedRun
{
    std::vector<EpochRecord> epochs;
    std::vector<std::vector<std::uint8_t>> images;
    std::vector<std::vector<std::size_t>> frameEnds;
    std::uint64_t finalStateHash = 0;
};

ShardedRun
recordSharded(unsigned streams, std::uint64_t incs = 400)
{
    GuestProgram prog = testprogs::lockedCounter(2, incs);
    RecorderOptions opts = testOpts();
    ShardedJournalWriter jw(prog, {},
                            recorderOptionsFingerprint(opts),
                            {.streams = streams});
    RecordObserver obs;
    obs.addEpochSink([&](const EpochRecord &e, EpochId index) {
        jw.appendEpoch(e, index);
    });
    UniparallelRecorder rec(prog, {}, opts);
    RecordOutcome out = rec.record(&obs);
    EXPECT_TRUE(out.ok);
    jw.flush();
    ShardedRun r;
    r.epochs = out.recording.epochs;
    r.images = jw.imageSet();
    for (unsigned s = 0; s < streams; ++s)
        r.frameEnds.push_back(jw.streamFrameEnds(s));
    r.finalStateHash = out.recording.finalStateHash;
    return r;
}

/** What one full shipping session of @p images ended as. */
struct Outcome
{
    Promotion promotion;
    ShipSenderStats sender;
    StandbyStats standby;
    bool senderFailed = false;
};

Outcome
ship(const std::vector<std::vector<std::uint8_t>> &images,
     FaultInjector *faults = nullptr, ShipSenderOptions sopts = {},
     std::uint64_t lag_bound = 64)
{
    StandbyApplier standby(
        {.lagBound = lag_bound, .faults = faults});
    ShipLink link(standby, faults);
    ShipSender sender(
        link, static_cast<unsigned>(images.size()),
        [&](unsigned s) -> std::span<const std::uint8_t> {
            return images[s];
        },
        sopts);
    sender.pump();
    Outcome o;
    o.senderFailed = sender.failed();
    o.promotion = standby.promote();
    o.sender = sender.stats();
    o.standby = standby.stats();
    return o;
}

/**
 * The primary's corpse: every stream cut at a frame boundary so that
 * epoch @p keep_epochs is the consistent cut, plus a torn tail of
 * the next frame on stream 0 — the bytes a primary killed mid-epoch
 * would leave on the wire.
 */
std::vector<std::vector<std::uint8_t>>
killPrimaryAt(const ShardedRun &run, std::uint64_t keep_epochs)
{
    const unsigned n = static_cast<unsigned>(run.images.size());
    std::vector<std::vector<std::uint8_t>> cut(n);
    for (unsigned s = 0; s < n; ++s) {
        // frameEnds[0] ends the header; frame f ends epoch index
        // (f-1)*n + s. Keep frames for epochs below keep_epochs.
        std::uint64_t frames =
            keep_epochs > s ? (keep_epochs - 1 - s) / n + 1 : 0;
        const std::size_t end = run.frameEnds[s][frames];
        cut[s].assign(run.images[s].begin(),
                      run.images[s].begin() +
                          static_cast<long>(end));
    }
    // A torn tail: half of stream 0's next frame, if there is one.
    const std::vector<std::size_t> &fe = run.frameEnds[0];
    const std::uint64_t kept0 =
        keep_epochs > 0 ? (keep_epochs - 1) / n + 1 : 0;
    if (kept0 + 1 < fe.size()) {
        const std::size_t lo = fe[kept0], hi = fe[kept0 + 1];
        cut[0].insert(cut[0].end(), run.images[0].begin() + lo,
                      run.images[0].begin() +
                          static_cast<long>(lo + (hi - lo) / 2));
    }
    return cut;
}

// The acceptance matrix: the primary dies mid-epoch; the standby is
// promoted under every link fault site. The promoted machine's
// state hash must equal the state a cold recovery of the same
// journal prefix reaches, and the whole failover must be
// deterministic for a fixed seed.
TEST(Standby, KillPrimaryMidEpochFailsOverUnderEveryLinkFault)
{
    ShardedRun run = recordSharded(2, /*incs=*/2000);
    ASSERT_GE(run.epochs.size(), 5u);
    const std::uint64_t keep = run.epochs.size() - 2;
    std::vector<std::vector<std::uint8_t>> corpse =
        killPrimaryAt(run, keep);

    RecoveredShardedJournal rj =
        recoverShardedJournal(spansOf(corpse));
    ASSERT_TRUE(rj.report.headerOk);
    ASSERT_NE(rj.recording, nullptr);
    ASSERT_EQ(rj.consistentEpochs, keep);
    const std::uint64_t expectHash = rj.recording->finalStateHash;
    ASSERT_EQ(expectHash, run.epochs[keep - 1].endStateHash);

    const FaultSite sites[] = {
        FaultSite::LinkDrop,      FaultSite::LinkDuplicate,
        FaultSite::LinkReorder,   FaultSite::LinkTornBatch,
        FaultSite::LinkDisconnect, FaultSite::StandbyCrash,
    };
    for (FaultSite site : sites) {
        SCOPED_TRACE(faultSiteName(site));
        Outcome runs[2];
        for (int i = 0; i < 2; ++i) {
            FaultPlan plan;
            plan.seed = 0xfa11 ^ static_cast<std::uint64_t>(site);
            plan.with(site, 0.25);
            FaultInjector faults(plan);
            ShipSenderOptions sopts;
            sopts.batchBytes = 512;
            sopts.maxAttempts = 32;
            runs[i] = ship(corpse, &faults, sopts);
        }
        for (const Outcome &o : runs) {
            EXPECT_FALSE(o.senderFailed);
            ASSERT_TRUE(o.promotion.report.promoted);
            EXPECT_FALSE(o.promotion.report.failedClosed);
            EXPECT_EQ(o.promotion.report.replayedEpochs, keep);
            EXPECT_EQ(o.promotion.report.persistedEpochs, keep);
            EXPECT_EQ(o.promotion.report.finalStateHash, expectHash);
            ASSERT_NE(o.promotion.machine, nullptr);
            EXPECT_EQ(o.promotion.machine->stateHash(), expectHash);
        }
        // Deterministic failover: the same seed replays the same
        // session — hashes, watermarks, and the sender's entire
        // retry ledger.
        EXPECT_EQ(runs[0].sender.batchesSent,
                  runs[1].sender.batchesSent);
        EXPECT_EQ(runs[0].sender.retries, runs[1].sender.retries);
        EXPECT_EQ(runs[0].sender.timeouts, runs[1].sender.timeouts);
        EXPECT_EQ(runs[0].sender.backoffTicks,
                  runs[1].sender.backoffTicks);
        EXPECT_EQ(runs[0].sender.bytesShipped,
                  runs[1].sender.bytesShipped);
        EXPECT_EQ(runs[0].standby.crashes, runs[1].standby.crashes);
    }
}

// Satellite: sharded (v3) delivery where whole streams arrive out
// of order — the standby applies exactly the consistent cut, the
// same cut recoverShardedJournal computes.
TEST(Standby, OutOfOrderCrossStreamDeliveryAppliesTheFullSet)
{
    ShardedRun run = recordSharded(3);
    ASSERT_GE(run.epochs.size(), 4u);

    StandbyApplier standby({.lagBound = 1024});
    // Deliver each stream whole, in reverse stream order: stream 2's
    // epochs (2, 5, 8, ...) all arrive before epoch 0 does.
    std::uint64_t seq = 0;
    for (int s = 2; s >= 0; --s) {
        ShipBatch b;
        b.seq = ++seq;
        b.stream = static_cast<std::uint32_t>(s);
        b.streamCount = 3;
        b.offset = 0;
        b.bytes = run.images[static_cast<std::size_t>(s)];
        ShipAck a = standby.receive(encodeShipBatch(b));
        EXPECT_TRUE(a.accepted);
        EXPECT_FALSE(a.failedClosed);
    }
    standby.drain();
    EXPECT_EQ(standby.persistedEpochs(), run.epochs.size());
    EXPECT_EQ(standby.replayedEpochs(), run.epochs.size());

    Promotion p = standby.promote();
    ASSERT_TRUE(p.report.promoted);
    EXPECT_EQ(p.report.finalStateHash, run.finalStateHash);
}

// Satellite: a lagging stream caps the standby at the consistent
// cut — exactly recoverShardedJournal's cut over the same images —
// and promotion lands on that cut's state.
TEST(Standby, LaggingStreamCapsApplyAtTheConsistentCut)
{
    ShardedRun run = recordSharded(3);
    ASSERT_GE(run.epochs.size(), 6u);

    // Stream 1 lags: it only ever delivered its first epoch frame.
    std::vector<std::vector<std::uint8_t>> images = run.images;
    images[1].resize(run.frameEnds[1][1]);

    RecoveredShardedJournal rj =
        recoverShardedJournal(spansOf(images));
    ASSERT_NE(rj.recording, nullptr);
    ASSERT_LT(rj.consistentEpochs, run.epochs.size());
    ASSERT_GT(rj.consistentEpochs, 0u);

    Outcome o = ship(images);
    EXPECT_FALSE(o.senderFailed);
    ASSERT_TRUE(o.promotion.report.promoted);
    EXPECT_EQ(o.promotion.report.persistedEpochs,
              rj.consistentEpochs);
    EXPECT_EQ(o.promotion.report.replayedEpochs,
              rj.consistentEpochs);
    EXPECT_EQ(o.promotion.report.finalStateHash,
              rj.recording->finalStateHash);
}

// A digest mismatch (here: a tampered epoch boundary hash) fails
// the standby closed with a structured ApplyError, poisons every
// later batch, and makes promote() refuse to hand out a machine.
TEST(Standby, DigestMismatchFailsClosedWithStructuredError)
{
    ShardedRun run = recordSharded(1);
    ASSERT_GE(run.epochs.size(), 3u);

    GuestProgram prog = testprogs::lockedCounter(2, 400);
    RecorderOptions opts = testOpts();
    ShardedJournalWriter jw(prog, {},
                            recorderOptionsFingerprint(opts),
                            {.streams = 1});
    const std::uint64_t realDigest = run.epochs[1].endStateHash;
    for (std::size_t i = 0; i < run.epochs.size(); ++i) {
        EpochRecord e = run.epochs[i];
        if (i == 1)
            e.endStateHash ^= 0xdead; // the tamper
        jw.appendEpoch(e, static_cast<EpochId>(i));
    }
    jw.flush();
    std::vector<std::vector<std::uint8_t>> images = jw.imageSet();

    // lag_bound 0 makes every ack wait for the apply strand, so the
    // sender is guaranteed to see the failure before its last batch.
    // Under a looser bound the mismatch is discovered asynchronously
    // and only promote() is required to observe it (the pump may
    // already have finished — host-timing dependent).
    Outcome o = ship(images, nullptr, {}, 0);
    EXPECT_TRUE(o.sender.standbyFailed);
    EXPECT_FALSE(o.promotion.report.promoted);
    EXPECT_TRUE(o.promotion.report.failedClosed);
    EXPECT_EQ(o.promotion.machine, nullptr);
    ASSERT_TRUE(o.promotion.report.applyError.has_value());
    const ApplyError &err = *o.promotion.report.applyError;
    EXPECT_EQ(err.epoch, 1u);
    EXPECT_EQ(err.expectedDigest, realDigest ^ 0xdead);
    EXPECT_EQ(err.actualDigest, realDigest);
    EXPECT_NE(o.promotion.report.failReason.find("epoch 1"),
              std::string::npos)
        << o.promotion.report.failReason;

    // Poisoned: a fresh, perfectly valid batch is refused.
    StandbyApplier fresh(StandbyOptions{});
    ShipBatch b;
    b.seq = 1;
    b.offset = 0;
    b.bytes = images[0];
    ShipAck ok = fresh.receive(encodeShipBatch(b));
    EXPECT_TRUE(ok.accepted); // sanity: the bytes themselves decode
}

// StandbyCrash mid-session: the standby loses all volatile state,
// recovers from its own persisted images the way a restarted
// process would, and the session still converges on the source.
TEST(Standby, CrashRecoveryRebuildsFromPersistedImages)
{
    ShardedRun run = recordSharded(2);
    FaultPlan plan;
    plan.seed = 99;
    plan.with(FaultSite::StandbyCrash, 0.5);
    FaultInjector faults(plan);
    ShipSenderOptions sopts;
    sopts.batchBytes = 2048;
    sopts.maxAttempts = 64;
    Outcome o = ship(run.images, &faults, sopts);

    EXPECT_FALSE(o.senderFailed);
    EXPECT_GT(o.standby.crashes, 0u);
    ASSERT_TRUE(o.promotion.report.promoted);
    EXPECT_EQ(o.promotion.report.crashesRecovered,
              o.standby.crashes);
    EXPECT_EQ(o.promotion.report.replayedEpochs, run.epochs.size());
    EXPECT_EQ(o.promotion.report.finalStateHash, run.finalStateHash);
}

// Promotion is terminal: after promote(), the standby refuses
// further batches (the machine has been handed over).
TEST(Standby, PromotionIsTerminal)
{
    ShardedRun run = recordSharded(1);
    Outcome o = ship(run.images);
    ASSERT_TRUE(o.promotion.report.promoted);

    StandbyApplier standby(StandbyOptions{});
    ShipBatch b;
    b.seq = 1;
    b.offset = 0;
    b.bytes = run.images[0];
    EXPECT_TRUE(standby.receive(encodeShipBatch(b)).accepted);
    standby.promote();
    b.seq = 2;
    EXPECT_FALSE(standby.receive(encodeShipBatch(b)).accepted);
}

} // namespace
} // namespace dp
