file(REMOVE_RECURSE
  "CMakeFiles/dp_vm.dir/abi.cc.o"
  "CMakeFiles/dp_vm.dir/abi.cc.o.d"
  "CMakeFiles/dp_vm.dir/asmlib.cc.o"
  "CMakeFiles/dp_vm.dir/asmlib.cc.o.d"
  "CMakeFiles/dp_vm.dir/assembler.cc.o"
  "CMakeFiles/dp_vm.dir/assembler.cc.o.d"
  "CMakeFiles/dp_vm.dir/interp.cc.o"
  "CMakeFiles/dp_vm.dir/interp.cc.o.d"
  "CMakeFiles/dp_vm.dir/isa.cc.o"
  "CMakeFiles/dp_vm.dir/isa.cc.o.d"
  "CMakeFiles/dp_vm.dir/program.cc.o"
  "CMakeFiles/dp_vm.dir/program.cc.o.d"
  "CMakeFiles/dp_vm.dir/text_asm.cc.o"
  "CMakeFiles/dp_vm.dir/text_asm.cc.o.d"
  "libdp_vm.a"
  "libdp_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dp_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
