/**
 * @file
 * Copy-on-write paged guest memory.
 *
 * This is the checkpointing substrate that stands in for the kernel
 * fork()/CoW machinery DoublePlay used: snapshot() is O(resident pages)
 * pointer copies, and the cost of owning a snapshot is proportional to
 * the pages the execution subsequently dirties — the same cost structure
 * as hardware copy-on-write.
 *
 * State digests are incremental for the same reason (DESIGN.md §11):
 * a running table digest is maintained as the XOR of one well-mixed
 * contribution per non-zero page, and writes only mark their slot's
 * contribution stale. hash(), snapshot() and restore() therefore cost
 * O(pages written since the last digest query), never O(resident) —
 * epoch-boundary divergence checks track the *delta*, not the
 * footprint.
 *
 * Concurrency contract: a PagedMemory instance is used by one thread at
 * a time, but distinct instances may share pages (via snapshots) across
 * threads. Pages referenced by more than one table are never written in
 * place; shared_ptr reference counts arbitrate cloning.
 */

#ifndef DP_MEM_PAGED_MEMORY_HH
#define DP_MEM_PAGED_MEMORY_HH

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/types.hh"
#include "mem/page.hh"

namespace dp
{

/**
 * Immutable snapshot of an address space: a page table whose entries are
 * shared with (not copied from) the live memory it was taken from.
 */
class MemSnapshot
{
  public:
    MemSnapshot() = default;

    /** Content digest (absent and all-zero pages hash identically).
     *  O(1): the digest is captured when the snapshot is taken. */
    std::uint64_t hash() const { return digest_; }

    /** Number of table entries that reference a materialized page. */
    std::size_t residentPages() const;

  private:
    friend class PagedMemory;
    std::vector<PageRef> pages_;
    std::uint64_t digest_ = 0;
};

/**
 * A flat 64-bit byte-addressable guest address space backed by
 * demand-allocated 4 KiB pages with copy-on-write snapshots.
 */
class PagedMemory
{
  public:
    /** @param max_pages hard cap on resident pages (OOM guard). */
    explicit PagedMemory(std::size_t max_pages = defaultMaxPages);

    /// @name Typed accessors (little-endian, any alignment)
    /// @{
    std::uint8_t read8(Addr a) const;
    std::uint16_t read16(Addr a) const;
    std::uint32_t read32(Addr a) const;
    std::uint64_t read64(Addr a) const;
    void write8(Addr a, std::uint8_t v);
    void write16(Addr a, std::uint16_t v);
    void write32(Addr a, std::uint32_t v);
    void write64(Addr a, std::uint64_t v);
    /// @}

    /** Copy a byte range out of guest memory. */
    void readBytes(Addr a, std::span<std::uint8_t> out) const;
    /** Copy a byte range into guest memory. */
    void writeBytes(Addr a, std::span<const std::uint8_t> in);
    /** Read a NUL-terminated guest string (bounded by @p max_len). */
    std::string readCString(Addr a, std::size_t max_len = 4096) const;

    /**
     * Take a snapshot and reset dirty tracking. All currently resident
     * pages become shared; the next write to each clones it.
     */
    MemSnapshot snapshot();

    /** Replace the address space contents with @p snap. */
    void restore(const MemSnapshot &snap);

    /**
     * Content digest of the whole space (matches MemSnapshot::hash).
     * Incremental: costs O(pages written since the last digest
     * query), not O(resident pages).
     */
    std::uint64_t hash() const;

    /**
     * Content digest recomputed from scratch — every resident page is
     * rehashed from its bytes. Equal to hash() by construction; kept
     * as the reference for the debug cross-check (DP_DIGEST_CHECK)
     * and for benchmarking the non-incremental cost.
     */
    std::uint64_t referenceHash() const;

    /** Page indices written since the last snapshot()/clearDirty(). */
    const std::vector<std::uint32_t> &dirtyPages() const
    {
        return dirtyList_;
    }

    /** Forget dirty tracking without snapshotting. */
    void clearDirty();

    /** Number of materialized pages. */
    std::size_t residentPages() const;

    /**
     * Page indices whose content differs from @p other (diagnostics for
     * divergence reports; compares actual bytes, not hashes).
     */
    std::vector<std::uint32_t> diffPages(const MemSnapshot &other) const;

    static constexpr std::size_t defaultMaxPages = std::size_t{1} << 20;

  private:
    /** Table slot for @p a's page, or nullptr if never materialized. */
    const Page *pageFor(Addr a) const;
    /** Materialize (and privatize) the page containing @p a. */
    Page &writablePage(Addr a);

    /** XOR-accumulable digest contribution of slot @p idx holding a
     *  page with content digest @p page_hash (0 for zero content, so
     *  absent and all-zero pages contribute identically). */
    static std::uint64_t slotTerm(std::size_t idx,
                                  std::uint64_t page_hash);

    /** Fold every stale slot's contribution into tableDigest_; after
     *  this the digest is exact and the stale set is empty. Cost is
     *  O(slots written since the last sync). */
    void syncDigest() const;

    static std::size_t pageIndex(Addr a) { return a >> Page::logBytes; }
    static std::size_t pageOffset(Addr a)
    {
        return a & (Page::bytes - 1);
    }

    template <typename T> T readScalar(Addr a) const;
    template <typename T> void writeScalar(Addr a, T v);

    std::vector<PageRef> pages_;
    std::vector<bool> dirtyBitmap_;
    std::vector<std::uint32_t> dirtyList_;
    std::size_t maxPages_;

    /// @name Incremental digest state
    /// Mutable: digest queries are conceptually const but fold the
    /// stale slots lazily. Stale tracking is deliberately independent
    /// of the user-facing dirty tracking above — hash() must not
    /// disturb dirtyPages(), and clearDirty() must not desync the
    /// digest.
    /// @{
    /** XOR of slotTerm() over all accounted slots, exact once the
     *  stale set is folded. Empty memory digests to 0. */
    mutable std::uint64_t tableDigest_ = 0;
    /** Slots whose accounted contribution is stale (written since the
     *  last syncDigest). */
    mutable std::vector<std::uint32_t> staleList_;
    /** The accounted (pre-write) contribution of each stale slot,
     *  parallel to staleList_. */
    mutable std::vector<std::uint64_t> staleOldTerm_;
    mutable std::vector<bool> staleBitmap_;
    /// @}
};

} // namespace dp

#endif // DP_MEM_PAGED_MEMORY_HH
