#include "vm/abi.hh"

namespace dp
{

std::string_view
syscallName(Sys s)
{
    switch (s) {
      case Sys::Exit: return "exit";
      case Sys::Write: return "write";
      case Sys::Read: return "read";
      case Sys::Open: return "open";
      case Sys::Close: return "close";
      case Sys::Spawn: return "spawn";
      case Sys::Join: return "join";
      case Sys::Yield: return "yield";
      case Sys::FutexWait: return "futex_wait";
      case Sys::FutexWake: return "futex_wake";
      case Sys::GetTime: return "gettime";
      case Sys::NetRecv: return "net_recv";
      case Sys::NetSend: return "net_send";
      case Sys::Random: return "random";
      case Sys::Seek: return "seek";
      case Sys::PipeWrite: return "pipe_write";
      case Sys::PipeRead: return "pipe_read";
      case Sys::PipeClose: return "pipe_close";
      case Sys::Kill: return "kill";
      case Sys::SigHandler: return "sighandler";
      case Sys::SigReturn: return "sigreturn";
      default: return "<invalid>";
    }
}

} // namespace dp
