/**
 * @file
 * Happens-before data-race detection over replayed executions.
 *
 * The paper's motivation for deterministic replay is running
 * heavyweight dynamic analyses offline, against the exact production
 * execution. This is such an analysis: a vector-clock happens-before
 * race detector in the FastTrack tradition, driven entirely by
 * ReplayObserver events.
 *
 * Happens-before edges tracked:
 *  - program order within each thread;
 *  - release/acquire through every synchronization object (atomic
 *    RMW words, futex words, and the global OS object for other
 *    syscalls) — our atomics are RMWs, so each is both;
 *  - waker -> woken edges (futex wakes, exit waking joiners, spawn).
 *
 * Granularity is the 8-byte-aligned word (the guest's atomic
 * granule); the simulated kernel's buffer accesses inside syscalls
 * are not tracked. Atomic accesses participate in race checks against
 * *plain* accesses (atomic-vs-plain without ordering is a race) but
 * never race with each other.
 */

#ifndef DP_ANALYSIS_RACE_DETECTOR_HH
#define DP_ANALYSIS_RACE_DETECTOR_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "replay/replayer.hh"

namespace dp
{

/** One reported race (deduplicated per word address). */
struct RaceReport
{
    enum class Kind : std::uint8_t
    {
        WriteWrite,
        WriteRead, ///< earlier write, racing read
        ReadWrite, ///< earlier read, racing write
    };

    Addr wordAddr = 0;     ///< 8-byte-aligned address
    ThreadId first = 0;    ///< thread of the earlier access
    ThreadId second = 0;   ///< thread of the racing access
    Kind kind = Kind::WriteWrite;
    EpochId epoch = 0;     ///< epoch the race was observed in
};

/** Vector-clock happens-before detector. */
class RaceDetector
{
  public:
    RaceDetector() = default;

    /** Hooks to pass to Replayer::replaySequential(). The detector
     *  must outlive the replay. */
    ReplayObserver observer();

    /** Races found so far (one per word address). */
    const std::vector<RaceReport> &races() const { return races_; }

    /** True if @p word_addr (8-aligned) was reported racy. */
    bool isRacyWord(Addr word_addr) const;

    /// @name Statistics
    /// @{
    std::uint64_t accessesChecked() const { return accesses_; }
    std::uint64_t syncOpsSeen() const { return syncOps_; }
    /// @}

  private:
    using VectorClock = std::vector<std::uint32_t>;

    struct WordState
    {
        /** Last writer epoch (thread + its clock at the write). */
        ThreadId writeTid = invalidThread;
        std::uint32_t writeClock = 0;
        bool writeWasAtomic = false;
        /** Per-thread clock of each thread's last read. */
        VectorClock readClocks;
        bool readWasAtomic = false;
        bool reported = false;
    };

    void handleMemAccess(ThreadId tid, Addr addr, unsigned size,
                         bool is_write, bool is_atomic);
    void handleSync(ThreadId tid, SyncKey key);
    void handleWake(ThreadId waker, ThreadId woken);

    VectorClock &clockOf(ThreadId tid);
    static void joinInto(VectorClock &dst, const VectorClock &src);
    std::uint32_t clockEntry(const VectorClock &vc, ThreadId tid);
    void report(Addr word, ThreadId first, ThreadId second,
                RaceReport::Kind kind);

    std::vector<VectorClock> threadClocks_;
    std::unordered_map<SyncKey, VectorClock> objectClocks_;
    std::unordered_map<Addr, WordState> words_;
    std::vector<RaceReport> races_;
    EpochId currentEpoch_ = 0;
    std::uint64_t accesses_ = 0;
    std::uint64_t syncOps_ = 0;
};

} // namespace dp

#endif // DP_ANALYSIS_RACE_DETECTOR_HH
