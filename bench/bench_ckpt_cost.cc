/**
 * @file
 * E11 — Figure: checkpoint + digest cost vs dirty pages.
 *
 * DoublePlay's epoch boundaries are cheap for two reasons with the
 * same shape. The checkpoint is copy-on-write: the snapshot is O(1)
 * bookkeeping and the real cost is paid lazily, proportional to the
 * pages the execution subsequently dirties. The divergence digest is
 * incremental (DESIGN.md §11): hash() folds only the slots written
 * since the last query, so it too costs O(dirty) — the from-scratch
 * rehash it replaced walked every resident page at every boundary.
 *
 * The sweep crosses resident footprint with dirty-set size and times
 * the incremental digest against the reference recompute; the sparse
 * configs (large footprint, small delta — the paper's server-style
 * workloads) are where the O(resident) walk hurt most.
 */

#include <chrono>
#include <cstring>
#include <functional>

#include "bench_common.hh"
#include "mem/paged_memory.hh"
#include "timing/cost_model.hh"

using namespace dp;
using namespace dp::bench;

namespace
{

double
hostMicros(const std::function<void()> &fn)
{
    auto t0 = std::chrono::steady_clock::now();
    fn();
    auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::micro>(t1 - t0).count();
}

/** Touch @p dirty distinct pages of @p mem (clones shared pages). */
void
dirtyPages(PagedMemory &mem, std::size_t resident, std::size_t dirty,
           std::uint64_t salt)
{
    for (std::size_t k = 0; k < dirty; ++k)
        mem.write64((k * 7 % resident) * Page::bytes + 64, k ^ salt);
}

} // namespace

int
main()
{
    banner("E11 (Fig: checkpoint + digest cost)",
           "epoch-boundary cost vs pages dirtied since last boundary",
           "[recon] fork/CoW checkpoints and O(dirty) digests are the "
           "boundary mechanism; shape: both linear in dirty pages and "
           "far below their O(resident) strawmen");

    std::vector<BenchResult> rows;

    // ---- Incremental digest vs from-scratch rehash ----------------
    Table digest({"resident", "dirty", "incr hash us", "full rehash us",
                  "speedup"});
    for (std::size_t resident : {1024ull, 4096ull, 16384ull}) {
        for (std::size_t dirty :
             {std::size_t{16}, std::size_t{256}, resident}) {
            PagedMemory mem;
            for (std::size_t pg = 0; pg < resident; ++pg)
                mem.write64(pg * Page::bytes, pg + 1);
            (void)mem.hash(); // digest exact; memos warm

            // Per epoch boundary: dirty the working set (untimed —
            // the guest pays that), then query the digest (timed —
            // the boundary pays that).
            const std::size_t iters = 8;
            double incr_us = 0, full_us = 0;
            for (std::size_t it = 0; it < iters; ++it) {
                dirtyPages(mem, resident, dirty, it);
                incr_us += hostMicros([&] { (void)mem.hash(); });
            }
            for (std::size_t it = 0; it < iters; ++it) {
                dirtyPages(mem, resident, dirty, iters + it);
                (void)mem.hash(); // keep the incremental state exact
                full_us += hostMicros([&] {
                    (void)mem.referenceHash();
                });
            }
            incr_us /= iters;
            full_us /= iters;
            const double speedup =
                incr_us > 0 ? full_us / incr_us : 0.0;

            digest.addRow({Table::num(std::uint64_t{resident}),
                           Table::num(std::uint64_t{dirty}),
                           Table::num(incr_us, 2),
                           Table::num(full_us, 2),
                           Table::num(speedup, 1)});

            BenchResult r;
            r.name = "resident" + std::to_string(resident) +
                     "/dirty" + std::to_string(dirty);
            r.workload = "ckpt-cost";
            r.workers = 1;
            // overhead: how much slower the O(resident) rehash is
            // than the incremental digest (slowdown - 1).
            r.overhead = speedup > 0 ? speedup - 1.0 : 0.0;
            r.logBytes = resident * Page::bytes; // bytes a full
                                                 // rehash walks
            r.epochs = iters;
            rows.push_back(r);
        }
    }
    digest.print(std::cout);
    std::cout << "\n";

    // ---- CoW snapshot vs full-copy strawman -----------------------
    const std::size_t resident = 4096; // 16 MiB address space
    CostModel cm;
    Table snap({"dirty pages", "CoW snap host us", "CoW model kcyc",
                "full-copy host us", "CoW/full-copy"});
    for (std::size_t dirty :
         {16ull, 64ull, 256ull, 1024ull, 4096ull}) {
        PagedMemory mem;
        for (std::size_t pg = 0; pg < resident; ++pg)
            mem.write64(pg * Page::bytes, pg + 1);
        (void)mem.snapshot(); // baseline snapshot; all pages shared

        // Dirty `dirty` pages (each write clones a shared page).
        dirtyPages(mem, resident, dirty, 0);

        std::uint64_t observed_dirty = mem.dirtyPages().size();
        double cow_us = hostMicros([&] { (void)mem.snapshot(); });

        // Full-copy strawman: copy every resident page's bytes.
        std::vector<std::uint8_t> sink(resident * Page::bytes);
        double full_us = hostMicros([&] { mem.readBytes(0, sink); });

        Cycles model = cm.checkpointFixedCycles +
                       cm.checkpointPageCycles * observed_dirty;
        snap.addRow({Table::num(std::uint64_t{observed_dirty}),
                     Table::num(cow_us, 1),
                     Table::num(static_cast<double>(model) / 1e3, 1),
                     Table::num(full_us, 1),
                     Table::pct(cow_us / full_us)});
    }
    snap.print(std::cout);

    return emitBenchJson("ckpt_cost", rows) ? 0 : 1;
}
