/**
 * @file
 * Unit tests for the journal-shipping wire layer (src/ship): batch
 * codec integrity, clean-link byte identity, per-fault-site
 * survivability, deterministic retry backoff, retry-budget
 * exhaustion (fail the link, never the standby), the bounded-lag
 * ack hold, and the dp-metrics-v1 shipping snapshot.
 */

#include <gtest/gtest.h>

#include "core/recorder.hh"
#include "fault/fault.hh"
#include "journal/sharded.hh"
#include "ship/link.hh"
#include "ship/sender.hh"
#include "ship/standby.hh"
#include "testprogs.hh"
#include "trace/json.hh"

namespace dp
{
namespace
{

RecorderOptions
testOpts()
{
    RecorderOptions opts;
    opts.workerCpus = 2;
    opts.epochLength = 15'000;
    opts.keepCheckpoints = false;
    return opts;
}

/** One journaled record session: the shipping source of truth. */
struct SourceRun
{
    std::vector<std::vector<std::uint8_t>> images;
    std::size_t epochs = 0;
    std::uint64_t finalStateHash = 0;
};

SourceRun
recordSource(unsigned streams, std::uint64_t incs = 400)
{
    GuestProgram prog = testprogs::lockedCounter(2, incs);
    RecorderOptions opts = testOpts();
    ShardedJournalWriter jw(prog, {},
                            recorderOptionsFingerprint(opts),
                            {.streams = streams});
    RecordObserver obs;
    obs.addEpochSink([&](const EpochRecord &e, EpochId index) {
        jw.appendEpoch(e, index);
    });
    UniparallelRecorder rec(prog, {}, opts);
    RecordOutcome out = rec.record(&obs);
    EXPECT_TRUE(out.ok);
    jw.flush();
    return {jw.imageSet(), out.recording.epochs.size(),
            out.recording.finalStateHash};
}

/** Ship @p src into a fresh standby; returns the promotion. */
struct ShipRun
{
    Promotion promotion;
    ShipSenderStats sender;
    StandbyStats standby;
    LinkStats link;
    std::vector<std::vector<std::uint8_t>> standbyImages;
    bool senderFailed = false;
};

ShipRun
shipAll(const SourceRun &src, FaultInjector *faults = nullptr,
        ShipSenderOptions sopts = {}, std::uint64_t lag_bound = 64)
{
    StandbyApplier standby(
        {.lagBound = lag_bound, .faults = faults});
    ShipLink link(standby, faults);
    ShipSender sender(
        link, static_cast<unsigned>(src.images.size()),
        [&](unsigned s) -> std::span<const std::uint8_t> {
            return src.images[s];
        },
        sopts);
    sender.noteEpochCommitted(src.epochs);
    sender.pump();
    ShipRun r;
    r.senderFailed = sender.failed();
    r.standbyImages = standby.imageSet();
    r.promotion = standby.promote();
    r.sender = sender.stats();
    r.standby = standby.stats();
    r.link = link.stats();
    return r;
}

TEST(ShipCodec, BatchRoundTrips)
{
    ShipBatch b;
    b.seq = 712;
    b.stream = 3;
    b.streamCount = 4;
    b.offset = 1 << 20;
    for (int i = 0; i < 300; ++i)
        b.bytes.push_back(static_cast<std::uint8_t>(i * 7));

    std::vector<std::uint8_t> wire = encodeShipBatch(b);
    std::optional<ShipBatch> d = decodeShipBatch(wire);
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(*d, b);

    // An empty batch (a keep-alive probe) round-trips too.
    ShipBatch empty;
    empty.seq = 1;
    std::optional<ShipBatch> de =
        decodeShipBatch(encodeShipBatch(empty));
    ASSERT_TRUE(de.has_value());
    EXPECT_EQ(*de, empty);
}

// A torn or corrupted batch must be rejected whole: every
// truncation length and every single-bit flip yields nullopt, never
// a partially-believed batch.
TEST(ShipCodec, RejectsEveryTruncationAndBitFlip)
{
    ShipBatch b;
    b.seq = 9;
    b.stream = 1;
    b.streamCount = 2;
    b.offset = 77;
    for (int i = 0; i < 64; ++i)
        b.bytes.push_back(static_cast<std::uint8_t>(i));
    const std::vector<std::uint8_t> wire = encodeShipBatch(b);

    for (std::size_t len = 0; len < wire.size(); ++len) {
        std::vector<std::uint8_t> cut(wire.begin(),
                                      wire.begin() +
                                          static_cast<long>(len));
        EXPECT_FALSE(decodeShipBatch(cut).has_value())
            << "truncation at " << len;
    }
    for (std::size_t i = 0; i < wire.size(); ++i) {
        std::vector<std::uint8_t> flip = wire;
        flip[i] ^= 0x40;
        std::optional<ShipBatch> d = decodeShipBatch(flip);
        // The only survivable flip would be one that still parses
        // AND matches the CRC — which crc32c rules out.
        EXPECT_FALSE(d.has_value()) << "bit flip at byte " << i;
    }
}

TEST(Ship, CleanLinkReplicatesByteIdenticalAndPromotes)
{
    SourceRun src = recordSource(2);
    ASSERT_GE(src.epochs, 3u);
    ShipRun r = shipAll(src);

    EXPECT_FALSE(r.senderFailed);
    EXPECT_EQ(r.standbyImages, src.images);
    ASSERT_TRUE(r.promotion.report.promoted);
    EXPECT_EQ(r.promotion.report.replayedEpochs, src.epochs);
    EXPECT_EQ(r.promotion.report.persistedEpochs, src.epochs);
    EXPECT_EQ(r.promotion.report.finalStateHash, src.finalStateHash);
    ASSERT_NE(r.promotion.machine, nullptr);
    EXPECT_EQ(r.promotion.machine->stateHash(), src.finalStateHash);
    EXPECT_EQ(r.sender.resyncs, 0u);
    EXPECT_EQ(r.sender.retries, 0u);
}

// The headline robustness sweep: under every link fault site, at a
// bruising rate, shipping still converges on the exact source state
// — the faults cost retries, never correctness.
TEST(Ship, EveryLinkFaultSiteIsSurvivable)
{
    SourceRun src = recordSource(2, /*incs=*/2000);
    const FaultSite sites[] = {
        FaultSite::LinkDrop,      FaultSite::LinkDuplicate,
        FaultSite::LinkReorder,   FaultSite::LinkTornBatch,
        FaultSite::LinkDisconnect, FaultSite::StandbyCrash,
    };
    for (FaultSite site : sites) {
        SCOPED_TRACE(faultSiteName(site));
        FaultPlan plan;
        plan.seed = 0xc0ffee ^ static_cast<std::uint64_t>(site);
        plan.with(site, 0.35);
        FaultInjector faults(plan);

        ShipSenderOptions sopts;
        sopts.batchBytes = 512; // many batches: many fault rolls
        sopts.maxAttempts = 32;
        ShipRun r = shipAll(src, &faults, sopts);

        EXPECT_FALSE(r.senderFailed);
        EXPECT_EQ(r.standbyImages, src.images);
        ASSERT_TRUE(r.promotion.report.promoted);
        EXPECT_EQ(r.promotion.report.replayedEpochs, src.epochs);
        EXPECT_EQ(r.promotion.report.finalStateHash,
                  src.finalStateHash);
        EXPECT_GT(faults.stats().totalFired(), 0u)
            << "the plan must actually have exercised the site";
    }
}

// Two sessions with the same seed retry on the same schedule; the
// backoff is virtual ticks, a pure function of (seed, seq, attempt).
TEST(Ship, RetryBackoffIsDeterministicPerSeed)
{
    SourceRun src = recordSource(1, /*incs=*/2000);
    ShipSenderStats st[2];
    for (int i = 0; i < 2; ++i) {
        FaultPlan plan;
        plan.seed = 77;
        plan.with(FaultSite::LinkDrop, 0.5);
        FaultInjector faults(plan);
        ShipSenderOptions sopts;
        sopts.batchBytes = 512;
        sopts.maxAttempts = 64;
        sopts.seed = 5;
        ShipRun r = shipAll(src, &faults, sopts);
        EXPECT_FALSE(r.senderFailed);
        st[i] = r.sender;
    }
    EXPECT_EQ(st[0].retries, st[1].retries);
    EXPECT_EQ(st[0].timeouts, st[1].timeouts);
    EXPECT_EQ(st[0].backoffTicks, st[1].backoffTicks);
    EXPECT_GT(st[0].retries, 0u);
    EXPECT_GT(st[0].backoffTicks, 0u);
}

// A link that never delivers exhausts the per-batch retry budget:
// the sender declares the link dead. The standby never saw corrupt
// bytes, so it stays consistent (stale, not failed) — stale-read
// serving would still be sound.
TEST(Ship, RetryBudgetExhaustionFailsTheLinkNotTheStandby)
{
    SourceRun src = recordSource(1);
    FaultPlan plan;
    plan.seed = 3;
    plan.with(FaultSite::LinkDrop, 1.0);
    FaultInjector faults(plan);
    ShipSenderOptions sopts;
    sopts.maxAttempts = 4;
    ShipRun r = shipAll(src, &faults, sopts);

    EXPECT_TRUE(r.senderFailed);
    EXPECT_TRUE(r.sender.linkFailed);
    EXPECT_FALSE(r.sender.standbyFailed);
    EXPECT_EQ(r.sender.bytesShipped, 0u);
    EXPECT_FALSE(r.promotion.report.failedClosed);
    // Nothing arrived, so there is no replica to promote.
    EXPECT_FALSE(r.promotion.report.promoted);
    EXPECT_EQ(r.promotion.report.persistedEpochs, 0u);
}

// The standby holds acks while persisted - replayed exceeds the lag
// bound, which stalls the sender (and with it the primary): bounded
// staleness by construction.
TEST(Ship, LagBoundHoldsAcksUntilReplayCatchesUp)
{
    SourceRun src = recordSource(1);
    ASSERT_GE(src.epochs, 3u);
    ShipSenderOptions sopts;
    sopts.batchBytes = 1024; // several epochs arrive per pump
    ShipRun r = shipAll(src, /*faults=*/nullptr, sopts,
                        /*lag_bound=*/1);

    EXPECT_FALSE(r.senderFailed);
    ASSERT_TRUE(r.promotion.report.promoted);
    EXPECT_EQ(r.promotion.report.finalStateHash, src.finalStateHash);
    EXPECT_GT(r.standby.lagWaits, 0u)
        << "a lag bound of 1 must actually hold some acks";
}

// Manual wire-level conversation: gaps are refused with the
// standby's authoritative offsets, duplicates are absorbed
// idempotently — and neither poisons the standby.
TEST(Ship, GapsAreNackedAndDuplicatesAbsorbed)
{
    SourceRun src = recordSource(1);
    const std::vector<std::uint8_t> &image = src.images[0];
    ASSERT_GT(image.size(), 256u);

    StandbyApplier standby({.lagBound = 1024});

    ShipBatch gap;
    gap.seq = 1;
    gap.offset = 128; // the standby has nothing: offset 128 is a gap
    gap.bytes.assign(image.begin() + 128, image.begin() + 256);
    ShipAck a = standby.receive(encodeShipBatch(gap));
    EXPECT_FALSE(a.accepted);
    EXPECT_FALSE(a.failedClosed);
    ASSERT_EQ(a.streamOffsets.size(), 1u);
    EXPECT_EQ(a.streamOffsets[0], 0u);

    ShipBatch first;
    first.seq = 2;
    first.offset = 0;
    first.bytes.assign(image.begin(), image.begin() + 256);
    ShipAck b = standby.receive(encodeShipBatch(first));
    EXPECT_TRUE(b.accepted);
    EXPECT_EQ(b.streamOffsets[0], 256u);

    // The same bytes again: acknowledged without effect.
    first.seq = 3;
    ShipAck c = standby.receive(encodeShipBatch(first));
    EXPECT_TRUE(c.accepted);
    EXPECT_EQ(c.streamOffsets[0], 256u);

    StandbyStats st = standby.stats();
    EXPECT_EQ(st.gapNacks, 1u);
    EXPECT_EQ(st.duplicateBatches, 1u);
    EXPECT_FALSE(standby.failedClosed());
}

TEST(Ship, MetricsSnapshotIsSchemaTaggedAndComplete)
{
    SourceRun src = recordSource(1);
    ShipRun r = shipAll(src);
    JsonValue doc =
        shipMetricsSnapshot(r.sender, r.standby, r.link);
    const std::string text = doc.dump();
    for (const char *key :
         {"\"schema\":\"dp-metrics-v1\"", "watermarks",
          "committedEpochs", "persistedEpochs", "replayedEpochs",
          "ackedPersistedEpochs", "ackedReplayedEpochs", "sender",
          "retries", "link", "standby", "lagWaits"})
        EXPECT_NE(text.find(key), std::string::npos) << key;

    std::string err;
    std::optional<JsonValue> parsed = JsonValue::parse(text, &err);
    EXPECT_TRUE(parsed.has_value()) << err;
}

} // namespace
} // namespace dp
