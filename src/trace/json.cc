#include "trace/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace dp
{

JsonValue
JsonValue::boolean(bool b)
{
    JsonValue v;
    v.kind_ = Kind::Bool;
    v.bool_ = b;
    return v;
}

JsonValue
JsonValue::number(double x)
{
    JsonValue v;
    v.kind_ = Kind::Number;
    v.num_ = x;
    return v;
}

JsonValue
JsonValue::number(std::uint64_t x)
{
    return number(static_cast<double>(x));
}

JsonValue
JsonValue::number(std::int64_t x)
{
    return number(static_cast<double>(x));
}

JsonValue
JsonValue::str(std::string s)
{
    JsonValue v;
    v.kind_ = Kind::String;
    v.str_ = std::move(s);
    return v;
}

JsonValue
JsonValue::array()
{
    JsonValue v;
    v.kind_ = Kind::Array;
    return v;
}

JsonValue
JsonValue::object()
{
    JsonValue v;
    v.kind_ = Kind::Object;
    return v;
}

void
JsonValue::push(JsonValue v)
{
    if (kind_ == Kind::Array)
        items_.push_back(std::move(v));
}

void
JsonValue::set(std::string key, JsonValue v)
{
    if (kind_ != Kind::Object)
        return;
    for (auto &[k, old] : members_) {
        if (k == key) {
            old = std::move(v);
            return;
        }
    }
    members_.emplace_back(std::move(key), std::move(v));
}

const JsonValue *
JsonValue::find(std::string_view key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    for (const auto &[k, v] : members_)
        if (k == key)
            return &v;
    return nullptr;
}

void
appendJsonString(std::string &out, std::string_view s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
appendJsonNumber(std::string &out, double v)
{
    if (!std::isfinite(v)) {
        out += "0"; // JSON has no Inf/NaN; clamp rather than corrupt
        return;
    }
    constexpr double exact = 9007199254740992.0; // 2^53
    if (v == std::floor(v) && std::fabs(v) < exact) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.0f", v);
        out += buf;
        return;
    }
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    out += buf;
}

std::string
JsonValue::dump() const
{
    std::string out;
    switch (kind_) {
    case Kind::Null: out = "null"; break;
    case Kind::Bool: out = bool_ ? "true" : "false"; break;
    case Kind::Number: appendJsonNumber(out, num_); break;
    case Kind::String: appendJsonString(out, str_); break;
    case Kind::Array: {
        out += '[';
        for (std::size_t i = 0; i < items_.size(); ++i) {
            if (i)
                out += ',';
            out += items_[i].dump();
        }
        out += ']';
        break;
    }
    case Kind::Object: {
        out += '{';
        for (std::size_t i = 0; i < members_.size(); ++i) {
            if (i)
                out += ',';
            appendJsonString(out, members_[i].first);
            out += ':';
            out += members_[i].second.dump();
        }
        out += '}';
        break;
    }
    }
    return out;
}

namespace
{

/** Fail-closed recursive-descent parser over a string_view. */
class Parser
{
  public:
    Parser(std::string_view text, std::string *error)
        : text_(text), error_(error)
    {}

    std::optional<JsonValue>
    run()
    {
        skipWs();
        std::optional<JsonValue> v = value(0);
        if (!v)
            return std::nullopt;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing bytes after document");
        return v;
    }

  private:
    static constexpr int maxDepth = 64;

    std::optional<JsonValue>
    fail(const char *what)
    {
        if (error_ && error_->empty())
            *error_ = std::string(what) + " at byte " +
                      std::to_string(pos_);
        return std::nullopt;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    literal(const char *word)
    {
        std::size_t n = std::strlen(word);
        if (text_.substr(pos_, n) != word)
            return false;
        pos_ += n;
        return true;
    }

    std::optional<JsonValue>
    value(int depth)
    {
        if (depth > maxDepth)
            return fail("nesting too deep");
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        char c = text_[pos_];
        if (c == '{')
            return object(depth);
        if (c == '[')
            return array(depth);
        if (c == '"') {
            std::optional<std::string> s = string();
            if (!s)
                return std::nullopt;
            return JsonValue::str(std::move(*s));
        }
        if (c == 't')
            return literal("true")
                       ? std::optional(JsonValue::boolean(true))
                       : fail("bad literal");
        if (c == 'f')
            return literal("false")
                       ? std::optional(JsonValue::boolean(false))
                       : fail("bad literal");
        if (c == 'n')
            return literal("null") ? std::optional(JsonValue::null())
                                   : fail("bad literal");
        return numberValue();
    }

    std::optional<JsonValue>
    numberValue()
    {
        std::size_t start = pos_;
        if (consume('-')) {
        }
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(
                    text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start)
            return fail("expected a value");
        std::string tok(text_.substr(start, pos_ - start));
        char *end = nullptr;
        double v = std::strtod(tok.c_str(), &end);
        if (end != tok.c_str() + tok.size())
            return fail("malformed number");
        return JsonValue::number(v);
    }

    std::optional<std::string>
    string()
    {
        if (!consume('"')) {
            fail("expected a string");
            return std::nullopt;
        }
        std::string out;
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20) {
                fail("unescaped control character");
                return std::nullopt;
            }
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                break;
            char e = text_[pos_++];
            switch (e) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case '/': out += '/'; break;
            case 'b': out += '\b'; break;
            case 'f': out += '\f'; break;
            case 'n': out += '\n'; break;
            case 'r': out += '\r'; break;
            case 't': out += '\t'; break;
            case 'u': {
                if (pos_ + 4 > text_.size()) {
                    fail("truncated \\u escape");
                    return std::nullopt;
                }
                unsigned cp = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text_[pos_++];
                    cp <<= 4;
                    if (h >= '0' && h <= '9')
                        cp |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        cp |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        cp |= static_cast<unsigned>(h - 'A' + 10);
                    else {
                        fail("bad \\u escape");
                        return std::nullopt;
                    }
                }
                // UTF-8 encode (surrogate pairs are passed through as
                // two 3-byte sequences; trace names are ASCII).
                if (cp < 0x80) {
                    out += static_cast<char>(cp);
                } else if (cp < 0x800) {
                    out += static_cast<char>(0xc0 | (cp >> 6));
                    out += static_cast<char>(0x80 | (cp & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (cp >> 12));
                    out += static_cast<char>(0x80 |
                                             ((cp >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (cp & 0x3f));
                }
                break;
            }
            default:
                fail("bad escape character");
                return std::nullopt;
            }
        }
        fail("unterminated string");
        return std::nullopt;
    }

    std::optional<JsonValue>
    array(int depth)
    {
        consume('[');
        JsonValue arr = JsonValue::array();
        skipWs();
        if (consume(']'))
            return arr;
        for (;;) {
            skipWs();
            std::optional<JsonValue> v = value(depth + 1);
            if (!v)
                return std::nullopt;
            arr.push(std::move(*v));
            skipWs();
            if (consume(']'))
                return arr;
            if (!consume(','))
                return fail("expected ',' or ']'");
        }
    }

    std::optional<JsonValue>
    object(int depth)
    {
        consume('{');
        JsonValue obj = JsonValue::object();
        skipWs();
        if (consume('}'))
            return obj;
        for (;;) {
            skipWs();
            std::optional<std::string> key = string();
            if (!key)
                return std::nullopt;
            skipWs();
            if (!consume(':'))
                return fail("expected ':'");
            skipWs();
            std::optional<JsonValue> v = value(depth + 1);
            if (!v)
                return std::nullopt;
            obj.set(std::move(*key), std::move(*v));
            skipWs();
            if (consume('}'))
                return obj;
            if (!consume(','))
                return fail("expected ',' or '}'");
        }
    }

    std::string_view text_;
    std::string *error_;
    std::size_t pos_ = 0;
};

} // namespace

std::optional<JsonValue>
JsonValue::parse(std::string_view text, std::string *error)
{
    if (error)
        error->clear();
    return Parser(text, error).run();
}

} // namespace dp
