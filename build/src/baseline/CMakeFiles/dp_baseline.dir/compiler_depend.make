# Empty compiler generated dependencies file for dp_baseline.
# This may be replaced when dependencies are built.
