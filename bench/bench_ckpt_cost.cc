/**
 * @file
 * E11 — Figure: checkpoint cost vs dirty pages (CoW effectiveness).
 *
 * DoublePlay's checkpoints are cheap because they are copy-on-write:
 * the snapshot itself is O(resident pages) pointer copies and the
 * real cost is paid lazily, proportional to the pages the execution
 * subsequently dirties. This measures both the modeled guest cycles
 * and real host microseconds, against a full-copy strawman.
 */

#include <chrono>
#include <cstring>

#include "bench_common.hh"
#include "mem/paged_memory.hh"
#include "timing/cost_model.hh"

using namespace dp;
using namespace dp::bench;

namespace
{

double
hostMicros(const std::function<void()> &fn)
{
    auto t0 = std::chrono::steady_clock::now();
    fn();
    auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::micro>(t1 - t0).count();
}

} // namespace

int
main()
{
    banner("E11 (Fig: checkpoint cost)",
           "checkpoint cost vs pages dirtied since last checkpoint",
           "[recon] fork/CoW checkpoints are the paper's enabling "
           "mechanism; shape: CoW cost linear in dirty pages and far "
           "below full-copy");

    const std::size_t resident = 4096; // 16 MiB address space
    CostModel cm;

    Table t({"dirty pages", "CoW snap host us", "CoW model kcyc",
             "full-copy host us", "CoW/full-copy"});

    for (std::size_t dirty :
         {16ull, 64ull, 256ull, 1024ull, 4096ull}) {
        PagedMemory mem;
        for (std::size_t pg = 0; pg < resident; ++pg)
            mem.write64(pg * Page::bytes, pg + 1);
        (void)mem.snapshot(); // baseline snapshot; all pages shared

        // Dirty `dirty` pages (each write clones a shared page).
        for (std::size_t k = 0; k < dirty; ++k)
            mem.write64((k * 7 % resident) * Page::bytes + 64, k);

        std::uint64_t observed_dirty = mem.dirtyPages().size();
        double cow_us =
            hostMicros([&] { (void)mem.snapshot(); });

        // Full-copy strawman: copy every resident page's bytes.
        std::vector<std::uint8_t> sink(resident * Page::bytes);
        double full_us = hostMicros([&] {
            mem.readBytes(0, sink);
        });

        Cycles model = cm.checkpointFixedCycles +
                       cm.checkpointPageCycles * observed_dirty;
        t.addRow({Table::num(std::uint64_t{observed_dirty}),
                  Table::num(cow_us, 1),
                  Table::num(static_cast<double>(model) / 1e3, 1),
                  Table::num(full_us, 1),
                  Table::pct(cow_us / full_us)});
    }
    t.print(std::cout);
    return 0;
}
