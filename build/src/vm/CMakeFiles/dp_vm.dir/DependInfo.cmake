
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vm/abi.cc" "src/vm/CMakeFiles/dp_vm.dir/abi.cc.o" "gcc" "src/vm/CMakeFiles/dp_vm.dir/abi.cc.o.d"
  "/root/repo/src/vm/asmlib.cc" "src/vm/CMakeFiles/dp_vm.dir/asmlib.cc.o" "gcc" "src/vm/CMakeFiles/dp_vm.dir/asmlib.cc.o.d"
  "/root/repo/src/vm/assembler.cc" "src/vm/CMakeFiles/dp_vm.dir/assembler.cc.o" "gcc" "src/vm/CMakeFiles/dp_vm.dir/assembler.cc.o.d"
  "/root/repo/src/vm/interp.cc" "src/vm/CMakeFiles/dp_vm.dir/interp.cc.o" "gcc" "src/vm/CMakeFiles/dp_vm.dir/interp.cc.o.d"
  "/root/repo/src/vm/isa.cc" "src/vm/CMakeFiles/dp_vm.dir/isa.cc.o" "gcc" "src/vm/CMakeFiles/dp_vm.dir/isa.cc.o.d"
  "/root/repo/src/vm/program.cc" "src/vm/CMakeFiles/dp_vm.dir/program.cc.o" "gcc" "src/vm/CMakeFiles/dp_vm.dir/program.cc.o.d"
  "/root/repo/src/vm/text_asm.cc" "src/vm/CMakeFiles/dp_vm.dir/text_asm.cc.o" "gcc" "src/vm/CMakeFiles/dp_vm.dir/text_asm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dp_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
