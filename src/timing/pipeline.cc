#include "timing/pipeline.hh"

#include <algorithm>
#include <limits>
#include <vector>

#include "common/logging.hh"

namespace dp
{

namespace
{

/** One in-flight epoch-parallel job. */
struct EpJob
{
    std::uint32_t index;
    double remaining; ///< duration units left
    double readyAt;
};

} // namespace

PipelineResult
PipelineModel::run(std::span<const EpochTiming> epochs,
                   const PipelineOptions &opts,
                   std::vector<EpochPipelineGauges> *gauges)
{
    dp_assert(opts.totalCpus >= opts.workerCpus && opts.workerCpus > 0,
              "pipeline model needs totalCpus >= workerCpus >= 1");

    if (gauges) {
        gauges->clear();
        gauges->resize(epochs.size());
    }
    std::vector<double> stalls(epochs.size(), 0.0);

    PipelineResult res;
    if (epochs.empty())
        return res;

    const double C = opts.totalCpus;
    const double N = opts.workerCpus;

    double t = 0.0;
    std::uint32_t tp_index = 0; // epoch the tp task is executing
    double tp_rem = static_cast<double>(epochs[0].tp);
    bool tp_done = false;
    // Index of a diverged epoch the tp task is flushed behind, or -1.
    std::int64_t flush_on = -1;

    std::vector<EpJob> jobs;
    double lag_sum = 0.0;
    std::uint32_t lag_count = 0;
    double completion = 0.0;
    double tp_completion = 0.0;

    auto in_flight = [&] {
        return static_cast<std::uint32_t>(jobs.size());
    };

    for (;;) {
        const bool window_full = opts.maxInFlight > 0 &&
                                 in_flight() >= opts.maxInFlight;
        const bool tp_active =
            !tp_done && flush_on < 0 && !window_full;

        double demand =
            (tp_active ? N : 0.0) + static_cast<double>(jobs.size());
        if (demand == 0.0) {
            // Nothing runnable: tp stalled with no jobs cannot happen
            // (stalls require in-flight jobs), so we are done.
            dp_assert(tp_done && jobs.empty(),
                      "pipeline model wedged");
            break;
        }
        const double f = std::min(1.0, C / demand);

        // Time until the nearest task completion at rate f.
        double dt = std::numeric_limits<double>::infinity();
        if (tp_active)
            dt = std::min(dt, tp_rem / f);
        for (const EpJob &j : jobs)
            dt = std::min(dt, j.remaining / f);

        t += dt;
        // The tp task is present but blocked: attribute the blocked
        // time to the epoch it is currently producing.
        if (!tp_done && !tp_active)
            stalls[tp_index] += dt;
        const double step = f * dt;
        if (tp_active)
            tp_rem -= step;
        for (EpJob &j : jobs)
            j.remaining -= step;

        constexpr double eps = 1e-9;

        // Epoch-parallel completions.
        for (std::size_t k = 0; k < jobs.size();) {
            if (jobs[k].remaining <= eps) {
                lag_sum += t - jobs[k].readyAt;
                ++lag_count;
                completion = std::max(completion, t);
                if (flush_on >= 0 &&
                    jobs[k].index ==
                        static_cast<std::uint32_t>(flush_on))
                    flush_on = -1; // squash resolved; tp may resume
                jobs.erase(jobs.begin() + static_cast<long>(k));
            } else {
                ++k;
            }
        }

        // Thread-parallel epoch completion: hand off a checkpoint.
        if (tp_active && tp_rem <= eps) {
            jobs.push_back({tp_index,
                            static_cast<double>(epochs[tp_index].ep),
                            t});
            res.peakInFlight =
                std::max(res.peakInFlight, in_flight());
            if (gauges)
                (*gauges)[tp_index].queueDepth = in_flight();
            if (epochs[tp_index].diverged)
                flush_on = tp_index;
            ++tp_index;
            if (tp_index >= epochs.size()) {
                tp_done = true;
                tp_completion = t;
            } else {
                tp_rem = static_cast<double>(epochs[tp_index].tp);
            }
        }
    }

    res.completion = static_cast<Cycles>(completion);
    res.tpCompletion = static_cast<Cycles>(tp_completion);
    res.meanEpochLag = lag_count ? lag_sum / lag_count : 0.0;
    if (gauges)
        for (std::size_t i = 0; i < stalls.size(); ++i)
            (*gauges)[i].stallCycles =
                static_cast<Cycles>(stalls[i]);
    return res;
}

} // namespace dp
