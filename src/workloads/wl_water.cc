/**
 * @file
 * water workload: n-body force/integrate phases (the SPLASH-2 water
 * sharing pattern: all-to-all reads in the force phase, owner-only
 * writes, barriers between phases).
 */

#include "workloads/factories.hh"

#include "common/logging.hh"
#include "workloads/wl_common.hh"

namespace dp::workloads
{

using enum Reg;
namespace lib = dp::asmlib;

namespace
{

constexpr std::uint64_t waterM = 96; // molecules
constexpr Addr posBase = wlInput;
constexpr Addr velBase = wlInput + 0x1000;
constexpr Addr forceBase = wlInput + 0x2000;
constexpr std::int64_t mixConst = 0x2545f4914f6cdd1dll;

/** Host reference mirroring the guest integer dynamics. */
std::uint64_t
waterReference(std::vector<std::uint64_t> pos, std::uint32_t steps)
{
    std::vector<std::uint64_t> vel(waterM, 0);
    for (std::uint32_t s = 0; s < steps; ++s) {
        std::vector<std::uint64_t> force(waterM, 0);
        for (std::uint64_t i = 0; i < waterM; ++i) {
            std::uint64_t f = 0;
            for (std::uint64_t j = 0; j < waterM; ++j) {
                std::uint64_t d = pos[i] - pos[j];
                f += (d * static_cast<std::uint64_t>(mixConst)) >> 17;
            }
            force[i] = f;
        }
        for (std::uint64_t i = 0; i < waterM; ++i) {
            vel[i] += force[i] >> 4;
            pos[i] += vel[i];
        }
    }
    std::uint64_t sum = 0;
    for (std::uint64_t v : pos)
        sum += v;
    return sum;
}

} // namespace

WorkloadBundle
makeWater(const WorkloadParams &p)
{
    dp_assert(waterM % p.threads == 0,
              "water molecule count must divide by thread count");
    const std::uint64_t perThread = waterM / p.threads;
    const std::uint32_t steps = 2 * p.scale;

    std::vector<std::uint64_t> input = makeInputWords(waterM, p.seed);

    Assembler a;
    Label worker = a.newLabel();
    a.dataU64s(posBase, input);

    emitSpawnJoin(a, p.threads, worker);
    emitWriteGlobalAndExit(a, gResult);

    // ---- worker ----
    // Persistent: r7=step, r8=barrier, r9=T, r13=index,
    // r15=my first molecule. Temps: r1..r6, r10..r12, r14.
    a.bind(worker);
    a.mov(r13, r1);
    a.lia(r8, wlBarrier);
    a.li(r9, static_cast<std::int64_t>(p.threads));
    a.muli(r15, r13, static_cast<std::int64_t>(perThread));
    a.li(r7, 0);

    Label step_loop = a.hereLabel();
    Label steps_done = a.newLabel();
    a.li(r1, steps);
    a.bgeu(r7, r1, steps_done);

    // Force phase: for my i, sum over all j.
    a.mov(r10, r15); // i
    a.addi(r14, r15, static_cast<std::int64_t>(perThread)); // limit
    Label i_loop = a.hereLabel();
    Label i_done = a.newLabel();
    a.bgeu(r10, r14, i_done);
    a.shli(r4, r10, 3);
    a.lia(r5, posBase);
    a.add(r4, r4, r5); // &pos[i]
    a.ld64(r5, r4, 0); // pos[i]
    a.li(r6, 0);       // f
    a.li(r11, 0);      // j
    Label j_loop = a.hereLabel();
    Label j_done = a.newLabel();
    a.li(r1, waterM);
    a.bgeu(r11, r1, j_done);
    a.shli(r2, r11, 3);
    a.lia(r3, posBase);
    a.add(r2, r2, r3);
    a.ld64(r2, r2, 0); // pos[j]
    a.sub(r2, r5, r2);
    a.muli(r2, r2, mixConst);
    a.shri(r2, r2, 17);
    a.add(r6, r6, r2);
    a.addi(r11, r11, 1);
    a.jmp(j_loop);
    a.bind(j_done);
    a.shli(r2, r10, 3);
    a.lia(r3, forceBase);
    a.add(r2, r2, r3);
    a.st64(r2, 0, r6); // force[i] = f
    a.addi(r10, r10, 1);
    a.jmp(i_loop);
    a.bind(i_done);

    lib::barrierWait(a, r8, r9, r4, r5);

    // Integrate phase: my molecules only.
    a.mov(r10, r15);
    Label g_loop = a.hereLabel();
    Label g_done = a.newLabel();
    a.bgeu(r10, r14, g_done);
    a.shli(r4, r10, 3);
    a.lia(r5, forceBase);
    a.add(r5, r4, r5);
    a.ld64(r5, r5, 0); // force[i]
    a.shri(r5, r5, 4);
    a.lia(r6, velBase);
    a.add(r6, r4, r6);
    a.ld64(r1, r6, 0);
    a.add(r1, r1, r5); // vel += force>>4
    a.st64(r6, 0, r1);
    a.lia(r6, posBase);
    a.add(r6, r4, r6);
    a.ld64(r2, r6, 0);
    a.add(r2, r2, r1); // pos += vel
    a.st64(r6, 0, r2);
    a.addi(r10, r10, 1);
    a.jmp(g_loop);
    a.bind(g_done);

    lib::barrierWait(a, r8, r9, r4, r5);
    a.addi(r7, r7, 1);
    a.jmp(step_loop);
    a.bind(steps_done);

    // Checksum my positions.
    a.mov(r10, r15);
    a.li(r12, 0);
    Label csum = a.hereLabel();
    Label cdone = a.newLabel();
    a.bgeu(r10, r14, cdone);
    a.shli(r4, r10, 3);
    a.lia(r5, posBase);
    a.add(r4, r4, r5);
    a.ld64(r1, r4, 0);
    a.add(r12, r12, r1);
    a.addi(r10, r10, 1);
    a.jmp(csum);
    a.bind(cdone);
    a.lia(r5, wlGlobals + gResult);
    a.fetchAdd(r4, r5, r12);
    lib::exitWith(a, 0);

    WorkloadBundle b{a.finish("water"), {},
                     waterReference(input, steps)};
    return b;
}

} // namespace dp::workloads
