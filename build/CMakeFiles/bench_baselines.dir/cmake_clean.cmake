file(REMOVE_RECURSE
  "CMakeFiles/bench_baselines.dir/bench/bench_baselines.cc.o"
  "CMakeFiles/bench_baselines.dir/bench/bench_baselines.cc.o.d"
  "bench/bench_baselines"
  "bench/bench_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
