/**
 * @file
 * Fault-injection matrix over the uniparallel pipeline.
 *
 * Every runtime fault kind is driven through {record, sequential
 * replay, parallel replay} under a pinned (seed, plan): each run must
 * either complete with a byte-identical replay or fail closed with the
 * expected structured error — never crash, hang, or silently produce a
 * recording that replays differently. Artifact fault kinds corrupt the
 * serialized recording and must surface a structured LoadError.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/rng.hh"
#include "core/recorder.hh"
#include "fault/artifact_faults.hh"
#include "fault/fault.hh"
#include "replay/recording_io.hh"
#include "replay/replayer.hh"
#include "testprogs.hh"
#include "trace/metrics.hh"

namespace dp
{
namespace
{

enum class Guest
{
    Storm,      ///< syscallStorm: NetRecv/GetTime/file traffic
    FileReader, ///< fileChunkReader: multi-chunk Sys::Read stream
    Counter,    ///< lockedCounter: pure compute + locking
};

struct FaultCase
{
    const char *name;
    const char *plan;
    std::uint64_t faultSeed;
    Guest guest;
    FaultSite site;       ///< the site the case exercises
    bool expectRollbacks; ///< the fault must surface as divergence
};

const FaultCase kRuntimeCases[] = {
    {"netrecv_fail", "netrecv-fail=1:1", 101, Guest::Storm,
     FaultSite::NetRecvFail, false},
    {"netrecv_short", "netrecv-short=1:4", 102, Guest::Storm,
     FaultSite::NetRecvShort, false},
    {"gettime_fail", "gettime-fail=1:1", 103, Guest::Storm,
     FaultSite::GetTimeFail, false},
    {"file_short_read", "file-short-read=1:3", 104,
     Guest::FileReader, FaultSite::FileShortRead, true},
    {"torn_ckpt", "torn-ckpt=1:1", 105, Guest::Counter,
     FaultSite::TornCheckpoint, false},
    {"worker_death", "worker-death=1:1", 106, Guest::Counter,
     FaultSite::WorkerDeath, false},
};

enum class Mode
{
    Record,
    SeqReplay,
    ParReplay,
};

const char *
modeName(Mode m)
{
    switch (m) {
    case Mode::Record: return "record";
    case Mode::SeqReplay: return "seq_replay";
    case Mode::ParReplay: return "par_replay";
    }
    return "?";
}

struct Session
{
    GuestProgram prog;
    MachineConfig cfg;
};

Session
makeSession(Guest g)
{
    switch (g) {
    case Guest::Storm: {
        MachineConfig cfg;
        cfg.netBytesPerConn = 4'096;
        cfg.netCyclesPerByte = 2;
        return {testprogs::syscallStorm(1'024), cfg};
    }
    case Guest::FileReader: {
        MachineConfig cfg;
        std::vector<std::uint8_t> content(1'500);
        for (std::size_t i = 0; i < content.size(); ++i)
            content[i] = static_cast<std::uint8_t>(i * 37 + 11);
        cfg.initialFiles.emplace_back(testprogs::chunkFilePath,
                                      std::move(content));
        return {testprogs::fileChunkReader(), cfg};
    }
    case Guest::Counter:
        return {testprogs::lockedCounter(2, 250), {}};
    }
    return {testprogs::arithLoop(1), {}};
}

/** One recovery-stream entry as the observer saw it. */
using RecoveryEvent = std::pair<RecoveryKind, EpochId>;

struct RecordedRun
{
    RecordOutcome out;
    std::vector<std::uint8_t> bytes; ///< serialized artifact
    std::vector<FaultEvent> faultEvents;
    std::vector<RecoveryEvent> recoveries;
};

RecordedRun
recordUnderFaults(const Session &s, const FaultCase &fc,
                  unsigned host_workers = 0)
{
    FaultInjector inj(FaultPlan::parse(fc.plan, fc.faultSeed));

    RecorderOptions opts;
    opts.workerCpus = 2;
    opts.epochLength = 6'000;
    opts.seed = 7;
    opts.keepCheckpoints = true;
    opts.hostWorkers = host_workers;
    opts.faults = &inj;

    std::vector<RecoveryEvent> recoveries;
    RecordObserver obs;
    obs.onRecovery = [&](RecoveryKind kind, EpochId index) {
        recoveries.emplace_back(kind, index);
    };

    UniparallelRecorder rec(s.prog, s.cfg, opts);
    RecordedRun run{rec.record(&obs)};
    run.recoveries = std::move(recoveries);
    run.faultEvents = inj.events();
    if (run.out.ok)
        run.bytes = serializeRecording(run.out.recording);
    return run;
}

class FaultMatrix
    : public ::testing::TestWithParam<std::tuple<FaultCase, Mode>>
{};

TEST_P(FaultMatrix, CompletesExactlyOrFailsClosed)
{
    const auto &[fc, mode] = GetParam();
    Session s = makeSession(fc.guest);
    RecordedRun run = recordUnderFaults(s, fc);

    // Every runtime case in the matrix recovers: the session
    // completes and the injected site actually fired.
    ASSERT_TRUE(run.out.ok)
        << fc.name << ": " << stopReasonName(run.out.tpReason);
    EXPECT_GT(run.faultEvents.size(), 0u)
        << fc.name << " plan never fired";
    bool site_fired = false;
    for (const FaultEvent &e : run.faultEvents)
        site_fired |= e.site == fc.site;
    EXPECT_TRUE(site_fired) << fc.name;
    if (fc.expectRollbacks) {
        EXPECT_GT(run.out.recording.stats.rollbacks, 0u)
            << fc.name
            << ": a tp-only fault must surface as divergence";
    }

    switch (mode) {
    case Mode::Record: {
        // Re-recording under the same (seed, plan) reproduces the
        // fault stream, the recovery stream, and the artifact bytes.
        Session s2 = makeSession(fc.guest);
        RecordedRun again = recordUnderFaults(s2, fc);
        ASSERT_TRUE(again.out.ok);
        EXPECT_EQ(run.faultEvents, again.faultEvents) << fc.name;
        EXPECT_EQ(run.recoveries, again.recoveries) << fc.name;
        EXPECT_EQ(run.bytes, again.bytes) << fc.name;
        break;
    }
    case Mode::SeqReplay: {
        // The artifact round-trips and replays byte-identically,
        // both from memory and from its serialized form.
        RecordingLoadResult loaded = loadRecording(run.bytes);
        ASSERT_TRUE(loaded.ok())
            << fc.name << ": " << loadErrorName(loaded.error) << " ("
            << loaded.detail << ")";
        ReplayResult mem =
            Replayer(run.out.recording).replaySequential();
        ReplayResult disk =
            Replayer(*loaded.recording).replaySequential();
        ASSERT_TRUE(mem.ok) << fc.name;
        ASSERT_TRUE(disk.ok) << fc.name;
        EXPECT_EQ(mem.stdoutBytes, disk.stdoutBytes) << fc.name;
        EXPECT_EQ(mem.epochsVerified,
                  run.out.recording.epochs.size());
        break;
    }
    case Mode::ParReplay: {
        // Parallel replay from the retained checkpoints, and from
        // the artifact with regenerated checkpoints, both verify.
        ASSERT_TRUE(run.out.recording.hasCheckpoints());
        EXPECT_TRUE(
            Replayer(run.out.recording).replayParallel(2).ok)
            << fc.name;
        RecordingLoadResult loaded = loadRecording(run.bytes);
        ASSERT_TRUE(loaded.ok()) << fc.name;
        // Artifacts carry logs only; graft the in-memory
        // checkpoints (same execution) to replay epochs in
        // parallel.
        loaded.recording->checkpoints =
            run.out.recording.checkpoints;
        ASSERT_TRUE(loaded.recording->hasCheckpoints());
        EXPECT_TRUE(Replayer(*loaded.recording).replayParallel(2).ok)
            << fc.name;
        break;
    }
    }
}

std::string
matrixParamName(
    const ::testing::TestParamInfo<std::tuple<FaultCase, Mode>> &info)
{
    return std::string(std::get<0>(info.param).name) + "_" +
           modeName(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, FaultMatrix,
    ::testing::Combine(::testing::ValuesIn(kRuntimeCases),
                       ::testing::Values(Mode::Record,
                                         Mode::SeqReplay,
                                         Mode::ParReplay)),
    matrixParamName);

// ---- degradations beyond a single retry ----

TEST(FaultRecovery, RepeatedWorkerDeathsDegradeToSequential)
{
    Session s = makeSession(Guest::Counter);
    FaultCase fc{"worker_death_storm", "worker-death=1:8", 107,
                 Guest::Counter, FaultSite::WorkerDeath, false};
    RecordedRun run = recordUnderFaults(s, fc);
    ASSERT_TRUE(run.out.ok);
    const RecorderStats &st = run.out.recording.stats;
    EXPECT_GT(st.workerDeaths, st.epochRetries);
    EXPECT_GT(st.seqFallbacks, 0u);
    // Degraded epochs still came from the same deterministic
    // execution: the recording replays exactly.
    EXPECT_TRUE(Replayer(run.out.recording).replaySequential().ok);

    // Counters mirror the observer's recovery stream.
    std::uint32_t retries = 0, fallbacks = 0;
    for (const RecoveryEvent &e : run.recoveries) {
        retries += e.first == RecoveryKind::EpochRetry;
        fallbacks += e.first == RecoveryKind::SequentialFallback;
    }
    EXPECT_EQ(retries, st.epochRetries);
    EXPECT_EQ(fallbacks, st.seqFallbacks);
}

TEST(FaultRecovery, UnboundedTornCapturesFailClosed)
{
    Session s = makeSession(Guest::Counter);
    FaultCase fc{"torn_ckpt_unbounded", "torn-ckpt=1", 108,
                 Guest::Counter, FaultSite::TornCheckpoint, false};
    RecordedRun run = recordUnderFaults(s, fc);
    EXPECT_FALSE(run.out.ok);
    EXPECT_EQ(run.out.tpReason, StopReason::Stalled);
    EXPECT_GT(run.out.recording.stats.tornCheckpoints, 0u);
}

TEST(FaultRecovery, HostParallelPipelineSameArtifactAndEvents)
{
    // The host-parallel pipeline must inject and recover identically:
    // all fault decisions are made on the retiring thread in commit
    // order.
    for (const FaultCase &fc : kRuntimeCases) {
        Session s1 = makeSession(fc.guest);
        RecordedRun sync = recordUnderFaults(s1, fc, 0);
        Session s2 = makeSession(fc.guest);
        RecordedRun par = recordUnderFaults(s2, fc, 2);
        ASSERT_EQ(sync.out.ok, par.out.ok) << fc.name;
        if (!sync.out.ok)
            continue;
        EXPECT_EQ(sync.bytes, par.bytes) << fc.name;
        EXPECT_EQ(sync.faultEvents, par.faultEvents) << fc.name;
    }
}

// ---- artifact fault kinds: corrupt bytes must fail closed ----

std::vector<std::uint8_t>
makeHealthyArtifact(std::vector<SectionMark> *marks = nullptr)
{
    Session s = makeSession(Guest::Counter);
    RecorderOptions opts;
    opts.epochLength = 6'000;
    UniparallelRecorder rec(s.prog, s.cfg, opts);
    RecordOutcome out = rec.record();
    EXPECT_TRUE(out.ok);
    return serializeRecording(out.recording, marks);
}

TEST(ArtifactFaults, TruncatedTailsYieldStructuredErrors)
{
    std::vector<std::uint8_t> bytes = makeHealthyArtifact();
    for (std::uint64_t seed = 1; seed <= 24; ++seed) {
        Rng rng(seed);
        std::vector<std::uint8_t> cut =
            artifact_faults::truncateTail(bytes, rng);
        RecordingLoadResult r = loadRecording(cut);
        EXPECT_FALSE(r.ok())
            << "seed " << seed << " kept " << cut.size() << "/"
            << bytes.size() << " bytes and loaded";
        EXPECT_EQ(r.recording, nullptr);
        EXPECT_FALSE(r.detail.empty()) << "seed " << seed;
    }
}

/**
 * Replay a load-valid artifact in a forked child: corrupt guest code
 * can compute wild addresses at runtime, which the VM rejects with a
 * guest-level fatal — contained here so the probe reports "died"
 * instead of taking the test process down.
 * 0 = verified, 1 = failed verification, 2 = died.
 */
int
probeReplay(const Recording &rec)
{
    pid_t pid = fork();
    if (pid == 0) {
        (void)freopen("/dev/null", "w", stderr);
        _exit(Replayer(rec).replaySequential().ok ? 0 : 1);
    }
    int status = 0;
    waitpid(pid, &status, 0);
    return WIFEXITED(status) ? WEXITSTATUS(status) : 2;
}

TEST(ArtifactFaults, FlippedBytesNeverCrashLoadOrSilentlyDiverge)
{
    std::vector<std::uint8_t> bytes = makeHealthyArtifact();
    RecordingLoadResult pristine = loadRecording(bytes);
    ASSERT_TRUE(pristine.ok());
    ReplayResult base =
        Replayer(*pristine.recording).replaySequential();
    ASSERT_TRUE(base.ok);

    for (std::uint64_t seed = 1; seed <= 40; ++seed) {
        Rng rng(seed);
        std::vector<std::uint8_t> mutant =
            artifact_faults::flipByte(bytes, rng);
        // Loading is fail-closed and must never crash in-process.
        RecordingLoadResult r = loadRecording(mutant);
        if (!r.ok()) {
            EXPECT_FALSE(r.detail.empty()) << "seed " << seed;
            continue;
        }
        // Parsed: a verifying replay must reproduce the original
        // output (the flip touched replay-irrelevant metadata
        // only). Failing or dying is fail-closed, never silent.
        if (probeReplay(*r.recording) == 0) {
            ReplayResult rr =
                Replayer(*r.recording).replaySequential();
            ASSERT_TRUE(rr.ok) << "seed " << seed;
            EXPECT_EQ(rr.stdoutBytes, base.stdoutBytes)
                << "seed " << seed
                << ": corrupt artifact verified with different "
                   "output";
        }
    }
}

TEST(ArtifactFaults, AbsurdSectionLengthsAreRejected)
{
    std::vector<SectionMark> marks;
    std::vector<std::uint8_t> bytes = makeHealthyArtifact(&marks);
    std::vector<std::size_t> length_offsets;
    for (const SectionMark &m : marks)
        if (m.lengthPrefixed)
            length_offsets.push_back(m.offset);
    ASSERT_GT(length_offsets.size(), 2u);

    for (std::uint64_t seed = 1; seed <= 16; ++seed) {
        Rng rng(seed);
        std::vector<std::uint8_t> mutant =
            artifact_faults::corruptSectionLength(bytes,
                                                  length_offsets,
                                                  rng);
        RecordingLoadResult r = loadRecording(mutant);
        EXPECT_FALSE(r.ok()) << "seed " << seed;
        EXPECT_NE(r.error, LoadError::None);
        EXPECT_FALSE(r.detail.empty());
    }
}

// ---- RecorderStats coverage: every counter driven by a targeted
// plan and mirrored by the flat metrics snapshot ----

TEST(RecorderStatsCoverage, CleanRunPopulatesBaselineCounters)
{
    Session s = makeSession(Guest::Counter);
    RecorderOptions opts;
    opts.workerCpus = 2;
    opts.epochLength = 6'000;
    opts.seed = 7;
    UniparallelRecorder rec(s.prog, s.cfg, opts);
    RecordOutcome out = rec.record();
    ASSERT_TRUE(out.ok);
    const RecorderStats &st = out.recording.stats;
    EXPECT_EQ(st.epochs, out.recording.epochs.size());
    EXPECT_GT(st.epochs, 1u);
    EXPECT_GT(st.checkpointPages, 0u);
    EXPECT_GT(st.tpInstrs, 0u);
    EXPECT_GT(st.epInstrs, 0u);
    EXPECT_GT(st.tpTotalCycles, 0u);
    EXPECT_GT(st.epTotalCycles, 0u);
    // A converging run touches no recovery counter.
    EXPECT_EQ(st.rollbacks, 0u);
    EXPECT_EQ(st.tornCheckpoints, 0u);
    EXPECT_EQ(st.workerDeaths, 0u);
    EXPECT_EQ(st.epochRetries, 0u);
    EXPECT_EQ(st.seqFallbacks, 0u);
}

TEST(RecorderStatsCoverage, RollbacksFromForcedDivergence)
{
    Session s = makeSession(Guest::FileReader);
    FaultCase fc{"cov_rollbacks", "file-short-read=1:3", 104,
                 Guest::FileReader, FaultSite::FileShortRead, true};
    RecordedRun run = recordUnderFaults(s, fc);
    ASSERT_TRUE(run.out.ok);
    EXPECT_GT(run.out.recording.stats.rollbacks, 0u);
}

TEST(RecorderStatsCoverage, TornCheckpointsFromTornCaptures)
{
    Session s = makeSession(Guest::Counter);
    FaultCase fc{"cov_torn", "torn-ckpt=1:2", 205, Guest::Counter,
                 FaultSite::TornCheckpoint, false};
    RecordedRun run = recordUnderFaults(s, fc);
    ASSERT_TRUE(run.out.ok);
    EXPECT_GT(run.out.recording.stats.tornCheckpoints, 0u);
}

TEST(RecorderStatsCoverage, WorkerDeathsAndRetriesFromOneDeath)
{
    Session s = makeSession(Guest::Counter);
    FaultCase fc{"cov_death", "worker-death=1:1", 206, Guest::Counter,
                 FaultSite::WorkerDeath, false};
    RecordedRun run = recordUnderFaults(s, fc);
    ASSERT_TRUE(run.out.ok);
    const RecorderStats &st = run.out.recording.stats;
    EXPECT_GT(st.workerDeaths, 0u);
    EXPECT_GT(st.epochRetries, 0u);
    EXPECT_EQ(st.seqFallbacks, 0u);
}

TEST(RecorderStatsCoverage, SeqFallbacksFromRepeatedDeaths)
{
    Session s = makeSession(Guest::Counter);
    FaultCase fc{"cov_fallback", "worker-death=1:8", 207,
                 Guest::Counter, FaultSite::WorkerDeath, false};
    RecordedRun run = recordUnderFaults(s, fc);
    ASSERT_TRUE(run.out.ok);
    EXPECT_GT(run.out.recording.stats.seqFallbacks, 0u);
}

TEST(RecorderStatsCoverage, MetricsSnapshotMirrorsEveryCounter)
{
    Session s = makeSession(Guest::Counter);
    FaultCase fc{"cov_snapshot", "worker-death=1:2,torn-ckpt=1:2",
                 210, Guest::Counter, FaultSite::WorkerDeath, false};
    RecordedRun run = recordUnderFaults(s, fc);
    ASSERT_TRUE(run.out.ok);
    const Recording &rec = run.out.recording;
    const RecorderStats &st = rec.stats;

    JsonValue snap = metricsSnapshot(rec, {});
    const JsonValue *counters = snap.find("counters");
    ASSERT_NE(counters, nullptr);
    auto num = [&](const char *key) -> std::uint64_t {
        const JsonValue *v = counters->find(key);
        EXPECT_NE(v, nullptr) << key;
        return v ? static_cast<std::uint64_t>(v->asNumber()) : 0;
    };
    EXPECT_EQ(num("epochs"), st.epochs);
    EXPECT_EQ(num("rollbacks"), st.rollbacks);
    EXPECT_EQ(num("checkpointPages"), st.checkpointPages);
    EXPECT_EQ(num("tpInstrs"), st.tpInstrs);
    EXPECT_EQ(num("epInstrs"), st.epInstrs);
    EXPECT_EQ(num("tpTotalCycles"), st.tpTotalCycles);
    EXPECT_EQ(num("epTotalCycles"), st.epTotalCycles);
    EXPECT_EQ(num("tornCheckpoints"), st.tornCheckpoints);
    EXPECT_EQ(num("workerDeaths"), st.workerDeaths);
    EXPECT_EQ(num("epochRetries"), st.epochRetries);
    EXPECT_EQ(num("seqFallbacks"), st.seqFallbacks);
    EXPECT_EQ(num("replayLogBytes"), rec.replayLogBytes());
    EXPECT_EQ(num("totalLogBytes"), rec.totalLogBytes());
}

// ---- cross-kind determinism: the whole composite plan twice ----

TEST(FaultDeterminism, CompositePlanReproducesEventStreams)
{
    FaultCase fc{"composite",
                 "netrecv-fail=0.02,netrecv-short=0.05,"
                 "gettime-fail=0.3,torn-ckpt=0.5:1,"
                 "worker-death=0.4:1",
                 109, Guest::Storm, FaultSite::NetRecvFail, false};
    Session s1 = makeSession(fc.guest);
    RecordedRun a = recordUnderFaults(s1, fc);
    Session s2 = makeSession(fc.guest);
    RecordedRun b = recordUnderFaults(s2, fc);

    ASSERT_EQ(a.out.ok, b.out.ok);
    EXPECT_EQ(a.faultEvents, b.faultEvents);
    EXPECT_EQ(a.recoveries, b.recoveries);
    EXPECT_EQ(a.bytes, b.bytes);
    ASSERT_TRUE(a.out.ok);
    EXPECT_GT(a.faultEvents.size(), 0u);

    // And the surviving recording replays byte-identically.
    ReplayResult ra = Replayer(a.out.recording).replaySequential();
    ReplayResult rb = Replayer(b.out.recording).replaySequential();
    ASSERT_TRUE(ra.ok);
    ASSERT_TRUE(rb.ok);
    EXPECT_EQ(ra.stdoutBytes, rb.stdoutBytes);
}

} // namespace
} // namespace dp
