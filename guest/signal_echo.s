; signal_echo.s — self-signal: the handler stores the signal number,
; main exits with it. A leading nop keeps the handler off pc 0
; (handler address 0 means "no handler").
.entry main
    nop
handler:
    li   r4, 0x3000
    st64 r4, 0, r1     ; remember the signal number
    li   r0, 20        ; sigreturn
    syscall
main:
    li   r1, 1         ; handler entry = instruction index 1
    li   r0, 19        ; sighandler(1)
    syscall
    li   r1, 0         ; kill(self = tid 0, sig 42)
    li   r2, 42
    li   r0, 18
    syscall
    nop                ; delivery lands at the next boundary
    li   r2, 0x3000
    ld64 r1, r2, 0
    li   r0, 0         ; exit(42)
    syscall
