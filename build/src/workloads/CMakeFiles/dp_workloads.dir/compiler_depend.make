# Empty compiler generated dependencies file for dp_workloads.
# This may be replaced when dependencies are built.
