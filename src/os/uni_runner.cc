#include "os/uni_runner.hh"

#include <algorithm>

#include "common/logging.hh"

namespace dp
{

std::optional<SyncKey>
syscallSyncKey(std::uint64_t sysno, std::uint64_t a1)
{
    if (sysno >= static_cast<std::uint64_t>(Sys::NumSyscalls))
        return globalSyncKey;
    switch (static_cast<Sys>(sysno)) {
      case Sys::Yield:
      case Sys::SigHandler:
      case Sys::SigReturn:
        return std::nullopt; // thread-local effect only
      case Sys::FutexWait:
      case Sys::FutexWake:
        // A futex op races with atomic accesses to the same word;
        // they must share one ordering queue.
        return a1;
      case Sys::PipeWrite:
      case Sys::PipeRead:
      case Sys::PipeClose:
        // Per-pipe ordering domain, tagged above the guest address
        // space (guest memory is capped at 2^32 bytes).
        return (SyncKey{1} << 48) | a1;
      default:
        return globalSyncKey;
    }
}

const char *
stopReasonName(StopReason r)
{
    switch (r) {
      case StopReason::AllExited: return "all-exited";
      case StopReason::TimeLimit: return "time-limit";
      case StopReason::TargetsReached: return "targets-reached";
      case StopReason::Deadlock: return "deadlock";
      case StopReason::Stalled: return "stalled";
      case StopReason::FuelExhausted: return "fuel-exhausted";
      case StopReason::ScheduleEnded: return "schedule-ended";
      default: return "<invalid>";
    }
}

UniRunner::UniRunner(Machine &m, SimOS &os, UniOptions opts,
                     UniHooks hooks)
    : m_(m), os_(os), interp_(m.program()), opts_(std::move(opts)),
      hooks_(std::move(hooks))
{
    queued_.resize(m_.threads.size(), 0);
    if (opts_.planSignals) {
        for (const SignalEvent &e : opts_.signalPlan) {
            if (e.tid >= planByTid_.size())
                planByTid_.resize(e.tid + 1);
            planByTid_[e.tid].push_back(e);
        }
        planCursor_.resize(planByTid_.size(), 0);
    }
}

bool
UniRunner::plannedDeliveryDue(ThreadId tid) const
{
    if (!opts_.planSignals || tid >= planByTid_.size())
        return false;
    std::size_t cur = planCursor_[tid];
    return cur < planByTid_[tid].size() &&
           planByTid_[tid][cur].retired <= m_.thread(tid).retired;
}

bool
UniRunner::maybeDeliverSignal(ThreadId tid)
{
    ThreadContext &tc = m_.thread(tid);
    if (opts_.planSignals) {
        if (tid >= planByTid_.size())
            return false;
        std::size_t &cur = planCursor_[tid];
        if (cur >= planByTid_[tid].size())
            return false;
        const SignalEvent &e = planByTid_[tid][cur];
        if (e.retired != tc.retired || !tc.signalDeliverable() ||
            tc.pendingSigs.front() != e.sig) {
            // Not reproducible here (either not due yet, or the
            // execution diverged); the stall/hash machinery decides.
            return false;
        }
        tc.deliverSignal();
        ++cur;
        m_.now += os_.costs().syscallCycles;
        stats_.cycles += os_.costs().syscallCycles;
        if (hooks_.onSignal)
            hooks_.onSignal(e);
        return true;
    }
    if (!tc.signalDeliverable())
        return false;
    SignalEvent e{tid, tc.retired, 0};
    e.sig = tc.deliverSignal();
    m_.now += os_.costs().syscallCycles;
    stats_.cycles += os_.costs().syscallCycles;
    if (hooks_.onSignal)
        hooks_.onSignal(e);
    return true;
}

bool
UniRunner::targetSatisfied(ThreadId tid) const
{
    const ThreadContext &tc = m_.thread(tid);
    if (tid >= opts_.targets.size()) {
        // Spawned past the epoch boundary's thread table: a diverged
        // execution; never satisfied so the stall machinery trips.
        return false;
    }
    const EpochTarget &t = opts_.targets[tid];
    switch (tc.state) {
      case RunState::Exited:
        return true;
      case RunState::Blocked:
        return tc.retired >= t.retired;
      case RunState::Runnable:
        if (tc.retired < t.retired)
            return false;
        if (plannedDeliveryDue(tid))
            return false; // a delivery at the boundary is still owed
        // At the target: if the checkpoint shows the thread blocked,
        // its blocking attempt is still owed.
        return t.endState == RunState::Runnable;
    }
    return false;
}

std::uint64_t
UniRunner::budgetFor(ThreadId tid) const
{
    const ThreadContext &tc = m_.thread(tid);
    std::uint64_t budget = opts_.quantum;
    if (!opts_.targets.empty()) {
        if (tid >= opts_.targets.size())
            return opts_.quantum;
        std::uint64_t goal = opts_.targets[tid].retired;
        budget = std::min(budget,
                          goal > tc.retired ? goal - tc.retired : 0);
    }
    // A planned signal delivery is a barrier: the thread must stop
    // exactly at its delivery point and wait there until the sender's
    // Kill has made the signal pending — the asynchrony the
    // thread-parallel run resolved is replayed, never re-raced.
    if (opts_.planSignals && tid < planByTid_.size() &&
        planCursor_[tid] < planByTid_[tid].size()) {
        std::uint64_t at = planByTid_[tid][planCursor_[tid]].retired;
        budget = std::min(budget,
                          at > tc.retired ? at - tc.retired : 0);
    }
    return budget;
}

void
UniRunner::enqueueIfRunnable(ThreadId tid)
{
    if (tid >= queued_.size())
        queued_.resize(m_.threads.size(), 0);
    if (queued_[tid] || m_.thread(tid).state != RunState::Runnable)
        return;
    if (!opts_.targets.empty() && targetSatisfied(tid))
        return;
    ready_.push_back(tid);
    queued_[tid] = 1;
}

void
UniRunner::chargeSwitch(ThreadId tid)
{
    if (lastRun_ != tid && lastRun_ != invalidThread) {
        m_.now += os_.costs().contextSwitchCycles;
        stats_.cycles += os_.costs().contextSwitchCycles;
        ++stats_.switches;
    }
    lastRun_ = tid;
}

UniRunner::SliceResult
UniRunner::runSlice(ThreadId tid, std::uint64_t budget,
                    bool allow_block_attempt, bool exact)
{
    const CostModel &cm = os_.costs();
    SliceResult res;

    auto charge = [&](Cycles c) {
        m_.now += c;
        stats_.cycles += c;
    };

    auto pendingSyscallKey = [&]() -> std::optional<SyncKey> {
        const ThreadContext &tc = m_.thread(tid);
        return syscallSyncKey(tc.reg(Reg::r0), tc.reg(Reg::r1));
    };

    auto execSyscall = [&]() -> SimOS::Outcome {
        ThreadContext &tc = m_.thread(tid);
        const auto raw = tc.reg(Reg::r0);
        const std::optional<SyncKey> key = pendingSyscallKey();
        std::optional<std::uint64_t> inject;
        if (raw < static_cast<std::uint64_t>(Sys::NumSyscalls)) {
            Sys sys = static_cast<Sys>(raw);
            if (isInjectableSyscall(sys) && hooks_.injectSyscall)
                inject = hooks_.injectSyscall(tid, sys);
        }
        SimOS::Outcome out = os_.dispatch(m_, tid, inject);
        ++stats_.syscalls;
        charge(cm.instrCycles + out.cost +
               (opts_.chargeRecordCosts ? cm.syscallLogCycles : 0));
        for (ThreadId w : out.woken) {
            if (hooks_.onWake)
                hooks_.onWake(tid, w);
            enqueueIfRunnable(w);
        }
        if (hooks_.onSync && key)
            hooks_.onSync(tid, SyncKind::Syscall, *key);
        if (!out.blocked && hooks_.onSyscall)
            hooks_.onSyscall(tid, out.sys, out.value, out.injectable);
        return out;
    };

    if (maybeDeliverSignal(tid)) {
        res.progress = true; // budget-0 boundary deliveries
        res.delivered = true;
    }

    while (res.instrs < budget) {
        ThreadContext &tc = m_.thread(tid);
        if (tc.state != RunState::Runnable)
            break;
        if (maybeDeliverSignal(tid)) {
            res.progress = true;
            res.delivered = true;
        }
        Opcode op = interp_.nextOpcode(tc);

        if (!exact && hooks_.permitSync && !relaxed_) {
            if (op == Opcode::Syscall) {
                std::optional<SyncKey> key = pendingSyscallKey();
                if (key &&
                    !hooks_.permitSync(tid, SyncKind::Syscall, *key))
                    break;
            }
            if (isAtomicOp(op) &&
                !hooks_.permitSync(tid, SyncKind::Atomic,
                                   interp_.nextAtomicAddr(tc)))
                break;
        }

        if (op == Opcode::Syscall) {
            SimOS::Outcome out = execSyscall();
            if (out.blocked) {
                res.endedBlocked = true;
                res.progress = true;
                break;
            }
            ++res.instrs;
            ++stats_.instrs;
            res.progress = true;
            if (m_.thread(tid).state == RunState::Exited)
                break;
            // A yield rotates the slice only if another thread can
            // actually use the CPU; otherwise it is a cheap no-op
            // (poll loops would otherwise fragment the schedule log
            // into one segment per poll).
            if (out.sys == Sys::Yield && !exact && !ready_.empty())
                break;
            continue;
        }

        if (isAtomicOp(op) || (hooks_.onMemAccess && isMemOp(op))) {
            // Observed instructions execute one at a time: the access
            // hook fires before, the sync hook after, each one.
            if (hooks_.onMemAccess && isMemOp(op)) {
                auto [maddr, mwrite] = interp_.nextMemAccess(tc);
                hooks_.onMemAccess(tid, maddr, memAccessSize(op),
                                   mwrite, isAtomicOp(op));
            }
            const SyncKey atomic_key =
                isAtomicOp(op) ? interp_.nextAtomicAddr(tc) : 0;
            StepKind k = interp_.step(tc, m_.mem);
            charge(cm.instrCycles);
            ++res.instrs;
            ++stats_.instrs;
            res.progress = true;
            if (isAtomicOp(op)) {
                ++stats_.syncOps;
                if (hooks_.onSync)
                    hooks_.onSync(tid, SyncKind::Atomic, atomic_key);
            }
            if (k == StepKind::Halted || k == StepKind::Fault)
                break;
            continue;
        }

        // Plain instructions run in one tight block up to the next
        // boundary. Everything this loop observes per instruction —
        // signal delivery, sync permits, yields, the hooks above —
        // can only trigger at a syscall, atomic, or (when hooked)
        // memory op, and the stop mask halts the block before any of
        // those executes. Deliverability cannot change mid-block: the
        // signal state only moves through syscalls, and no other
        // thread runs during the slice.
        std::uint8_t stop_mask = ClsAtomic;
        if (hooks_.onMemAccess)
            stop_mask |= ClsMem;
        Interpreter::BlockResult b = interp_.runBlock(
            tc, m_.mem, budget - res.instrs, stop_mask);
        charge(cm.instrCycles * b.instrs);
        res.instrs += b.instrs;
        stats_.instrs += b.instrs;
        res.progress |= b.instrs > 0;
        if (b.last == StepKind::Halted || b.last == StepKind::Fault)
            break;
        if (b.instrs == 0)
            break; // defensive: a boundary op slipped past the checks
    }

    // The owed blocking attempt at the end of an exactly-consumed
    // segment or at an epoch target whose end state is Blocked.
    if (allow_block_attempt && res.instrs >= budget &&
        m_.thread(tid).state == RunState::Runnable) {
        if (maybeDeliverSignal(tid)) {
            res.progress = true;
            res.delivered = true;
        }
        Opcode op = interp_.nextOpcode(m_.thread(tid));
        if (op == Opcode::Syscall) {
            std::optional<SyncKey> key = pendingSyscallKey();
            if (!exact && hooks_.permitSync && !relaxed_ && key &&
                !hooks_.permitSync(tid, SyncKind::Syscall, *key)) {
                // Constraint not yet satisfied; retry on a later slice.
                return res;
            }
            SimOS::Outcome out = execSyscall();
            if (out.blocked) {
                res.endedBlocked = true;
            } else {
                // Expected a block, the call completed: divergence.
                ++res.instrs;
                ++stats_.instrs;
            }
            res.progress = true;
        }
    }
    return res;
}

StopReason
UniRunner::run()
{
    if (hooks_.nextSegment)
        return runReplay();
    return runFree();
}

StopReason
UniRunner::runFree()
{
    for (ThreadId t = 0; t < m_.threads.size(); ++t)
        enqueueIfRunnable(t);

    std::uint64_t zero_streak = 0;
    const bool targets_mode = !opts_.targets.empty();

    for (;;) {
        if (stats_.instrs >= opts_.fuel)
            return StopReason::FuelExhausted;

        if (ready_.empty()) {
            if (m_.allExited())
                return StopReason::AllExited;
            if (targets_mode) {
                bool all_ok = true;
                for (ThreadId t = 0; t < m_.threads.size(); ++t)
                    all_ok = all_ok && targetSatisfied(t);
                if (all_ok)
                    return StopReason::TargetsReached;
                return StopReason::Stalled;
            }
            return StopReason::Deadlock;
        }

        ThreadId tid = ready_.front();
        ready_.pop_front();
        queued_[tid] = 0;

        if (m_.thread(tid).state != RunState::Runnable)
            continue;
        if (targets_mode && targetSatisfied(tid))
            continue;

        std::uint64_t budget = budgetFor(tid);
        bool attempt =
            targets_mode && tid < opts_.targets.size() &&
            opts_.targets[tid].endState == RunState::Blocked &&
            m_.thread(tid).retired >= opts_.targets[tid].retired;

        chargeSwitch(tid);
        SliceResult s = runSlice(tid, budget, attempt, false);

        // Delivery-only slices still emit a segment: a delivery is a
        // scheduling event replay must revisit the thread for.
        if ((s.instrs > 0 || s.endedBlocked || s.delivered) &&
            hooks_.onSegment)
            hooks_.onSegment({tid, s.instrs, s.endedBlocked});

        enqueueIfRunnable(tid);

        if (s.progress) {
            zero_streak = 0;
        } else if (++zero_streak > 2 * m_.threads.size() + 4) {
            if (hooks_.permitSync && !relaxed_) {
                // The sync-order constraints deadlocked the schedule
                // (the order references ops this execution will never
                // reach — a data race changed the control flow). Drop
                // them; the epoch-end state comparison will flag it.
                relaxed_ = true;
                zero_streak = 0;
                continue;
            }
            return targets_mode ? StopReason::Stalled
                                : StopReason::Deadlock;
        }
    }
}

StopReason
UniRunner::runReplay()
{
    for (;;) {
        if (stats_.instrs >= opts_.fuel)
            return StopReason::FuelExhausted;

        std::optional<ScheduleSegment> seg = hooks_.nextSegment();
        if (!seg)
            return StopReason::ScheduleEnded;

        if (seg->tid >= m_.threads.size() ||
            m_.thread(seg->tid).state != RunState::Runnable) {
            dp_warn("replay schedule names thread ", seg->tid,
                    " which is not runnable");
            return StopReason::Stalled;
        }

        chargeSwitch(seg->tid);
        SliceResult s =
            runSlice(seg->tid, seg->instrs, seg->endedBlocked, true);
        if (s.instrs != seg->instrs ||
            s.endedBlocked != seg->endedBlocked) {
            dp_warn("replay diverged from schedule: thread ", seg->tid,
                    " ran ", s.instrs, "/", seg->instrs,
                    " instrs (blocked=", s.endedBlocked, " expected ",
                    seg->endedBlocked, ")");
            return StopReason::Stalled;
        }
    }
}

} // namespace dp
