/**
 * @file
 * ReplayProfiler: execution profiling over a replayed recording.
 *
 * Another paper-motivated offline analysis: because replay reproduces
 * the production execution exactly, profiling it gives exact counts
 * (not samples) with zero perturbation of the original run. Tracks
 * per-thread memory/sync/syscall behaviour, per-epoch activity, the
 * hottest guest pages, and wake edges (a proxy for blocking
 * contention).
 */

#ifndef DP_ANALYSIS_PROFILER_HH
#define DP_ANALYSIS_PROFILER_HH

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "replay/replayer.hh"

namespace dp
{

/** Aggregated behaviour of one guest thread. */
struct ThreadProfile
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t atomics = 0;
    std::uint64_t syscalls = 0;
    /** Times this thread was woken (futex/join/pipe wakes received:
     *  each one is a completed blocking wait). */
    std::uint64_t wakesReceived = 0;
    /** Times this thread's syscalls woke someone else. */
    std::uint64_t wakesGiven = 0;
    /** Per-syscall-number counts. */
    std::map<Sys, std::uint64_t> bySyscall;
};

/** One hot page entry. */
struct HotPage
{
    Addr pageAddr = 0; ///< page-aligned base address
    std::uint64_t accesses = 0;
    std::uint32_t threadsTouching = 0;
};

/** Exact-count profiler fed by ReplayObserver events. */
class ReplayProfiler
{
  public:
    /** Hooks to attach to Replayer::replaySequential(). */
    ReplayObserver observer();

    const std::vector<ThreadProfile> &threads() const
    {
        return threads_;
    }

    /** Memory accesses observed per epoch. */
    const std::vector<std::uint64_t> &epochAccesses() const
    {
        return epochAccesses_;
    }

    /** The @p n most-accessed guest pages, descending. */
    std::vector<HotPage> hottestPages(std::size_t n) const;

    std::uint64_t totalAccesses() const { return totalAccesses_; }
    std::uint64_t totalSyncOps() const { return totalSyncOps_; }

  private:
    ThreadProfile &profileOf(ThreadId tid);

    std::vector<ThreadProfile> threads_;
    std::vector<std::uint64_t> epochAccesses_;
    /** page index -> (accesses, bitmap of low thread ids). */
    std::unordered_map<std::uint64_t,
                       std::pair<std::uint64_t, std::uint64_t>>
        pages_;
    EpochId currentEpoch_ = 0;
    std::uint64_t totalAccesses_ = 0;
    std::uint64_t totalSyncOps_ = 0;
};

} // namespace dp

#endif // DP_ANALYSIS_PROFILER_HH
