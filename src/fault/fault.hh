/**
 * @file
 * Deterministic fault injection for the uniparallel pipeline.
 *
 * A FaultPlan names the sites where faults may fire, each with a
 * probability and a per-scope trigger budget, under one master seed. A
 * FaultInjector evaluates the plan at runtime: every decision is a pure
 * function of (seed, site, scope, sequence-within-scope), so a given
 * plan produces the *same* fault stream on every run regardless of host
 * threading — any failing run is replayable as a regression test from
 * its seed alone.
 *
 * Scopes partition a site's decision stream (the recorder uses epoch
 * and checkpoint sequence numbers) so that decisions made concurrently
 * for different epochs never consume each other's draws.
 */

#ifndef DP_FAULT_FAULT_HH
#define DP_FAULT_FAULT_HH

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace dp
{

/** Every place the pipeline can be made to fail. */
enum class FaultSite : std::uint8_t
{
    /** NetRecv returns a transient error (~0) and delivers nothing. */
    NetRecvFail,
    /** NetRecv delivers fewer bytes than had arrived. */
    NetRecvShort,
    /** GetTime returns a transient error (~0) instead of the clock. */
    GetTimeFail,
    /** File Read delivers a short count in the thread-parallel run
     *  only — the epoch-parallel run re-executes the full read, so
     *  this forces a divergence and exercises rollback. */
    FileShortRead,
    /** Checkpoint capture produces a torn snapshot whose digest does
     *  not match the machine (detected and recaptured). */
    TornCheckpoint,
    /** The epoch-parallel worker dies before delivering its result
     *  (epoch re-executed; repeated deaths degrade the epoch to an
     *  inline sequential execution). */
    WorkerDeath,
    /** The journal writer dies mid-frame, leaving a torn tail (a
     *  prefix of the frame's bytes) after the committed frames. */
    TornFrameWrite,
    /** The journal writer dies cleanly between frames: the journal
     *  ends exactly at a frame boundary. */
    JournalCrash,
    /** A bit flips inside an already-committed journal frame (storage
     *  corruption); recovery must detect it via the frame CRC. */
    JournalBitFlip,
    /** One stream of a sharded journal dies mid-frame, leaving a torn
     *  tail on that stream only — its siblings keep committing. */
    StreamTornWrite,
    /** One stream's committer dies cleanly between frames; the stream
     *  ends at a frame boundary while its siblings run on. */
    StreamCrash,
    /** A bit flips inside a committed frame of one stream (per-stream
     *  storage corruption). */
    StreamBitFlip,
    /** The shipping link silently drops a batch: the standby never
     *  sees it and the sender sees a timeout. */
    LinkDrop,
    /** The shipping link delivers a batch twice back to back; the
     *  standby must apply it idempotently. */
    LinkDuplicate,
    /** The shipping link holds a batch and delivers it after a later
     *  one — out-of-order arrival at the standby. */
    LinkReorder,
    /** The shipping link truncates a batch mid-flight; the batch CRC
     *  fails at the standby and the whole batch is rejected. */
    LinkTornBatch,
    /** The shipping link goes down (in-flight batches lost) until the
     *  sender reconnects. */
    LinkDisconnect,
    /** The standby process crashes, losing all volatile state; it
     *  recovers from its persisted journal images via
     *  recoverJournal/recoverShardedJournal and resyncs. */
    StandbyCrash,
    NumSites
};

inline constexpr std::size_t numFaultSites =
    static_cast<std::size_t>(FaultSite::NumSites);

/** Canonical spec-string name of a site (e.g. "netrecv-fail"). */
const char *faultSiteName(FaultSite site);

/** One injected fault, as it fired. */
struct FaultEvent
{
    FaultSite site = FaultSite::NumSites;
    /** Decision-stream scope (epoch / checkpoint sequence number). */
    std::uint64_t scope = 0;
    /** Index of the decision within its (site, scope) stream. */
    std::uint64_t seq = 0;

    bool operator==(const FaultEvent &) const = default;
};

/**
 * Immutable description of what may fail and how often. Probabilities
 * are stored in parts-per-million so plans hash and compare exactly.
 */
struct FaultPlan
{
    struct Site
    {
        /** Firing probability in parts per million (0 = disabled). */
        std::uint32_t ppm = 0;
        /** Max triggers per (site, scope) decision stream. */
        std::uint32_t maxPerScope = ~std::uint32_t{0};
    };

    std::uint64_t seed = 0;
    std::array<Site, numFaultSites> sites{};

    /** Enable @p site with probability @p prob (0..1); chainable. */
    FaultPlan &with(FaultSite site, double prob,
                    std::uint32_t max_per_scope = ~std::uint32_t{0});

    /** True if any site has a nonzero probability. */
    bool enabled() const;

    /**
     * Parse a spec like "netrecv-fail=0.01,worker-death=0.5:1" —
     * comma-separated site=probability[:budget] entries (see
     * faultSiteName for the site names). Exits via dp_fatal on a
     * malformed spec (CLI entry point).
     */
    static FaultPlan parse(const std::string &spec, std::uint64_t seed);

    /** Human-readable one-line summary of the enabled sites. */
    std::string describe() const;
};

/** Counters per site, readable while a session runs. */
struct FaultStats
{
    std::array<std::uint64_t, numFaultSites> fired{};
    std::array<std::uint64_t, numFaultSites> queried{};

    std::uint64_t totalFired() const;
};

/**
 * Evaluates a FaultPlan. fire() is safe to call from any host thread;
 * decisions depend only on (seed, site, scope, per-scope sequence), so
 * as long as each (site, scope) stream is queried in a deterministic
 * order — true of every site the recorder arms — the event stream is
 * identical across runs.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

    /** Decide whether the fault at @p site fires now in @p scope. */
    bool fire(FaultSite site, std::uint64_t scope = 0);

    const FaultPlan &plan() const { return plan_; }

    /** Times @p site has fired so far. */
    std::uint64_t count(FaultSite site) const;
    /** Snapshot of all counters. */
    FaultStats stats() const;
    /** Every fault fired so far, in firing order. */
    std::vector<FaultEvent> events() const;

    /** Invoked (under no lock ordering guarantees beyond firing
     *  order) for every fault that fires. */
    std::function<void(const FaultEvent &)> onFault;

  private:
    struct ScopeState
    {
        std::uint64_t seq = 0;
        std::uint32_t fired = 0;
    };

    FaultPlan plan_;
    mutable std::mutex mu_;
    std::map<std::pair<std::uint8_t, std::uint64_t>, ScopeState>
        scopes_;
    FaultStats stats_;
    std::vector<FaultEvent> events_;
};

} // namespace dp

#endif // DP_FAULT_FAULT_HH
