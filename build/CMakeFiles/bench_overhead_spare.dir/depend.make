# Empty dependencies file for bench_overhead_spare.
# This may be replaced when dependencies are built.
