#include "ckpt/checkpoint.hh"

#include "common/hash.hh"

namespace dp
{

Checkpoint
Checkpoint::capture(Machine &m)
{
    Checkpoint c;
    c.stateHash_ = m.stateHash();
    c.mem_ = m.mem.snapshot();
    c.threads_ = m.threads;
    c.os_ = m.os;
    c.now_ = m.now;
    return c;
}

Checkpoint
Checkpoint::captureTorn(Machine &m, std::uint64_t salt)
{
    Checkpoint c = capture(m);
    // The digest of a half-copied snapshot is some unrelated value;
    // xor-ing in a mixed, never-zero perturbation models that without
    // needing to half-copy pages for real.
    c.stateHash_ ^= mix64(salt) | 1;
    return c;
}

Machine
Checkpoint::materialize(const GuestProgram &prog,
                        const MachineConfig &cfg) const
{
    Machine m(prog, cfg);
    restoreInto(m);
    return m;
}

void
Checkpoint::restoreInto(Machine &m) const
{
    m.mem.restore(mem_);
    m.threads = threads_;
    m.os = os_;
    m.now = now_;
}

} // namespace dp
