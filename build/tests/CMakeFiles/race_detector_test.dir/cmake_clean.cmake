file(REMOVE_RECURSE
  "CMakeFiles/race_detector_test.dir/race_detector_test.cc.o"
  "CMakeFiles/race_detector_test.dir/race_detector_test.cc.o.d"
  "race_detector_test"
  "race_detector_test.pdb"
  "race_detector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/race_detector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
