/**
 * @file
 * UniparallelRecorder: DoublePlay's record pipeline.
 *
 * Runs the application twice, concurrently in virtual time:
 *
 *   thread-parallel run (MultiCpuSim, N CPUs)
 *       |  every epochLength cycles: quiesce, checkpoint,
 *       |  hand off {checkpoint, targets, sync order, injectables}
 *       v
 *   epoch-parallel runs (EpochRunner, 1 CPU each, own memory copy)
 *       |  produce the official logs; end state compared against the
 *       |  next checkpoint
 *       v
 *   divergence? -> squash the speculation, resume the thread-parallel
 *                  run from the epoch-parallel run's state
 *
 * The host-side implementation executes the pipeline stages
 * sequentially and reconstructs the concurrent timing with the fluid
 * pipeline model (timing/pipeline.hh); the benchmark harness reports
 * overheads from that model.
 */

#ifndef DP_CORE_RECORDER_HH
#define DP_CORE_RECORDER_HH

#include <cstdint>
#include <functional>

#include "core/recording.hh"
#include "os/machine.hh"
#include "os/run_types.hh"
#include "timing/cost_model.hh"
#include "vm/program.hh"

namespace dp
{

/** Record-session configuration. */
struct RecorderOptions
{
    /** N: worker CPUs for the thread-parallel execution. */
    CpuId workerCpus = 2;
    /** Epoch length in virtual cycles. */
    Cycles epochLength = 400'000;
    /** Interleaving seed of the thread-parallel run. */
    std::uint64_t seed = 1;
    /** Epoch-parallel timeslice quantum (instructions). */
    std::uint64_t quantum = 50'000;
    /** Retain epoch-start checkpoints for parallel replay. */
    bool keepCheckpoints = true;
    /** Feed the thread-parallel sync order into the epoch-parallel
     *  runs (disable only for the E7 ablation). */
    bool enforceSyncOrder = true;
    /** Charge instrumentation costs to virtual time. */
    bool chargeCosts = true;
    /** Per-execution instruction fuse. */
    std::uint64_t fuel = std::uint64_t{1} << 33;
    /** Abort after this many epochs (runaway guard). */
    std::uint32_t maxEpochs = 1 << 16;
    /** Abort after this many rollbacks (livelock guard). */
    std::uint32_t maxRollbacks = 256;
    /** Thread-parallel per-CPU jitter (see MpOptions). */
    std::uint32_t jitterNum = 1;
    std::uint32_t jitterDen = 8;
    /** Thread-parallel migration quantum. */
    std::uint64_t mpQuantum = 20'000;
    /**
     * Host threads executing epoch-parallel runs concurrently with
     * the thread-parallel run (the deployment's real pipeline).
     * 0 = synchronous reference mode. Both modes produce identical
     * recordings; the parallel mode also overlaps host wall-clock.
     */
    unsigned hostWorkers = 0;
    /** Epochs allowed in flight before the thread-parallel run
     *  stalls (parallel mode only). */
    unsigned maxInFlight = 4;
};

/**
 * Callbacks observing a record session as it progresses. Committed
 * epochs are final (a divergence squashes the *speculation*, never an
 * already-committed epoch), so onEpochCommitted can stream them to a
 * LiveReplica or to storage.
 */
struct RecordObserver
{
    /** Epoch @p index was validated and appended, in order. */
    std::function<void(const EpochRecord &, EpochId index)>
        onEpochCommitted;
};

/** Result of a record session. */
struct RecordOutcome
{
    Recording recording;
    /** Final stop reason of the thread-parallel run. */
    StopReason tpReason = StopReason::AllExited;
    /** The recording is complete and every epoch validated. */
    bool ok = false;
    /** Guest exit code of the main thread. */
    std::uint64_t mainExitCode = 0;
};

/** Records a program with uniparallelism. */
class UniparallelRecorder
{
  public:
    UniparallelRecorder(const GuestProgram &prog, MachineConfig cfg,
                        RecorderOptions opts = {}, CostModel costs = {});
    /** The recorder keeps a pointer to the program; see Machine. */
    UniparallelRecorder(GuestProgram &&, MachineConfig,
                        RecorderOptions = {}, CostModel = {}) = delete;

    /** Run the full record pipeline to program completion;
     *  @p observer (optional) sees each epoch as it commits. */
    RecordOutcome record(const RecordObserver *observer = nullptr);

  private:
    const GuestProgram *prog_;
    MachineConfig cfg_;
    RecorderOptions opts_;
    CostModel costs_;
};

} // namespace dp

#endif // DP_CORE_RECORDER_HH
