#include "mem/paged_memory.hh"

#include <cstring>

#include "common/hash.hh"
#include "common/logging.hh"

/**
 * DP_DIGEST_CHECK: cross-check the incremental table digest against a
 * from-scratch recompute at every fold. O(resident pages) per digest
 * query — debug/sanitizer builds only (the ci-asan preset turns it
 * on); release builds keep the O(dirty) fast path unchecked.
 */
#if defined(DP_DIGEST_CHECK) || !defined(NDEBUG)
#define DP_DIGEST_CHECK_ENABLED 1
#else
#define DP_DIGEST_CHECK_ENABLED 0
#endif

namespace dp
{

namespace
{

std::size_t
residentCount(const std::vector<PageRef> &pages)
{
    std::size_t n = 0;
    for (const auto &p : pages)
        n += p != nullptr;
    return n;
}

} // namespace

std::size_t
MemSnapshot::residentPages() const
{
    return residentCount(pages_);
}

PagedMemory::PagedMemory(std::size_t max_pages) : maxPages_(max_pages) {}

const Page *
PagedMemory::pageFor(Addr a) const
{
    std::size_t idx = pageIndex(a);
    if (idx >= pages_.size())
        return nullptr;
    return pages_[idx].get();
}

std::uint64_t
PagedMemory::slotTerm(std::size_t idx, std::uint64_t page_hash)
{
    // Zero-content pages contribute nothing: an explicit all-zero page
    // must digest exactly like an absent table entry.
    if (page_hash == Page::zeroHash())
        return 0;
    // Each (index, content) pair must be an independently well-mixed
    // XOR term: two swapped pages change the digest, and flipping one
    // term cannot be cancelled by another slot's flip.
    return mix64(mix64(idx ^ 0x517cc1b727220a95ull) ^ page_hash);
}

Page &
PagedMemory::writablePage(Addr a)
{
    std::size_t idx = pageIndex(a);
    if (idx >= maxPages_) {
        dp_fatal("guest address 0x", std::hex, a,
                 " exceeds the configured memory limit");
    }
    if (idx >= pages_.size()) {
        // Single growth site: the three side tables stay the same
        // size as the page table by construction (they are resized
        // together here and assigned together in restore()).
        pages_.resize(idx + 1);
        dirtyBitmap_.resize(idx + 1, false);
        staleBitmap_.resize(idx + 1, false);
    }
    PageRef &slot = pages_[idx];
    if (!staleBitmap_[idx]) {
        // First write since the last digest fold: record the slot's
        // accounted contribution before the content changes. The page
        // (if any) still carries the memoized digest the last fold
        // computed, so this is O(1).
        staleBitmap_[idx] = true;
        staleList_.push_back(static_cast<std::uint32_t>(idx));
        staleOldTerm_.push_back(slot ? slotTerm(idx, slot->hash())
                                     : 0);
    }
    if (!slot) {
        slot = std::make_shared<Page>();
    } else if (slot.use_count() > 1) {
        // Copy-on-write: the page is shared with a snapshot or a
        // sibling epoch's address space.
        slot = std::make_shared<Page>(*slot);
    }
    slot->invalidateHash();
    if (!dirtyBitmap_[idx]) {
        dirtyBitmap_[idx] = true;
        dirtyList_.push_back(static_cast<std::uint32_t>(idx));
    }
    return *slot;
}

template <typename T>
T
PagedMemory::readScalar(Addr a) const
{
    if (pageOffset(a) + sizeof(T) <= Page::bytes) {
        const Page *p = pageFor(a);
        if (!p)
            return T{0};
        T v;
        std::memcpy(&v, p->data.data() + pageOffset(a), sizeof(T));
        return v;
    }
    // Crosses a page boundary: assemble byte-wise.
    T v{0};
    for (std::size_t i = 0; i < sizeof(T); ++i)
        v |= static_cast<T>(read8(a + i)) << (8 * i);
    return v;
}

template <typename T>
void
PagedMemory::writeScalar(Addr a, T v)
{
    if (pageOffset(a) + sizeof(T) <= Page::bytes) {
        Page &p = writablePage(a);
        std::memcpy(p.data.data() + pageOffset(a), &v, sizeof(T));
        return;
    }
    for (std::size_t i = 0; i < sizeof(T); ++i)
        write8(a + i, static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint8_t
PagedMemory::read8(Addr a) const
{
    const Page *p = pageFor(a);
    return p ? p->data[pageOffset(a)] : 0;
}

std::uint16_t PagedMemory::read16(Addr a) const
{
    return readScalar<std::uint16_t>(a);
}

std::uint32_t PagedMemory::read32(Addr a) const
{
    return readScalar<std::uint32_t>(a);
}

std::uint64_t PagedMemory::read64(Addr a) const
{
    return readScalar<std::uint64_t>(a);
}

void
PagedMemory::write8(Addr a, std::uint8_t v)
{
    writablePage(a).data[pageOffset(a)] = v;
}

void PagedMemory::write16(Addr a, std::uint16_t v) { writeScalar(a, v); }
void PagedMemory::write32(Addr a, std::uint32_t v) { writeScalar(a, v); }
void PagedMemory::write64(Addr a, std::uint64_t v) { writeScalar(a, v); }

void
PagedMemory::readBytes(Addr a, std::span<std::uint8_t> out) const
{
    std::size_t done = 0;
    while (done < out.size()) {
        std::size_t off = pageOffset(a + done);
        std::size_t chunk =
            std::min(out.size() - done, Page::bytes - off);
        const Page *p = pageFor(a + done);
        if (p)
            std::memcpy(out.data() + done, p->data.data() + off, chunk);
        else
            std::memset(out.data() + done, 0, chunk);
        done += chunk;
    }
}

void
PagedMemory::writeBytes(Addr a, std::span<const std::uint8_t> in)
{
    std::size_t done = 0;
    while (done < in.size()) {
        std::size_t off = pageOffset(a + done);
        std::size_t chunk = std::min(in.size() - done, Page::bytes - off);
        Page &p = writablePage(a + done);
        std::memcpy(p.data.data() + off, in.data() + done, chunk);
        done += chunk;
    }
}

std::string
PagedMemory::readCString(Addr a, std::size_t max_len) const
{
    std::string out;
    for (std::size_t i = 0; i < max_len; ++i) {
        char c = static_cast<char>(read8(a + i));
        if (c == '\0')
            break;
        out.push_back(c);
    }
    return out;
}

void
PagedMemory::syncDigest() const
{
    for (std::size_t i = 0; i < staleList_.size(); ++i) {
        const std::size_t idx = staleList_[i];
        const PageRef &slot = pages_[idx];
        // Page::hash() memoizes here, re-establishing the invariant
        // that every non-stale resident page carries a valid memo.
        const std::uint64_t now =
            slot ? slotTerm(idx, slot->hash()) : 0;
        tableDigest_ ^= staleOldTerm_[i] ^ now;
        staleBitmap_[idx] = false;
    }
    staleList_.clear();
    staleOldTerm_.clear();
#if DP_DIGEST_CHECK_ENABLED
    dp_assert(tableDigest_ == referenceHash(),
              "incremental table digest diverged from the "
              "from-scratch recompute");
#endif
}

std::uint64_t
PagedMemory::hash() const
{
    syncDigest();
    return tableDigest_;
}

std::uint64_t
PagedMemory::referenceHash() const
{
    std::uint64_t d = 0;
    for (std::size_t i = 0; i < pages_.size(); ++i)
        if (pages_[i])
            d ^= slotTerm(i, pages_[i]->computeHash());
    return d;
}

MemSnapshot
PagedMemory::snapshot()
{
    syncDigest();
    MemSnapshot snap;
    snap.pages_ = pages_;
    snap.digest_ = tableDigest_;
    clearDirty();
    return snap;
}

void
PagedMemory::restore(const MemSnapshot &snap)
{
    pages_ = snap.pages_;
    // The snapshot carries its digest, and every page it references
    // was memoized when it was taken: adopting both keeps restore()
    // O(table size) pointer work with no rehashing.
    tableDigest_ = snap.digest_;
    staleBitmap_.assign(pages_.size(), false);
    staleList_.clear();
    staleOldTerm_.clear();
    dirtyBitmap_.assign(pages_.size(), false);
    dirtyList_.clear();
}

void
PagedMemory::clearDirty()
{
    for (std::uint32_t idx : dirtyList_)
        dirtyBitmap_[idx] = false;
    dirtyList_.clear();
}

std::size_t
PagedMemory::residentPages() const
{
    return residentCount(pages_);
}

std::vector<std::uint32_t>
PagedMemory::diffPages(const MemSnapshot &other) const
{
    static const Page zeroPage{};
    std::vector<std::uint32_t> diff;
    std::size_t n = std::max(pages_.size(), other.pages_.size());
    for (std::size_t i = 0; i < n; ++i) {
        const Page *a =
            i < pages_.size() && pages_[i] ? pages_[i].get() : &zeroPage;
        const Page *b = i < other.pages_.size() && other.pages_[i]
                            ? other.pages_[i].get()
                            : &zeroPage;
        if (a == b)
            continue;
        if (std::memcmp(a->data.data(), b->data.data(), Page::bytes) != 0)
            diff.push_back(static_cast<std::uint32_t>(i));
    }
    return diff;
}

} // namespace dp
