# Empty dependencies file for dp_replay.
# This may be replaced when dependencies are built.
