/**
 * @file
 * Deliberately racy workload for the divergence experiments.
 */

#include "workloads/registry.hh"

#include "common/logging.hh"
#include "workloads/wl_common.hh"

namespace dp::workloads
{

using enum Reg;
namespace lib = dp::asmlib;

WorkloadBundle
makeRacyUpdates(std::uint32_t threads, std::uint64_t updates,
                std::uint64_t race_one_in)
{
    dp_assert(race_one_in > 0 &&
                  (race_one_in & (race_one_in - 1)) == 0,
              "race_one_in must be a power of two");
    constexpr std::uint64_t nwords = 16;

    Assembler a;
    Label worker = a.newLabel();

    emitSpawnJoin(a, threads, worker);
    emitWriteGlobalAndExit(a, gResult);

    // ---- worker: mostly private updates, occasionally racy ----
    a.bind(worker);
    a.mov(r13, r1); // my index
    a.muli(r12, r13, 0x9E3779B97F4A7C15ll);
    a.addi(r12, r12, 777); // per-thread rng
    a.li(r11, static_cast<std::int64_t>(updates));
    a.lia(r10, wlInput);
    emitThreadBase(a, r13, r9); // private word lives here

    Label loop = a.hereLabel();
    Label done = a.newLabel();
    Label go_private = a.newLabel();
    Label next = a.newLabel();
    a.beqz(r11, done);
    emitRngNext(a, r12, r5);
    a.andi(r6, r5, static_cast<std::int64_t>(race_one_in - 1));
    a.bnez(r6, go_private);
    // Racy path: unprotected read-modify-write on a shared word.
    a.shri(r5, r5, 32);
    a.andi(r5, r5, nwords - 1);
    a.shli(r5, r5, 3);
    a.add(r5, r5, r10);
    a.ld64(r4, r5, 0); // racy read
    a.addi(r4, r4, 1);
    a.st64(r5, 0, r4); // racy write: lost updates possible
    a.jmp(next);
    a.bind(go_private);
    a.ld64(r4, r9, 0);
    a.addi(r4, r4, 1);
    a.st64(r9, 0, r4); // thread-private, never races
    a.bind(next);
    a.addi(r11, r11, -1);
    a.jmp(loop);
    a.bind(done);

    // Fold the (schedule-dependent) words into the shared result.
    a.lia(r10, wlInput);
    a.li(r11, static_cast<std::int64_t>(nwords));
    a.li(r12, 0);
    Label csum = a.hereLabel();
    Label cdone = a.newLabel();
    a.beqz(r11, cdone);
    a.ld64(r4, r10, 0);
    a.add(r12, r12, r4);
    a.addi(r10, r10, 8);
    a.addi(r11, r11, -1);
    a.jmp(csum);
    a.bind(cdone);
    a.lia(r5, wlGlobals + gResult);
    a.fetchAdd(r4, r5, r12);
    lib::exitWith(a, 0);

    return {a.finish("racy_updates"), {}, 0};
}

} // namespace dp::workloads
