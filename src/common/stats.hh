/**
 * @file
 * Lightweight statistics accumulators used by the benchmark harness.
 */

#ifndef DP_COMMON_STATS_HH
#define DP_COMMON_STATS_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/logging.hh"

namespace dp
{

/** Streaming accumulator for min/max/mean over double samples. */
class RunningStat
{
  public:
    /** Add one sample. */
    void
    add(double x)
    {
        ++n_;
        sum_ += x;
        logSum_ += (x > 0) ? std::log(x) : 0.0;
        allPositive_ = allPositive_ && x > 0;
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }

    std::uint64_t count() const { return n_; }
    double sum() const { return sum_; }

    double
    mean() const
    {
        dp_assert(n_ > 0, "mean of empty RunningStat");
        return sum_ / static_cast<double>(n_);
    }

    /** Geometric mean; requires all samples positive. */
    double
    geomean() const
    {
        dp_assert(n_ > 0, "geomean of empty RunningStat");
        dp_assert(allPositive_, "geomean requires positive samples");
        return std::exp(logSum_ / static_cast<double>(n_));
    }

    double min() const { return min_; }
    double max() const { return max_; }

  private:
    std::uint64_t n_ = 0;
    double sum_ = 0.0;
    double logSum_ = 0.0;
    bool allPositive_ = true;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/** Fixed-capacity percentile sampler (stores all samples; small runs). */
class Percentiles
{
  public:
    void add(double x) { samples_.push_back(x); }

    /** p in [0, 100]; nearest-rank percentile. */
    double
    at(double p) const
    {
        dp_assert(!samples_.empty(), "percentile of empty sampler");
        std::vector<double> s = samples_;
        std::sort(s.begin(), s.end());
        double rank = p / 100.0 * static_cast<double>(s.size() - 1);
        auto idx = static_cast<std::size_t>(rank + 0.5);
        return s[std::min(idx, s.size() - 1)];
    }

    std::size_t count() const { return samples_.size(); }

  private:
    std::vector<double> samples_;
};

} // namespace dp

#endif // DP_COMMON_STATS_HH
