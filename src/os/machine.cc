#include "os/machine.hh"

#include "common/hash.hh"
#include "common/logging.hh"
#include "vm/abi.hh"

namespace dp
{

Machine::Machine(const GuestProgram &prog, MachineConfig cfg)
    : prog_(&prog), cfg_(std::move(cfg))
{
    prog.loadInto(mem);
    mem.clearDirty();

    for (const auto &[path, content] : cfg_.initialFiles) {
        std::uint32_t id = os.ensureFile(path);
        os.writableFile(id) = content;
    }

    // fd 0 is a read-only empty null device (no stdin model); fd 1/2
    // are append-only sinks. Backing all three with real files keeps
    // their slots allocated (allocFd reuses slots with fileId < 0).
    std::uint32_t nul = os.ensureFile("<null>");
    std::uint32_t out = os.ensureFile("<stdout>");
    std::uint32_t err = os.ensureFile("<stderr>");
    os.allocFd(FileDesc{static_cast<std::int32_t>(nul), 0, false,
                        false});
    os.allocFd(FileDesc{static_cast<std::int32_t>(out), 0, true, true});
    os.allocFd(FileDesc{static_cast<std::int32_t>(err), 0, true, true});

    ThreadContext main;
    main.tid = 0;
    main.pc = prog.entry;
    main.reg(Reg::r2) = 0; // own tid
    threads.push_back(main);
    os.nextTid = 1;
}

bool
Machine::allExited() const
{
    for (const auto &t : threads)
        if (t.state != RunState::Exited)
            return false;
    return true;
}

std::size_t
Machine::runnableCount() const
{
    std::size_t n = 0;
    for (const auto &t : threads)
        n += t.state == RunState::Runnable;
    return n;
}

std::uint64_t
Machine::stateHash() const
{
    Digest d;
    d.word(mem.hash());
    for (const auto &t : threads)
        d.word(t.hash());
    d.word(os.hash());
    return d.value();
}

const std::vector<std::uint8_t> &
Machine::stdoutBytes() const
{
    auto it = os.nameToFile.find("<stdout>");
    dp_assert(it != os.nameToFile.end(), "stdout sink missing");
    static const std::vector<std::uint8_t> empty;
    const FileContent &c = os.files[it->second];
    return c ? *c : empty;
}

std::uint64_t
Machine::totalRetired() const
{
    std::uint64_t n = 0;
    for (const auto &t : threads)
        n += t.retired;
    return n;
}

} // namespace dp
