file(REMOVE_RECURSE
  "CMakeFiles/dp_common.dir/logging.cc.o"
  "CMakeFiles/dp_common.dir/logging.cc.o.d"
  "CMakeFiles/dp_common.dir/table.cc.o"
  "CMakeFiles/dp_common.dir/table.cc.o.d"
  "libdp_common.a"
  "libdp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
