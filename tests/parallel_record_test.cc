/**
 * @file
 * Tests for host-parallel recording: the concurrent pipeline must
 * produce byte-identical recordings to the synchronous reference
 * mode, for clean, racy, and randomized programs.
 */

#include <gtest/gtest.h>

#include "core/recorder.hh"
#include "replay/recording_io.hh"
#include "replay/replayer.hh"
#include "testprogs.hh"
#include "workloads/registry.hh"

namespace dp
{
namespace
{

RecordOutcome
recordWith(const GuestProgram &prog, const MachineConfig &cfg,
           unsigned host_workers, Cycles epoch_len = 10'000)
{
    RecorderOptions opts;
    opts.epochLength = epoch_len;
    opts.hostWorkers = host_workers;
    opts.keepCheckpoints = false; // serialized comparison below
    UniparallelRecorder rec(prog, cfg, opts);
    return rec.record();
}

void
expectIdenticalRecordings(const GuestProgram &prog,
                          const MachineConfig &cfg,
                          Cycles epoch_len = 10'000)
{
    RecordOutcome sync_out = recordWith(prog, cfg, 0, epoch_len);
    RecordOutcome par_out = recordWith(prog, cfg, 2, epoch_len);
    ASSERT_TRUE(sync_out.ok);
    ASSERT_TRUE(par_out.ok);
    EXPECT_EQ(sync_out.mainExitCode, par_out.mainExitCode);
    EXPECT_EQ(sync_out.recording.stats.rollbacks,
              par_out.recording.stats.rollbacks);
    // Byte-identical artifacts: schedules, syscall logs, digests.
    EXPECT_EQ(serializeRecording(sync_out.recording),
              serializeRecording(par_out.recording));
}

TEST(ParallelRecord, MatchesSynchronousOnLockedCounter)
{
    expectIdenticalRecordings(testprogs::lockedCounter(3, 400), {});
}

TEST(ParallelRecord, MatchesSynchronousOnBarriers)
{
    expectIdenticalRecordings(testprogs::barrierPhases(3, 10), {});
}

TEST(ParallelRecord, MatchesSynchronousOnSyscallStorm)
{
    MachineConfig cfg;
    cfg.netBytesPerConn = 4'096;
    cfg.netCyclesPerByte = 3;
    expectIdenticalRecordings(testprogs::syscallStorm(2'000), cfg,
                              20'000);
}

TEST(ParallelRecord, MatchesSynchronousWithRollbacks)
{
    // Divergences squash in-flight epochs; the outcome must still be
    // identical to the synchronous path.
    expectIdenticalRecordings(testprogs::racyCounter(4, 2'000), {},
                              8'000);
}

TEST(ParallelRecord, MatchesSynchronousOnRandomCorpus)
{
    for (std::uint64_t seed = 500; seed < 508; ++seed) {
        GuestProgram prog =
            testprogs::randomProgram(seed, {.allowRaces = true});
        MachineConfig cfg;
        cfg.netBytesPerConn = 8'192;
        SCOPED_TRACE("seed " + std::to_string(seed));
        expectIdenticalRecordings(prog, cfg, 4'000);
    }
}

TEST(ParallelRecord, ParallelRecordingReplays)
{
    const workloads::Workload *w = workloads::findWorkload("mysql");
    workloads::WorkloadBundle b = w->make({.threads = 2, .scale = 2});
    RecorderOptions opts;
    opts.epochLength = 40'000;
    opts.hostWorkers = 2;
    UniparallelRecorder rec(b.program, b.config, opts);
    RecordOutcome out = rec.record();
    ASSERT_TRUE(out.ok);
    EXPECT_EQ(out.mainExitCode, b.expectedExit);

    Replayer rep(out.recording);
    EXPECT_TRUE(rep.replaySequential().ok);
    EXPECT_TRUE(rep.replayParallel(2).ok);
}

TEST(ParallelRecord, WindowSizeOneStillWorks)
{
    GuestProgram prog = testprogs::atomicCounter(2, 1'000);
    RecorderOptions opts;
    opts.epochLength = 5'000;
    opts.hostWorkers = 2;
    opts.maxInFlight = 1;
    UniparallelRecorder rec(prog, {}, opts);
    RecordOutcome out = rec.record();
    ASSERT_TRUE(out.ok);
    EXPECT_EQ(out.mainExitCode, 2'000u);
}

TEST(ParallelRecord, WindowSizeDoesNotAffectTheArtifact)
{
    GuestProgram prog = testprogs::lockedCounter(3, 600);
    auto artifact = [&](unsigned window) {
        RecorderOptions opts;
        opts.epochLength = 8'000;
        opts.hostWorkers = 2;
        opts.maxInFlight = window;
        opts.keepCheckpoints = false;
        UniparallelRecorder rec(prog, {}, opts);
        RecordOutcome out = rec.record();
        EXPECT_TRUE(out.ok);
        return serializeRecording(out.recording);
    };
    std::vector<std::uint8_t> w1 = artifact(1);
    EXPECT_EQ(w1, artifact(2));
    EXPECT_EQ(w1, artifact(8));
}

} // namespace
} // namespace dp
