# Empty dependencies file for bench_epoch_sweep.
# This may be replaced when dependencies are built.
