/**
 * @file
 * lu workload: barrier-phased integer Gaussian elimination with
 * round-robin row ownership (the SPLASH-2 lu sharing pattern: one
 * pivot row read by all, trailing rows written by their owners).
 */

#include "workloads/factories.hh"

#include "common/logging.hh"
#include "workloads/wl_common.hh"

namespace dp::workloads
{

using enum Reg;
namespace lib = dp::asmlib;

namespace
{

constexpr std::uint64_t luM = 40; // matrix dimension

/** Host reference mirroring the guest's integer elimination. */
std::uint64_t
luReference(std::vector<std::uint64_t> m, std::uint32_t iters)
{
    for (std::uint32_t it = 0; it < iters; ++it) {
        for (std::uint64_t k = 0; k + 1 < luM; ++k) {
            std::uint64_t piv = m[k * luM + k] | 1;
            for (std::uint64_t i = k + 1; i < luM; ++i) {
                std::uint64_t f = m[i * luM + k] / piv;
                for (std::uint64_t j = k; j < luM; ++j)
                    m[i * luM + j] -= f * m[k * luM + j];
            }
        }
    }
    std::uint64_t sum = 0;
    for (std::uint64_t i = 0; i < luM; ++i)
        sum += m[i * luM];
    return sum;
}

} // namespace

WorkloadBundle
makeLu(const WorkloadParams &p)
{
    const std::uint32_t iters = p.scale;
    std::vector<std::uint64_t> input =
        makeInputWords(luM * luM, p.seed);

    Assembler a;
    Label worker = a.newLabel();
    a.dataU64s(wlInput, input);

    emitSpawnJoin(a, p.threads, worker);
    emitWriteGlobalAndExit(a, gResult);

    // ---- worker ----
    // r7=iters left, r8=barrier, r9=T, r10=k, r11=i, r12=j,
    // r13=index, r14=base, r15=M; r4=f, r5=rowK, r6=rowI.
    a.bind(worker);
    a.mov(r13, r1);
    a.lia(r8, wlBarrier);
    a.li(r9, static_cast<std::int64_t>(p.threads));
    a.lia(r14, wlInput);
    a.li(r15, luM);
    a.li(r7, iters);

    Label iter_loop = a.hereLabel();
    Label iters_done = a.newLabel();
    a.beqz(r7, iters_done);
    a.li(r10, 0);

    Label k_loop = a.hereLabel();
    Label k_done = a.newLabel();
    a.li(r1, luM - 1);
    a.bgeu(r10, r1, k_done);
    lib::barrierWait(a, r8, r9, r4, r5);

    a.addi(r11, r10, 1);
    Label i_loop = a.hereLabel();
    Label i_done = a.newLabel();
    Label i_next = a.newLabel();
    a.bgeu(r11, r15, i_done);
    a.remu(r1, r11, r9);
    a.bne(r1, r13, i_next); // not my row

    a.muli(r5, r10, luM * 8);
    a.add(r5, r5, r14); // rowK
    a.muli(r6, r11, luM * 8);
    a.add(r6, r6, r14); // rowI
    a.shli(r2, r10, 3);
    a.add(r1, r5, r2);
    a.ld64(r1, r1, 0); // A[k][k]
    a.ori(r1, r1, 1);  // pivot (never zero)
    a.add(r2, r6, r2);
    a.ld64(r4, r2, 0); // A[i][k]
    a.divu(r4, r4, r1); // f

    a.mov(r12, r10);
    Label j_loop = a.hereLabel();
    Label j_done = a.newLabel();
    a.bgeu(r12, r15, j_done);
    a.shli(r2, r12, 3);
    a.add(r1, r5, r2);
    a.ld64(r1, r1, 0); // A[k][j]
    a.mul(r1, r1, r4);
    a.add(r2, r6, r2);
    a.ld64(r3, r2, 0);
    a.sub(r3, r3, r1);
    a.st64(r2, 0, r3);
    a.addi(r12, r12, 1);
    a.jmp(j_loop);
    a.bind(j_done);

    a.bind(i_next);
    a.addi(r11, r11, 1);
    a.jmp(i_loop);
    a.bind(i_done);
    a.addi(r10, r10, 1);
    a.jmp(k_loop);

    a.bind(k_done);
    a.addi(r7, r7, -1);
    a.jmp(iter_loop);
    a.bind(iters_done);

    // Checksum column 0 of my rows.
    a.li(r10, 0);
    a.li(r6, 0);
    Label csum = a.hereLabel();
    Label cdone = a.newLabel();
    Label cnext = a.newLabel();
    a.bgeu(r10, r15, cdone);
    a.remu(r1, r10, r9);
    a.bne(r1, r13, cnext);
    a.muli(r2, r10, luM * 8);
    a.add(r2, r2, r14);
    a.ld64(r1, r2, 0);
    a.add(r6, r6, r1);
    a.bind(cnext);
    a.addi(r10, r10, 1);
    a.jmp(csum);
    a.bind(cdone);
    a.lia(r5, wlGlobals + gResult);
    a.fetchAdd(r4, r5, r6);
    lib::exitWith(a, 0);

    WorkloadBundle b{a.finish("lu"), {}, luReference(input, iters)};
    return b;
}

} // namespace dp::workloads
