/**
 * @file
 * Tests for the replay profiler: exact counts, hot-page ranking, and
 * determinism across repeated replays of one recording.
 */

#include <gtest/gtest.h>

#include "analysis/profiler.hh"
#include "core/recorder.hh"
#include "replay/replayer.hh"
#include "testprogs.hh"
#include "workloads/registry.hh"

namespace dp
{
namespace
{

RecordOutcome
recordIt(const GuestProgram &prog, MachineConfig cfg = {})
{
    RecorderOptions opts;
    opts.epochLength = 15'000;
    UniparallelRecorder rec(prog, std::move(cfg), opts);
    RecordOutcome out = rec.record();
    EXPECT_TRUE(out.ok);
    return out;
}

ReplayProfiler
profileIt(const Recording &rec)
{
    ReplayProfiler prof;
    ReplayObserver obs = prof.observer();
    Replayer rep(rec);
    EXPECT_TRUE(rep.replaySequential(&obs).ok);
    return prof;
}

TEST(Profiler, CountsAtomicsExactly)
{
    // atomicCounter: each of 3 workers does 200 fetchAdds, plus the
    // lock-free scaffolding (spawn stores, final aggregation).
    GuestProgram prog = testprogs::atomicCounter(3, 200);
    RecordOutcome out = recordIt(prog);
    ReplayProfiler prof = profileIt(out.recording);

    std::uint64_t atomics = 0;
    for (const ThreadProfile &t : prof.threads())
        atomics += t.atomics;
    EXPECT_EQ(atomics, 3u * 200u);
}

TEST(Profiler, SyscallMixIsPlausible)
{
    GuestProgram prog = testprogs::lockedCounter(2, 200);
    RecordOutcome out = recordIt(prog);
    ReplayProfiler prof = profileIt(out.recording);

    ASSERT_EQ(prof.threads().size(), 3u); // main + 2 workers
    const ThreadProfile &main_thread = prof.threads()[0];
    EXPECT_EQ(main_thread.bySyscall.at(Sys::Spawn), 2u);
    // Joins that block complete via a wake, not a syscall event, so
    // they show up as received wakes instead.
    std::uint64_t joins = main_thread.bySyscall.count(Sys::Join)
                              ? main_thread.bySyscall.at(Sys::Join)
                              : 0;
    EXPECT_GE(joins + main_thread.wakesReceived, 2u);
    // Workers wake each other through the lock futex.
    std::uint64_t wakes = 0;
    for (const ThreadProfile &t : prof.threads())
        wakes += t.bySyscall.count(Sys::FutexWake)
                     ? t.bySyscall.at(Sys::FutexWake)
                     : 0;
    EXPECT_GT(wakes, 0u);
}

TEST(Profiler, HotPagesRankSharedData)
{
    GuestProgram prog = testprogs::atomicCounter(4, 500);
    RecordOutcome out = recordIt(prog);
    ReplayProfiler prof = profileIt(out.recording);

    std::vector<HotPage> hot = prof.hottestPages(3);
    ASSERT_FALSE(hot.empty());
    // The counter's page (0x1000) must be the hottest, touched by
    // all four workers.
    EXPECT_EQ(hot[0].pageAddr, testprogs::counterAddr & ~Addr{0xfff});
    EXPECT_GE(hot[0].threadsTouching, 4u);
    for (std::size_t i = 1; i < hot.size(); ++i)
        EXPECT_LE(hot[i].accesses, hot[i - 1].accesses);
}

TEST(Profiler, EpochActivityCoversEveryEpoch)
{
    const workloads::Workload *w = workloads::findWorkload("fft");
    workloads::WorkloadBundle b = w->make({.threads = 2, .scale = 1});
    RecordOutcome out = recordIt(b.program, b.config);
    ReplayProfiler prof = profileIt(out.recording);

    ASSERT_EQ(prof.epochAccesses().size(),
              out.recording.epochs.size());
    std::uint64_t sum = 0;
    for (std::uint64_t n : prof.epochAccesses()) {
        EXPECT_GT(n, 0u) << "every epoch does memory work";
        sum += n;
    }
    EXPECT_EQ(sum, prof.totalAccesses());
}

TEST(Profiler, RepeatedReplaysProfileIdentically)
{
    GuestProgram prog = testprogs::barrierPhases(3, 8);
    RecordOutcome out = recordIt(prog);
    ReplayProfiler a = profileIt(out.recording);
    ReplayProfiler b = profileIt(out.recording);
    EXPECT_EQ(a.totalAccesses(), b.totalAccesses());
    EXPECT_EQ(a.totalSyncOps(), b.totalSyncOps());
    ASSERT_EQ(a.threads().size(), b.threads().size());
    for (std::size_t i = 0; i < a.threads().size(); ++i) {
        EXPECT_EQ(a.threads()[i].reads, b.threads()[i].reads);
        EXPECT_EQ(a.threads()[i].writes, b.threads()[i].writes);
        EXPECT_EQ(a.threads()[i].atomics, b.threads()[i].atomics);
        EXPECT_EQ(a.threads()[i].syscalls, b.threads()[i].syscalls);
    }
}

} // namespace
} // namespace dp
