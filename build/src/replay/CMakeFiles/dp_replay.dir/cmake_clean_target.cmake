file(REMOVE_RECURSE
  "libdp_replay.a"
)
