# Empty compiler generated dependencies file for bench_logsize.
# This may be replaced when dependencies are built.
