/**
 * @file
 * E5 — Table: log sizes.
 *
 * Uniparallelism's log is tiny: timeslice segments plus injectable
 * syscall results. This regenerates the paper's log-size table with a
 * per-stream breakdown, normalized per million guest instructions.
 */

#include "bench_common.hh"

using namespace dp;
using namespace dp::bench;

int
main()
{
    banner("E5 (Table: log size)",
           "replay log size by stream, 2 worker threads",
           "[recon] the paper reports small logs (<< MB/s); shape: "
           "schedule+injectables dominate, growing with syscall rate");

    Table t({"benchmark", "epochs", "schedule", "injectable",
             "all syscalls", "replay total", "bytes/Minstr"});

    for (const auto &w : workloads::allWorkloads()) {
        harness::Measurement m = harness::measure(w, defaultOptions(2));
        if (!m.recordOk) {
            std::cerr << "record failed for " << w.name << "\n";
            return 1;
        }
        double minstr = static_cast<double>(m.stats.epInstrs) / 1e6;
        t.addRow({w.name,
                  Table::num(static_cast<std::uint64_t>(m.epochs)),
                  Table::bytes(m.scheduleBytes),
                  Table::bytes(m.injectableBytes),
                  Table::bytes(m.syscallBytes),
                  Table::bytes(m.replayLogBytes),
                  Table::num(static_cast<double>(m.replayLogBytes) /
                                 minstr,
                             1)});
    }
    t.print(std::cout);
    return 0;
}
