/**
 * @file
 * uniplay — command-line record/replay/analysis tool.
 *
 *   uniplay record <workload> [-t N] [-s SCALE] [-e EPOCHLEN]
 *                 [-o FILE] [--journal FILE [--resume]]
 *                 [--trace FILE]
 *   uniplay run <file.s>                 assemble + run guest assembly
 *   uniplay record-asm <file.s> -o FILE  record a guest assembly file
 *   uniplay replay FILE                  deterministic replay + verify
 *   uniplay recover JOURNAL [-o FILE]    recover a journal's committed
 *                                        prefix (optionally as artifact)
 *   uniplay verify FILE                  integrity-check an artifact or
 *                                        journal without replaying
 *   uniplay races FILE                   replay under the race detector
 *   uniplay stats FILE                   metrics snapshot (JSON) of an
 *                                        artifact or journal
 *   uniplay info FILE                    artifact summary
 *   uniplay disasm FILE                  dump the recorded program
 *   uniplay workloads                    list built-in workloads
 *
 * --trace FILE (record, record-asm, replay) writes a Chrome
 * trace-event JSON of the pipeline — load it in Perfetto or
 * chrome://tracing. Tracing never changes the recorded bytes.
 */

#include <algorithm>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/profiler.hh"
#include "analysis/race_detector.hh"
#include "baseline/baselines.hh"
#include "common/table.hh"
#include "core/recorder.hh"
#include "fault/fault.hh"
#include "journal/journal.hh"
#include "replay/recording_io.hh"
#include "replay/replayer.hh"
#include "trace/metrics.hh"
#include "trace/trace.hh"
#include "vm/text_asm.hh"
#include "workloads/registry.hh"

namespace
{

using namespace dp;

int
usage()
{
    std::cerr
        << "usage:\n"
        << "  uniplay record <workload> [-t N] [-s SCALE] "
           "[-e EPOCHLEN] [--fault-plan SPEC --fault-seed N] "
           "[-o FILE] [--journal FILE [--resume]] [--trace FILE]\n"
        << "  uniplay run <file.s>\n"
        << "  uniplay record-asm <file.s> [-t N] [-e EPOCHLEN] "
           "[--fault-plan SPEC --fault-seed N] [-o FILE] "
           "[--journal FILE [--resume]] [--trace FILE]\n"
        << "  uniplay replay FILE [--parallel N [--jobs N]] "
           "[--trace FILE]\n"
        << "  uniplay recover JOURNAL [-o FILE]\n"
        << "  uniplay verify FILE\n"
        << "  uniplay races FILE\n"
        << "  uniplay profile FILE\n"
        << "  uniplay stats FILE [-t N]\n"
        << "  uniplay info FILE\n"
        << "  uniplay disasm FILE\n"
        << "  uniplay workloads\n";
    return 2;
}

std::vector<std::uint8_t>
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        dp_fatal("cannot open ", path);
    std::ostringstream ss;
    ss << in.rdbuf();
    std::string s = ss.str();
    return {s.begin(), s.end()};
}

void
writeFile(const std::string &path, std::span<const std::uint8_t> b)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        dp_fatal("cannot write ", path);
    out.write(reinterpret_cast<const char *>(b.data()),
              static_cast<std::streamsize>(b.size()));
}

struct Args
{
    std::vector<std::string> positional;
    std::uint32_t threads = 2;
    std::uint32_t scale = 4;
    Cycles epochLength = 100'000;
    std::string outFile;
    unsigned parallel = 0;
    /** Host threads for parallel replay; 0 with jobsSet is a usage
     *  error, 0 without means "pick a default". */
    unsigned jobs = 0;
    bool jobsSet = false;
    std::string faultPlan;
    std::uint64_t faultSeed = 0;
    std::string journalFile;
    bool resume = false;
    std::string traceFile;
    /** First unrecognized '-' option (empty = none): flag typos must
     *  be a usage error, not a silently ignored positional. */
    std::string badOption;
};

Args
parseArgs(int argc, char **argv, int first)
{
    Args a;
    for (int i = first; i < argc; ++i) {
        std::string s = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                dp_fatal("missing value after ", s);
            return argv[++i];
        };
        if (s == "-t" || s == "--threads")
            a.threads = static_cast<std::uint32_t>(
                std::stoul(next()));
        else if (s == "-s" || s == "--scale")
            a.scale =
                static_cast<std::uint32_t>(std::stoul(next()));
        else if (s == "-e" || s == "--epoch")
            a.epochLength = std::stoull(next());
        else if (s == "-o" || s == "--out")
            a.outFile = next();
        else if (s == "--parallel")
            a.parallel =
                static_cast<unsigned>(std::stoul(next()));
        else if (s == "-j" || s == "--jobs") {
            a.jobs = static_cast<unsigned>(std::stoul(next()));
            a.jobsSet = true;
        }
        else if (s == "--fault-plan")
            a.faultPlan = next();
        else if (s == "--fault-seed")
            a.faultSeed = std::stoull(next());
        else if (s == "--journal")
            a.journalFile = next();
        else if (s == "--resume")
            a.resume = true;
        else if (s == "--trace")
            a.traceFile = next();
        else if (!s.empty() && s[0] == '-' && s.size() > 1) {
            if (a.badOption.empty())
                a.badOption = s;
        } else
            a.positional.push_back(std::move(s));
    }
    return a;
}

int
doRecord(const GuestProgram &prog, const MachineConfig &cfg,
         const Args &args)
{
    if (args.outFile.empty() && args.journalFile.empty())
        dp_fatal("record needs -o FILE and/or --journal FILE");
    RecorderOptions opts;
    opts.workerCpus = args.threads;
    opts.epochLength = args.epochLength;
    opts.keepCheckpoints = false; // artifacts hold logs only

    std::unique_ptr<TraceRecorder> tracer;
    if (!args.traceFile.empty()) {
        tracer = std::make_unique<TraceRecorder>();
        opts.trace = tracer.get();
    }

    std::unique_ptr<FaultInjector> faults;
    if (!args.faultPlan.empty()) {
        faults = std::make_unique<FaultInjector>(
            FaultPlan::parse(args.faultPlan, args.faultSeed));
        opts.faults = faults.get();
        std::cout << "fault plan: " << faults->plan().describe()
                  << "\n";
    }
    if (OptionError err = validateRecorderOptions(opts);
        err != OptionError::None)
        dp_fatal("invalid recorder options: ", optionErrorName(err));
    const std::uint64_t fingerprint =
        recorderOptionsFingerprint(opts);

    std::unique_ptr<JournalWriter> journal;
    std::vector<EpochRecord> prefix;
    bool resuming = false;
    if (!args.journalFile.empty() && args.resume) {
        std::vector<std::uint8_t> image =
            readFile(args.journalFile);
        RecoveredJournal rj = recoverJournal(image);
        if (!rj.report.headerOk)
            dp_fatal(args.journalFile, ": cannot recover journal: ",
                     journalErrorName(rj.report.tailError), " (",
                     rj.report.detail, ")");
        if (rj.optionsFingerprint != fingerprint)
            dp_fatal(args.journalFile,
                     ": journal was recorded under different "
                     "options; refusing to resume");
        std::cout << "recovered " << rj.report.framesRecovered
                  << " committed epoch(s), discarding "
                  << rj.report.bytesDiscarded
                  << " torn/corrupt byte(s)\n";
        image.resize(rj.report.committedBytes);
        journal = std::make_unique<JournalWriter>(
            std::move(image), rj.report.framesRecovered,
            faults.get());
        prefix = std::move(rj.recording->epochs);
        resuming = true;
    } else if (!args.journalFile.empty()) {
        journal = std::make_unique<JournalWriter>(
            prog, cfg, fingerprint, faults.get());
    }
    if (journal && !journal->streamTo(args.journalFile))
        dp_fatal("cannot write journal file ", args.journalFile);
    if (journal && tracer)
        journal->setTrace(tracer.get());
    if (journal)
        // Serialize + checksum + stream on a committer thread; the
        // record pipeline only pays the epoch hand-off. Byte-identical
        // to synchronous appends (frames commit in hand-off order).
        journal->enableAsyncCommit();

    RecordObserver obs;
    obs.onRecovery = [](RecoveryKind kind, EpochId index) {
        std::cout << "  recovery: " << recoveryKindName(kind)
                  << " at epoch " << index << "\n";
    };
    if (journal)
        obs.onEpochCommitted = [&](const EpochRecord &e,
                                   EpochId index) {
            journal->appendEpoch(e, index);
        };

    UniparallelRecorder rec(prog, cfg, opts);
    const RecordObserver *obsp =
        (faults || journal) ? &obs : nullptr;
    RecordOutcome out = resuming
                            ? rec.resume(std::move(prefix), obsp)
                            : rec.record(obsp);
    if (faults) {
        const FaultStats fs = faults->stats();
        std::cout << "faults fired: " << fs.totalFired() << "\n";
        for (std::size_t i = 0; i < numFaultSites; ++i)
            if (fs.fired[i] > 0)
                std::cout
                    << "  " << faultSiteName(
                                   static_cast<FaultSite>(i))
                    << ": " << fs.fired[i] << "/" << fs.queried[i]
                    << " decisions\n";
        const RecorderStats &st = out.recording.stats;
        std::cout << "recovery: " << st.rollbacks << " rollbacks, "
                  << st.tornCheckpoints << " torn ckpts, "
                  << st.epochRetries << " epoch retries, "
                  << st.seqFallbacks << " seq fallbacks\n";
    }
    if (journal)
        std::cout << "journal: " << journal->epochsWritten()
                  << " epoch frame(s), " << journal->bytes().size()
                  << " bytes to " << args.journalFile
                  << (journal->alive()
                          ? ""
                          : " (writer died; continue with --resume)")
                  << "\n";
    if (tracer) {
        if (tracer->writeChromeJson(args.traceFile))
            std::cout << "trace: " << tracer->size()
                      << " event(s) to " << args.traceFile << "\n";
        else
            std::cerr << "cannot write trace file "
                      << args.traceFile << "\n";
    }
    if (out.prefixVerifyFailed) {
        std::cerr << "recovered journal prefix failed replay "
                     "verification; not resuming\n";
        return 1;
    }
    if (!out.ok) {
        std::cerr << "recording failed: "
                  << stopReasonName(out.tpReason) << "\n";
        return 1;
    }
    std::cout << "recorded " << out.recording.epochs.size()
              << " epochs, " << out.recording.stats.rollbacks
              << " rollbacks, exit code " << out.mainExitCode
              << "\n";
    if (!args.outFile.empty()) {
        std::vector<std::uint8_t> bytes =
            serializeRecording(out.recording);
        writeFile(args.outFile, bytes);
        std::cout << "wrote " << bytes.size() << " bytes to "
                  << args.outFile << "\n";
    }
    return 0;
}

std::string
readTextFile(const std::string &path)
{
    std::vector<std::uint8_t> b = readFile(path);
    return {b.begin(), b.end()};
}

/** Load an artifact, exiting with a structured diagnostic (not a
 *  crash) when it is corrupt. */
LoadedRecording
loadArtifact(const std::string &path)
{
    RecordingLoadResult r = loadRecording(readFile(path));
    if (!r.ok())
        dp_fatal(path, ": cannot load recording: ",
                 loadErrorName(r.error), " at byte ", r.errorOffset,
                 " (", r.detail, ")");
    return {std::move(r.recording)};
}

int
cmdRecord(const Args &args)
{
    if (args.positional.empty())
        return usage();
    const workloads::Workload *w =
        workloads::findWorkload(args.positional[0]);
    if (!w)
        dp_fatal("unknown workload '", args.positional[0],
                 "' (try: uniplay workloads)");
    workloads::WorkloadBundle b =
        w->make({.threads = args.threads, .scale = args.scale});
    return doRecord(b.program, b.config, args);
}

int
cmdRun(const Args &args)
{
    if (args.positional.empty())
        return usage();
    GuestProgram prog = assembleText(
        readTextFile(args.positional[0]), args.positional[0]);
    NativeResult r = runNativeBaseline(prog, {}, args.threads, 1);
    std::cout << "stop: " << stopReasonName(r.reason)
              << ", exit code " << r.exitCode << ", "
              << r.instrs << " instrs, " << r.cycles
              << " virtual cycles\n";
    return r.reason == StopReason::AllExited ? 0 : 1;
}

int
cmdRecordAsm(const Args &args)
{
    if (args.positional.empty())
        return usage();
    GuestProgram prog = assembleText(
        readTextFile(args.positional[0]), args.positional[0]);
    return doRecord(prog, {}, args);
}

int
cmdReplay(const Args &args)
{
    if (args.positional.empty())
        return usage();
    LoadedRecording loaded = loadArtifact(args.positional[0]);
    Replayer rep(*loaded.recording);
    std::unique_ptr<TraceRecorder> tracer;
    if (!args.traceFile.empty()) {
        tracer = std::make_unique<TraceRecorder>();
        rep.setTrace(tracer.get());
    }
    unsigned par = args.parallel;
    if (args.jobsSet && args.jobs == 0) {
        std::cerr << "--jobs needs at least one host thread\n";
        return usage();
    }
    if (args.jobsSet && par == 0) {
        std::cerr << "--jobs needs --parallel N (it sizes the host "
                     "pool parallel replay fans out over)\n";
        return usage();
    }
    if (par > 0 && !loaded.recording->hasCheckpoints()) {
        // Artifacts hold logs only; parallel replay needs the
        // retained epoch checkpoints (in-process recordings).
        std::cerr << "note: no checkpoints in artifact; "
                     "replaying sequentially\n";
        par = 0;
    }
    // Host threads backing the fan-out: default to the machine's
    // concurrency, clamped to the modeled track count — more host
    // threads than tracks would change nothing but idle workers.
    unsigned jobs = args.jobs;
    if (!args.jobsSet)
        jobs = std::min(
            std::max(1u, std::thread::hardware_concurrency()), par);
    ReplayResult r = par > 0 ? rep.replayParallel(par, jobs)
                             : rep.replaySequential();
    if (tracer) {
        if (tracer->writeChromeJson(args.traceFile))
            std::cout << "trace: " << tracer->size()
                      << " event(s) to " << args.traceFile << "\n";
        else
            std::cerr << "cannot write trace file "
                      << args.traceFile << "\n";
    }
    std::cout << (r.ok ? "verified" : "FAILED") << ": "
              << r.epochsVerified << "/"
              << loaded.recording->epochs.size() << " epochs, "
              << r.instrs << " instrs replayed, "
              << r.stdoutBytes.size() << " output bytes\n";
    if (!r.ok)
        std::cout << "first failed epoch: " << r.firstFailedEpoch
                  << "\n";
    return r.ok ? 0 : 1;
}

int
cmdRecover(const Args &args)
{
    if (args.positional.empty())
        return usage();
    RecoveredJournal rj =
        recoverJournal(readFile(args.positional[0]));
    const RecoveryReport &rep = rj.report;
    std::cout << "header:    " << (rep.headerOk ? "ok" : "invalid")
              << "\n"
              << "frames:    " << rep.framesRecovered
              << " committed epoch(s)\n"
              << "committed: " << rep.committedBytes << " bytes\n"
              << "discarded: " << rep.bytesDiscarded << " bytes\n"
              << "tail:      " << journalErrorName(rep.tailError);
    if (rep.tailError != JournalError::None)
        std::cout << " at byte " << rep.errorOffset << " ("
                  << rep.detail << ")";
    std::cout << "\n";
    if (!rep.headerOk) {
        std::cerr << "nothing recoverable: " << rep.detail << "\n";
        return 1;
    }
    if (!args.outFile.empty()) {
        std::vector<std::uint8_t> bytes =
            serializeRecording(*rj.recording);
        writeFile(args.outFile, bytes);
        std::cout << "wrote " << bytes.size() << " bytes to "
                  << args.outFile << "\n";
    }
    return 0;
}

int
cmdVerify(const Args &args)
{
    if (args.positional.empty())
        return usage();
    VerifyResult v = verifyImage(readFile(args.positional[0]));
    std::cout << args.positional[0] << ": " << v.detail << "\n";
    return v.ok ? 0 : 1;
}

int
cmdRaces(const Args &args)
{
    if (args.positional.empty())
        return usage();
    LoadedRecording loaded = loadArtifact(args.positional[0]);
    RaceDetector det;
    ReplayObserver obs = det.observer();
    Replayer rep(*loaded.recording);
    ReplayResult r = rep.replaySequential(&obs);
    if (!r.ok) {
        std::cerr << "replay failed; cannot analyse\n";
        return 1;
    }
    std::cout << det.accessesChecked() << " accesses, "
              << det.syncOpsSeen() << " sync ops, "
              << det.races().size() << " racy words\n";
    for (const RaceReport &race : det.races())
        std::cout << "  0x" << std::hex << race.wordAddr << std::dec
                  << "  threads " << race.first << "/" << race.second
                  << "  epoch " << race.epoch << "\n";
    return 0;
}

int
cmdProfile(const Args &args)
{
    if (args.positional.empty())
        return usage();
    LoadedRecording loaded = loadArtifact(args.positional[0]);
    ReplayProfiler prof;
    ReplayObserver obs = prof.observer();
    Replayer rep(*loaded.recording);
    if (!rep.replaySequential(&obs).ok) {
        std::cerr << "replay failed; cannot profile\n";
        return 1;
    }
    Table t({"thread", "reads", "writes", "atomics", "syscalls",
             "wakes rx", "wakes tx"});
    for (std::size_t i = 0; i < prof.threads().size(); ++i) {
        const ThreadProfile &p = prof.threads()[i];
        t.addRow({std::to_string(i), Table::num(p.reads),
                  Table::num(p.writes), Table::num(p.atomics),
                  Table::num(p.syscalls),
                  Table::num(p.wakesReceived),
                  Table::num(p.wakesGiven)});
    }
    t.print(std::cout);
    std::cout << "\nhottest pages:\n";
    for (const HotPage &hp : prof.hottestPages(5))
        std::cout << "  0x" << std::hex << hp.pageAddr << std::dec
                  << "  " << hp.accesses << " accesses, "
                  << hp.threadsTouching << " threads\n";
    return 0;
}

int
cmdStats(const Args &args)
{
    if (args.positional.empty())
        return usage();
    std::vector<std::uint8_t> bytes = readFile(args.positional[0]);
    VerifyResult v = verifyImage(bytes);
    std::unique_ptr<Recording> rec;
    if (v.kind == UniplayFileKind::Artifact) {
        LoadedRecording loaded = loadArtifact(args.positional[0]);
        rec = std::move(loaded.recording);
    } else if (v.kind == UniplayFileKind::Journal) {
        RecoveredJournal rj = recoverJournal(bytes);
        if (!rj.report.headerOk)
            dp_fatal(args.positional[0],
                     ": cannot recover journal: ",
                     journalErrorName(rj.report.tailError));
        rec = std::move(rj.recording);
    } else {
        dp_fatal(args.positional[0],
                 ": not a uniplay artifact or journal");
    }
    MetricsOptions mopts;
    mopts.workerCpus = args.threads;
    mopts.totalCpus = 2 * args.threads;
    std::cout << metricsSnapshot(*rec, mopts).dump() << "\n";
    return 0;
}

int
cmdInfo(const Args &args)
{
    if (args.positional.empty())
        return usage();
    LoadedRecording loaded = loadArtifact(args.positional[0]);
    const Recording &rec = *loaded.recording;
    std::cout << "program: " << rec.program().name << " ("
              << rec.program().code.size() << " instrs)\n"
              << "epochs:  " << rec.epochs.size() << "\n"
              << "rollbacks: " << rec.stats.rollbacks << "\n"
              << "replay log: " << rec.replayLogBytes()
              << " bytes (schedule + injectables)\n"
              << "total log:  " << rec.totalLogBytes() << " bytes\n";
    Table t({"epoch", "segments", "syscalls", "log bytes",
             "diverged"});
    for (std::size_t i = 0; i < rec.epochs.size() && i < 20; ++i) {
        const EpochRecord &e = rec.epochs[i];
        t.addRow({std::to_string(i),
                  Table::num(std::uint64_t{e.schedule.size()}),
                  Table::num(std::uint64_t{e.syscalls.size()}),
                  Table::num(std::uint64_t{e.totalLogBytes()}),
                  e.diverged ? "yes" : "no"});
    }
    t.print(std::cout);
    if (rec.epochs.size() > 20)
        std::cout << "... (" << rec.epochs.size() - 20
                  << " more epochs)\n";
    return 0;
}

int
cmdDisasm(const Args &args)
{
    if (args.positional.empty())
        return usage();
    LoadedRecording loaded = loadArtifact(args.positional[0]);
    std::cout << disassemble(loaded.recording->program());
    return 0;
}

int
cmdWorkloads()
{
    Table t({"name", "paper equivalent", "category", "sharing"});
    for (const auto &w : workloads::allWorkloads())
        t.addRow({w.name, w.paperEquiv, w.category, w.sharing});
    t.print(std::cout);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    std::string cmd = argv[1];
    Args args = parseArgs(argc, argv, 2);
    if (!args.badOption.empty()) {
        std::cerr << "unknown option: " << args.badOption << "\n";
        return usage();
    }
    if (!args.traceFile.empty() && cmd != "record" &&
        cmd != "record-asm" && cmd != "replay") {
        std::cerr << "--trace is not supported by '" << cmd
                  << "' (record, record-asm and replay only)\n";
        return usage();
    }
    if (args.jobsSet && cmd != "replay") {
        std::cerr << "--jobs is not supported by '" << cmd
                  << "' (replay only)\n";
        return usage();
    }
    if (cmd == "record")
        return cmdRecord(args);
    if (cmd == "run")
        return cmdRun(args);
    if (cmd == "record-asm")
        return cmdRecordAsm(args);
    if (cmd == "replay")
        return cmdReplay(args);
    if (cmd == "recover")
        return cmdRecover(args);
    if (cmd == "verify")
        return cmdVerify(args);
    if (cmd == "races")
        return cmdRaces(args);
    if (cmd == "profile")
        return cmdProfile(args);
    if (cmd == "stats")
        return cmdStats(args);
    if (cmd == "info")
        return cmdInfo(args);
    if (cmd == "disasm")
        return cmdDisasm(args);
    if (cmd == "workloads")
        return cmdWorkloads();
    return usage();
}
