# Empty compiler generated dependencies file for replay_analysis.
# This may be replaced when dependencies are built.
