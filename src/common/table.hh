/**
 * @file
 * ASCII table printer for benchmark output.
 *
 * Every bench binary prints its results as an aligned table so the
 * regenerated "paper tables" are readable directly from stdout and easy
 * to diff between runs. Cells are strings; numeric helpers format with
 * fixed precision.
 */

#ifndef DP_COMMON_TABLE_HH
#define DP_COMMON_TABLE_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace dp
{

/** Row/column text table with aligned column output. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Append a full row; must match the header arity. */
    void addRow(std::vector<std::string> cells);

    /** Render with column alignment and a header rule. */
    void print(std::ostream &os) const;

    /** Render as comma-separated values (no alignment padding). */
    void printCsv(std::ostream &os) const;

    std::size_t rows() const { return rows_.size(); }

    /** Format a double with @p digits decimal places. */
    static std::string num(double v, int digits = 2);
    /** Format an integer with thousands separators. */
    static std::string num(std::uint64_t v);
    /** Format a ratio as a percentage string, e.g. "15.3%". */
    static std::string pct(double ratio, int digits = 1);
    /** Format a byte count with a binary-unit suffix. */
    static std::string bytes(std::uint64_t n);

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace dp

#endif // DP_COMMON_TABLE_HH
