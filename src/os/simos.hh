/**
 * @file
 * SimOS: the simulated kernel's syscall engine.
 *
 * dispatch() executes the system call a thread has trapped into,
 * including all side effects (file writes, futex queueing, thread
 * creation, waking joiners). It is a pure function of Machine state
 * plus — for the two genuinely nondeterministic calls, GetTime and
 * NetRecv — the virtual clock. The recorder captures those results in
 * the thread-parallel run and injects them into the epoch-parallel run
 * and into replay via the @p inject parameter, which is exactly the
 * paper's "log and inject system call results" mechanism.
 */

#ifndef DP_OS_SIMOS_HH
#define DP_OS_SIMOS_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hh"
#include "fault/fault.hh"
#include "os/machine.hh"
#include "timing/cost_model.hh"
#include "vm/abi.hh"

namespace dp
{

/** The simulated kernel; stateless apart from the cost model. */
class SimOS
{
  public:
    explicit SimOS(CostModel cm = {}) : costs_(cm) {}

    /**
     * Arm deterministic fault injection (see fault/fault.hh): the
     * NetRecvFail/NetRecvShort/GetTimeFail/FileShortRead sites fire in
     * this kernel's dispatches. Only the *result-generating* kernel of
     * a pipeline is ever armed (the recorder's thread-parallel run);
     * epoch-parallel runs and replay reproduce the faulted results
     * through the ordinary inject path and are never armed.
     */
    void armFaults(FaultInjector *faults) { faults_ = faults; }

    /** Everything an engine needs to know about a completed call. */
    struct Outcome
    {
        Sys sys = Sys::Exit;
        /** Caller is now Blocked; its pc still points at the syscall. */
        bool blocked = false;
        /** Result depends on the virtual clock: log in the
         *  thread-parallel run; inject everywhere else. */
        bool injectable = false;
        /** Result value delivered to r0 (invalid while blocked). */
        std::uint64_t value = 0;
        /** Extra virtual cycles beyond one instruction. */
        Cycles cost = 0;
        /** Threads made runnable by this call (woken or spawned). */
        std::vector<ThreadId> woken;
    };

    /**
     * Execute the syscall thread @p tid has trapped into (its pc points
     * at the Syscall instruction; the number is in r0, args r1..r5).
     *
     * Unless the call blocks, this completes it: result in r0, pc and
     * retired advanced. @p inject overrides the computed result of an
     * injectable call (it must only be supplied for injectable calls —
     * the engine learns which from a prior recording's log stream).
     */
    Outcome dispatch(Machine &m, ThreadId tid,
                     std::optional<std::uint64_t> inject = {});

    /**
     * Deterministic network stream content: byte at absolute stream
     * offset @p off of connection @p conn.
     */
    static std::uint8_t netByte(const MachineConfig &cfg,
                                std::uint64_t conn, std::uint64_t off);

    const CostModel &costs() const { return costs_; }

  private:
    Outcome doExit(Machine &m, ThreadId tid, std::uint64_t code);
    std::uint64_t doWrite(Machine &m, std::uint64_t fd, Addr buf,
                          std::uint64_t len);
    std::uint64_t doRead(Machine &m, std::uint64_t fd, Addr buf,
                         std::uint64_t len);
    std::uint64_t doOpen(Machine &m, Addr path, std::uint64_t flags);
    std::uint64_t doClose(Machine &m, std::uint64_t fd);
    std::uint64_t doNetRecv(Machine &m, std::uint64_t conn, Addr buf,
                            std::uint64_t max_len,
                            std::optional<std::uint64_t> inject);
    std::uint64_t doNetSend(Machine &m, std::uint64_t conn,
                            std::uint64_t len);

    /** True if the armed injector (if any) fires @p site now. */
    bool faultFires(FaultSite site) const;

    CostModel costs_;
    FaultInjector *faults_ = nullptr;
};

} // namespace dp

#endif // DP_OS_SIMOS_HH
