#include "workloads/wl_common.hh"

#include <span>

#include "common/hash.hh"
#include "common/logging.hh"

namespace dp::workloads
{

using enum Reg;
namespace lib = dp::asmlib;

void
emitSpawnLoop(Assembler &a, std::uint64_t nthreads, Label worker)
{
    a.li(r10, 0);
    a.li(r11, static_cast<std::int64_t>(nthreads));
    a.lia(r12, wlTidArray);

    Label spawn_loop = a.hereLabel();
    Label spawned = a.newLabel();
    a.bgeu(r10, r11, spawned);
    lib::spawnThread(a, worker, r10);
    a.shli(r3, r10, 3);
    a.add(r3, r12, r3);
    a.st64(r3, 0, r0);
    a.addi(r10, r10, 1);
    a.jmp(spawn_loop);
    a.bind(spawned);
}

void
emitJoinLoop(Assembler &a, std::uint64_t nthreads)
{
    a.li(r10, 0);
    a.li(r11, static_cast<std::int64_t>(nthreads));
    a.lia(r12, wlTidArray);
    Label join_loop = a.hereLabel();
    Label joined = a.newLabel();
    a.bgeu(r10, r11, joined);
    a.shli(r3, r10, 3);
    a.add(r3, r12, r3);
    a.ld64(r4, r3, 0);
    lib::joinThread(a, r4);
    a.addi(r10, r10, 1);
    a.jmp(join_loop);
    a.bind(joined);
}

void
emitSpawnJoin(Assembler &a, std::uint64_t nthreads, Label worker)
{
    emitSpawnLoop(a, nthreads, worker);
    emitJoinLoop(a, nthreads);
}

void
emitWriteGlobalAndExit(Assembler &a, std::int64_t result_off)
{
    a.lia(r5, wlGlobals + static_cast<Addr>(result_off));
    a.li(r6, 8);
    lib::writeFd(a, fdStdout, r5, r6);
    a.ld64(r1, r5, 0);
    a.sys(Sys::Exit);
}

void
emitRngNext(Assembler &a, Reg state, Reg out)
{
    dp_assert(state != out, "rng state and output must differ");
    // LCG advance + xorshift mix.
    a.muli(state, state, 6364136223846793005ll);
    a.addi(state, state, 1442695040888963407ll);
    a.shri(out, state, 29);
    a.xor_(out, out, state);
    a.muli(out, out, 0x9e3779b97f4a7c15ll);
}

void
emitThreadBase(Assembler &a, Reg idx, Reg out)
{
    a.muli(out, idx, static_cast<std::int64_t>(wlPerThreadStride));
    a.addi(out, out, static_cast<std::int64_t>(wlPerThread));
}

void
emitRleBlock(Assembler &a, std::uint64_t block_bytes)
{
    a.li(r12, 0);  // i
    a.li(r13, -1); // prev byte (sentinel)
    a.li(r14, 0);  // run length
    a.li(r15, 0);  // out length

    Label rle_loop = a.hereLabel();
    Label rle_flush = a.newLabel();
    Label rle_emit = a.newLabel();
    Label rle_new = a.newLabel();
    Label rle_next = a.newLabel();
    a.li(r5, static_cast<std::int64_t>(block_bytes));
    a.bgeu(r12, r5, rle_flush);
    a.add(r5, r10, r12);
    a.ld8(r4, r5, 0); // current byte
    a.beqz(r14, rle_new);
    a.bne(r4, r13, rle_emit);
    a.li(r5, 255);
    a.bgeu(r14, r5, rle_emit);
    a.addi(r14, r14, 1);
    a.jmp(rle_next);
    a.bind(rle_emit);
    a.add(r5, r11, r15);
    a.st8(r5, 0, r13);
    a.st8(r5, 1, r14);
    a.addi(r15, r15, 2);
    a.bind(rle_new);
    a.mov(r13, r4);
    a.li(r14, 1);
    a.bind(rle_next);
    a.addi(r12, r12, 1);
    a.jmp(rle_loop);

    a.bind(rle_flush);
    Label rle_done = a.newLabel();
    a.beqz(r14, rle_done);
    a.add(r5, r11, r15);
    a.st8(r5, 0, r13);
    a.st8(r5, 1, r14);
    a.addi(r15, r15, 2);
    a.bind(rle_done);
}

std::uint64_t
rleLength(std::span<const std::uint8_t> bytes, std::size_t block)
{
    std::uint64_t total = 0;
    for (std::size_t base = 0; base < bytes.size(); base += block) {
        std::size_t end = std::min(bytes.size(), base + block);
        std::uint64_t run = 0;
        int prev = -1;
        for (std::size_t i = base; i < end; ++i) {
            if (run != 0 && bytes[i] == prev && run < 255) {
                ++run;
            } else {
                if (run != 0)
                    total += 2;
                prev = bytes[i];
                run = 1;
            }
        }
        if (run != 0)
            total += 2;
    }
    return total;
}

std::vector<std::uint8_t>
makeInputBytes(std::size_t n, std::uint64_t seed, bool compressible)
{
    std::vector<std::uint8_t> out(n);
    Rng rng(seed);
    std::size_t i = 0;
    while (i < n) {
        if (compressible && rng.chance(3, 4)) {
            // A run of a repeated byte (what RLE compression eats).
            auto len = static_cast<std::size_t>(rng.range(4, 60));
            auto b = static_cast<std::uint8_t>(rng.below(16));
            for (std::size_t k = 0; k < len && i < n; ++k)
                out[i++] = b;
        } else {
            out[i++] = static_cast<std::uint8_t>(rng.below(256));
        }
    }
    return out;
}

std::vector<std::uint64_t>
makeInputWords(std::size_t n, std::uint64_t seed)
{
    std::vector<std::uint64_t> out(n);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = mix64(seed + i);
    return out;
}

} // namespace dp::workloads
