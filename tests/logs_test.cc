/**
 * @file
 * Unit tests for the log containers and their binary encodings,
 * including randomized round-trip properties.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "log/logs.hh"

namespace dp
{
namespace
{

TEST(ScheduleLog, EncodeDecodeRoundTrip)
{
    ScheduleLog log;
    log.append({0, 100, false});
    log.append({3, 0, true}); // zero-instr blocked attempt is legal
    log.append({7, ~std::uint64_t{0} >> 8, false});
    ScheduleLog back = ScheduleLog::decode(log.encode());
    EXPECT_EQ(log, back);
}

TEST(ScheduleLog, EmptyLogRoundTrips)
{
    ScheduleLog log;
    EXPECT_EQ(ScheduleLog::decode(log.encode()), log);
    EXPECT_EQ(log.sizeBytes(), 1u); // just the count
}

TEST(ScheduleLog, CompactEncoding)
{
    // Typical segments (small tid, quantum-sized counts) should cost
    // only a few bytes each.
    ScheduleLog log;
    for (int i = 0; i < 1000; ++i)
        log.append({static_cast<ThreadId>(i % 4), 50'000, false});
    EXPECT_LT(log.sizeBytes(), 1000u * 5);
}

TEST(SyncOrderLog, RoundTripPreservesKeys)
{
    SyncOrderLog log;
    log.append(1, SyncKind::Atomic, 0x1000);
    log.append(2, SyncKind::Syscall, globalSyncKey);
    log.append(3, SyncKind::Syscall, 0x2008); // futex key
    SyncOrderLog back = SyncOrderLog::decode(log.encode());
    EXPECT_EQ(log, back);
    EXPECT_EQ(back.events()[1].key, globalSyncKey);
    EXPECT_EQ(back.events()[2].key, 0x2008u);
}

TEST(SyscallLog, RoundTripAndInjectableAccounting)
{
    SyscallLog log;
    log.append({0, Sys::Write, 8, false});
    log.append({1, Sys::GetTime, 123456, true});
    log.append({2, Sys::NetRecv, 256, true});
    log.append({0, Sys::Seek, ~std::uint64_t{0}, false});
    SyscallLog back = SyscallLog::decode(log.encode());
    EXPECT_EQ(log, back);
    EXPECT_GT(log.sizeBytes(), log.injectableSizeBytes());
    EXPECT_GT(log.injectableSizeBytes(), 0u);
}

TEST(SyscallLog, AllSyscallNumbersSurviveTheCodec)
{
    // The packed encoding gives Sys 5 bits; every defined value must
    // round-trip (guards against enum growth breaking the format).
    static_assert(static_cast<unsigned>(Sys::NumSyscalls) <= 32,
                  "syscall ids no longer fit the log encoding");
    SyscallLog log;
    for (unsigned s = 0;
         s < static_cast<unsigned>(Sys::NumSyscalls); ++s)
        log.append({5, static_cast<Sys>(s), s * 7, false});
    SyscallLog back = SyscallLog::decode(log.encode());
    EXPECT_EQ(log, back);
}

TEST(Logs, RandomizedRoundTrips)
{
    Rng rng(2024);
    for (int round = 0; round < 50; ++round) {
        ScheduleLog sched;
        SyncOrderLog sync;
        SyscallLog sys;
        std::uint64_t n = rng.range(0, 200);
        for (std::uint64_t i = 0; i < n; ++i) {
            sched.append({static_cast<ThreadId>(rng.below(64)),
                          rng.next() >> rng.below(60),
                          rng.chance(1, 5)});
            sync.append(static_cast<ThreadId>(rng.below(64)),
                        rng.chance(1, 2) ? SyncKind::Atomic
                                         : SyncKind::Syscall,
                        rng.chance(1, 4) ? globalSyncKey
                                         : rng.next() >> 20);
            sys.append({static_cast<ThreadId>(rng.below(64)),
                        static_cast<Sys>(rng.below(
                            static_cast<std::uint64_t>(
                                Sys::NumSyscalls))),
                        rng.next(), rng.chance(1, 3)});
        }
        EXPECT_EQ(ScheduleLog::decode(sched.encode()), sched);
        EXPECT_EQ(SyncOrderLog::decode(sync.encode()), sync);
        EXPECT_EQ(SyscallLog::decode(sys.encode()), sys);
    }
}

} // namespace
} // namespace dp
