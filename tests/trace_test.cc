/**
 * @file
 * Contract tests for the pipeline tracing layer (src/trace).
 *
 * The headline contract is byte-invisibility: recording with a
 * TraceRecorder attached must produce byte-identical artifacts and
 * journal images to recording without one, in every pipeline mode and
 * under fault plans. On top of that the trace itself must be
 * structurally sound: valid Chrome trace-event JSON, properly nested
 * spans per track, concurrency bounded by the pipeline window, and
 * recovery instants that mirror the RecorderStats counters exactly.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/crc32.hh"
#include "core/recorder.hh"
#include "fault/fault.hh"
#include "journal/journal.hh"
#include "replay/recording_io.hh"
#include "replay/replayer.hh"
#include "ship/ship.hh"
#include "testprogs.hh"
#include "trace/json.hh"
#include "trace/metrics.hh"
#include "trace/trace.hh"

namespace dp
{
namespace
{

struct TraceRun
{
    RecordOutcome out;
    std::vector<std::uint8_t> artifact;
    std::vector<std::uint8_t> journal;
};

struct RunConfig
{
    unsigned hostWorkers = 0;
    unsigned maxInFlight = 4;
    const char *plan = nullptr; ///< fault plan spec (nullptr = none)
    std::uint64_t faultSeed = 0;
    bool fileGuest = false; ///< fileChunkReader instead of counter
};

/** Record one deterministic session, journal attached, optionally
 *  traced. Everything except @p tr is pinned so runs are comparable
 *  byte-for-byte. */
TraceRun
recordOnce(const RunConfig &rc, TraceRecorder *tr)
{
    GuestProgram prog = rc.fileGuest ? testprogs::fileChunkReader()
                                     : testprogs::lockedCounter(3, 300);
    MachineConfig cfg;
    if (rc.fileGuest) {
        std::vector<std::uint8_t> content(1'500);
        for (std::size_t i = 0; i < content.size(); ++i)
            content[i] = static_cast<std::uint8_t>(i * 37 + 11);
        cfg.initialFiles.emplace_back(testprogs::chunkFilePath,
                                      std::move(content));
    }

    RecorderOptions opts;
    opts.workerCpus = 2;
    opts.epochLength = 6'000;
    opts.seed = 7;
    opts.keepCheckpoints = true;
    opts.hostWorkers = rc.hostWorkers;
    opts.maxInFlight = rc.maxInFlight;
    opts.trace = tr;

    std::unique_ptr<FaultInjector> inj;
    if (rc.plan) {
        inj = std::make_unique<FaultInjector>(
            FaultPlan::parse(rc.plan, rc.faultSeed));
        opts.faults = inj.get();
    }

    JournalWriter journal(prog, cfg, recorderOptionsFingerprint(opts),
                          inj.get());
    journal.setTrace(tr);
    RecordObserver obs;
    obs.onEpochCommitted = [&](const EpochRecord &e, EpochId index) {
        journal.appendEpoch(e, index);
    };

    UniparallelRecorder rec(prog, cfg, opts);
    TraceRun r{rec.record(&obs), {}, {}};
    if (r.out.ok)
        r.artifact = serializeRecording(r.out.recording);
    r.journal = journal.bytes();
    return r;
}

/** A span interval on one (stage, tid) track. */
struct Interval
{
    std::uint64_t begin;
    std::uint64_t end;
    const char *name;
};

std::vector<Interval>
spansOnTrack(const std::vector<TraceEvent> &events, TraceStage stage,
             std::uint32_t tid)
{
    std::vector<Interval> out;
    for (const TraceEvent &e : events)
        if (e.phase == TracePhase::Span && e.stage == stage &&
            e.tid == tid)
            out.push_back({e.tsNs, e.tsNs + e.durNs, e.name});
    return out;
}

std::uint64_t
countInstants(const std::vector<TraceEvent> &events, const char *name)
{
    std::uint64_t n = 0;
    for (const TraceEvent &e : events)
        n += e.phase == TracePhase::Instant &&
             std::string_view(e.name) == name;
    return n;
}

// ---- byte-invisibility ----

class ByteIdentity : public ::testing::TestWithParam<unsigned>
{};

TEST_P(ByteIdentity, TracingChangesNothingObservable)
{
    RunConfig rc;
    rc.hostWorkers = GetParam();

    TraceRun off = recordOnce(rc, nullptr);
    TraceRecorder tr;
    TraceRun on = recordOnce(rc, &tr);

    ASSERT_TRUE(off.out.ok);
    ASSERT_TRUE(on.out.ok);
    EXPECT_EQ(off.artifact, on.artifact);
    EXPECT_EQ(off.journal, on.journal);
    EXPECT_EQ(off.out.mainExitCode, on.out.mainExitCode);
    EXPECT_EQ(off.out.recording.finalStateHash,
              on.out.recording.finalStateHash);

    // The traced run actually traced something, and the document is
    // valid JSON with the Chrome trace-event shape.
    EXPECT_GT(tr.size(), 0u);
    std::string err;
    std::optional<JsonValue> doc =
        JsonValue::parse(tr.toChromeJson(), &err);
    ASSERT_TRUE(doc.has_value()) << err;
    ASSERT_TRUE(doc->isObject());
    const JsonValue *evs = doc->find("traceEvents");
    ASSERT_NE(evs, nullptr);
    ASSERT_TRUE(evs->isArray());
    EXPECT_GT(evs->items().size(), 0u);
    for (const JsonValue &e : evs->items()) {
        const JsonValue *ph = e.find("ph");
        const JsonValue *pid = e.find("pid");
        ASSERT_NE(ph, nullptr);
        ASSERT_NE(pid, nullptr);
        const double p = pid->asNumber();
        EXPECT_GE(p, 0.0);
        EXPECT_LE(p, 5.0); // TraceStage::Exec is the highest stage
    }
}

TEST_P(ByteIdentity, TracingChangesNothingUnderFaultPlan)
{
    RunConfig rc;
    rc.hostWorkers = GetParam();
    rc.plan = "worker-death=1:2,torn-ckpt=1:2";
    rc.faultSeed = 42;

    TraceRun off = recordOnce(rc, nullptr);
    TraceRecorder tr;
    TraceRun on = recordOnce(rc, &tr);

    ASSERT_TRUE(off.out.ok);
    ASSERT_TRUE(on.out.ok);
    EXPECT_EQ(off.artifact, on.artifact);
    EXPECT_EQ(off.journal, on.journal);
    EXPECT_GT(tr.size(), 0u);
    // The injected recoveries surfaced on the trace, too.
    std::vector<TraceEvent> events = tr.events();
    EXPECT_GT(countInstants(events, "epoch-retry") +
                  countInstants(events, "ckpt-recapture"),
              0u);
}

// The fast-path identity matrix: every artifact the pipeline emits —
// recording bytes, journal image, replay results, shipped wire
// batches — must be byte-identical whichever CRC-32C backend computed
// it, at every host-parallelism level. (The dispatch axis of the
// matrix, threaded vs switch, is cross-build: the ci-speed CI preset
// runs this same suite with both fast paths forced off.)
TEST_P(ByteIdentity, CrcBackendChangesNoArtifactBytes)
{
    RunConfig rc;
    rc.hostWorkers = GetParam();

    TraceRun hw = recordOnce(rc, nullptr); // hardware when available
    crc32cForceScalar(true);
    TraceRun sw = recordOnce(rc, nullptr);
    crc32cForceScalar(false);

    ASSERT_TRUE(hw.out.ok);
    ASSERT_TRUE(sw.out.ok);
    EXPECT_EQ(hw.artifact, sw.artifact);
    EXPECT_EQ(hw.journal, sw.journal);
    EXPECT_EQ(hw.out.recording.finalStateHash,
              sw.out.recording.finalStateHash);

    // Replaying a hardware-CRC'd recording on a scalar-only machine
    // (the cross-host story) reproduces the same execution.
    crc32cForceScalar(true);
    ReplayResult r = Replayer(hw.out.recording).replaySequential();
    crc32cForceScalar(false);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.epochsVerified, hw.out.recording.epochs.size());

    // Shipped batches frame their payload with the same CRC family;
    // the wire bytes must not depend on the backend either.
    ShipBatch b;
    b.seq = 1;
    b.stream = 0;
    b.streamCount = 1;
    b.offset = 0;
    b.bytes = hw.journal;
    std::vector<std::uint8_t> wire_hw = encodeShipBatch(b);
    crc32cForceScalar(true);
    std::vector<std::uint8_t> wire_sw = encodeShipBatch(b);
    crc32cForceScalar(false);
    EXPECT_EQ(wire_hw, wire_sw);
    // And a batch encoded by the hardware path decodes on the scalar
    // path (CRC verification included).
    crc32cForceScalar(true);
    std::optional<ShipBatch> back = decodeShipBatch(wire_hw);
    crc32cForceScalar(false);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->bytes, hw.journal);
}

INSTANTIATE_TEST_SUITE_P(HostWorkers, ByteIdentity,
                         ::testing::Values(0u, 2u, 4u),
                         [](const auto &pi) {
                             return "hw" + std::to_string(pi.param);
                         });

TEST(ByteInvisibility, OptionsFingerprintIgnoresTraceSink)
{
    RecorderOptions a;
    RecorderOptions b;
    TraceRecorder tr;
    b.trace = &tr;
    EXPECT_EQ(recorderOptionsFingerprint(a),
              recorderOptionsFingerprint(b));
}

// ---- structural soundness ----

TEST(TraceStructure, SpansNestProperlyPerTrack)
{
    RunConfig rc;
    rc.hostWorkers = 2;
    TraceRecorder tr;
    TraceRun run = recordOnce(rc, &tr);
    ASSERT_TRUE(run.out.ok);

    const std::vector<TraceEvent> events = tr.events();
    // Collect every (stage, tid) track that carries spans.
    std::vector<std::pair<TraceStage, std::uint32_t>> tracks;
    for (const TraceEvent &e : events)
        if (e.phase == TracePhase::Span &&
            std::find(tracks.begin(), tracks.end(),
                      std::make_pair(e.stage, e.tid)) == tracks.end())
            tracks.emplace_back(e.stage, e.tid);
    ASSERT_GT(tracks.size(), 1u);

    for (auto [stage, tid] : tracks) {
        std::vector<Interval> spans = spansOnTrack(events, stage, tid);
        for (std::size_t i = 0; i < spans.size(); ++i)
            for (std::size_t j = i + 1; j < spans.size(); ++j) {
                const Interval &a = spans[i];
                const Interval &b = spans[j];
                // Two spans on one track must be disjoint or nested;
                // a partial overlap means two "threads" shared a
                // track, which would render as garbage in Perfetto.
                const bool disjoint =
                    a.end <= b.begin || b.end <= a.begin;
                const bool nested =
                    (a.begin <= b.begin && b.end <= a.end) ||
                    (b.begin <= a.begin && a.end <= b.end);
                EXPECT_TRUE(disjoint || nested)
                    << "stage " << static_cast<int>(stage) << " tid "
                    << tid << ": " << a.name << " [" << a.begin << ","
                    << a.end << ") crosses " << b.name << " ["
                    << b.begin << "," << b.end << ")";
            }
    }
}

TEST(TraceStructure, EpochRunConcurrencyBoundedByWindow)
{
    RunConfig rc;
    rc.hostWorkers = 2;
    rc.maxInFlight = 2;
    TraceRecorder tr;
    TraceRun run = recordOnce(rc, &tr);
    ASSERT_TRUE(run.out.ok);

    // Sweep the epoch-run spans: at no instant may more than
    // maxInFlight epoch executions overlap.
    std::vector<std::pair<std::uint64_t, int>> edges;
    std::uint64_t span_count = 0;
    for (const TraceEvent &e : tr.events())
        if (e.phase == TracePhase::Span &&
            e.stage == TraceStage::EpochParallel &&
            std::string_view(e.name) == "epoch-run") {
            ++span_count;
            edges.emplace_back(e.tsNs, +1);
            edges.emplace_back(e.tsNs + e.durNs, -1);
        }
    ASSERT_GT(span_count, 0u);
    EXPECT_EQ(span_count, run.out.recording.epochs.size());
    // Close before open at equal timestamps: back-to-back spans on
    // one slot are sequential, not concurrent.
    std::sort(edges.begin(), edges.end());
    int live = 0, peak = 0;
    for (auto [ts, d] : edges) {
        live += d;
        peak = std::max(peak, live);
    }
    EXPECT_LE(peak, static_cast<int>(rc.maxInFlight));

    // Slot tids never exceed the window, either.
    for (const TraceEvent &e : tr.events()) {
        if (e.stage == TraceStage::EpochParallel) {
            EXPECT_LT(e.tid, rc.maxInFlight);
        }
    }
}

// ---- recovery instants mirror the stats counters ----

struct RecoveryCase
{
    const char *name;       ///< expected instant name
    const char *plan;
    std::uint64_t faultSeed;
    bool fileGuest;
    std::uint32_t RecorderStats::*counter;
};

class RecoveryInstants
    : public ::testing::TestWithParam<RecoveryCase>
{};

TEST_P(RecoveryInstants, OneInstantPerCounterIncrement)
{
    const RecoveryCase &rcase = GetParam();
    RunConfig rc;
    rc.plan = rcase.plan;
    rc.faultSeed = rcase.faultSeed;
    rc.fileGuest = rcase.fileGuest;
    TraceRecorder tr;
    TraceRun run = recordOnce(rc, &tr);
    ASSERT_TRUE(run.out.ok)
        << rcase.name << ": "
        << stopReasonName(run.out.tpReason);

    const std::uint32_t expected =
        run.out.recording.stats.*(rcase.counter);
    ASSERT_GT(expected, 0u) << rcase.name << " plan never fired";
    EXPECT_EQ(countInstants(tr.events(), rcase.name), expected);
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, RecoveryInstants,
    ::testing::Values(
        RecoveryCase{"rollback", "file-short-read=1:3", 104, true,
                     &RecorderStats::rollbacks},
        RecoveryCase{"ckpt-recapture", "torn-ckpt=1:1", 105, false,
                     &RecorderStats::tornCheckpoints},
        RecoveryCase{"epoch-retry", "worker-death=1:1", 106, false,
                     &RecorderStats::epochRetries},
        RecoveryCase{"seq-fallback", "worker-death=1:8", 107, false,
                     &RecorderStats::seqFallbacks}),
    [](const auto &pi) {
        return std::string("k_") + std::to_string(pi.index);
    });

// ---- replay + journal spans ----

TEST(TraceStructure, ReplayAndJournalStagesEmit)
{
    RunConfig rc;
    TraceRecorder tr;
    TraceRun run = recordOnce(rc, &tr);
    ASSERT_TRUE(run.out.ok);
    // One journal-append span per committed epoch.
    std::uint64_t appends = 0;
    for (const TraceEvent &e : tr.events())
        appends += e.stage == TraceStage::Journal &&
                   e.phase == TracePhase::Span;
    EXPECT_EQ(appends, run.out.recording.epochs.size());

    // Replay emits one span per epoch; parallel replay spreads them
    // over worker tracks. Replay results are unaffected by tracing.
    Replayer rep(run.out.recording);
    TraceRecorder rtr;
    rep.setTrace(&rtr);
    ReplayResult seq = rep.replaySequential();
    ASSERT_TRUE(seq.ok);
    ReplayResult par = rep.replayParallel(2);
    ASSERT_TRUE(par.ok);
    std::uint64_t replay_spans = 0;
    for (const TraceEvent &e : rtr.events())
        replay_spans += e.stage == TraceStage::Replay &&
                        e.phase == TracePhase::Span;
    EXPECT_EQ(replay_spans, 2 * run.out.recording.epochs.size());

    ReplayResult plain = Replayer(run.out.recording).replaySequential();
    EXPECT_EQ(plain.stdoutBytes, seq.stdoutBytes);
}

// ---- metrics snapshot ----

TEST(MetricsSnapshot, CountersAndGaugesRoundTripThroughJson)
{
    RunConfig rc;
    rc.hostWorkers = 2;
    TraceRun run = recordOnce(rc, nullptr);
    ASSERT_TRUE(run.out.ok);
    const Recording &rec = run.out.recording;

    JsonValue snap = metricsSnapshot(rec, {});
    const JsonValue *schema = snap.find("schema");
    ASSERT_NE(schema, nullptr);
    EXPECT_EQ(schema->asString(), "dp-metrics-v1");

    const JsonValue *counters = snap.find("counters");
    ASSERT_NE(counters, nullptr);
    auto num = [&](const char *key) -> std::uint64_t {
        const JsonValue *v = counters->find(key);
        EXPECT_NE(v, nullptr) << key;
        return v ? static_cast<std::uint64_t>(v->asNumber()) : 0;
    };
    EXPECT_EQ(num("epochs"), rec.stats.epochs);
    EXPECT_EQ(num("rollbacks"), rec.stats.rollbacks);
    EXPECT_EQ(num("checkpointPages"), rec.stats.checkpointPages);
    EXPECT_EQ(num("tpInstrs"), rec.stats.tpInstrs);
    EXPECT_EQ(num("epInstrs"), rec.stats.epInstrs);
    EXPECT_EQ(num("tpTotalCycles"), rec.stats.tpTotalCycles);
    EXPECT_EQ(num("epTotalCycles"), rec.stats.epTotalCycles);
    EXPECT_EQ(num("replayLogBytes"), rec.replayLogBytes());
    EXPECT_EQ(num("totalLogBytes"), rec.totalLogBytes());
    EXPECT_GT(num("tpInstrs"), 0u);
    EXPECT_GT(num("epInstrs"), 0u);

    // One gauge row per epoch, and the JSON document round-trips
    // through our own parser.
    const JsonValue *epochs = snap.find("epochs");
    ASSERT_NE(epochs, nullptr);
    ASSERT_EQ(epochs->items().size(), rec.epochs.size());
    for (const JsonValue &row : epochs->items()) {
        EXPECT_NE(row.find("queueDepth"), nullptr);
        EXPECT_NE(row.find("stallCycles"), nullptr);
        EXPECT_NE(row.find("dirtyPages"), nullptr);
        EXPECT_NE(row.find("logBytes"), nullptr);
    }
    std::string err;
    std::optional<JsonValue> back =
        JsonValue::parse(snap.dump(), &err);
    ASSERT_TRUE(back.has_value()) << err;
    EXPECT_EQ(back->dump(), snap.dump());
}

} // namespace
} // namespace dp
