# Empty dependencies file for dp_analysis.
# This may be replaced when dependencies are built.
