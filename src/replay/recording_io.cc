#include "replay/recording_io.hh"

#include <algorithm>

#include "common/bytes.hh"
#include "common/logging.hh"

namespace dp
{

namespace
{

constexpr std::uint32_t artifactMagic = 0x44504c59; // "DPLY"
constexpr std::uint32_t artifactVersion = 3; // v3: signal logs

[[noreturn]] void
failLoad(LoadError error, std::string detail, std::size_t offset)
{
    throw RecordingDecodeError{error, std::move(detail), offset};
}

/**
 * Guard an element count against the bytes actually left: every
 * serialized element occupies at least @p min_elem_bytes, so a count
 * beyond remaining/min is a corrupt length, caught before any large
 * allocation.
 */
void
checkCount(const ByteReader &r, std::uint64_t n,
           std::uint64_t min_elem_bytes, const char *what)
{
    // Division instead of multiplication: a corrupt count must not
    // overflow the check itself.
    if (n > r.remaining() / std::max<std::uint64_t>(1, min_elem_bytes))
        failLoad(LoadError::BadSectionLength,
                 detail::concat(what, " count ", n,
                                " exceeds the bytes remaining"),
                 r.pos());
}

void
writeProgram(ByteWriter &w, const GuestProgram &prog)
{
    w.str(prog.name);
    w.varu(prog.entry);
    w.varu(prog.code.size());
    for (const Instr &in : prog.code) {
        w.u8(static_cast<std::uint8_t>(in.op));
        w.u8(static_cast<std::uint8_t>(in.rd));
        w.u8(static_cast<std::uint8_t>(in.rs1));
        w.u8(static_cast<std::uint8_t>(in.rs2));
        w.vari(in.imm);
    }
    w.varu(prog.dataSegments.size());
    for (const auto &[base, bytes] : prog.dataSegments) {
        w.varu(base);
        w.blob(bytes);
    }
}

GuestProgram
readProgram(ByteReader &r)
{
    GuestProgram prog;
    prog.name = r.str();
    prog.entry = r.varu();
    std::uint64_t n = r.varu();
    checkCount(r, n, 5, "instruction");
    prog.code.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        Instr in;
        std::uint8_t op = r.u8();
        if (op >= static_cast<std::uint8_t>(Opcode::NumOpcodes))
            failLoad(LoadError::BadValue,
                     detail::concat("invalid opcode ", int(op)),
                     r.pos());
        in.op = static_cast<Opcode>(op);
        in.rd = static_cast<Reg>(r.u8() & 15);
        in.rs1 = static_cast<Reg>(r.u8() & 15);
        in.rs2 = static_cast<Reg>(r.u8() & 15);
        in.imm = r.vari();
        prog.code.push_back(in);
    }
    std::uint64_t segs = r.varu();
    checkCount(r, segs, 2, "data segment");
    for (std::uint64_t i = 0; i < segs; ++i) {
        Addr base = r.varu();
        prog.dataSegments.emplace_back(base, r.blob());
    }
    return prog;
}

void
writeConfig(ByteWriter &w, const MachineConfig &cfg)
{
    w.varu(cfg.netSeed);
    w.varu(cfg.netBytesPerConn);
    w.varu(cfg.netCyclesPerByte);
    w.varu(cfg.initialFiles.size());
    for (const auto &[path, content] : cfg.initialFiles) {
        w.str(path);
        w.blob(content);
    }
}

MachineConfig
readConfig(ByteReader &r)
{
    MachineConfig cfg;
    cfg.netSeed = r.varu();
    cfg.netBytesPerConn = r.varu();
    cfg.netCyclesPerByte = r.varu();
    std::uint64_t n = r.varu();
    checkCount(r, n, 2, "initial file");
    for (std::uint64_t i = 0; i < n; ++i) {
        std::string path = r.str();
        cfg.initialFiles.emplace_back(std::move(path), r.blob());
    }
    return cfg;
}

RecordingLoadResult
loadChecked(std::span<const std::uint8_t> bytes)
{
    ByteReader r(bytes);
    std::uint64_t header = r.u64fixed();
    if (header >> 32 != artifactMagic)
        failLoad(LoadError::BadMagic,
                 "not a uniplay recording artifact", 0);
    if ((header & 0xffffffff) != artifactVersion)
        failLoad(LoadError::BadVersion,
                 detail::concat("unsupported artifact version ",
                                header & 0xffffffff),
                 0);

    RecordingLoadResult out;
    GuestProgram prog = readProgram(r);
    MachineConfig cfg = readConfig(r);
    out.recording = std::make_unique<Recording>(prog, std::move(cfg));

    std::uint64_t n = r.varu();
    checkCount(r, n, 12, "epoch");
    out.recording->epochs.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i)
        out.recording->epochs.push_back(readEpochRecord(r, i));
    out.recording->finalStateHash = r.u64fixed();
    out.recording->stats.epochs =
        static_cast<std::uint32_t>(r.varu());
    out.recording->stats.rollbacks =
        static_cast<std::uint32_t>(r.varu());
    out.recording->stats.checkpointPages = r.varu();
    if (!r.atEnd())
        failLoad(LoadError::TrailingBytes,
                 detail::concat(r.remaining(),
                                " trailing bytes in artifact"),
                 r.pos());
    return out;
}

} // namespace

void
writeGuestProgram(ByteWriter &w, const GuestProgram &prog)
{
    writeProgram(w, prog);
}

GuestProgram
readGuestProgram(ByteReader &r)
{
    return readProgram(r);
}

void
writeMachineConfig(ByteWriter &w, const MachineConfig &cfg)
{
    writeConfig(w, cfg);
}

MachineConfig
readMachineConfig(ByteReader &r)
{
    return readConfig(r);
}

void
writeEpochRecord(ByteWriter &w, const EpochRecord &e,
                 const std::function<void(const char *, bool)> &mark)
{
    auto at = [&](const char *field, bool length_prefixed) {
        if (mark)
            mark(field, length_prefixed);
    };
    at("schedule", true);
    w.blob(e.schedule.encode());
    at("syscalls", true);
    w.blob(e.syscalls.encode());
    at("signals", true);
    w.blob(e.signals.encode());
    at("meta", false);
    w.u64fixed(e.endStateHash);
    w.varu(e.stdoutLen);
    w.u8(e.diverged ? 1 : 0);
    w.varu(e.tpCycles);
    w.varu(e.epCycles);
    w.varu(e.ckptCycles);
    w.varu(e.epInstrs);
    at("targets", true);
    w.varu(e.targets.size());
    for (const EpochTarget &t : e.targets) {
        w.varu(t.retired);
        w.u8(static_cast<std::uint8_t>(t.endState));
    }
}

EpochRecord
readEpochRecord(ByteReader &r, std::uint64_t index)
{
    EpochRecord e;
    std::vector<std::uint8_t> sched = r.blob();
    e.schedule = ScheduleLog::decode(sched);
    std::vector<std::uint8_t> sys = r.blob();
    e.syscalls = SyscallLog::decode(sys);
    for (const SyscallRecord &rec : e.syscalls.records())
        if (rec.sys >= Sys::NumSyscalls)
            failLoad(LoadError::BadValue,
                     detail::concat("invalid syscall id in epoch ",
                                    index),
                     r.pos());
    std::vector<std::uint8_t> sigs = r.blob();
    e.signals = SignalLog::decode(sigs);
    e.endStateHash = r.u64fixed();
    e.stdoutLen = r.varu();
    e.diverged = r.u8() != 0;
    e.tpCycles = r.varu();
    e.epCycles = r.varu();
    e.ckptCycles = r.varu();
    e.epInstrs = r.varu();
    std::uint64_t targets = r.varu();
    checkCount(r, targets, 2, "epoch target");
    for (std::uint64_t t = 0; t < targets; ++t) {
        EpochTarget tgt;
        tgt.retired = r.varu();
        std::uint8_t state = r.u8();
        if (state > static_cast<std::uint8_t>(RunState::Exited))
            failLoad(LoadError::BadValue,
                     detail::concat("invalid run state ", int(state),
                                    " in epoch ", index),
                     r.pos());
        tgt.endState = static_cast<RunState>(state);
        e.targets.push_back(tgt);
    }
    return e;
}

const char *
loadErrorName(LoadError e)
{
    switch (e) {
      case LoadError::None:
        return "none";
      case LoadError::BadMagic:
        return "bad-magic";
      case LoadError::BadVersion:
        return "bad-version";
      case LoadError::Truncated:
        return "truncated";
      case LoadError::BadVarint:
        return "bad-varint";
      case LoadError::BadSectionLength:
        return "bad-section-length";
      case LoadError::BadValue:
        return "bad-value";
      case LoadError::TrailingBytes:
        return "trailing-bytes";
    }
    return "invalid";
}

std::vector<std::uint8_t>
serializeRecording(const Recording &rec,
                   std::vector<SectionMark> *marks)
{
    ByteWriter w;
    auto mark = [&](std::string name, bool length_prefixed) {
        if (marks)
            marks->push_back(
                {std::move(name), w.size(), length_prefixed});
    };

    mark("header", false);
    w.u64fixed((std::uint64_t{artifactMagic} << 32) | artifactVersion);
    mark("program", true); // leads with the name's length prefix
    writeProgram(w, rec.program());
    mark("config", false);
    writeConfig(w, rec.config());

    mark("epoch-count", true);
    w.varu(rec.epochs.size());
    for (std::size_t i = 0; i < rec.epochs.size(); ++i)
        writeEpochRecord(
            w, rec.epochs[i],
            [&](const char *field, bool length_prefixed) {
                mark(detail::concat("epoch[", i, "].", field),
                     length_prefixed);
            });
    mark("trailer", false);
    w.u64fixed(rec.finalStateHash);
    w.varu(rec.stats.epochs);
    w.varu(rec.stats.rollbacks);
    w.varu(rec.stats.checkpointPages);
    return w.take();
}

RecordingLoadResult
loadRecording(std::span<const std::uint8_t> bytes)
{
    try {
        return loadChecked(bytes);
    } catch (const RecordingDecodeError &f) {
        RecordingLoadResult out;
        out.error = f.error;
        out.detail = f.detail;
        out.errorOffset = f.offset;
        return out;
    } catch (const ByteStreamError &e) {
        RecordingLoadResult out;
        out.error = e.kind == ByteStreamError::Kind::OverlongVarint
                        ? LoadError::BadVarint
                        : LoadError::Truncated;
        out.detail = detail::concat(
            e.kind == ByteStreamError::Kind::OverlongVarint
                ? "varint past 64 bits"
                : "stream ended mid-section",
            " at byte ", e.offset);
        out.errorOffset = e.offset;
        return out;
    } catch (const std::bad_alloc &) {
        RecordingLoadResult out;
        out.error = LoadError::BadSectionLength;
        out.detail = "allocation rejected while loading";
        return out;
    }
}

LoadedRecording
deserializeRecording(std::span<const std::uint8_t> bytes)
{
    RecordingLoadResult res = loadRecording(bytes);
    if (!res.ok()) {
        if (res.error == LoadError::BadMagic)
            dp_panic("not a uniplay recording artifact");
        dp_panic("corrupt recording artifact (",
                 loadErrorName(res.error), "): ", res.detail);
    }
    return LoadedRecording{std::move(res.recording)};
}

} // namespace dp
