#include "vm/program.hh"

#include "common/hash.hh"
#include "mem/paged_memory.hh"

namespace dp
{

void
GuestProgram::loadInto(PagedMemory &mem) const
{
    for (const auto &[base, bytes] : dataSegments)
        mem.writeBytes(base, bytes);
}

std::uint64_t
GuestProgram::hash() const
{
    Digest d;
    d.bytes({reinterpret_cast<const std::uint8_t *>(name.data()),
             name.size()});
    for (const Instr &in : code) {
        d.word(static_cast<std::uint64_t>(in.op));
        d.word(static_cast<std::uint64_t>(in.rd));
        d.word(static_cast<std::uint64_t>(in.rs1) |
               (static_cast<std::uint64_t>(in.rs2) << 8));
        d.word(static_cast<std::uint64_t>(in.imm));
    }
    for (const auto &[base, bytes] : dataSegments) {
        d.word(base);
        d.bytes(bytes);
    }
    d.word(entry);
    return d.value();
}

} // namespace dp
