file(REMOVE_RECURSE
  "CMakeFiles/logs_test.dir/logs_test.cc.o"
  "CMakeFiles/logs_test.dir/logs_test.cc.o.d"
  "logs_test"
  "logs_test.pdb"
  "logs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
