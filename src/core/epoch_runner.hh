/**
 * @file
 * EpochRunner: the epoch-parallel half of uniparallelism.
 *
 * Executes one epoch — from a thread-parallel checkpoint to the
 * per-thread instruction targets of the next checkpoint — with all
 * threads timesliced on a single virtual CPU over the epoch's own copy
 * of memory. While doing so it:
 *   - follows the synchronization order the thread-parallel run
 *     observed (so data-race-free programs reconverge exactly),
 *   - injects the logged results of clock-dependent syscalls,
 *   - records its own timeslice schedule and syscall results — the
 *     replay log.
 *
 * Instances are self-contained (own Machine, own SimOS); epoch runs
 * for different epochs can execute on different host threads.
 */

#ifndef DP_CORE_EPOCH_RUNNER_HH
#define DP_CORE_EPOCH_RUNNER_HH

#include <cstdint>
#include <vector>

#include "ckpt/checkpoint.hh"
#include "log/logs.hh"
#include "os/machine.hh"
#include "os/run_types.hh"
#include "os/uni_runner.hh"
#include "timing/cost_model.hh"
#include "vm/program.hh"

namespace dp
{

class TraceRecorder;

/** Inputs for one epoch execution. */
struct EpochTask
{
    const Checkpoint *start = nullptr;
    /** Per-tid (retired, end state) goals from the next checkpoint. */
    std::vector<EpochTarget> targets;
    /** Sync order observed by the thread-parallel run; nullptr
     *  disables enforcement (the E7 ablation). */
    const SyncOrderLog *syncOrder = nullptr;
    /** Logged results of injectable syscalls, in global order. */
    std::vector<SyscallRecord> injectables;
    /** Signal-delivery points observed by the thread-parallel run. */
    std::vector<SignalEvent> signalPlan;
    std::uint64_t quantum = 50'000;
    std::uint64_t fuel = ~std::uint64_t{0};
    bool chargeRecordCosts = true;
    /** Observability sink (nullptr = off): the runner emits one
     *  instant per timeslice boundary onto worker track @p traceTid.
     *  Never affects the run. */
    TraceRecorder *trace = nullptr;
    std::uint32_t traceTid = 0;
    EpochId traceEpoch = 0;
};

/** Outputs of one epoch execution. */
struct EpochRunResult
{
    explicit EpochRunResult(Machine end_state)
        : end(std::move(end_state))
    {}

    StopReason reason = StopReason::TargetsReached;
    ScheduleLog schedule;
    SyscallLog syscalls;
    SignalLog signals;
    std::uint64_t endStateHash = 0;
    Cycles epCycles = 0;
    std::uint64_t instrs = 0;
    /** Constraints were dropped to make progress (divergence). */
    bool relaxed = false;
    /** Injected-result stream desynchronized (divergence). */
    bool injectMismatch = false;
    /** The machine at the epoch's end (the authoritative state). */
    Machine end;
};

/** Runs epochs on a single virtual CPU. */
class EpochRunner
{
  public:
    EpochRunner(const GuestProgram &prog, const MachineConfig &cfg,
                CostModel costs = {})
        : prog_(&prog), cfg_(&cfg), costs_(costs)
    {}
    EpochRunner(GuestProgram &&, const MachineConfig &,
                CostModel = {}) = delete;

    /** Execute @p task to completion of its targets. */
    EpochRunResult run(const EpochTask &task) const;

  private:
    const GuestProgram *prog_;
    const MachineConfig *cfg_;
    CostModel costs_;
};

} // namespace dp

#endif // DP_CORE_EPOCH_RUNNER_HH
