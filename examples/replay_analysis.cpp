/**
 * @file
 * Offline analysis on a replayed execution: race detection and
 * time-travel debugging.
 *
 * The paper's pitch for deterministic replay is running heavyweight
 * analyses offline against the exact production execution. This
 * example records a buggy (racy) program once, then — without ever
 * re-running it natively — finds the racy addresses with the
 * happens-before detector, locates the first epoch where the damage
 * is visible, and lists every access to the racy word in that epoch.
 */

#include <iostream>

#include "analysis/debugger.hh"
#include "analysis/race_detector.hh"
#include "core/recorder.hh"
#include "replay/replayer.hh"
#include "workloads/registry.hh"

using namespace dp;

int
main()
{
    // A program with real lost-update races on a handful of words.
    workloads::WorkloadBundle racy =
        workloads::makeRacyUpdates(3, 4'000, /*race_one_in=*/4);

    RecorderOptions opts;
    opts.workerCpus = 3;
    opts.epochLength = 25'000;
    UniparallelRecorder recorder(racy.program, racy.config, opts);
    RecordOutcome out = recorder.record();
    if (!out.ok) {
        std::cerr << "recording failed\n";
        return 1;
    }
    std::cout << "recorded " << out.recording.epochs.size()
              << " epochs (" << out.recording.stats.rollbacks
              << " rollbacks from the races)\n\n";

    // Pass 1: replay under the happens-before race detector.
    RaceDetector detector;
    ReplayObserver obs = detector.observer();
    Replayer replayer(out.recording);
    ReplayResult r = replayer.replaySequential(&obs);
    if (!r.ok) {
        std::cerr << "replay failed\n";
        return 1;
    }
    std::cout << "race detector: checked "
              << detector.accessesChecked() << " accesses across "
              << detector.syncOpsSeen() << " sync ops\n";
    for (const RaceReport &race : detector.races()) {
        const char *kind =
            race.kind == RaceReport::Kind::WriteWrite ? "write-write"
            : race.kind == RaceReport::Kind::WriteRead
                ? "write-read"
                : "read-write";
        std::cout << "  RACE on word 0x" << std::hex << race.wordAddr
                  << std::dec << ": threads " << race.first
                  << " and " << race.second << " (" << kind
                  << "), first seen in epoch " << race.epoch << "\n";
    }
    if (detector.races().empty()) {
        std::cout << "no races (unexpected for this program)\n";
        return 1;
    }

    // Pass 2: time-travel to the first racy epoch and watch the word.
    const RaceReport &first = detector.races().front();
    ReplayDebugger dbg(out.recording);
    if (!dbg.seek(first.epoch)) {
        std::cerr << "seek failed\n";
        return 1;
    }
    std::cout << "\nat epoch " << first.epoch << " start, word 0x"
              << std::hex << first.wordAddr << std::dec << " = "
              << dbg.readWord(first.wordAddr) << "\n";
    auto hits = dbg.watch(first.wordAddr, 8);
    if (!hits) {
        std::cerr << "watch failed\n";
        return 1;
    }
    std::cout << "accesses to it during that epoch (first 10 of "
              << hits->size() << "):\n";
    std::size_t shown = 0;
    for (const WatchedAccess &h : *hits) {
        if (++shown > 10)
            break;
        std::cout << "  thread " << h.tid << " "
                  << (h.isWrite ? "writes" : "reads ")
                  << (h.isAtomic ? " (atomic)" : "") << "\n";
    }
    std::cout << "\nall from one recording; no lucky re-runs "
                 "required.\n";
    return 0;
}
