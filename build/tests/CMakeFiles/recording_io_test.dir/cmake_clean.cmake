file(REMOVE_RECURSE
  "CMakeFiles/recording_io_test.dir/recording_io_test.cc.o"
  "CMakeFiles/recording_io_test.dir/recording_io_test.cc.o.d"
  "recording_io_test"
  "recording_io_test.pdb"
  "recording_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recording_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
