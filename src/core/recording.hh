/**
 * @file
 * The Recording artifact a DoublePlay record session produces.
 *
 * Per epoch: the timeslice schedule and syscall results of the
 * *epoch-parallel* execution (the official one), the end-state digest,
 * and timing metadata for the pipeline model. Optionally the
 * epoch-start checkpoints are retained so replay can run epochs in
 * parallel; without them replay runs epochs sequentially from the
 * initial state, needing nothing but the logs.
 */

#ifndef DP_CORE_RECORDING_HH
#define DP_CORE_RECORDING_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "ckpt/checkpoint.hh"
#include "log/logs.hh"
#include "os/machine.hh"
#include "os/uni_runner.hh"
#include "vm/program.hh"

namespace dp
{

/** Everything recorded about one epoch. */
struct EpochRecord
{
    ScheduleLog schedule;
    SyscallLog syscalls;
    SignalLog signals;
    /** Digest of the machine state at the epoch's end. */
    std::uint64_t endStateHash = 0;
    /** Per-tid end-of-epoch targets (diagnostic metadata). */
    std::vector<EpochTarget> targets;
    /** stdout length at the epoch's end: the output-commit point. */
    std::uint64_t stdoutLen = 0;
    /** This epoch's end state disagreed with the thread-parallel
     *  speculation (a rollback followed). */
    bool diverged = false;

    /// @name Timing metadata (virtual cycles)
    /// @{
    Cycles tpCycles = 0;   ///< thread-parallel duration incl. ckpt
    Cycles epCycles = 0;   ///< epoch-parallel (1-CPU) duration
    Cycles ckptCycles = 0; ///< checkpoint portion of tpCycles
    std::uint64_t epInstrs = 0;
    /// @}

    /**
     * Dirty pages copied by this epoch's boundary checkpoint. Not part
     * of the monolithic artifact (which stores only the session total
     * in RecorderStats); the epoch journal persists it per frame so a
     * recovered prefix reconstructs stats.checkpointPages exactly.
     */
    std::uint64_t dirtyPages = 0;

    /**
     * Instructions the thread-parallel run retired producing this
     * epoch. Journal-only, like dirtyPages: the epoch-parallel run may
     * retire a different count (it is the official execution and wins
     * on divergence), so stats.tpInstrs cannot be derived from
     * epInstrs — the journal persists it per frame so fresh and
     * resumed sessions report identical stats.
     */
    std::uint64_t tpInstrs = 0;

    /** Replay-relevant log bytes (schedule + injectable results). */
    std::size_t replayLogBytes() const;
    /** All log bytes incl. the validation syscall stream. */
    std::size_t totalLogBytes() const;
};

/** Counters describing a record session. */
struct RecorderStats
{
    std::uint32_t epochs = 0;
    std::uint32_t rollbacks = 0;
    std::uint64_t checkpointPages = 0; ///< total dirty pages copied
    std::uint64_t tpInstrs = 0;
    std::uint64_t epInstrs = 0;
    Cycles tpTotalCycles = 0;
    Cycles epTotalCycles = 0;

    /// @name Fault-recovery counters (not serialized; they describe
    /// the record *session*, not the artifact).
    /// @{
    std::uint32_t tornCheckpoints = 0; ///< torn captures recaptured
    std::uint32_t workerDeaths = 0;    ///< epoch workers that died
    std::uint32_t epochRetries = 0;    ///< epochs re-executed
    std::uint32_t seqFallbacks = 0;    ///< epochs degraded to inline
                                       ///< sequential execution
    /// @}
};

/**
 * A complete deterministic-replay recording. Owns a copy of the guest
 * program so the artifact is self-contained and never dangles when
 * the recorder's program goes out of scope.
 */
class Recording
{
  public:
    Recording(const GuestProgram &prog, MachineConfig cfg)
        : prog_(std::make_shared<const GuestProgram>(prog)),
          cfg_(std::move(cfg))
    {}

    const GuestProgram &program() const { return *prog_; }
    const MachineConfig &config() const { return cfg_; }

    std::vector<EpochRecord> epochs;
    /** checkpoints[i] = state at epoch i's start (may be empty). */
    std::vector<Checkpoint> checkpoints;
    std::uint64_t finalStateHash = 0;
    RecorderStats stats;

    bool hasCheckpoints() const
    {
        return checkpoints.size() == epochs.size();
    }

    /** Replay-relevant log bytes across all epochs. */
    std::size_t replayLogBytes() const;
    /** All log bytes across all epochs. */
    std::size_t totalLogBytes() const;

  private:
    std::shared_ptr<const GuestProgram> prog_;
    MachineConfig cfg_;
};

} // namespace dp

#endif // DP_CORE_RECORDING_HH
