file(REMOVE_RECURSE
  "CMakeFiles/bench_overhead_nospare.dir/bench/bench_overhead_nospare.cc.o"
  "CMakeFiles/bench_overhead_nospare.dir/bench/bench_overhead_nospare.cc.o.d"
  "bench/bench_overhead_nospare"
  "bench/bench_overhead_nospare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_overhead_nospare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
