/**
 * @file
 * Replay determinism tests: invariants 1, 4, and 5 from DESIGN.md.
 */

#include <gtest/gtest.h>

#include "core/recorder.hh"
#include "replay/replayer.hh"
#include "testprogs.hh"

namespace dp
{
namespace
{

RecordOutcome
recordProgram(const GuestProgram &prog, MachineConfig cfg = {},
              RecorderOptions opts = {})
{
    UniparallelRecorder rec(prog, std::move(cfg), opts);
    RecordOutcome out = rec.record();
    EXPECT_TRUE(out.ok);
    return out;
}

TEST(Replay, SequentialReproducesEveryEpochDigest)
{
    GuestProgram prog = testprogs::lockedCounter(3, 300);
    RecorderOptions opts;
    opts.epochLength = 15'000;
    RecordOutcome out = recordProgram(prog, {}, opts);

    Replayer rep(out.recording);
    ReplayResult r = rep.replaySequential();
    ASSERT_TRUE(r.ok) << "first failed epoch: " << r.firstFailedEpoch;
    EXPECT_EQ(r.epochsVerified, out.recording.epochs.size());
}

TEST(Replay, ReproducesGuestOutputBytes)
{
    GuestProgram prog = testprogs::lockedCounter(2, 150);
    RecordOutcome out = recordProgram(prog);

    Replayer rep(out.recording);
    ReplayResult r = rep.replaySequential();
    ASSERT_TRUE(r.ok);
    ASSERT_EQ(r.stdoutBytes.size(), 8u);
    std::uint64_t value = 0;
    for (int i = 0; i < 8; ++i)
        value |= std::uint64_t{r.stdoutBytes[i]} << (8 * i);
    EXPECT_EQ(value, 300u);
}

TEST(Replay, ParallelEqualsSequential)
{
    GuestProgram prog = testprogs::atomicCounter(3, 2'000);
    RecorderOptions opts;
    opts.epochLength = 1'500;
    opts.keepCheckpoints = true;
    RecordOutcome out = recordProgram(prog, {}, opts);
    ASSERT_TRUE(out.recording.hasCheckpoints());
    ASSERT_GT(out.recording.epochs.size(), 2u);

    Replayer rep(out.recording);
    ReplayResult seq = rep.replaySequential();
    ReplayResult par = rep.replayParallel(2);
    ASSERT_TRUE(seq.ok);
    ASSERT_TRUE(par.ok);
    EXPECT_EQ(par.epochsVerified, seq.epochsVerified);
    EXPECT_EQ(seq.instrs, par.instrs);
}

TEST(Replay, ParallelWithoutCheckpointsFailsGracefully)
{
    GuestProgram prog = testprogs::arithLoop(2'000);
    RecorderOptions opts;
    opts.keepCheckpoints = false;
    RecordOutcome out = recordProgram(prog, {}, opts);
    EXPECT_FALSE(out.recording.hasCheckpoints());

    Replayer rep(out.recording);
    EXPECT_FALSE(rep.replayParallel(2).ok);
    EXPECT_TRUE(rep.replaySequential().ok)
        << "sequential replay needs only logs + initial state";
}

TEST(Replay, InjectablesComeFromTheLogNotTheClock)
{
    // Record with one net rate, replay with a config whose clock-based
    // availability would differ wildly; replay must still verify
    // because lengths are injected, never recomputed.
    GuestProgram prog = testprogs::syscallStorm(1'500);
    MachineConfig cfg;
    cfg.netBytesPerConn = 4'096;
    cfg.netCyclesPerByte = 5;
    RecorderOptions opts;
    opts.epochLength = 40'000;
    RecordOutcome out = recordProgram(prog, cfg, opts);

    Replayer rep(out.recording);
    ReplayResult r = rep.replaySequential();
    ASSERT_TRUE(r.ok);
}

TEST(Replay, ReplayIsIdempotent)
{
    GuestProgram prog = testprogs::barrierPhases(2, 6);
    RecordOutcome out = recordProgram(prog);
    Replayer rep(out.recording);
    ReplayResult a = rep.replaySequential();
    ReplayResult b = rep.replaySequential();
    ASSERT_TRUE(a.ok);
    ASSERT_TRUE(b.ok);
    EXPECT_EQ(a.instrs, b.instrs);
    EXPECT_EQ(a.replayCycles, b.replayCycles);
    EXPECT_EQ(a.stdoutBytes, b.stdoutBytes);
}

TEST(Replay, CorruptedScheduleIsRejected)
{
    GuestProgram prog = testprogs::lockedCounter(2, 100);
    RecordOutcome out = recordProgram(prog);
    ASSERT_GT(out.recording.epochs.size(), 0u);

    // Tamper: rebuild epoch 0's schedule with one segment lengthened.
    ScheduleLog tampered;
    const auto &segs =
        out.recording.epochs[0].schedule.segments();
    ASSERT_FALSE(segs.empty());
    for (std::size_t i = 0; i < segs.size(); ++i) {
        ScheduleSegment s = segs[i];
        if (i == segs.size() / 2)
            s.instrs += 3;
        tampered.append(s);
    }
    out.recording.epochs[0].schedule = tampered;

    Replayer rep(out.recording);
    ReplayResult r = rep.replaySequential();
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.firstFailedEpoch, 0u);
}

} // namespace
} // namespace dp
