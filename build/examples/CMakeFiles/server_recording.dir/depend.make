# Empty dependencies file for server_recording.
# This may be replaced when dependencies are built.
