/**
 * @file
 * Tests for asynchronous guest signals: handler mechanics, delivery
 * points, and — the part the paper cares about — exact reproduction
 * of deliveries by the epoch-parallel run and by replay.
 */

#include <gtest/gtest.h>

#include "core/recorder.hh"
#include "os/simos.hh"
#include "os/uni_runner.hh"
#include "replay/recording_io.hh"
#include "replay/replayer.hh"
#include "vm/asmlib.hh"
#include "vm/assembler.hh"

namespace dp
{
namespace
{

using enum Reg;
namespace lib = dp::asmlib;

/**
 * A pinger thread signals a worker every @p gap iterations of its own
 * loop; the worker spins a compute loop with a handler that counts
 * deliveries at 0xA000 and folds the signal number into 0xA008.
 * Main exits with (deliveries * 1000 + worker_sum_low).
 */
GuestProgram
signalProgram(std::uint64_t pings, std::uint64_t gap,
              std::uint64_t worker_iters)
{
    Assembler a;
    Label worker = a.newLabel();
    Label pinger = a.newLabel();
    Label handler = a.newLabel();

    // main
    lib::spawnThread(a, worker, r5);
    a.mov(r10, r0);
    a.mov(r2, r10); // pass the worker's tid to the pinger
    a.liLabel(r1, pinger);
    a.sys(Sys::Spawn);
    a.mov(r11, r0);
    lib::joinThread(a, r10);
    lib::joinThread(a, r11);
    a.lia(r4, 0xA000);
    a.ld64(r5, r4, 0); // deliveries
    a.muli(r5, r5, 1000);
    a.ld64(r6, r4, 8);
    a.andi(r6, r6, 0xff);
    a.add(r1, r5, r6);
    a.sys(Sys::Exit);

    // worker: register handler, then compute.
    a.bind(worker);
    a.liLabel(r1, handler);
    a.sys(Sys::SigHandler);
    a.li(r8, static_cast<std::int64_t>(worker_iters));
    a.li(r9, 1);
    Label spin = a.hereLabel();
    Label done = a.newLabel();
    a.beqz(r8, done);
    a.muli(r9, r9, 0x9e3779b9);
    a.xor_(r9, r9, r8);
    a.addi(r8, r8, -1);
    a.jmp(spin);
    a.bind(done);
    lib::exitWith(a, 0);

    // handler: count the delivery, fold the signal number (in r1).
    a.bind(handler);
    a.lia(r4, 0xA000);
    a.ld64(r5, r4, 0);
    a.addi(r5, r5, 1);
    a.st64(r4, 0, r5);
    a.ld64(r5, r4, 8);
    a.add(r5, r5, r1);
    a.st64(r4, 8, r5);
    a.sys(Sys::SigReturn);

    // pinger: r1 = worker tid on entry; send `pings` signals with a
    // compute gap between them.
    a.bind(pinger);
    a.mov(r13, r1); // target tid
    a.li(r8, static_cast<std::int64_t>(pings));
    a.li(r12, 5); // signal number cycles 5,6,7,...
    Label ping_loop = a.hereLabel();
    Label pinger_done = a.newLabel();
    a.beqz(r8, pinger_done);
    a.li(r9, static_cast<std::int64_t>(gap));
    Label gap_loop = a.hereLabel();
    Label gapped = a.newLabel();
    a.beqz(r9, gapped);
    a.addi(r9, r9, -1);
    a.jmp(gap_loop);
    a.bind(gapped);
    a.mov(r1, r13);
    a.mov(r2, r12);
    a.sys(Sys::Kill);
    a.addi(r12, r12, 1);
    a.addi(r8, r8, -1);
    a.jmp(ping_loop);
    a.bind(pinger_done);
    lib::exitWith(a, 0);

    return a.finish("signal_pingpong");
}

TEST(Signals, HandlerRunsAndReturns)
{
    // Self-signal: deliver once, handler increments, execution
    // resumes exactly where it left off.
    Assembler a;
    Label handler = a.newLabel();
    a.liLabel(r1, handler);
    a.sys(Sys::SigHandler);
    a.li(r1, 0); // own tid
    a.li(r2, 9);
    a.sys(Sys::Kill);
    // Delivery happens before the next instruction boundary.
    a.li(r10, 111);
    a.lia(r4, 0xA000);
    a.ld64(r5, r4, 0); // handler counted?
    a.muli(r5, r5, 100);
    a.add(r1, r5, r10);
    a.addi(r1, r1, -111);
    a.sys(Sys::Exit); // 100 * deliveries
    a.bind(handler);
    a.lia(r4, 0xA000);
    a.ld64(r5, r4, 0);
    a.addi(r5, r5, 1);
    a.st64(r4, 0, r5);
    a.sys(Sys::SigReturn);

    GuestProgram prog = a.finish("self_signal");
    Machine m(prog, {});
    SimOS os;
    UniRunner r(m, os, {}, {});
    ASSERT_EQ(r.run(), StopReason::AllExited);
    EXPECT_EQ(m.threads[0].exitCode, 100u);
}

TEST(Signals, SigReturnOutsideHandlerFails)
{
    Assembler a;
    a.sys(Sys::SigReturn);
    a.li(r2, -1);
    a.seq(r1, r0, r2);
    a.sys(Sys::Exit);
    GuestProgram prog = a.finish("bad_sigreturn");
    Machine m(prog, {});
    SimOS os;
    UniRunner r(m, os, {}, {});
    ASSERT_EQ(r.run(), StopReason::AllExited);
    EXPECT_EQ(m.threads[0].exitCode, 1u);
}

TEST(Signals, SignalsWithoutHandlerStayPending)
{
    Assembler a;
    Label child = a.newLabel();
    lib::spawnThread(a, child, r5);
    a.mov(r10, r0);
    a.mov(r1, r10);
    a.li(r2, 3);
    a.sys(Sys::Kill);
    lib::joinThread(a, r10);
    a.li(r1, 0);
    a.sys(Sys::Exit);
    a.bind(child);
    a.li(r8, 50);
    Label spin = a.hereLabel();
    Label done = a.newLabel();
    a.beqz(r8, done);
    a.addi(r8, r8, -1);
    a.jmp(spin);
    a.bind(done);
    lib::exitWith(a, 0);

    GuestProgram prog = a.finish("no_handler");
    Machine m(prog, {});
    SimOS os;
    UniRunner r(m, os, {}, {});
    ASSERT_EQ(r.run(), StopReason::AllExited);
    // Child exited with the signal still pending; nothing crashed.
    EXPECT_EQ(m.threads[0].exitCode, 0u);
}

TEST(Signals, DeliveriesAreCountedExactly)
{
    GuestProgram prog = signalProgram(6, 400, 20'000);
    Machine m(prog, {});
    SimOS os;
    UniRunner r(m, os, {}, {});
    ASSERT_EQ(r.run(), StopReason::AllExited);
    // 6 deliveries; signal numbers 5..10 sum to 45.
    EXPECT_EQ(m.threads[0].exitCode, 6'000u + 45u);
}

TEST(Signals, RecordReproducesDeliveryPoints)
{
    GuestProgram prog = signalProgram(8, 600, 40'000);
    RecorderOptions opts;
    opts.workerCpus = 2;
    opts.epochLength = 8'000;
    UniparallelRecorder rec(prog, {}, opts);
    RecordOutcome out = rec.record();
    ASSERT_TRUE(out.ok);
    EXPECT_EQ(out.recording.stats.rollbacks, 0u)
        << "plan-driven delivery must reconverge the epoch runs";
    EXPECT_EQ(out.mainExitCode % 1000, (5 + 12) * 8 / 2 % 1000);
    EXPECT_GE(out.mainExitCode / 1000, 8u);

    std::size_t logged = 0;
    for (const auto &e : out.recording.epochs)
        logged += e.signals.size();
    EXPECT_EQ(logged, out.mainExitCode / 1000)
        << "every delivery appears in exactly one epoch's log";

    Replayer rep(out.recording);
    EXPECT_TRUE(rep.replaySequential().ok);
    EXPECT_TRUE(rep.replayParallel(2).ok);
}

TEST(Signals, ArtifactRoundTripsSignalLogs)
{
    GuestProgram prog = signalProgram(5, 500, 25'000);
    RecorderOptions opts;
    opts.workerCpus = 2;
    opts.epochLength = 10'000;
    UniparallelRecorder rec(prog, {}, opts);
    RecordOutcome out = rec.record();
    ASSERT_TRUE(out.ok);

    LoadedRecording loaded =
        deserializeRecording(serializeRecording(out.recording));
    Replayer rep(*loaded.recording);
    EXPECT_TRUE(rep.replaySequential().ok);
}

TEST(Signals, HostParallelRecordingMatches)
{
    GuestProgram prog = signalProgram(6, 700, 30'000);
    auto run = [&](unsigned hw) {
        RecorderOptions opts;
        opts.workerCpus = 2;
        opts.epochLength = 9'000;
        opts.hostWorkers = hw;
        opts.keepCheckpoints = false;
        UniparallelRecorder rec(prog, {}, opts);
        return rec.record();
    };
    RecordOutcome a0 = run(0);
    RecordOutcome a2 = run(2);
    ASSERT_TRUE(a0.ok);
    ASSERT_TRUE(a2.ok);
    EXPECT_EQ(serializeRecording(a0.recording),
              serializeRecording(a2.recording));
}

} // namespace
} // namespace dp
