/**
 * @file
 * Robustness property: a tampered recording must never silently
 * verify. Every mutation of an artifact either fails to parse
 * (panic, checked via death tests elsewhere) or parses into a
 * recording whose replay fails verification — it can never produce
 * ok=true with a different execution.
 */

#include <gtest/gtest.h>

#include "common/bytes.hh"
#include "common/rng.hh"
#include "core/recorder.hh"
#include "journal/frame.hh"
#include "journal/sharded.hh"
#include "replay/recording_io.hh"
#include "replay/replayer.hh"
#include "testprogs.hh"

#include <csetjmp>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

namespace dp
{
namespace
{

std::vector<std::uint8_t>
makeArtifact(std::vector<SectionMark> *marks = nullptr)
{
    GuestProgram prog = testprogs::lockedCounter(2, 200);
    RecorderOptions opts;
    opts.epochLength = 15'000;
    UniparallelRecorder rec(prog, {}, opts);
    RecordOutcome out = rec.record();
    EXPECT_TRUE(out.ok);
    return serializeRecording(out.recording, marks);
}

/**
 * Deserialize+replay a (possibly corrupt) artifact in a forked child
 * so dp_panic/dp_fatal aborts are contained. Returns:
 *  0 = replay verified, 1 = replay failed verification,
 *  2 = parser rejected the artifact (process died).
 */
int
probeArtifact(const std::vector<std::uint8_t> &bytes)
{
    pid_t pid = fork();
    if (pid == 0) {
        // Child: silence the panic messages.
        (void)freopen("/dev/null", "w", stderr);
        LoadedRecording loaded = deserializeRecording(bytes);
        Replayer rep(*loaded.recording);
        _exit(rep.replaySequential().ok ? 0 : 1);
    }
    int status = 0;
    waitpid(pid, &status, 0);
    if (WIFEXITED(status))
        return WEXITSTATUS(status);
    return 2;
}

TEST(Corruption, PristineArtifactVerifies)
{
    std::vector<std::uint8_t> bytes = makeArtifact();
    EXPECT_EQ(probeArtifact(bytes), 0);
}

TEST(Corruption, SingleByteFlipsNeverSilentlyVerify)
{
    std::vector<std::uint8_t> bytes = makeArtifact();
    Rng rng(77);
    int rejected = 0, failed_verify = 0, benign = 0;
    for (int round = 0; round < 60; ++round) {
        std::vector<std::uint8_t> mutant = bytes;
        // Flip a byte past the 8-byte header (header flips are the
        // trivially-rejected case).
        std::size_t pos = 8 + rng.below(mutant.size() - 8);
        std::uint8_t flip =
            static_cast<std::uint8_t>(1 + rng.below(255));
        mutant[pos] ^= flip;
        switch (probeArtifact(mutant)) {
          case 0:
            // A flip that still verifies may only have touched
            // verification-irrelevant metadata (timing fields,
            // diagnostic targets): the replay-relevant content must
            // be untouched.
            {
                LoadedRecording a = deserializeRecording(bytes);
                LoadedRecording b = deserializeRecording(mutant);
                ASSERT_EQ(a.recording->epochs.size(),
                          b.recording->epochs.size());
                for (std::size_t i = 0;
                     i < a.recording->epochs.size(); ++i) {
                    const EpochRecord &x = a.recording->epochs[i];
                    const EpochRecord &y = b.recording->epochs[i];
                    EXPECT_TRUE(x.schedule == y.schedule &&
                                x.syscalls == y.syscalls &&
                                x.signals == y.signals &&
                                x.endStateHash == y.endStateHash)
                        << "byte " << pos << " flip 0x" << std::hex
                        << int(flip)
                        << " changed replay content but verified";
                }
                EXPECT_EQ(a.recording->finalStateHash,
                          b.recording->finalStateHash);
                // Note: the program image itself may differ in
                // *never-executed* bytes (its name, dead code) and
                // still verify — any flip in executed code diverges
                // the replay and fails the digest checks above.
                ++benign;
            }
            break;
          case 1:
            ++failed_verify;
            break;
          default:
            ++rejected;
        }
    }
    // The sweep must exercise both failure modes.
    EXPECT_GT(rejected + failed_verify, 0);
    SUCCEED() << rejected << " rejected, " << failed_verify
              << " failed verification, " << benign << " benign";
}

TEST(Corruption, TruncationsAreRejectedOrFail)
{
    std::vector<std::uint8_t> bytes = makeArtifact();
    Rng rng(99);
    for (int round = 0; round < 12; ++round) {
        std::size_t keep = 8 + rng.below(bytes.size() - 8);
        std::vector<std::uint8_t> mutant(bytes.begin(),
                                         bytes.begin() + keep);
        EXPECT_NE(probeArtifact(mutant), 0)
            << "truncation to " << keep << " bytes verified";
    }
}

TEST(Corruption, TruncationAtEverySectionBoundaryFailsClosed)
{
    // Cut the artifact exactly at, one byte before, and one byte
    // after every structural boundary: the fail-closed loader must
    // return a structured error for each — in-process, no death
    // tests, no UB.
    std::vector<SectionMark> marks;
    std::vector<std::uint8_t> bytes = makeArtifact(&marks);
    ASSERT_GT(marks.size(), 4u);
    for (const SectionMark &m : marks) {
        for (std::size_t delta : {std::size_t{0}, std::size_t{1},
                                  ~std::size_t{0}}) {
            const std::size_t keep = m.offset + delta; // ~0 = -1
            if (keep == 0 || keep >= bytes.size())
                continue;
            std::vector<std::uint8_t> cut(bytes.begin(),
                                          bytes.begin() + keep);
            RecordingLoadResult r = loadRecording(cut);
            EXPECT_FALSE(r.ok())
                << "cut at section '" << m.name << "' + " << delta
                << " (" << keep << " bytes) loaded";
            EXPECT_EQ(r.recording, nullptr);
            EXPECT_NE(r.error, LoadError::None);
            EXPECT_FALSE(r.detail.empty()) << m.name;
        }
    }
    // The untouched artifact still loads (the marks are accurate).
    EXPECT_TRUE(loadRecording(bytes).ok());
}

TEST(Corruption, RandomFlipsLoadInProcessWithStructuredErrors)
{
    // The fail-closed loader confronts every single-byte flip
    // in-process: it must never crash, assert, or allocate wildly,
    // and every rejection must carry a meaningful error code.
    std::vector<std::uint8_t> bytes = makeArtifact();
    Rng rng(4242);
    int rejected = 0, parsed = 0;
    for (int round = 0; round < 200; ++round) {
        std::vector<std::uint8_t> mutant = bytes;
        std::size_t pos = rng.below(mutant.size());
        mutant[pos] ^=
            static_cast<std::uint8_t>(1 + rng.below(255));
        RecordingLoadResult r = loadRecording(mutant);
        if (r.ok()) {
            ASSERT_NE(r.recording, nullptr);
            ++parsed;
            continue;
        }
        EXPECT_EQ(r.recording, nullptr);
        EXPECT_NE(r.error, LoadError::None);
        EXPECT_STRNE(loadErrorName(r.error), "ok");
        EXPECT_FALSE(r.detail.empty())
            << "flip at " << pos << " rejected without detail";
        EXPECT_LE(r.errorOffset, mutant.size())
            << "error offset points outside the artifact";
        ++rejected;
    }
    // The sweep must exercise the rejection path heavily; parse-valid
    // flips (timing metadata, program bytes) are legal and handled by
    // the verification-level sweep above.
    EXPECT_GT(rejected, 0);
    SUCCEED() << rejected << " rejected, " << parsed << " parsed";
}

TEST(Corruption, ParallelAndSequentialAgreeOnCorruptFinalHash)
{
    // Regression guard: parallel replay used to skip the
    // finalStateHash check entirely (it verified per-epoch digests
    // only), so a corrupted final hash failed sequential replay but
    // silently verified in parallel. Both modes must return the same
    // verdict on the same artifact.
    GuestProgram prog = testprogs::lockedCounter(2, 200);
    RecorderOptions opts;
    opts.epochLength = 15'000;
    UniparallelRecorder rec(prog, {}, opts);
    RecordOutcome out = rec.record();
    ASSERT_TRUE(out.ok);
    ASSERT_TRUE(out.recording.hasCheckpoints());

    {
        Replayer rep(out.recording);
        ReplayResult seq = rep.replaySequential();
        ReplayResult par = rep.replayParallel(2);
        EXPECT_TRUE(seq.ok);
        EXPECT_TRUE(par.ok);
        EXPECT_EQ(seq.stdoutBytes, par.stdoutBytes)
            << "parallel replay must reconstruct the same output";
    }

    out.recording.finalStateHash ^= 0x1ull << 17;
    Replayer rep(out.recording);
    ReplayResult seq = rep.replaySequential();
    ReplayResult par = rep.replayParallel(2);
    EXPECT_FALSE(seq.ok);
    EXPECT_FALSE(par.ok)
        << "parallel replay ignored the corrupted finalStateHash";
}

TEST(Corruption, CrossRecordingSplicesFail)
{
    // Epochs from a different execution must not verify.
    GuestProgram prog_a = testprogs::lockedCounter(2, 200);
    GuestProgram prog_b = testprogs::lockedCounter(2, 300);
    RecorderOptions opts;
    opts.epochLength = 15'000;
    UniparallelRecorder rec_a(prog_a, {}, opts);
    UniparallelRecorder rec_b(prog_b, {}, opts);
    RecordOutcome a = rec_a.record();
    RecordOutcome b = rec_b.record();
    ASSERT_TRUE(a.ok);
    ASSERT_TRUE(b.ok);
    ASSERT_GT(a.recording.epochs.size(), 1u);
    ASSERT_GT(b.recording.epochs.size(), 1u);

    a.recording.epochs[1] = b.recording.epochs[1];
    Replayer rep(a.recording);
    EXPECT_FALSE(rep.replaySequential().ok);
}

// ----------------------------------------------------------------
// Cross-stream journal corruption: a sharded journal set must fail
// closed — a damaged or foreign stream can only move the consistent
// cut, never shorten a sibling's valid prefix beyond it, and never
// panic.

/** A recorded session appended through a sharded journal writer. */
struct ShardedSet
{
    std::vector<std::vector<std::uint8_t>> images;
    /** Per stream: [0] = header end, [k] = end of k-th epoch frame. */
    std::vector<std::vector<std::size_t>> frameEnds;
    std::uint64_t epochs = 0;
};

ShardedSet
makeShardedSet(unsigned streams, std::uint64_t appends,
               std::uint32_t iters = 200)
{
    GuestProgram prog = testprogs::lockedCounter(2, iters);
    RecorderOptions opts;
    opts.epochLength = 15'000;
    UniparallelRecorder rec(prog, {}, opts);
    RecordOutcome out = rec.record();
    EXPECT_TRUE(out.ok);
    const Recording &r = out.recording;
    ShardedJournalWriter w(r.program(), r.config(),
                           recorderOptionsFingerprint(opts),
                           {.streams = streams});
    for (std::uint64_t i = 0; i < appends; ++i)
        w.appendEpoch(r.epochs[i % r.epochs.size()],
                      static_cast<EpochId>(i));
    ShardedSet set;
    set.epochs = appends;
    for (unsigned s = 0; s < streams; ++s)
        set.frameEnds.push_back(w.streamFrameEnds(s));
    set.images = w.imageSet();
    return set;
}

std::vector<std::span<const std::uint8_t>>
spansOf(const std::vector<std::vector<std::uint8_t>> &images)
{
    return {images.begin(), images.end()};
}

/** Epochs below @p cut owned by stream @p s of @p n (base 0). */
std::uint64_t
ownedBelow(std::uint64_t cut, unsigned s, unsigned n)
{
    return cut > s ? (cut - 1 - s) / n + 1 : 0;
}

TEST(ShardedCorruption, LaggingStreamLimitsTheCutNotItsSiblings)
{
    // Truncate one stream at a frame boundary so it falls behind:
    // the cut lands at its first missing epoch, and every sibling
    // keeps exactly its frames below the cut — no more, no less.
    ShardedSet set = makeShardedSet(4, 12);
    set.images[2].resize(set.frameEnds[2][1]); // header + 1 epoch
    // Stream 2 owns epochs 2, 6, 10; with one frame left its first
    // missing epoch is 6.
    const std::uint64_t cut = 6;
    for (unsigned jobs : {1u, 2u}) {
        RecoveredShardedJournal rj =
            recoverShardedJournal(spansOf(set.images), jobs);
        EXPECT_TRUE(rj.report.headerOk);
        EXPECT_EQ(rj.consistentEpochs, cut);
        ASSERT_NE(rj.recording, nullptr);
        EXPECT_EQ(rj.recording->epochs.size(), cut);
        for (unsigned s = 0; s < 4; ++s) {
            const StreamRecovery &sr = rj.streams[s];
            EXPECT_TRUE(sr.report.clean()) << "stream " << s;
            EXPECT_EQ(sr.framesKept, ownedBelow(cut, s, 4));
            EXPECT_EQ(sr.keptBytes,
                      set.frameEnds[s][static_cast<std::size_t>(
                          sr.framesKept)])
                << "stream " << s
                << " prefix shortened beyond the consistent cut";
        }
        EXPECT_EQ(rj.report.tailError, JournalError::InconsistentCut);
        EXPECT_EQ(rj.report.streamIndex, 2u);
        EXPECT_NE(rj.report.detail.find("behind its siblings"),
                  std::string::npos)
            << rj.report.detail;
    }
}

TEST(ShardedCorruption, TamperedSequenceMetadataFailsTheStreamClosed)
{
    // Rewrite one epoch frame's dependency metadata (epoch index /
    // stream sequence) with a *valid* CRC: the sequencing checks, not
    // the checksum, must stop the stream at the tampered frame.
    ShardedSet set = makeShardedSet(4, 12);
    struct Tamper
    {
        std::uint64_t indexDelta, seqDelta;
        const char *expectDetail;
    };
    for (const Tamper &t :
         {Tamper{0, 1, "contradicts"},
          Tamper{1, 0, "does not belong"}}) {
        std::vector<std::vector<std::uint8_t>> images = set.images;
        const std::vector<std::uint8_t> &orig = set.images[1];
        // Stream 1's second epoch frame carries epoch 5, sequence 1.
        std::size_t pos = set.frameEnds[1][1];
        journal_detail::Frame f = journal_detail::parseFrame(
            std::span<const std::uint8_t>(orig), pos);
        ASSERT_EQ(pos, set.frameEnds[1][2]);
        ByteReader p(f.payload);
        const std::uint64_t index = p.varu();
        const std::uint64_t seq = p.varu();
        ByteWriter wp;
        wp.varu(index + t.indexDelta);
        wp.varu(seq + t.seqDelta);
        std::vector<std::uint8_t> payload = wp.take();
        payload.insert(payload.end(), f.payload.begin() + p.pos(),
                       f.payload.end());
        std::vector<std::uint8_t> frame = journal_detail::makeFrame(
            journalEpochKind, std::move(payload));
        std::vector<std::uint8_t> &img = images[1];
        img.erase(img.begin() + set.frameEnds[1][1],
                  img.begin() + set.frameEnds[1][2]);
        img.insert(img.begin() + set.frameEnds[1][1], frame.begin(),
                   frame.end());

        RecoveredShardedJournal rj =
            recoverShardedJournal(spansOf(images), 2);
        // Stream 1 keeps only epoch 1; the cut is its next owned
        // epoch, 5.
        const std::uint64_t cut = 5;
        EXPECT_TRUE(rj.report.headerOk);
        EXPECT_EQ(rj.consistentEpochs, cut);
        ASSERT_NE(rj.recording, nullptr);
        EXPECT_EQ(rj.recording->epochs.size(), cut);
        const StreamRecovery &bad = rj.streams[1];
        EXPECT_EQ(bad.report.tailError, JournalError::BadEpochIndex);
        EXPECT_EQ(bad.report.framesRecovered, 1u);
        EXPECT_NE(bad.report.detail.find(t.expectDetail),
                  std::string::npos)
            << bad.report.detail;
        for (unsigned s : {0u, 2u, 3u}) {
            EXPECT_TRUE(rj.streams[s].report.clean());
            EXPECT_EQ(rj.streams[s].framesKept,
                      ownedBelow(cut, s, 4));
            EXPECT_EQ(rj.streams[s].keptBytes,
                      set.frameEnds[s][static_cast<std::size_t>(
                          rj.streams[s].framesKept)]);
        }
        EXPECT_EQ(rj.report.tailError, JournalError::BadEpochIndex);
        EXPECT_EQ(rj.report.streamIndex, 1u);
        EXPECT_EQ(rj.report.detail.rfind("stream 1: ", 0), 0u)
            << rj.report.detail;
    }
}

TEST(ShardedCorruption, SwappedStreamSlotsFailClosedInPlace)
{
    // Two streams presented in each other's slots: both fail closed
    // (their frames cannot be trusted to sit at the claimed epochs),
    // the cut stops at the first epoch a mismatched slot owns, and
    // the well-placed siblings are untouched.
    ShardedSet set = makeShardedSet(4, 12);
    std::vector<std::vector<std::uint8_t>> images = set.images;
    std::swap(images[1], images[2]);
    RecoveredShardedJournal rj =
        recoverShardedJournal(spansOf(images), 2);
    EXPECT_TRUE(rj.report.headerOk);
    EXPECT_EQ(rj.consistentEpochs, 1u); // stream 1's first epoch
    ASSERT_NE(rj.recording, nullptr);
    EXPECT_EQ(rj.recording->epochs.size(), 1u);
    for (unsigned s : {1u, 2u}) {
        EXPECT_EQ(rj.streams[s].report.tailError,
                  JournalError::StreamMismatch);
        EXPECT_NE(rj.streams[s].report.detail.find("claims stream"),
                  std::string::npos);
        EXPECT_EQ(rj.streams[s].framesKept, 0u);
        EXPECT_EQ(rj.streams[s].keptBytes, 0u);
    }
    EXPECT_TRUE(rj.streams[0].report.clean());
    EXPECT_EQ(rj.streams[0].framesKept, 1u);
    EXPECT_TRUE(rj.streams[3].report.clean());
    EXPECT_EQ(rj.streams[3].framesKept, 0u);
    EXPECT_EQ(rj.streams[3].keptBytes, set.frameEnds[3][0]);
    EXPECT_EQ(rj.report.tailError, JournalError::StreamMismatch);
    EXPECT_EQ(rj.report.streamIndex, 1u);

    // Every slot wrong: no trustworthy header at all — recover
    // nothing rather than guess.
    ShardedSet two = makeShardedSet(2, 6);
    std::swap(two.images[0], two.images[1]);
    RecoveredShardedJournal none =
        recoverShardedJournal(spansOf(two.images), 2);
    EXPECT_FALSE(none.report.headerOk);
    EXPECT_EQ(none.recording, nullptr);
    EXPECT_EQ(none.report.bytesDiscarded,
              two.images[0].size() + two.images[1].size());
}

TEST(ShardedCorruption, ForeignStreamIsOutvotedBySiblings)
{
    // A stream from a *different* session in an otherwise healthy
    // set: its header parses and sits in the right slot, but its
    // shared suffix (program, config, fingerprint) loses the majority
    // vote — it fails closed without dragging the siblings down.
    ShardedSet a = makeShardedSet(4, 12, 200);
    ShardedSet b = makeShardedSet(4, 12, 300);
    std::vector<std::vector<std::uint8_t>> images = a.images;
    images[2] = b.images[2];
    RecoveredShardedJournal rj =
        recoverShardedJournal(spansOf(images), 2);
    const std::uint64_t cut = 2; // stream 2's first owned epoch
    EXPECT_TRUE(rj.report.headerOk);
    EXPECT_EQ(rj.consistentEpochs, cut);
    ASSERT_NE(rj.recording, nullptr);
    EXPECT_EQ(rj.recording->epochs.size(), cut);
    EXPECT_EQ(rj.streams[2].report.tailError,
              JournalError::StreamMismatch);
    EXPECT_NE(rj.streams[2].report.detail.find(
                  "disagrees with its siblings"),
              std::string::npos);
    EXPECT_EQ(rj.streams[2].framesKept, 0u);
    EXPECT_EQ(rj.streams[2].keptBytes, 0u);
    for (unsigned s : {0u, 1u, 3u}) {
        EXPECT_TRUE(rj.streams[s].report.clean());
        EXPECT_EQ(rj.streams[s].framesKept, ownedBelow(cut, s, 4));
        EXPECT_EQ(rj.streams[s].keptBytes,
                  a.frameEnds[s][static_cast<std::size_t>(
                      rj.streams[s].framesKept)]);
    }
}

TEST(ShardedCorruption, RandomFlipsInOneStreamNeverShortenSiblings)
{
    // Single-byte flips confined to one stream, recovered in-process:
    // recovery must never panic, the damaged stream's loss must be
    // fully explained by its own report, and the undamaged streams
    // must keep exactly their frames below the consistent cut.
    ShardedSet set = makeShardedSet(4, 12);
    Rng rng(0xC0441);
    for (int round = 0; round < 60; ++round) {
        std::vector<std::vector<std::uint8_t>> images = set.images;
        std::vector<std::uint8_t> &img = images[2];
        const std::size_t pos = rng.below(img.size());
        img[pos] ^= static_cast<std::uint8_t>(1 + rng.below(255));

        RecoveredShardedJournal rj =
            recoverShardedJournal(spansOf(images), 2);
        // Three healthy streams always outvote the damaged one.
        EXPECT_TRUE(rj.report.headerOk);
        ASSERT_NE(rj.recording, nullptr);

        // Every byte of every frame is covered by structure or CRC:
        // the flip can never pass unnoticed.
        const RecoveryReport &r2 = rj.streams[2].report;
        EXPECT_FALSE(rj.streams[2].report.clean())
            << "flip at byte " << pos << " went undetected";
        std::uint64_t kept2 = r2.headerOk ? r2.framesRecovered : 0;
        if (r2.tailError == JournalError::StreamMismatch)
            kept2 = 0;
        const std::uint64_t cut =
            std::min<std::uint64_t>(12, kept2 * 4 + 2);
        EXPECT_EQ(rj.consistentEpochs, cut)
            << "flip at byte " << pos;
        EXPECT_EQ(rj.recording->epochs.size(), cut);
        for (unsigned s : {0u, 1u, 3u}) {
            EXPECT_TRUE(rj.streams[s].report.clean());
            EXPECT_EQ(rj.streams[s].report.framesRecovered, 3u);
            EXPECT_EQ(rj.streams[s].framesKept,
                      ownedBelow(cut, s, 4));
            EXPECT_EQ(rj.streams[s].keptBytes,
                      set.frameEnds[s][static_cast<std::size_t>(
                          rj.streams[s].framesKept)])
                << "stream " << s << " shortened by a flip at byte "
                << pos << " of stream 2";
        }
    }
}

} // namespace
} // namespace dp
