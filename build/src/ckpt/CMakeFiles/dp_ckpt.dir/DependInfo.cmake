
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ckpt/checkpoint.cc" "src/ckpt/CMakeFiles/dp_ckpt.dir/checkpoint.cc.o" "gcc" "src/ckpt/CMakeFiles/dp_ckpt.dir/checkpoint.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/dp_os.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/dp_vm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
