# Empty compiler generated dependencies file for dp_os.
# This may be replaced when dependencies are built.
