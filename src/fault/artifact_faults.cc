#include "fault/artifact_faults.hh"

#include "common/logging.hh"

namespace dp::artifact_faults
{

std::vector<std::uint8_t>
truncateTail(std::span<const std::uint8_t> bytes, Rng &rng)
{
    dp_assert(bytes.size() >= 2, "artifact too small to truncate");
    const std::size_t keep =
        1 + static_cast<std::size_t>(rng.below(bytes.size() - 1));
    return {bytes.begin(), bytes.begin() + static_cast<long>(keep)};
}

std::vector<std::uint8_t>
flipByte(std::span<const std::uint8_t> bytes, Rng &rng,
         std::size_t min_offset)
{
    dp_assert(min_offset < bytes.size(),
              "flip offset past the artifact");
    std::vector<std::uint8_t> out(bytes.begin(), bytes.end());
    const std::size_t pos =
        min_offset +
        static_cast<std::size_t>(rng.below(bytes.size() - min_offset));
    out[pos] ^= static_cast<std::uint8_t>(1 + rng.below(255));
    return out;
}

std::vector<std::uint8_t>
corruptSectionLength(std::span<const std::uint8_t> bytes,
                     std::span<const std::size_t> length_offsets,
                     Rng &rng)
{
    dp_assert(!length_offsets.empty(),
              "no length-prefixed sections to corrupt");
    std::vector<std::uint8_t> out(bytes.begin(), bytes.end());
    const std::size_t off =
        length_offsets[rng.below(length_offsets.size())];
    dp_assert(off < out.size(), "section offset past the artifact");
    // A varint far larger than any artifact could hold; bytes that do
    // not fit are simply dropped (a truncated varint is equally bad).
    const std::uint8_t huge[] = {0xff, 0xff, 0xff, 0xff, 0x0f};
    for (std::size_t i = 0; i < sizeof(huge) && off + i < out.size();
         ++i)
        out[off + i] = huge[i];
    return out;
}

} // namespace dp::artifact_faults
