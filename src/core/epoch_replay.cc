#include "core/epoch_replay.hh"

#include <optional>
#include <vector>

#include "common/logging.hh"
#include "os/simos.hh"
#include "os/uni_runner.hh"

namespace dp
{

bool
replayEpochOnMachine(Machine &m, const EpochRecord &epoch,
                     const CostModel &costs, Cycles &cycles,
                     std::uint64_t &instrs,
                     const ReplayObserver *observer)
{
    SimOS os(costs);

    std::size_t seg_cursor = 0;
    std::size_t rec_cursor = 0;
    std::size_t inject_cursor = 0;
    bool syscall_mismatch = false;

    // Pre-extract the injectable subset in order.
    std::vector<const SyscallRecord *> injectables;
    for (const SyscallRecord &r : epoch.syscalls.records())
        if (r.injectable)
            injectables.push_back(&r);

    UniHooks hooks;
    hooks.nextSegment = [&]() -> std::optional<ScheduleSegment> {
        if (seg_cursor >= epoch.schedule.segments().size())
            return std::nullopt;
        return epoch.schedule.segments()[seg_cursor++];
    };
    hooks.injectSyscall =
        [&](ThreadId tid, Sys sys) -> std::optional<std::uint64_t> {
        if (inject_cursor >= injectables.size()) {
            syscall_mismatch = true;
            return std::nullopt;
        }
        const SyscallRecord &r = *injectables[inject_cursor];
        if (r.tid != tid || r.sys != sys) {
            syscall_mismatch = true;
            return std::nullopt;
        }
        ++inject_cursor;
        return r.value;
    };
    hooks.onSyscall = [&](ThreadId tid, Sys sys, std::uint64_t value,
                          bool injectable) {
        // Deterministic calls re-execute; every completion must match
        // the recorded stream exactly (an end-to-end integrity check).
        const auto &recs = epoch.syscalls.records();
        if (rec_cursor >= recs.size()) {
            syscall_mismatch = true;
            return;
        }
        const SyscallRecord &r = recs[rec_cursor++];
        if (r.tid != tid || r.sys != sys || r.value != value ||
            r.injectable != injectable)
            syscall_mismatch = true;
    };

    if (observer) {
        hooks.onMemAccess = observer->onMemAccess;
        hooks.onSync = observer->onSync;
        hooks.onWake = observer->onWake;
        if (observer->onSyscall) {
            auto validate = hooks.onSyscall;
            auto observe = observer->onSyscall;
            hooks.onSyscall = [validate, observe](
                                  ThreadId tid, Sys sys,
                                  std::uint64_t value,
                                  bool injectable) {
                validate(tid, sys, value, injectable);
                observe(tid, sys, value, injectable);
            };
        }
    }

    UniOptions opts;
    opts.fuel = epoch.epInstrs + m.threads.size() + 16;
    opts.planSignals = true;
    opts.signalPlan = epoch.signals.events();

    UniRunner runner(m, os, std::move(opts), std::move(hooks));
    StopReason reason = runner.run();
    cycles += runner.stats().cycles;
    instrs += runner.stats().instrs;

    if (reason != StopReason::ScheduleEnded) {
        dp_warn("epoch replay stopped early: ", stopReasonName(reason));
        return false;
    }
    if (syscall_mismatch) {
        dp_warn("epoch replay: syscall stream mismatch");
        return false;
    }
    if (rec_cursor != epoch.syscalls.records().size()) {
        dp_warn("epoch replay: unconsumed syscall records");
        return false;
    }
    return m.stateHash() == epoch.endStateHash;
}

} // namespace dp
