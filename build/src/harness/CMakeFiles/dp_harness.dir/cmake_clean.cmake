file(REMOVE_RECURSE
  "CMakeFiles/dp_harness.dir/experiment.cc.o"
  "CMakeFiles/dp_harness.dir/experiment.cc.o.d"
  "libdp_harness.a"
  "libdp_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dp_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
