# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("mem")
subdirs("vm")
subdirs("os")
subdirs("log")
subdirs("ckpt")
subdirs("core")
subdirs("replay")
subdirs("analysis")
subdirs("baseline")
subdirs("timing")
subdirs("workloads")
subdirs("harness")
