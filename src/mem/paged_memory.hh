/**
 * @file
 * Copy-on-write paged guest memory.
 *
 * This is the checkpointing substrate that stands in for the kernel
 * fork()/CoW machinery DoublePlay used: snapshot() is O(resident pages)
 * pointer copies, and the cost of owning a snapshot is proportional to
 * the pages the execution subsequently dirties — the same cost structure
 * as hardware copy-on-write.
 *
 * Concurrency contract: a PagedMemory instance is used by one thread at
 * a time, but distinct instances may share pages (via snapshots) across
 * threads. Pages referenced by more than one table are never written in
 * place; shared_ptr reference counts arbitrate cloning.
 */

#ifndef DP_MEM_PAGED_MEMORY_HH
#define DP_MEM_PAGED_MEMORY_HH

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/types.hh"
#include "mem/page.hh"

namespace dp
{

/**
 * Immutable snapshot of an address space: a page table whose entries are
 * shared with (not copied from) the live memory it was taken from.
 */
class MemSnapshot
{
  public:
    MemSnapshot() = default;

    /** Content digest (absent and all-zero pages hash identically). */
    std::uint64_t hash() const;

    /** Number of table entries that reference a materialized page. */
    std::size_t residentPages() const;

  private:
    friend class PagedMemory;
    std::vector<PageRef> pages_;
};

/**
 * A flat 64-bit byte-addressable guest address space backed by
 * demand-allocated 4 KiB pages with copy-on-write snapshots.
 */
class PagedMemory
{
  public:
    /** @param max_pages hard cap on resident pages (OOM guard). */
    explicit PagedMemory(std::size_t max_pages = defaultMaxPages);

    /// @name Typed accessors (little-endian, any alignment)
    /// @{
    std::uint8_t read8(Addr a) const;
    std::uint16_t read16(Addr a) const;
    std::uint32_t read32(Addr a) const;
    std::uint64_t read64(Addr a) const;
    void write8(Addr a, std::uint8_t v);
    void write16(Addr a, std::uint16_t v);
    void write32(Addr a, std::uint32_t v);
    void write64(Addr a, std::uint64_t v);
    /// @}

    /** Copy a byte range out of guest memory. */
    void readBytes(Addr a, std::span<std::uint8_t> out) const;
    /** Copy a byte range into guest memory. */
    void writeBytes(Addr a, std::span<const std::uint8_t> in);
    /** Read a NUL-terminated guest string (bounded by @p max_len). */
    std::string readCString(Addr a, std::size_t max_len = 4096) const;

    /**
     * Take a snapshot and reset dirty tracking. All currently resident
     * pages become shared; the next write to each clones it.
     */
    MemSnapshot snapshot();

    /** Replace the address space contents with @p snap. */
    void restore(const MemSnapshot &snap);

    /** Content digest of the whole space (matches MemSnapshot::hash). */
    std::uint64_t hash() const;

    /** Page indices written since the last snapshot()/clearDirty(). */
    const std::vector<std::uint32_t> &dirtyPages() const
    {
        return dirtyList_;
    }

    /** Forget dirty tracking without snapshotting. */
    void clearDirty();

    /** Number of materialized pages. */
    std::size_t residentPages() const;

    /**
     * Page indices whose content differs from @p other (diagnostics for
     * divergence reports; compares actual bytes, not hashes).
     */
    std::vector<std::uint32_t> diffPages(const MemSnapshot &other) const;

    static constexpr std::size_t defaultMaxPages = std::size_t{1} << 20;

  private:
    /** Table slot for @p a's page, or nullptr if never materialized. */
    const Page *pageFor(Addr a) const;
    /** Materialize (and privatize) the page containing @p a. */
    Page &writablePage(Addr a);

    static std::size_t pageIndex(Addr a) { return a >> Page::logBytes; }
    static std::size_t pageOffset(Addr a)
    {
        return a & (Page::bytes - 1);
    }

    template <typename T> T readScalar(Addr a) const;
    template <typename T> void writeScalar(Addr a, T v);

    std::vector<PageRef> pages_;
    std::vector<bool> dirtyBitmap_;
    std::vector<std::uint32_t> dirtyList_;
    std::size_t maxPages_;
};

} // namespace dp

#endif // DP_MEM_PAGED_MEMORY_HH
