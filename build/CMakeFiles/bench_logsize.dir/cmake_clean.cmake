file(REMOVE_RECURSE
  "CMakeFiles/bench_logsize.dir/bench/bench_logsize.cc.o"
  "CMakeFiles/bench_logsize.dir/bench/bench_logsize.cc.o.d"
  "bench/bench_logsize"
  "bench/bench_logsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_logsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
