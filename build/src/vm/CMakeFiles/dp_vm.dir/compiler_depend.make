# Empty compiler generated dependencies file for dp_vm.
# This may be replaced when dependencies are built.
