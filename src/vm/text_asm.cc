#include "vm/text_asm.hh"

#include <cctype>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <vector>

#include "common/logging.hh"
#include "vm/assembler.hh"

namespace dp
{

namespace
{

/** How an opcode's operands are written in text. */
enum class OperandForm
{
    None,        ///< nop, syscall, halt
    RdImm,       ///< li rd, imm
    RdRs1,       ///< mov rd, rs1
    RdRs1Rs2,    ///< ALU / atomics
    RdRs1Imm,    ///< ALU-immediate and loads (rd, base, off)
    Rs1ImmRs2,   ///< stores (base, off, src)
    Rs1Rs2Label, ///< two-register branches
    Rs1Label,    ///< beqz / bnez
    Label,       ///< jmp
    RdLabel,     ///< jal
    Rs1,         ///< jr
};

OperandForm
formOf(Opcode op)
{
    switch (op) {
      case Opcode::Nop:
      case Opcode::Syscall:
      case Opcode::Halt:
        return OperandForm::None;
      case Opcode::Li:
        return OperandForm::RdImm;
      case Opcode::Mov:
        return OperandForm::RdRs1;
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::Divu:
      case Opcode::Remu:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Shl:
      case Opcode::Shr:
      case Opcode::Sar:
      case Opcode::SltU:
      case Opcode::SltS:
      case Opcode::Seq:
      case Opcode::Cas:
      case Opcode::FetchAdd:
      case Opcode::Xchg:
        return OperandForm::RdRs1Rs2;
      case Opcode::Addi:
      case Opcode::Andi:
      case Opcode::Ori:
      case Opcode::Xori:
      case Opcode::Shli:
      case Opcode::Shri:
      case Opcode::Muli:
      case Opcode::Ld8:
      case Opcode::Ld16:
      case Opcode::Ld32:
      case Opcode::Ld64:
        return OperandForm::RdRs1Imm;
      case Opcode::St8:
      case Opcode::St16:
      case Opcode::St32:
      case Opcode::St64:
        return OperandForm::Rs1ImmRs2;
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::BltU:
      case Opcode::BltS:
      case Opcode::BgeU:
      case Opcode::BgeS:
        return OperandForm::Rs1Rs2Label;
      case Opcode::Beqz:
      case Opcode::Bnez:
        return OperandForm::Rs1Label;
      case Opcode::Jmp:
        return OperandForm::Label;
      case Opcode::Jal:
        return OperandForm::RdLabel;
      case Opcode::Jr:
        return OperandForm::Rs1;
      default:
        dp_panic("formOf: unhandled opcode ",
                 static_cast<int>(op));
    }
}

const std::map<std::string, Opcode, std::less<>> &
mnemonicTable()
{
    static const auto table = [] {
        std::map<std::string, Opcode, std::less<>> t;
        for (unsigned i = 0;
             i < static_cast<unsigned>(Opcode::NumOpcodes); ++i) {
            auto op = static_cast<Opcode>(i);
            t.emplace(std::string(opcodeName(op)), op);
        }
        return t;
    }();
    return table;
}

/** Tokenizer state for one line. */
struct Line
{
    std::vector<std::string> tokens;
    std::size_t lineNo;
};

std::vector<Line>
tokenize(std::string_view text)
{
    std::vector<Line> lines;
    std::size_t line_no = 0;
    std::size_t pos = 0;
    while (pos <= text.size()) {
        std::size_t eol = text.find('\n', pos);
        if (eol == std::string_view::npos)
            eol = text.size();
        std::string_view line = text.substr(pos, eol - pos);
        ++line_no;
        pos = eol + 1;

        Line out{{}, line_no};
        std::size_t i = 0;
        while (i < line.size()) {
            char c = line[i];
            if (c == ';' || c == '#')
                break; // comment
            if (std::isspace(static_cast<unsigned char>(c)) ||
                c == ',') {
                ++i;
                continue;
            }
            if (c == '"') { // quoted string token (kept with quotes)
                std::size_t end = i + 1;
                while (end < line.size() && line[end] != '"')
                    ++end;
                dp_assert(end < line.size(),
                          "line ", line_no, ": unterminated string");
                out.tokens.emplace_back(line.substr(i, end - i + 1));
                i = end + 1;
                continue;
            }
            std::size_t end = i;
            while (end < line.size() && line[end] != ',' &&
                   line[end] != ';' && line[end] != '#' &&
                   !std::isspace(static_cast<unsigned char>(
                       line[end])))
                ++end;
            out.tokens.emplace_back(line.substr(i, end - i));
            i = end;
        }
        if (!out.tokens.empty())
            lines.push_back(std::move(out));
        if (eol == text.size())
            break;
    }
    return lines;
}

std::optional<Reg>
parseReg(std::string_view t)
{
    if (t.size() < 2 || t.size() > 3 || (t[0] != 'r' && t[0] != 'R'))
        return std::nullopt;
    unsigned n = 0;
    for (char c : t.substr(1)) {
        if (!std::isdigit(static_cast<unsigned char>(c)))
            return std::nullopt;
        n = n * 10 + static_cast<unsigned>(c - '0');
    }
    if (n >= numRegs)
        return std::nullopt;
    return static_cast<Reg>(n);
}

std::optional<std::int64_t>
parseInt(std::string_view t)
{
    if (t.empty())
        return std::nullopt;
    bool neg = t[0] == '-';
    if (neg)
        t.remove_prefix(1);
    if (t.empty())
        return std::nullopt;
    std::uint64_t value = 0;
    if (t.size() > 2 && t[0] == '0' && (t[1] == 'x' || t[1] == 'X')) {
        for (char c : t.substr(2)) {
            int d;
            if (c >= '0' && c <= '9')
                d = c - '0';
            else if (c >= 'a' && c <= 'f')
                d = c - 'a' + 10;
            else if (c >= 'A' && c <= 'F')
                d = c - 'A' + 10;
            else
                return std::nullopt;
            value = value * 16 + static_cast<std::uint64_t>(d);
        }
    } else {
        for (char c : t) {
            if (!std::isdigit(static_cast<unsigned char>(c)))
                return std::nullopt;
            value = value * 10 + static_cast<std::uint64_t>(c - '0');
        }
    }
    auto sv = static_cast<std::int64_t>(value);
    return neg ? -sv : sv;
}

} // namespace

GuestProgram
assembleText(std::string_view text, std::string name)
{
    std::vector<Line> lines = tokenize(text);

    Assembler a;
    std::map<std::string, Label, std::less<>> labels;
    std::string entry_label;
    auto labelFor = [&](std::string_view n) {
        auto it = labels.find(n);
        if (it != labels.end())
            return it->second;
        Label l = a.newLabel();
        labels.emplace(std::string(n), l);
        return l;
    };

    // Data-segment accumulation state.
    bool in_data = false;
    Addr data_base = 0;
    std::vector<std::uint8_t> data_bytes;
    auto flushData = [&] {
        if (in_data && !data_bytes.empty())
            a.dataBytes(data_base, data_bytes);
        data_bytes.clear();
        in_data = false;
    };

    for (const Line &line : lines) {
        const auto &toks = line.tokens;
        auto fail = [&](const std::string &why) {
            dp_fatal(name, " line ", line.lineNo, ": ", why);
        };
        auto reg = [&](std::size_t i) {
            if (i >= toks.size())
                fail("missing register operand");
            auto r = parseReg(toks[i]);
            if (!r)
                fail("bad register '" + toks[i] + "'");
            return *r;
        };
        auto imm = [&](std::size_t i) {
            if (i >= toks.size())
                fail("missing immediate operand");
            auto v = parseInt(toks[i]);
            if (!v)
                fail("bad immediate '" + toks[i] + "'");
            return *v;
        };
        auto target = [&](std::size_t i) {
            if (i >= toks.size())
                fail("missing branch target");
            return labelFor(toks[i]);
        };
        auto expectArity = [&](std::size_t n) {
            if (toks.size() != n + 1)
                fail("expected " + std::to_string(n) + " operands");
        };

        const std::string &head = toks[0];

        if (head.back() == ':') { // label definition
            flushData();
            std::string lbl = head.substr(0, head.size() - 1);
            if (lbl.empty())
                fail("empty label");
            Label l = labelFor(lbl);
            a.bind(l);
            if (toks.size() > 1)
                fail("label must be alone on its line");
            continue;
        }

        if (head == ".entry") {
            expectArity(1);
            entry_label = toks[1];
            continue;
        }
        if (head == ".data") {
            expectArity(1);
            flushData();
            in_data = true;
            data_base = static_cast<Addr>(imm(1));
            continue;
        }
        if (head == ".u64") {
            if (!in_data)
                fail(".u64 outside a .data segment");
            for (std::size_t i = 1; i < toks.size(); ++i) {
                auto v = static_cast<std::uint64_t>(imm(i));
                for (int b = 0; b < 8; ++b)
                    data_bytes.push_back(
                        static_cast<std::uint8_t>(v >> (8 * b)));
            }
            continue;
        }
        if (head == ".byte") {
            if (!in_data)
                fail(".byte outside a .data segment");
            for (std::size_t i = 1; i < toks.size(); ++i)
                data_bytes.push_back(
                    static_cast<std::uint8_t>(imm(i)));
            continue;
        }
        if (head == ".ascii") {
            if (!in_data)
                fail(".ascii outside a .data segment");
            expectArity(1);
            const std::string &s = toks[1];
            if (s.size() < 2 || s.front() != '"' || s.back() != '"')
                fail(".ascii needs a quoted string");
            for (std::size_t i = 1; i + 1 < s.size(); ++i)
                data_bytes.push_back(
                    static_cast<std::uint8_t>(s[i]));
            continue;
        }
        if (head[0] == '.')
            fail("unknown directive '" + head + "'");

        flushData();
        auto it = mnemonicTable().find(head);
        if (it == mnemonicTable().end())
            fail("unknown mnemonic '" + head + "'");
        Opcode op = it->second;

        switch (formOf(op)) {
          case OperandForm::None:
            expectArity(0);
            if (op == Opcode::Nop)
                a.nop();
            else if (op == Opcode::Syscall)
                a.syscall();
            else
                a.halt();
            break;
          case OperandForm::RdImm:
            expectArity(2);
            a.li(reg(1), imm(2));
            break;
          case OperandForm::RdRs1:
            expectArity(2);
            a.mov(reg(1), reg(2));
            break;
          case OperandForm::RdRs1Rs2: {
            expectArity(3);
            Reg rd = reg(1), rs1 = reg(2), rs2 = reg(3);
            switch (op) {
              case Opcode::Add: a.add(rd, rs1, rs2); break;
              case Opcode::Sub: a.sub(rd, rs1, rs2); break;
              case Opcode::Mul: a.mul(rd, rs1, rs2); break;
              case Opcode::Divu: a.divu(rd, rs1, rs2); break;
              case Opcode::Remu: a.remu(rd, rs1, rs2); break;
              case Opcode::And: a.and_(rd, rs1, rs2); break;
              case Opcode::Or: a.or_(rd, rs1, rs2); break;
              case Opcode::Xor: a.xor_(rd, rs1, rs2); break;
              case Opcode::Shl: a.shl(rd, rs1, rs2); break;
              case Opcode::Shr: a.shr(rd, rs1, rs2); break;
              case Opcode::Sar: a.sar(rd, rs1, rs2); break;
              case Opcode::SltU: a.sltu(rd, rs1, rs2); break;
              case Opcode::SltS: a.slts(rd, rs1, rs2); break;
              case Opcode::Seq: a.seq(rd, rs1, rs2); break;
              case Opcode::Cas: a.cas(rd, rs1, rs2); break;
              case Opcode::FetchAdd: a.fetchAdd(rd, rs1, rs2); break;
              case Opcode::Xchg: a.xchg(rd, rs1, rs2); break;
              default: fail("bad three-register opcode");
            }
            break;
          }
          case OperandForm::RdRs1Imm: {
            expectArity(3);
            Reg rd = reg(1), rs1 = reg(2);
            std::int64_t v = imm(3);
            switch (op) {
              case Opcode::Addi: a.addi(rd, rs1, v); break;
              case Opcode::Andi: a.andi(rd, rs1, v); break;
              case Opcode::Ori: a.ori(rd, rs1, v); break;
              case Opcode::Xori: a.xori(rd, rs1, v); break;
              case Opcode::Shli: a.shli(rd, rs1, v); break;
              case Opcode::Shri: a.shri(rd, rs1, v); break;
              case Opcode::Muli: a.muli(rd, rs1, v); break;
              case Opcode::Ld8: a.ld8(rd, rs1, v); break;
              case Opcode::Ld16: a.ld16(rd, rs1, v); break;
              case Opcode::Ld32: a.ld32(rd, rs1, v); break;
              case Opcode::Ld64: a.ld64(rd, rs1, v); break;
              default: fail("bad register-immediate opcode");
            }
            break;
          }
          case OperandForm::Rs1ImmRs2: {
            expectArity(3);
            Reg base = reg(1);
            std::int64_t off = imm(2);
            Reg src = reg(3);
            switch (op) {
              case Opcode::St8: a.st8(base, off, src); break;
              case Opcode::St16: a.st16(base, off, src); break;
              case Opcode::St32: a.st32(base, off, src); break;
              case Opcode::St64: a.st64(base, off, src); break;
              default: fail("bad store opcode");
            }
            break;
          }
          case OperandForm::Rs1Rs2Label: {
            expectArity(3);
            Reg rs1 = reg(1), rs2 = reg(2);
            Label t = target(3);
            switch (op) {
              case Opcode::Beq: a.beq(rs1, rs2, t); break;
              case Opcode::Bne: a.bne(rs1, rs2, t); break;
              case Opcode::BltU: a.bltu(rs1, rs2, t); break;
              case Opcode::BltS: a.blts(rs1, rs2, t); break;
              case Opcode::BgeU: a.bgeu(rs1, rs2, t); break;
              case Opcode::BgeS: a.bges(rs1, rs2, t); break;
              default: fail("bad branch opcode");
            }
            break;
          }
          case OperandForm::Rs1Label:
            expectArity(2);
            if (op == Opcode::Beqz)
                a.beqz(reg(1), target(2));
            else
                a.bnez(reg(1), target(2));
            break;
          case OperandForm::Label:
            expectArity(1);
            a.jmp(target(1));
            break;
          case OperandForm::RdLabel:
            expectArity(2);
            a.jal(reg(1), target(2));
            break;
          case OperandForm::Rs1:
            expectArity(1);
            a.jr(reg(1));
            break;
        }
    }
    flushData();
    if (!entry_label.empty()) {
        auto it = labels.find(entry_label);
        if (it == labels.end())
            dp_fatal(name, ": .entry label '", entry_label,
                     "' is never defined");
        a.setEntry(it->second);
    }
    return a.finish(std::move(name));
}

std::string
disassembleInstr(const Instr &in)
{
    std::ostringstream os;
    auto r = [](Reg x) {
        return "r" + std::to_string(static_cast<unsigned>(x));
    };
    os << opcodeName(in.op);
    switch (formOf(in.op)) {
      case OperandForm::None:
        break;
      case OperandForm::RdImm:
        os << " " << r(in.rd) << ", " << in.imm;
        break;
      case OperandForm::RdRs1:
        os << " " << r(in.rd) << ", " << r(in.rs1);
        break;
      case OperandForm::RdRs1Rs2:
        os << " " << r(in.rd) << ", " << r(in.rs1) << ", "
           << r(in.rs2);
        break;
      case OperandForm::RdRs1Imm:
        os << " " << r(in.rd) << ", " << r(in.rs1) << ", " << in.imm;
        break;
      case OperandForm::Rs1ImmRs2:
        os << " " << r(in.rs1) << ", " << in.imm << ", " << r(in.rs2);
        break;
      case OperandForm::Rs1Rs2Label:
        os << " " << r(in.rs1) << ", " << r(in.rs2) << ", L"
           << in.imm;
        break;
      case OperandForm::Rs1Label:
        os << " " << r(in.rs1) << ", L" << in.imm;
        break;
      case OperandForm::Label:
        os << " L" << in.imm;
        break;
      case OperandForm::RdLabel:
        os << " " << r(in.rd) << ", L" << in.imm;
        break;
      case OperandForm::Rs1:
        os << " " << r(in.rs1);
        break;
    }
    return os.str();
}

std::string
disassemble(const GuestProgram &prog)
{
    // Collect control-flow targets so they get labels.
    std::set<std::uint64_t> targets;
    for (const Instr &in : prog.code) {
        switch (formOf(in.op)) {
          case OperandForm::Rs1Rs2Label:
          case OperandForm::Rs1Label:
          case OperandForm::Label:
          case OperandForm::RdLabel:
            targets.insert(static_cast<std::uint64_t>(in.imm));
            break;
          default:
            break;
        }
    }
    targets.insert(prog.entry);

    std::ostringstream os;
    os << "; program: " << prog.name << "\n";
    for (const auto &[base, bytes] : prog.dataSegments) {
        os << ".data 0x" << std::hex << base << std::dec << "\n";
        os << ".byte";
        for (std::size_t i = 0; i < bytes.size(); ++i) {
            if (i && i % 16 == 0)
                os << "\n.byte";
            os << " " << static_cast<unsigned>(bytes[i]);
        }
        os << "\n";
    }
    os << ".entry L" << prog.entry << "\n";
    for (std::size_t i = 0; i < prog.code.size(); ++i) {
        if (targets.count(i))
            os << "L" << i << ":\n";
        os << "    " << disassembleInstr(prog.code[i]) << "\n";
    }
    // A trailing label target (branch to one-past-the-end).
    if (targets.count(prog.code.size()))
        os << "L" << prog.code.size() << ":\n";
    return os.str();
}

} // namespace dp
