/**
 * @file
 * LiveReplica: a hot-standby machine fed committed epochs online.
 *
 * The paper points out that uniparallel logs are cheap enough to
 * stream to another machine, which can replay epochs as they commit
 * and stand ready to take over (fault tolerance via replay). This is
 * that consumer: feed it each validated EpochRecord in order and it
 * maintains a machine whose state always equals the last committed
 * epoch boundary — verified against the recorded digest on every
 * apply.
 */

#ifndef DP_REPLAY_LIVE_REPLICA_HH
#define DP_REPLAY_LIVE_REPLICA_HH

#include <cstdint>
#include <optional>
#include <string>

#include "core/recording.hh"
#include "timing/cost_model.hh"

namespace dp
{

/** Why a replica refused an epoch: the digest check failed. */
struct ApplyError
{
    /** Index of the epoch (in apply order) that diverged. */
    std::uint64_t epoch = 0;
    /** Digest the recording says the epoch boundary should have. */
    std::uint64_t expectedDigest = 0;
    /** Digest the replica's machine actually reached. */
    std::uint64_t actualDigest = 0;

    bool operator==(const ApplyError &) const = default;

    /** One-line human-readable rendering for logs and the CLI. */
    std::string describe() const;
};

/** An incrementally-replayed standby of a recorded execution. */
class LiveReplica
{
  public:
    LiveReplica(const GuestProgram &prog, MachineConfig cfg,
                CostModel costs = {})
        : machine_(prog, std::move(cfg)), costs_(costs)
    {}
    /** The replica keeps a pointer to the program; see Machine. */
    LiveReplica(GuestProgram &&, MachineConfig, CostModel = {}) =
        delete;

    /**
     * Replay @p epoch on the standby; must be called in commit
     * order. Returns std::nullopt on success, or the ApplyError that
     * made the replica fail closed. Once an apply fails every later
     * apply is refused with the same (first) error.
     */
    std::optional<ApplyError> apply(const EpochRecord &epoch);

    /** The standby's state: the last committed epoch boundary. */
    const Machine &machine() const { return machine_; }

    /** Take over: hand the standby machine to the caller. The
     *  replica must not be used afterwards. */
    Machine takeOver() && { return std::move(machine_); }

    std::uint32_t epochsApplied() const { return applied_; }
    bool healthy() const { return !error_.has_value(); }
    /** The first apply failure, if any (the replica is fail-closed). */
    const std::optional<ApplyError> &error() const { return error_; }
    Cycles replayCycles() const { return cycles_; }

  private:
    Machine machine_;
    CostModel costs_;
    std::uint32_t applied_ = 0;
    std::optional<ApplyError> error_;
    Cycles cycles_ = 0;
    std::uint64_t instrs_ = 0;
};

} // namespace dp

#endif // DP_REPLAY_LIVE_REPLICA_HH
