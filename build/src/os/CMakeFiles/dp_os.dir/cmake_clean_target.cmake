file(REMOVE_RECURSE
  "libdp_os.a"
)
