file(REMOVE_RECURSE
  "CMakeFiles/signal_test.dir/signal_test.cc.o"
  "CMakeFiles/signal_test.dir/signal_test.cc.o.d"
  "signal_test"
  "signal_test.pdb"
  "signal_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/signal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
