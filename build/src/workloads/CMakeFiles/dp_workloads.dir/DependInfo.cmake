
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/registry.cc" "src/workloads/CMakeFiles/dp_workloads.dir/registry.cc.o" "gcc" "src/workloads/CMakeFiles/dp_workloads.dir/registry.cc.o.d"
  "/root/repo/src/workloads/wl_client.cc" "src/workloads/CMakeFiles/dp_workloads.dir/wl_client.cc.o" "gcc" "src/workloads/CMakeFiles/dp_workloads.dir/wl_client.cc.o.d"
  "/root/repo/src/workloads/wl_common.cc" "src/workloads/CMakeFiles/dp_workloads.dir/wl_common.cc.o" "gcc" "src/workloads/CMakeFiles/dp_workloads.dir/wl_common.cc.o.d"
  "/root/repo/src/workloads/wl_fft.cc" "src/workloads/CMakeFiles/dp_workloads.dir/wl_fft.cc.o" "gcc" "src/workloads/CMakeFiles/dp_workloads.dir/wl_fft.cc.o.d"
  "/root/repo/src/workloads/wl_lu.cc" "src/workloads/CMakeFiles/dp_workloads.dir/wl_lu.cc.o" "gcc" "src/workloads/CMakeFiles/dp_workloads.dir/wl_lu.cc.o.d"
  "/root/repo/src/workloads/wl_ocean.cc" "src/workloads/CMakeFiles/dp_workloads.dir/wl_ocean.cc.o" "gcc" "src/workloads/CMakeFiles/dp_workloads.dir/wl_ocean.cc.o.d"
  "/root/repo/src/workloads/wl_pipeline.cc" "src/workloads/CMakeFiles/dp_workloads.dir/wl_pipeline.cc.o" "gcc" "src/workloads/CMakeFiles/dp_workloads.dir/wl_pipeline.cc.o.d"
  "/root/repo/src/workloads/wl_racy.cc" "src/workloads/CMakeFiles/dp_workloads.dir/wl_racy.cc.o" "gcc" "src/workloads/CMakeFiles/dp_workloads.dir/wl_racy.cc.o.d"
  "/root/repo/src/workloads/wl_radix.cc" "src/workloads/CMakeFiles/dp_workloads.dir/wl_radix.cc.o" "gcc" "src/workloads/CMakeFiles/dp_workloads.dir/wl_radix.cc.o.d"
  "/root/repo/src/workloads/wl_server.cc" "src/workloads/CMakeFiles/dp_workloads.dir/wl_server.cc.o" "gcc" "src/workloads/CMakeFiles/dp_workloads.dir/wl_server.cc.o.d"
  "/root/repo/src/workloads/wl_water.cc" "src/workloads/CMakeFiles/dp_workloads.dir/wl_water.cc.o" "gcc" "src/workloads/CMakeFiles/dp_workloads.dir/wl_water.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vm/CMakeFiles/dp_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/dp_os.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
