# Empty compiler generated dependencies file for dp_log.
# This may be replaced when dependencies are built.
