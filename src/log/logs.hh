/**
 * @file
 * Replay log containers with compact binary encodings.
 *
 * Three streams make up a DoublePlay recording:
 *  - ScheduleLog: the epoch-parallel run's timeslice segments — the
 *    entire scheduling nondeterminism of a uniprocessor execution;
 *  - SyscallLog: completed syscall results (injectable ones are what
 *    replay injects; the rest serve as validation);
 *  - SyncOrderLog: the global order of synchronization operations
 *    observed by the thread-parallel run. This stream never leaves the
 *    recorder (it constrains the epoch-parallel run) but is accounted
 *    separately so benchmarks can report its size.
 *
 * Sizes reported by sizeBytes() are the actual varint-encoded sizes,
 * so E5's log-size table reflects a realistic on-disk format.
 */

#ifndef DP_LOG_LOGS_HH
#define DP_LOG_LOGS_HH

#include <cstdint>
#include <vector>

#include "common/bytes.hh"
#include "common/types.hh"
#include "os/uni_runner.hh"
#include "vm/abi.hh"

namespace dp
{

/** One observed synchronization operation. */
struct SyncEvent
{
    ThreadId tid = 0;
    SyncKind kind = SyncKind::Atomic;
    /** The synchronization object acted on (see SyncKey). */
    SyncKey key = globalSyncKey;

    bool operator==(const SyncEvent &) const = default;
};

/**
 * Sync operations of one epoch in thread-parallel execution order.
 * Consumers enforce the *per-key* suborders; the flat sequence is just
 * the storage format.
 */
class SyncOrderLog
{
  public:
    void append(ThreadId tid, SyncKind kind, SyncKey key);

    const std::vector<SyncEvent> &events() const { return events_; }
    std::size_t size() const { return events_.size(); }

    std::vector<std::uint8_t> encode() const;
    static SyncOrderLog decode(std::span<const std::uint8_t> bytes);
    std::size_t sizeBytes() const;

    bool operator==(const SyncOrderLog &) const = default;

  private:
    std::vector<SyncEvent> events_;
};

/** Timeslice schedule of one epoch's uniprocessor execution. */
class ScheduleLog
{
  public:
    void append(const ScheduleSegment &seg);

    const std::vector<ScheduleSegment> &segments() const
    {
        return segments_;
    }
    std::size_t size() const { return segments_.size(); }

    std::vector<std::uint8_t> encode() const;
    static ScheduleLog decode(std::span<const std::uint8_t> bytes);
    std::size_t sizeBytes() const;

    bool operator==(const ScheduleLog &) const = default;

  private:
    std::vector<ScheduleSegment> segments_;
};

/** Signal-delivery points of one epoch (see SignalEvent). */
class SignalLog
{
  public:
    void append(const SignalEvent &e) { events_.push_back(e); }

    const std::vector<SignalEvent> &events() const { return events_; }
    std::size_t size() const { return events_.size(); }

    std::vector<std::uint8_t> encode() const;
    static SignalLog decode(std::span<const std::uint8_t> bytes);
    std::size_t sizeBytes() const;

    bool operator==(const SignalLog &) const = default;

  private:
    std::vector<SignalEvent> events_;
};

/** One completed syscall. */
struct SyscallRecord
{
    ThreadId tid = 0;
    Sys sys = Sys::Exit;
    std::uint64_t value = 0;
    bool injectable = false;

    bool operator==(const SyscallRecord &) const = default;
};

/** Completed syscalls of one epoch, in execution order. */
class SyscallLog
{
  public:
    void append(const SyscallRecord &rec);

    const std::vector<SyscallRecord> &records() const
    {
        return records_;
    }
    std::size_t size() const { return records_.size(); }

    /** Bytes for the injectable subset only (the part replay strictly
     *  needs). */
    std::size_t injectableSizeBytes() const;

    std::vector<std::uint8_t> encode() const;
    static SyscallLog decode(std::span<const std::uint8_t> bytes);
    std::size_t sizeBytes() const;

    bool operator==(const SyscallLog &) const = default;

  private:
    std::vector<SyscallRecord> records_;
};

} // namespace dp

#endif // DP_LOG_LOGS_HH
