/**
 * @file
 * Unit tests for the fluid pipeline model against hand-computed
 * schedules.
 */

#include <gtest/gtest.h>

#include "timing/pipeline.hh"

namespace dp
{
namespace
{

PipelineOptions
machine(CpuId workers, CpuId total, std::uint32_t window = 0)
{
    PipelineOptions o;
    o.workerCpus = workers;
    o.totalCpus = total;
    o.maxInFlight = window;
    return o;
}

TEST(Pipeline, SingleEpochIsSequential)
{
    // tp runs 100, hands off, ep runs 200: completion 300.
    std::vector<EpochTiming> epochs{{100, 200, false}};
    PipelineResult r = PipelineModel::run(epochs, machine(2, 4));
    EXPECT_EQ(r.completion, 300u);
    EXPECT_EQ(r.tpCompletion, 100u);
    EXPECT_DOUBLE_EQ(r.meanEpochLag, 200.0);
}

TEST(Pipeline, PerfectOverlapWithSpareCores)
{
    // Each epoch: tp 100 on 2 CPUs, ep 150 on spare capacity 2.
    // At most two eps overlap (demand 4 == C), so everything runs at
    // full speed: tp hands off the last epoch at 1000 and its ep
    // tails 150 beyond it.
    std::vector<EpochTiming> epochs(10, {100, 150, false});
    PipelineResult r = PipelineModel::run(epochs, machine(2, 4));
    EXPECT_EQ(r.tpCompletion, 1000u);
    EXPECT_EQ(r.completion, 1150u);
    EXPECT_LE(r.peakInFlight, 2u);
}

TEST(Pipeline, NoSpareCoresSerializes)
{
    // C == N: total work per epoch = tp (N CPUs * 100) + ep (100).
    // Fair sharing stretches everything; completion must be well
    // beyond tp-only and at least total-work / capacity.
    std::vector<EpochTiming> epochs(10, {100, 200, false});
    PipelineResult rs = PipelineModel::run(epochs, machine(2, 4));
    PipelineResult rn = PipelineModel::run(epochs, machine(2, 2));
    EXPECT_GT(rn.completion, rs.completion);
    // Work conservation lower bound: N*sum(tp) + sum(ep) cpu-cycles
    // over C cpus = (2*1000 + 2000) / 2 = 2000.
    EXPECT_GE(rn.completion, 2000u);
}

TEST(Pipeline, EpBacklogDominatesWhenSlow)
{
    // ep takes 4x the epoch on one CPU with only 1 spare: backlog
    // grows; completion ~ sum(ep) once saturated.
    std::vector<EpochTiming> epochs(10, {100, 400, false});
    PipelineResult r = PipelineModel::run(epochs, machine(1, 2));
    // Work conservation: (1*1000 tp + 4000 ep) cpu-cycles / 2 cpus.
    EXPECT_GE(r.completion, 2500u);
    EXPECT_GT(r.peakInFlight, 3u);
}

TEST(Pipeline, WindowBoundsInFlightEpochs)
{
    std::vector<EpochTiming> epochs(10, {100, 400, false});
    PipelineResult free_run =
        PipelineModel::run(epochs, machine(1, 2));
    PipelineResult bounded =
        PipelineModel::run(epochs, machine(1, 2, 2));
    EXPECT_LE(bounded.peakInFlight, 2u);
    EXPECT_GT(free_run.peakInFlight, 2u);
    // Bounding the window cannot make completion earlier.
    EXPECT_GE(bounded.completion, free_run.completion);
}

TEST(Pipeline, DivergenceFlushesThePipeline)
{
    // Without divergence, tp streams ahead; with a diverged epoch 0,
    // tp may not start epoch 1 until ep0 completes.
    std::vector<EpochTiming> clean(3, {100, 100, false});
    std::vector<EpochTiming> diverged = clean;
    diverged[0].diverged = true;
    PipelineResult rc = PipelineModel::run(clean, machine(2, 4));
    PipelineResult rd = PipelineModel::run(diverged, machine(2, 4));
    EXPECT_GT(rd.completion, rc.completion);
    // Flush: ep0 ends at 200, tp then runs epochs 1,2 (200 cycles),
    // ep2 tails 100 more: completion 500.
    EXPECT_EQ(rd.completion, 500u);
}

TEST(Pipeline, EmptyInputYieldsZero)
{
    PipelineResult r = PipelineModel::run({}, machine(2, 4));
    EXPECT_EQ(r.completion, 0u);
    EXPECT_EQ(r.peakInFlight, 0u);
}

TEST(Pipeline, ZeroLengthEpochsDoNotWedge)
{
    std::vector<EpochTiming> epochs{{0, 0, false},
                                    {100, 50, false},
                                    {0, 0, false}};
    PipelineResult r = PipelineModel::run(epochs, machine(2, 4));
    EXPECT_GE(r.completion, 100u);
    EXPECT_LE(r.completion, 200u);
}

} // namespace
} // namespace dp
