/**
 * @file
 * E14 (extension) — hot-standby lag and failover time.
 *
 * The paper's fault-tolerance story (§ future work) streams the
 * uniparallel journal to a second machine that replays epochs as
 * they commit. This bench measures the standby's two service
 * numbers across epoch rate × link fault rate:
 *
 *   1. Lag: ship a journaled workload epoch-by-epoch through the
 *      in-process link (src/ship) and record the standby's max
 *      persisted-replayed lag plus the retry cost the fault rate
 *      charged.
 *   2. Failover: after the last epoch, kill the primary and promote
 *      the standby; the failover time is promote()'s wall clock —
 *      draining the apply strand and handing out the machine.
 *
 * JSON rows (dp-bench-v1): `name` is ship:<workload>@e<epochLength
 * in k>,f<fault %>; `workers` holds the link fault rate in percent;
 * `overhead` holds retries per transmitted batch; `logBytes` holds
 * the failover wall-clock in microseconds; `epochs` holds the
 * epochs the promoted standby replayed. Every row's promoted state
 * hash is verified against the source recording before the row is
 * emitted — a divergence fails the bench.
 */

#include <chrono>

#include "bench_common.hh"
#include "core/recorder.hh"
#include "fault/fault.hh"
#include "journal/sharded.hh"
#include "ship/link.hh"
#include "ship/sender.hh"
#include "ship/standby.hh"
#include "workloads/registry.hh"

using namespace dp;
using namespace dp::bench;

namespace
{

using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(Clock::now() -
                                                     t0)
        .count();
}

struct ShipMeasurement
{
    double shipMs = 0.0;     ///< record + ship, wall
    double failoverMs = 0.0; ///< promote(), wall
    std::uint64_t epochs = 0;
    std::uint64_t maxLag = 0;
    std::uint64_t retries = 0;
    std::uint64_t batches = 0;
    bool converged = false;
};

/** Record @p epoch_length-sized epochs while shipping them live to
 *  a standby across a link losing batches at @p fault_rate. */
ShipMeasurement
measure(std::uint64_t epoch_length, double fault_rate,
        std::uint64_t seed)
{
    const workloads::Workload *w = workloads::findWorkload("pfscan");
    workloads::WorkloadBundle b =
        w->make({.threads = 2, .scale = 16});
    RecorderOptions opts;
    opts.workerCpus = 2;
    opts.epochLength = epoch_length;
    opts.keepCheckpoints = false;

    ShardedJournalWriter journal(b.program, b.config,
                                 recorderOptionsFingerprint(opts),
                                 {.streams = 2});
    journal.enableAsyncCommit();

    FaultPlan plan;
    plan.seed = seed;
    plan.with(FaultSite::LinkDrop, fault_rate)
        .with(FaultSite::LinkTornBatch, fault_rate / 2)
        .with(FaultSite::LinkDuplicate, fault_rate / 2);
    FaultInjector faults(plan);

    StandbyApplier standby({.lagBound = 8, .faults = &faults});
    ShipLink link(standby, &faults);
    ShipSenderOptions sopts;
    sopts.batchBytes = 16 * 1024;
    sopts.maxAttempts = 64;
    sopts.seed = seed + 1;
    ShipSender sender(
        link, journal.streams(),
        [&](unsigned s) -> std::span<const std::uint8_t> {
            return journal.streamBytes(s);
        },
        sopts);

    RecordObserver obs;
    obs.addEpochSink([&](const EpochRecord &e, EpochId index) {
        journal.appendEpoch(e, index);
        sender.noteEpochCommitted();
        sender.pump();
    });

    ShipMeasurement m;
    auto t0 = Clock::now();
    UniparallelRecorder rec(b.program, b.config, opts);
    RecordOutcome out = rec.record(&obs);
    sender.pump();
    m.shipMs = msSince(t0);

    auto t1 = Clock::now();
    Promotion p = standby.promote();
    m.failoverMs = msSince(t1);

    m.epochs = p.report.replayedEpochs;
    m.maxLag = standby.stats().maxLag;
    m.retries = sender.stats().retries;
    m.batches = sender.stats().batchesSent;
    m.converged =
        out.ok && !sender.failed() && p.report.promoted &&
        p.report.replayedEpochs == out.recording.epochs.size() &&
        p.report.finalStateHash == out.recording.finalStateHash;
    return m;
}

} // namespace

int
main()
{
    banner("E14 (extension: standby lag)",
           "hot-standby lag and failover time across epoch rate x "
           "link fault rate",
           "[extension] beyond the paper's eval; journal shipping "
           "per its fault-tolerance discussion");

    const std::uint64_t epochLengths[] = {60'000, 150'000};
    const double faultRates[] = {0.0, 0.1, 0.3};

    std::vector<BenchResult> rows;
    Table t({"epoch len", "fault %", "epochs", "ship ms",
             "batches", "retries", "max lag", "failover ms",
             "converged"});
    bool allConverged = true;
    for (std::uint64_t el : epochLengths) {
        for (double fr : faultRates) {
            ShipMeasurement m =
                measure(el, fr,
                        0xbe9c ^ el ^
                            static_cast<std::uint64_t>(fr * 100));
            allConverged = allConverged && m.converged;
            t.addRow({Table::num(el / 1000) + "k",
                      Table::num(fr * 100, 0), Table::num(m.epochs),
                      Table::num(m.shipMs, 1), Table::num(m.batches),
                      Table::num(m.retries), Table::num(m.maxLag),
                      Table::num(m.failoverMs, 2),
                      m.converged ? "yes" : "NO"});
            BenchResult row;
            row.name = "ship:pfscan@e" +
                       std::to_string(el / 1000) + "k,f" +
                       std::to_string(
                           static_cast<int>(fr * 100));
            row.workload = "pfscan";
            row.workers =
                static_cast<std::uint32_t>(fr * 100) + 1;
            row.overhead =
                m.batches > 0 ? static_cast<double>(m.retries) /
                                    static_cast<double>(m.batches)
                              : 0.0;
            row.logBytes = static_cast<std::uint64_t>(
                m.failoverMs * 1000.0) + 1;
            row.epochs = m.epochs;
            rows.push_back(row);
        }
    }
    t.print(std::cout);
    std::cout << "failover is a drain of at most lagBound epochs: "
                 "milliseconds, not a cold-restart replay\n";
    if (!allConverged) {
        std::cerr << "standby diverged from the primary\n";
        return 1;
    }
    return emitBenchJson("standby_lag", rows) ? 0 : 1;
}
