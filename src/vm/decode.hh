/**
 * @file
 * Decoded guest code: the interpreter's dispatch-ready form.
 *
 * The interpreter's inner loop should not re-derive anything per
 * instruction that is a pure function of the program text. Decoding
 * pre-resolves, per instruction:
 *  - the dispatch handler (a computed-goto label address in threaded
 *    builds; unused in the portable switch fallback),
 *  - a class bitmask (syscall / atomic / memory), so the block runner
 *    can test "must I stop here?" with one AND, and
 *  - the operands, widened to plain integers.
 *
 * A DecodedProgram is immutable once built and is memoized on its
 * GuestProgram keyed by the program's code stamp: re-assembling or
 * editing code bumps the stamp (GuestProgram::invalidateCode), so a
 * stale decode can never be dispatched — the interpreter re-checks
 * the stamp before every block (vm_test pins the resume-after-
 * reassembly case).
 */

#ifndef DP_VM_DECODE_HH
#define DP_VM_DECODE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "vm/isa.hh"

namespace dp
{

struct GuestProgram;

/** Instruction class bits (DecodedInstr::cls). A block run stops
 *  *before* any instruction whose class intersects its stop mask. */
enum : std::uint8_t
{
    ClsSyscall = 1, ///< traps to the OS; never executed in a block
    ClsAtomic = 2,  ///< guest sync op (always also ClsMem)
    ClsMem = 4,     ///< reads or writes guest memory
};

/** One dispatch-ready instruction. */
struct DecodedInstr
{
    /** Threaded-dispatch target (label address inside the block
     *  runner); nullptr in switch-fallback builds. */
    const void *handler = nullptr;
    Opcode op = Opcode::Nop;
    std::uint8_t cls = 0;
    std::uint8_t rd = 0;
    std::uint8_t rs1 = 0;
    std::uint8_t rs2 = 0;
    std::int64_t imm = 0;
};

/** Decoded form of one GuestProgram's code, tied to the code stamp it
 *  was built from. */
struct DecodedProgram
{
    std::uint64_t stamp = 0;
    std::vector<DecodedInstr> code;

    /** Decode @p prog's current code (records prog.codeStamp()). */
    static std::shared_ptr<const DecodedProgram>
    build(const GuestProgram &prog);
};

/** Class bitmask of @p op (see the Cls constants). */
std::uint8_t opcodeClass(Opcode op);

/**
 * Handler table of the threaded block runner, indexed by opcode, with
 * one extra trailing slot for invalid encodings. nullptr when the
 * build uses the portable switch fallback (DP_THREADED_DISPATCH off
 * or a non-GNU compiler). Defined in interp.cc — the labels live in
 * the block runner.
 */
const void *const *interpDispatchTable();

} // namespace dp

#endif // DP_VM_DECODE_HH
