; fib.s — iterative Fibonacci; exits with fib(30) mod 2^16.
    li r1, 0          ; a
    li r2, 1          ; b
    li r3, 30         ; n
loop:
    beqz r3, done
    add  r4, r1, r2
    mov  r1, r2
    mov  r2, r4
    addi r3, r3, -1
    jmp  loop
done:
    andi r1, r1, 0xffff
    li   r0, 0        ; exit(a)
    syscall
