# Empty dependencies file for guest_programs_test.
# This may be replaced when dependencies are built.
