/**
 * @file
 * E4 — logging overhead WITHOUT spare cores (C = N).
 *
 * Uniparallelism runs the application twice; without spare cores the
 * two executions contend for the same CPUs, so overhead should rise
 * to roughly 100% (the second execution's work) and beyond for
 * workloads whose single-CPU epoch runs are inflated by
 * serialization. The crossover against the spare-core configuration
 * is the figure's point.
 */

#include "bench_common.hh"

using namespace dp;
using namespace dp::bench;

int
main()
{
    banner("E4 (Fig: overhead, no spare cores)",
           "DoublePlay logging overhead, C = N CPUs",
           "[recon] the paper reports ~2x slowdown without spare "
           "cores; shape: no-spare >> with-spare, near 100%+");

    Table t({"benchmark", "threads", "with spare", "no spare",
             "no-spare/with-spare"});

    RunningStat spare_s, nospare_s;
    for (const auto &w : workloads::allWorkloads()) {
        for (std::uint32_t n : {2u, 4u}) {
            harness::MeasureOptions with_spare = defaultOptions(n);
            harness::MeasureOptions no_spare = with_spare;
            no_spare.totalCpus = n;

            harness::Measurement ms = harness::measure(w, with_spare);
            harness::Measurement mn = harness::measure(w, no_spare);
            if (!ms.recordOk || !mn.recordOk) {
                std::cerr << "record failed for " << w.name << "\n";
                return 1;
            }
            if (n == 2) {
                spare_s.add(ms.slowdown);
                nospare_s.add(mn.slowdown);
            }
            t.addRow({w.name, std::to_string(n),
                      Table::pct(ms.overhead), Table::pct(mn.overhead),
                      Table::num(mn.slowdown / ms.slowdown, 2) + "x"});
        }
    }
    t.print(std::cout);
    std::cout << "\n2T geomean: with spare "
              << Table::pct(spare_s.geomean() - 1.0) << ", no spare "
              << Table::pct(nospare_s.geomean() - 1.0) << "\n";
    return 0;
}
