/**
 * @file
 * ReplayDebugger: time-travel inspection of a recording.
 *
 * Deterministic replay turns debugging from "hope it reproduces" into
 * navigation: jump to any epoch of the recorded execution, inspect
 * the exact machine state, watch every access to an address range,
 * and search for the first epoch where a state predicate holds. When
 * the recording retained checkpoints, backward jumps are O(1)
 * materializations instead of replays from the start.
 */

#ifndef DP_ANALYSIS_DEBUGGER_HH
#define DP_ANALYSIS_DEBUGGER_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "replay/replayer.hh"

namespace dp
{

/** One observed access to a watched range. */
struct WatchedAccess
{
    EpochId epoch = 0;
    ThreadId tid = 0;
    Addr addr = 0;
    unsigned size = 0;
    bool isWrite = false;
    bool isAtomic = false;
};

/** Epoch-granular time-travel debugger over one Recording. */
class ReplayDebugger
{
  public:
    explicit ReplayDebugger(const Recording &rec,
                            CostModel costs = {});

    /** Epoch boundary the machine currently sits at (state = start
     *  of this epoch). epochCount() means "after the last epoch". */
    EpochId position() const { return position_; }
    std::uint32_t epochCount() const;

    /** The exact recorded machine state at the current boundary. */
    const Machine &machine() const { return machine_; }

    /**
     * Move to the start of @p epoch (<= epochCount()). Backward moves
     * rewind via checkpoints when available, else replay from the
     * initial state. Returns false if a replayed epoch fails to
     * verify (corrupt recording).
     */
    bool seek(EpochId epoch);

    /** Replay the current epoch and advance one boundary. */
    bool step();

    /**
     * Replay the current epoch collecting every access intersecting
     * [addr, addr+len); the position does not advance.
     */
    std::optional<std::vector<WatchedAccess>> watch(Addr addr,
                                                    std::uint64_t len);

    /**
     * First boundary index b (0..epochCount()) whose state satisfies
     * @p pred, scanning forward from boundary 0; nullopt if none.
     * The position afterwards is at the found boundary (or the end).
     */
    std::optional<EpochId>
    findFirstBoundary(const std::function<bool(const Machine &)> &pred);

    /// @name Convenience state accessors
    /// @{
    std::uint64_t readWord(Addr a) const { return machine_.mem.read64(a); }
    const ThreadContext &thread(ThreadId t) const
    {
        return machine_.thread(t);
    }
    /// @}

  private:
    void resetToStart();

    const Recording *rec_;
    Replayer replayer_;
    Machine machine_;
    EpochId position_ = 0;
};

} // namespace dp

#endif // DP_ANALYSIS_DEBUGGER_HH
