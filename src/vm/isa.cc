#include "vm/isa.hh"

namespace dp
{

std::string_view
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Nop: return "nop";
      case Opcode::Li: return "li";
      case Opcode::Mov: return "mov";
      case Opcode::Add: return "add";
      case Opcode::Sub: return "sub";
      case Opcode::Mul: return "mul";
      case Opcode::Divu: return "divu";
      case Opcode::Remu: return "remu";
      case Opcode::And: return "and";
      case Opcode::Or: return "or";
      case Opcode::Xor: return "xor";
      case Opcode::Shl: return "shl";
      case Opcode::Shr: return "shr";
      case Opcode::Sar: return "sar";
      case Opcode::SltU: return "sltu";
      case Opcode::SltS: return "slts";
      case Opcode::Seq: return "seq";
      case Opcode::Addi: return "addi";
      case Opcode::Andi: return "andi";
      case Opcode::Ori: return "ori";
      case Opcode::Xori: return "xori";
      case Opcode::Shli: return "shli";
      case Opcode::Shri: return "shri";
      case Opcode::Muli: return "muli";
      case Opcode::Ld8: return "ld8";
      case Opcode::Ld16: return "ld16";
      case Opcode::Ld32: return "ld32";
      case Opcode::Ld64: return "ld64";
      case Opcode::St8: return "st8";
      case Opcode::St16: return "st16";
      case Opcode::St32: return "st32";
      case Opcode::St64: return "st64";
      case Opcode::Beq: return "beq";
      case Opcode::Bne: return "bne";
      case Opcode::BltU: return "bltu";
      case Opcode::BltS: return "blts";
      case Opcode::BgeU: return "bgeu";
      case Opcode::BgeS: return "bges";
      case Opcode::Beqz: return "beqz";
      case Opcode::Bnez: return "bnez";
      case Opcode::Jmp: return "jmp";
      case Opcode::Jal: return "jal";
      case Opcode::Jr: return "jr";
      case Opcode::Cas: return "cas";
      case Opcode::FetchAdd: return "fetchadd";
      case Opcode::Xchg: return "xchg";
      case Opcode::Syscall: return "syscall";
      case Opcode::Halt: return "halt";
      default: return "<invalid>";
    }
}

} // namespace dp
