/**
 * @file
 * Text assembler and disassembler for the guest ISA.
 *
 * The builder DSL (vm/assembler.hh) is what programs-as-code use; the
 * text form exists for tooling: dumping programs for inspection,
 * writing test inputs by hand, and the CLI. Syntax:
 *
 *     ; comment
 *     .entry main          ; entry label (default: first instruction)
 *     .data 0x1000         ; open a data segment at an address
 *     .u64 1 2 0xff        ; 64-bit little-endian words
 *     .byte 1 2 3          ; raw bytes
 *     .ascii "hello"       ; string bytes (no terminator)
 *
 *     main:
 *         li   r1, 42
 *         addi r1, r1, -1
 *         ld64 r2, r1, 8   ; rd, base, offset
 *         st64 r1, 8, r2   ; base, offset, src
 *         beq  r1, r2, main
 *         cas  r3, r4, r5
 *         syscall
 *         halt
 *
 * assembleText() panics (dp_fatal) with a line number on malformed
 * input; disassemble() produces text that assembles back to an
 * identical program (label names aside).
 */

#ifndef DP_VM_TEXT_ASM_HH
#define DP_VM_TEXT_ASM_HH

#include <string>
#include <string_view>

#include "vm/program.hh"

namespace dp
{

/** Assemble guest assembly text into a program. */
GuestProgram assembleText(std::string_view text,
                          std::string name = "text");

/** Render @p prog as assembly text that round-trips. */
std::string disassemble(const GuestProgram &prog);

/** Render one instruction (no label resolution). */
std::string disassembleInstr(const Instr &in);

} // namespace dp

#endif // DP_VM_TEXT_ASM_HH
