#include "vm/decode.hh"

#include "vm/program.hh"

namespace dp
{

std::uint8_t
opcodeClass(Opcode op)
{
    if (op == Opcode::Syscall)
        return ClsSyscall;
    if (isAtomicOp(op))
        return ClsAtomic | ClsMem;
    if (isMemOp(op))
        return ClsMem;
    return 0;
}

std::shared_ptr<const DecodedProgram>
DecodedProgram::build(const GuestProgram &prog)
{
    const void *const *table = interpDispatchTable();
    auto dec = std::make_shared<DecodedProgram>();
    dec->stamp = prog.codeStamp();
    dec->code.reserve(prog.code.size());
    for (const Instr &in : prog.code) {
        DecodedInstr d;
        d.op = in.op;
        d.cls = opcodeClass(in.op);
        d.rd = static_cast<std::uint8_t>(in.rd);
        d.rs1 = static_cast<std::uint8_t>(in.rs1);
        d.rs2 = static_cast<std::uint8_t>(in.rs2);
        d.imm = in.imm;
        if (table) {
            // Out-of-enum encodings resolve to the fault handler (the
            // trailing table slot), so the hot loop never range-checks.
            auto idx = static_cast<std::size_t>(in.op);
            if (idx > static_cast<std::size_t>(Opcode::NumOpcodes))
                idx = static_cast<std::size_t>(Opcode::NumOpcodes);
            d.handler = table[idx];
        }
        dec->code.push_back(d);
    }
    return dec;
}

} // namespace dp
