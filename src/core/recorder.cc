#include "core/recorder.hh"

#include <algorithm>
#include <deque>
#include <memory>

#include "common/bytes.hh"
#include "common/hash.hh"
#include "common/logging.hh"
#include "core/epoch_replay.hh"
#include "core/epoch_runner.hh"
#include "exec/executor.hh"
#include "os/multicpu_sim.hh"
#include "os/simos.hh"
#include "trace/trace.hh"

namespace dp
{

const char *
recoveryKindName(RecoveryKind k)
{
    switch (k) {
    case RecoveryKind::Rollback: return "rollback";
    case RecoveryKind::CheckpointRecapture: return "ckpt-recapture";
    case RecoveryKind::EpochRetry: return "epoch-retry";
    case RecoveryKind::SequentialFallback: return "seq-fallback";
    }
    return "?";
}

const char *
optionErrorName(OptionError e)
{
    switch (e) {
    case OptionError::None: return "none";
    case OptionError::ZeroWorkerCpus: return "zero-worker-cpus";
    case OptionError::ZeroEpochLength: return "zero-epoch-length";
    case OptionError::ZeroQuantum: return "zero-quantum";
    case OptionError::ZeroJitterDen: return "zero-jitter-den";
    case OptionError::ZeroMpQuantum: return "zero-mp-quantum";
    case OptionError::ZeroMaxInFlight: return "zero-max-in-flight";
    }
    return "invalid";
}

OptionError
validateRecorderOptions(const RecorderOptions &opts)
{
    if (opts.workerCpus == 0)
        return OptionError::ZeroWorkerCpus;
    if (opts.epochLength == 0)
        return OptionError::ZeroEpochLength;
    if (opts.quantum == 0)
        return OptionError::ZeroQuantum;
    if (opts.jitterDen == 0)
        return OptionError::ZeroJitterDen;
    if (opts.mpQuantum == 0)
        return OptionError::ZeroMpQuantum;
    if (opts.hostWorkers > 0 && opts.maxInFlight == 0)
        return OptionError::ZeroMaxInFlight;
    return OptionError::None;
}

std::uint64_t
recorderOptionsFingerprint(const RecorderOptions &opts)
{
    ByteWriter w;
    w.varu(opts.workerCpus);
    w.varu(opts.epochLength);
    w.varu(opts.seed);
    w.varu(opts.quantum);
    w.u8(opts.enforceSyncOrder ? 1 : 0);
    w.u8(opts.chargeCosts ? 1 : 0);
    w.varu(opts.jitterNum);
    w.varu(opts.jitterDen);
    w.varu(opts.mpQuantum);
    // The fault plan is deliberately excluded: it is an injection
    // harness, not a recording option, and the natural recovery flow
    // is to resume without the plan that produced the crash. (Syscall
    // fault sites already carry the documented byte-identity
    // exception across a resume; see resume().)
    std::uint64_t h = 0x9368e53c2f6af274ull;
    for (std::uint8_t b : w.data())
        h = mix64(h ^ b) * 0x9e3779b97f4a7c15ull;
    return mix64(h);
}

namespace
{

/** Everything one thread-parallel epoch hands to its epoch run. */
struct TpEpoch
{
    StopReason reason = StopReason::TimeLimit;
    bool programEnded = false; ///< tp reached AllExited
    bool empty = false;        ///< boundary epoch with no content
    bool captureFailed = false; ///< boundary checkpoint kept tearing
    Checkpoint next;            ///< state at the epoch's end
    std::vector<EpochTarget> targets;
    SyncOrderLog syncOrder;
    std::vector<SyscallRecord> injectables;
    std::vector<SignalEvent> signals;
    Cycles tpCycles = 0;
    Cycles ckptCost = 0;
    std::uint64_t dirtyPages = 0;
    EpochId index = 0; ///< tp-side index at launch (trace label)
    std::uint64_t tpInstrs = 0; ///< retired by the tp run this epoch
};

} // namespace

UniparallelRecorder::UniparallelRecorder(const GuestProgram &prog,
                                         MachineConfig cfg,
                                         RecorderOptions opts,
                                         CostModel costs)
    : prog_(&prog), cfg_(std::move(cfg)), opts_(opts), costs_(costs)
{
    // Options are validated structurally when a session starts (see
    // validateRecorderOptions); constructing with bad options is not
    // UB, it just yields a failed-closed RecordOutcome.
}

RecordOutcome
UniparallelRecorder::record(const RecordObserver *observer)
{
    return runSession(observer, nullptr);
}

RecordOutcome
UniparallelRecorder::resume(std::vector<EpochRecord> prefix,
                            const RecordObserver *observer)
{
    return runSession(observer, &prefix);
}

RecordOutcome
UniparallelRecorder::runSession(const RecordObserver *observer,
                                std::vector<EpochRecord> *prefix)
{
    RecordOutcome out{Recording(*prog_, cfg_)};

    out.optionError = validateRecorderOptions(opts_);
    if (out.optionError != OptionError::None) {
        dp_warn("invalid recorder options: ",
                optionErrorName(out.optionError));
        out.tpReason = StopReason::Stalled;
        return out;
    }

    // The session's host execution engine: every epoch-parallel run
    // executes as a task on this one persistent pool. hostWorkers == 0
    // spawns nothing and runs tasks inline on this thread (the
    // synchronous reference mode); both modes produce byte-identical
    // recordings. Capacity covers a full window plus one recovery
    // re-execution, so the recorder itself never blocks on the queue.
    Executor exec(opts_.hostWorkers,
                  {.queueCapacity = std::size_t{opts_.maxInFlight} + 1,
                   .trace = opts_.trace});
    // The pipeline body below returns through this wrapper so the
    // pool's counters land in the outcome on every exit path.
    runPipeline(out, exec, observer, prefix);
    // Future-waits only cover task results; drain() is the pool's
    // quiescence point (trace emits and counter tallies included).
    exec.drain();
    out.execStats = exec.stats();
    return out;
}

void
UniparallelRecorder::runPipeline(RecordOutcome &out, Executor &exec,
                                 const RecordObserver *observer,
                                 std::vector<EpochRecord> *prefix)
{
    Recording &rec = out.recording;
    TraceRecorder *const tr = opts_.trace;

    Machine m(*prog_, cfg_);
    SimOS os(costs_);
    // Only the result-*generating* kernel is armed: injected faults
    // become recorded results, so the epoch-parallel runs and replay
    // reproduce them through the inject path instead of re-rolling.
    os.armFaults(opts_.faults);
    EpochRunner epoch_runner(*prog_, cfg_, costs_);

    auto notify_recovery = [&](RecoveryKind kind, EpochId index) {
        if (tr)
            tr->instant(TraceStage::ThreadParallel, 0,
                        recoveryKindName(kind), "recovery",
                        {{"epoch", index}});
        if (observer && observer->onRecovery)
            observer->onRecovery(kind, index);
    };

    // Per-epoch collectors filled by the thread-parallel run's hooks.
    SyncOrderLog sync_order;
    std::vector<SyscallRecord> injectables;
    std::vector<SignalEvent> signals;

    MpHooks hooks;
    hooks.onSync = [&](ThreadId tid, SyncKind kind, SyncKey key) {
        sync_order.append(tid, kind, key);
    };
    hooks.onSyscall = [&](ThreadId tid, Sys sys, std::uint64_t value,
                          bool injectable) {
        if (injectable)
            injectables.push_back({tid, sys, value, true});
    };
    hooks.onSignal = [&](const SignalEvent &e) {
        signals.push_back(e);
    };

    auto make_sim = [&](std::uint64_t seed) {
        MpOptions mp;
        mp.cpus = opts_.workerCpus;
        mp.seed = seed;
        mp.quantum = opts_.mpQuantum;
        mp.jitterNum = opts_.jitterNum;
        mp.jitterDen = opts_.jitterDen;
        mp.record = opts_.chargeCosts;
        mp.fuel = opts_.fuel;
        return std::make_unique<MultiCpuSim>(m, os, mp, hooks);
    };

    // Index of the epoch the thread-parallel run is producing next
    // (committed + in flight); reset by rollback.
    EpochId tp_next_index = 0;
    // Monotonic checkpoint-capture sequence: the TornCheckpoint
    // decision scope, so concurrent plans stay per-capture.
    std::uint64_t capture_seq = 0;

    // The thread-parallel interleaving is reseeded at every epoch
    // boundary as a pure function of (base seed, epoch index,
    // rollbacks so far). This makes every boundary a *resume point*:
    // a session resumed from a recovered journal prefix reconstructs
    // the same seed from the prefix alone and produces the same
    // remaining epochs the uninterrupted run would have, so the
    // finished recordings serialize byte-identically. The rollback
    // term keeps a re-produced epoch from replaying the interleaving
    // that just diverged (livelock guard), exactly like the previous
    // rollback-only reseed.
    auto boundary_seed = [&]() {
        return opts_.seed +
               0x9e3779b97f4a7c15ull * tp_next_index +
               0xd1342543de82ef95ull * rec.stats.rollbacks;
    };
    std::unique_ptr<MultiCpuSim> sim;

    // Capture a boundary checkpoint, injecting torn captures per the
    // fault plan. A torn snapshot's digest disagrees with the machine;
    // it is detected via consistentWith() and recaptured, up to
    // maxCaptureRetries, after which the session fails closed.
    // Returns false (leaving @p into untouched) on exhaustion.
    auto capture_boundary = [&](Machine &mm, Checkpoint &into,
                                EpochId epoch_index) -> bool {
        const std::uint64_t scope = capture_seq++;
        ScopedTraceSpan span(tr, TraceStage::ThreadParallel, 0,
                             "checkpoint", "tp");
        span.arg("epoch", epoch_index);
        if (tr)
            span.arg("dirtyPages", mm.mem.dirtyPages().size());
        if (!opts_.faults) {
            into = Checkpoint::capture(mm);
            return true;
        }
        for (unsigned attempt = 0;; ++attempt) {
            Checkpoint c =
                opts_.faults->fire(FaultSite::TornCheckpoint, scope)
                    ? Checkpoint::captureTorn(mm,
                                              (scope << 8) | attempt)
                    : Checkpoint::capture(mm);
            if (c.consistentWith(mm)) {
                into = std::move(c);
                return true;
            }
            ++rec.stats.tornCheckpoints;
            notify_recovery(RecoveryKind::CheckpointRecapture,
                            epoch_index);
            if (attempt >= opts_.maxCaptureRetries) {
                dp_warn("checkpoint capture kept tearing; "
                        "failing closed");
                return false;
            }
        }
    };

    if (prefix && !prefix->empty()) {
        // ---- resume: rebuild the boundary state from the prefix ----
        // The recovered epochs are the official execution; replaying
        // them sequentially (digest-verified, fail-closed) leaves m
        // holding exactly the state the interrupted session had
        // checkpointed at the last committed boundary.
        Cycles replay_cycles = 0;
        std::uint64_t replay_instrs = 0;
        Cycles boundary_clock = 0;
        for (std::size_t i = 0; i < prefix->size(); ++i) {
            const EpochRecord &e = (*prefix)[i];
            if (opts_.keepCheckpoints)
                rec.checkpoints.push_back(Checkpoint::capture(m));
            if (!replayEpochOnMachine(m, e, costs_, replay_cycles,
                                      replay_instrs)) {
                dp_warn("resume: recovered epoch ", i,
                        " failed replay verification; refusing to "
                        "record past a bad prefix");
                out.prefixVerifyFailed = true;
                out.tpReason = StopReason::Stalled;
                rec.checkpoints.clear();
                return;
            }
            // The tp clock telescopes across committed epochs (a
            // rollback resumes it at the diverged boundary), so the
            // boundary clock is the plain sum.
            boundary_clock += e.tpCycles;
            rec.stats.rollbacks += e.diverged ? 1 : 0;
            rec.stats.checkpointPages += e.dirtyPages;
            rec.stats.tpTotalCycles += e.tpCycles;
            rec.stats.epTotalCycles += e.epCycles;
            rec.stats.tpInstrs += e.tpInstrs;
            rec.stats.epInstrs += e.epInstrs;
            ++rec.stats.epochs;
        }
        rec.epochs = std::move(*prefix);
        tp_next_index = static_cast<EpochId>(rec.epochs.size());
        capture_seq = rec.epochs.size();
        m.now = boundary_clock;
        m.mem.clearDirty();
        if (m.allExited()) {
            // The journal already holds the complete run.
            Checkpoint final_state;
            if (!capture_boundary(m, final_state, tp_next_index)) {
                out.tpReason = StopReason::Stalled;
                return;
            }
            rec.finalStateHash = final_state.stateHash();
            out.ok = true;
            if (!m.threads.empty())
                out.mainExitCode = m.threads[0].exitCode;
            return;
        }
    }

    Checkpoint current;
    if (!capture_boundary(m, current, tp_next_index)) {
        out.tpReason = StopReason::Stalled;
        return;
    }

    // Advance the thread-parallel run by one epoch: run to the next
    // boundary, quiesce, checkpoint, package the epoch's constraints.
    auto run_tp_epoch = [&]() -> TpEpoch {
        TpEpoch e;
        e.index = tp_next_index;
        ScopedTraceSpan span(tr, TraceStage::ThreadParallel, 0,
                             "tp-epoch", "tp");
        span.arg("epoch", e.index);
        sim = make_sim(boundary_seed());
        sync_order = {};
        injectables.clear();
        signals.clear();
        const Cycles epoch_start_now = m.now;
        const std::uint64_t retired_before = m.totalRetired();

        e.reason = sim->run(m.now + opts_.epochLength);
        out.tpReason = e.reason;
        e.programEnded = e.reason == StopReason::AllExited;
        e.tpInstrs = m.totalRetired() - retired_before;
        span.arg("instrs", e.tpInstrs);
        if (e.reason == StopReason::Deadlock ||
            e.reason == StopReason::FuelExhausted)
            return e;
        if (m.totalRetired() == retired_before && e.programEnded) {
            e.empty = true;
            return e;
        }

        // Epoch barrier + checkpoint, charged to the tp timeline.
        const std::uint64_t dirty = m.mem.dirtyPages().size();
        if (opts_.chargeCosts) {
            e.ckptCost = costs_.checkpointFixedCycles +
                         costs_.epochBarrierCyclesPerThread *
                             m.threads.size() +
                         costs_.checkpointPageCycles * dirty;
            m.now += e.ckptCost;
        }
        if (!capture_boundary(m, e.next, tp_next_index)) {
            e.captureFailed = true;
            return e;
        }
        ++tp_next_index;
        e.dirtyPages = dirty;

        e.targets.reserve(e.next.threads().size());
        for (const ThreadContext &tc : e.next.threads())
            e.targets.push_back({tc.retired, tc.state});
        e.syncOrder = sync_order;
        e.injectables = injectables;
        e.signals = signals;
        e.tpCycles = m.now - epoch_start_now;
        return e;
    };

    // Run the epoch-parallel half for one tp epoch (any host thread).
    // @p slot is the window-slot track the run's trace events land on
    // (always 0 in the synchronous pipeline).
    auto run_epoch = [&epoch_runner,
                      this](const Checkpoint &start, const TpEpoch &tp,
                            std::uint32_t slot) -> EpochRunResult {
        ScopedTraceSpan span(opts_.trace, TraceStage::EpochParallel,
                             slot, "epoch-run", "ep");
        span.arg("epoch", tp.index);
        EpochTask task;
        task.start = &start;
        task.targets = tp.targets;
        task.syncOrder =
            opts_.enforceSyncOrder ? &tp.syncOrder : nullptr;
        task.injectables = tp.injectables;
        task.signalPlan = tp.signals;
        task.quantum = opts_.quantum;
        task.fuel = opts_.fuel;
        task.chargeRecordCosts = opts_.chargeCosts;
        task.trace = opts_.trace;
        task.traceTid = slot;
        task.traceEpoch = tp.index;
        EpochRunResult res = epoch_runner.run(task);
        span.arg("instrs", res.instrs);
        return res;
    };

    // Run one epoch through the executor and wait for the result.
    // Used where the pipeline needs the answer before it can proceed
    // (the synchronous reference mode and recovery re-executions):
    // the work still flows through the pool, so host-thread
    // accounting stays uniform across modes. With hostWorkers == 0
    // the submit degenerates to a plain call on this thread.
    auto run_epoch_task = [&](const Checkpoint &start,
                              const TpEpoch &tp,
                              std::uint32_t slot) -> EpochRunResult {
        return exec
            .submit([&run_epoch, &start, &tp,
                     slot] { return run_epoch(start, tp, slot); },
                    {.label = "epoch-run"})
            .get();
    };

    // Accept an epoch-parallel result at delivery time, injecting
    // worker deaths per the fault plan. A death discards the delivered
    // result; the epoch is re-executed (EpochRetry) up to
    // maxWorkerRetries times, then degraded to an inline sequential
    // execution (SequentialFallback) that is shielded from further
    // death faults. Decisions are made on the retiring thread in
    // commit order, so the stream is deterministic in both pipeline
    // modes; re-executions run as fresh pool tasks (the "dead" worker
    // is gone — a live one picks the retry up). Re-execution is
    // deterministic, so the recording is byte-identical with or
    // without the deaths.
    auto deliver_epoch = [&](const Checkpoint &start,
                             const TpEpoch &tp, std::uint32_t slot,
                             EpochRunResult er) -> EpochRunResult {
        if (!opts_.faults)
            return er;
        const EpochId index =
            static_cast<EpochId>(rec.epochs.size());
        unsigned retries = 0;
        while (opts_.faults->fire(FaultSite::WorkerDeath, index)) {
            ++rec.stats.workerDeaths;
            if (retries < opts_.maxWorkerRetries) {
                ++retries;
                ++rec.stats.epochRetries;
                notify_recovery(RecoveryKind::EpochRetry, index);
                er = run_epoch_task(start, tp, slot);
                continue;
            }
            ++rec.stats.seqFallbacks;
            notify_recovery(RecoveryKind::SequentialFallback, index);
            er = run_epoch_task(start, tp, slot);
            break;
        }
        return er;
    };

    // Validate an epoch run against its speculation and append the
    // epoch record; returns whether it diverged.
    auto commit_epoch = [&](const Checkpoint &start, TpEpoch &tp,
                            EpochRunResult &er) -> bool {
        Cycles check_cost = 0;
        if (opts_.chargeCosts) {
            // The divergence check compares incremental digests, so
            // its cost tracks the pages this epoch dirtied (the run
            // starts from a restore, which resets dirty tracking),
            // not the resident footprint. Deterministic: a replayed
            // epoch dirties the same pages.
            check_cost = costs_.divergenceCheckPageCycles *
                         er.end.mem.dirtyPages().size();
        }
        const bool diverged =
            er.endStateHash != tp.next.stateHash();

        EpochRecord record;
        record.schedule = std::move(er.schedule);
        record.syscalls = std::move(er.syscalls);
        record.signals = std::move(er.signals);
        record.endStateHash = er.endStateHash;
        record.targets = std::move(tp.targets);
        record.stdoutLen = er.end.stdoutBytes().size();
        record.diverged = diverged;
        record.tpCycles = tp.tpCycles;
        record.ckptCycles = tp.ckptCost;
        record.epCycles = er.epCycles + check_cost;
        record.epInstrs = er.instrs;
        record.dirtyPages = tp.dirtyPages;
        record.tpInstrs = tp.tpInstrs;

        rec.stats.tpTotalCycles += record.tpCycles;
        rec.stats.epTotalCycles += record.epCycles;
        rec.stats.tpInstrs += tp.tpInstrs;
        rec.stats.epInstrs += er.instrs;
        rec.stats.checkpointPages += tp.dirtyPages;
        ++rec.stats.epochs;

        if (opts_.keepCheckpoints)
            rec.checkpoints.push_back(start);
        rec.epochs.push_back(std::move(record));
        if (tr)
            tr->instant(
                TraceStage::ThreadParallel, 0, "commit", "tp",
                {{"epoch", rec.epochs.size() - 1},
                 {"diverged", diverged ? 1u : 0u},
                 {"logBytes", rec.epochs.back().totalLogBytes()}});
        if (observer) {
            const EpochId committed =
                static_cast<EpochId>(rec.epochs.size() - 1);
            if (observer->onEpochCommitted)
                observer->onEpochCommitted(rec.epochs.back(),
                                           committed);
            for (const auto &sink : observer->epochSinks)
                if (sink)
                    sink(rec.epochs.back(), committed);
        }
        return diverged;
    };

    // Squash the speculation after a diverged epoch: the epoch-
    // parallel end state is the truth; restart the tp run from it.
    // The clock resumes from the diverged epoch's boundary — any
    // speculative epochs beyond it (parallel mode) never happened,
    // including their time.
    auto rollback = [&](Machine &truth, Cycles resume_clock) -> bool {
        ++rec.stats.rollbacks;
        notify_recovery(
            RecoveryKind::Rollback,
            static_cast<EpochId>(rec.epochs.size() - 1));
        if (rec.stats.rollbacks > opts_.maxRollbacks) {
            dp_warn("recorder hit the rollback fuse");
            out.tpReason = StopReason::Stalled;
            return false;
        }
        tp_next_index = static_cast<EpochId>(rec.epochs.size());
        if (!capture_boundary(truth, current, tp_next_index)) {
            out.tpReason = StopReason::Stalled;
            return false;
        }
        current.restoreInto(m);
        m.now = resume_clock;
        m.mem.clearDirty();
        // The next run_tp_epoch builds a fresh sim whose boundary
        // seed mixes the bumped rollback count, so the re-produced
        // epoch gets a different interleaving than the one that
        // diverged.
        return true;
    };

    auto finish = [&](const Checkpoint &final_state) {
        rec.finalStateHash = final_state.stateHash();
        out.ok = true;
        if (!m.threads.empty())
            out.mainExitCode = m.threads[0].exitCode;
    };

    if (opts_.hostWorkers == 0) {
        // ---- synchronous reference pipeline ----
        for (;;) {
            if (rec.epochs.size() >= opts_.maxEpochs) {
                dp_warn("recorder hit the epoch fuse");
                out.tpReason = StopReason::FuelExhausted;
                return;
            }
            TpEpoch tp = run_tp_epoch();
            if (tp.reason == StopReason::Deadlock ||
                tp.reason == StopReason::FuelExhausted) {
                dp_warn("thread-parallel run stopped: ",
                        stopReasonName(tp.reason));
                return;
            }
            if (tp.captureFailed) {
                out.tpReason = StopReason::Stalled;
                return;
            }
            if (tp.empty)
                break;

            EpochRunResult er = deliver_epoch(
                current, tp, 0, run_epoch_task(current, tp, 0));
            Checkpoint next = tp.next;
            const Cycles boundary_clock = next.capturedAt();
            if (commit_epoch(current, tp, er)) {
                if (!rollback(er.end, boundary_clock))
                    return;
                if (m.allExited())
                    break;
                continue;
            }
            current = next;
            if (tp.programEnded)
                break;
        }
        finish(current);
        return;
    }

    // ---- host-parallel pipeline ----
    // The tp run stays on this thread; epoch runs execute as pool
    // tasks on the session executor. Results are validated strictly
    // in order; a divergence squashes every younger in-flight epoch
    // (their checkpoints came from the now-discarded speculation):
    // still-queued tasks are cancelled and never execute, already-
    // running ones finish and are discarded.
    struct InFlight
    {
        // Owns the start checkpoint the pool task points into;
        // deque never relocates elements.
        Checkpoint start;
        TpEpoch tp;
        std::uint32_t slot = 0; ///< window-slot trace track
        CancellationSource cancel;
        TaskFuture<EpochRunResult> fut;
    };
    std::deque<InFlight> window;
    // Pool tasks read start/tp out of their deque entry, and — unlike
    // the std::async futures this window used to hold — TaskFuture
    // destructors never block. Any exit from the loop below must
    // therefore squash-and-drain whatever is still in flight before
    // `window` is destroyed; this guard makes that hold on every
    // path.
    struct WindowDrain
    {
        std::deque<InFlight> &w;
        ~WindowDrain()
        {
            for (InFlight &j : w)
                j.cancel.cancel();
            for (InFlight &j : w)
                if (j.fut.valid())
                    j.fut.wait();
        }
    } window_drain{window};
    bool tp_done = false;
    bool tp_failed = false;

    const unsigned max_in_flight =
        std::max(1u, opts_.maxInFlight);
    // Window-slot cursor for trace tracks. Slot s is only reused
    // after the epoch that held it retired (the window admits a new
    // launch only after the front future completed), so each slot's
    // epoch-run spans never overlap — one clean per-worker track.
    std::uint64_t launch_seq = 0;

    for (;;) {
        // Launch tp epochs until the window fills or the program ends.
        while (!tp_done && !tp_failed &&
               window.size() < max_in_flight &&
               rec.epochs.size() + window.size() < opts_.maxEpochs) {
            TpEpoch tp = run_tp_epoch();
            if (tp.reason == StopReason::Deadlock ||
                tp.reason == StopReason::FuelExhausted) {
                dp_warn("thread-parallel run stopped: ",
                        stopReasonName(tp.reason));
                tp_failed = true;
                break;
            }
            if (tp.captureFailed) {
                out.tpReason = StopReason::Stalled;
                tp_failed = true;
                break;
            }
            if (tp.empty) {
                tp_done = true;
                break;
            }
            if (tp.programEnded)
                tp_done = true;

            const std::uint32_t slot =
                static_cast<std::uint32_t>(launch_seq++ %
                                           max_in_flight);
            window.push_back({current, std::move(tp), slot,
                              CancellationSource{},
                              TaskFuture<EpochRunResult>{}});
            InFlight &inf = window.back();
            inf.fut = exec.submit(
                [&run_epoch, &inf] {
                    return run_epoch(inf.start, inf.tp, inf.slot);
                },
                {.token = inf.cancel.token(), .label = "epoch-run"});
            current = inf.tp.next;
            if (tr)
                tr->counter(TraceStage::ThreadParallel, "inFlight",
                            window.size());
        }

        if (window.empty()) {
            if (tp_failed)
                return;
            break;
        }

        // Retire the oldest epoch. The pool task reads start/tp out
        // of the deque slot, so the future must complete before the
        // slot is moved from. The front is never cancelled — only a
        // squash cancels, and a squash empties the window — so get()
        // always yields a result here.
        EpochRunResult er = window.front().fut.get();
        InFlight inf = std::move(window.front());
        window.pop_front();
        if (tr)
            tr->counter(TraceStage::ThreadParallel, "inFlight",
                        window.size());
        er = deliver_epoch(inf.start, inf.tp, inf.slot,
                           std::move(er));
        const Cycles boundary_clock = inf.tp.next.capturedAt();
        if (commit_epoch(inf.start, inf.tp, er)) {
            // Divergence: every younger speculation is invalid.
            // Cancel first so queued-but-unstarted epochs never
            // execute (the pool drops them), then wait out whichever
            // ones a worker had already started.
            for (InFlight &junk : window)
                junk.cancel.cancel();
            for (InFlight &junk : window)
                junk.fut.wait();
            window.clear();
            if (!rollback(er.end, boundary_clock))
                return;
            tp_done = m.allExited();
            tp_failed = false;
            continue;
        }
        // Note: `current` is the launch-side cursor (start of the
        // next epoch the tp run will produce); retiring an old epoch
        // must not move it.
        if (rec.epochs.size() >= opts_.maxEpochs && !tp_done) {
            dp_warn("recorder hit the epoch fuse");
            out.tpReason = StopReason::FuelExhausted;
            return;
        }
    }
    finish(current);
}

} // namespace dp
