/**
 * @file
 * CLI-level tests for the uniplay tool: flag validation (--trace is
 * only accepted where it means something, unknown options are usage
 * errors, never silently-ignored positionals), byte-invisibility of
 * --trace at the artifact level, and the stats subcommand's JSON
 * output.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "trace/json.hh"

#ifndef DP_UNIPLAY_BIN
#error "DP_UNIPLAY_BIN must point at the uniplay binary"
#endif

namespace dp
{
namespace
{

struct CmdResult
{
    int exitCode = -1;
    std::string output; ///< stdout + stderr interleaved
};

CmdResult
uniplay(const std::string &args)
{
    CmdResult r;
    const std::string cmd =
        std::string(DP_UNIPLAY_BIN) + " " + args + " 2>&1";
    FILE *p = popen(cmd.c_str(), "r");
    if (!p)
        return r;
    char buf[4096];
    std::size_t n;
    while ((n = fread(buf, 1, sizeof buf, p)) > 0)
        r.output.append(buf, n);
    const int status = pclose(p);
    r.exitCode = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    return r;
}

std::vector<std::uint8_t>
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    std::string s = ss.str();
    return {s.begin(), s.end()};
}

class ToolsCli : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        char tmpl[] = "/tmp/dp-tools-XXXXXX";
        ASSERT_NE(mkdtemp(tmpl), nullptr);
        dir_ = tmpl;
    }

    void
    TearDown() override
    {
        for (const std::string &f : cleanup_)
            std::remove(f.c_str());
        rmdir(dir_.c_str());
    }

    std::string
    path(const std::string &name)
    {
        cleanup_.push_back(dir_ + "/" + name);
        return cleanup_.back();
    }

    std::string dir_;
    std::vector<std::string> cleanup_;
};

TEST_F(ToolsCli, TraceRejectedOnUnsupportedSubcommands)
{
    for (const char *cmd :
         {"info", "recover", "verify", "races", "stats", "disasm"}) {
        CmdResult r = uniplay(std::string(cmd) +
                              " nonexistent.bin --trace t.json");
        EXPECT_EQ(r.exitCode, 2) << cmd << ": " << r.output;
        EXPECT_NE(r.output.find("--trace"), std::string::npos)
            << cmd << " must name the rejected flag: " << r.output;
    }
    CmdResult r = uniplay("workloads --trace t.json");
    EXPECT_EQ(r.exitCode, 2) << r.output;
    EXPECT_NE(r.output.find("--trace"), std::string::npos);
}

TEST_F(ToolsCli, UnknownOptionIsUsageErrorNotPositional)
{
    CmdResult r = uniplay("record pfscan --bogus-flag");
    EXPECT_EQ(r.exitCode, 2) << r.output;
    EXPECT_NE(r.output.find("unknown option"), std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("--bogus-flag"), std::string::npos)
        << r.output;
}

TEST_F(ToolsCli, RecordWithTraceIsByteIdenticalAndTraceIsValid)
{
    const std::string plain = path("plain.bin");
    const std::string traced = path("traced.bin");
    const std::string trace = path("trace.json");

    CmdResult a = uniplay("record pfscan -t 2 -s 4 -o " + plain);
    ASSERT_EQ(a.exitCode, 0) << a.output;
    CmdResult b = uniplay("record pfscan -t 2 -s 4 -o " + traced +
                          " --trace " + trace);
    ASSERT_EQ(b.exitCode, 0) << b.output;

    EXPECT_EQ(slurp(plain), slurp(traced));

    std::vector<std::uint8_t> tj = slurp(trace);
    std::string err;
    std::optional<JsonValue> doc = JsonValue::parse(
        std::string_view(reinterpret_cast<const char *>(tj.data()),
                         tj.size()),
        &err);
    ASSERT_TRUE(doc.has_value()) << err;
    const JsonValue *evs = doc->find("traceEvents");
    ASSERT_NE(evs, nullptr);
    EXPECT_GT(evs->items().size(), 0u);

    // Replay accepts --trace too, and still verifies.
    const std::string rtrace = path("replay-trace.json");
    CmdResult rep =
        uniplay("replay " + plain + " --trace " + rtrace);
    EXPECT_EQ(rep.exitCode, 0) << rep.output;
    EXPECT_NE(rep.output.find("verified"), std::string::npos);
}

TEST_F(ToolsCli, ReplayJobsControlsHostPoolNotVerdict)
{
    const std::string artifact = path("jobs.bin");
    ASSERT_EQ(
        uniplay("record pfscan -t 2 -s 4 -o " + artifact).exitCode,
        0);

    // --jobs resizes the host pool only; the verdict is unchanged.
    for (const char *jobs : {"1", "2", "8"}) {
        CmdResult r = uniplay("replay " + artifact +
                              " --parallel 4 --jobs " + jobs);
        EXPECT_EQ(r.exitCode, 0) << "--jobs " << jobs << ": "
                                 << r.output;
        EXPECT_NE(r.output.find("verified"), std::string::npos)
            << r.output;
    }
}

TEST_F(ToolsCli, ReplayJobsMisuseIsUsageError)
{
    const std::string artifact = path("jobs-err.bin");
    ASSERT_EQ(
        uniplay("record pfscan -t 2 -s 4 -o " + artifact).exitCode,
        0);

    // Zero host threads cannot run anything.
    CmdResult zero =
        uniplay("replay " + artifact + " --parallel 2 --jobs 0");
    EXPECT_EQ(zero.exitCode, 2) << zero.output;
    EXPECT_NE(zero.output.find("--jobs"), std::string::npos);

    // --jobs without --parallel has nothing to size.
    CmdResult alone = uniplay("replay " + artifact + " --jobs 2");
    EXPECT_EQ(alone.exitCode, 2) << alone.output;
    EXPECT_NE(alone.output.find("--parallel"), std::string::npos);

    // Other subcommands reject it by name.
    CmdResult rec = uniplay("record pfscan --jobs 2");
    EXPECT_EQ(rec.exitCode, 2) << rec.output;
    EXPECT_NE(rec.output.find("--jobs"), std::string::npos);
}

TEST_F(ToolsCli, JournalStreamsMisuseIsUsageError)
{
    // --journal-streams shapes how record *writes* the journal;
    // every reader derives the shape from the files themselves.
    for (const char *cmd : {"replay", "recover", "verify", "stats"}) {
        CmdResult r = uniplay(std::string(cmd) +
                              " nonexistent.bin --journal-streams 4");
        EXPECT_EQ(r.exitCode, 2) << cmd << ": " << r.output;
        EXPECT_NE(r.output.find("--journal-streams"),
                  std::string::npos)
            << cmd << " must name the rejected flag: " << r.output;
    }

    // Zero streams cannot hold a journal.
    CmdResult zero = uniplay("record pfscan --journal " +
                             path("z.dpj") + " --journal-streams 0");
    EXPECT_EQ(zero.exitCode, 2) << zero.output;
    EXPECT_NE(zero.output.find("--journal-streams"),
              std::string::npos);
}

TEST_F(ToolsCli, ShipFlagMisuseIsUsageError)
{
    // ship replicates an existing journal; it has no positional.
    CmdResult noj = uniplay("ship");
    EXPECT_EQ(noj.exitCode, 2) << noj.output;
    EXPECT_NE(noj.output.find("--journal"), std::string::npos);

    // --ship is a record-side flag, --lag needs a shipping session.
    for (const char *cmd : {"replay", "recover", "stats"}) {
        CmdResult r =
            uniplay(std::string(cmd) + " nonexistent.bin --ship");
        EXPECT_EQ(r.exitCode, 2) << cmd << ": " << r.output;
        EXPECT_NE(r.output.find("--ship"), std::string::npos)
            << cmd << " must name the rejected flag: " << r.output;
    }
    CmdResult lag = uniplay("record pfscan --lag 4 -o " +
                            path("x.bin"));
    EXPECT_EQ(lag.exitCode, 2) << lag.output;
    EXPECT_NE(lag.output.find("--lag"), std::string::npos);
}

TEST_F(ToolsCli, ShipReplicatesAJournalAndReportsConvergence)
{
    const std::string journal = path("ship.dpj");
    CmdResult rec = uniplay("record pfscan -t 2 -s 4 --journal " +
                            journal + " --journal-streams 2");
    ASSERT_EQ(rec.exitCode, 0) << rec.output;
    cleanup_.push_back(journal + ".s0");
    cleanup_.push_back(journal + ".s1");

    CmdResult ship = uniplay(
        "ship --journal " + journal +
        " --lag 4 --fault-plan link-drop=0.2,link-torn=0.1 "
        "--fault-seed 9");
    EXPECT_EQ(ship.exitCode, 0) << ship.output;
    EXPECT_NE(ship.output.find("standby converged: yes"),
              std::string::npos)
        << ship.output;
    EXPECT_NE(ship.output.find("dp-metrics-v1"), std::string::npos)
        << ship.output;
    EXPECT_NE(ship.output.find("promoted at epoch"),
              std::string::npos)
        << ship.output;
}

TEST_F(ToolsCli, RecordShipRunsAnInProcessStandby)
{
    CmdResult r = uniplay("record pfscan -t 2 -s 4 --ship --lag 8");
    EXPECT_EQ(r.exitCode, 0) << r.output;
    EXPECT_NE(r.output.find("standby converged: yes"),
              std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("dp-metrics-v1"), std::string::npos)
        << r.output;
}

TEST_F(ToolsCli, RecoverJobsMisuseIsUsageError)
{
    // Rejected before any file access: zero host threads cannot
    // recover anything.
    CmdResult zero = uniplay("recover nonexistent.dpj --jobs 0");
    EXPECT_EQ(zero.exitCode, 2) << zero.output;
    EXPECT_NE(zero.output.find("--jobs"), std::string::npos);
}

TEST_F(ToolsCli, MultiStreamJournalRecoversByteIdenticalArtifact)
{
    const std::string artifact = path("sharded.bin");
    const std::string recovered = path("recovered.bin");
    const std::string journal = path("sharded.dpj");
    for (int s = 0; s < 3; ++s)
        path("sharded.dpj.s" + std::to_string(s));

    CmdResult rec = uniplay("record pfscan -t 2 -s 4 -o " +
                            artifact + " --journal " + journal +
                            " --journal-streams 3");
    ASSERT_EQ(rec.exitCode, 0) << rec.output;
    EXPECT_NE(rec.output.find("across 3 streams"),
              std::string::npos)
        << rec.output;

    CmdResult r = uniplay("recover " + journal + " --jobs 2 -o " +
                          recovered);
    ASSERT_EQ(r.exitCode, 0) << r.output;
    EXPECT_NE(r.output.find("streams:   3"), std::string::npos)
        << r.output;
    EXPECT_EQ(slurp(recovered), slurp(artifact))
        << "recovered artifact differs from the recorded one";
}

TEST_F(ToolsCli, VerifyAndStatsResolveShardedJournalSets)
{
    const std::string journal = path("vset.dpj");
    for (int s = 0; s < 3; ++s)
        path("vset.dpj.s" + std::to_string(s));
    ASSERT_EQ(uniplay("record pfscan -t 2 -s 4 --journal " + journal +
                      " --journal-streams 3")
                  .exitCode,
              0);

    // The base path has no file of its own, only .s0..s2: verify
    // must resolve the set instead of failing to open the base.
    CmdResult v = uniplay("verify " + journal);
    EXPECT_EQ(v.exitCode, 0) << v.output;
    EXPECT_NE(v.output.find("3 stream(s)"), std::string::npos)
        << v.output;
    EXPECT_NE(v.output.find("intact"), std::string::npos) << v.output;

    CmdResult st = uniplay("stats " + journal);
    ASSERT_EQ(st.exitCode, 0) << st.output;
    std::string err;
    std::optional<JsonValue> doc = JsonValue::parse(st.output, &err);
    ASSERT_TRUE(doc.has_value()) << err << "\noutput: " << st.output;
    const JsonValue *schema = doc->find("schema");
    ASSERT_NE(schema, nullptr);
    EXPECT_EQ(schema->asString(), "dp-metrics-v1");

    // Tear one stream: verify must fail closed and name the damage.
    std::filesystem::resize_file(journal + ".s1", 40);
    CmdResult torn = uniplay("verify " + journal);
    EXPECT_EQ(torn.exitCode, 1) << torn.output;
    EXPECT_NE(torn.output.find("stream"), std::string::npos)
        << torn.output;
}

TEST_F(ToolsCli, StatsEmitsParsableMetricsSnapshot)
{
    const std::string artifact = path("stats.bin");
    ASSERT_EQ(
        uniplay("record pfscan -t 2 -s 4 -o " + artifact).exitCode,
        0);

    CmdResult r = uniplay("stats " + artifact);
    ASSERT_EQ(r.exitCode, 0) << r.output;
    std::string err;
    std::optional<JsonValue> doc = JsonValue::parse(r.output, &err);
    ASSERT_TRUE(doc.has_value())
        << err << "\noutput: " << r.output;
    const JsonValue *schema = doc->find("schema");
    ASSERT_NE(schema, nullptr);
    EXPECT_EQ(schema->asString(), "dp-metrics-v1");
    const JsonValue *counters = doc->find("counters");
    ASSERT_NE(counters, nullptr);
    const JsonValue *epochs = counters->find("epochs");
    ASSERT_NE(epochs, nullptr);
    EXPECT_GT(epochs->asNumber(), 0.0);
    const JsonValue *rows = doc->find("epochs");
    ASSERT_NE(rows, nullptr);
    EXPECT_EQ(rows->items().size(),
              static_cast<std::size_t>(epochs->asNumber()));
}

} // namespace
} // namespace dp
