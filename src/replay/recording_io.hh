/**
 * @file
 * Recording serialization: turn a Recording into a self-contained
 * byte artifact and back.
 *
 * The artifact embeds the guest program (code + data segments), the
 * machine configuration, and every epoch's logs and digests — enough
 * for sequential replay in a different process with no other inputs.
 * Checkpoints are deliberately not serialized (they are an in-memory
 * acceleration for parallel replay; a consumer can regenerate them by
 * replaying once and capturing boundaries).
 */

#ifndef DP_REPLAY_RECORDING_IO_HH
#define DP_REPLAY_RECORDING_IO_HH

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/recording.hh"

namespace dp
{

/** A deserialized artifact (the Recording owns its program copy). */
struct LoadedRecording
{
    std::unique_ptr<Recording> recording;

    const GuestProgram &program() const
    {
        return recording->program();
    }
};

/** Serialize @p rec (without checkpoints) into a byte artifact. */
std::vector<std::uint8_t> serializeRecording(const Recording &rec);

/**
 * Parse an artifact produced by serializeRecording. Panics on a
 * corrupt or version-mismatched artifact.
 */
LoadedRecording deserializeRecording(
    std::span<const std::uint8_t> bytes);

} // namespace dp

#endif // DP_REPLAY_RECORDING_IO_HH
