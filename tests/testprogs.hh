/**
 * @file
 * Small guest programs shared across the test suite.
 */

#ifndef DP_TESTS_TESTPROGS_HH
#define DP_TESTS_TESTPROGS_HH

#include <cstdint>

#include "vm/program.hh"

namespace dp::testprogs
{

/** Guest addresses the test programs use. */
inline constexpr Addr lockAddr = 0x1000;
inline constexpr Addr counterAddr = 0x1008;
inline constexpr Addr barrierAddr = 0x2000;
inline constexpr Addr tidArrayAddr = 0x3000;
inline constexpr Addr scratchAddr = 0x4000;

/**
 * @p nthreads workers each add 1 to a lock-protected shared counter
 * @p incs times; main joins them, writes the 8-byte counter to stdout,
 * and exits with the counter value. Data-race-free.
 */
GuestProgram lockedCounter(std::uint64_t nthreads, std::uint64_t incs);

/**
 * Same shape but the increment is an unprotected load/add/store —
 * a classic lost-update data race. Exit code is whatever the races
 * produce.
 */
GuestProgram racyCounter(std::uint64_t nthreads, std::uint64_t incs);

/**
 * Same shape with FetchAdd increments: racy interleavings but every
 * access is atomic, so all executions are determined by sync order.
 */
GuestProgram atomicCounter(std::uint64_t nthreads, std::uint64_t incs);

/**
 * @p nthreads workers run @p phases barrier-separated phases, each
 * phase bumping a per-thread slot and reading a neighbour's slot.
 * Exercises the generation barrier and cross-thread visibility.
 */
GuestProgram barrierPhases(std::uint64_t nthreads,
                           std::uint64_t phases);

/**
 * Single thread exercising syscalls: opens a file, writes, reads it
 * back, pulls bytes from a network stream in a poll loop, reads the
 * clock, and exits with a checksum.
 */
GuestProgram syscallStorm(std::uint64_t net_bytes);

/** Straight-line compute: @p iters of mixing arithmetic, exit with
 *  the accumulator's low bits. Single-threaded determinism anchor. */
GuestProgram arithLoop(std::uint64_t iters);

/** Path of the boot-time file fileChunkReader() reads. */
inline constexpr const char *chunkFilePath = "data/in.bin";

/**
 * Single thread streaming a boot-time file (chunkFilePath, provided
 * via MachineConfig::initialFiles): reads 64-byte chunks until EOF,
 * sums every byte, writes the 8-byte checksum to stdout, exits with
 * its low bits. Robust to short reads (it loops to EOF), which makes
 * it the FileShortRead fault-injection target.
 */
GuestProgram fileChunkReader();

/** Random-program generator options (property tests). */
struct GenOptions
{
    bool allowRaces = false;
    bool allowBarriers = true;
    /** Emit sighandler registration and random cross-thread kill()
     *  actions (handlers use only async-signal-safe operations). */
    bool allowSignals = true;
};

/**
 * Generate a structurally valid, terminating multithreaded program:
 * 1-4 workers run a common loop of random actions (private compute,
 * atomics, locked shared updates, barriers, syscalls incl. the
 * injectable GetTime/NetRecv, and — when allowed — unprotected shared
 * updates). Main joins everyone and exits with a shared checksum.
 */
GuestProgram randomProgram(std::uint64_t seed, const GenOptions &opts);

} // namespace dp::testprogs

#endif // DP_TESTS_TESTPROGS_HH
