/**
 * @file
 * CRC-32C (Castagnoli) over byte spans.
 *
 * Used by the epoch journal to guard every frame: a torn tail or a
 * flipped bit yields a CRC mismatch, so recovery can distinguish the
 * committed prefix from damage without trusting any frame contents.
 * Table-driven, one table per process, no dependencies.
 */

#ifndef DP_COMMON_CRC32_HH
#define DP_COMMON_CRC32_HH

#include <array>
#include <cstdint>
#include <span>

namespace dp
{

namespace detail
{

inline const std::array<std::uint32_t, 256> &
crc32cTable()
{
    static const std::array<std::uint32_t, 256> table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0x82f63b78u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    return table;
}

} // namespace detail

/** CRC-32C of @p bytes, continuing from @p seed (0 to start). */
inline std::uint32_t
crc32c(std::span<const std::uint8_t> bytes, std::uint32_t seed = 0)
{
    const auto &table = detail::crc32cTable();
    std::uint32_t c = ~seed;
    for (std::uint8_t b : bytes)
        c = table[(c ^ b) & 0xff] ^ (c >> 8);
    return ~c;
}

} // namespace dp

#endif // DP_COMMON_CRC32_HH
