#include "ship/ship.hh"

#include "common/bytes.hh"
#include "common/crc32.hh"
#include "journal/journal.hh"

namespace dp
{

namespace
{

std::uint32_t
batchCrc(std::span<const std::uint8_t> payload)
{
    std::uint8_t kind = shipBatchKind;
    return crc32c(payload, crc32c({&kind, 1}));
}

} // namespace

std::vector<std::uint8_t>
encodeShipBatch(const ShipBatch &b)
{
    ByteWriter p;
    p.varu(b.seq);
    p.varu(b.stream);
    p.varu(b.streamCount);
    p.varu(b.offset);
    p.varu(b.bytes.size());
    std::vector<std::uint8_t> payload = p.take();
    payload.insert(payload.end(), b.bytes.begin(), b.bytes.end());

    ByteWriter w;
    w.u8(shipBatchKind);
    w.varu(payload.size());
    std::vector<std::uint8_t> wire = w.take();
    wire.insert(wire.end(), payload.begin(), payload.end());
    std::uint32_t crc = batchCrc(payload);
    for (int i = 0; i < 8; ++i)
        wire.push_back(
            static_cast<std::uint8_t>(std::uint64_t{crc} >> (8 * i)));
    wire.push_back(journalCommitMarker);
    return wire;
}

std::optional<ShipBatch>
decodeShipBatch(std::span<const std::uint8_t> wire)
{
    try {
        ByteReader r(wire);
        if (r.u8() != shipBatchKind)
            return std::nullopt;
        std::uint64_t len = r.varu();
        if (len > r.remaining())
            return std::nullopt;
        std::span<const std::uint8_t> payload =
            wire.subspan(r.pos(), static_cast<std::size_t>(len));

        ByteReader t(wire.subspan(r.pos() + payload.size()));
        std::uint64_t stored = t.u64fixed();
        if (stored != batchCrc(payload))
            return std::nullopt;
        if (t.u8() != journalCommitMarker || !t.atEnd())
            return std::nullopt;

        ByteReader p(payload);
        ShipBatch b;
        b.seq = p.varu();
        b.stream = static_cast<std::uint32_t>(p.varu());
        b.streamCount = static_cast<std::uint32_t>(p.varu());
        b.offset = p.varu();
        std::uint64_t n = p.varu();
        if (n != p.remaining())
            return std::nullopt;
        b.bytes.assign(payload.end() - n, payload.end());
        return b;
    } catch (const ByteStreamError &) {
        return std::nullopt;
    }
}

JsonValue
shipMetricsSnapshot(const ShipSenderStats &sender,
                    const StandbyStats &standby, const LinkStats &link)
{
    JsonValue doc = JsonValue::object();
    doc.set("schema", JsonValue::str("dp-metrics-v1"));

    // The watermark gauges: how far the primary has committed, how
    // far the standby has durably persisted, and how far it has
    // replayed — the lag story in three numbers.
    JsonValue marks = JsonValue::object();
    marks.set("committedEpochs",
              JsonValue::number(sender.epochsCommitted));
    marks.set("persistedEpochs",
              JsonValue::number(standby.persistedEpochs));
    marks.set("replayedEpochs",
              JsonValue::number(standby.replayedEpochs));
    marks.set("ackedPersistedEpochs",
              JsonValue::number(sender.ackedPersistedEpochs));
    marks.set("ackedReplayedEpochs",
              JsonValue::number(sender.ackedReplayedEpochs));
    marks.set("maxLag", JsonValue::number(standby.maxLag));
    doc.set("watermarks", std::move(marks));

    JsonValue snd = JsonValue::object();
    snd.set("batchesSent", JsonValue::number(sender.batchesSent));
    snd.set("batchesAcked", JsonValue::number(sender.batchesAcked));
    snd.set("retries", JsonValue::number(sender.retries));
    snd.set("timeouts", JsonValue::number(sender.timeouts));
    snd.set("resyncs", JsonValue::number(sender.resyncs));
    snd.set("reconnects", JsonValue::number(sender.reconnects));
    snd.set("backoffTicks", JsonValue::number(sender.backoffTicks));
    snd.set("bytesShipped", JsonValue::number(sender.bytesShipped));
    snd.set("linkFailed", JsonValue::boolean(sender.linkFailed));
    snd.set("standbyFailed",
            JsonValue::boolean(sender.standbyFailed));
    doc.set("sender", std::move(snd));

    JsonValue lnk = JsonValue::object();
    lnk.set("transmitted", JsonValue::number(link.transmitted));
    lnk.set("delivered", JsonValue::number(link.delivered));
    lnk.set("dropped", JsonValue::number(link.dropped));
    lnk.set("duplicated", JsonValue::number(link.duplicated));
    lnk.set("reordered", JsonValue::number(link.reordered));
    lnk.set("torn", JsonValue::number(link.torn));
    lnk.set("disconnects", JsonValue::number(link.disconnects));
    doc.set("link", std::move(lnk));

    JsonValue stb = JsonValue::object();
    stb.set("batchesReceived",
            JsonValue::number(standby.batchesReceived));
    stb.set("batchesAccepted",
            JsonValue::number(standby.batchesAccepted));
    stb.set("duplicateBatches",
            JsonValue::number(standby.duplicateBatches));
    stb.set("gapNacks", JsonValue::number(standby.gapNacks));
    stb.set("tornRejected", JsonValue::number(standby.tornRejected));
    stb.set("crashes", JsonValue::number(standby.crashes));
    stb.set("lagWaits", JsonValue::number(standby.lagWaits));
    doc.set("standby", std::move(stb));

    return doc;
}

} // namespace dp
