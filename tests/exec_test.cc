/**
 * @file
 * Tests for the host execution engine (src/exec) and its integration
 * contracts: pool lifecycle, bounded-queue back-pressure,
 * cancellation, exception propagation, deterministic
 * join-on-destruction — then the recorder-level guarantees the pool
 * underwrites: no thread-per-epoch, squashed epochs never execute,
 * and byte-identical recordings and journals across every pool shape.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/recorder.hh"
#include "exec/executor.hh"
#include "fault/fault.hh"
#include "journal/journal.hh"
#include "replay/recording_io.hh"
#include "testprogs.hh"
#include "trace/trace.hh"

namespace dp
{
namespace
{

/** Open/close latch for holding a worker mid-task. */
class Gate
{
  public:
    void
    open()
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            open_ = true;
        }
        cv_.notify_all();
    }

    void
    wait()
    {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [&] { return open_; });
    }

  private:
    std::mutex mu_;
    std::condition_variable cv_;
    bool open_ = false;
};

// ---- pool lifecycle ----

TEST(ExecLifecycle, SpawnsExactlyConfiguredWorkers)
{
    Executor exec(3);
    EXPECT_EQ(exec.workerCount(), 3u);
    ExecutorStats st = exec.stats();
    EXPECT_EQ(st.workers, 3u);
    EXPECT_EQ(st.threadsSpawned, 3u);

    TaskFuture<int> f = exec.submit([] { return 41 + 1; });
    EXPECT_EQ(f.get(), 42);
    // Executing any number of tasks spawns nothing further.
    for (int i = 0; i < 20; ++i)
        exec.submit([] {});
    exec.drain();
    EXPECT_EQ(exec.stats().threadsSpawned, 3u);
    EXPECT_EQ(exec.stats().tasksExecuted, 21u);
}

TEST(ExecLifecycle, InlineModeSpawnsNothingAndRunsOnCaller)
{
    Executor exec(0);
    std::thread::id ran_on;
    TaskFuture<void> f =
        exec.submit([&] { ran_on = std::this_thread::get_id(); });
    // Inline submit completes the task before returning.
    EXPECT_EQ(f.state(), TaskState::Done);
    EXPECT_EQ(ran_on, std::this_thread::get_id());
    ExecutorStats st = exec.stats();
    EXPECT_EQ(st.threadsSpawned, 0u);
    EXPECT_EQ(st.tasksExecuted, 1u);
}

TEST(ExecLifecycle, DestructorDrainsEveryTaskWithoutGet)
{
    std::atomic<int> ran{0};
    {
        Executor exec(2);
        for (int i = 0; i < 64; ++i)
            exec.submit([&] { ran.fetch_add(1); });
        // No get(), no drain(): destruction is the join point.
    }
    EXPECT_EQ(ran.load(), 64);
}

TEST(ExecLifecycle, DrainWaitsForOutstandingTasks)
{
    Executor exec(2);
    std::atomic<int> ran{0};
    for (int i = 0; i < 32; ++i)
        exec.submit([&] {
            std::this_thread::sleep_for(std::chrono::microseconds(50));
            ran.fetch_add(1);
        });
    exec.drain();
    EXPECT_EQ(ran.load(), 32);
}

// ---- bounded queue ----

TEST(ExecQueue, BackpressureBlocksSubmitAtCapacity)
{
    Executor exec(1, {.queueCapacity = 1});
    Gate started, gate;
    exec.submit([&] {
        started.open();
        gate.wait();
    });
    started.wait(); // the worker holds task A; the queue is empty
    exec.submit([] {}); // B: fills the queue to capacity

    // C must block until the worker frees a slot; release the gate
    // from the side once C's submit is underway.
    std::thread opener([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        gate.open();
    });
    TaskFuture<int> c = exec.submit([] { return 7; });
    opener.join();
    EXPECT_EQ(c.get(), 7);

    exec.drain(); // get() precedes the worker's tally; drain() doesn't
    ExecutorStats st = exec.stats();
    EXPECT_EQ(st.backpressureWaits, 1u);
    // The bound held: the queue never grew past its capacity.
    EXPECT_LE(st.peakQueueDepth, 1u);
    EXPECT_EQ(st.tasksExecuted, 3u);
}

// ---- cancellation ----

TEST(ExecCancel, QueuedTaskNeverExecutes)
{
    Executor exec(1, {.queueCapacity = 4});
    Gate started, gate;
    exec.submit([&] {
        started.open();
        gate.wait();
    });
    started.wait(); // worker pinned; everything below stays queued

    CancellationSource squash;
    bool ran = false;
    TaskFuture<void> doomed = exec.submit(
        [&] { ran = true; }, {.token = squash.token()});
    squash.cancel();
    gate.open();
    exec.drain();

    EXPECT_FALSE(ran);
    EXPECT_TRUE(doomed.cancelled());
    EXPECT_EQ(doomed.state(), TaskState::Cancelled);
    EXPECT_THROW(doomed.get(), TaskCancelled);
    ExecutorStats st = exec.stats();
    EXPECT_EQ(st.tasksCancelled, 1u);
    EXPECT_EQ(st.tasksExecuted, 1u);
}

TEST(ExecCancel, RunningTaskCompletesDespiteCancel)
{
    Executor exec(1);
    Gate started, gate;
    CancellationSource squash;
    TaskFuture<int> f = exec.submit(
        [&] {
            started.open();
            gate.wait();
            return 9;
        },
        {.token = squash.token()});
    started.wait();
    // Too late: cancellation only prevents unstarted tasks.
    squash.cancel();
    gate.open();
    EXPECT_EQ(f.get(), 9);
    exec.drain();
    EXPECT_EQ(exec.stats().tasksCancelled, 0u);
    EXPECT_EQ(exec.stats().tasksExecuted, 1u);
}

TEST(ExecCancel, InlineModeHonoursCancellation)
{
    Executor exec(0);
    CancellationSource squash;
    squash.cancel();
    bool ran = false;
    TaskFuture<void> f =
        exec.submit([&] { ran = true; }, {.token = squash.token()});
    EXPECT_FALSE(ran);
    EXPECT_TRUE(f.cancelled());
    EXPECT_EQ(exec.stats().tasksCancelled, 1u);
}

// ---- failure propagation ----

TEST(ExecError, ExceptionPropagatesThroughGet)
{
    Executor exec(2);
    TaskFuture<int> f = exec.submit(
        []() -> int { throw std::runtime_error("task exploded"); });
    EXPECT_THROW(
        {
            try {
                f.get();
            } catch (const std::runtime_error &e) {
                EXPECT_STREQ(e.what(), "task exploded");
                throw;
            }
        },
        std::runtime_error);
    EXPECT_EQ(f.state(), TaskState::Failed);
    exec.drain();
    ExecutorStats st = exec.stats();
    EXPECT_EQ(st.tasksFailed, 1u);
    // A failed task never poisons the pool.
    EXPECT_EQ(exec.submit([] { return 5; }).get(), 5);
}

// ---- task context + metrics ----

TEST(ExecContext, WorkerIndexIsInRange)
{
    Executor exec(2);
    std::atomic<unsigned> max_seen{0};
    for (int i = 0; i < 40; ++i)
        exec.submit([&](const TaskContext &ctx) {
            unsigned cur = max_seen.load();
            while (ctx.worker > cur &&
                   !max_seen.compare_exchange_weak(cur, ctx.worker)) {
            }
        });
    exec.drain();
    EXPECT_LT(max_seen.load(), 2u);
}

TEST(ExecMetrics, SnapshotCarriesSchemaAndCounters)
{
    Executor exec(2, {.queueCapacity = 8});
    for (int i = 0; i < 10; ++i)
        exec.submit([] {});
    exec.drain();
    JsonValue snap = exec.metricsSnapshot();
    ASSERT_NE(snap.find("schema"), nullptr);
    EXPECT_EQ(snap.find("schema")->asString(), "dp-exec-v1");
    EXPECT_EQ(snap.find("threadsSpawned")->asNumber(), 2.0);
    EXPECT_EQ(snap.find("tasksSubmitted")->asNumber(), 10.0);
    EXPECT_EQ(snap.find("tasksExecuted")->asNumber(), 10.0);
    EXPECT_EQ(snap.find("tasksCancelled")->asNumber(), 0.0);
}

TEST(ExecTrace, PoolEmitsWorkerAndTaskEvents)
{
    TraceRecorder tr;
    {
        Executor exec(2, {.trace = &tr});
        for (int i = 0; i < 6; ++i)
            exec.submit([] {}, {.label = "unit-task"});
    }
    std::uint64_t task_spans = 0, starts = 0, exits = 0;
    for (const TraceEvent &e : tr.events()) {
        if (e.stage != TraceStage::Exec)
            continue;
        task_spans += e.phase == TracePhase::Span;
        starts += e.phase == TracePhase::Instant &&
                  std::string_view(e.name) == "worker-start";
        exits += e.phase == TracePhase::Instant &&
                 std::string_view(e.name) == "worker-exit";
    }
    EXPECT_EQ(task_spans, 6u);
    EXPECT_EQ(starts, 2u);
    EXPECT_EQ(exits, 2u);
}

// ---- recorder integration: the no-thread-per-epoch contract ----

TEST(ExecRecorder, SpawnsHostWorkersNotEpochs)
{
    GuestProgram prog = testprogs::lockedCounter(3, 600);
    RecorderOptions opts;
    opts.epochLength = 8'000;
    opts.hostWorkers = 2;
    UniparallelRecorder rec(prog, {}, opts);
    RecordOutcome out = rec.record();
    ASSERT_TRUE(out.ok);
    ASSERT_GT(out.recording.epochs.size(), 2u);

    // However many epochs ran, the pool spawned exactly hostWorkers
    // threads, and every epoch went through it as a task.
    EXPECT_EQ(out.execStats.workers, 2u);
    EXPECT_EQ(out.execStats.threadsSpawned, 2u);
    EXPECT_EQ(out.execStats.tasksSubmitted,
              out.recording.epochs.size());
    EXPECT_EQ(out.execStats.tasksExecuted,
              out.recording.epochs.size());
}

TEST(ExecRecorder, SynchronousModeSpawnsNothing)
{
    GuestProgram prog = testprogs::lockedCounter(3, 600);
    RecorderOptions opts;
    opts.epochLength = 8'000;
    opts.hostWorkers = 0;
    UniparallelRecorder rec(prog, {}, opts);
    RecordOutcome out = rec.record();
    ASSERT_TRUE(out.ok);
    EXPECT_EQ(out.execStats.threadsSpawned, 0u);
    // The inline pool still carried every epoch.
    EXPECT_EQ(out.execStats.tasksExecuted,
              out.recording.epochs.size());
}

TEST(ExecRecorder, SquashedEpochsNeverExecute)
{
    // Forced-divergence workload: racy updates make speculation
    // diverge, so the window is squashed repeatedly. The contract:
    // an epoch task either executes (one epoch-run span) or is
    // cancelled (no span, counted) — a squashed-but-unstarted epoch
    // must never run.
    GuestProgram prog = testprogs::racyCounter(4, 2'000);
    RecorderOptions opts;
    opts.epochLength = 8'000;
    opts.hostWorkers = 2;
    opts.maxInFlight = 4;
    TraceRecorder tr;
    opts.trace = &tr;
    UniparallelRecorder rec(prog, {}, opts);
    RecordOutcome out = rec.record();
    ASSERT_TRUE(out.ok);
    ASSERT_GT(out.recording.stats.rollbacks, 0u);

    std::uint64_t epoch_runs = 0;
    for (const TraceEvent &e : tr.events())
        epoch_runs += e.stage == TraceStage::EpochParallel &&
                      e.phase == TracePhase::Span &&
                      std::string_view(e.name) == "epoch-run";
    const ExecutorStats &st = out.execStats;
    // Executed tasks and epoch-run spans are the same events; a
    // cancelled task contributed no span.
    EXPECT_EQ(epoch_runs, st.tasksExecuted);
    EXPECT_EQ(st.tasksSubmitted, st.tasksExecuted + st.tasksCancelled);
    // Every committed epoch executed (squashes only discard younger
    // speculation).
    EXPECT_GE(st.tasksExecuted, out.recording.epochs.size());
}

// ---- recorder stress sweep: byte identity across pool shapes ----

TEST(ExecRecorder, StressSweepMatchesSynchronousReference)
{
    struct Case
    {
        const char *name;
        GuestProgram prog;
        const char *plan; // "" = no faults
    };
    const Case cases[] = {
        {"clean", testprogs::lockedCounter(3, 600), ""},
        {"racy", testprogs::racyCounter(4, 2'000), ""},
        {"faulty", testprogs::lockedCounter(3, 600),
         "worker-death=1:3,torn-ckpt=1:4"},
        {"racy-faulty", testprogs::racyCounter(4, 2'000),
         "worker-death=1:4"},
    };
    for (const Case &c : cases) {
        SCOPED_TRACE(c.name);
        auto record = [&](unsigned workers, unsigned window) {
            RecorderOptions opts;
            opts.epochLength = 8'000;
            opts.hostWorkers = workers;
            opts.maxInFlight = window;
            opts.keepCheckpoints = false;
            std::unique_ptr<FaultInjector> faults;
            if (c.plan[0]) {
                faults = std::make_unique<FaultInjector>(
                    FaultPlan::parse(c.plan, 99));
                opts.faults = faults.get();
            }
            UniparallelRecorder rec(c.prog, {}, opts);
            RecordOutcome out = rec.record();
            EXPECT_TRUE(out.ok);
            // The spawn counter holds under every shape.
            EXPECT_EQ(out.execStats.threadsSpawned, workers);
            return serializeRecording(out.recording);
        };
        std::vector<std::uint8_t> ref = record(0, 4);
        for (unsigned workers : {2u, 4u})
            for (unsigned window : {1u, 2u, 4u}) {
                SCOPED_TRACE("workers " + std::to_string(workers) +
                             " window " + std::to_string(window));
                EXPECT_EQ(ref, record(workers, window));
            }
    }
}

// ---- journal: async commit is byte-invisible ----

TEST(ExecJournal, AsyncCommitBytesIdenticalToSynchronous)
{
    GuestProgram prog = testprogs::lockedCounter(3, 600);
    RecorderOptions opts;
    opts.epochLength = 8'000;
    UniparallelRecorder rec(prog, {}, opts);
    RecordOutcome out = rec.record();
    ASSERT_TRUE(out.ok);
    ASSERT_GT(out.recording.epochs.size(), 2u);

    JournalWriter sync(prog, {}, 0x1234);
    JournalWriter async(prog, {}, 0x1234);
    async.enableAsyncCommit();
    for (std::size_t i = 0; i < out.recording.epochs.size(); ++i) {
        sync.appendEpoch(out.recording.epochs[i],
                         static_cast<EpochId>(i));
        async.appendEpoch(out.recording.epochs[i],
                          static_cast<EpochId>(i));
    }
    EXPECT_EQ(sync.bytes(), async.bytes());
    EXPECT_EQ(sync.frameEnds(), async.frameEnds());
    EXPECT_EQ(sync.epochsWritten(), async.epochsWritten());
    EXPECT_TRUE(async.alive());

    // Both images recover identically.
    RecoveredJournal rj = recoverJournal(async.bytes());
    EXPECT_TRUE(rj.report.clean());
    EXPECT_EQ(rj.report.framesRecovered,
              out.recording.epochs.size());
}

TEST(ExecJournal, AsyncCommitReproducesInjectedCrashes)
{
    GuestProgram prog = testprogs::lockedCounter(3, 600);
    RecorderOptions opts;
    opts.epochLength = 8'000;
    UniparallelRecorder rec(prog, {}, opts);
    RecordOutcome out = rec.record();
    ASSERT_TRUE(out.ok);

    // Separate injectors with the same plan/seed: decision streams
    // are per-writer, so each writer sees the identical fault
    // sequence and dies (or tears, or flips) identically.
    const char *plan = "journal-crash=1:4,torn-frame=1:3";
    FaultInjector f_sync(FaultPlan::parse(plan, 7));
    FaultInjector f_async(FaultPlan::parse(plan, 7));
    JournalWriter sync(prog, {}, 0x1234, &f_sync);
    JournalWriter async(prog, {}, 0x1234, &f_async);
    async.enableAsyncCommit();
    for (std::size_t i = 0; i < out.recording.epochs.size(); ++i) {
        sync.appendEpoch(out.recording.epochs[i],
                         static_cast<EpochId>(i));
        async.appendEpoch(out.recording.epochs[i],
                          static_cast<EpochId>(i));
    }
    EXPECT_EQ(sync.alive(), async.alive());
    EXPECT_EQ(sync.bytes(), async.bytes());
    EXPECT_EQ(sync.epochsWritten(), async.epochsWritten());
}

} // namespace
} // namespace dp
