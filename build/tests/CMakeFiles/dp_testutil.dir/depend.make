# Empty dependencies file for dp_testutil.
# This may be replaced when dependencies are built.
