/**
 * @file
 * Small non-cryptographic hashing utilities used for state digests.
 *
 * Divergence detection and replay verification compare 64-bit digests of
 * guest memory, thread contexts, and OS state. These only need to be
 * fast and well mixed; they are never exposed to adversarial input.
 */

#ifndef DP_COMMON_HASH_HH
#define DP_COMMON_HASH_HH

#include <cstddef>
#include <cstdint>
#include <span>

namespace dp
{

/** FNV-1a over a byte range. */
inline std::uint64_t
fnv1a64(std::span<const std::uint8_t> bytes,
        std::uint64_t seed = 0xcbf29ce484222325ull)
{
    std::uint64_t h = seed;
    for (std::uint8_t b : bytes) {
        h ^= b;
        h *= 0x100000001b3ull;
    }
    return h;
}

/** splitmix64 finalizer; good avalanche for combining words. */
inline std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Order-dependent combination of two 64-bit digests. */
inline std::uint64_t
hashCombine(std::uint64_t a, std::uint64_t b)
{
    return mix64(a ^ (b + 0x9e3779b97f4a7c15ull + (a << 6) + (a >> 2)));
}

/**
 * Word-at-a-time hash over a byte range; much faster than fnv1a64 for
 * page-sized inputs. Reads 8-byte chunks via memcpy, mixes the tail.
 */
inline std::uint64_t
fastHash64(std::span<const std::uint8_t> bytes,
           std::uint64_t seed = 0x9e3779b97f4a7c15ull)
{
    std::uint64_t h = seed;
    std::size_t i = 0;
    const std::size_t n = bytes.size();
    for (; i + 8 <= n; i += 8) {
        std::uint64_t w;
        __builtin_memcpy(&w, bytes.data() + i, 8);
        h = mix64(h ^ w) + 0x2545f4914f6cdd1dull;
    }
    std::uint64_t tail = 0;
    const std::size_t rem = n - i; // < 8 by the loop above
    for (std::size_t k = 0; k < rem && k < 8; ++k)
        tail |= static_cast<std::uint64_t>(bytes[i + k]) << (8 * k);
    h = mix64(h ^ tail);
    return mix64(h ^ n);
}

namespace detail
{

inline std::uint64_t
rotl64(std::uint64_t x, int r)
{
    return (x << r) | (x >> (64 - r));
}

inline std::uint64_t
load64le(const std::uint8_t *p)
{
    std::uint64_t w;
    __builtin_memcpy(&w, p, 8);
    return w;
}

/** Per-word lane step of wideHash64: one multiply and a rotate, so
 *  eight independent lanes keep the multiplier ports saturated. */
inline constexpr std::uint64_t wideLaneMul = 0x9ddfea08eb382d69ull;

inline std::uint64_t
wideLaneStep(std::uint64_t h, std::uint64_t w)
{
    return rotl64((h ^ w) * wideLaneMul, 29);
}

} // namespace detail

inline constexpr std::size_t wideHashLanes = 8;

/**
 * Reference implementation of wideHash64 (below): the same function
 * written as the obvious loop. Kept as the oracle the identity tests
 * compare the unrolled kernel against; never used on hot paths.
 */
inline std::uint64_t
wideHash64Reference(std::span<const std::uint8_t> bytes,
                    std::uint64_t seed = 0x9e3779b97f4a7c15ull)
{
    std::uint64_t h[wideHashLanes];
    for (std::size_t j = 0; j < wideHashLanes; ++j)
        h[j] = mix64(seed ^ (0x71ee5d61a8a9d2c1ull +
                             0x9e3779b97f4a7c15ull * j));
    const std::uint8_t *p = bytes.data();
    const std::size_t n = bytes.size();
    std::size_t i = 0;
    while (i + 8 * wideHashLanes <= n) {
        for (std::size_t j = 0; j < wideHashLanes; ++j)
            h[j] = detail::wideLaneStep(h[j],
                                        detail::load64le(p + i + 8 * j));
        i += 8 * wideHashLanes;
    }
    std::size_t lane = 0;
    while (i + 8 <= n) {
        h[lane] = detail::wideLaneStep(h[lane], detail::load64le(p + i));
        ++lane;
        i += 8;
    }
    if (i < n) {
        std::uint64_t tail = 0;
        for (std::size_t k = 0; i + k < n; ++k)
            tail |= static_cast<std::uint64_t>(p[i + k]) << (8 * k);
        h[lane] = detail::wideLaneStep(h[lane], tail);
    }
    std::uint64_t acc = mix64(n);
    for (std::size_t j = 0; j < wideHashLanes; ++j)
        acc = hashCombine(acc, h[j]);
    return mix64(acc);
}

/**
 * 8-lane word-striped hash: the page-digest kernel.
 *
 * fastHash64 is latency-bound — every 8-byte word waits for the full
 * mix64 of the previous one. This kernel runs eight independent lane
 * chains over 64-byte blocks (lane j sees words j, j+8, ...), so the
 * per-word work (one 64-bit multiply, one rotate) pipelines across
 * lanes and the loop runs at multiplier throughput instead of mix64
 * latency. Lanes are folded through mix64 only at the end.
 *
 * The unrolled body below and wideHash64Reference compute the same
 * pure function on every input and seed (pinned by common_test /
 * mem_test); page digests therefore never depend on which one a
 * build uses. There is deliberately no SIMD variant: SSE/AVX2 have
 * no 64x64 multiply, and eight scalar chains already saturate the
 * multiplier ports.
 */
inline std::uint64_t
wideHash64(std::span<const std::uint8_t> bytes,
           std::uint64_t seed = 0x9e3779b97f4a7c15ull)
{
    using detail::load64le;
    using detail::wideLaneStep;
    std::uint64_t h0 = mix64(seed ^ 0x71ee5d61a8a9d2c1ull);
    std::uint64_t h1 = mix64(seed ^ (0x71ee5d61a8a9d2c1ull +
                                     0x9e3779b97f4a7c15ull));
    std::uint64_t h2 = mix64(seed ^ (0x71ee5d61a8a9d2c1ull +
                                     2 * 0x9e3779b97f4a7c15ull));
    std::uint64_t h3 = mix64(seed ^ (0x71ee5d61a8a9d2c1ull +
                                     3 * 0x9e3779b97f4a7c15ull));
    std::uint64_t h4 = mix64(seed ^ (0x71ee5d61a8a9d2c1ull +
                                     4 * 0x9e3779b97f4a7c15ull));
    std::uint64_t h5 = mix64(seed ^ (0x71ee5d61a8a9d2c1ull +
                                     5 * 0x9e3779b97f4a7c15ull));
    std::uint64_t h6 = mix64(seed ^ (0x71ee5d61a8a9d2c1ull +
                                     6 * 0x9e3779b97f4a7c15ull));
    std::uint64_t h7 = mix64(seed ^ (0x71ee5d61a8a9d2c1ull +
                                     7 * 0x9e3779b97f4a7c15ull));
    const std::uint8_t *p = bytes.data();
    const std::size_t n = bytes.size();
    std::size_t i = 0;
    for (; i + 64 <= n; i += 64) {
        h0 = wideLaneStep(h0, load64le(p + i));
        h1 = wideLaneStep(h1, load64le(p + i + 8));
        h2 = wideLaneStep(h2, load64le(p + i + 16));
        h3 = wideLaneStep(h3, load64le(p + i + 24));
        h4 = wideLaneStep(h4, load64le(p + i + 32));
        h5 = wideLaneStep(h5, load64le(p + i + 40));
        h6 = wideLaneStep(h6, load64le(p + i + 48));
        h7 = wideLaneStep(h7, load64le(p + i + 56));
    }
    std::uint64_t h[wideHashLanes] = {h0, h1, h2, h3, h4, h5, h6, h7};
    std::size_t lane = 0;
    while (i + 8 <= n) {
        h[lane] = wideLaneStep(h[lane], load64le(p + i));
        ++lane;
        i += 8;
    }
    if (i < n) {
        std::uint64_t tail = 0;
        for (std::size_t k = 0; i + k < n; ++k)
            tail |= static_cast<std::uint64_t>(p[i + k]) << (8 * k);
        h[lane] = wideLaneStep(h[lane], tail);
    }
    std::uint64_t acc = mix64(n);
    for (std::size_t j = 0; j < wideHashLanes; ++j)
        acc = hashCombine(acc, h[j]);
    return mix64(acc);
}

/**
 * Incremental digest builder with value semantics.
 *
 * Feed words or byte ranges; the result depends on feed order, which is
 * what state comparison wants (structure-sensitive digests).
 */
class Digest
{
  public:
    /** Mix one 64-bit word into the digest. */
    void
    word(std::uint64_t w)
    {
        state_ = hashCombine(state_, mix64(w));
    }

    /** Mix a byte range into the digest. */
    void
    bytes(std::span<const std::uint8_t> b)
    {
        state_ = hashCombine(state_, fnv1a64(b));
    }

    /** Final digest value. */
    std::uint64_t value() const { return state_; }

  private:
    std::uint64_t state_ = 0x2545f4914f6cdd1dull;
};

} // namespace dp

#endif // DP_COMMON_HASH_HH
