# Empty dependencies file for dp_harness.
# This may be replaced when dependencies are built.
