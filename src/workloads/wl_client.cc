/**
 * @file
 * Client workloads: pbzip2 (block compression), pfscan (parallel
 * scan), aget (parallel download).
 */

#include "workloads/factories.hh"

#include "common/logging.hh"
#include "workloads/wl_common.hh"

namespace dp::workloads
{

using enum Reg;
namespace lib = dp::asmlib;

WorkloadBundle
makePbzip2(const WorkloadParams &p)
{
    const std::uint64_t block = 1024;
    const std::uint64_t nblocks = 32 * p.scale;
    std::vector<std::uint8_t> input =
        makeInputBytes(nblocks * block, p.seed, true);

    Assembler a;
    Label worker = a.newLabel();
    a.dataBytes(wlInput, input);

    emitSpawnJoin(a, p.threads, worker);
    emitWriteGlobalAndExit(a, gResult);

    // ---- worker: grab blocks from the pool, RLE-compress each ----
    a.bind(worker);
    a.lia(r8, wlGlobals);
    a.li(r9, static_cast<std::int64_t>(nblocks));

    Label grab = a.hereLabel();
    Label wdone = a.newLabel();
    a.li(r4, 1);
    a.fetchAdd(r4, r8, r4); // r4 = my block index
    a.bgeu(r4, r9, wdone);
    a.muli(r10, r4, static_cast<std::int64_t>(block));
    a.addi(r10, r10, static_cast<std::int64_t>(wlInput)); // in base
    a.muli(r11, r4, static_cast<std::int64_t>(2 * block));
    a.addi(r11, r11, static_cast<std::int64_t>(wlOutput)); // out base

    emitRleBlock(a, block);

    a.addi(r5, r8, gResult);
    a.fetchAdd(r4, r5, r15); // total compressed bytes
    a.jmp(grab);

    a.bind(wdone);
    lib::exitWith(a, 0);

    WorkloadBundle b{a.finish("pbzip2"), {}, rleLength(input, block)};
    return b;
}

WorkloadBundle
makePfscan(const WorkloadParams &p)
{
    const std::uint64_t chunk = 4096;
    const std::uint64_t nchunks = 16 * p.scale;
    // Pattern "GREP" as a little-endian 32-bit load.
    const std::int64_t pattern =
        'G' | ('R' << 8) | ('E' << 16) | (std::int64_t{'P'} << 24);

    std::vector<std::uint8_t> input =
        makeInputBytes(nchunks * chunk, p.seed, false);
    // Scrub accidental pattern bytes so the planted count is exact.
    for (auto &byte : input)
        if (byte == 'G')
            byte = 'g';
    // Plant occurrences at known spots, skipping chunk tails the scan
    // window (i <= chunk-4 within each chunk) cannot see.
    std::uint64_t planted = 0;
    for (std::size_t pos = 313; pos + 4 < input.size(); pos += 997) {
        if ((pos % chunk) > chunk - 4)
            continue;
        input[pos] = 'G';
        input[pos + 1] = 'R';
        input[pos + 2] = 'E';
        input[pos + 3] = 'P';
        ++planted;
    }

    Assembler a;
    Label worker = a.newLabel();
    a.dataBytes(wlInput, input);

    emitSpawnJoin(a, p.threads, worker);
    emitWriteGlobalAndExit(a, gResult2); // match count

    // ---- worker ----
    a.bind(worker);
    a.lia(r8, wlGlobals);
    a.li(r9, static_cast<std::int64_t>(nchunks));
    a.li(r13, pattern);
    a.lia(r7, wlLockBase); // match-list lock

    Label grab = a.hereLabel();
    Label wdone = a.newLabel();
    a.li(r4, 1);
    a.fetchAdd(r4, r8, r4); // r4 = chunk index
    a.bgeu(r4, r9, wdone);
    a.muli(r10, r4, static_cast<std::int64_t>(chunk));
    a.addi(r10, r10, static_cast<std::int64_t>(wlInput));
    a.li(r11, 0); // i within chunk

    Label scan = a.hereLabel();
    Label scanned = a.newLabel();
    Label nomatch = a.newLabel();
    a.li(r5, static_cast<std::int64_t>(chunk - 3));
    a.bgeu(r11, r5, scanned);
    a.add(r5, r10, r11);
    a.ld32(r6, r5, 0);
    a.bne(r6, r13, nomatch);
    //

    // Record the match position in the shared list under the lock.
    lib::lockAcquire(a, r7, r3);
    a.ld64(r5, r8, gResult2); // match count
    a.shli(r6, r5, 3);
    a.li(r12, static_cast<std::int64_t>(wlOutput));
    a.add(r6, r6, r12);
    a.muli(r12, r4, static_cast<std::int64_t>(chunk));
    a.add(r12, r12, r11); // absolute position
    a.st64(r6, 0, r12);
    a.addi(r5, r5, 1);
    a.st64(r8, gResult2, r5);
    lib::lockRelease(a, r7, r3);

    a.bind(nomatch);
    a.addi(r11, r11, 1);
    a.jmp(scan);
    a.bind(scanned);
    a.jmp(grab);

    a.bind(wdone);
    lib::exitWith(a, 0);

    WorkloadBundle b{a.finish("pfscan"), {}, planted};
    return b;
}

WorkloadBundle
makeAget(const WorkloadParams &p)
{
    const std::uint64_t total = 131'072ull * p.scale;
    dp_assert(total % p.threads == 0,
              "aget total must divide by thread count");
    const std::uint64_t share = total / p.threads;

    Assembler a;
    Label worker = a.newLabel();
    const Addr path = wlGlobals + 0x800;
    const std::string_view fname = "dl.out";
    a.dataBytes(path,
                {reinterpret_cast<const std::uint8_t *>(fname.data()),
                 fname.size()});

    emitSpawnJoin(a, p.threads, worker);
    emitWriteGlobalAndExit(a, gResult2); // bytes downloaded

    // ---- worker: stream conn (index+1) into its file region ----
    a.bind(worker);
    a.mov(r13, r1); // my index
    a.lia(r1, path);
    a.li(r2, openCreate | openWrite);
    a.sys(Sys::Open);
    a.mov(r14, r0); // fd
    a.mov(r1, r14);
    a.muli(r2, r13, static_cast<std::int64_t>(share));
    a.sys(Sys::Seek);
    a.addi(r15, r13, 1); // connection id
    a.li(r12, static_cast<std::int64_t>(share)); // remaining
    emitThreadBase(a, r13, r9); // receive buffer

    Label recv = a.hereLabel();
    Label wdone = a.newLabel();
    Label gotbytes = a.newLabel();
    Label noclamp = a.newLabel();
    a.beqz(r12, wdone);
    a.mov(r1, r15);
    a.mov(r2, r9);
    a.li(r3, 4096);
    a.bgeu(r12, r3, noclamp);
    a.mov(r3, r12);
    a.bind(noclamp);
    a.sys(Sys::NetRecv);
    a.bnez(r0, gotbytes);
    a.sys(Sys::Yield); // nothing arrived yet
    a.jmp(recv);
    a.bind(gotbytes);
    a.mov(r11, r0); // n
    a.mov(r1, r14);
    a.mov(r2, r9);
    a.mov(r3, r11);
    a.sys(Sys::Write);
    a.sub(r12, r12, r11);
    a.jmp(recv);

    a.bind(wdone);
    a.ld8(r4, r9, 0); // first byte into the checksum
    a.lia(r5, wlGlobals + gResult);
    a.fetchAdd(r6, r5, r4);
    a.lia(r5, wlGlobals + gResult2);
    a.li(r4, static_cast<std::int64_t>(share));
    a.fetchAdd(r6, r5, r4);
    lib::exitWith(a, 0);

    MachineConfig cfg;
    cfg.netSeed = p.seed;
    cfg.netBytesPerConn = share;
    cfg.netCyclesPerByte = 2;
    WorkloadBundle b{a.finish("aget"), std::move(cfg), total};
    return b;
}

} // namespace dp::workloads
