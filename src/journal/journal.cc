#include "journal/journal.hh"

#include "common/bytes.hh"
#include "common/crc32.hh"
#include "common/hash.hh"
#include "common/logging.hh"
#include "journal/frame.hh"
#include "journal/sharded.hh"
#include "os/machine.hh"
#include "replay/recording_io.hh"
#include "trace/trace.hh"

namespace dp
{

using journal_detail::Frame;
using journal_detail::FrameScanError;
using journal_detail::makeFrame;
using journal_detail::parseFrame;
using journal_detail::reportScanStop;

namespace
{

std::vector<std::uint8_t>
headerPayload(const GuestProgram &prog, const MachineConfig &cfg,
              std::uint64_t options_fingerprint)
{
    ByteWriter p;
    p.u64fixed((std::uint64_t{journalMagic} << 32) | journalVersion);
    writeGuestProgram(p, prog);
    writeMachineConfig(p, cfg);
    p.u64fixed(options_fingerprint);
    return p.take();
}

} // namespace

JournalWriter::JournalWriter(const GuestProgram &prog,
                             const MachineConfig &cfg,
                             std::uint64_t options_fingerprint,
                             FaultInjector *faults)
    : faults_(faults)
{
    buf_ = makeFrame(journalHeaderKind,
                     headerPayload(prog, cfg, options_fingerprint));
    frameEnds_.push_back(buf_.size());
}

JournalWriter::JournalWriter(std::vector<std::uint8_t> valid_prefix,
                             std::uint64_t next_epoch_index,
                             FaultInjector *faults)
    : buf_(std::move(valid_prefix)), nextIndex_(next_epoch_index),
      faults_(faults)
{
    frameEnds_.push_back(buf_.size());
}

JournalWriter::~JournalWriter()
{
    // Drain and join the committer before the file closes: every
    // append handed off before destruction lands on disk.
    committer_.reset();
    if (file_)
        std::fclose(file_);
}

void
JournalWriter::enableAsyncCommit()
{
    if (committer_)
        return;
    // One worker keeps commits FIFO — the crash guarantee *is* the
    // ordering. Capacity 2 is the bounded double-buffer: one frame
    // committing, one queued, then appendEpoch back-pressures. The
    // pool is deliberately untraced: journal-append spans already
    // cover the work, and a second pool on the Exec stage would
    // interleave with the session executor's track 0.
    committer_ = std::make_unique<Executor>(
        1, ExecutorOptions{.queueCapacity = 2});
}

void
JournalWriter::appendEpoch(const EpochRecord &e, EpochId index)
{
    if (!committer_) {
        commitEpoch(e, index);
        return;
    }
    // Hand off a copy in append order; the single worker preserves
    // FIFO, so the commit-side ordering assert guards exactly the
    // same misuse it does synchronously.
    committer_->submit([this, e, index] { commitEpoch(e, index); },
                       {.label = "journal-commit"});
}

void
JournalWriter::commitEpoch(const EpochRecord &e, EpochId index)
{
    if (!alive_)
        return;
    dp_assert(index == nextIndex_,
              "journal epochs must append in commit order");
    ScopedTraceSpan span(trace_, TraceStage::Journal, 0,
                         "journal-append", "journal");
    span.arg("epoch", index);

    // A writer that dies between frames leaves the journal ending
    // exactly at a frame boundary: the best crash shape.
    if (faults_ && faults_->fire(FaultSite::JournalCrash, index)) {
        alive_ = false;
        return;
    }

    ByteWriter p;
    p.varu(index);
    p.varu(e.dirtyPages);
    p.varu(e.tpInstrs);
    writeEpochRecord(p, e);
    std::vector<std::uint8_t> frame =
        makeFrame(journalEpochKind, p.take());
    span.arg("bytes", frame.size());

    if (faults_ && faults_->fire(FaultSite::TornFrameWrite, index)) {
        // Died mid-write: a deterministic strict prefix of the frame
        // lands on disk and the commit marker never does.
        std::size_t torn =
            1 + static_cast<std::size_t>(
                    mix64(0x7042f6a3c01d58b9ull ^
                          (index * 0x9e3779b97f4a7c15ull)) %
                    (frame.size() - 1));
        buf_.insert(buf_.end(), frame.begin(), frame.begin() + torn);
        alive_ = false;
        flushTail();
        return;
    }

    buf_.insert(buf_.end(), frame.begin(), frame.end());
    if (faults_ && faults_->fire(FaultSite::JournalBitFlip, index)) {
        // Storage corruption inside the committed frame; the frame
        // CRC (or commit marker check) must catch it on recovery.
        std::uint64_t h = mix64(0xb17f11b2d9c04e6full ^
                                (index * 0x9e3779b97f4a7c15ull));
        std::size_t pos = buf_.size() - frame.size() +
                          static_cast<std::size_t>(h % frame.size());
        buf_[pos] ^= static_cast<std::uint8_t>(1u << ((h >> 32) % 8));
    }
    ++nextIndex_;
    frameEnds_.push_back(buf_.size());
    flushTail();
}

bool
JournalWriter::streamTo(const std::string &path)
{
    // Settle any in-flight commits before the file handle moves.
    flush();
    if (file_) {
        std::fclose(file_);
        file_ = nullptr;
    }
    file_ = std::fopen(path.c_str(), "wb");
    if (!file_) {
        dp_warn("cannot open journal file ", path);
        return false;
    }
    flushed_ = 0;
    flushTail();
    return true;
}

void
JournalWriter::flushTail()
{
    if (!file_)
        return;
    if (flushed_ < buf_.size()) {
        std::fwrite(buf_.data() + flushed_, 1, buf_.size() - flushed_,
                    file_);
        flushed_ = buf_.size();
    }
    std::fflush(file_);
}

const char *
journalErrorName(JournalError e)
{
    switch (e) {
      case JournalError::None:
        return "none";
      case JournalError::MissingHeader:
        return "missing-header";
      case JournalError::BadMagic:
        return "bad-magic";
      case JournalError::BadVersion:
        return "bad-version";
      case JournalError::TruncatedFrame:
        return "truncated-frame";
      case JournalError::BadChecksum:
        return "bad-checksum";
      case JournalError::BadCommitMarker:
        return "bad-commit-marker";
      case JournalError::BadFrameKind:
        return "bad-frame-kind";
      case JournalError::BadPayload:
        return "bad-payload";
      case JournalError::BadEpochIndex:
        return "bad-epoch-index";
      case JournalError::StreamMismatch:
        return "stream-mismatch";
      case JournalError::InconsistentCut:
        return "inconsistent-cut";
    }
    return "invalid";
}

RecoveredJournal
recoverJournal(std::span<const std::uint8_t> bytes)
{
    // A v3 stream is one shard of a sharded journal: scan it for a
    // per-stream report, but only recoverShardedJournal() can merge
    // shards back into a Recording.
    if (peekStreamInfo(bytes))
        return journal_detail::recoverStreamReport(bytes);

    RecoveredJournal out;
    RecoveryReport &rep = out.report;
    rep.bytesDiscarded = bytes.size();
    if (bytes.empty()) {
        rep.tailError = JournalError::MissingHeader;
        rep.detail = "empty journal image";
        return out;
    }

    std::size_t pos = 0;
    try {
        Frame header = parseFrame(bytes, pos);
        if (header.kind != journalHeaderKind)
            throw FrameScanError{JournalError::MissingHeader, 0,
                                 "first frame is not a header frame"};
        ByteReader p(header.payload);
        std::uint64_t magic = p.u64fixed();
        if (magic >> 32 != journalMagic)
            throw FrameScanError{JournalError::BadMagic, 0,
                                 "not a uniplay epoch journal"};
        if ((magic & 0xffffffff) != journalVersion)
            throw FrameScanError{
                JournalError::BadVersion, 0,
                detail::concat("unsupported journal version ",
                               magic & 0xffffffff)};
        GuestProgram prog = readGuestProgram(p);
        MachineConfig cfg = readMachineConfig(p);
        out.optionsFingerprint = p.u64fixed();
        if (!p.atEnd())
            throw FrameScanError{
                JournalError::BadPayload, pos,
                "trailing bytes in the header payload"};
        out.recording =
            std::make_unique<Recording>(prog, std::move(cfg));
    } catch (const FrameScanError &f) {
        reportScanStop(rep, f);
        return out;
    } catch (const RecordingDecodeError &f) {
        reportScanStop(rep, {JournalError::BadPayload, f.offset,
                             f.detail});
        return out;
    } catch (const ByteStreamError &e) {
        reportScanStop(rep, {JournalError::BadPayload, e.offset,
                             "header payload ended early"});
        return out;
    } catch (const std::bad_alloc &) {
        reportScanStop(rep, {JournalError::BadPayload, 0,
                             "allocation rejected while recovering"});
        return out;
    }

    rep.headerOk = true;
    rep.committedBytes = pos;
    Recording &rec = *out.recording;
    try {
        while (pos < bytes.size()) {
            std::size_t frame_start = pos;
            Frame f = parseFrame(bytes, pos);
            if (f.kind != journalEpochKind)
                throw FrameScanError{
                    JournalError::BadFrameKind, frame_start,
                    "header frame after frame 0"};
            ByteReader p(f.payload);
            std::uint64_t index = p.varu();
            if (index != rec.epochs.size())
                throw FrameScanError{
                    JournalError::BadEpochIndex, frame_start,
                    detail::concat("epoch frame ", index, " where ",
                                   rec.epochs.size(), " expected")};
            std::uint64_t dirty = p.varu();
            std::uint64_t tp_instrs = p.varu();
            EpochRecord e = readEpochRecord(p, index);
            if (!p.atEnd())
                throw FrameScanError{
                    JournalError::BadPayload, frame_start,
                    "trailing bytes in an epoch payload"};
            e.dirtyPages = dirty;
            e.tpInstrs = tp_instrs;
            rec.epochs.push_back(std::move(e));
            rep.committedBytes = pos;
            ++rep.framesRecovered;
        }
    } catch (const FrameScanError &f) {
        reportScanStop(rep, f);
    } catch (const RecordingDecodeError &f) {
        reportScanStop(rep, {JournalError::BadPayload, f.offset,
                             f.detail});
    } catch (const ByteStreamError &e) {
        reportScanStop(rep, {JournalError::BadPayload, e.offset,
                             "epoch payload ended early"});
    } catch (const std::bad_alloc &) {
        reportScanStop(rep, {JournalError::BadPayload, pos,
                             "allocation rejected while recovering"});
    }
    rep.bytesDiscarded = bytes.size() - rep.committedBytes;

    // Reconstruct everything serializeRecording persists beyond the
    // epochs themselves, so the recovered prefix converts to the same
    // bytes an uninterrupted session over these epochs would emit —
    // and replay-verifies as-is.
    rec.stats.epochs =
        static_cast<std::uint32_t>(rec.epochs.size());
    for (const EpochRecord &e : rec.epochs) {
        rec.stats.rollbacks += e.diverged ? 1 : 0;
        rec.stats.checkpointPages += e.dirtyPages;
        rec.stats.tpTotalCycles += e.tpCycles;
        rec.stats.epTotalCycles += e.epCycles;
        rec.stats.tpInstrs += e.tpInstrs;
        rec.stats.epInstrs += e.epInstrs;
    }
    rec.finalStateHash =
        rec.epochs.empty()
            ? Machine(rec.program(), rec.config()).stateHash()
            : rec.epochs.back().endStateHash;
    return out;
}

VerifyResult
verifyImage(std::span<const std::uint8_t> bytes)
{
    VerifyResult out;
    if (bytes.empty()) {
        out.detail = "empty file";
        return out;
    }
    // A journal's first byte is its header frame's kind; an
    // artifact's is the low byte of its version word. They never
    // collide, so one byte sniffs the format.
    if (bytes[0] == journalHeaderKind) {
        out.kind = UniplayFileKind::Journal;
        RecoveredJournal rj = recoverJournal(bytes);
        out.epochs = rj.report.framesRecovered;
        // A lone v3 stream names its place in the sharded set so the
        // verdict points the user at recovering the whole set.
        const std::string what =
            rj.report.streamCount > 1
                ? detail::concat("journal stream ",
                                 rj.report.streamIndex, "/",
                                 rj.report.streamCount)
                : std::string("journal");
        if (rj.report.clean()) {
            out.ok = true;
            out.detail = detail::concat(
                what, ": ", rj.report.framesRecovered,
                " committed epoch frame(s), ",
                rj.report.committedBytes,
                " bytes, every checksum valid");
        } else {
            out.detail = detail::concat(
                what, ": ", journalErrorName(rj.report.tailError),
                " at byte ", rj.report.errorOffset, " (",
                rj.report.detail, "); ", rj.report.framesRecovered,
                " epoch frame(s) committed, ",
                rj.report.bytesDiscarded, " byte(s) lost");
        }
        return out;
    }
    if (bytes.size() < 8) {
        // Too short to even carry an artifact's magic word.
        out.detail = "not a uniplay artifact or journal";
        return out;
    }
    RecordingLoadResult res = loadRecording(bytes);
    if (res.ok()) {
        out.kind = UniplayFileKind::Artifact;
        out.ok = true;
        out.epochs = res.recording->epochs.size();
        out.detail = detail::concat(
            "artifact: ", out.epochs, " epoch(s), ", bytes.size(),
            " bytes, structurally valid");
        return out;
    }
    if (res.error == LoadError::BadMagic) {
        out.detail = "not a uniplay artifact or journal";
        return out;
    }
    out.kind = UniplayFileKind::Artifact;
    out.detail = detail::concat(
        "artifact: ", loadErrorName(res.error), " at byte ",
        res.errorOffset, " (", res.detail, ")");
    return out;
}

} // namespace dp
