/**
 * @file
 * Journal shipping: wire protocol, acks, and shipping metrics.
 *
 * The paper's fault-tolerance story is that uniparallel logs are
 * small enough to stream to a second machine which replays epochs as
 * they commit and stands ready to take over. src/ship is that story
 * made concrete: a ShipSender (sender.hh) reads committed journal
 * stream images (v2 or sharded v3) straight off the writer and ships
 * byte ranges to a StandbyApplier (standby.hh) across a
 * fault-injectable ShipLink (link.hh).
 *
 * The unit of transfer is a *batch*: a CRC-framed byte range of one
 * journal stream image. Batches reuse the journal frame envelope
 * shape with their own kind byte:
 *
 *   batch := u8 0x53 | varu payloadLen | payload
 *            | u64fixed crc32c(kind || payload) | u8 0x5A
 *   payload := varu batchSeq | varu streamIndex | varu streamCount
 *              | varu byteOffset | varu byteLen | bytes
 *
 * Batches are byte-oriented, not frame-oriented: a batch boundary may
 * fall inside a journal frame, and the standby's incremental frame
 * parser simply waits for the rest. Because every batch names its
 * absolute (stream, offset), the protocol is idempotent: duplicates
 * are acknowledged without effect, reordered batches are re-sent
 * after a timeout and the stale copy is absorbed, and a gap (offset
 * beyond the standby's image) is refused with the standby's real
 * offsets so the sender rewinds. The ack carries the standby's full
 * watermark state — per-stream byte offsets plus the
 * persisted/replayed epoch watermark pair — so one ack is always
 * enough to resynchronize.
 */

#ifndef DP_SHIP_SHIP_HH
#define DP_SHIP_SHIP_HH

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "trace/json.hh"

namespace dp
{

/** Kind byte of a shipping batch frame ('S'); distinct from the
 *  journal's header/epoch kinds so a batch can never be mistaken for
 *  journal bytes. */
inline constexpr std::uint8_t shipBatchKind = 0x53;

/** One shipped byte range of one journal stream. */
struct ShipBatch
{
    /** Monotonic per-sender sequence number (also the fault scope for
     *  every link site, so each batch's failures are an independent,
     *  seeded decision stream). */
    std::uint64_t seq = 0;
    /** Which journal stream the bytes belong to. */
    std::uint32_t stream = 0;
    /** Stream count of the set (1 for a v2 journal). */
    std::uint32_t streamCount = 1;
    /** Absolute byte offset of @p bytes within the stream image. */
    std::uint64_t offset = 0;
    std::vector<std::uint8_t> bytes;

    bool operator==(const ShipBatch &) const = default;
};

/** Encode @p b into its CRC-framed wire form. */
std::vector<std::uint8_t> encodeShipBatch(const ShipBatch &b);

/** Decode a wire batch; nullopt on any structural or CRC damage (a
 *  torn batch is rejected whole — never partially applied). */
std::optional<ShipBatch>
decodeShipBatch(std::span<const std::uint8_t> wire);

/**
 * The standby's reply to one delivered batch. Carries the standby's
 * complete watermark state, so the sender can resynchronize from any
 * single ack after a gap, duplicate, reorder, torn batch, or standby
 * crash.
 */
struct ShipAck
{
    /** The batch's bytes are (now or already) part of the standby's
     *  image. False: torn/gap/crash — consult streamOffsets. */
    bool accepted = false;
    /** The standby failed closed (digest mismatch or structural
     *  corruption) and will accept nothing further. */
    bool failedClosed = false;
    /** Sequence number of the batch this ack answers (0 if the batch
     *  was too damaged to carry one). */
    std::uint64_t batchSeq = 0;
    /** The standby's authoritative per-stream image sizes. */
    std::vector<std::uint64_t> streamOffsets;
    /** Epochs whose frames are fully persisted in standby images. */
    std::uint64_t persistedEpochs = 0;
    /** Epochs the standby replica has replayed. */
    std::uint64_t replayedEpochs = 0;
};

/** What the link did to the batches that crossed it. */
struct LinkStats
{
    std::uint64_t transmitted = 0; ///< transmit() calls
    std::uint64_t delivered = 0;   ///< receive() invocations
    std::uint64_t dropped = 0;
    std::uint64_t duplicated = 0;
    std::uint64_t reordered = 0; ///< batches held for late delivery
    std::uint64_t torn = 0;      ///< batches truncated mid-flight
    std::uint64_t disconnects = 0;
};

/** Sender-side counters and watermarks. */
struct ShipSenderStats
{
    std::uint64_t batchesSent = 0;  ///< transmissions incl. retries
    std::uint64_t batchesAcked = 0; ///< transmissions acknowledged
    std::uint64_t retries = 0;      ///< re-transmissions
    std::uint64_t timeouts = 0;     ///< transmissions with no ack
    std::uint64_t resyncs = 0;      ///< rewinds from standby offsets
    std::uint64_t reconnects = 0;   ///< link re-establishments
    /** Virtual backoff time accumulated (deterministic ticks, not
     *  wall-clock: capped exponential plus seeded jitter). */
    std::uint64_t backoffTicks = 0;
    std::uint64_t bytesShipped = 0; ///< payload bytes acked durable
    /** Epochs the primary has committed (the shipped watermark). */
    std::uint64_t epochsCommitted = 0;
    /** Standby watermarks as of the last ack (the acked pair). */
    std::uint64_t ackedPersistedEpochs = 0;
    std::uint64_t ackedReplayedEpochs = 0;
    /** The per-batch retry budget was exhausted: the link is
     *  considered dead and the standby stays stale but consistent. */
    bool linkFailed = false;
    /** The standby reported failedClosed. */
    bool standbyFailed = false;
};

/** Standby-side counters and watermarks. */
struct StandbyStats
{
    std::uint64_t batchesReceived = 0;
    std::uint64_t batchesAccepted = 0;
    std::uint64_t duplicateBatches = 0; ///< absorbed idempotently
    std::uint64_t gapNacks = 0;         ///< offset beyond the image
    std::uint64_t tornRejected = 0;     ///< batch CRC failures
    std::uint64_t crashes = 0;          ///< StandbyCrash recoveries
    std::uint64_t lagWaits = 0;  ///< acks held for the lag bound
    std::uint64_t maxLag = 0;    ///< max persisted-replayed observed
    std::uint64_t persistedEpochs = 0;
    std::uint64_t replayedEpochs = 0;
};

/**
 * One dp-metrics-v1 snapshot of a shipping session: the
 * shipped/acked/persisted/replayed watermark gauges plus every
 * sender, link, and standby counter.
 */
JsonValue shipMetricsSnapshot(const ShipSenderStats &sender,
                              const StandbyStats &standby,
                              const LinkStats &link);

} // namespace dp

#endif // DP_SHIP_SHIP_HH
