/**
 * @file
 * E2/E3 — the headline figure: DoublePlay logging overhead with spare
 * cores, at 2 and 4 worker threads.
 *
 * Abstract: "with spare cores, DoublePlay reduces logging overhead to
 * an average of 15% with two worker threads and 28% with four
 * threads." The shape to reproduce: modest average overhead at 2
 * threads, roughly double at 4; compute-bound kernels cheapest,
 * syscall/lock-heavy server workloads most expensive.
 */

#include "bench_common.hh"

using namespace dp;
using namespace dp::bench;

int
main()
{
    banner("E2+E3 (Fig: overhead, spare cores)",
           "DoublePlay logging overhead, C = 2N CPUs",
           "[abstract] avg 15% @ 2 threads, 28% @ 4 threads");

    Table t({"benchmark", "2T native Mcyc", "2T overhead",
             "2T epochs", "4T native Mcyc", "4T overhead",
             "4T epochs"});

    RunningStat slow2, slow4;
    std::vector<BenchResult> rows;
    for (const auto &w : workloads::allWorkloads()) {
        harness::Measurement m2 = harness::measure(w,
                                                   defaultOptions(2));
        harness::Measurement m4 = harness::measure(w,
                                                   defaultOptions(4));
        if (!m2.recordOk || !m4.recordOk) {
            std::cerr << "record failed for " << w.name << "\n";
            return 1;
        }
        rows.push_back(toBenchResult(m2));
        rows.push_back(toBenchResult(m4));
        slow2.add(m2.slowdown);
        slow4.add(m4.slowdown);
        t.addRow({w.name,
                  Table::num(static_cast<double>(m2.native.cycles) /
                                 1e6,
                             2),
                  Table::pct(m2.overhead),
                  Table::num(static_cast<std::uint64_t>(m2.epochs)),
                  Table::num(static_cast<double>(m4.native.cycles) /
                                 1e6,
                             2),
                  Table::pct(m4.overhead),
                  Table::num(static_cast<std::uint64_t>(m4.epochs))});
    }
    t.addRow({"geomean", "", Table::pct(slow2.geomean() - 1.0), "", "",
              Table::pct(slow4.geomean() - 1.0), ""});
    t.print(std::cout);

    std::cout << "\npaper:    15% @ 2T, 28% @ 4T (average)\n"
              << "measured: " << Table::pct(slow2.geomean() - 1.0)
              << " @ 2T, " << Table::pct(slow4.geomean() - 1.0)
              << " @ 4T (geomean)\n";
    emitBenchJson("overhead_spare", rows);
    return 0;
}
