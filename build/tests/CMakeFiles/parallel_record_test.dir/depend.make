# Empty dependencies file for parallel_record_test.
# This may be replaced when dependencies are built.
