/**
 * @file
 * Direct multiprocessor-logging baselines for the E9 comparison.
 *
 * DoublePlay's motivation is that logging shared-memory ordering on a
 * multiprocessor is expensive. These two recorders implement the
 * classical alternatives on the same multiprocessor simulator so the
 * benches can reproduce the comparison:
 *
 *  - CrewRecorder: SMP-ReVirt-style CREW page ownership. Every
 *    ownership transition (concurrent-read <-> exclusive-write) takes
 *    a page-protection fault on the participating CPUs and appends an
 *    ordering entry to the log.
 *
 *  - ValueLogRecorder: iDNA/Nirvana-style load-value logging. Every
 *    load that may observe another thread's write (its page has a
 *    different last writer) logs the loaded value.
 *
 * Both also log syscall results, as any replay system must.
 */

#ifndef DP_BASELINE_BASELINES_HH
#define DP_BASELINE_BASELINES_HH

#include <cstdint>

#include "os/machine.hh"
#include "os/run_types.hh"
#include "timing/cost_model.hh"
#include "vm/program.hh"

namespace dp
{

/** Shared configuration for baseline record runs. */
struct BaselineOptions
{
    CpuId cpus = 4;
    std::uint64_t seed = 1;
    std::uint64_t fuel = std::uint64_t{1} << 33;
};

/** Outcome of a baseline record run. */
struct BaselineResult
{
    StopReason reason = StopReason::AllExited;
    Cycles cycles = 0;          ///< recorded-run virtual duration
    std::uint64_t instrs = 0;
    std::uint64_t events = 0;   ///< ownership faults / logged loads
    std::uint64_t logBytes = 0; ///< modeled log size
    std::uint64_t exitCode = 0;
};

/** CREW page-ownership order logging (SMP-ReVirt-like). */
class CrewRecorder
{
  public:
    CrewRecorder(const GuestProgram &prog, MachineConfig cfg,
                 BaselineOptions opts = {}, CostModel costs = {});
    BaselineResult record();

  private:
    const GuestProgram *prog_;
    MachineConfig cfg_;
    BaselineOptions opts_;
    CostModel costs_;
};

/** Shared-load value logging (Nirvana/iDNA-like). */
class ValueLogRecorder
{
  public:
    ValueLogRecorder(const GuestProgram &prog, MachineConfig cfg,
                     BaselineOptions opts = {}, CostModel costs = {});
    BaselineResult record();

  private:
    const GuestProgram *prog_;
    MachineConfig cfg_;
    BaselineOptions opts_;
    CostModel costs_;
};

/** Uninstrumented native run (the overhead denominator). */
struct NativeResult
{
    StopReason reason = StopReason::AllExited;
    Cycles cycles = 0;
    std::uint64_t instrs = 0;
    std::uint64_t syncOps = 0;
    std::uint64_t syscalls = 0;
    std::uint64_t exitCode = 0;
    std::uint64_t residentPages = 0;
    std::uint64_t stdoutLen = 0;
    std::uint32_t threadsPeak = 0;
};

/** Run @p prog natively on @p cpus simulated CPUs. */
NativeResult runNativeBaseline(const GuestProgram &prog,
                               const MachineConfig &cfg, CpuId cpus,
                               std::uint64_t seed,
                               std::uint64_t fuel = std::uint64_t{1}
                                                    << 33,
                               CostModel costs = {});

} // namespace dp

#endif // DP_BASELINE_BASELINES_HH
