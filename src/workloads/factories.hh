/**
 * @file
 * Internal workload factory declarations (see registry.hh for the
 * public catalogue).
 */

#ifndef DP_WORKLOADS_FACTORIES_HH
#define DP_WORKLOADS_FACTORIES_HH

#include "workloads/registry.hh"

namespace dp::workloads
{

WorkloadBundle makePbzip2(const WorkloadParams &p);
WorkloadBundle makePfscan(const WorkloadParams &p);
WorkloadBundle makeAget(const WorkloadParams &p);
WorkloadBundle makeApache(const WorkloadParams &p);
WorkloadBundle makeMysql(const WorkloadParams &p);
WorkloadBundle makeFft(const WorkloadParams &p);
WorkloadBundle makeLu(const WorkloadParams &p);
WorkloadBundle makeRadix(const WorkloadParams &p);
WorkloadBundle makeOcean(const WorkloadParams &p);
WorkloadBundle makeWater(const WorkloadParams &p);

} // namespace dp::workloads

#endif // DP_WORKLOADS_FACTORIES_HH
