# Empty compiler generated dependencies file for dp_common.
# This may be replaced when dependencies are built.
