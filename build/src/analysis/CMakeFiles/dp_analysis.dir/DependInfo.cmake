
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/debugger.cc" "src/analysis/CMakeFiles/dp_analysis.dir/debugger.cc.o" "gcc" "src/analysis/CMakeFiles/dp_analysis.dir/debugger.cc.o.d"
  "/root/repo/src/analysis/profiler.cc" "src/analysis/CMakeFiles/dp_analysis.dir/profiler.cc.o" "gcc" "src/analysis/CMakeFiles/dp_analysis.dir/profiler.cc.o.d"
  "/root/repo/src/analysis/race_detector.cc" "src/analysis/CMakeFiles/dp_analysis.dir/race_detector.cc.o" "gcc" "src/analysis/CMakeFiles/dp_analysis.dir/race_detector.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/replay/CMakeFiles/dp_replay.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/log/CMakeFiles/dp_log.dir/DependInfo.cmake"
  "/root/repo/build/src/ckpt/CMakeFiles/dp_ckpt.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/dp_os.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/dp_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
