
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/parallel_replay.cpp" "examples/CMakeFiles/parallel_replay.dir/parallel_replay.cpp.o" "gcc" "examples/CMakeFiles/parallel_replay.dir/parallel_replay.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/replay/CMakeFiles/dp_replay.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/dp_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/dp_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/dp_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/dp_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/log/CMakeFiles/dp_log.dir/DependInfo.cmake"
  "/root/repo/build/src/ckpt/CMakeFiles/dp_ckpt.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/dp_os.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/dp_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
