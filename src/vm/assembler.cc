#include "vm/assembler.hh"

#include "common/logging.hh"

namespace dp
{

Label
Assembler::newLabel()
{
    Label l{static_cast<std::uint32_t>(labelPos_.size())};
    labelPos_.push_back(unresolved);
    return l;
}

void
Assembler::bind(Label l)
{
    dp_assert(l.id < labelPos_.size(), "bind of unknown label");
    dp_assert(labelPos_[l.id] == unresolved, "label bound twice");
    labelPos_[l.id] = static_cast<std::int64_t>(code_.size());
}

Label
Assembler::hereLabel()
{
    Label l = newLabel();
    bind(l);
    return l;
}

void
Assembler::emit(Opcode op, Reg rd, Reg rs1, Reg rs2, std::int64_t imm)
{
    code_.push_back(Instr{op, rd, rs1, rs2, imm});
}

void
Assembler::emitBranch(Opcode op, Reg rs1, Reg rs2, Label t)
{
    dp_assert(t.id < labelPos_.size(), "branch to unknown label");
    fixups_.emplace_back(code_.size(), t.id);
    emit(op, Reg::r0, rs1, rs2, unresolved);
}

void Assembler::nop() { emit(Opcode::Nop, Reg::r0, Reg::r0, Reg::r0, 0); }

void
Assembler::li(Reg rd, std::int64_t imm)
{
    emit(Opcode::Li, rd, Reg::r0, Reg::r0, imm);
}

void
Assembler::liLabel(Reg rd, Label t)
{
    dp_assert(t.id < labelPos_.size(), "liLabel of unknown label");
    fixups_.emplace_back(code_.size(), t.id);
    emit(Opcode::Li, rd, Reg::r0, Reg::r0, unresolved);
}

void
Assembler::mov(Reg rd, Reg rs)
{
    emit(Opcode::Mov, rd, rs, Reg::r0, 0);
}

#define DP_ALU3(fn, OP) \
    void Assembler::fn(Reg rd, Reg a, Reg b) \
    { \
        emit(Opcode::OP, rd, a, b, 0); \
    }

DP_ALU3(add, Add)
DP_ALU3(sub, Sub)
DP_ALU3(mul, Mul)
DP_ALU3(divu, Divu)
DP_ALU3(remu, Remu)
DP_ALU3(and_, And)
DP_ALU3(or_, Or)
DP_ALU3(xor_, Xor)
DP_ALU3(shl, Shl)
DP_ALU3(shr, Shr)
DP_ALU3(sar, Sar)
DP_ALU3(sltu, SltU)
DP_ALU3(slts, SltS)
DP_ALU3(seq, Seq)

#undef DP_ALU3

#define DP_ALUI(fn, OP) \
    void Assembler::fn(Reg rd, Reg a, std::int64_t imm) \
    { \
        emit(Opcode::OP, rd, a, Reg::r0, imm); \
    }

DP_ALUI(addi, Addi)
DP_ALUI(andi, Andi)
DP_ALUI(ori, Ori)
DP_ALUI(xori, Xori)
DP_ALUI(shli, Shli)
DP_ALUI(shri, Shri)
DP_ALUI(muli, Muli)

#undef DP_ALUI

#define DP_LOAD(fn, OP) \
    void Assembler::fn(Reg rd, Reg base, std::int64_t off) \
    { \
        emit(Opcode::OP, rd, base, Reg::r0, off); \
    }

DP_LOAD(ld8, Ld8)
DP_LOAD(ld16, Ld16)
DP_LOAD(ld32, Ld32)
DP_LOAD(ld64, Ld64)

#undef DP_LOAD

#define DP_STORE(fn, OP) \
    void Assembler::fn(Reg base, std::int64_t off, Reg src) \
    { \
        emit(Opcode::OP, Reg::r0, base, src, off); \
    }

DP_STORE(st8, St8)
DP_STORE(st16, St16)
DP_STORE(st32, St32)
DP_STORE(st64, St64)

#undef DP_STORE

void Assembler::beq(Reg a, Reg b, Label t)
{
    emitBranch(Opcode::Beq, a, b, t);
}
void Assembler::bne(Reg a, Reg b, Label t)
{
    emitBranch(Opcode::Bne, a, b, t);
}
void Assembler::bltu(Reg a, Reg b, Label t)
{
    emitBranch(Opcode::BltU, a, b, t);
}
void Assembler::blts(Reg a, Reg b, Label t)
{
    emitBranch(Opcode::BltS, a, b, t);
}
void Assembler::bgeu(Reg a, Reg b, Label t)
{
    emitBranch(Opcode::BgeU, a, b, t);
}
void Assembler::bges(Reg a, Reg b, Label t)
{
    emitBranch(Opcode::BgeS, a, b, t);
}
void Assembler::beqz(Reg a, Label t)
{
    emitBranch(Opcode::Beqz, a, Reg::r0, t);
}
void Assembler::bnez(Reg a, Label t)
{
    emitBranch(Opcode::Bnez, a, Reg::r0, t);
}

void Assembler::jmp(Label t) { emitBranch(Opcode::Jmp, Reg::r0, Reg::r0, t); }

void
Assembler::jal(Reg rd, Label t)
{
    dp_assert(t.id < labelPos_.size(), "jal to unknown label");
    fixups_.emplace_back(code_.size(), t.id);
    emit(Opcode::Jal, rd, Reg::r0, Reg::r0, unresolved);
}

void Assembler::jr(Reg rs) { emit(Opcode::Jr, Reg::r0, rs, Reg::r0, 0); }

void
Assembler::cas(Reg rd_expected_old, Reg addr, Reg desired)
{
    emit(Opcode::Cas, rd_expected_old, addr, desired, 0);
}

void
Assembler::fetchAdd(Reg rd_old, Reg addr, Reg delta)
{
    emit(Opcode::FetchAdd, rd_old, addr, delta, 0);
}

void
Assembler::xchg(Reg rd_old, Reg addr, Reg val)
{
    emit(Opcode::Xchg, rd_old, addr, val, 0);
}

void
Assembler::syscall()
{
    emit(Opcode::Syscall, Reg::r0, Reg::r0, Reg::r0, 0);
}

void Assembler::halt() { emit(Opcode::Halt, Reg::r0, Reg::r0, Reg::r0, 0); }

void
Assembler::sys(Sys s)
{
    li(Reg::r0, static_cast<std::int64_t>(s));
    syscall();
}

void
Assembler::dataBytes(Addr base, std::span<const std::uint8_t> bytes)
{
    data_.emplace_back(base,
                       std::vector<std::uint8_t>(bytes.begin(),
                                                 bytes.end()));
}

void
Assembler::dataU64(Addr base, std::uint64_t value)
{
    std::vector<std::uint8_t> b(8);
    for (int i = 0; i < 8; ++i)
        b[i] = static_cast<std::uint8_t>(value >> (8 * i));
    data_.emplace_back(base, std::move(b));
}

void
Assembler::dataU64s(Addr base, std::span<const std::uint64_t> values)
{
    std::vector<std::uint8_t> b(values.size() * 8);
    for (std::size_t i = 0; i < values.size(); ++i)
        for (int j = 0; j < 8; ++j)
            b[i * 8 + j] =
                static_cast<std::uint8_t>(values[i] >> (8 * j));
    data_.emplace_back(base, std::move(b));
}

void
Assembler::setEntry(Label l)
{
    dp_assert(l.id < labelPos_.size(), "entry label unknown");
    entryLabel_ = static_cast<std::int64_t>(l.id);
}

GuestProgram
Assembler::finish(std::string name)
{
    for (auto [index, label] : fixups_) {
        std::int64_t pos = labelPos_[label];
        dp_assert(pos != unresolved, "program '", name,
                  "': referenced label ", label, " was never bound");
        code_[index].imm = pos;
    }
    GuestProgram prog;
    prog.name = std::move(name);
    prog.code = std::move(code_);
    prog.dataSegments = std::move(data_);
    if (entryLabel_ >= 0) {
        std::int64_t pos = labelPos_[static_cast<std::size_t>(entryLabel_)];
        dp_assert(pos != unresolved, "entry label never bound");
        prog.entry = static_cast<std::uint64_t>(pos);
    }
    return prog;
}

} // namespace dp
