/**
 * @file
 * Snapshottable per-thread execution state.
 */

#ifndef DP_VM_CONTEXT_HH
#define DP_VM_CONTEXT_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/hash.hh"
#include "common/types.hh"
#include "vm/isa.hh"

namespace dp
{

/** Scheduling state of a guest thread. */
enum class RunState : std::uint8_t
{
    Runnable, ///< may be picked by a scheduler
    Blocked,  ///< waiting inside a blocking syscall (futex/join)
    Exited,   ///< finished; context retained for join()
};

/**
 * Complete architectural state of one guest thread. Everything replay
 * and divergence checking need is here: copying a ThreadContext is a
 * full thread checkpoint.
 */
struct ThreadContext
{
    ThreadId tid = 0;
    std::array<std::uint64_t, numRegs> regs{};
    std::uint64_t pc = 0;
    RunState state = RunState::Runnable;

    /** Guest instructions retired by this thread since program start.
     *  Epoch boundaries are expressed as per-thread retired targets. */
    std::uint64_t retired = 0;

    /** Exit code, valid once state == Exited. */
    std::uint64_t exitCode = 0;

    /// @name Asynchronous signals
    /// @{
    /** Handler entry pc registered via sighandler(); 0 = none. */
    std::uint64_t handlerPc = 0;
    /** Kernel-style signal frame: the full interrupted context, live
     *  while inHandler. Handlers may clobber anything; sigreturn
     *  restores it all. */
    std::uint64_t savedPc = 0;
    std::array<std::uint64_t, numRegs> savedRegs{};
    bool inHandler = false;
    /** Queued, not-yet-delivered signal numbers (FIFO). */
    std::vector<std::uint8_t> pendingSigs;
    /// @}

    /** True if a signal could be delivered right now. */
    bool
    signalDeliverable() const
    {
        return state == RunState::Runnable && !inHandler &&
               handlerPc != 0 && !pendingSigs.empty();
    }

    /**
     * Enter the handler for the oldest pending signal: saves pc/r1,
     * jumps to the handler with the signal number in r1. Delivery
     * does not retire an instruction. Caller checks
     * signalDeliverable(). Returns the delivered signal.
     */
    std::uint8_t
    deliverSignal()
    {
        std::uint8_t sig = pendingSigs.front();
        pendingSigs.erase(pendingSigs.begin());
        savedPc = pc;
        savedRegs = regs;
        reg(Reg::r1) = sig;
        pc = handlerPc;
        inHandler = true;
        return sig;
    }

    std::uint64_t &reg(Reg r) { return regs[static_cast<unsigned>(r)]; }
    std::uint64_t reg(Reg r) const
    {
        return regs[static_cast<unsigned>(r)];
    }

    /** Digest of the architectural state (for divergence checks). */
    std::uint64_t
    hash() const
    {
        Digest d;
        d.word(tid);
        for (std::uint64_t r : regs)
            d.word(r);
        d.word(pc);
        d.word(static_cast<std::uint64_t>(state));
        d.word(retired);
        d.word(exitCode);
        d.word(handlerPc);
        d.word(savedPc);
        if (inHandler)
            for (std::uint64_t r : savedRegs)
                d.word(r);
        d.word(inHandler ? 1 : 0);
        for (std::uint8_t s : pendingSigs)
            d.word(0x5160000u | s);
        return d.value();
    }

    bool
    operator==(const ThreadContext &o) const
    {
        return tid == o.tid && regs == o.regs && pc == o.pc &&
               state == o.state && retired == o.retired &&
               exitCode == o.exitCode && handlerPc == o.handlerPc &&
               savedPc == o.savedPc &&
               (!inHandler || savedRegs == o.savedRegs) &&
               inHandler == o.inHandler &&
               pendingSigs == o.pendingSigs;
    }
};

} // namespace dp

#endif // DP_VM_CONTEXT_HH
