/**
 * @file
 * The guest instruction interpreter.
 *
 * The interpreter is stateless apart from a memoized pointer to the
 * program's decoded form: all mutable guest state lives in the
 * ThreadContext and PagedMemory it is given, so the same Interpreter
 * can drive any number of concurrent epoch executions.
 *
 * Execution has two granularities sharing one implementation:
 *  - step(): exactly one instruction (engines that interleave
 *    per-instruction bookkeeping, e.g. the thread-parallel run);
 *  - runBlock(): a tight threaded-dispatch loop that retires plain
 *    instructions until a boundary — budget, syscall, a class the
 *    caller must observe per-instruction (atomics, memory ops with
 *    an access hook), or thread termination. UniRunner's slices are
 *    built on this, so free-running guest code no longer pays one
 *    dispatch round-trip per instruction.
 *
 * Dispatch is computed-goto threaded code when DP_THREADED_DISPATCH
 * is on (the default; GNU-compatible compilers), and a portable
 * switch otherwise. Both variants execute identical semantics —
 * recordings, journals, and shipped batches are byte-identical
 * across them (pinned by the identity suites and the ci-speed CI
 * preset).
 */

#ifndef DP_VM_INTERP_HH
#define DP_VM_INTERP_HH

#include <cstdint>
#include <memory>

#include "vm/context.hh"
#include "vm/decode.hh"
#include "vm/program.hh"

namespace dp
{

class PagedMemory;

/** Outcome of executing (or attempting) one instruction. */
enum class StepKind : std::uint8_t
{
    Ok,          ///< instruction retired normally
    SyscallTrap, ///< Syscall reached: OS must complete it (pc unchanged)
    Halted,      ///< Halt retired: thread exited with r0 as code
    Fault,       ///< invalid pc or opcode: thread exited with 0xdead
};

/** Interprets guest code for one program. */
class Interpreter
{
  public:
    explicit Interpreter(const GuestProgram &prog) : prog_(&prog) {}

    /**
     * Execute one instruction of @p tc against @p mem.
     *
     * On Ok, pc and tc.retired advance. On SyscallTrap, pc and retired
     * are left untouched: the OS layer completes the call, writes the
     * result to r0, and calls completeSyscall().
     *
     * Halt and Fault share one exit contract: the context is marked
     * Exited, the terminating attempt retires (pc frozen, retired
     * advanced by one), and the exit code is r0 for Halt and 0xdead
     * for Fault. The StepKind alone distinguishes them; callers treat
     * both as "thread finished this slice".
     */
    StepKind step(ThreadContext &tc, PagedMemory &mem) const;

    /** Why a runBlock() call stopped, and how much it retired. */
    struct BlockResult
    {
        /** Instructions retired by the block (includes a terminating
         *  Halt/Fault). */
        std::uint64_t instrs = 0;
        /**
         * Ok: stopped at the budget or before an instruction matching
         * the stop mask (pc at the unexecuted instruction).
         * SyscallTrap: stopped before a Syscall (never executed in a
         * block). Halted/Fault: the thread exited inside the block.
         */
        StepKind last = StepKind::Ok;
    };

    /**
     * Retire up to @p max_instrs instructions of @p tc in one tight
     * dispatch loop. Stops *before* any Syscall and before any
     * instruction whose class intersects @p stop_mask (ClsAtomic,
     * ClsMem — see decode.hh), so the caller can run its
     * per-instruction hooks and then re-enter. Signal delivery,
     * sync-order permits and cost accounting are the caller's
     * business at block boundaries; a block must only be entered when
     * none of those can trigger mid-block (see UniRunner::runSlice).
     */
    BlockResult runBlock(ThreadContext &tc, PagedMemory &mem,
                         std::uint64_t max_instrs,
                         std::uint8_t stop_mask) const;

    /** "threaded" or "switch": the dispatch variant this build uses. */
    static const char *dispatchKindName();

    /** Retire the trapped syscall: set the result and advance. */
    static void
    completeSyscall(ThreadContext &tc, std::uint64_t result)
    {
        tc.reg(Reg::r0) = result;
        ++tc.pc;
        ++tc.retired;
    }

    /** Opcode of the instruction @p tc will execute next (for
     *  sync-order classification); Nop if pc is out of range. */
    Opcode
    nextOpcode(const ThreadContext &tc) const
    {
        if (tc.pc >= prog_->code.size())
            return Opcode::Nop;
        return prog_->code[tc.pc].op;
    }

    /** Effective address of the atomic op at @p tc's pc. */
    std::uint64_t
    nextAtomicAddr(const ThreadContext &tc) const
    {
        const Instr &in = prog_->code[tc.pc];
        return tc.reg(in.rs1);
    }

    /** The instruction at @p tc's pc (which must be in range). */
    const Instr &
    instrAt(const ThreadContext &tc) const
    {
        return prog_->code[tc.pc];
    }

    /**
     * Effective address and write-ness of the memory instruction at
     * @p tc's pc; only meaningful when isMemOp(nextOpcode(tc)).
     */
    std::pair<std::uint64_t, bool>
    nextMemAccess(const ThreadContext &tc) const
    {
        const Instr &in = prog_->code[tc.pc];
        if (isAtomicOp(in.op))
            return {tc.reg(in.rs1), true};
        bool is_write = in.op >= Opcode::St8 && in.op <= Opcode::St64;
        return {tc.reg(in.rs1) + static_cast<std::uint64_t>(in.imm),
                is_write};
    }

    const GuestProgram &program() const { return *prog_; }

  private:
    /** The program's decoded code, revalidated against the code stamp
     *  so an invalidateCode() between runs is always honored. */
    const DecodedProgram &
    ensureDecoded() const
    {
        if (!decoded_ || decoded_->stamp != prog_->codeStamp())
            decoded_ = prog_->decoded();
        return *decoded_;
    }

    const GuestProgram *prog_;
    mutable std::shared_ptr<const DecodedProgram> decoded_;
};

} // namespace dp

#endif // DP_VM_INTERP_HH
