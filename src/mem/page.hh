/**
 * @file
 * Guest memory page: the unit of copy-on-write sharing.
 */

#ifndef DP_MEM_PAGE_HH
#define DP_MEM_PAGE_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <span>

#include "common/hash.hh"

namespace dp
{

/**
 * One fixed-size guest page. Pages are immutable once shared between
 * page tables: PagedMemory clones a page before the first write whenever
 * the page is referenced by more than one table (checkpoint or sibling
 * epoch). An absent table entry denotes an all-zero page.
 *
 * The content digest is memoized: hashing a page costs O(Page::bytes)
 * once per content version, not once per digest query. All in-place
 * writes funnel through PagedMemory::writablePage, which invalidates
 * the memo; shared pages are immutable, so distinct address spaces may
 * hash the same page concurrently (the memo is a relaxed atomic — both
 * threads compute the same value, whoever publishes last wins).
 */
struct Page
{
    static constexpr std::size_t logBytes = 12;
    static constexpr std::size_t bytes = std::size_t{1} << logBytes;

    /** Memo slot value meaning "not computed". A page whose content
     *  genuinely hashes to this value is simply never memoized. */
    static constexpr std::uint64_t noHash = 0;

    std::array<std::uint8_t, bytes> data{};

    Page() = default;
    Page(const Page &o) : data(o.data)
    {
        hashCache_.store(o.hashCache_.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
    }
    Page &operator=(const Page &) = delete;

    /** Content digest of this page (memoized). */
    std::uint64_t
    hash() const
    {
        std::uint64_t h = hashCache_.load(std::memory_order_relaxed);
        if (h != noHash)
            return h;
        h = computeHash();
        hashCache_.store(h, std::memory_order_relaxed);
        return h;
    }

    /** Content digest recomputed from the bytes, bypassing (and not
     *  touching) the memo. Reference path for cross-checks and for
     *  measuring the full-rehash cost. Uses the 8-lane wideHash64
     *  kernel (common/hash.hh); its reference and unrolled forms are
     *  the same function, so the digest never depends on the build. */
    std::uint64_t
    computeHash() const
    {
        return wideHash64(std::span<const std::uint8_t>(data));
    }

    /** Drop the memoized digest; the next hash() recomputes. Called by
     *  PagedMemory::writablePage before handing out mutable access. */
    void
    invalidateHash()
    {
        hashCache_.store(noHash, std::memory_order_relaxed);
    }

    /** Digest shared by every all-zero page (and absent entries). */
    static std::uint64_t
    zeroHash()
    {
        static const std::uint64_t h = Page{}.hash();
        return h;
    }

  private:
    mutable std::atomic<std::uint64_t> hashCache_{noHash};
};

/** Shared ownership handle; use_count()==1 means exclusively writable. */
using PageRef = std::shared_ptr<Page>;

} // namespace dp

#endif // DP_MEM_PAGE_HH
