/**
 * @file
 * Debugging a heisenbug with deterministic replay.
 *
 * A lost-update data race makes a program's result vary from run to
 * run — the classic bug deterministic replay exists for. This example
 * shows the result varying across native executions, then records one
 * execution and replays it repeatedly: every replay reproduces the
 * exact same (buggy) result, so the failure can be studied at leisure.
 */

#include <cstdint>
#include <iostream>

#include "baseline/baselines.hh"
#include "core/recorder.hh"
#include "replay/replayer.hh"
#include "workloads/registry.hh"

using namespace dp;

int
main()
{
    // 4 threads hammer 16 shared words with unprotected updates.
    workloads::WorkloadBundle racy =
        workloads::makeRacyUpdates(4, 5'000, /*race_one_in=*/1);

    std::cout << "native runs (different schedules, different "
                 "results — the heisenbug):\n";
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        NativeResult r =
            runNativeBaseline(racy.program, racy.config, 4, seed);
        std::cout << "  seed " << seed << ": result = " << r.exitCode
                  << "\n";
    }

    RecorderOptions opts;
    opts.workerCpus = 4;
    opts.epochLength = 30'000;
    opts.seed = 3;
    UniparallelRecorder recorder(racy.program, racy.config, opts);
    RecordOutcome out = recorder.record();
    if (!out.ok) {
        std::cerr << "recording failed\n";
        return 1;
    }
    std::cout << "\nrecorded one execution: result = "
              << out.mainExitCode << ", "
              << out.recording.stats.rollbacks
              << " rollbacks (races forced divergences; the recorder "
                 "squashed and recovered)\n";

    std::cout << "\nreplays of that recording:\n";
    Replayer replayer(out.recording);
    for (int i = 1; i <= 3; ++i) {
        ReplayResult r = replayer.replaySequential();
        std::uint64_t value = 0;
        for (std::size_t b = 0; b < 8 && b < r.stdoutBytes.size(); ++b)
            value |= std::uint64_t{r.stdoutBytes[b]} << (8 * b);
        std::cout << "  replay " << i << ": "
                  << (r.ok ? "verified" : "FAILED")
                  << ", result = " << value << "\n";
        if (!r.ok)
            return 1;
        if (value != out.mainExitCode) {
            std::cerr << "replay produced a different result!\n";
            return 1;
        }
    }
    std::cout << "\nevery replay reproduces the recorded execution "
                 "bit-for-bit.\n";
    return 0;
}
