/**
 * @file
 * Property tests over randomly generated guest programs.
 *
 * A generator emits structurally valid, terminating multithreaded
 * programs mixing private compute, atomics, lock-protected shared
 * updates, barriers, syscalls (including injectables), and —
 * optionally — genuine data races. Every generated program must
 * satisfy DESIGN.md's invariants: data-race-free programs record with
 * zero rollbacks; racy programs record with recovery; every recording
 * replays exactly, sequentially and in parallel.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/recorder.hh"
#include "replay/replayer.hh"
#include "testprogs.hh"

namespace dp
{
namespace
{

struct PipelineCheck
{
    bool recordOk = false;
    std::uint32_t rollbacks = 0;
    bool seqOk = false;
    bool parOk = false;
};

PipelineCheck
checkFullPipeline(const GuestProgram &prog, std::uint64_t seed)
{
    MachineConfig cfg;
    cfg.netBytesPerConn = 8'192;
    cfg.netCyclesPerByte = 2;

    RecorderOptions opts;
    opts.workerCpus = 2;
    opts.epochLength = 4'000;
    opts.seed = seed;
    UniparallelRecorder rec(prog, cfg, opts);
    RecordOutcome out = rec.record();

    PipelineCheck res;
    res.recordOk = out.ok;
    res.rollbacks = out.recording.stats.rollbacks;
    if (!out.ok)
        return res;
    Replayer rep(out.recording);
    res.seqOk = rep.replaySequential().ok;
    res.parOk = rep.replayParallel(2).ok;
    return res;
}

class RandomDrfPrograms
    : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(RandomDrfPrograms, RecordZeroRollbacksAndReplay)
{
    GuestProgram prog =
        testprogs::randomProgram(GetParam(), {.allowRaces = false});
    PipelineCheck c = checkFullPipeline(prog, GetParam() * 31 + 7);
    ASSERT_TRUE(c.recordOk) << "seed " << GetParam();
    EXPECT_EQ(c.rollbacks, 0u)
        << "DRF program diverged (seed " << GetParam() << ")";
    EXPECT_TRUE(c.seqOk);
    EXPECT_TRUE(c.parOk);
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomDrfPrograms,
                         ::testing::Range<std::uint64_t>(1, 25));

class RandomRacyPrograms
    : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(RandomRacyPrograms, RecordRecoversAndReplays)
{
    GuestProgram prog =
        testprogs::randomProgram(GetParam(), {.allowRaces = true});
    PipelineCheck c = checkFullPipeline(prog, GetParam() * 17 + 3);
    ASSERT_TRUE(c.recordOk)
        << "racy program failed to record (seed " << GetParam()
        << ")";
    EXPECT_TRUE(c.seqOk) << "seed " << GetParam();
    EXPECT_TRUE(c.parOk) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomRacyPrograms,
                         ::testing::Range<std::uint64_t>(100, 116));

TEST(RandomPrograms, UniprocessorExecutionIsDeterministic)
{
    for (std::uint64_t seed = 200; seed < 208; ++seed) {
        GuestProgram prog =
            testprogs::randomProgram(seed, {.allowRaces = true});
        auto run_hash = [&] {
            Machine m(prog, {});
            SimOS os;
            UniRunner r(m, os, {}, {});
            EXPECT_NE(r.run(), StopReason::Deadlock);
            return m.stateHash();
        };
        EXPECT_EQ(run_hash(), run_hash()) << "seed " << seed;
    }
}

} // namespace
} // namespace dp
