/**
 * @file
 * uniplay — command-line record/replay/analysis tool.
 *
 *   uniplay record <workload> [-t N] [-s SCALE] [-e EPOCHLEN]
 *                 [-o FILE] [--journal FILE [--resume]]
 *                 [--trace FILE]
 *   uniplay run <file.s>                 assemble + run guest assembly
 *   uniplay record-asm <file.s> -o FILE  record a guest assembly file
 *   uniplay replay FILE                  deterministic replay + verify
 *   uniplay recover JOURNAL [-o FILE]    recover a journal's committed
 *                                        prefix (optionally as artifact)
 *   uniplay verify FILE                  integrity-check an artifact or
 *                                        journal without replaying
 *   uniplay races FILE                   replay under the race detector
 *   uniplay stats FILE                   metrics snapshot (JSON) of an
 *                                        artifact or journal
 *   uniplay info FILE                    artifact summary
 *   uniplay disasm FILE                  dump the recorded program
 *   uniplay workloads                    list built-in workloads
 *
 * --trace FILE (record, record-asm, replay) writes a Chrome
 * trace-event JSON of the pipeline — load it in Perfetto or
 * chrome://tracing. Tracing never changes the recorded bytes.
 */

#include <algorithm>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/profiler.hh"
#include "analysis/race_detector.hh"
#include "baseline/baselines.hh"
#include "common/table.hh"
#include "core/recorder.hh"
#include "fault/fault.hh"
#include "journal/journal.hh"
#include "journal/sharded.hh"
#include "replay/recording_io.hh"
#include "replay/replayer.hh"
#include "ship/link.hh"
#include "ship/sender.hh"
#include "ship/standby.hh"
#include "trace/metrics.hh"
#include "trace/trace.hh"
#include "vm/text_asm.hh"
#include "workloads/registry.hh"

namespace
{

using namespace dp;

int
usage()
{
    std::cerr
        << "usage:\n"
        << "  uniplay record <workload> [-t N] [-s SCALE] "
           "[-e EPOCHLEN] [--fault-plan SPEC --fault-seed N] "
           "[-o FILE] [--journal FILE [--resume] "
           "[--journal-streams N]] [--ship [--lag N]] "
           "[--trace FILE]\n"
        << "  uniplay run <file.s>\n"
        << "  uniplay record-asm <file.s> [-t N] [-e EPOCHLEN] "
           "[--fault-plan SPEC --fault-seed N] [-o FILE] "
           "[--journal FILE [--resume] [--journal-streams N]] "
           "[--ship [--lag N]] [--trace FILE]\n"
        << "  uniplay replay FILE [--parallel N [--jobs N]] "
           "[--trace FILE]\n"
        << "  uniplay recover JOURNAL [-o FILE] [--jobs N]\n"
        << "  uniplay ship --journal FILE [--lag N] "
           "[--fault-plan SPEC --fault-seed N]\n"
        << "  uniplay verify FILE\n"
        << "  uniplay races FILE\n"
        << "  uniplay profile FILE\n"
        << "  uniplay stats FILE [-t N]\n"
        << "  uniplay info FILE\n"
        << "  uniplay disasm FILE\n"
        << "  uniplay workloads\n";
    return 2;
}

std::vector<std::uint8_t>
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        dp_fatal("cannot open ", path);
    std::ostringstream ss;
    ss << in.rdbuf();
    std::string s = ss.str();
    return {s.begin(), s.end()};
}

void
writeFile(const std::string &path, std::span<const std::uint8_t> b)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        dp_fatal("cannot write ", path);
    out.write(reinterpret_cast<const char *>(b.data()),
              static_cast<std::streamsize>(b.size()));
}

struct Args
{
    std::vector<std::string> positional;
    std::uint32_t threads = 2;
    std::uint32_t scale = 4;
    Cycles epochLength = 100'000;
    std::string outFile;
    unsigned parallel = 0;
    /** Host threads for parallel replay; 0 with jobsSet is a usage
     *  error, 0 without means "pick a default". */
    unsigned jobs = 0;
    bool jobsSet = false;
    std::string faultPlan;
    std::uint64_t faultSeed = 0;
    std::string journalFile;
    /** Shards the journal splits across (record/record-asm only). */
    unsigned journalStreams = 1;
    bool journalStreamsSet = false;
    bool resume = false;
    /** Ship committed epochs to an in-process hot standby
     *  (record/record-asm only). */
    bool ship = false;
    /** Standby lag bound in epochs (ship / record --ship). */
    std::uint64_t lag = 8;
    bool lagSet = false;
    std::string traceFile;
    /** First unrecognized '-' option (empty = none): flag typos must
     *  be a usage error, not a silently ignored positional. */
    std::string badOption;
};

Args
parseArgs(int argc, char **argv, int first)
{
    Args a;
    for (int i = first; i < argc; ++i) {
        std::string s = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                dp_fatal("missing value after ", s);
            return argv[++i];
        };
        if (s == "-t" || s == "--threads")
            a.threads = static_cast<std::uint32_t>(
                std::stoul(next()));
        else if (s == "-s" || s == "--scale")
            a.scale =
                static_cast<std::uint32_t>(std::stoul(next()));
        else if (s == "-e" || s == "--epoch")
            a.epochLength = std::stoull(next());
        else if (s == "-o" || s == "--out")
            a.outFile = next();
        else if (s == "--parallel")
            a.parallel =
                static_cast<unsigned>(std::stoul(next()));
        else if (s == "-j" || s == "--jobs") {
            a.jobs = static_cast<unsigned>(std::stoul(next()));
            a.jobsSet = true;
        }
        else if (s == "--fault-plan")
            a.faultPlan = next();
        else if (s == "--fault-seed")
            a.faultSeed = std::stoull(next());
        else if (s == "--journal")
            a.journalFile = next();
        else if (s == "--journal-streams") {
            a.journalStreams =
                static_cast<unsigned>(std::stoul(next()));
            a.journalStreamsSet = true;
        }
        else if (s == "--resume")
            a.resume = true;
        else if (s == "--ship")
            a.ship = true;
        else if (s == "--lag") {
            a.lag = std::stoull(next());
            a.lagSet = true;
        }
        else if (s == "--trace")
            a.traceFile = next();
        else if (!s.empty() && s[0] == '-' && s.size() > 1) {
            if (a.badOption.empty())
                a.badOption = s;
        } else
            a.positional.push_back(std::move(s));
    }
    return a;
}

bool
fileExists(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return in.good();
}

/** A journal on disk: one v2 file, or a sharded set of streams. */
struct JournalSet
{
    /** Per-stream images, index-aligned (one entry for a v2 file; a
     *  lost stream file is an empty image). */
    std::vector<std::vector<std::uint8_t>> images;
    /** Base path (the .s<i> suffix stripped, if one was named). */
    std::string base;
    unsigned streams = 1;
};

/**
 * Load the journal at @p path, following sharded-set naming: a v3
 * stream file (or a base path whose "<base>.s0" exists) pulls in the
 * whole "<base>.s0".."<base>.s<N-1>" set its header names.
 */
JournalSet
loadJournalSet(const std::string &path)
{
    JournalSet js;
    js.base = path;
    std::string probe = path;
    if (!fileExists(probe)) {
        if (fileExists(path + ".s0"))
            probe = path + ".s0";
        else
            dp_fatal("cannot open ", path);
    }
    std::vector<std::uint8_t> img = readFile(probe);
    std::optional<StreamInfo> si = peekStreamInfo(img);
    if (!si) {
        // A v2 journal (or garbage — recovery will say which).
        js.images.push_back(std::move(img));
        return js;
    }
    std::string base = path;
    if (probe == path) {
        // The user named one stream file directly: strip ".s<i>".
        const std::size_t dot = probe.rfind(".s");
        bool digits = dot != std::string::npos &&
                      dot + 2 < probe.size();
        if (digits)
            for (std::size_t k = dot + 2; k < probe.size(); ++k)
                digits = digits && std::isdigit(
                                       static_cast<unsigned char>(
                                           probe[k]));
        if (digits)
            base = probe.substr(0, dot);
    }
    js.base = base;
    js.streams = si->streamCount;
    js.images.assign(js.streams, {});
    for (unsigned s = 0; s < js.streams; ++s) {
        const std::string p =
            ShardedJournalWriter::streamPath(base, s, js.streams);
        if (fileExists(p))
            js.images[s] = readFile(p);
        else
            std::cerr << "warning: journal stream file " << p
                      << " is missing; recovering without it\n";
    }
    return js;
}

std::vector<std::span<const std::uint8_t>>
asSpans(const std::vector<std::vector<std::uint8_t>> &images)
{
    std::vector<std::span<const std::uint8_t>> spans;
    spans.reserve(images.size());
    for (const std::vector<std::uint8_t> &i : images)
        spans.emplace_back(i);
    return spans;
}

int
doRecord(const GuestProgram &prog, const MachineConfig &cfg,
         const Args &args)
{
    if (args.outFile.empty() && args.journalFile.empty() &&
        !args.ship)
        dp_fatal(
            "record needs -o FILE, --journal FILE and/or --ship");
    RecorderOptions opts;
    opts.workerCpus = args.threads;
    opts.epochLength = args.epochLength;
    opts.keepCheckpoints = false; // artifacts hold logs only

    std::unique_ptr<TraceRecorder> tracer;
    if (!args.traceFile.empty()) {
        tracer = std::make_unique<TraceRecorder>();
        opts.trace = tracer.get();
    }

    std::unique_ptr<FaultInjector> faults;
    if (!args.faultPlan.empty()) {
        faults = std::make_unique<FaultInjector>(
            FaultPlan::parse(args.faultPlan, args.faultSeed));
        opts.faults = faults.get();
        std::cout << "fault plan: " << faults->plan().describe()
                  << "\n";
    }
    if (OptionError err = validateRecorderOptions(opts);
        err != OptionError::None)
        dp_fatal("invalid recorder options: ", optionErrorName(err));
    const std::uint64_t fingerprint =
        recorderOptionsFingerprint(opts);

    std::unique_ptr<ShardedJournalWriter> journal;
    std::vector<EpochRecord> prefix;
    std::string journalBase = args.journalFile;
    bool resuming = false;
    if (!args.journalFile.empty() && args.resume) {
        JournalSet js = loadJournalSet(args.journalFile);
        journalBase = js.base;
        if (args.journalStreamsSet &&
            args.journalStreams != js.streams)
            dp_fatal(args.journalFile, ": journal has ", js.streams,
                     " stream(s); --journal-streams cannot change "
                     "on resume");
        RecoveredShardedJournal rj =
            recoverShardedJournal(asSpans(js.images));
        if (!rj.report.headerOk)
            dp_fatal(args.journalFile, ": cannot recover journal: ",
                     journalErrorName(rj.report.tailError), " (",
                     rj.report.detail, ")");
        if (!rj.recording)
            dp_fatal(args.journalFile, ": journal base epoch is ",
                     rj.baseEpoch,
                     "; a truncated journal cannot seed a resume "
                     "without its covering checkpoint");
        if (rj.optionsFingerprint != fingerprint)
            dp_fatal(args.journalFile,
                     ": journal was recorded under different "
                     "options; refusing to resume");
        std::cout << "recovered " << rj.report.framesRecovered
                  << " committed epoch(s), discarding "
                  << rj.report.bytesDiscarded
                  << " torn/corrupt byte(s)\n";
        for (unsigned s = 0; s < js.streams; ++s)
            js.images[s].resize(rj.streams[s].keptBytes);
        journal = std::make_unique<ShardedJournalWriter>(
            std::move(js.images),
            ShardedJournalOptions{.streams = js.streams},
            faults.get());
        prefix = std::move(rj.recording->epochs);
        resuming = true;
    } else if (!args.journalFile.empty() || args.ship) {
        // --ship without --journal ships from an in-memory journal:
        // the standby is the durability story in that configuration.
        journal = std::make_unique<ShardedJournalWriter>(
            prog, cfg, fingerprint,
            ShardedJournalOptions{.streams = args.journalStreams},
            faults.get());
    }
    if (journal && !journalBase.empty() &&
        !journal->streamTo(journalBase))
        dp_fatal("cannot write journal file ", journalBase);
    if (journal && tracer)
        journal->setTrace(tracer.get());
    if (journal)
        // Serialize + checksum + stream on a committer thread; the
        // record pipeline only pays the epoch hand-off. Byte-identical
        // to synchronous appends (frames commit in hand-off order).
        journal->enableAsyncCommit();

    RecordObserver obs;
    obs.onRecovery = [](RecoveryKind kind, EpochId index) {
        std::cout << "  recovery: " << recoveryKindName(kind)
                  << " at epoch " << index << "\n";
    };
    if (journal)
        obs.addEpochSink(
            [&](const EpochRecord &e, EpochId index) {
                journal->appendEpoch(e, index);
            });

    // record --ship: stream every committed epoch to an in-process
    // hot standby over the (optionally fault-injected) link.
    std::unique_ptr<StandbyApplier> standby;
    std::unique_ptr<ShipLink> link;
    std::unique_ptr<ShipSender> sender;
    if (args.ship) {
        standby = std::make_unique<StandbyApplier>(StandbyOptions{
            .lagBound = args.lag, .faults = faults.get()});
        link = std::make_unique<ShipLink>(*standby, faults.get());
        sender = std::make_unique<ShipSender>(
            *link, journal->streams(),
            [jp = journal.get()](
                unsigned s) -> std::span<const std::uint8_t> {
                return jp->streamBytes(s);
            });
        obs.addEpochSink([&](const EpochRecord &, EpochId) {
            sender->noteEpochCommitted();
            sender->pump();
        });
    }

    UniparallelRecorder rec(prog, cfg, opts);
    const RecordObserver *obsp =
        (faults || journal) ? &obs : nullptr;
    RecordOutcome out = resuming
                            ? rec.resume(std::move(prefix), obsp)
                            : rec.record(obsp);
    if (faults) {
        const FaultStats fs = faults->stats();
        std::cout << "faults fired: " << fs.totalFired() << "\n";
        for (std::size_t i = 0; i < numFaultSites; ++i)
            if (fs.fired[i] > 0)
                std::cout
                    << "  " << faultSiteName(
                                   static_cast<FaultSite>(i))
                    << ": " << fs.fired[i] << "/" << fs.queried[i]
                    << " decisions\n";
        const RecorderStats &st = out.recording.stats;
        std::cout << "recovery: " << st.rollbacks << " rollbacks, "
                  << st.tornCheckpoints << " torn ckpts, "
                  << st.epochRetries << " epoch retries, "
                  << st.seqFallbacks << " seq fallbacks\n";
    }
    if (journal) {
        journal->flush();
        std::size_t jbytes = 0;
        for (unsigned s = 0; s < journal->streams(); ++s)
            jbytes += journal->streamBytes(s).size();
        std::cout << "journal: " << journal->epochsWritten()
                  << " epoch frame(s), " << jbytes << " bytes";
        if (journal->streams() > 1)
            std::cout << " across " << journal->streams()
                      << " streams";
        if (journalBase.empty())
            std::cout << " (in-memory)";
        else
            std::cout << " to " << journalBase;
        std::cout << (journal->alive()
                          ? ""
                          : " (writer died; continue with --resume)")
                  << "\n";
    }
    if (tracer) {
        if (tracer->writeChromeJson(args.traceFile))
            std::cout << "trace: " << tracer->size()
                      << " event(s) to " << args.traceFile << "\n";
        else
            std::cerr << "cannot write trace file "
                      << args.traceFile << "\n";
    }
    if (out.prefixVerifyFailed) {
        std::cerr << "recovered journal prefix failed replay "
                     "verification; not resuming\n";
        return 1;
    }
    if (!out.ok) {
        std::cerr << "recording failed: "
                  << stopReasonName(out.tpReason) << "\n";
        return 1;
    }
    std::cout << "recorded " << out.recording.epochs.size()
              << " epochs, " << out.recording.stats.rollbacks
              << " rollbacks, exit code " << out.mainExitCode
              << "\n";
    if (!args.outFile.empty()) {
        std::vector<std::uint8_t> bytes =
            serializeRecording(out.recording);
        writeFile(args.outFile, bytes);
        std::cout << "wrote " << bytes.size() << " bytes to "
                  << args.outFile << "\n";
    }
    if (sender) {
        sender->pump(); // the primary's last committed bytes
        Promotion p = standby->promote();
        std::cout << "ship: " << p.report.describe() << "\n"
                  << shipMetricsSnapshot(sender->stats(),
                                         standby->stats(),
                                         link->stats())
                         .dump()
                  << "\n";
        const bool converged =
            p.report.promoted && !sender->failed() &&
            p.report.replayedEpochs == out.recording.epochs.size() &&
            p.report.finalStateHash == out.recording.finalStateHash;
        std::cout << "standby converged: " << (converged ? "yes" : "NO")
                  << "\n";
        if (!converged)
            return 1;
    }
    return 0;
}

std::string
readTextFile(const std::string &path)
{
    std::vector<std::uint8_t> b = readFile(path);
    return {b.begin(), b.end()};
}

/** Load an artifact, exiting with a structured diagnostic (not a
 *  crash) when it is corrupt. */
LoadedRecording
loadArtifact(const std::string &path)
{
    RecordingLoadResult r = loadRecording(readFile(path));
    if (!r.ok())
        dp_fatal(path, ": cannot load recording: ",
                 loadErrorName(r.error), " at byte ", r.errorOffset,
                 " (", r.detail, ")");
    return {std::move(r.recording)};
}

/**
 * Offline shipping drill: replicate a journal file set to a fresh
 * standby over the (optionally fault-injected) in-process link,
 * promote the standby, and verify the promoted machine against a
 * direct recovery of the same bytes — the state a cold restart would
 * rebuild the slow way. Exit 0 when the standby converged on the
 * full consistent prefix, 1 when it is stale or failed closed.
 */
int
cmdShip(const Args &args)
{
    if (!args.positional.empty())
        return usage();
    if (args.journalFile.empty()) {
        std::cerr << "ship needs --journal FILE\n";
        return usage();
    }
    JournalSet js = loadJournalSet(args.journalFile);
    RecoveredShardedJournal rj =
        recoverShardedJournal(asSpans(js.images));
    if (!rj.report.headerOk)
        dp_fatal(args.journalFile, ": cannot recover journal: ",
                 journalErrorName(rj.report.tailError), " (",
                 rj.report.detail, ")");
    if (!rj.recording)
        dp_fatal(args.journalFile, ": journal base epoch is ",
                 rj.baseEpoch, "; cannot ship a truncated journal");

    std::unique_ptr<FaultInjector> faults;
    if (!args.faultPlan.empty()) {
        faults = std::make_unique<FaultInjector>(
            FaultPlan::parse(args.faultPlan, args.faultSeed));
        std::cout << "fault plan: " << faults->plan().describe()
                  << "\n";
    }

    StandbyApplier standby(
        {.lagBound = args.lag, .faults = faults.get()});
    ShipLink link(standby, faults.get());
    ShipSender sender(
        link, js.streams,
        [&](unsigned s) -> std::span<const std::uint8_t> {
            return js.images[s];
        });
    sender.noteEpochCommitted(rj.consistentEpochs);
    sender.pump();

    Promotion p = standby.promote();
    std::cout << p.report.describe() << "\n"
              << shipMetricsSnapshot(sender.stats(), standby.stats(),
                                     link.stats())
                     .dump()
              << "\n";
    const bool converged =
        p.report.promoted && !sender.failed() &&
        p.report.replayedEpochs == rj.consistentEpochs &&
        p.report.finalStateHash == rj.recording->finalStateHash;
    std::cout << "standby converged: " << (converged ? "yes" : "NO")
              << "\n";
    return converged ? 0 : 1;
}

int
cmdRecord(const Args &args)
{
    if (args.positional.empty())
        return usage();
    const workloads::Workload *w =
        workloads::findWorkload(args.positional[0]);
    if (!w)
        dp_fatal("unknown workload '", args.positional[0],
                 "' (try: uniplay workloads)");
    workloads::WorkloadBundle b =
        w->make({.threads = args.threads, .scale = args.scale});
    return doRecord(b.program, b.config, args);
}

int
cmdRun(const Args &args)
{
    if (args.positional.empty())
        return usage();
    GuestProgram prog = assembleText(
        readTextFile(args.positional[0]), args.positional[0]);
    NativeResult r = runNativeBaseline(prog, {}, args.threads, 1);
    std::cout << "stop: " << stopReasonName(r.reason)
              << ", exit code " << r.exitCode << ", "
              << r.instrs << " instrs, " << r.cycles
              << " virtual cycles\n";
    return r.reason == StopReason::AllExited ? 0 : 1;
}

int
cmdRecordAsm(const Args &args)
{
    if (args.positional.empty())
        return usage();
    GuestProgram prog = assembleText(
        readTextFile(args.positional[0]), args.positional[0]);
    return doRecord(prog, {}, args);
}

int
cmdReplay(const Args &args)
{
    if (args.positional.empty())
        return usage();
    LoadedRecording loaded = loadArtifact(args.positional[0]);
    Replayer rep(*loaded.recording);
    std::unique_ptr<TraceRecorder> tracer;
    if (!args.traceFile.empty()) {
        tracer = std::make_unique<TraceRecorder>();
        rep.setTrace(tracer.get());
    }
    unsigned par = args.parallel;
    if (args.jobsSet && args.jobs == 0) {
        std::cerr << "--jobs needs at least one host thread\n";
        return usage();
    }
    if (args.jobsSet && par == 0) {
        std::cerr << "--jobs needs --parallel N (it sizes the host "
                     "pool parallel replay fans out over)\n";
        return usage();
    }
    if (par > 0 && !loaded.recording->hasCheckpoints()) {
        // Artifacts hold logs only; parallel replay needs the
        // retained epoch checkpoints (in-process recordings).
        std::cerr << "note: no checkpoints in artifact; "
                     "replaying sequentially\n";
        par = 0;
    }
    // Host threads backing the fan-out: default to the machine's
    // concurrency, clamped to the modeled track count — more host
    // threads than tracks would change nothing but idle workers.
    unsigned jobs = args.jobs;
    if (!args.jobsSet)
        jobs = std::min(
            std::max(1u, std::thread::hardware_concurrency()), par);
    ReplayResult r = par > 0 ? rep.replayParallel(par, jobs)
                             : rep.replaySequential();
    if (tracer) {
        if (tracer->writeChromeJson(args.traceFile))
            std::cout << "trace: " << tracer->size()
                      << " event(s) to " << args.traceFile << "\n";
        else
            std::cerr << "cannot write trace file "
                      << args.traceFile << "\n";
    }
    std::cout << (r.ok ? "verified" : "FAILED") << ": "
              << r.epochsVerified << "/"
              << loaded.recording->epochs.size() << " epochs, "
              << r.instrs << " instrs replayed, "
              << r.stdoutBytes.size() << " output bytes\n";
    if (!r.ok)
        std::cout << "first failed epoch: " << r.firstFailedEpoch
                  << "\n";
    return r.ok ? 0 : 1;
}

int
cmdRecover(const Args &args)
{
    if (args.positional.empty())
        return usage();
    if (args.jobsSet && args.jobs == 0) {
        std::cerr << "--jobs needs at least one host thread\n";
        return usage();
    }
    const unsigned jobs = args.jobsSet ? args.jobs : 1;
    JournalSet js = loadJournalSet(args.positional[0]);
    RecoveredShardedJournal rj =
        recoverShardedJournal(asSpans(js.images), jobs);
    const RecoveryReport &rep = rj.report;
    std::cout << "header:    " << (rep.headerOk ? "ok" : "invalid")
              << "\n";
    if (rj.streamCount > 1)
        std::cout << "streams:   " << rj.streamCount
                  << " (consistent cut at epoch "
                  << rj.consistentEpochs << ")\n";
    if (rj.baseEpoch > 0)
        std::cout << "base:      epoch " << rj.baseEpoch
                  << " (earlier segments truncated)\n";
    std::cout << "frames:    " << rep.framesRecovered
              << " committed epoch(s)\n"
              << "committed: " << rep.committedBytes << " bytes\n"
              << "discarded: " << rep.bytesDiscarded << " bytes\n"
              << "tail:      " << journalErrorName(rep.tailError);
    if (rep.tailError != JournalError::None)
        std::cout << " at byte " << rep.errorOffset << " ("
                  << rep.detail << ")";
    std::cout << "\n";
    if (rj.streamCount > 1)
        for (std::size_t s = 0; s < rj.streams.size(); ++s) {
            const StreamRecovery &sr = rj.streams[s];
            std::cout << "  stream " << s << ": " << sr.framesKept
                      << " epoch(s) kept, " << sr.keptBytes
                      << " byte(s), tail "
                      << journalErrorName(sr.report.tailError)
                      << "\n";
        }
    if (!rep.headerOk) {
        std::cerr << "nothing recoverable: " << rep.detail << "\n";
        return 1;
    }
    if (!args.outFile.empty()) {
        if (!rj.recording)
            dp_fatal(args.positional[0], ": journal base epoch is ",
                     rj.baseEpoch,
                     "; a truncated journal cannot serialize a "
                     "whole recording");
        std::vector<std::uint8_t> bytes =
            serializeRecording(*rj.recording);
        writeFile(args.outFile, bytes);
        std::cout << "wrote " << bytes.size() << " bytes to "
                  << args.outFile << "\n";
    }
    return 0;
}

int
cmdVerify(const Args &args)
{
    if (args.positional.empty())
        return usage();
    const std::string &file = args.positional[0];
    if (!fileExists(file) && fileExists(file + ".s0")) {
        // A sharded journal set has no base file, only per-stream
        // files: verify them together under the consistent-cut rule.
        JournalSet js = loadJournalSet(file);
        RecoveredShardedJournal rj =
            recoverShardedJournal(asSpans(js.images));
        const RecoveryReport &rep = rj.report;
        std::cout << file << ": sharded journal, " << js.streams
                  << " stream(s): ";
        if (rep.clean())
            std::cout << "intact, " << rep.framesRecovered
                      << " committed epoch(s)\n";
        else
            std::cout << journalErrorName(rep.tailError)
                      << " at stream " << rep.streamIndex << " ("
                      << rep.detail << "); " << rep.framesRecovered
                      << " epoch(s) recoverable, "
                      << rep.bytesDiscarded << " byte(s) lost\n";
        return rep.clean() ? 0 : 1;
    }
    VerifyResult v = verifyImage(readFile(file));
    std::cout << file << ": " << v.detail << "\n";
    return v.ok ? 0 : 1;
}

int
cmdRaces(const Args &args)
{
    if (args.positional.empty())
        return usage();
    LoadedRecording loaded = loadArtifact(args.positional[0]);
    RaceDetector det;
    ReplayObserver obs = det.observer();
    Replayer rep(*loaded.recording);
    ReplayResult r = rep.replaySequential(&obs);
    if (!r.ok) {
        std::cerr << "replay failed; cannot analyse\n";
        return 1;
    }
    std::cout << det.accessesChecked() << " accesses, "
              << det.syncOpsSeen() << " sync ops, "
              << det.races().size() << " racy words\n";
    for (const RaceReport &race : det.races())
        std::cout << "  0x" << std::hex << race.wordAddr << std::dec
                  << "  threads " << race.first << "/" << race.second
                  << "  epoch " << race.epoch << "\n";
    return 0;
}

int
cmdProfile(const Args &args)
{
    if (args.positional.empty())
        return usage();
    LoadedRecording loaded = loadArtifact(args.positional[0]);
    ReplayProfiler prof;
    ReplayObserver obs = prof.observer();
    Replayer rep(*loaded.recording);
    if (!rep.replaySequential(&obs).ok) {
        std::cerr << "replay failed; cannot profile\n";
        return 1;
    }
    Table t({"thread", "reads", "writes", "atomics", "syscalls",
             "wakes rx", "wakes tx"});
    for (std::size_t i = 0; i < prof.threads().size(); ++i) {
        const ThreadProfile &p = prof.threads()[i];
        t.addRow({std::to_string(i), Table::num(p.reads),
                  Table::num(p.writes), Table::num(p.atomics),
                  Table::num(p.syscalls),
                  Table::num(p.wakesReceived),
                  Table::num(p.wakesGiven)});
    }
    t.print(std::cout);
    std::cout << "\nhottest pages:\n";
    for (const HotPage &hp : prof.hottestPages(5))
        std::cout << "  0x" << std::hex << hp.pageAddr << std::dec
                  << "  " << hp.accesses << " accesses, "
                  << hp.threadsTouching << " threads\n";
    return 0;
}

int
cmdStats(const Args &args)
{
    if (args.positional.empty())
        return usage();
    // A sharded journal set has no base file; route straight to
    // journal recovery instead of sniffing a file that isn't there.
    UniplayFileKind kind = UniplayFileKind::Journal;
    if (fileExists(args.positional[0]) ||
        !fileExists(args.positional[0] + ".s0")) {
        std::vector<std::uint8_t> bytes = readFile(args.positional[0]);
        kind = verifyImage(bytes).kind;
    }
    std::unique_ptr<Recording> rec;
    if (kind == UniplayFileKind::Artifact) {
        LoadedRecording loaded = loadArtifact(args.positional[0]);
        rec = std::move(loaded.recording);
    } else if (kind == UniplayFileKind::Journal) {
        JournalSet js = loadJournalSet(args.positional[0]);
        RecoveredShardedJournal rj =
            recoverShardedJournal(asSpans(js.images));
        if (!rj.report.headerOk)
            dp_fatal(args.positional[0],
                     ": cannot recover journal: ",
                     journalErrorName(rj.report.tailError));
        if (!rj.recording)
            dp_fatal(args.positional[0], ": journal base epoch is ",
                     rj.baseEpoch,
                     "; stats need the full epoch history");
        rec = std::move(rj.recording);
    } else {
        dp_fatal(args.positional[0],
                 ": not a uniplay artifact or journal");
    }
    MetricsOptions mopts;
    mopts.workerCpus = args.threads;
    mopts.totalCpus = 2 * args.threads;
    std::cout << metricsSnapshot(*rec, mopts).dump() << "\n";
    return 0;
}

int
cmdInfo(const Args &args)
{
    if (args.positional.empty())
        return usage();
    LoadedRecording loaded = loadArtifact(args.positional[0]);
    const Recording &rec = *loaded.recording;
    std::cout << "program: " << rec.program().name << " ("
              << rec.program().code.size() << " instrs)\n"
              << "epochs:  " << rec.epochs.size() << "\n"
              << "rollbacks: " << rec.stats.rollbacks << "\n"
              << "replay log: " << rec.replayLogBytes()
              << " bytes (schedule + injectables)\n"
              << "total log:  " << rec.totalLogBytes() << " bytes\n";
    Table t({"epoch", "segments", "syscalls", "log bytes",
             "diverged"});
    for (std::size_t i = 0; i < rec.epochs.size() && i < 20; ++i) {
        const EpochRecord &e = rec.epochs[i];
        t.addRow({std::to_string(i),
                  Table::num(std::uint64_t{e.schedule.size()}),
                  Table::num(std::uint64_t{e.syscalls.size()}),
                  Table::num(std::uint64_t{e.totalLogBytes()}),
                  e.diverged ? "yes" : "no"});
    }
    t.print(std::cout);
    if (rec.epochs.size() > 20)
        std::cout << "... (" << rec.epochs.size() - 20
                  << " more epochs)\n";
    return 0;
}

int
cmdDisasm(const Args &args)
{
    if (args.positional.empty())
        return usage();
    LoadedRecording loaded = loadArtifact(args.positional[0]);
    std::cout << disassemble(loaded.recording->program());
    return 0;
}

int
cmdWorkloads()
{
    Table t({"name", "paper equivalent", "category", "sharing"});
    for (const auto &w : workloads::allWorkloads())
        t.addRow({w.name, w.paperEquiv, w.category, w.sharing});
    t.print(std::cout);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    std::string cmd = argv[1];
    Args args = parseArgs(argc, argv, 2);
    if (!args.badOption.empty()) {
        std::cerr << "unknown option: " << args.badOption << "\n";
        return usage();
    }
    if (!args.traceFile.empty() && cmd != "record" &&
        cmd != "record-asm" && cmd != "replay") {
        std::cerr << "--trace is not supported by '" << cmd
                  << "' (record, record-asm and replay only)\n";
        return usage();
    }
    if (args.jobsSet && cmd != "replay" && cmd != "recover") {
        std::cerr << "--jobs is not supported by '" << cmd
                  << "' (replay and recover only)\n";
        return usage();
    }
    if (args.journalStreamsSet && cmd != "record" &&
        cmd != "record-asm") {
        std::cerr << "--journal-streams is not supported by '" << cmd
                  << "' (record and record-asm only)\n";
        return usage();
    }
    if (args.journalStreamsSet && args.journalStreams == 0) {
        std::cerr << "--journal-streams needs at least one "
                     "stream\n";
        return usage();
    }
    if (args.ship && cmd != "record" && cmd != "record-asm") {
        std::cerr << "--ship is not supported by '" << cmd
                  << "' (record and record-asm only)\n";
        return usage();
    }
    if (args.lagSet && cmd != "ship" && !args.ship) {
        std::cerr << "--lag needs the ship command or record "
                     "--ship\n";
        return usage();
    }
    if (cmd == "ship")
        return cmdShip(args);
    if (cmd == "record")
        return cmdRecord(args);
    if (cmd == "run")
        return cmdRun(args);
    if (cmd == "record-asm")
        return cmdRecordAsm(args);
    if (cmd == "replay")
        return cmdReplay(args);
    if (cmd == "recover")
        return cmdRecover(args);
    if (cmd == "verify")
        return cmdVerify(args);
    if (cmd == "races")
        return cmdRaces(args);
    if (cmd == "profile")
        return cmdProfile(args);
    if (cmd == "stats")
        return cmdStats(args);
    if (cmd == "info")
        return cmdInfo(args);
    if (cmd == "disasm")
        return cmdDisasm(args);
    if (cmd == "workloads")
        return cmdWorkloads();
    return usage();
}
