#include "os/simos.hh"

#include <algorithm>

#include "common/hash.hh"
#include "common/logging.hh"
#include "vm/interp.hh"

namespace dp
{

namespace
{

/** Upper bound on one I/O transfer; guards fuzzed length arguments. */
constexpr std::uint64_t maxTransfer = std::uint64_t{1} << 20;

constexpr std::uint64_t errResult = ~std::uint64_t{0};

} // namespace

std::uint8_t
SimOS::netByte(const MachineConfig &cfg, std::uint64_t conn,
               std::uint64_t off)
{
    std::uint64_t word =
        mix64(cfg.netSeed ^ mix64(conn * 0x9e3779b97f4a7c15ull +
                                  (off >> 3) + 1));
    return static_cast<std::uint8_t>(word >> (8 * (off & 7)));
}

SimOS::Outcome
SimOS::dispatch(Machine &m, ThreadId tid,
                std::optional<std::uint64_t> inject)
{
    ThreadContext &tc = m.thread(tid);
    dp_assert(tc.state == RunState::Runnable,
              "syscall from non-runnable thread ", tid);

    const auto sysno = tc.reg(Reg::r0);
    const auto a1 = tc.reg(Reg::r1);
    const auto a2 = tc.reg(Reg::r2);
    const auto a3 = tc.reg(Reg::r3);

    Outcome out;
    out.cost = costs_.syscallCycles;

    if (sysno >= static_cast<std::uint64_t>(Sys::NumSyscalls)) {
        out.sys = Sys::NumSyscalls;
        out.value = errResult;
        Interpreter::completeSyscall(tc, out.value);
        return out;
    }
    const Sys sys = static_cast<Sys>(sysno);
    out.sys = sys;

    dp_assert(!inject || sys == Sys::GetTime || sys == Sys::NetRecv,
              "injection supplied for deterministic syscall ",
              syscallName(sys));

    switch (sys) {
      case Sys::Exit:
        return doExit(m, tid, a1);

      case Sys::Write:
        out.value = doWrite(m, a1, a2, a3);
        break;

      case Sys::Read:
        out.value = doRead(m, a1, a2, a3);
        break;

      case Sys::Open:
        out.value = doOpen(m, a1, a2);
        break;

      case Sys::Close:
        out.value = doClose(m, a1);
        break;

      case Sys::Spawn: {
        ThreadContext child;
        child.tid = m.os.nextTid++;
        child.pc = a1;
        child.reg(Reg::r1) = a2;
        child.reg(Reg::r2) = child.tid;
        dp_assert(child.tid == m.threads.size(),
                  "thread table out of step with nextTid");
        m.threads.push_back(child);
        out.woken.push_back(child.tid);
        out.value = child.tid;
        break;
      }

      case Sys::Join: {
        if (a1 >= m.threads.size() || a1 == tid) {
            out.value = errResult;
            break;
        }
        ThreadContext &target = m.thread(static_cast<ThreadId>(a1));
        if (target.state == RunState::Exited) {
            out.value = target.exitCode;
            break;
        }
        m.os.joinWaiters[static_cast<ThreadId>(a1)].push_back(tid);
        tc.state = RunState::Blocked;
        out.blocked = true;
        out.cost += costs_.blockCycles;
        return out;
      }

      case Sys::Yield:
        out.value = 0;
        break;

      case Sys::FutexWait: {
        if (m.mem.read64(a1) != a2) {
            out.value = 1; // value changed: don't sleep
            break;
        }
        m.os.futexQueues[a1].push_back(tid);
        tc.state = RunState::Blocked;
        out.blocked = true;
        out.cost += costs_.blockCycles;
        return out;
      }

      case Sys::FutexWake: {
        auto it = m.os.futexQueues.find(a1);
        std::uint64_t n = 0;
        if (it != m.os.futexQueues.end()) {
            while (n < a2 && !it->second.empty()) {
                ThreadId waiter = it->second.front();
                it->second.pop_front();
                ThreadContext &wtc = m.thread(waiter);
                wtc.state = RunState::Runnable;
                Interpreter::completeSyscall(wtc, 0);
                out.woken.push_back(waiter);
                ++n;
            }
            if (it->second.empty())
                m.os.futexQueues.erase(it);
        }
        out.value = n;
        break;
      }

      case Sys::GetTime:
        out.injectable = true;
        if (inject)
            out.value = *inject;
        else if (faultFires(FaultSite::GetTimeFail))
            out.value = errResult; // transient clock failure
        else
            out.value = m.now;
        break;

      case Sys::NetRecv:
        out.injectable = true;
        out.value = doNetRecv(m, a1, a2, a3, inject);
        break;

      case Sys::NetSend:
        out.value = doNetSend(m, a1, a3);
        break;

      case Sys::Random:
        m.os.rngState = mix64(m.os.rngState ^ 0xd1b54a32d192ed03ull);
        out.value = m.os.rngState;
        break;

      case Sys::PipeWrite: {
        SimPipe &pipe = m.os.pipes[a1];
        if (pipe.closed) {
            out.value = errResult;
            break;
        }
        std::uint64_t len = std::min(a3, maxTransfer);
        std::vector<std::uint8_t> data(len);
        m.mem.readBytes(a2, data);
        pipe.buffer.insert(pipe.buffer.end(), data.begin(),
                           data.end());
        // Serve blocked readers FIFO while bytes remain. Their args
        // are still in their registers (the call never completed).
        while (!pipe.readWaiters.empty() && !pipe.buffer.empty()) {
            ThreadId waiter = pipe.readWaiters.front();
            pipe.readWaiters.pop_front();
            ThreadContext &wtc = m.thread(waiter);
            std::uint64_t want =
                std::min(wtc.reg(Reg::r3), maxTransfer);
            std::uint64_t n = std::min<std::uint64_t>(
                want, pipe.buffer.size());
            std::vector<std::uint8_t> chunk(pipe.buffer.begin(),
                                            pipe.buffer.begin() +
                                                static_cast<long>(n));
            pipe.buffer.erase(pipe.buffer.begin(),
                              pipe.buffer.begin() +
                                  static_cast<long>(n));
            m.mem.writeBytes(wtc.reg(Reg::r2), chunk);
            wtc.state = RunState::Runnable;
            Interpreter::completeSyscall(wtc, n);
            out.woken.push_back(waiter);
        }
        out.value = len;
        break;
      }

      case Sys::PipeRead: {
        SimPipe &pipe = m.os.pipes[a1];
        std::uint64_t want = std::min(a3, maxTransfer);
        if (!pipe.buffer.empty()) {
            std::uint64_t n = std::min<std::uint64_t>(
                want, pipe.buffer.size());
            std::vector<std::uint8_t> chunk(pipe.buffer.begin(),
                                            pipe.buffer.begin() +
                                                static_cast<long>(n));
            pipe.buffer.erase(pipe.buffer.begin(),
                              pipe.buffer.begin() +
                                  static_cast<long>(n));
            m.mem.writeBytes(a2, chunk);
            out.value = n;
            break;
        }
        if (pipe.closed) {
            out.value = 0; // EOF
            break;
        }
        pipe.readWaiters.push_back(tid);
        tc.state = RunState::Blocked;
        out.blocked = true;
        out.cost += costs_.blockCycles;
        return out;
      }

      case Sys::PipeClose: {
        SimPipe &pipe = m.os.pipes[a1];
        pipe.closed = true;
        // EOF every blocked reader (the buffer is empty if they are
        // blocked).
        while (!pipe.readWaiters.empty()) {
            ThreadId waiter = pipe.readWaiters.front();
            pipe.readWaiters.pop_front();
            ThreadContext &wtc = m.thread(waiter);
            wtc.state = RunState::Runnable;
            Interpreter::completeSyscall(wtc, 0);
            out.woken.push_back(waiter);
        }
        out.value = 0;
        break;
      }

      case Sys::Kill: {
        if (a1 >= m.threads.size()) {
            out.value = errResult;
            break;
        }
        ThreadContext &target = m.thread(static_cast<ThreadId>(a1));
        if (target.state == RunState::Exited) {
            out.value = errResult;
            break;
        }
        target.pendingSigs.push_back(
            static_cast<std::uint8_t>(a2 & 0xff));
        out.value = 0;
        break;
      }

      case Sys::SigHandler:
        tc.handlerPc = a1;
        out.value = 0;
        break;

      case Sys::SigReturn: {
        if (!tc.inHandler) {
            out.value = errResult;
            break;
        }
        // Custom completion: restore the full interrupted context
        // (the signal frame) instead of advancing past the syscall.
        tc.regs = tc.savedRegs;
        tc.pc = tc.savedPc;
        tc.inHandler = false;
        ++tc.retired; // the sigreturn itself retires
        return out;
      }

      case Sys::Seek: {
        if (a1 >= m.os.fds.size() || m.os.fds[a1].fileId < 0 ||
            m.os.fds[a1].appendOnly) {
            out.value = errResult;
            break;
        }
        out.value = m.os.fds[a1].offset;
        m.os.fds[a1].offset = a2;
        break;
      }

      default:
        out.value = errResult;
        break;
    }

    // Re-acquire the context: Spawn's push_back may have reallocated
    // the thread table, invalidating `tc`.
    Interpreter::completeSyscall(m.thread(tid), out.value);
    return out;
}

SimOS::Outcome
SimOS::doExit(Machine &m, ThreadId tid, std::uint64_t code)
{
    ThreadContext &tc = m.thread(tid);
    ++tc.retired; // the exit call itself retires
    tc.state = RunState::Exited;
    tc.exitCode = code;

    Outcome out;
    out.sys = Sys::Exit;
    out.cost = costs_.syscallCycles;

    auto it = m.os.joinWaiters.find(tid);
    if (it != m.os.joinWaiters.end()) {
        for (ThreadId waiter : it->second) {
            ThreadContext &wtc = m.thread(waiter);
            wtc.state = RunState::Runnable;
            Interpreter::completeSyscall(wtc, code);
            out.woken.push_back(waiter);
        }
        m.os.joinWaiters.erase(it);
    }
    return out;
}

std::uint64_t
SimOS::doWrite(Machine &m, std::uint64_t fd, Addr buf, std::uint64_t len)
{
    if (fd >= m.os.fds.size() || m.os.fds[fd].fileId < 0 ||
        !m.os.fds[fd].writable)
        return errResult;
    len = std::min(len, maxTransfer);
    FileDesc &desc = m.os.fds[fd];
    std::vector<std::uint8_t> data(len);
    m.mem.readBytes(buf, data);

    auto &content =
        m.os.writableFile(static_cast<std::uint32_t>(desc.fileId));
    std::uint64_t pos = desc.appendOnly ? content.size() : desc.offset;
    if (content.size() < pos + len)
        content.resize(pos + len);
    std::copy(data.begin(), data.end(), content.begin() + pos);
    if (!desc.appendOnly)
        desc.offset += len;
    return len;
}

std::uint64_t
SimOS::doRead(Machine &m, std::uint64_t fd, Addr buf, std::uint64_t len)
{
    if (fd >= m.os.fds.size() || m.os.fds[fd].fileId < 0)
        return errResult;
    len = std::min(len, maxTransfer);
    FileDesc &desc = m.os.fds[fd];
    const FileContent &content = m.os.files[desc.fileId];
    if (!content)
        return 0;
    if (desc.offset >= content->size())
        return 0;
    std::uint64_t n = std::min<std::uint64_t>(len,
                                              content->size() -
                                                  desc.offset);
    // A short read in the result-generating (thread-parallel) kernel
    // only: the epoch-parallel run re-executes the full read, so the
    // states disagree at the epoch boundary and the recorder must
    // roll back onto the epoch-parallel truth.
    if (n > 1 && faultFires(FaultSite::FileShortRead))
        n /= 2;
    m.mem.writeBytes(buf, {content->data() + desc.offset,
                           static_cast<std::size_t>(n)});
    desc.offset += n;
    return n;
}

std::uint64_t
SimOS::doOpen(Machine &m, Addr path, std::uint64_t flags)
{
    std::string name = m.mem.readCString(path);
    if (name.empty())
        return errResult;
    auto it = m.os.nameToFile.find(name);
    if (it == m.os.nameToFile.end() && !(flags & openCreate))
        return errResult;
    std::uint32_t id = m.os.ensureFile(name);
    return m.os.allocFd(FileDesc{static_cast<std::int32_t>(id), 0,
                                 (flags & (openWrite | openCreate)) != 0,
                                 false});
}

std::uint64_t
SimOS::doClose(Machine &m, std::uint64_t fd)
{
    if (fd >= m.os.fds.size() || m.os.fds[fd].fileId < 0)
        return errResult;
    m.os.fds[fd] = FileDesc{};
    return 0;
}

std::uint64_t
SimOS::doNetRecv(Machine &m, std::uint64_t conn, Addr buf,
                 std::uint64_t max_len,
                 std::optional<std::uint64_t> inject)
{
    const MachineConfig &cfg = m.config();
    NetCursor &cur = m.os.netCursors[conn];
    max_len = std::min(max_len, maxTransfer);

    std::uint64_t n;
    if (inject) {
        // A recorded transient failure replays as the same failure:
        // no bytes delivered, cursor untouched.
        if (*inject == errResult)
            return errResult;
        n = std::min(*inject, max_len);
    } else {
        if (faultFires(FaultSite::NetRecvFail))
            return errResult; // transient failure, nothing delivered
        // Arrival model: the stream delivers one byte every
        // netCyclesPerByte cycles, up to netBytesPerConn total. What
        // has arrived but not yet been read is available now — this is
        // what makes NetRecv results depend on the virtual clock.
        std::uint64_t arrived =
            std::min(cfg.netBytesPerConn,
                     m.now / std::max<std::uint64_t>(
                                 1, cfg.netCyclesPerByte));
        n = arrived > cur.recvOffset
                ? std::min(max_len, arrived - cur.recvOffset)
                : 0;
        // A short delivery: half of what had arrived. The shortened
        // count is the logged (injected) result, so every downstream
        // run reproduces it exactly.
        if (n > 1 && faultFires(FaultSite::NetRecvShort))
            n /= 2;
    }

    if (n > 0) {
        std::vector<std::uint8_t> data(n);
        for (std::uint64_t i = 0; i < n; ++i)
            data[i] = netByte(cfg, conn, cur.recvOffset + i);
        m.mem.writeBytes(buf, data);
        cur.recvOffset += n;
    }
    return n;
}

std::uint64_t
SimOS::doNetSend(Machine &m, std::uint64_t conn, std::uint64_t len)
{
    len = std::min(len, maxTransfer);
    m.os.netCursors[conn].sentBytes += len;
    return len;
}

bool
SimOS::faultFires(FaultSite site) const
{
    return faults_ && faults_->fire(site);
}

} // namespace dp
