# Empty compiler generated dependencies file for recording_io_test.
# This may be replaced when dependencies are built.
