/**
 * @file
 * Quickstart: author a tiny multithreaded guest program, record it
 * with uniparallelism, and replay it deterministically.
 *
 * This is the README's walkthrough. It shows the whole public API
 * surface a user needs: Assembler (write a program), asmlib (sync
 * idioms), UniparallelRecorder (record), Replayer (replay).
 */

#include <cstdint>
#include <iostream>

#include "core/recorder.hh"
#include "replay/replayer.hh"
#include "vm/asmlib.hh"
#include "vm/assembler.hh"

using namespace dp;

namespace
{

/** Two workers each add 1 to a lock-protected counter 1000 times. */
GuestProgram
counterProgram()
{
    using enum Reg;
    namespace lib = dp::asmlib;
    constexpr Addr lock_addr = 0x1000;
    constexpr Addr counter_addr = 0x1008;

    Assembler a;
    Label worker = a.newLabel();

    // main: spawn two workers, join them, exit with the counter.
    lib::spawnThread(a, worker, r5); // arg unused
    a.mov(r10, r0);                  // first child tid
    lib::spawnThread(a, worker, r5);
    a.mov(r11, r0);                  // second child tid
    lib::joinThread(a, r10);
    lib::joinThread(a, r11);
    a.lia(r4, counter_addr);
    a.ld64(r1, r4, 0);
    a.sys(Sys::Exit);

    // worker: 1000 locked increments.
    a.bind(worker);
    a.li(r8, 1000);
    a.lia(r9, lock_addr);
    a.lia(r10, counter_addr);
    Label loop = a.hereLabel();
    Label done = a.newLabel();
    a.beqz(r8, done);
    lib::lockAcquire(a, r9, r3);
    a.ld64(r4, r10, 0);
    a.addi(r4, r4, 1);
    a.st64(r10, 0, r4);
    lib::lockRelease(a, r9, r3);
    a.addi(r8, r8, -1);
    a.jmp(loop);
    a.bind(done);
    lib::exitWith(a, 0);

    return a.finish("quickstart_counter");
}

} // namespace

int
main()
{
    GuestProgram prog = counterProgram();
    std::cout << "program: " << prog.name << ", "
              << prog.code.size() << " instructions\n";

    // 1. Record: two worker CPUs, uniparallel epochs.
    RecorderOptions opts;
    opts.workerCpus = 2;
    opts.epochLength = 20'000;
    UniparallelRecorder recorder(prog, {}, opts);
    RecordOutcome out = recorder.record();
    if (!out.ok) {
        std::cerr << "recording failed: "
                  << stopReasonName(out.tpReason) << "\n";
        return 1;
    }
    std::cout << "recorded " << out.recording.epochs.size()
              << " epochs, " << out.recording.stats.rollbacks
              << " rollbacks, exit code " << out.mainExitCode
              << " (expect 2000)\n"
              << "replay log: " << out.recording.replayLogBytes()
              << " bytes\n";

    // 2. Replay: logs + initial state reproduce the run exactly.
    Replayer replayer(out.recording);
    ReplayResult seq = replayer.replaySequential();
    std::cout << "sequential replay: "
              << (seq.ok ? "verified" : "FAILED") << " ("
              << seq.epochsVerified << " epochs)\n";

    // 3. Parallel replay: epochs re-execute concurrently.
    ReplayResult par = replayer.replayParallel(2);
    std::cout << "parallel replay:   "
              << (par.ok ? "verified" : "FAILED") << "\n";

    return seq.ok && par.ok ? 0 : 1;
}
