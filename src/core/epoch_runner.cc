#include "core/epoch_runner.hh"

#include <deque>
#include <unordered_map>

#include "common/logging.hh"
#include "os/simos.hh"
#include "trace/trace.hh"

namespace dp
{

EpochRunResult
EpochRunner::run(const EpochTask &task) const
{
    dp_assert(task.start, "epoch task without a start checkpoint");

    EpochRunResult res(task.start->materialize(*prog_, *cfg_));
    SimOS os(costs_);

    // Per-object sync-order queues: each key's suborder from the
    // thread-parallel run must be followed; different objects are
    // unordered relative to each other (that is the happens-before
    // relation for data-race-free programs). Cursors only advance on
    // a match, so a diverged execution relies on relaxation.
    std::unordered_map<SyncKey, std::deque<SyncEvent>> order_queues;
    if (task.syncOrder)
        for (const SyncEvent &e : task.syncOrder->events())
            order_queues[e.key].push_back(e);

    // Injectable-result cursor (the injectable calls all carry the
    // global sync key, so their relative order is enforced and one
    // FIFO suffices).
    std::size_t inject_cursor = 0;

    UniHooks hooks;
    if (task.syncOrder) {
        hooks.permitSync = [&](ThreadId tid, SyncKind kind,
                               SyncKey key) {
            auto it = order_queues.find(key);
            if (it == order_queues.end() || it->second.empty())
                return true; // past this object's horizon: free-run
            const SyncEvent &e = it->second.front();
            return e.tid == tid && e.kind == kind;
        };
        hooks.onSync = [&](ThreadId tid, SyncKind kind, SyncKey key) {
            auto it = order_queues.find(key);
            if (it != order_queues.end() && !it->second.empty() &&
                it->second.front() == SyncEvent{tid, kind, key})
                it->second.pop_front();
        };
    }
    hooks.injectSyscall =
        [&](ThreadId tid, Sys sys) -> std::optional<std::uint64_t> {
        if (inject_cursor >= task.injectables.size()) {
            res.injectMismatch = true;
            return std::nullopt;
        }
        const SyscallRecord &rec = task.injectables[inject_cursor];
        if (rec.tid != tid || rec.sys != sys) {
            res.injectMismatch = true;
            return std::nullopt;
        }
        ++inject_cursor;
        return rec.value;
    };
    hooks.onSyscall = [&](ThreadId tid, Sys sys, std::uint64_t value,
                          bool injectable) {
        res.syscalls.append({tid, sys, value, injectable});
    };
    hooks.onSegment = [&](const ScheduleSegment &seg) {
        res.schedule.append(seg);
        if (task.trace)
            task.trace->instant(
                TraceStage::EpochParallel, task.traceTid,
                "timeslice", "ep",
                {{"epoch", task.traceEpoch},
                 {"guestTid", seg.tid},
                 {"instrs", seg.instrs}});
    };
    hooks.onSignal = [&](const SignalEvent &e) {
        res.signals.append(e);
    };

    UniOptions opts;
    opts.quantum = task.quantum;
    opts.fuel = task.fuel;
    opts.targets = task.targets;
    opts.chargeRecordCosts = task.chargeRecordCosts;
    opts.planSignals = true;
    opts.signalPlan = task.signalPlan;

    UniRunner runner(res.end, os, std::move(opts), std::move(hooks));
    res.reason = runner.run();
    res.relaxed = runner.constraintsRelaxed();
    res.epCycles = runner.stats().cycles;
    res.instrs = runner.stats().instrs;
    res.endStateHash = res.end.stateHash();
    return res;
}

} // namespace dp
