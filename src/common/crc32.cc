#include "common/crc32.hh"

#include <atomic>
#include <cstring>

/**
 * Hardware path availability: x86-64 with the SSE4.2 crc32
 * instructions, unless the build opts out (DP_NO_HW_CRC — the
 * ci-speed preset uses this to pin the table path). The function is
 * compiled with a target attribute so the rest of the translation
 * unit — and the whole build — stays baseline x86-64; cpuid gates the
 * call at runtime.
 */
#if defined(__x86_64__) && !defined(DP_NO_HW_CRC)
#define DP_CRC32_HW_COMPILED 1
#include <x86intrin.h>
#else
#define DP_CRC32_HW_COMPILED 0
#endif

namespace dp
{

namespace
{

/** Runtime opt-out knob (tests, identity sweeps). */
std::atomic<bool> forceScalar{false};

#if DP_CRC32_HW_COMPILED

__attribute__((target("sse4.2"))) std::uint32_t
crc32cHw(std::span<const std::uint8_t> bytes, std::uint32_t seed)
{
    const std::uint8_t *p = bytes.data();
    std::size_t n = bytes.size();
    // The SSE4.2 crc32 instruction consumes the running remainder in
    // the same pre-/post-inverted, reflected form the byte table
    // uses, so chaining 8/4/2/1-byte steps reproduces the table
    // result bit for bit at any split.
    std::uint64_t c = ~seed;
    while (n >= 8) {
        std::uint64_t w;
        std::memcpy(&w, p, 8);
        c = _mm_crc32_u64(c, w);
        p += 8;
        n -= 8;
    }
    std::uint32_t c32 = static_cast<std::uint32_t>(c);
    if (n >= 4) {
        std::uint32_t w;
        std::memcpy(&w, p, 4);
        c32 = _mm_crc32_u32(c32, w);
        p += 4;
        n -= 4;
    }
    if (n >= 2) {
        std::uint16_t w;
        std::memcpy(&w, p, 2);
        c32 = _mm_crc32_u16(c32, w);
        p += 2;
        n -= 2;
    }
    if (n)
        c32 = _mm_crc32_u8(c32, *p);
    return ~c32;
}

bool
cpuHasCrc32()
{
    static const bool has = __builtin_cpu_supports("sse4.2");
    return has;
}

#else

bool
cpuHasCrc32()
{
    return false;
}

#endif // DP_CRC32_HW_COMPILED

} // namespace

bool
crc32cHwAvailable()
{
    return cpuHasCrc32();
}

void
crc32cForceScalar(bool force)
{
    forceScalar.store(force, std::memory_order_relaxed);
}

const char *
crc32cBackendName()
{
    return crc32cHwAvailable() &&
                   !forceScalar.load(std::memory_order_relaxed)
               ? "sse4.2"
               : "table";
}

std::uint32_t
crc32c(std::span<const std::uint8_t> bytes, std::uint32_t seed)
{
#if DP_CRC32_HW_COMPILED
    if (cpuHasCrc32() && !forceScalar.load(std::memory_order_relaxed))
        return crc32cHw(bytes, seed);
#endif
    return crc32cScalar(bytes, seed);
}

} // namespace dp
