/**
 * @file
 * Unit tests for the guest ISA: assembler label resolution,
 * interpreter semantics per opcode class, and the asmlib sync idioms.
 */

#include <gtest/gtest.h>

#include "mem/paged_memory.hh"
#include "os/simos.hh"
#include "os/uni_runner.hh"
#include "vm/asmlib.hh"
#include "vm/assembler.hh"
#include "vm/interp.hh"

namespace dp
{
namespace
{

using enum Reg;

/** Run a single-threaded program to completion; return the machine. */
Machine
runProgram(const GuestProgram &prog)
{
    Machine m(prog, {});
    SimOS os;
    UniRunner runner(m, os, {}, {});
    EXPECT_EQ(runner.run(), StopReason::AllExited);
    return m;
}

std::uint64_t
evalExit(const std::function<void(Assembler &)> &body)
{
    Assembler a;
    body(a);
    a.mov(r1, r15); // convention: tests leave the result in r15
    a.sys(Sys::Exit);
    Machine m = runProgram(a.finish("eval"));
    return m.threads[0].exitCode;
}

TEST(Interp, ArithmeticSemantics)
{
    EXPECT_EQ(evalExit([](Assembler &a) {
                  a.li(r1, 7);
                  a.li(r2, 5);
                  a.add(r15, r1, r2);
              }),
              12u);
    EXPECT_EQ(evalExit([](Assembler &a) {
                  a.li(r1, 7);
                  a.li(r2, 5);
                  a.sub(r15, r2, r1); // 5 - 7 wraps
              }),
              static_cast<std::uint64_t>(-2));
    EXPECT_EQ(evalExit([](Assembler &a) {
                  a.li(r1, 1);
                  a.li(r2, 40);
                  a.shl(r15, r1, r2);
              }),
              std::uint64_t{1} << 40);
    EXPECT_EQ(evalExit([](Assembler &a) {
                  a.li(r1, -16);
                  a.li(r2, 2);
                  a.sar(r15, r1, r2);
              }),
              static_cast<std::uint64_t>(-4));
    EXPECT_EQ(evalExit([](Assembler &a) {
                  a.li(r1, -16);
                  a.li(r2, 2);
                  a.shr(r15, r1, r2);
              }),
              (~std::uint64_t{0} - 15) >> 2);
}

TEST(Interp, DivisionByZeroFollowsRiscV)
{
    EXPECT_EQ(evalExit([](Assembler &a) {
                  a.li(r1, 99);
                  a.li(r2, 0);
                  a.divu(r15, r1, r2);
              }),
              ~std::uint64_t{0});
    EXPECT_EQ(evalExit([](Assembler &a) {
                  a.li(r1, 99);
                  a.li(r2, 0);
                  a.remu(r15, r1, r2);
              }),
              99u);
}

TEST(Interp, ComparisonsSignedAndUnsigned)
{
    EXPECT_EQ(evalExit([](Assembler &a) {
                  a.li(r1, -1); // max unsigned
                  a.li(r2, 1);
                  a.sltu(r15, r1, r2);
              }),
              0u);
    EXPECT_EQ(evalExit([](Assembler &a) {
                  a.li(r1, -1);
                  a.li(r2, 1);
                  a.slts(r15, r1, r2);
              }),
              1u);
    EXPECT_EQ(evalExit([](Assembler &a) {
                  a.li(r1, 3);
                  a.li(r2, 3);
                  a.seq(r15, r1, r2);
              }),
              1u);
}

TEST(Interp, LoadsZeroExtend)
{
    EXPECT_EQ(evalExit([](Assembler &a) {
                  a.li(r1, -1);
                  a.lia(r2, 0x100);
                  a.st64(r2, 0, r1);
                  a.ld8(r15, r2, 0);
              }),
              0xffu);
    EXPECT_EQ(evalExit([](Assembler &a) {
                  a.li(r1, -1);
                  a.lia(r2, 0x100);
                  a.st64(r2, 0, r1);
                  a.ld32(r15, r2, 0);
              }),
              0xffffffffu);
}

TEST(Interp, StoreNarrowingKeepsLowBits)
{
    Assembler a;
    a.li(r1, 0x1122334455667788);
    a.lia(r2, 0x200);
    a.st16(r2, 0, r1);
    a.ld64(r15, r2, 0);
    a.mov(r1, r15);
    a.sys(Sys::Exit);
    Machine m = runProgram(a.finish("store_narrow"));
    EXPECT_EQ(m.threads[0].exitCode, 0x7788u);
}

TEST(Interp, CasSemantics)
{
    // Successful CAS: memory updated, old value returned.
    EXPECT_EQ(evalExit([](Assembler &a) {
                  a.lia(r2, 0x300);
                  a.li(r1, 5);
                  a.st64(r2, 0, r1);
                  a.li(r15, 5);  // expected
                  a.li(r3, 9);   // desired
                  a.cas(r15, r2, r3);
                  a.ld64(r4, r2, 0);
                  a.muli(r4, r4, 100);
                  a.add(r15, r15, r4); // old(5) + 100*new(9)
              }),
              905u);
    // Failed CAS: memory unchanged, old value returned.
    EXPECT_EQ(evalExit([](Assembler &a) {
                  a.lia(r2, 0x300);
                  a.li(r1, 5);
                  a.st64(r2, 0, r1);
                  a.li(r15, 6); // wrong expectation
                  a.li(r3, 9);
                  a.cas(r15, r2, r3);
                  a.ld64(r4, r2, 0);
                  a.muli(r4, r4, 100);
                  a.add(r15, r15, r4); // old(5) + 100*mem(5)
              }),
              505u);
}

TEST(Interp, FetchAddAndXchg)
{
    EXPECT_EQ(evalExit([](Assembler &a) {
                  a.lia(r2, 0x400);
                  a.li(r1, 10);
                  a.st64(r2, 0, r1);
                  a.li(r3, 32);
                  a.fetchAdd(r15, r2, r3); // returns 10, mem = 42
                  a.ld64(r4, r2, 0);
                  a.add(r15, r15, r4); // 10 + 42
              }),
              52u);
    EXPECT_EQ(evalExit([](Assembler &a) {
                  a.lia(r2, 0x400);
                  a.li(r1, 7);
                  a.st64(r2, 0, r1);
                  a.li(r3, 11);
                  a.xchg(r15, r2, r3);
                  a.ld64(r4, r2, 0);
                  a.muli(r4, r4, 10);
                  a.add(r15, r15, r4); // 7 + 110
              }),
              117u);
}

TEST(Interp, JalAndJrImplementCalls)
{
    Assembler a;
    Label fn = a.newLabel();
    a.li(r10, 5);
    a.jal(r14, fn); // call
    a.mov(r1, r10);
    a.sys(Sys::Exit);
    a.bind(fn);
    a.muli(r10, r10, 3);
    a.jr(r14); // return
    Machine m = runProgram(a.finish("call"));
    EXPECT_EQ(m.threads[0].exitCode, 15u);
}

TEST(Interp, FaultOnPcOutOfRangeExitsThread)
{
    Assembler a;
    Label far = a.newLabel();
    a.jmp(far);
    a.nop();
    a.bind(far); // binds to one-past-last instruction
    GuestProgram prog = a.finish("fall_off");
    Machine m(prog, {});
    SimOS os;
    UniRunner runner(m, os, {}, {});
    EXPECT_EQ(runner.run(), StopReason::AllExited);
    EXPECT_EQ(m.threads[0].exitCode, 0xdeadu);
}

TEST(Interp, HaltExitsWithR0)
{
    Assembler a;
    a.li(r0, 77);
    a.halt();
    Machine m = runProgram(a.finish("halt"));
    EXPECT_EQ(m.threads[0].exitCode, 77u);
    EXPECT_EQ(m.threads[0].state, RunState::Exited);
}

TEST(Interp, RetiredCountsExactly)
{
    Assembler a;
    a.li(r1, 1);  // 1
    a.li(r2, 2);  // 2
    a.add(r3, r1, r2); // 3
    a.li(r1, 0);  // 4
    a.sys(Sys::Exit); // li(5) + syscall(6)
    Machine m = runProgram(a.finish("count"));
    EXPECT_EQ(m.threads[0].retired, 6u);
}

// Regression: out-of-range pc and invalid opcode share one exit
// contract — Exited, exit code 0xdead, the faulting attempt retired,
// StepKind::Fault. (Faults previously did not retire, so the thread's
// retired count disagreed with the slice's instruction count.)
TEST(Interp, FaultContractIsUniform)
{
    // Invalid opcode: hand-build a program the assembler refuses.
    GuestProgram bad;
    bad.name = "badop";
    bad.code.push_back({static_cast<Opcode>(0xee), r0, r0, r0, 0});
    {
        Machine m(bad, {});
        Interpreter interp(bad);
        EXPECT_EQ(interp.step(m.threads[0], m.mem), StepKind::Fault);
        EXPECT_EQ(m.threads[0].state, RunState::Exited);
        EXPECT_EQ(m.threads[0].exitCode, 0xdeadu);
        EXPECT_EQ(m.threads[0].retired, 1u);
    }

    // Out-of-range pc, through the engine: jmp (1) + fault (1).
    Assembler a;
    Label far = a.newLabel();
    a.jmp(far);
    a.nop();
    a.bind(far); // one past the last instruction
    GuestProgram prog = a.finish("fall_off_counted");
    Machine m(prog, {});
    SimOS os;
    UniRunner runner(m, os, {}, {});
    EXPECT_EQ(runner.run(), StopReason::AllExited);
    EXPECT_EQ(m.threads[0].exitCode, 0xdeadu);
    EXPECT_EQ(m.threads[0].retired, 2u);
}

TEST(Interp, RunBlockStopsAtBoundaries)
{
    Assembler a;
    a.li(r1, 1);           // 0
    a.li(r9, 0x1000);      // 1
    a.fetchAdd(r4, r9, r1); // 2: atomic
    a.li(r5, 7);           // 3
    a.sys(Sys::Exit);      // 4: li r0, 5: syscall
    GuestProgram prog = a.finish("boundaries");
    Machine m(prog, {});
    Interpreter interp(prog);
    ThreadContext &tc = m.threads[0];

    // Budget stop: one instruction, pc at the next one.
    auto b = interp.runBlock(tc, m.mem, 1, 0);
    EXPECT_EQ(b.instrs, 1u);
    EXPECT_EQ(b.last, StepKind::Ok);
    EXPECT_EQ(tc.pc, 1u);
    EXPECT_EQ(tc.retired, 1u);

    // Class stop: halts before the atomic without executing it.
    b = interp.runBlock(tc, m.mem, 100, ClsAtomic);
    EXPECT_EQ(b.instrs, 1u);
    EXPECT_EQ(b.last, StepKind::Ok);
    EXPECT_EQ(tc.pc, 2u);

    // No mask: runs the atomic but still stops before the syscall.
    b = interp.runBlock(tc, m.mem, 100, 0);
    EXPECT_EQ(b.instrs, 3u);
    EXPECT_EQ(b.last, StepKind::SyscallTrap);
    EXPECT_EQ(tc.pc, 5u);
    EXPECT_EQ(tc.retired, 5u);
    EXPECT_EQ(m.mem.read64(0x1000), 1u);

    // Halt retires inside the block and freezes pc on it.
    Assembler h;
    h.li(r0, 42);
    h.halt();
    GuestProgram hprog = h.finish("halts");
    Machine hm(hprog, {});
    Interpreter hinterp(hprog);
    b = hinterp.runBlock(hm.threads[0], hm.mem, 100, 0);
    EXPECT_EQ(b.instrs, 2u);
    EXPECT_EQ(b.last, StepKind::Halted);
    EXPECT_EQ(hm.threads[0].exitCode, 42u);
    EXPECT_EQ(hm.threads[0].retired, 2u);
    EXPECT_EQ(hm.threads[0].pc, 1u);
}

TEST(Interp, DecodedProgramIsMemoizedPerStamp)
{
    Assembler a;
    a.li(r0, 5);
    a.halt();
    GuestProgram prog = a.finish("memo");
    auto d1 = prog.decoded();
    auto d2 = prog.decoded();
    EXPECT_EQ(d1.get(), d2.get());
    EXPECT_EQ(d1->stamp, prog.codeStamp());
    ASSERT_EQ(d1->code.size(), prog.code.size());
    EXPECT_EQ(d1->code[0].op, Opcode::Li);
    EXPECT_EQ(d1->code[0].cls, 0);
    EXPECT_EQ(opcodeClass(Opcode::Syscall), ClsSyscall);
    EXPECT_EQ(opcodeClass(Opcode::Cas), ClsAtomic | ClsMem);
    EXPECT_EQ(opcodeClass(Opcode::Ld32), ClsMem);

    const std::uint64_t old_stamp = prog.codeStamp();
    prog.invalidateCode();
    EXPECT_NE(prog.codeStamp(), old_stamp);
    auto d3 = prog.decoded();
    EXPECT_NE(d3.get(), d1.get());
    EXPECT_EQ(d3->stamp, prog.codeStamp());
}

// The `record --resume` scenario: code is re-assembled in place while
// an Interpreter that already memoized the old decode is still alive.
// A stale cache would execute the old immediate and this test fails.
TEST(Interp, CodeEditAfterInvalidateIsPickedUp)
{
    Assembler a;
    a.li(r0, 5);
    a.halt();
    GuestProgram prog = a.finish("patched");
    Interpreter interp(prog);

    Machine m1(prog, {});
    auto b = interp.runBlock(m1.threads[0], m1.mem, 10, 0);
    EXPECT_EQ(b.last, StepKind::Halted);
    EXPECT_EQ(m1.threads[0].exitCode, 5u);

    prog.code[0].imm = 9; // the re-assembly
    prog.invalidateCode();

    Machine m2(prog, {});
    b = interp.runBlock(m2.threads[0], m2.mem, 10, 0);
    EXPECT_EQ(b.last, StepKind::Halted);
    EXPECT_EQ(m2.threads[0].exitCode, 9u);

    // And through a fresh engine (the actual resume path).
    prog.code[0].imm = 13;
    prog.invalidateCode();
    Machine m3(prog, {});
    SimOS os;
    UniRunner runner(m3, os, {}, {});
    EXPECT_EQ(runner.run(), StopReason::AllExited);
    EXPECT_EQ(m3.threads[0].exitCode, 13u);
}

TEST(Interp, DispatchKindMatchesBuildConfiguration)
{
#ifdef DP_THREADED_DISPATCH
    EXPECT_STREQ(Interpreter::dispatchKindName(), "threaded");
    EXPECT_NE(interpDispatchTable(), nullptr);
#else
    EXPECT_STREQ(Interpreter::dispatchKindName(), "switch");
    EXPECT_EQ(interpDispatchTable(), nullptr);
#endif
}

TEST(Assembler, ForwardAndBackwardLabels)
{
    Assembler a;
    Label fwd = a.newLabel();
    a.li(r1, 0);
    Label back = a.hereLabel();
    a.addi(r1, r1, 1);
    a.li(r2, 3);
    a.bltu(r1, r2, back);
    a.jmp(fwd);
    a.nop();
    a.bind(fwd);
    a.mov(r15, r1);
    a.mov(r1, r15);
    a.sys(Sys::Exit);
    Machine m = runProgram(a.finish("labels"));
    EXPECT_EQ(m.threads[0].exitCode, 3u);
}

TEST(Assembler, UnboundLabelIsFatal)
{
    Assembler a;
    Label never = a.newLabel();
    a.jmp(never);
    EXPECT_DEATH((void)a.finish("bad"), "never bound");
}

TEST(Assembler, DataSegmentsLoad)
{
    Assembler a;
    a.dataU64(0x1000, 0xfeedface);
    std::vector<std::uint64_t> words{1, 2, 3};
    a.dataU64s(0x2000, words);
    a.lia(r2, 0x2000);
    a.ld64(r1, r2, 16);
    a.sys(Sys::Exit); // exit(words[2])
    Machine m = runProgram(a.finish("data"));
    EXPECT_EQ(m.threads[0].exitCode, 3u);
    EXPECT_EQ(m.mem.read64(0x1000), 0xfeedfaceu);
}

TEST(Asmlib, LockExcludesAndFutexParksWaiters)
{
    // Covered end-to-end by the workload tests; here check the lock
    // leaves the word in the expected states.
    Assembler a;
    a.lia(r9, 0x1000);
    asmlib::lockAcquire(a, r9, r3);
    a.ld64(r14, r9, 0); // held: word == 1
    asmlib::lockRelease(a, r9, r3);
    a.ld64(r15, r9, 0); // released: word == 0
    a.muli(r14, r14, 10);
    a.add(r1, r14, r15);
    a.sys(Sys::Exit);
    Machine m = runProgram(a.finish("lock_states"));
    EXPECT_EQ(m.threads[0].exitCode, 10u);
}

TEST(Isa, ClassificationPredicates)
{
    EXPECT_TRUE(isAtomicOp(Opcode::Cas));
    EXPECT_TRUE(isAtomicOp(Opcode::FetchAdd));
    EXPECT_TRUE(isAtomicOp(Opcode::Xchg));
    EXPECT_FALSE(isAtomicOp(Opcode::Ld64));
    EXPECT_TRUE(isMemOp(Opcode::Ld8));
    EXPECT_TRUE(isMemOp(Opcode::St64));
    EXPECT_TRUE(isMemOp(Opcode::Xchg));
    EXPECT_FALSE(isMemOp(Opcode::Add));
    EXPECT_EQ(opcodeName(Opcode::FetchAdd), "fetchadd");
    EXPECT_EQ(syscallName(Sys::FutexWait), "futex_wait");
}

} // namespace
} // namespace dp
