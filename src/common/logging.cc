#include "common/logging.hh"

#include <exception>

namespace dp
{
namespace detail
{

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "panic: " << msg << "\n  at " << file << ":" << line
              << std::endl;
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "fatal: " << msg << "\n  at " << file << ":" << line
              << std::endl;
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::cerr << "warn: " << msg << std::endl;
}

void
informImpl(const std::string &msg)
{
    std::cout << "info: " << msg << std::endl;
}

} // namespace detail
} // namespace dp
