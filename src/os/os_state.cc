#include "os/os_state.hh"

#include "common/hash.hh"
#include "common/logging.hh"

namespace dp
{

std::uint64_t
OsState::hash() const
{
    Digest d;
    for (const auto &[name, id] : nameToFile) {
        d.bytes({reinterpret_cast<const std::uint8_t *>(name.data()),
                 name.size()});
        d.word(id);
    }
    for (const auto &content : files) {
        if (content)
            d.bytes(*content);
        else
            d.word(0);
    }
    for (const auto &fd : fds) {
        d.word(static_cast<std::uint64_t>(fd.fileId));
        d.word(fd.offset);
        d.word(static_cast<std::uint64_t>(fd.writable) |
               (static_cast<std::uint64_t>(fd.appendOnly) << 1));
    }
    for (const auto &[addr, queue] : futexQueues) {
        if (queue.empty())
            continue;
        d.word(addr);
        for (ThreadId t : queue)
            d.word(t);
    }
    for (const auto &[target, waiters] : joinWaiters) {
        if (waiters.empty())
            continue;
        d.word(target);
        for (ThreadId t : waiters)
            d.word(t);
    }
    for (const auto &[id, pipe] : pipes) {
        d.word(id);
        d.word(pipe.buffer.size());
        // Hash buffered bytes 8 at a time (deques aren't contiguous).
        std::uint64_t acc = 0;
        unsigned packed = 0;
        for (std::uint8_t b : pipe.buffer) {
            acc = (acc << 8) | b;
            if (++packed == 8) {
                d.word(acc);
                acc = 0;
                packed = 0;
            }
        }
        if (packed)
            d.word(acc);
        for (ThreadId t : pipe.readWaiters)
            d.word(t ^ 0x80000000u);
        d.word(pipe.closed ? 1 : 0);
    }
    for (const auto &[conn, cur] : netCursors) {
        d.word(conn);
        d.word(cur.recvOffset);
        d.word(cur.sentBytes);
    }
    d.word(rngState);
    d.word(nextTid);
    return d.value();
}

std::vector<std::uint8_t> &
OsState::writableFile(std::uint32_t file_id)
{
    dp_assert(file_id < files.size(), "bad file id ", file_id);
    FileContent &slot = files[file_id];
    if (!slot)
        slot = std::make_shared<std::vector<std::uint8_t>>();
    else if (slot.use_count() > 1)
        slot = std::make_shared<std::vector<std::uint8_t>>(*slot);
    return *slot;
}

std::uint32_t
OsState::ensureFile(const std::string &name)
{
    auto it = nameToFile.find(name);
    if (it != nameToFile.end())
        return it->second;
    auto id = static_cast<std::uint32_t>(files.size());
    files.push_back(std::make_shared<std::vector<std::uint8_t>>());
    nameToFile.emplace(name, id);
    return id;
}

std::uint64_t
OsState::allocFd(FileDesc desc)
{
    // Reuse the lowest closed slot, POSIX-style, so fd assignment is a
    // deterministic function of open/close history.
    for (std::size_t i = 0; i < fds.size(); ++i) {
        if (fds[i].fileId < 0) {
            fds[i] = desc;
            return i;
        }
    }
    fds.push_back(desc);
    return fds.size() - 1;
}

} // namespace dp
