# Empty dependencies file for dp_mem.
# This may be replaced when dependencies are built.
