/**
 * @file
 * E13 (extension) — sharded journal scaling.
 *
 * Beyond the paper's evaluation: the epoch journal can split across N
 * per-stream append-only logs (journal/sharded.hh), each with its own
 * committer strand on a shared pool, and recovery can validate and
 * decode the streams in parallel. This bench measures both directions:
 *
 *   1. Commit: append a real workload's epochs through writers with
 *      1 / 2 / 4 streams (async commit on). More streams means more
 *      committer strands serializing + checksumming concurrently; the
 *      bytes are identical in every shape.
 *   2. Recovery: recover a 4-stream multi-segment journal with
 *      --jobs 1 / 2 / 4. Streams validate concurrently and the epoch
 *      range decodes partitioned across the pool.
 *
 * JSON rows (dp-bench-v1): `overhead` holds speedup-1 relative to the
 * row's baseline (1 stream / 1 job); `logBytes` holds the measured
 * wall-clock in microseconds.
 */

#include <chrono>

#include "bench_common.hh"
#include "common/hash.hh"
#include "core/recorder.hh"
#include "journal/sharded.hh"
#include "replay/recording_io.hh"
#include "workloads/registry.hh"

using namespace dp;
using namespace dp::bench;

namespace
{

using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(Clock::now() -
                                                     t0)
        .count();
}

/** Appends per measured commit run: enough that the committer strands
 *  reach steady state and the hand-off cost amortizes. */
constexpr std::uint64_t kAppends = 192;

/** Append kAppends epochs (cycling the recorded ones) through a
 *  writer with @p streams streams; returns wall ms, best of 3. */
double
commitRun(const Recording &rec, std::uint64_t fingerprint,
          unsigned streams)
{
    double best = 0.0;
    for (int iter = 0; iter < 3; ++iter) {
        ShardedJournalWriter w(rec.program(), rec.config(),
                               fingerprint, {.streams = streams});
        w.enableAsyncCommit();
        auto t0 = Clock::now();
        for (std::uint64_t i = 0; i < kAppends; ++i)
            w.appendEpoch(rec.epochs[i % rec.epochs.size()],
                          static_cast<EpochId>(i));
        w.flush();
        const double ms = msSince(t0);
        if (iter == 0 || ms < best)
            best = ms;
    }
    return best;
}

} // namespace

int
main()
{
    banner("E13 (extension: journal scale)",
           "sharded-journal commit throughput across stream counts; "
           "partitioned recovery across --jobs",
           "[extension] beyond the paper's eval; journal bytes are "
           "identical across every stream/job shape");

    const workloads::Workload *w = workloads::findWorkload("pfscan");
    workloads::WorkloadBundle b = w->make({.threads = 2, .scale = 32});
    // Default epoch length: the journaled epochs carry full-size
    // replay logs (~100 KB serialized), so serialization and
    // checksumming dominate the hand-off — that is the work the
    // committer strands parallelize.
    RecorderOptions opts;
    opts.workerCpus = 2;
    const std::uint64_t fingerprint =
        recorderOptionsFingerprint(opts);
    UniparallelRecorder rec(b.program, b.config, opts);
    RecordOutcome out = rec.record();
    if (!out.ok || out.recording.epochs.empty()) {
        std::cerr << "record failed for journal bench\n";
        return 1;
    }
    const Recording &recd = out.recording;

    std::vector<BenchResult> rows;

    // --- commit sweep: streams 1 / 2 / 4 --------------------------
    const double s1 = commitRun(recd, fingerprint, 1);
    const double s2 = commitRun(recd, fingerprint, 2);
    const double s4 = commitRun(recd, fingerprint, 4);
    Table ct({"streams", "wall ms", "epochs/s", "speedup"});
    for (const auto &[n, ms] :
         {std::pair<unsigned, double>{1, s1}, {2, s2}, {4, s4}}) {
        ct.addRow({std::to_string(n), Table::num(ms, 1),
                   Table::num(kAppends / (ms / 1000.0), 0),
                   Table::num(s1 / ms, 2) + "x"});
        BenchResult row;
        row.name = "commit:pfscan@s" + std::to_string(n);
        row.workload = "pfscan";
        row.workers = n;
        row.overhead = ms > 0 ? s1 / ms - 1.0 : 0.0;
        row.logBytes = static_cast<std::uint64_t>(ms * 1000.0);
        row.epochs = kAppends;
        rows.push_back(row);
    }
    ct.print(std::cout);
    // Host wall-clock, so machine-dependent (see EXPERIMENTS.md): on
    // a single-core container the sweep is flat; with spare cores the
    // committer strands overlap and 4 streams clears 1.5x.
    std::cout << "commit speedup at 4 streams: "
              << Table::num(s1 / s4, 2)
              << "x (target >= 1.5x given spare cores)\n\n";

    // --- recovery sweep: a 4-stream multi-segment journal ---------
    ShardedJournalWriter jw(recd.program(), recd.config(),
                            fingerprint,
                            {.streams = 4, .segmentEpochs = 64});
    for (std::uint64_t i = 0; i < kAppends; ++i)
        jw.appendEpoch(recd.epochs[i % recd.epochs.size()],
                       static_cast<EpochId>(i));
    const std::vector<std::vector<std::uint8_t>> images =
        jw.imageSet();
    std::vector<std::span<const std::uint8_t>> spans(images.begin(),
                                                     images.end());

    double j1 = 0.0;
    std::uint64_t baseline_hash = 0;
    Table rt({"jobs", "wall ms", "epochs", "speedup", "identical"});
    for (unsigned jobs : {1u, 2u, 4u}) {
        double best = 0.0;
        std::uint64_t hash = 0;
        std::uint64_t cut = 0;
        for (int iter = 0; iter < 3; ++iter) {
            auto t0 = Clock::now();
            RecoveredShardedJournal rj =
                recoverShardedJournal(spans, jobs);
            const double ms = msSince(t0);
            if (!rj.report.clean() || !rj.recording) {
                std::cerr << "recovery failed at jobs=" << jobs
                          << "\n";
                return 1;
            }
            hash = fastHash64(serializeRecording(*rj.recording));
            cut = rj.consistentEpochs;
            if (iter == 0 || ms < best)
                best = ms;
        }
        if (jobs == 1) {
            j1 = best;
            baseline_hash = hash;
        }
        const bool identical = hash == baseline_hash;
        rt.addRow({std::to_string(jobs), Table::num(best, 1),
                   Table::num(cut), Table::num(j1 / best, 2) + "x",
                   identical ? "yes" : "NO"});
        if (!identical) {
            std::cerr << "recovery divergence at jobs=" << jobs
                      << "\n";
            return 1;
        }
        BenchResult row;
        row.name = "recover:pfscan@j" + std::to_string(jobs);
        row.workload = "pfscan";
        row.workers = jobs;
        row.overhead = best > 0 ? j1 / best - 1.0 : 0.0;
        row.logBytes = static_cast<std::uint64_t>(best * 1000.0);
        row.epochs = cut;
        rows.push_back(row);
    }
    rt.print(std::cout);

    return emitBenchJson("journal_scale", rows) ? 0 : 1;
}
