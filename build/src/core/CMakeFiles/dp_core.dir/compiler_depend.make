# Empty compiler generated dependencies file for dp_core.
# This may be replaced when dependencies are built.
