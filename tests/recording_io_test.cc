/**
 * @file
 * Tests for recording serialization: a recording artifact must be
 * self-contained — deserialize in a "fresh process" (nothing shared
 * with the recorder) and replay exactly.
 */

#include <gtest/gtest.h>

#include "core/recorder.hh"
#include "replay/recording_io.hh"
#include "replay/replayer.hh"
#include "testprogs.hh"

namespace dp
{
namespace
{

RecordOutcome
recordLocked(std::uint32_t threads, std::uint64_t incs)
{
    GuestProgram prog = testprogs::lockedCounter(threads, incs);
    RecorderOptions opts;
    opts.epochLength = 20'000;
    UniparallelRecorder rec(prog, {}, opts);
    RecordOutcome out = rec.record();
    EXPECT_TRUE(out.ok);
    return out;
}

TEST(RecordingIo, RoundTripPreservesEverything)
{
    GuestProgram prog = testprogs::lockedCounter(2, 300);
    RecorderOptions opts;
    opts.epochLength = 15'000;
    UniparallelRecorder rec(prog, {}, opts);
    RecordOutcome out = rec.record();
    ASSERT_TRUE(out.ok);

    std::vector<std::uint8_t> bytes =
        serializeRecording(out.recording);
    LoadedRecording loaded = deserializeRecording(bytes);

    EXPECT_EQ(loaded.program().code.size(), prog.code.size());
    EXPECT_EQ(loaded.program().hash(), prog.hash());
    ASSERT_EQ(loaded.recording->epochs.size(),
              out.recording.epochs.size());
    for (std::size_t i = 0; i < out.recording.epochs.size(); ++i) {
        const EpochRecord &a = out.recording.epochs[i];
        const EpochRecord &b = loaded.recording->epochs[i];
        EXPECT_EQ(a.schedule, b.schedule);
        EXPECT_EQ(a.syscalls, b.syscalls);
        EXPECT_EQ(a.endStateHash, b.endStateHash);
        EXPECT_EQ(a.stdoutLen, b.stdoutLen);
        EXPECT_EQ(a.epInstrs, b.epInstrs);
    }
    EXPECT_EQ(loaded.recording->finalStateHash,
              out.recording.finalStateHash);
}

TEST(RecordingIo, DeserializedArtifactReplays)
{
    RecordOutcome out = recordLocked(3, 250);
    std::vector<std::uint8_t> bytes =
        serializeRecording(out.recording);

    // Nothing from the original process is reused below.
    LoadedRecording loaded = deserializeRecording(bytes);
    Replayer rep(*loaded.recording);
    ReplayResult r = rep.replaySequential();
    ASSERT_TRUE(r.ok) << "failed at epoch " << r.firstFailedEpoch;
    std::uint64_t value = 0;
    for (int i = 0; i < 8; ++i)
        value |= std::uint64_t{r.stdoutBytes[i]} << (8 * i);
    EXPECT_EQ(value, 750u);
}

TEST(RecordingIo, ArtifactIncludesMachineConfig)
{
    GuestProgram prog = testprogs::syscallStorm(1'000);
    MachineConfig cfg;
    cfg.netSeed = 777;
    cfg.netBytesPerConn = 2'048;
    cfg.netCyclesPerByte = 3;
    cfg.initialFiles.emplace_back(
        "seed.dat", std::vector<std::uint8_t>{9, 8, 7});
    RecorderOptions opts;
    opts.workerCpus = 1;
    UniparallelRecorder rec(prog, cfg, opts);
    RecordOutcome out = rec.record();
    ASSERT_TRUE(out.ok);

    LoadedRecording loaded =
        deserializeRecording(serializeRecording(out.recording));
    EXPECT_EQ(loaded.recording->config().netSeed, 777u);
    ASSERT_EQ(loaded.recording->config().initialFiles.size(), 1u);
    EXPECT_EQ(loaded.recording->config().initialFiles[0].first,
              "seed.dat");
    // Replays bit-for-bit including net content regeneration.
    Replayer rep(*loaded.recording);
    EXPECT_TRUE(rep.replaySequential().ok);
}

TEST(RecordingIo, RejectsForeignBytes)
{
    std::vector<std::uint8_t> junk(64, 0x5a);
    EXPECT_DEATH((void)deserializeRecording(junk),
                 "not a uniplay recording artifact");
}

TEST(RecordingIo, RejectsTruncatedArtifact)
{
    RecordOutcome out = recordLocked(2, 50);
    std::vector<std::uint8_t> bytes =
        serializeRecording(out.recording);
    bytes.resize(bytes.size() / 2);
    EXPECT_DEATH((void)deserializeRecording(bytes), "");
}

TEST(RecordingIo, ArtifactIsCompact)
{
    RecordOutcome out = recordLocked(2, 500);
    std::vector<std::uint8_t> bytes =
        serializeRecording(out.recording);
    // Program + logs for a ~16k-instruction run should be small.
    EXPECT_LT(bytes.size(), 64u * 1024);
}

} // namespace
} // namespace dp
