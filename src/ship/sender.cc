#include "ship/sender.hh"

#include <algorithm>

#include "common/hash.hh"
#include "common/logging.hh"
#include "common/rng.hh"

namespace dp
{

ShipSender::ShipSender(ShipLink &link, unsigned streams,
                       Source source, ShipSenderOptions opts)
    : link_(link), streams_(streams), source_(std::move(source)),
      opts_(opts), sent_(streams, 0)
{
    dp_assert(streams_ > 0, "a journal has at least one stream");
    dp_assert(opts_.batchBytes > 0, "batches carry at least a byte");
}

void
ShipSender::backoff(std::uint64_t seq, unsigned attempt)
{
    std::uint64_t shift = std::min<unsigned>(attempt, 16);
    std::uint64_t ticks =
        std::min(opts_.backoffCapTicks,
                 opts_.backoffBaseTicks << shift);
    Rng jitter(mix64(opts_.seed ^
                     mix64(seq * 0x9e3779b97f4a7c15ull + attempt)));
    stats_.backoffTicks +=
        ticks + jitter.below(opts_.backoffBaseTicks + 1);
}

bool
ShipSender::adopt(const ShipAck &ack)
{
    if (ack.failedClosed)
        stats_.standbyFailed = true;
    bool rewound = false;
    for (unsigned t = 0;
         t < streams_ && t < ack.streamOffsets.size(); ++t) {
        if (ack.streamOffsets[t] < sent_[t])
            rewound = true;
        sent_[t] = ack.streamOffsets[t];
    }
    if (rewound)
        ++stats_.resyncs;
    stats_.ackedPersistedEpochs = ack.persistedEpochs;
    stats_.ackedReplayedEpochs = ack.replayedEpochs;
    return rewound;
}

bool
ShipSender::shipOne(unsigned s)
{
    std::span<const std::uint8_t> src = source_(s);
    const std::uint64_t off = sent_[s];
    const std::size_t len = std::min<std::size_t>(
        opts_.batchBytes,
        static_cast<std::size_t>(src.size() - off));
    ShipBatch b;
    b.seq = nextSeq_++;
    b.stream = s;
    b.streamCount = streams_;
    b.offset = off;
    b.bytes.assign(src.begin() + static_cast<std::size_t>(off),
                   src.begin() + static_cast<std::size_t>(off) + len);
    std::vector<std::uint8_t> wire = encodeShipBatch(b);

    for (unsigned attempt = 0;; ++attempt) {
        if (attempt >= opts_.maxAttempts) {
            stats_.linkFailed = true;
            dp_warn("ship: batch ", b.seq, " exhausted ",
                    opts_.maxAttempts,
                    " attempts; declaring the link dead");
            return false;
        }
        if (attempt) {
            ++stats_.retries;
            backoff(b.seq, attempt);
        }
        if (link_.down()) {
            ++stats_.reconnects;
            link_.reconnect();
        }
        ++stats_.batchesSent;
        std::optional<ShipAck> ack = link_.transmit(wire, b.seq);
        if (!ack) {
            ++stats_.timeouts;
            continue;
        }
        ++stats_.batchesAcked;
        bool rewound = adopt(*ack);
        if (stats_.standbyFailed)
            return false;
        if (sent_[s] >= off + len) {
            stats_.bytesShipped += len;
            return true;
        }
        if (rewound)
            return true; // pump() recomputes from the new offsets
        // Acked but no progress (a torn reject): burn an attempt.
    }
}

bool
ShipSender::pump()
{
    for (;;) {
        if (failed())
            return false;
        unsigned next = streams_;
        for (unsigned k = 0; k < streams_; ++k) {
            unsigned s = (rr_ + k) % streams_;
            if (sent_[s] < source_(s).size()) {
                next = s;
                break;
            }
        }
        if (next == streams_)
            return true; // fully caught up
        rr_ = (next + 1) % streams_;
        if (!shipOne(next))
            return false;
    }
}

} // namespace dp
