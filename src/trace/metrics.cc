#include "trace/metrics.hh"

#include <vector>

namespace dp
{

JsonValue
metricsSnapshot(const Recording &rec, const MetricsOptions &opts)
{
    JsonValue doc = JsonValue::object();
    doc.set("schema", JsonValue::str("dp-metrics-v1"));

    const RecorderStats &st = rec.stats;
    // The artifact serializes only the stats that cannot be derived
    // from the epoch records (epochs, rollbacks, checkpointPages);
    // the timing sums are recomputed here so a snapshot of a loaded
    // artifact matches one taken from the live recording. tpInstrs
    // is reconstructed for journals (the epoch frames persist it) but
    // is zero on monolithic artifacts; the fault counters are
    // in-process only.
    std::uint64_t ep_instrs = 0;
    std::uint64_t tp_cycles = 0;
    std::uint64_t ep_cycles = 0;
    for (const EpochRecord &e : rec.epochs) {
        ep_instrs += e.epInstrs;
        tp_cycles += e.tpCycles;
        ep_cycles += e.epCycles;
    }
    JsonValue counters = JsonValue::object();
    counters.set("epochs", JsonValue::number(std::uint64_t{st.epochs}));
    counters.set("rollbacks",
                 JsonValue::number(std::uint64_t{st.rollbacks}));
    counters.set("checkpointPages",
                 JsonValue::number(st.checkpointPages));
    counters.set("tpInstrs", JsonValue::number(st.tpInstrs));
    counters.set("epInstrs", JsonValue::number(ep_instrs));
    counters.set("tpTotalCycles", JsonValue::number(tp_cycles));
    counters.set("epTotalCycles", JsonValue::number(ep_cycles));
    counters.set("tornCheckpoints",
                 JsonValue::number(std::uint64_t{st.tornCheckpoints}));
    counters.set("workerDeaths",
                 JsonValue::number(std::uint64_t{st.workerDeaths}));
    counters.set("epochRetries",
                 JsonValue::number(std::uint64_t{st.epochRetries}));
    counters.set("seqFallbacks",
                 JsonValue::number(std::uint64_t{st.seqFallbacks}));
    counters.set("replayLogBytes",
                 JsonValue::number(std::uint64_t{rec.replayLogBytes()}));
    counters.set("totalLogBytes",
                 JsonValue::number(std::uint64_t{rec.totalLogBytes()}));
    doc.set("counters", std::move(counters));

    // Reconstruct the concurrent pipeline trajectory from the epoch
    // timing metadata (the same model the benches report from).
    std::vector<EpochTiming> timings;
    timings.reserve(rec.epochs.size());
    for (const EpochRecord &e : rec.epochs)
        timings.push_back({e.tpCycles, e.epCycles, e.diverged});
    PipelineOptions popts;
    popts.workerCpus = opts.workerCpus;
    popts.totalCpus = opts.totalCpus;
    popts.maxInFlight = opts.maxInFlight;
    std::vector<EpochPipelineGauges> gauges;
    PipelineResult pr = PipelineModel::run(timings, popts, &gauges);

    JsonValue pipeline = JsonValue::object();
    pipeline.set("completion", JsonValue::number(pr.completion));
    pipeline.set("tpCompletion", JsonValue::number(pr.tpCompletion));
    pipeline.set("meanEpochLag", JsonValue::number(pr.meanEpochLag));
    pipeline.set("peakInFlight",
                 JsonValue::number(std::uint64_t{pr.peakInFlight}));
    doc.set("pipeline", std::move(pipeline));

    JsonValue epochs = JsonValue::array();
    for (std::size_t i = 0; i < rec.epochs.size(); ++i) {
        const EpochRecord &e = rec.epochs[i];
        JsonValue row = JsonValue::object();
        row.set("index", JsonValue::number(std::uint64_t{i}));
        row.set("queueDepth",
                JsonValue::number(std::uint64_t{gauges[i].queueDepth}));
        row.set("stallCycles",
                JsonValue::number(gauges[i].stallCycles));
        row.set("dirtyPages", JsonValue::number(e.dirtyPages));
        row.set("logBytes",
                JsonValue::number(std::uint64_t{e.totalLogBytes()}));
        row.set("tpCycles", JsonValue::number(e.tpCycles));
        row.set("epCycles", JsonValue::number(e.epCycles));
        row.set("diverged", JsonValue::boolean(e.diverged));
        epochs.push(std::move(row));
    }
    doc.set("epochs", std::move(epochs));
    return doc;
}

} // namespace dp
