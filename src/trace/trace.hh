/**
 * @file
 * TraceRecorder: a low-overhead, thread-safe event/span/counter sink
 * for the record/replay pipeline.
 *
 * The pipeline stages (thread-parallel run, epoch-parallel workers,
 * journal writer, replayer) each emit events against a stage id (one
 * Chrome-trace pid per stage) and a track id (one tid per host
 * worker/window slot). Export is Chrome trace-event JSON — loadable in
 * Perfetto or chrome://tracing — plus a structured event list the
 * contract tests inspect directly.
 *
 * The zero-perturbation contract: tracing observes the pipeline, it
 * never participates in it. No instrumented component reads anything
 * back from the sink, no virtual-time cost is charged for an emit, and
 * a null `TraceRecorder *` (the default everywhere) short-circuits
 * every emit to a pointer test — so recordings, journal images, and
 * virtual-time results are byte-identical with tracing on or off
 * (enforced by tests/trace_test.cc).
 */

#ifndef DP_TRACE_TRACE_HH
#define DP_TRACE_TRACE_HH

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace dp
{

/** Pipeline stage an event belongs to (Chrome-trace pid). */
enum class TraceStage : std::uint32_t
{
    ThreadParallel = 1, ///< the N-CPU speculative run
    EpochParallel = 2,  ///< epoch-run workers (one tid per slot)
    Journal = 3,        ///< durable epoch journal appends
    Replay = 4,         ///< sequential / parallel replay workers
    Exec = 5,           ///< host executor pool (one tid per worker)
};

/** Stable display name of @p s (Chrome process_name metadata). */
const char *traceStageName(TraceStage s);

/** Event shape (subset of the Chrome trace-event phases). */
enum class TracePhase : std::uint8_t
{
    Span,    ///< complete event, "ph":"X" (ts + dur)
    Instant, ///< "ph":"i"
    Counter, ///< "ph":"C"
};

/** One recorded event. Names/categories/arg keys are static strings
 *  (string literals at every emit site) so emits never allocate for
 *  them. */
struct TraceEvent
{
    TracePhase phase = TracePhase::Instant;
    TraceStage stage = TraceStage::ThreadParallel;
    std::uint32_t tid = 0;
    const char *name = "";
    const char *category = "";
    std::uint64_t tsNs = 0;  ///< start, ns since sink creation
    std::uint64_t durNs = 0; ///< spans only
    /** Small bag of numeric args ("epoch": 7, "pages": 12, ...). */
    std::vector<std::pair<const char *, std::uint64_t>> args;
};

/** Thread-safe trace sink. */
class TraceRecorder
{
  public:
    TraceRecorder() : origin_(std::chrono::steady_clock::now()) {}

    TraceRecorder(const TraceRecorder &) = delete;
    TraceRecorder &operator=(const TraceRecorder &) = delete;

    /** Monotonic nanoseconds since the sink was created. */
    std::uint64_t
    nowNs() const
    {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - origin_)
                .count());
    }

    /** Record a complete span that started at @p begin_ns and ends
     *  now. */
    void
    span(TraceStage stage, std::uint32_t tid, const char *name,
         const char *category, std::uint64_t begin_ns,
         std::vector<std::pair<const char *, std::uint64_t>> args = {})
    {
        TraceEvent e;
        e.phase = TracePhase::Span;
        e.stage = stage;
        e.tid = tid;
        e.name = name;
        e.category = category;
        e.tsNs = begin_ns;
        e.durNs = nowNs() - begin_ns;
        e.args = std::move(args);
        append(std::move(e));
    }

    /** Record an instantaneous event. */
    void
    instant(TraceStage stage, std::uint32_t tid, const char *name,
            const char *category,
            std::vector<std::pair<const char *, std::uint64_t>> args =
                {})
    {
        TraceEvent e;
        e.phase = TracePhase::Instant;
        e.stage = stage;
        e.tid = tid;
        e.name = name;
        e.category = category;
        e.tsNs = nowNs();
        e.args = std::move(args);
        append(std::move(e));
    }

    /** Record a counter sample (@p name tracks @p value over time). */
    void
    counter(TraceStage stage, const char *name, std::uint64_t value)
    {
        TraceEvent e;
        e.phase = TracePhase::Counter;
        e.stage = stage;
        e.tid = 0;
        e.name = name;
        e.category = "counter";
        e.tsNs = nowNs();
        e.args.emplace_back(name, value);
        append(std::move(e));
    }

    /** Snapshot of every event recorded so far, in emit order. */
    std::vector<TraceEvent>
    events() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return events_;
    }

    std::size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return events_.size();
    }

    /**
     * Export as a Chrome trace-event JSON document: one pid per
     * pipeline stage (with process_name metadata), one tid per host
     * worker track, timestamps in (fractional) microseconds.
     */
    std::string toChromeJson() const;

    /** Write toChromeJson() to @p path; false (with a warning) if the
     *  file cannot be written. */
    bool writeChromeJson(const std::string &path) const;

  private:
    void
    append(TraceEvent e)
    {
        std::lock_guard<std::mutex> lock(mu_);
        events_.push_back(std::move(e));
    }

    std::chrono::steady_clock::time_point origin_;
    mutable std::mutex mu_;
    std::vector<TraceEvent> events_;
};

/**
 * RAII span against an optional sink: begins timing at construction,
 * emits one complete event at destruction. With a null sink every
 * operation is a pointer test — the no-tracing fast path.
 */
class ScopedTraceSpan
{
  public:
    ScopedTraceSpan(TraceRecorder *tr, TraceStage stage,
                    std::uint32_t tid, const char *name,
                    const char *category)
        : tr_(tr), stage_(stage), tid_(tid), name_(name),
          category_(category), begin_(tr ? tr->nowNs() : 0)
    {}

    ScopedTraceSpan(const ScopedTraceSpan &) = delete;
    ScopedTraceSpan &operator=(const ScopedTraceSpan &) = delete;

    /** Attach a numeric argument (no-op without a sink). */
    void
    arg(const char *key, std::uint64_t value)
    {
        if (tr_)
            args_.emplace_back(key, value);
    }

    ~ScopedTraceSpan()
    {
        if (tr_)
            tr_->span(stage_, tid_, name_, category_, begin_,
                      std::move(args_));
    }

  private:
    TraceRecorder *tr_;
    TraceStage stage_;
    std::uint32_t tid_;
    const char *name_;
    const char *category_;
    std::uint64_t begin_;
    std::vector<std::pair<const char *, std::uint64_t>> args_;
};

} // namespace dp

#endif // DP_TRACE_TRACE_HH
