/**
 * @file
 * Tests for the replay-time happens-before race detector: no false
 * positives on synchronized programs (locks, atomics, barriers,
 * spawn/join), true positives on planted races, and stability over
 * the random-program corpus.
 */

#include <gtest/gtest.h>

#include "analysis/race_detector.hh"
#include "core/recorder.hh"
#include "replay/replayer.hh"
#include "testprogs.hh"
#include "vm/asmlib.hh"
#include "vm/assembler.hh"
#include "workloads/registry.hh"

namespace dp
{
namespace
{

/** Record @p prog and replay it under a detector. */
RaceDetector
detectRaces(const GuestProgram &prog, MachineConfig cfg = {},
            Cycles epoch_len = 20'000)
{
    RecorderOptions opts;
    opts.epochLength = epoch_len;
    UniparallelRecorder rec(prog, cfg, opts);
    RecordOutcome out = rec.record();
    EXPECT_TRUE(out.ok);

    RaceDetector det;
    ReplayObserver obs = det.observer();
    Replayer rep(out.recording);
    ReplayResult r = rep.replaySequential(&obs);
    EXPECT_TRUE(r.ok) << "replay must verify under observation";
    return det;
}

TEST(RaceDetector, LockProtectedCounterIsClean)
{
    RaceDetector det =
        detectRaces(testprogs::lockedCounter(3, 150));
    EXPECT_TRUE(det.races().empty())
        << "first report: word 0x" << std::hex
        << det.races().front().wordAddr;
    EXPECT_GT(det.accessesChecked(), 100u);
    EXPECT_GT(det.syncOpsSeen(), 10u);
}

TEST(RaceDetector, AtomicCounterIsClean)
{
    RaceDetector det =
        detectRaces(testprogs::atomicCounter(4, 200));
    EXPECT_TRUE(det.races().empty());
}

TEST(RaceDetector, BarrierPhasesAreClean)
{
    RaceDetector det = detectRaces(testprogs::barrierPhases(3, 6));
    EXPECT_TRUE(det.races().empty())
        << "barrier-ordered neighbour reads are not races";
}

TEST(RaceDetector, SpawnJoinEdgesAreRespected)
{
    // Main writes before spawn; workers read it; main reads worker
    // results after join. All ordered, no races.
    using enum Reg;
    namespace lib = dp::asmlib;
    Assembler a;
    Label worker = a.newLabel();
    a.lia(r4, 0x6000);
    a.li(r5, 99);
    a.st64(r4, 0, r5); // pre-spawn write
    lib::spawnThread(a, worker, r5);
    a.mov(r10, r0);
    lib::joinThread(a, r10);
    a.lia(r4, 0x6008);
    a.ld64(r1, r4, 0); // post-join read of the worker's write
    a.sys(Sys::Exit);
    a.bind(worker);
    a.lia(r4, 0x6000);
    a.ld64(r5, r4, 0); // read parent's pre-spawn write
    a.lia(r4, 0x6008);
    a.st64(r4, 0, r5);
    lib::exitWith(a, 0);

    RaceDetector det = detectRaces(a.finish("spawn_join_hb"));
    EXPECT_TRUE(det.races().empty());
}

TEST(RaceDetector, FindsLostUpdateRace)
{
    RaceDetector det = detectRaces(testprogs::racyCounter(2, 200));
    ASSERT_FALSE(det.races().empty());
    EXPECT_TRUE(det.isRacyWord(testprogs::counterAddr));
}

TEST(RaceDetector, FindsAtomicVsPlainRace)
{
    // T1 updates a word with fetchAdd; T2 updates it with plain
    // load/store and no common ordering: a race even though one side
    // is atomic.
    using enum Reg;
    namespace lib = dp::asmlib;
    Assembler a;
    Label atomic_worker = a.newLabel();
    Label plain_worker = a.newLabel();
    lib::spawnThread(a, atomic_worker, r5);
    a.mov(r10, r0);
    lib::spawnThread(a, plain_worker, r5);
    a.mov(r11, r0);
    lib::joinThread(a, r10);
    lib::joinThread(a, r11);
    lib::exitWith(a, 0);

    a.bind(atomic_worker);
    a.lia(r8, 0x7000);
    a.li(r9, 200);
    a.li(r5, 1);
    Label al = a.hereLabel();
    Label ad = a.newLabel();
    a.beqz(r9, ad);
    a.fetchAdd(r4, r8, r5);
    a.addi(r9, r9, -1);
    a.jmp(al);
    a.bind(ad);
    lib::exitWith(a, 0);

    a.bind(plain_worker);
    a.lia(r8, 0x7000);
    a.li(r9, 200);
    Label pl = a.hereLabel();
    Label pd = a.newLabel();
    a.beqz(r9, pd);
    a.ld64(r4, r8, 0);
    a.addi(r4, r4, 1);
    a.st64(r8, 0, r4);
    a.addi(r9, r9, -1);
    a.jmp(pl);
    a.bind(pd);
    lib::exitWith(a, 0);

    RaceDetector det = detectRaces(a.finish("atomic_vs_plain"));
    EXPECT_TRUE(det.isRacyWord(0x7000));
}

TEST(RaceDetector, RacyUpdatesWorkloadIsFlagged)
{
    workloads::WorkloadBundle b =
        workloads::makeRacyUpdates(3, 2'000, /*race_one_in=*/1);
    RaceDetector det = detectRaces(b.program, b.config);
    EXPECT_FALSE(det.races().empty());
}

TEST(RaceDetector, BenchmarkSuiteIsRaceFree)
{
    for (const char *name : {"pbzip2", "mysql", "fft", "radix"}) {
        const workloads::Workload *w = workloads::findWorkload(name);
        workloads::WorkloadBundle b =
            w->make({.threads = 2, .scale = 1});
        RaceDetector det = detectRaces(b.program, b.config, 40'000);
        EXPECT_TRUE(det.races().empty())
            << name << ": first report word 0x" << std::hex
            << (det.races().empty() ? 0
                                    : det.races().front().wordAddr);
    }
}

TEST(RaceDetector, RandomDrfCorpusIsClean)
{
    for (std::uint64_t seed = 400; seed < 412; ++seed) {
        GuestProgram prog =
            testprogs::randomProgram(seed, {.allowRaces = false});
        MachineConfig cfg;
        cfg.netBytesPerConn = 8'192;
        RaceDetector det = detectRaces(prog, cfg, 4'000);
        EXPECT_TRUE(det.races().empty()) << "seed " << seed;
    }
}

TEST(RaceDetector, ReportsAreDeduplicatedPerWord)
{
    RaceDetector det = detectRaces(testprogs::racyCounter(4, 500));
    std::size_t counter_reports = 0;
    for (const RaceReport &r : det.races())
        counter_reports += r.wordAddr == testprogs::counterAddr;
    EXPECT_EQ(counter_reports, 1u);
}

} // namespace
} // namespace dp
