file(REMOVE_RECURSE
  "libdp_core.a"
)
