/**
 * @file
 * E1 — Table 1: benchmark descriptions and characteristics.
 *
 * The paper's Table 1 lists its client/server/scientific benchmarks;
 * this regenerates the equivalent inventory for our synthetic suite,
 * with measured execution characteristics from a native 2-thread run.
 */

#include "bench_common.hh"

using namespace dp;
using namespace dp::bench;

int
main()
{
    banner("E1 (Table 1)", "benchmark suite characteristics",
           "[recon] suite composition from the abstract's 'client, "
           "server, and scientific parallel benchmarks'");

    Table t({"benchmark", "paper equivalent", "category",
             "guest Minstr", "sync ops", "syscalls", "pages",
             "sharing pattern"});

    for (const auto &w : workloads::allWorkloads()) {
        workloads::WorkloadParams params{.threads = 2, .scale = 32};
        workloads::WorkloadBundle b = w.make(params);
        NativeResult r =
            runNativeBaseline(b.program, b.config, 2, /*seed=*/1);
        t.addRow({w.name, w.paperEquiv, w.category,
                  Table::num(static_cast<double>(r.instrs) / 1e6, 2),
                  Table::num(r.syncOps), Table::num(r.syscalls),
                  Table::num(r.residentPages), w.sharing});
    }
    t.print(std::cout);
    return 0;
}
