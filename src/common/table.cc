#include "common/table.hh"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/logging.hh"

namespace dp
{

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    dp_assert(!headers_.empty(), "table needs at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    dp_assert(cells.size() == headers_.size(),
              "row arity ", cells.size(), " != header arity ",
              headers_.size());
    rows_.push_back(std::move(cells));
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << (c == 0 ? "| " : " | ")
               << std::left << std::setw(static_cast<int>(width[c]))
               << row[c];
        }
        os << " |\n";
    };

    emit(headers_);
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        os << (c == 0 ? "|" : "-|") << std::string(width[c] + 2, '-');
    }
    os << "-|\n";
    for (const auto &row : rows_)
        emit(row);
}

void
Table::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c)
            os << (c ? "," : "") << row[c];
        os << "\n";
    };
    emit(headers_);
    for (const auto &row : rows_)
        emit(row);
}

std::string
Table::num(double v, int digits)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(digits) << v;
    return os.str();
}

std::string
Table::num(std::uint64_t v)
{
    std::string raw = std::to_string(v);
    std::string out;
    int count = 0;
    for (auto it = raw.rbegin(); it != raw.rend(); ++it) {
        if (count && count % 3 == 0)
            out.push_back(',');
        out.push_back(*it);
        ++count;
    }
    return {out.rbegin(), out.rend()};
}

std::string
Table::pct(double ratio, int digits)
{
    return num(ratio * 100.0, digits) + "%";
}

std::string
Table::bytes(std::uint64_t n)
{
    static const char *suffix[] = {"B", "KiB", "MiB", "GiB", "TiB"};
    double v = static_cast<double>(n);
    int s = 0;
    while (v >= 1024.0 && s < 4) {
        v /= 1024.0;
        ++s;
    }
    return num(v, s == 0 ? 0 : 1) + " " + suffix[s];
}

} // namespace dp
