file(REMOVE_RECURSE
  "CMakeFiles/dp_analysis.dir/debugger.cc.o"
  "CMakeFiles/dp_analysis.dir/debugger.cc.o.d"
  "CMakeFiles/dp_analysis.dir/profiler.cc.o"
  "CMakeFiles/dp_analysis.dir/profiler.cc.o.d"
  "CMakeFiles/dp_analysis.dir/race_detector.cc.o"
  "CMakeFiles/dp_analysis.dir/race_detector.cc.o.d"
  "libdp_analysis.a"
  "libdp_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dp_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
