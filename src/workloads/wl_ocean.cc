/**
 * @file
 * ocean workload: barrier-phased 5-point stencil sweeps over a shared
 * grid with double buffering (the SPLASH-2 ocean sharing pattern:
 * row-partitioned writes, neighbour reads across partitions).
 */

#include "workloads/factories.hh"

#include "common/logging.hh"
#include "workloads/wl_common.hh"

namespace dp::workloads
{

using enum Reg;
namespace lib = dp::asmlib;

namespace
{

constexpr std::uint64_t oceanG = 66;   // grid side (64 interior rows)
constexpr Addr bufA = wlInput;
constexpr Addr bufB = wlOutput;

/** Host reference mirroring the guest stencil exactly. */
std::uint64_t
oceanReference(std::vector<std::uint64_t> grid, std::uint32_t sweeps)
{
    std::vector<std::uint64_t> other(grid.size(), 0);
    const std::uint64_t g = oceanG;
    for (std::uint32_t s = 0; s < sweeps; ++s) {
        auto &src = (s % 2 == 0) ? grid : other;
        auto &dst = (s % 2 == 0) ? other : grid;
        for (std::uint64_t i = 1; i + 1 < g; ++i) {
            for (std::uint64_t j = 1; j + 1 < g; ++j) {
                std::uint64_t sum = src[(i - 1) * g + j] +
                                    src[(i + 1) * g + j] +
                                    src[i * g + j - 1] +
                                    src[i * g + j + 1];
                dst[i * g + j] = (sum >> 2) + (src[i * g + j] >> 3);
            }
        }
    }
    // sweeps is even, so the final state is in `grid` (buffer A).
    std::uint64_t sum = 0;
    for (std::uint64_t i = 1; i + 1 < g; ++i)
        for (std::uint64_t j = 1; j + 1 < g; ++j)
            sum += grid[i * g + j];
    return sum;
}

} // namespace

WorkloadBundle
makeOcean(const WorkloadParams &p)
{
    const std::uint64_t interior = oceanG - 2;
    dp_assert(interior % p.threads == 0,
              "ocean interior rows must divide by thread count");
    const std::uint64_t rowsPerThread = interior / p.threads;
    const std::uint32_t sweeps = 4 * p.scale; // even by construction

    std::vector<std::uint64_t> input =
        makeInputWords(oceanG * oceanG, p.seed);

    Assembler a;
    Label worker = a.newLabel();
    a.dataU64s(bufA, input);

    emitSpawnJoin(a, p.threads, worker);
    emitWriteGlobalAndExit(a, gResult);

    // ---- worker ----
    // Persistent: r7=sweep, r8=barrier, r9=T, r13=index,
    // r15=my first row. Per sweep: r12=src, r14=dst, r10=i, r11=j.
    a.bind(worker);
    a.mov(r13, r1);
    a.lia(r8, wlBarrier);
    a.li(r9, static_cast<std::int64_t>(p.threads));
    a.muli(r15, r13, static_cast<std::int64_t>(rowsPerThread));
    a.addi(r15, r15, 1);
    a.li(r7, 0); // sweep counter

    Label sweep_loop = a.hereLabel();
    Label sweeps_done = a.newLabel();
    a.li(r1, sweeps);
    a.bgeu(r7, r1, sweeps_done);

    Label odd = a.newLabel();
    Label bases_set = a.newLabel();
    a.andi(r1, r7, 1);
    a.bnez(r1, odd);
    a.lia(r12, bufA);
    a.lia(r14, bufB);
    a.jmp(bases_set);
    a.bind(odd);
    a.lia(r12, bufB);
    a.lia(r14, bufA);
    a.bind(bases_set);

    a.mov(r10, r15); // i = my first row
    a.addi(r2, r15, static_cast<std::int64_t>(rowsPerThread));
    a.mov(r6, r2); // i limit (r6 survives the row loop)

    Label i_loop = a.hereLabel();
    Label i_done = a.newLabel();
    a.bgeu(r10, r6, i_done);
    a.li(r11, 1); // j

    Label j_loop = a.hereLabel();
    Label j_done = a.newLabel();
    a.li(r1, oceanG - 1);
    a.bgeu(r11, r1, j_done);
    // &src[i][j] = src + (i*G + j)*8
    a.muli(r1, r10, oceanG);
    a.add(r1, r1, r11);
    a.shli(r1, r1, 3);
    a.add(r2, r12, r1); // src cell
    a.add(r3, r14, r1); // dst cell
    a.ld64(r4, r2, -static_cast<std::int64_t>(oceanG) * 8); // north
    a.ld64(r5, r2, static_cast<std::int64_t>(oceanG) * 8);  // south
    a.add(r4, r4, r5);
    a.ld64(r5, r2, -8); // west
    a.add(r4, r4, r5);
    a.ld64(r5, r2, 8);  // east
    a.add(r4, r4, r5);
    a.shri(r4, r4, 2);
    a.ld64(r5, r2, 0);
    a.shri(r5, r5, 3);
    a.add(r4, r4, r5);
    a.st64(r3, 0, r4);
    a.addi(r11, r11, 1);
    a.jmp(j_loop);
    a.bind(j_done);
    a.addi(r10, r10, 1);
    a.jmp(i_loop);
    a.bind(i_done);

    lib::barrierWait(a, r8, r9, r4, r5);
    a.addi(r7, r7, 1);
    a.jmp(sweep_loop);
    a.bind(sweeps_done);

    // Checksum my interior rows of buffer A.
    a.lia(r12, bufA);
    a.mov(r10, r15);
    a.addi(r6, r15, static_cast<std::int64_t>(rowsPerThread));
    a.li(r14, 0);
    Label ci = a.hereLabel();
    Label cdone = a.newLabel();
    a.bgeu(r10, r6, cdone);
    a.li(r11, 1);
    Label cj = a.hereLabel();
    Label cj_done = a.newLabel();
    a.li(r1, oceanG - 1);
    a.bgeu(r11, r1, cj_done);
    a.muli(r1, r10, oceanG);
    a.add(r1, r1, r11);
    a.shli(r1, r1, 3);
    a.add(r1, r12, r1);
    a.ld64(r2, r1, 0);
    a.add(r14, r14, r2);
    a.addi(r11, r11, 1);
    a.jmp(cj);
    a.bind(cj_done);
    a.addi(r10, r10, 1);
    a.jmp(ci);
    a.bind(cdone);
    a.lia(r5, wlGlobals + gResult);
    a.fetchAdd(r4, r5, r14);
    lib::exitWith(a, 0);

    WorkloadBundle b{a.finish("ocean"), {},
                     oceanReference(input, sweeps)};
    return b;
}

} // namespace dp::workloads
