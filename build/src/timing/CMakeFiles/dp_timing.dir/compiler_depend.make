# Empty compiler generated dependencies file for dp_timing.
# This may be replaced when dependencies are built.
