/**
 * @file
 * Deterministic corruption of serialized recording artifacts.
 *
 * These helpers model the storage failure modes a recording can meet
 * between being written and being loaded: a truncated tail (crash
 * mid-write), a flipped byte (media corruption), and a rewritten
 * section length (torn metadata). Each takes an explicitly seeded Rng,
 * so a corruption found to slip through the loader is replayable as a
 * regression test from its seed.
 */

#ifndef DP_FAULT_ARTIFACT_FAULTS_HH
#define DP_FAULT_ARTIFACT_FAULTS_HH

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hh"

namespace dp::artifact_faults
{

/** Drop between 1 and size-1 bytes off the end. */
std::vector<std::uint8_t>
truncateTail(std::span<const std::uint8_t> bytes, Rng &rng);

/** XOR one byte at or past @p min_offset with a nonzero mask. */
std::vector<std::uint8_t>
flipByte(std::span<const std::uint8_t> bytes, Rng &rng,
         std::size_t min_offset = 0);

/**
 * Overwrite the varint length prefix found at one of
 * @p length_offsets with an absurdly large value (an invalid section
 * length a loader must reject structurally, not by crashing).
 */
std::vector<std::uint8_t>
corruptSectionLength(std::span<const std::uint8_t> bytes,
                     std::span<const std::size_t> length_offsets,
                     Rng &rng);

} // namespace dp::artifact_faults

#endif // DP_FAULT_ARTIFACT_FAULTS_HH
