/**
 * @file
 * MultiCpuSim: deterministic multiprocessor interleaving simulator.
 *
 * Plays the role of the real SMP hardware in DoublePlay: guest threads
 * run "simultaneously" on P virtual CPUs over shared memory, so data
 * races genuinely resolve differently under different interleavings
 * (controlled by a seed). The recorder uses it for the thread-parallel
 * execution: it generates checkpoints at epoch boundaries and logs the
 * global order of synchronization operations plus the results of
 * clock-dependent syscalls.
 *
 * Lockstep model: each tick of virtual time, every free CPU executes
 * one instruction of its assigned thread (with seeded per-tick jitter
 * so interleavings are not trivially aligned). Syscalls keep a CPU
 * busy for their cost. The simulator is single-OS-threaded and exactly
 * reproducible from (machine state, seed).
 */

#ifndef DP_OS_MULTICPU_SIM_HH
#define DP_OS_MULTICPU_SIM_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "common/rng.hh"
#include "os/machine.hh"
#include "os/run_types.hh"
#include "os/simos.hh"
#include "vm/interp.hh"

namespace dp
{

/** Configuration for a MultiCpuSim. */
struct MpOptions
{
    CpuId cpus = 4;
    /** Interleaving seed; different seeds = different race outcomes. */
    std::uint64_t seed = 1;
    /** Instructions before a thread is rotated off an oversubscribed
     *  CPU. */
    std::uint64_t quantum = 20'000;
    /** Per-tick probability (num/den) that a CPU stalls, decorrelating
     *  the lockstep streams. */
    std::uint32_t jitterNum = 1;
    std::uint32_t jitterDen = 8;
    /** Charge recording instrumentation (sync-order + syscall logs). */
    bool record = false;
    /** Global instruction fuse. */
    std::uint64_t fuel = ~std::uint64_t{0};
};

/** Observation hooks for the recorder. */
struct MpHooks
{
    /** A synchronization operation executed; per-object order is
     *  what the recorder logs. */
    std::function<void(ThreadId, SyncKind, SyncKey)> onSync;
    /** A syscall completed. */
    std::function<void(ThreadId, Sys, std::uint64_t, bool injectable)>
        onSyscall;
    /**
     * Called before each memory-touching instruction with its
     * effective address; the returned cycles stall the CPU. Used by
     * the comparison recorders (CREW page faults, value logging).
     */
    std::function<Cycles(ThreadId, CpuId, Addr, bool is_write)>
        onMemAccess;
    /** A pending signal was delivered at an instruction boundary. */
    std::function<void(const SignalEvent &)> onSignal;
};

/**
 * The multiprocessor engine. Keep one instance alive across epochs:
 * CPU assignments, in-flight syscall costs, and the jitter stream
 * carry over checkpoint boundaries.
 */
class MultiCpuSim
{
  public:
    MultiCpuSim(Machine &m, SimOS &os, MpOptions opts, MpHooks hooks);

    /**
     * Run until @p until_time (TimeLimit), program completion
     * (AllExited), deadlock, or the fuel fuse. Guest state is clean
     * (between instructions) whenever this returns.
     */
    StopReason run(Cycles until_time);

    const RunStats &stats() const { return stats_; }

  private:
    struct Cpu
    {
        ThreadId tid = invalidThread;
        Cycles busyUntil = 0;
        std::uint64_t sliceLeft = 0;
    };

    void enqueueIfRunnable(ThreadId tid);
    /** One instruction (or syscall) on @p cpu; true if it ran. */
    bool stepCpu(Cpu &cpu, CpuId cpu_id);
    void releaseCpu(Cpu &cpu);

    Machine &m_;
    SimOS &os_;
    Interpreter interp_;
    MpOptions opts_;
    MpHooks hooks_;
    RunStats stats_;
    Rng rng_;

    std::vector<Cpu> cpus_;
    std::deque<ThreadId> ready_;
    std::vector<std::uint8_t> queued_;
};

} // namespace dp

#endif // DP_OS_MULTICPU_SIM_HH
