#include "mem/paged_memory.hh"

#include <cstring>

#include "common/hash.hh"
#include "common/logging.hh"

namespace dp
{

namespace
{

/** Fold one page table into a digest, skipping zero-content pages. */
std::uint64_t
tableHash(const std::vector<PageRef> &pages)
{
    Digest d;
    for (std::size_t i = 0; i < pages.size(); ++i) {
        if (!pages[i])
            continue;
        std::uint64_t h = pages[i]->hash();
        if (h == Page::zeroHash())
            continue;
        d.word(i);
        d.word(h);
    }
    return d.value();
}

std::size_t
residentCount(const std::vector<PageRef> &pages)
{
    std::size_t n = 0;
    for (const auto &p : pages)
        n += p != nullptr;
    return n;
}

} // namespace

std::uint64_t
MemSnapshot::hash() const
{
    return tableHash(pages_);
}

std::size_t
MemSnapshot::residentPages() const
{
    return residentCount(pages_);
}

PagedMemory::PagedMemory(std::size_t max_pages) : maxPages_(max_pages) {}

const Page *
PagedMemory::pageFor(Addr a) const
{
    std::size_t idx = pageIndex(a);
    if (idx >= pages_.size())
        return nullptr;
    return pages_[idx].get();
}

Page &
PagedMemory::writablePage(Addr a)
{
    std::size_t idx = pageIndex(a);
    if (idx >= maxPages_) {
        dp_fatal("guest address 0x", std::hex, a,
                 " exceeds the configured memory limit");
    }
    if (idx >= pages_.size()) {
        pages_.resize(idx + 1);
        dirtyBitmap_.resize(idx + 1, false);
    }
    PageRef &slot = pages_[idx];
    if (!slot) {
        slot = std::make_shared<Page>();
    } else if (slot.use_count() > 1) {
        // Copy-on-write: the page is shared with a snapshot or a
        // sibling epoch's address space.
        slot = std::make_shared<Page>(*slot);
    }
    if (idx >= dirtyBitmap_.size())
        dirtyBitmap_.resize(pages_.size(), false);
    if (!dirtyBitmap_[idx]) {
        dirtyBitmap_[idx] = true;
        dirtyList_.push_back(static_cast<std::uint32_t>(idx));
    }
    return *slot;
}

template <typename T>
T
PagedMemory::readScalar(Addr a) const
{
    if (pageOffset(a) + sizeof(T) <= Page::bytes) {
        const Page *p = pageFor(a);
        if (!p)
            return T{0};
        T v;
        std::memcpy(&v, p->data.data() + pageOffset(a), sizeof(T));
        return v;
    }
    // Crosses a page boundary: assemble byte-wise.
    T v{0};
    for (std::size_t i = 0; i < sizeof(T); ++i)
        v |= static_cast<T>(read8(a + i)) << (8 * i);
    return v;
}

template <typename T>
void
PagedMemory::writeScalar(Addr a, T v)
{
    if (pageOffset(a) + sizeof(T) <= Page::bytes) {
        Page &p = writablePage(a);
        std::memcpy(p.data.data() + pageOffset(a), &v, sizeof(T));
        return;
    }
    for (std::size_t i = 0; i < sizeof(T); ++i)
        write8(a + i, static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint8_t
PagedMemory::read8(Addr a) const
{
    const Page *p = pageFor(a);
    return p ? p->data[pageOffset(a)] : 0;
}

std::uint16_t PagedMemory::read16(Addr a) const
{
    return readScalar<std::uint16_t>(a);
}

std::uint32_t PagedMemory::read32(Addr a) const
{
    return readScalar<std::uint32_t>(a);
}

std::uint64_t PagedMemory::read64(Addr a) const
{
    return readScalar<std::uint64_t>(a);
}

void
PagedMemory::write8(Addr a, std::uint8_t v)
{
    writablePage(a).data[pageOffset(a)] = v;
}

void PagedMemory::write16(Addr a, std::uint16_t v) { writeScalar(a, v); }
void PagedMemory::write32(Addr a, std::uint32_t v) { writeScalar(a, v); }
void PagedMemory::write64(Addr a, std::uint64_t v) { writeScalar(a, v); }

void
PagedMemory::readBytes(Addr a, std::span<std::uint8_t> out) const
{
    std::size_t done = 0;
    while (done < out.size()) {
        std::size_t off = pageOffset(a + done);
        std::size_t chunk =
            std::min(out.size() - done, Page::bytes - off);
        const Page *p = pageFor(a + done);
        if (p)
            std::memcpy(out.data() + done, p->data.data() + off, chunk);
        else
            std::memset(out.data() + done, 0, chunk);
        done += chunk;
    }
}

void
PagedMemory::writeBytes(Addr a, std::span<const std::uint8_t> in)
{
    std::size_t done = 0;
    while (done < in.size()) {
        std::size_t off = pageOffset(a + done);
        std::size_t chunk = std::min(in.size() - done, Page::bytes - off);
        Page &p = writablePage(a + done);
        std::memcpy(p.data.data() + off, in.data() + done, chunk);
        done += chunk;
    }
}

std::string
PagedMemory::readCString(Addr a, std::size_t max_len) const
{
    std::string out;
    for (std::size_t i = 0; i < max_len; ++i) {
        char c = static_cast<char>(read8(a + i));
        if (c == '\0')
            break;
        out.push_back(c);
    }
    return out;
}

MemSnapshot
PagedMemory::snapshot()
{
    MemSnapshot snap;
    snap.pages_ = pages_;
    clearDirty();
    return snap;
}

void
PagedMemory::restore(const MemSnapshot &snap)
{
    pages_ = snap.pages_;
    dirtyBitmap_.assign(pages_.size(), false);
    dirtyList_.clear();
}

std::uint64_t
PagedMemory::hash() const
{
    return tableHash(pages_);
}

void
PagedMemory::clearDirty()
{
    for (std::uint32_t idx : dirtyList_)
        dirtyBitmap_[idx] = false;
    dirtyList_.clear();
}

std::size_t
PagedMemory::residentPages() const
{
    return residentCount(pages_);
}

std::vector<std::uint32_t>
PagedMemory::diffPages(const MemSnapshot &other) const
{
    static const Page zeroPage{};
    std::vector<std::uint32_t> diff;
    std::size_t n = std::max(pages_.size(), other.pages_.size());
    for (std::size_t i = 0; i < n; ++i) {
        const Page *a =
            i < pages_.size() && pages_[i] ? pages_[i].get() : &zeroPage;
        const Page *b = i < other.pages_.size() && other.pages_[i]
                            ? other.pages_[i].get()
                            : &zeroPage;
        if (a == b)
            continue;
        if (std::memcmp(a->data.data(), b->data.data(), Page::bytes) != 0)
            diff.push_back(static_cast<std::uint32_t>(i));
    }
    return diff;
}

} // namespace dp
