#include "replay/live_replica.hh"

#include <sstream>

#include "common/logging.hh"
#include "replay/replayer.hh"

namespace dp
{

std::string
ApplyError::describe() const
{
    std::ostringstream out;
    out << "epoch " << epoch << " digest mismatch: expected 0x"
        << std::hex << expectedDigest << ", got 0x" << actualDigest;
    return out.str();
}

std::optional<ApplyError>
LiveReplica::apply(const EpochRecord &epoch)
{
    if (error_) {
        dp_warn("apply on an unhealthy replica ignored");
        return error_;
    }
    if (!replayEpochOnMachine(machine_, epoch, costs_, cycles_,
                              instrs_)) {
        error_ = ApplyError{applied_, epoch.endStateHash,
                            machine_.stateHash()};
        return error_;
    }
    ++applied_;
    return std::nullopt;
}

} // namespace dp
