/**
 * @file
 * UniRunner: deterministic uniprocessor timesliced execution.
 *
 * This engine is uniparallelism's workhorse. It runs all guest threads
 * of a Machine on one virtual CPU, switching at quantum expiry, blocks,
 * and yields. Because only one thread runs at a time, the *only*
 * scheduling facts needed to reproduce an execution are the timeslice
 * segments — (thread, #instructions, ended-blocked) triples — plus the
 * injected results of clock-dependent syscalls. That is the entire
 * content of a DoublePlay epoch log.
 *
 * The same engine serves three roles, selected by hooks:
 *  - free-running record: picks its own round-robin schedule and
 *    reports segments via onSegment (recording an epoch);
 *  - constrained record: additionally asks permitSync before every
 *    sync operation, so the epoch-parallel run follows the sync order
 *    observed by the thread-parallel run;
 *  - replay: consumes segments from nextSegment and re-executes them
 *    exactly.
 */

#ifndef DP_OS_UNI_RUNNER_HH
#define DP_OS_UNI_RUNNER_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "os/machine.hh"
#include "os/run_types.hh"
#include "os/simos.hh"
#include "vm/interp.hh"

namespace dp
{

/** One timeslice in a schedule log. */
struct ScheduleSegment
{
    ThreadId tid = 0;
    /** Instructions retired while scheduled in this slice. */
    std::uint64_t instrs = 0;
    /**
     * The slice ended with the thread executing a syscall that
     * blocked (the attempt does not retire but must be replayed so
     * wait-queue state evolves identically).
     */
    bool endedBlocked = false;

    bool operator==(const ScheduleSegment &) const = default;
};

/**
 * Per-thread end-of-epoch target, taken from the thread-parallel run's
 * next checkpoint: run the thread until it has retired this many
 * instructions and (if the checkpoint shows it blocked) until its
 * blocking attempt has been made.
 */
struct EpochTarget
{
    std::uint64_t retired = 0;
    RunState endState = RunState::Runnable;
};

/** Tuning and stop conditions for a UniRunner invocation. */
struct UniOptions
{
    /** Timeslice length in instructions (free-running modes). */
    std::uint64_t quantum = 50'000;
    /** Global instruction fuse. */
    std::uint64_t fuel = ~std::uint64_t{0};
    /** Per-tid epoch targets; empty = run to completion. */
    std::vector<EpochTarget> targets;
    /** Charge recording instrumentation costs to virtual time. */
    bool chargeRecordCosts = false;
    /**
     * When true, asynchronous signals are delivered only at the
     * points listed in signalPlan (epoch-parallel record and replay);
     * when false, pending signals deliver eagerly at the next
     * instruction boundary (free-running execution).
     */
    bool planSignals = false;
    /** Per-thread delivery points, each thread's events sorted by
     *  retired count. */
    std::vector<SignalEvent> signalPlan;
};

/** Callback bundle; any member may be left empty. */
struct UniHooks
{
    /** Consulted before each sync op; false defers the thread. */
    std::function<bool(ThreadId, SyncKind, SyncKey)> permitSync;
    /** A sync op was executed (advance its object's order cursor). */
    std::function<void(ThreadId, SyncKind, SyncKey)> onSync;
    /** A memory instruction is about to execute (replay analyses). */
    std::function<void(ThreadId, Addr, unsigned size, bool is_write,
                       bool is_atomic)>
        onMemAccess;
    /** @p woken became runnable because of @p waker's syscall (futex
     *  wake, exit waking a joiner, or spawn); a happens-before edge. */
    std::function<void(ThreadId waker, ThreadId woken)> onWake;
    /** A signal was delivered (for signal-plan logging). */
    std::function<void(const SignalEvent &)> onSignal;
    /** Provide the injected result for an injectable syscall. */
    std::function<std::optional<std::uint64_t>(ThreadId, Sys)>
        injectSyscall;
    /** A syscall completed (for result logging). Not called for
     *  attempts that blocked. */
    std::function<void(ThreadId, Sys, std::uint64_t, bool injectable)>
        onSyscall;
    /** A timeslice finished (for schedule logging). */
    std::function<void(const ScheduleSegment &)> onSegment;
    /** Replay driver: the next segment to execute; disengages the
     *  engine's own scheduler entirely. */
    std::function<std::optional<ScheduleSegment>()> nextSegment;
};

/** Uniprocessor timesliced execution engine. */
class UniRunner
{
  public:
    UniRunner(Machine &m, SimOS &os, UniOptions opts, UniHooks hooks);

    /** Execute until a stop condition; see StopReason. */
    StopReason run();

    const RunStats &stats() const { return stats_; }

    /** True if a constrained run had to drop its sync-order
     *  constraints to make progress (divergence suspected). */
    bool constraintsRelaxed() const { return relaxed_; }

  private:
    /** Execute one scheduling slice of @p tid. */
    struct SliceResult
    {
        std::uint64_t instrs = 0;
        bool endedBlocked = false;
        bool progress = false; ///< retired instrs or executed a block
        bool delivered = false; ///< a signal entered its handler
    };
    SliceResult runSlice(ThreadId tid, std::uint64_t budget,
                         bool allow_block_attempt, bool exact);

    bool targetSatisfied(ThreadId tid) const;
    std::uint64_t budgetFor(ThreadId tid) const;
    void enqueueIfRunnable(ThreadId tid);
    void chargeSwitch(ThreadId tid);

    StopReason runFree();
    StopReason runReplay();

    Machine &m_;
    SimOS &os_;
    Interpreter interp_;
    UniOptions opts_;
    UniHooks hooks_;
    RunStats stats_;

    /** Deliver a planned/pending signal for @p tid if due; true if a
     *  delivery happened. */
    bool maybeDeliverSignal(ThreadId tid);
    /** True if tid still owes a planned delivery at or below its
     *  current retired count. */
    bool plannedDeliveryDue(ThreadId tid) const;

    std::deque<ThreadId> ready_;
    std::vector<std::uint8_t> queued_; ///< per-tid "in ready_" flag
    /** Plan events grouped per tid (plan mode), each in order. */
    std::vector<std::vector<SignalEvent>> planByTid_;
    /** Per-tid cursor into planByTid_. */
    std::vector<std::size_t> planCursor_;
    ThreadId lastRun_ = invalidThread;
    bool relaxed_ = false;
};

} // namespace dp

#endif // DP_OS_UNI_RUNNER_HH
