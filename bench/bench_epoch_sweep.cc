/**
 * @file
 * E8 — Figure: sensitivity to epoch length.
 *
 * Short epochs mean frequent checkpoints (more thread-parallel
 * overhead) but a shallower pipeline and less work at risk per
 * squash; long epochs amortize checkpoints but inflate the tail. The
 * figure sweeps epoch length across ~1.5 decades for a compute-bound
 * and a server workload.
 */

#include "bench_common.hh"

using namespace dp;
using namespace dp::bench;

int
main()
{
    banner("E8 (Fig: epoch length sweep)",
           "overhead / log size / checkpoints vs epoch length, 2T",
           "[recon] the paper discusses epoch-length tradeoffs; "
           "shape: U-ish overhead curve, log bytes flat, checkpoint "
           "pages linear in epoch count");

    Table t({"benchmark", "epoch len", "epochs", "overhead",
             "ckpt pages/epoch", "log bytes/Minstr", "mean lag"});

    for (const char *name : {"pbzip2", "apache"}) {
        const workloads::Workload *w = workloads::findWorkload(name);
        for (Cycles len : {25'000ull, 50'000ull, 100'000ull,
                           200'000ull, 400'000ull, 800'000ull}) {
            harness::MeasureOptions o = defaultOptions(2);
            o.scale = 16;
            o.epochLength = len;
            harness::Measurement m = harness::measure(*w, o);
            if (!m.recordOk) {
                std::cerr << "record failed for " << name << "\n";
                return 1;
            }
            double per_epoch =
                m.epochs ? static_cast<double>(
                               m.stats.checkpointPages) /
                               static_cast<double>(m.epochs)
                         : 0.0;
            double minstr =
                static_cast<double>(m.stats.epInstrs) / 1e6;
            t.addRow({name, Table::num(std::uint64_t{len}),
                      Table::num(std::uint64_t{m.epochs}),
                      Table::pct(m.overhead),
                      Table::num(per_epoch, 1),
                      Table::num(static_cast<double>(
                                     m.replayLogBytes) /
                                     minstr,
                                 1),
                      Table::num(m.pipeline.meanEpochLag / 1e3, 1) +
                          " kcyc"});
        }
    }
    t.print(std::cout);
    return 0;
}
