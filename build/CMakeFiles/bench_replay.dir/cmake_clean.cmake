file(REMOVE_RECURSE
  "CMakeFiles/bench_replay.dir/bench/bench_replay.cc.o"
  "CMakeFiles/bench_replay.dir/bench/bench_replay.cc.o.d"
  "bench/bench_replay"
  "bench/bench_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
