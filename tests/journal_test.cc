/**
 * @file
 * Crash-durability tests for the epoch journal (DESIGN.md §8): a
 * journal cut or corrupted anywhere recovers its committed prefix
 * without panicking, and a session resumed from that prefix finishes
 * with an artifact byte-identical to an uninterrupted run's.
 */

#include <gtest/gtest.h>

#include <fstream>

#include "common/rng.hh"
#include "core/recorder.hh"
#include "fault/fault.hh"
#include "journal/journal.hh"
#include "journal/sharded.hh"
#include "replay/recording_io.hh"
#include "replay/replayer.hh"
#include "testprogs.hh"
#include "trace/metrics.hh"

namespace dp
{
namespace
{

RecorderOptions
testOpts()
{
    RecorderOptions opts;
    opts.workerCpus = 2;
    opts.epochLength = 15'000;
    opts.keepCheckpoints = false;
    return opts;
}

/** One uninterrupted journaled record session. */
struct JournaledRun
{
    std::vector<std::uint8_t> artifact;
    std::vector<std::uint8_t> journal;
    std::vector<std::size_t> frameEnds;
    std::size_t epochs = 0;
    RecorderStats stats;
};

JournaledRun
recordJournaled(const GuestProgram &prog, const RecorderOptions &opts,
                FaultInjector *faults = nullptr,
                bool *writer_alive = nullptr)
{
    JournalWriter jw(prog, {}, recorderOptionsFingerprint(opts),
                     faults);
    RecordObserver obs;
    obs.onEpochCommitted = [&](const EpochRecord &e, EpochId index) {
        jw.appendEpoch(e, index);
    };
    UniparallelRecorder rec(prog, {}, opts);
    RecordOutcome out = rec.record(&obs);
    EXPECT_TRUE(out.ok);
    if (writer_alive)
        *writer_alive = jw.alive();
    return {serializeRecording(out.recording), jw.bytes(),
            jw.frameEnds(), out.recording.epochs.size(),
            out.recording.stats};
}

/** Recover @p image and finish the session from its prefix. */
std::vector<std::uint8_t>
resumeToArtifact(const GuestProgram &prog,
                 const RecorderOptions &opts,
                 std::span<const std::uint8_t> image)
{
    RecoveredJournal rj = recoverJournal(image);
    EXPECT_TRUE(rj.report.headerOk);
    UniparallelRecorder rec(prog, {}, opts);
    RecordOutcome out = rec.resume(std::move(rj.recording->epochs));
    EXPECT_TRUE(out.ok);
    EXPECT_FALSE(out.prefixVerifyFailed);
    return serializeRecording(out.recording);
}

TEST(Journal, ConvertsToTheExactArtifactOfAnUninterruptedRun)
{
    GuestProgram prog = testprogs::lockedCounter(2, 400);
    JournaledRun run = recordJournaled(prog, testOpts());
    ASSERT_GE(run.epochs, 3u);

    RecoveredJournal rj = recoverJournal(run.journal);
    ASSERT_TRUE(rj.report.clean());
    EXPECT_EQ(rj.report.framesRecovered, run.epochs);
    EXPECT_EQ(rj.report.committedBytes, run.journal.size());
    EXPECT_EQ(rj.report.bytesDiscarded, 0u);
    EXPECT_EQ(rj.optionsFingerprint,
              recorderOptionsFingerprint(testOpts()));
    EXPECT_EQ(serializeRecording(*rj.recording), run.artifact);
}

// The tentpole guarantee, swept: kill the writer at *every* frame
// boundary. Each cut recovers cleanly (no bytes lost — the crash
// landed between frames) and the resumed session's artifact is
// byte-identical to the uninterrupted run's. Boundary 0 is the
// header-only journal: a resume that re-records everything.
TEST(Journal, CrashAtEveryFrameBoundaryResumesByteIdentical)
{
    GuestProgram prog = testprogs::lockedCounter(2, 400);
    RecorderOptions opts = testOpts();
    JournaledRun run = recordJournaled(prog, opts);
    ASSERT_GE(run.frameEnds.size(), 4u); // header + >=3 epochs

    for (std::size_t b = 0; b < run.frameEnds.size(); ++b) {
        SCOPED_TRACE(testing::Message() << "frame boundary " << b);
        std::vector<std::uint8_t> cut(
            run.journal.begin(),
            run.journal.begin() +
                static_cast<std::ptrdiff_t>(run.frameEnds[b]));
        RecoveredJournal rj = recoverJournal(cut);
        ASSERT_TRUE(rj.report.headerOk);
        EXPECT_EQ(rj.report.tailError, JournalError::None);
        EXPECT_EQ(rj.report.framesRecovered, b); // frame 0 = header
        EXPECT_EQ(rj.report.bytesDiscarded, 0u);

        UniparallelRecorder rec(prog, {}, opts);
        RecordOutcome out =
            rec.resume(std::move(rj.recording->epochs));
        ASSERT_TRUE(out.ok);
        EXPECT_EQ(serializeRecording(out.recording), run.artifact);
    }
}

// Torn tails: cut the journal at seeded offsets strictly inside each
// frame. Recovery must classify the tail as damaged, keep exactly the
// complete frames before it, and never panic; the resumed session
// must still finish byte-identical.
TEST(Journal, TornTailAtSeededMidFrameOffsetsResumesByteIdentical)
{
    GuestProgram prog = testprogs::lockedCounter(2, 400);
    RecorderOptions opts = testOpts();
    JournaledRun run = recordJournaled(prog, opts);
    ASSERT_GE(run.frameEnds.size(), 4u);

    Rng rng(0x10a7'041e);
    // Start at the first epoch frame; cuts inside the header frame
    // are the CorruptOrTruncatedHeader test's concern.
    for (std::size_t b = 0; b + 1 < run.frameEnds.size(); ++b) {
        std::size_t lo = run.frameEnds[b];
        std::size_t hi = run.frameEnds[b + 1];
        for (int k = 0; k < 3; ++k) {
            std::size_t cut_at = lo + 1 + rng.below(hi - lo - 1);
            SCOPED_TRACE(testing::Message()
                         << "cut at byte " << cut_at
                         << " inside frame " << b + 1);
            std::vector<std::uint8_t> cut(
                run.journal.begin(),
                run.journal.begin() +
                    static_cast<std::ptrdiff_t>(cut_at));
            RecoveredJournal rj = recoverJournal(cut);
            ASSERT_TRUE(rj.report.headerOk);
            EXPECT_EQ(rj.report.tailError,
                      JournalError::TruncatedFrame);
            EXPECT_EQ(rj.report.framesRecovered, b);
            EXPECT_EQ(rj.report.committedBytes, lo);
            EXPECT_EQ(rj.report.bytesDiscarded, cut_at - lo);

            UniparallelRecorder rec(prog, {}, opts);
            RecordOutcome out =
                rec.resume(std::move(rj.recording->epochs));
            ASSERT_TRUE(out.ok);
            EXPECT_EQ(serializeRecording(out.recording),
                      run.artifact);
        }
    }
}

TEST(Journal, ResumingACompleteJournalReproducesItsArtifact)
{
    GuestProgram prog = testprogs::lockedCounter(2, 400);
    RecorderOptions opts = testOpts();
    JournaledRun run = recordJournaled(prog, opts);
    // The prefix is the whole recording: resume verifies it by
    // sequential replay and returns without recording anything new.
    EXPECT_EQ(resumeToArtifact(prog, opts, run.journal),
              run.artifact);
}

// Every single-bit flip anywhere in the header frame must be caught
// (kind, length, payload, CRC, or commit marker — all guarded) and
// reported structurally, never as a crash or a bogus Recording.
TEST(Journal, CorruptOrTruncatedHeaderRecoversNothingWithoutPanic)
{
    GuestProgram prog = testprogs::lockedCounter(2, 100);
    JournaledRun run = recordJournaled(prog, testOpts());
    std::size_t header_end = run.frameEnds[0];

    for (std::size_t pos = 0; pos < header_end; ++pos) {
        std::vector<std::uint8_t> bad = run.journal;
        bad[pos] ^= 0x10;
        RecoveredJournal rj = recoverJournal(bad);
        EXPECT_FALSE(rj.report.headerOk) << "flip at byte " << pos;
        EXPECT_EQ(rj.recording, nullptr);
        EXPECT_EQ(rj.report.framesRecovered, 0u);
        EXPECT_NE(rj.report.tailError, JournalError::None);
    }
    for (std::size_t cut = 0; cut < header_end; ++cut) {
        RecoveredJournal rj = recoverJournal(
            std::span(run.journal).first(cut));
        EXPECT_FALSE(rj.report.headerOk) << "cut at byte " << cut;
        EXPECT_EQ(rj.recording, nullptr);
    }
}

TEST(Journal, GarbageAndTrailingJunkAreFailClosed)
{
    RecoveredJournal empty = recoverJournal({});
    EXPECT_FALSE(empty.report.headerOk);
    EXPECT_EQ(empty.report.tailError, JournalError::MissingHeader);

    std::vector<std::uint8_t> garbage(257);
    Rng rng(42);
    for (auto &b : garbage)
        b = static_cast<std::uint8_t>(rng.next());
    RecoveredJournal g = recoverJournal(garbage);
    EXPECT_FALSE(g.report.headerOk);
    EXPECT_EQ(g.recording, nullptr);

    GuestProgram prog = testprogs::lockedCounter(2, 200);
    JournaledRun run = recordJournaled(prog, testOpts());
    std::vector<std::uint8_t> junked = run.journal;
    for (int i = 0; i < 17; ++i)
        junked.push_back(static_cast<std::uint8_t>(rng.next()));
    RecoveredJournal j = recoverJournal(junked);
    ASSERT_TRUE(j.report.headerOk);
    EXPECT_EQ(j.report.framesRecovered, run.epochs);
    EXPECT_EQ(j.report.committedBytes, run.journal.size());
    EXPECT_NE(j.report.tailError, JournalError::None);
}

TEST(Journal, EveryEpochFrameBitFlipIsDetected)
{
    GuestProgram prog = testprogs::lockedCounter(2, 100);
    JournaledRun run = recordJournaled(prog, testOpts());
    ASSERT_GE(run.frameEnds.size(), 2u);

    // Flip one seeded byte in every committed epoch frame in turn:
    // recovery must stop exactly there, keeping the frames before it.
    Rng rng(0xf11b);
    for (std::size_t f = 1; f < run.frameEnds.size(); ++f) {
        std::size_t lo = run.frameEnds[f - 1];
        std::size_t hi = run.frameEnds[f];
        std::vector<std::uint8_t> bad = run.journal;
        bad[lo + rng.below(hi - lo)] ^= 0x04;
        RecoveredJournal rj = recoverJournal(bad);
        ASSERT_TRUE(rj.report.headerOk);
        EXPECT_EQ(rj.report.framesRecovered, f - 1);
        EXPECT_EQ(rj.report.committedBytes, lo);
        EXPECT_NE(rj.report.tailError, JournalError::None);
    }
}

// ---- Fault-injected writer failures (artifact_faults machinery) ----

TEST(JournalFaults, InjectedCrashDiesAtAFrameBoundary)
{
    GuestProgram prog = testprogs::lockedCounter(2, 400);
    RecorderOptions opts = testOpts();
    JournaledRun base = recordJournaled(prog, opts);

    // Per-scope decisions are pure in (seed, site, scope), so scan
    // seeds for a crash that lands mid-journal — deterministically.
    bool found = false;
    for (std::uint64_t seed = 1; seed <= 64 && !found; ++seed) {
        FaultPlan plan;
        plan.seed = seed;
        plan.with(FaultSite::JournalCrash, 0.3, 1);
        FaultInjector fi(plan);
        bool alive = true;
        JournaledRun run =
            recordJournaled(prog, opts, &fi, &alive);
        EXPECT_EQ(run.artifact, base.artifact); // session unharmed
        if (alive)
            continue;
        ASSERT_GT(fi.count(FaultSite::JournalCrash), 0u);
        RecoveredJournal rj = recoverJournal(run.journal);
        ASSERT_TRUE(rj.report.headerOk);
        // Died *between* frames: a clean boundary, nothing torn.
        EXPECT_EQ(rj.report.tailError, JournalError::None);
        EXPECT_EQ(rj.report.bytesDiscarded, 0u);
        EXPECT_LT(rj.report.framesRecovered, base.epochs);
        if (rj.report.framesRecovered == 0)
            continue; // keep scanning for a mid-journal crash
        found = true;
        EXPECT_EQ(resumeToArtifact(prog, opts, run.journal),
                  base.artifact);
    }
    EXPECT_TRUE(found);
}

TEST(JournalFaults, InjectedTornWriteLeavesARecoverableTail)
{
    GuestProgram prog = testprogs::lockedCounter(2, 400);
    RecorderOptions opts = testOpts();
    JournaledRun base = recordJournaled(prog, opts);

    bool found = false;
    for (std::uint64_t seed = 1; seed <= 64 && !found; ++seed) {
        FaultPlan plan;
        plan.seed = seed;
        plan.with(FaultSite::TornFrameWrite, 0.3, 1);
        FaultInjector fi(plan);
        bool alive = true;
        JournaledRun run =
            recordJournaled(prog, opts, &fi, &alive);
        if (alive)
            continue;
        RecoveredJournal rj = recoverJournal(run.journal);
        ASSERT_TRUE(rj.report.headerOk);
        EXPECT_EQ(rj.report.tailError,
                  JournalError::TruncatedFrame);
        EXPECT_GT(rj.report.bytesDiscarded, 0u);
        EXPECT_LT(rj.report.framesRecovered, base.epochs);
        if (rj.report.framesRecovered == 0)
            continue;
        found = true;
        EXPECT_EQ(resumeToArtifact(prog, opts, run.journal),
                  base.artifact);
    }
    EXPECT_TRUE(found);
}

TEST(JournalFaults, InjectedBitFlipIsCaughtByTheFrameChecksum)
{
    GuestProgram prog = testprogs::lockedCounter(2, 400);
    RecorderOptions opts = testOpts();
    JournaledRun base = recordJournaled(prog, opts);

    FaultPlan plan;
    plan.seed = 11;
    plan.with(FaultSite::JournalBitFlip, 1.0, 1);
    FaultInjector fi(plan);
    bool alive = true;
    JournaledRun run = recordJournaled(prog, opts, &fi, &alive);
    EXPECT_TRUE(alive); // corruption, not a crash
    ASSERT_GT(fi.count(FaultSite::JournalBitFlip), 0u);

    RecoveredJournal rj = recoverJournal(run.journal);
    ASSERT_TRUE(rj.report.headerOk);
    EXPECT_NE(rj.report.tailError, JournalError::None);
    EXPECT_LT(rj.report.framesRecovered, base.epochs);
    EXPECT_GT(rj.report.bytesDiscarded, 0u);
    EXPECT_EQ(resumeToArtifact(prog, opts, run.journal),
              base.artifact);
}

// ---- Resume safety rails ----

TEST(JournalResume, TamperedPrefixFailsClosedBeforeRecording)
{
    GuestProgram prog = testprogs::lockedCounter(2, 400);
    RecorderOptions opts = testOpts();
    JournaledRun run = recordJournaled(prog, opts);

    RecoveredJournal rj = recoverJournal(run.journal);
    ASSERT_TRUE(rj.report.headerOk);
    ASSERT_GE(rj.recording->epochs.size(), 2u);
    // The frame CRCs passed (the bytes are what was written), but
    // the *content* lies about the execution: replay must catch it.
    rj.recording->epochs[1].endStateHash ^= 1;

    UniparallelRecorder rec(prog, {}, opts);
    RecordOutcome out = rec.resume(std::move(rj.recording->epochs));
    EXPECT_FALSE(out.ok);
    EXPECT_TRUE(out.prefixVerifyFailed);
    EXPECT_TRUE(out.recording.epochs.empty());
}

TEST(JournalResume, ResumedSessionKeepsCheckpointsForParallelReplay)
{
    GuestProgram prog = testprogs::lockedCounter(2, 400);
    RecorderOptions opts = testOpts();
    opts.keepCheckpoints = true;
    JournaledRun run = recordJournaled(prog, opts);
    ASSERT_GE(run.frameEnds.size(), 3u);

    std::size_t mid = run.frameEnds[run.frameEnds.size() / 2];
    RecoveredJournal rj =
        recoverJournal(std::span(run.journal).first(mid));
    ASSERT_TRUE(rj.report.headerOk);
    UniparallelRecorder rec(prog, {}, opts);
    RecordOutcome out = rec.resume(std::move(rj.recording->epochs));
    ASSERT_TRUE(out.ok);
    EXPECT_EQ(serializeRecording(out.recording), run.artifact);
    ASSERT_TRUE(out.recording.hasCheckpoints());
    ReplayResult par = Replayer(out.recording).replayParallel(2);
    EXPECT_TRUE(par.ok);
}

TEST(JournalResume, RecoveredAndResumedStatsMatchTheFreshSession)
{
    // Regression guard: epoch frames once dropped tpInstrs, so a
    // crash-recovered (or resumed) session under-reported the
    // thread-parallel instruction count forever after. Every
    // reconstructible counter must survive the journal round trip.
    GuestProgram prog = testprogs::lockedCounter(2, 400);
    RecorderOptions opts = testOpts();
    JournaledRun run = recordJournaled(prog, opts);
    ASSERT_GE(run.epochs, 3u);
    ASSERT_GT(run.stats.tpInstrs, 0u);

    auto expect_stats_eq = [&](const RecorderStats &got,
                               const char *what) {
        EXPECT_EQ(got.epochs, run.stats.epochs) << what;
        EXPECT_EQ(got.rollbacks, run.stats.rollbacks) << what;
        EXPECT_EQ(got.checkpointPages, run.stats.checkpointPages)
            << what;
        EXPECT_EQ(got.tpInstrs, run.stats.tpInstrs) << what;
        EXPECT_EQ(got.epInstrs, run.stats.epInstrs) << what;
        EXPECT_EQ(got.tpTotalCycles, run.stats.tpTotalCycles) << what;
        EXPECT_EQ(got.epTotalCycles, run.stats.epTotalCycles) << what;
    };

    // Full recovery reconstructs the counters exactly.
    RecoveredJournal rj = recoverJournal(run.journal);
    ASSERT_TRUE(rj.report.clean());
    expect_stats_eq(rj.recording->stats, "recovered");

    // A session resumed from a mid-journal prefix finishes with the
    // same stats as the uninterrupted run — including tpInstrs for
    // the epochs it did not itself execute.
    std::size_t mid = run.frameEnds[run.frameEnds.size() / 2];
    RecoveredJournal half =
        recoverJournal(std::span(run.journal).first(mid));
    ASSERT_TRUE(half.report.headerOk);
    ASSERT_LT(half.recording->epochs.size(), run.epochs);
    UniparallelRecorder rec(prog, {}, opts);
    RecordOutcome out = rec.resume(std::move(half.recording->epochs));
    ASSERT_TRUE(out.ok);
    expect_stats_eq(out.recording.stats, "resumed");

    // And the user-facing view agrees: the metrics snapshot of the
    // resumed session is byte-identical to the fresh session's.
    UniparallelRecorder fresh_rec(prog, {}, opts);
    RecordOutcome fresh = fresh_rec.record();
    ASSERT_TRUE(fresh.ok);
    EXPECT_EQ(metricsSnapshot(out.recording, {}).dump(),
              metricsSnapshot(fresh.recording, {}).dump());
}

TEST(JournalHeader, FingerprintCoversByteShapingOptionsOnly)
{
    RecorderOptions a;
    std::uint64_t base = recorderOptionsFingerprint(a);
    EXPECT_EQ(base, recorderOptionsFingerprint(a));

    auto differs = [&](auto tweak) {
        RecorderOptions o;
        tweak(o);
        return recorderOptionsFingerprint(o) != base;
    };
    EXPECT_TRUE(differs([](RecorderOptions &o) { o.workerCpus = 3; }));
    EXPECT_TRUE(differs([](RecorderOptions &o) {
        o.epochLength = 1'000;
    }));
    EXPECT_TRUE(differs([](RecorderOptions &o) { o.seed = 2; }));
    EXPECT_TRUE(differs([](RecorderOptions &o) { o.quantum = 1; }));
    EXPECT_TRUE(differs([](RecorderOptions &o) {
        o.enforceSyncOrder = false;
    }));
    EXPECT_TRUE(differs([](RecorderOptions &o) {
        o.chargeCosts = false;
    }));
    EXPECT_TRUE(differs([](RecorderOptions &o) { o.jitterNum = 2; }));
    EXPECT_TRUE(differs([](RecorderOptions &o) { o.jitterDen = 9; }));
    EXPECT_TRUE(differs([](RecorderOptions &o) { o.mpQuantum = 7; }));

    // Resource bounds never shape the recorded bytes.
    RecorderOptions r;
    r.maxEpochs = 5;
    r.maxRollbacks = 1;
    r.hostWorkers = 3;
    r.maxInFlight = 2;
    r.fuel = 1'000'000;
    r.keepCheckpoints = false;
    EXPECT_EQ(recorderOptionsFingerprint(r), base);
}

// ---- verifyImage: integrity checks without replaying ----

TEST(VerifyImage, ClassifiesArtifactsJournalsAndGarbage)
{
    GuestProgram prog = testprogs::lockedCounter(2, 200);
    JournaledRun run = recordJournaled(prog, testOpts());

    VerifyResult art = verifyImage(run.artifact);
    EXPECT_EQ(art.kind, UniplayFileKind::Artifact);
    EXPECT_TRUE(art.ok);
    EXPECT_EQ(art.epochs, run.epochs);

    VerifyResult jnl = verifyImage(run.journal);
    EXPECT_EQ(jnl.kind, UniplayFileKind::Journal);
    EXPECT_TRUE(jnl.ok);
    EXPECT_EQ(jnl.epochs, run.epochs);

    std::vector<std::uint8_t> text{'h', 'e', 'l', 'l', 'o'};
    VerifyResult junk = verifyImage(text);
    EXPECT_EQ(junk.kind, UniplayFileKind::Unknown);
    EXPECT_FALSE(junk.ok);
    EXPECT_FALSE(verifyImage({}).ok);
}

TEST(VerifyImage, FlagsDamagedArtifactsAndJournals)
{
    GuestProgram prog = testprogs::lockedCounter(2, 200);
    JournaledRun run = recordJournaled(prog, testOpts());

    std::vector<std::uint8_t> short_art = run.artifact;
    short_art.resize(short_art.size() - 5);
    VerifyResult art = verifyImage(short_art);
    EXPECT_EQ(art.kind, UniplayFileKind::Artifact);
    EXPECT_FALSE(art.ok);

    std::vector<std::uint8_t> torn = run.journal;
    torn.resize(torn.size() - 3);
    VerifyResult jnl = verifyImage(torn);
    EXPECT_EQ(jnl.kind, UniplayFileKind::Journal);
    EXPECT_FALSE(jnl.ok);
    EXPECT_EQ(jnl.epochs, run.epochs - 1);
}

// =====================================================================
// Sharded journal (DESIGN.md §13): N per-stream logs with sequence
// metadata, consistent-cut recovery, partitioned parallel decode.

std::vector<std::span<const std::uint8_t>>
spansOf(const std::vector<std::vector<std::uint8_t>> &images)
{
    return {images.begin(), images.end()};
}

/** One journaled record session through the sharded writer. */
struct ShardedRun
{
    std::vector<std::uint8_t> artifact;
    std::vector<std::vector<std::uint8_t>> images;
    std::vector<std::vector<std::size_t>> frameEnds;
    std::size_t epochs = 0;
};

ShardedRun
recordSharded(const GuestProgram &prog, const RecorderOptions &opts,
              unsigned streams, FaultInjector *faults = nullptr,
              bool *writer_alive = nullptr, bool async = false)
{
    ShardedJournalWriter jw(prog, {},
                            recorderOptionsFingerprint(opts),
                            {.streams = streams}, faults);
    if (async)
        jw.enableAsyncCommit();
    RecordObserver obs;
    obs.addEpochSink([&](const EpochRecord &e, EpochId index) {
        jw.appendEpoch(e, index);
    });
    UniparallelRecorder rec(prog, {}, opts);
    RecordOutcome out = rec.record(&obs);
    EXPECT_TRUE(out.ok);
    jw.flush();
    if (writer_alive)
        *writer_alive = jw.alive();
    ShardedRun r;
    r.artifact = serializeRecording(out.recording);
    r.images = jw.imageSet();
    for (unsigned s = 0; s < streams; ++s)
        r.frameEnds.push_back(jw.streamFrameEnds(s));
    r.epochs = out.recording.epochs.size();
    return r;
}

/** Epochs below @p cut owned by stream @p s of @p n (base 0). */
std::uint64_t
ownedBelow(std::uint64_t cut, unsigned s, unsigned n)
{
    return cut > s ? (cut - 1 - s) / n + 1 : 0;
}

/** The consistent cut a from-scratch oracle predicts: the smallest
 *  epoch index missing from its owning stream, given each stream's
 *  kept frame count (base 0). */
std::uint64_t
oracleCut(const std::vector<std::uint64_t> &kept)
{
    const unsigned n = static_cast<unsigned>(kept.size());
    std::uint64_t cut = kept[0] * n;
    for (unsigned s = 1; s < n; ++s)
        cut = std::min(cut, kept[s] * n + s);
    return cut;
}

/** Recover @p images, resume the session from the recovered prefix
 *  (truncating each stream to its keptBytes first, as the CLI does),
 *  and return the finished artifact. */
std::vector<std::uint8_t>
resumeShardedToArtifact(const GuestProgram &prog,
                        const RecorderOptions &opts,
                        std::vector<std::vector<std::uint8_t>> images)
{
    const unsigned n = static_cast<unsigned>(images.size());
    RecoveredShardedJournal rj =
        recoverShardedJournal(spansOf(images));
    EXPECT_TRUE(rj.report.headerOk);
    EXPECT_NE(rj.recording, nullptr);
    if (!rj.recording)
        return {};
    for (unsigned s = 0; s < n; ++s)
        images[s].resize(rj.streams[s].keptBytes);
    ShardedJournalWriter resumed(std::move(images), {.streams = n});
    EXPECT_EQ(resumed.epochsWritten(), rj.consistentEpochs);
    UniparallelRecorder rec(prog, {}, opts);
    RecordOutcome out = rec.resume(std::move(rj.recording->epochs));
    EXPECT_TRUE(out.ok);
    EXPECT_FALSE(out.prefixVerifyFailed);
    return serializeRecording(out.recording);
}

TEST(ShardedJournal, SingleStreamIsByteIdenticalToVersionTwo)
{
    GuestProgram prog = testprogs::lockedCounter(2, 400);
    RecorderOptions opts = testOpts();
    JournaledRun v2 = recordJournaled(prog, opts);
    ShardedRun one = recordSharded(prog, opts, 1);
    ASSERT_EQ(one.images.size(), 1u);
    // The read-compat contract: N == 1 emits a version-2 journal,
    // byte for byte.
    EXPECT_EQ(one.images[0], v2.journal);
    EXPECT_EQ(one.frameEnds[0], v2.frameEnds);
}

TEST(ShardedJournal, AsyncCommitBytesMatchSynchronousCommits)
{
    GuestProgram prog = testprogs::lockedCounter(2, 400);
    RecorderOptions opts = testOpts();
    for (unsigned n : {1u, 2u, 4u}) {
        SCOPED_TRACE(testing::Message() << n << " streams");
        ShardedRun sync_run = recordSharded(prog, opts, n);
        ShardedRun async_run = recordSharded(prog, opts, n, nullptr,
                                             nullptr, true);
        EXPECT_EQ(sync_run.artifact, async_run.artifact);
        // Same-stream FIFO on the committer strands: every stream's
        // image is identical to the synchronous writer's.
        EXPECT_EQ(sync_run.images, async_run.images);
    }
}

TEST(ShardedJournal, RecoversTheSameArtifactAcrossStreamAndJobShapes)
{
    GuestProgram prog = testprogs::lockedCounter(2, 400);
    RecorderOptions opts = testOpts();
    JournaledRun v2 = recordJournaled(prog, opts);
    for (unsigned n : {1u, 2u, 4u}) {
        SCOPED_TRACE(testing::Message() << n << " streams");
        ShardedRun run = recordSharded(prog, opts, n);
        ASSERT_GE(run.epochs, 3u);
        for (unsigned jobs : {1u, 2u, 4u}) {
            RecoveredShardedJournal rj =
                recoverShardedJournal(spansOf(run.images), jobs);
            ASSERT_TRUE(rj.report.clean())
                << jobs << " jobs: " << rj.report.detail;
            EXPECT_EQ(rj.streamCount, n);
            EXPECT_EQ(rj.consistentEpochs, run.epochs);
            EXPECT_EQ(rj.report.framesRecovered, run.epochs);
            EXPECT_EQ(rj.report.bytesDiscarded, 0u);
            EXPECT_EQ(rj.optionsFingerprint,
                      recorderOptionsFingerprint(opts));
            ASSERT_NE(rj.recording, nullptr);
            // The one artifact, whatever the stream count or the
            // recovery parallelism.
            EXPECT_EQ(serializeRecording(*rj.recording), v2.artifact);
        }
    }
}

// The sharded crash matrix: for N in {1, 2, 4}, kill the writer at
// *every* per-stream frame boundary (the other streams keep their
// full images). Recovery must keep exactly the consistent cut the
// oracle predicts, and the resumed session must finish byte-identical
// to the uninterrupted run.
TEST(ShardedJournal, CrashAtEveryStreamFrameBoundaryResumesByteIdentical)
{
    GuestProgram prog = testprogs::lockedCounter(2, 400);
    RecorderOptions opts = testOpts();
    for (unsigned n : {1u, 2u, 4u}) {
        ShardedRun run = recordSharded(prog, opts, n);
        ASSERT_GE(run.epochs, 3u);
        std::vector<std::uint64_t> full(n);
        for (unsigned s = 0; s < n; ++s)
            full[s] = run.frameEnds[s].size() - 1;
        for (unsigned s = 0; s < n; ++s) {
            for (std::size_t b = 0; b < run.frameEnds[s].size();
                 ++b) {
                SCOPED_TRACE(testing::Message()
                             << n << " streams, stream " << s
                             << " cut at frame boundary " << b);
                std::vector<std::vector<std::uint8_t>> images =
                    run.images;
                images[s].resize(run.frameEnds[s][b]);
                std::vector<std::uint64_t> kept = full;
                kept[s] = b; // frame 0 is the header
                const std::uint64_t cut = oracleCut(kept);

                RecoveredShardedJournal rj =
                    recoverShardedJournal(spansOf(images));
                ASSERT_TRUE(rj.report.headerOk);
                EXPECT_EQ(rj.consistentEpochs, cut);
                EXPECT_EQ(rj.report.framesRecovered, cut);
                // The cut stream itself is clean — the crash landed
                // between frames.
                EXPECT_EQ(rj.streams[s].report.tailError,
                          JournalError::None);
                bool any_beyond = false;
                for (unsigned t = 0; t < n; ++t)
                    any_beyond |= kept[t] > ownedBelow(cut, t, n);
                EXPECT_EQ(rj.report.tailError,
                          any_beyond ? JournalError::InconsistentCut
                                     : JournalError::None);
                EXPECT_EQ(resumeShardedToArtifact(prog, opts,
                                                  std::move(images)),
                          run.artifact);
            }
        }
    }
}

// Torn tails, sharded: cut one stream at seeded offsets strictly
// inside each of its frames. The damaged stream reports a torn tail,
// its complete frames survive, siblings keep their prefixes up to the
// consistent cut, and the resumed session is byte-identical.
TEST(ShardedJournal, TornStreamTailAtSeededOffsetsResumesByteIdentical)
{
    GuestProgram prog = testprogs::lockedCounter(2, 400);
    RecorderOptions opts = testOpts();
    Rng rng(0x5'4a7d'3d01);
    for (unsigned n : {1u, 2u, 4u}) {
        ShardedRun run = recordSharded(prog, opts, n);
        ASSERT_GE(run.epochs, 3u);
        std::vector<std::uint64_t> full(n);
        for (unsigned s = 0; s < n; ++s)
            full[s] = run.frameEnds[s].size() - 1;
        for (unsigned s = 0; s < n; ++s) {
            const std::vector<std::size_t> &ends = run.frameEnds[s];
            for (std::size_t f = 0; f + 1 < ends.size(); ++f) {
                std::size_t lo = ends[f];
                std::size_t hi = ends[f + 1];
                for (int k = 0; k < 2; ++k) {
                    std::size_t cut_at =
                        lo + 1 + rng.below(hi - lo - 1);
                    SCOPED_TRACE(testing::Message()
                                 << n << " streams, stream " << s
                                 << " torn at byte " << cut_at
                                 << " inside frame " << f + 1);
                    std::vector<std::vector<std::uint8_t>> images =
                        run.images;
                    images[s].resize(cut_at);
                    std::vector<std::uint64_t> kept = full;
                    kept[s] = f;
                    const std::uint64_t cut = oracleCut(kept);

                    RecoveredShardedJournal rj =
                        recoverShardedJournal(spansOf(images));
                    ASSERT_TRUE(rj.report.headerOk);
                    EXPECT_EQ(rj.streams[s].report.tailError,
                              JournalError::TruncatedFrame);
                    EXPECT_EQ(rj.consistentEpochs, cut);
                    EXPECT_EQ(rj.report.framesRecovered, cut);
                    EXPECT_GT(rj.report.bytesDiscarded, 0u);
                    EXPECT_NE(rj.report.tailError,
                              JournalError::None);
                    EXPECT_EQ(resumeShardedToArtifact(
                                  prog, opts, std::move(images)),
                              run.artifact);
                }
            }
        }
    }
}

TEST(ShardedJournal, TruncationDropsCoveredSegmentsAndKeepsTheTail)
{
    GuestProgram prog = testprogs::lockedCounter(2, 400);
    RecorderOptions opts = testOpts();
    UniparallelRecorder rec(prog, {}, opts);
    RecordOutcome out = rec.record();
    ASSERT_TRUE(out.ok);
    const std::vector<EpochRecord> &epochs = out.recording.epochs;
    const auto total = static_cast<std::uint64_t>(epochs.size());
    ASSERT_GE(total, 5u);

    ShardedJournalWriter jw(prog, {},
                            recorderOptionsFingerprint(opts),
                            {.streams = 2, .segmentEpochs = 2});
    for (std::uint64_t i = 0; i < total; ++i)
        jw.appendEpoch(epochs[i], static_cast<EpochId>(i));

    // Epochs below 4 are covered by a durable checkpoint: both whole
    // segments below it can go.
    const std::size_t dropped = jw.truncateCoveredSegments(4);
    EXPECT_GT(dropped, 0u);
    EXPECT_EQ(jw.baseEpoch(), 4u);
    // Appends continue against the advanced base... and recovery
    // returns the tail epochs, not a whole Recording.
    RecoveredShardedJournal rj =
        recoverShardedJournal(spansOf(jw.imageSet()));
    ASSERT_TRUE(rj.report.headerOk);
    EXPECT_EQ(rj.baseEpoch, 4u);
    EXPECT_EQ(rj.recording, nullptr);
    EXPECT_EQ(rj.consistentEpochs, total);
    ASSERT_EQ(rj.tailEpochs.size(), total - 4);
    for (std::size_t i = 0; i < rj.tailEpochs.size(); ++i) {
        const EpochRecord &got = rj.tailEpochs[i];
        const EpochRecord &want = epochs[4 + i];
        EXPECT_EQ(got.endStateHash, want.endStateHash) << i;
        EXPECT_TRUE(got.schedule == want.schedule &&
                    got.syscalls == want.syscalls)
            << "tail epoch " << i << " decoded differently";
    }

    // A durable epoch mid-segment only drops the whole segments
    // below it; nothing else moves.
    EXPECT_EQ(jw.truncateCoveredSegments(5), 0u);
    EXPECT_EQ(jw.baseEpoch(), 4u);
}

TEST(ShardedJournal, VersionTwoFixtureRecoversIdentically)
{
    // Pinned bytes: a version-2 journal and the artifact its epochs
    // serialize to, recorded by an earlier build (see
    // tests/fixtures/README.md). The new recovery path must keep
    // accepting the old format byte-for-byte.
    auto read_fixture = [](const char *name) {
        std::ifstream in(std::string(DP_JOURNAL_FIXTURE_DIR) + "/" +
                             name,
                         std::ios::binary);
        EXPECT_TRUE(in.good()) << name;
        return std::vector<std::uint8_t>(
            std::istreambuf_iterator<char>(in), {});
    };
    std::vector<std::uint8_t> journal =
        read_fixture("v2_journal.bin");
    std::vector<std::uint8_t> artifact =
        read_fixture("v2_artifact.bin");
    ASSERT_FALSE(journal.empty());
    ASSERT_FALSE(artifact.empty());

    RecoveredJournal rj = recoverJournal(journal);
    ASSERT_TRUE(rj.report.clean()) << rj.report.detail;
    ASSERT_NE(rj.recording, nullptr);
    EXPECT_EQ(serializeRecording(*rj.recording), artifact);

    // And through the sharded entry point (the v2 read-compat path).
    std::vector<std::vector<std::uint8_t>> images{journal};
    for (unsigned jobs : {1u, 2u}) {
        RecoveredShardedJournal srj =
            recoverShardedJournal(spansOf(images), jobs);
        ASSERT_TRUE(srj.report.clean()) << srj.report.detail;
        EXPECT_EQ(srj.streamCount, 1u);
        ASSERT_NE(srj.recording, nullptr);
        EXPECT_EQ(serializeRecording(*srj.recording), artifact);
    }
}

// Per-stream fault sites: the injected failure damages one stream;
// siblings keep committing, recovery never panics, and the resumed
// session still finishes byte-identical.
TEST(ShardedJournalFaults, InjectedStreamFailuresRecoverAndResume)
{
    GuestProgram prog = testprogs::lockedCounter(2, 400);
    RecorderOptions opts = testOpts();
    ShardedRun base = recordSharded(prog, opts, 4);
    ASSERT_GE(base.epochs, 3u);

    for (FaultSite site :
         {FaultSite::StreamTornWrite, FaultSite::StreamCrash,
          FaultSite::StreamBitFlip}) {
        bool found = false;
        for (std::uint64_t seed = 1; seed <= 64 && !found; ++seed) {
            FaultPlan plan;
            plan.seed = seed;
            plan.with(site, 0.3, 1);
            FaultInjector fi(plan);
            bool alive = true;
            ShardedRun run =
                recordSharded(prog, opts, 4, &fi, &alive);
            EXPECT_EQ(run.artifact, base.artifact); // session unharmed
            if (fi.count(site) == 0)
                continue;
            RecoveredShardedJournal rj =
                recoverShardedJournal(spansOf(run.images));
            ASSERT_TRUE(rj.report.headerOk)
                << faultSiteName(site) << " seed " << seed;
            if (rj.consistentEpochs == 0 ||
                rj.consistentEpochs == base.epochs)
                continue; // scan for a mid-journal failure
            found = true;
            // Damage stays confined to the streams whose epochs the
            // injector hit — never more streams than fired faults.
            unsigned damaged = 0;
            for (unsigned s = 0; s < 4; ++s)
                if (rj.streams[s].report.tailError !=
                    JournalError::None)
                    ++damaged;
            EXPECT_LE(damaged, fi.count(site))
                << faultSiteName(site);
            EXPECT_EQ(resumeShardedToArtifact(prog, opts,
                                              run.images),
                      base.artifact)
                << faultSiteName(site) << " seed " << seed;
        }
        EXPECT_TRUE(found) << faultSiteName(site);
    }
}

} // namespace
} // namespace dp
