# One binary per reproduced table/figure (E1..E11) plus the
# google-benchmark microbenches. All are plain executables:
#   for b in build/bench/*; do $b; done
# Included from the top-level CMakeLists (not add_subdirectory) so
# that build/bench/ contains nothing but the bench executables and
# `for b in build/bench/*; do $b; done` runs them all.
function(dp_add_bench name)
    add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cc)
    target_link_libraries(${name} PRIVATE dp_harness)
    target_include_directories(${name} PRIVATE ${CMAKE_SOURCE_DIR}/bench)
    set_target_properties(${name} PROPERTIES
        RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

dp_add_bench(bench_table1_workloads)
dp_add_bench(bench_overhead_spare)
dp_add_bench(bench_overhead_nospare)
dp_add_bench(bench_logsize)
dp_add_bench(bench_replay)
dp_add_bench(bench_rollback)
dp_add_bench(bench_epoch_sweep)
dp_add_bench(bench_baselines)
dp_add_bench(bench_scalability)
dp_add_bench(bench_ckpt_cost)
dp_add_bench(bench_host_pipeline)

# bench_journal_scale links the journal layer directly: it measures
# sharded commit throughput and partitioned recovery, not the record
# pipeline itself.
dp_add_bench(bench_journal_scale)
target_link_libraries(bench_journal_scale PRIVATE dp_journal)

# bench_standby_lag drives the journal-shipping subsystem: standby
# lag and failover time across epoch rate x link fault rate.
dp_add_bench(bench_standby_lag)
target_link_libraries(bench_standby_lag PRIVATE dp_ship)

# bench_micro also links the harness: after the google-benchmark
# suites it emits the BENCH_micro.json summary row.
add_executable(bench_micro ${CMAKE_SOURCE_DIR}/bench/bench_micro.cc)
target_link_libraries(bench_micro PRIVATE
    dp_os dp_log dp_harness benchmark::benchmark)
target_include_directories(bench_micro PRIVATE ${CMAKE_SOURCE_DIR}/bench)
set_target_properties(bench_micro PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
