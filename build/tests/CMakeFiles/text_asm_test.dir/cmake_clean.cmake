file(REMOVE_RECURSE
  "CMakeFiles/text_asm_test.dir/text_asm_test.cc.o"
  "CMakeFiles/text_asm_test.dir/text_asm_test.cc.o.d"
  "text_asm_test"
  "text_asm_test.pdb"
  "text_asm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_asm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
