file(REMOVE_RECURSE
  "libdp_testutil.a"
)
