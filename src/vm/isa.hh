/**
 * @file
 * The uniplay guest ISA.
 *
 * A deliberately small RISC-style instruction set executed by an
 * interpreter. It exists because uniparallelism needs three properties
 * real binaries do not portably give us: instruction-granular
 * preemption, snapshottable thread contexts, and exactly-reexecutable
 * code. Atomic read-modify-write instructions (Cas/FetchAdd/Xchg) are
 * the synchronization operations whose global order DoublePlay's
 * thread-parallel run records and whose order the epoch-parallel run is
 * constrained to follow.
 */

#ifndef DP_VM_ISA_HH
#define DP_VM_ISA_HH

#include <cstdint>
#include <string_view>

namespace dp
{

/** Guest register names; 16 general-purpose 64-bit registers. */
enum class Reg : std::uint8_t
{
    r0, r1, r2, r3, r4, r5, r6, r7,
    r8, r9, r10, r11, r12, r13, r14, r15,
};

inline constexpr int numRegs = 16;

/** Guest opcodes. */
enum class Opcode : std::uint8_t
{
    Nop,

    // Register / immediate moves.
    Li,     ///< rd = imm
    Mov,    ///< rd = rs1

    // Integer ALU (register-register).
    Add, Sub, Mul, Divu, Remu,
    And, Or, Xor,
    Shl, Shr, Sar,
    SltU,   ///< rd = (rs1 <u rs2)
    SltS,   ///< rd = (rs1 <s rs2)
    Seq,    ///< rd = (rs1 == rs2)

    // Integer ALU (register-immediate).
    Addi,   ///< rd = rs1 + imm
    Andi, Ori, Xori,
    Shli, Shri,
    Muli,

    // Memory. Effective address is rs1 + imm.
    Ld8, Ld16, Ld32, Ld64,  ///< zero-extending loads
    St8, St16, St32, St64,  ///< stores of rs2's low bits

    // Control. Branch/jump targets are absolute instruction indices
    // carried in imm (resolved by the assembler).
    Beq, Bne, BltU, BltS, BgeU, BgeS,
    Beqz,   ///< branch if rs1 == 0
    Bnez,   ///< branch if rs1 != 0
    Jmp,    ///< pc = imm
    Jal,    ///< rd = pc + 1; pc = imm
    Jr,     ///< pc = rs1

    // Atomic read-modify-write on the 64-bit word at [rs1].
    // These are the guest's synchronization operations.
    Cas,      ///< old = M[rs1]; if (old == rd) M[rs1] = rs2; rd = old
    FetchAdd, ///< old = M[rs1]; M[rs1] = old + rs2; rd = old
    Xchg,     ///< old = M[rs1]; M[rs1] = rs2; rd = old

    Syscall,  ///< trap to the simulated OS (ABI in vm/abi.hh)
    Halt,     ///< terminate the executing thread (exit code in r0)

    NumOpcodes,
};

/** One decoded guest instruction (fixed-width in-memory form). */
struct Instr
{
    Opcode op = Opcode::Nop;
    Reg rd = Reg::r0;
    Reg rs1 = Reg::r0;
    Reg rs2 = Reg::r0;
    std::int64_t imm = 0;
};

/** Human-readable mnemonic for an opcode. */
std::string_view opcodeName(Opcode op);

/** True for Cas/FetchAdd/Xchg: guest synchronization operations. */
inline bool
isAtomicOp(Opcode op)
{
    return op == Opcode::Cas || op == Opcode::FetchAdd ||
           op == Opcode::Xchg;
}

/** True for any instruction that reads or writes guest memory. */
inline bool
isMemOp(Opcode op)
{
    return (op >= Opcode::Ld8 && op <= Opcode::St64) || isAtomicOp(op);
}

/** Bytes touched by a memory instruction (atomics are 8). */
inline unsigned
memAccessSize(Opcode op)
{
    switch (op) {
      case Opcode::Ld8:
      case Opcode::St8:
        return 1;
      case Opcode::Ld16:
      case Opcode::St16:
        return 2;
      case Opcode::Ld32:
      case Opcode::St32:
        return 4;
      default:
        return 8;
    }
}

} // namespace dp

#endif // DP_VM_ISA_HH
