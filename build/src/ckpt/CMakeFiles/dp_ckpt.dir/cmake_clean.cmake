file(REMOVE_RECURSE
  "CMakeFiles/dp_ckpt.dir/checkpoint.cc.o"
  "CMakeFiles/dp_ckpt.dir/checkpoint.cc.o.d"
  "libdp_ckpt.a"
  "libdp_ckpt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dp_ckpt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
