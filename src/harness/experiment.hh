/**
 * @file
 * Experiment harness: one-call measurements the bench binaries share.
 *
 * Every number the benches print flows through here: native baseline
 * runs, DoublePlay record sessions with the pipeline-model overhead
 * computation, replay timings, and the comparison recorders.
 */

#ifndef DP_HARNESS_EXPERIMENT_HH
#define DP_HARNESS_EXPERIMENT_HH

#include <cstdint>
#include <string>

#include "baseline/baselines.hh"
#include "core/recorder.hh"
#include "replay/replayer.hh"
#include "timing/pipeline.hh"
#include "workloads/registry.hh"

namespace dp::harness
{

/** Knobs for one DoublePlay measurement. */
struct MeasureOptions
{
    std::uint32_t threads = 2;   ///< N worker CPUs
    std::uint32_t totalCpus = 4; ///< C machine CPUs (spare = C - N)
    std::uint32_t scale = 4;
    std::uint64_t seed = 1;
    Cycles epochLength = 250'000;
    bool enforceSyncOrder = true;
    bool keepCheckpoints = true;
    /** Outstanding-checkpoint bound fed to the pipeline model. */
    std::uint32_t maxInFlight = 0;
};

/** Everything a bench needs from one workload measurement. */
struct Measurement
{
    std::string workload;
    MeasureOptions opts;

    NativeResult native;
    RecorderStats stats;
    PipelineResult pipeline;
    bool recordOk = false;
    std::uint64_t recordExit = 0;

    /** Recorded-run completion relative to native (1.0 = no cost). */
    double slowdown = 0.0;
    /** slowdown - 1. */
    double overhead = 0.0;

    /// @name Log accounting
    /// @{
    std::uint64_t scheduleBytes = 0;
    std::uint64_t syscallBytes = 0;
    std::uint64_t injectableBytes = 0;
    std::uint64_t signalBytes = 0;
    std::uint64_t replayLogBytes = 0;
    std::uint64_t epochs = 0;
    /// @}

    /// @name Replay timings (filled by measureWithReplay)
    /// @{
    Cycles seqReplayCycles = 0;
    Cycles parReplayCycles = 0; ///< modeled makespan, N workers
    bool replayOk = false;
    /// @}
};

/** Run native + DoublePlay for one workload; no replay pass. */
Measurement measure(const workloads::Workload &w,
                    const MeasureOptions &opts);

/** measure() plus sequential and parallel replay passes. */
Measurement measureWithReplay(const workloads::Workload &w,
                              const MeasureOptions &opts);

/** One baseline-recorder measurement (overhead vs the same native). */
struct BaselineMeasurement
{
    std::string workload;
    double crewOverhead = 0.0;
    std::uint64_t crewLogBytes = 0;
    std::uint64_t crewEvents = 0;
    double valueOverhead = 0.0;
    std::uint64_t valueLogBytes = 0;
    std::uint64_t valueEvents = 0;
    Cycles nativeCycles = 0;
};

BaselineMeasurement measureBaselines(const workloads::Workload &w,
                                     const MeasureOptions &opts);

} // namespace dp::harness

#endif // DP_HARNESS_EXPERIMENT_HH
