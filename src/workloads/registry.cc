#include "workloads/registry.hh"

#include "workloads/factories.hh"

namespace dp::workloads
{

const std::vector<Workload> &
allWorkloads()
{
    static const std::vector<Workload> registry = {
        {"pbzip2", "pbzip2 (parallel compression)", "client",
         "block pool (atomic counter), independent blocks", makePbzip2},
        {"pfscan", "pfscan (parallel file scan)", "client",
         "chunk pool + lock-protected match list", makePfscan},
        {"aget", "aget (parallel download)", "client",
         "per-thread net streams + shared file", makeAget},
        {"apache", "Apache web server", "server",
         "locked request queue + futex condvar + net I/O", makeApache},
        {"mysql", "MySQL server", "server",
         "lock-striped hash table, read/write transactions",
         makeMysql},
        {"fft", "SPLASH-2 fft", "scientific",
         "barrier-phased butterflies, disjoint writes", makeFft},
        {"lu", "SPLASH-2 lu", "scientific",
         "barrier-phased elimination, pivot row read-shared", makeLu},
        {"radix", "SPLASH-2 radix", "scientific",
         "histogram/prefix/scatter with serial phase", makeRadix},
        {"ocean", "SPLASH-2 ocean", "scientific",
         "row-partitioned stencil, neighbour reads", makeOcean},
        {"water", "SPLASH-2 water", "scientific",
         "n-body all-read force phase, owner writes", makeWater},
    };
    return registry;
}

const Workload *
findWorkload(std::string_view name)
{
    for (const Workload &w : allWorkloads())
        if (w.name == name)
            return &w;
    return nullptr;
}

} // namespace dp::workloads
