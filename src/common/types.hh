/**
 * @file
 * Fundamental scalar types shared by every uniplay module.
 */

#ifndef DP_COMMON_TYPES_HH
#define DP_COMMON_TYPES_HH

#include <cstdint>

namespace dp
{

/** Guest virtual address (byte granularity, flat 64-bit space). */
using Addr = std::uint64_t;

/** Virtual time, measured in guest cycles. */
using Cycles = std::uint64_t;

/** Guest thread identifier; dense, assigned at spawn in creation order. */
using ThreadId = std::uint32_t;

/** Index of an epoch within a recording (0-based). */
using EpochId = std::uint32_t;

/** Simulated CPU index. */
using CpuId = std::uint32_t;

/** Sentinel for "no thread". */
inline constexpr ThreadId invalidThread = ~ThreadId{0};

} // namespace dp

#endif // DP_COMMON_TYPES_HH
