#include "os/multicpu_sim.hh"

#include "common/logging.hh"

namespace dp
{

MultiCpuSim::MultiCpuSim(Machine &m, SimOS &os, MpOptions opts,
                         MpHooks hooks)
    : m_(m), os_(os), interp_(m.program()), opts_(opts),
      hooks_(std::move(hooks)), rng_(opts.seed)
{
    dp_assert(opts_.cpus > 0, "need at least one CPU");
    cpus_.resize(opts_.cpus);
    queued_.resize(m_.threads.size(), 0);
    for (ThreadId t = 0; t < m_.threads.size(); ++t)
        enqueueIfRunnable(t);
}

void
MultiCpuSim::enqueueIfRunnable(ThreadId tid)
{
    if (tid >= queued_.size())
        queued_.resize(m_.threads.size(), 0);
    if (queued_[tid] || m_.thread(tid).state != RunState::Runnable)
        return;
    // Skip threads already on a CPU (woken threads are never on one,
    // but defensive against double-enqueue after preemption).
    for (const Cpu &c : cpus_)
        if (c.tid == tid)
            return;
    ready_.push_back(tid);
    queued_[tid] = 1;
}

void
MultiCpuSim::releaseCpu(Cpu &cpu)
{
    cpu.tid = invalidThread;
    cpu.sliceLeft = 0;
}

bool
MultiCpuSim::stepCpu(Cpu &cpu, CpuId cpu_id)
{
    const CostModel &cm = os_.costs();
    ThreadId tid = cpu.tid;
    ThreadContext &tc = m_.thread(tid);

    if (tc.state != RunState::Runnable) {
        // Woken-and-exited elsewhere or bookkeeping race; drop it.
        releaseCpu(cpu);
        return false;
    }

    if (tc.signalDeliverable()) {
        SignalEvent e{tid, tc.retired, 0};
        e.sig = tc.deliverSignal();
        cpu.busyUntil = m_.now + cm.syscallCycles;
        if (hooks_.onSignal)
            hooks_.onSignal(e);
        return true;
    }

    Opcode op = interp_.nextOpcode(tc);

    if (op == Opcode::Syscall) {
        const std::optional<SyncKey> key =
            syscallSyncKey(tc.reg(Reg::r0), tc.reg(Reg::r1));
        // The thread-parallel run never injects: it is the execution
        // that *defines* the nondeterministic results. Note: dispatch
        // may reallocate the thread table (Spawn); `tc` is dead after
        // this call — re-read through m_.thread(tid).
        SimOS::Outcome out = os_.dispatch(m_, tid);
        ++stats_.syscalls;
        Cycles busy = out.cost;
        if (opts_.record)
            busy += cm.syscallLogCycles;
        cpu.busyUntil = m_.now + busy;
        if (hooks_.onSync && key)
            hooks_.onSync(tid, SyncKind::Syscall, *key);
        if (!out.blocked && hooks_.onSyscall)
            hooks_.onSyscall(tid, out.sys, out.value, out.injectable);
        for (ThreadId w : out.woken)
            enqueueIfRunnable(w);
        if (out.blocked ||
            m_.thread(tid).state == RunState::Exited) {
            releaseCpu(cpu);
        } else {
            ++stats_.instrs;
            if (out.sys == Sys::Yield && !ready_.empty()) {
                ThreadId next = ready_.front();
                ready_.pop_front();
                queued_[next] = 0;
                cpu.tid = next; // reassign before requeueing the
                cpu.sliceLeft = opts_.quantum; // yielder, or the
                ++stats_.switches; // on-a-cpu check rejects it
                enqueueIfRunnable(tid);
                return true;
            }
        }
        return true;
    }

    if (hooks_.onMemAccess && isMemOp(op)) {
        auto [addr, is_write] = interp_.nextMemAccess(tc);
        Cycles penalty = hooks_.onMemAccess(tid, cpu_id, addr, is_write);
        if (penalty > 0)
            cpu.busyUntil = std::max<Cycles>(cpu.busyUntil,
                                             m_.now + penalty);
    }

    bool atomic = isAtomicOp(op);
    if (atomic) {
        if (hooks_.onSync)
            hooks_.onSync(tid, SyncKind::Atomic,
                          interp_.nextAtomicAddr(tc));
        if (opts_.record)
            cpu.busyUntil = m_.now + cm.syncLogCycles;
        ++stats_.syncOps;
    }

    StepKind k = interp_.step(tc, m_.mem);
    ++stats_.instrs;
    if (cm.instrCycles > 1)
        cpu.busyUntil =
            std::max<Cycles>(cpu.busyUntil,
                             m_.now + cm.instrCycles - 1);

    if (k == StepKind::Halted || k == StepKind::Fault)
        releaseCpu(cpu);
    return true;
}

StopReason
MultiCpuSim::run(Cycles until_time)
{
    while (m_.now < until_time) {
        if (stats_.instrs >= opts_.fuel)
            return StopReason::FuelExhausted;

        bool any_active = false;
        for (Cpu &cpu : cpus_) {
            if (cpu.busyUntil > m_.now) {
                any_active = true;
                continue;
            }
            if (cpu.tid == invalidThread) {
                if (ready_.empty())
                    continue;
                cpu.tid = ready_.front();
                ready_.pop_front();
                queued_[cpu.tid] = 0;
                cpu.sliceLeft = opts_.quantum;
                ++stats_.switches;
            }
            any_active = true;

            // Seeded jitter decorrelates the per-CPU streams so race
            // outcomes vary across seeds rather than being locked to
            // one alignment.
            if (opts_.jitterNum &&
                rng_.chance(opts_.jitterNum, opts_.jitterDen))
                continue;

            if (!stepCpu(cpu, static_cast<CpuId>(&cpu - cpus_.data())))
                continue;

            if (cpu.tid != invalidThread && cpu.sliceLeft > 0) {
                if (--cpu.sliceLeft == 0 && !ready_.empty()) {
                    ThreadId out = cpu.tid;
                    releaseCpu(cpu);
                    enqueueIfRunnable(out);
                }
            }
        }

        ++m_.now;
        ++stats_.cycles;

        if (!any_active) {
            if (m_.allExited())
                return StopReason::AllExited;
            if (ready_.empty() && m_.runnableCount() == 0)
                return StopReason::Deadlock;
            // Otherwise runnable work exists but every CPU stalled on
            // jitter this tick; keep going.
        }
    }
    return StopReason::TimeLimit;
}

} // namespace dp
