/**
 * @file
 * Shared conventions and emit helpers for the benchmark workloads.
 *
 * All workloads follow one register discipline so the asmlib helpers
 * compose safely: r0..r3 are syscall/scratch registers any helper may
 * clobber, r4..r7 are short-lived temporaries, and r8..r15 hold a
 * worker's long-lived state.
 */

#ifndef DP_WORKLOADS_WL_COMMON_HH
#define DP_WORKLOADS_WL_COMMON_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "vm/asmlib.hh"
#include "vm/assembler.hh"

namespace dp::workloads
{

/// @name Shared guest memory map
/// @{
inline constexpr Addr wlLockBase = 0x1000;   ///< lock stripes, 8 B each
inline constexpr Addr wlBarrier = 0x2000;    ///< [count][generation]
inline constexpr Addr wlTidArray = 0x3000;   ///< spawned thread ids
inline constexpr Addr wlGlobals = 0x4000;    ///< shared counters
inline constexpr Addr wlQueue = 0x5000;      ///< request ring buffer
inline constexpr Addr wlInput = 0x100000;    ///< input data region
inline constexpr Addr wlOutput = 0x800000;   ///< output data region
inline constexpr Addr wlPerThread = 0x1000000; ///< per-thread blocks
inline constexpr Addr wlPerThreadStride = 0x10000;
/// @}

/** Well-known global counter slots (offsets from wlGlobals). */
inline constexpr std::int64_t gNextWork = 0x00;  ///< work-stealing ctr
inline constexpr std::int64_t gResult = 0x08;    ///< aggregated result
inline constexpr std::int64_t gResult2 = 0x10;   ///< secondary result
inline constexpr std::int64_t gQueueHead = 0x18;
inline constexpr std::int64_t gQueueTail = 0x20;

/**
 * Emit the standard main-thread scaffold: spawn @p nthreads workers at
 * @p worker (arg = worker index), join them all in order. On return
 * the assembler is positioned right after the joins; the caller emits
 * the epilogue (result aggregation, write, exit) and then the worker
 * body. Clobbers r0..r4, r10..r12 in main.
 */
void emitSpawnJoin(Assembler &a, std::uint64_t nthreads, Label worker);

/** Just the spawn half of emitSpawnJoin (producer mains that do work
 *  between spawning and joining). Clobbers r0..r4, r10..r12. */
void emitSpawnLoop(Assembler &a, std::uint64_t nthreads, Label worker);

/** Just the join half. Clobbers r0..r4, r10..r12. */
void emitJoinLoop(Assembler &a, std::uint64_t nthreads);

/**
 * Emit main's standard epilogue: write the 8-byte global at
 * wlGlobals + @p result_off to stdout and exit with its value.
 */
void emitWriteGlobalAndExit(Assembler &a, std::int64_t result_off);

/**
 * Advance a per-thread LCG whose state lives in @p state and leave
 * well-mixed bits in @p out (state and out must differ; neither may
 * be r0..r3).
 */
void emitRngNext(Assembler &a, Reg state, Reg out);

/** Compute this worker's scratch block base into @p out from the
 *  worker index in @p idx. */
void emitThreadBase(Assembler &a, Reg idx, Reg out);

/**
 * Emit the RLE compression of one @p block_bytes-byte block.
 * Expects r10 = input base, r11 = output base; leaves the compressed
 * length in r15. Clobbers r4, r5, r12..r15.
 */
void emitRleBlock(Assembler &a, std::uint64_t block_bytes);

/** Host-side mirror of emitRleBlock over consecutive blocks: total
 *  compressed length. */
std::uint64_t rleLength(std::span<const std::uint8_t> bytes,
                        std::size_t block);

/** Host-side: deterministic input bytes for workload data segments. */
std::vector<std::uint8_t> makeInputBytes(std::size_t n,
                                         std::uint64_t seed,
                                         bool compressible);

/** Host-side: input filled with u64 values mixed from @p seed. */
std::vector<std::uint64_t> makeInputWords(std::size_t n,
                                          std::uint64_t seed);

} // namespace dp::workloads

#endif // DP_WORKLOADS_WL_COMMON_HH
