/**
 * @file
 * Robustness property: a tampered recording must never silently
 * verify. Every mutation of an artifact either fails to parse
 * (panic, checked via death tests elsewhere) or parses into a
 * recording whose replay fails verification — it can never produce
 * ok=true with a different execution.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/recorder.hh"
#include "replay/recording_io.hh"
#include "replay/replayer.hh"
#include "testprogs.hh"

#include <csetjmp>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

namespace dp
{
namespace
{

std::vector<std::uint8_t>
makeArtifact(std::vector<SectionMark> *marks = nullptr)
{
    GuestProgram prog = testprogs::lockedCounter(2, 200);
    RecorderOptions opts;
    opts.epochLength = 15'000;
    UniparallelRecorder rec(prog, {}, opts);
    RecordOutcome out = rec.record();
    EXPECT_TRUE(out.ok);
    return serializeRecording(out.recording, marks);
}

/**
 * Deserialize+replay a (possibly corrupt) artifact in a forked child
 * so dp_panic/dp_fatal aborts are contained. Returns:
 *  0 = replay verified, 1 = replay failed verification,
 *  2 = parser rejected the artifact (process died).
 */
int
probeArtifact(const std::vector<std::uint8_t> &bytes)
{
    pid_t pid = fork();
    if (pid == 0) {
        // Child: silence the panic messages.
        (void)freopen("/dev/null", "w", stderr);
        LoadedRecording loaded = deserializeRecording(bytes);
        Replayer rep(*loaded.recording);
        _exit(rep.replaySequential().ok ? 0 : 1);
    }
    int status = 0;
    waitpid(pid, &status, 0);
    if (WIFEXITED(status))
        return WEXITSTATUS(status);
    return 2;
}

TEST(Corruption, PristineArtifactVerifies)
{
    std::vector<std::uint8_t> bytes = makeArtifact();
    EXPECT_EQ(probeArtifact(bytes), 0);
}

TEST(Corruption, SingleByteFlipsNeverSilentlyVerify)
{
    std::vector<std::uint8_t> bytes = makeArtifact();
    Rng rng(77);
    int rejected = 0, failed_verify = 0, benign = 0;
    for (int round = 0; round < 60; ++round) {
        std::vector<std::uint8_t> mutant = bytes;
        // Flip a byte past the 8-byte header (header flips are the
        // trivially-rejected case).
        std::size_t pos = 8 + rng.below(mutant.size() - 8);
        std::uint8_t flip =
            static_cast<std::uint8_t>(1 + rng.below(255));
        mutant[pos] ^= flip;
        switch (probeArtifact(mutant)) {
          case 0:
            // A flip that still verifies may only have touched
            // verification-irrelevant metadata (timing fields,
            // diagnostic targets): the replay-relevant content must
            // be untouched.
            {
                LoadedRecording a = deserializeRecording(bytes);
                LoadedRecording b = deserializeRecording(mutant);
                ASSERT_EQ(a.recording->epochs.size(),
                          b.recording->epochs.size());
                for (std::size_t i = 0;
                     i < a.recording->epochs.size(); ++i) {
                    const EpochRecord &x = a.recording->epochs[i];
                    const EpochRecord &y = b.recording->epochs[i];
                    EXPECT_TRUE(x.schedule == y.schedule &&
                                x.syscalls == y.syscalls &&
                                x.signals == y.signals &&
                                x.endStateHash == y.endStateHash)
                        << "byte " << pos << " flip 0x" << std::hex
                        << int(flip)
                        << " changed replay content but verified";
                }
                EXPECT_EQ(a.recording->finalStateHash,
                          b.recording->finalStateHash);
                // Note: the program image itself may differ in
                // *never-executed* bytes (its name, dead code) and
                // still verify — any flip in executed code diverges
                // the replay and fails the digest checks above.
                ++benign;
            }
            break;
          case 1:
            ++failed_verify;
            break;
          default:
            ++rejected;
        }
    }
    // The sweep must exercise both failure modes.
    EXPECT_GT(rejected + failed_verify, 0);
    SUCCEED() << rejected << " rejected, " << failed_verify
              << " failed verification, " << benign << " benign";
}

TEST(Corruption, TruncationsAreRejectedOrFail)
{
    std::vector<std::uint8_t> bytes = makeArtifact();
    Rng rng(99);
    for (int round = 0; round < 12; ++round) {
        std::size_t keep = 8 + rng.below(bytes.size() - 8);
        std::vector<std::uint8_t> mutant(bytes.begin(),
                                         bytes.begin() + keep);
        EXPECT_NE(probeArtifact(mutant), 0)
            << "truncation to " << keep << " bytes verified";
    }
}

TEST(Corruption, TruncationAtEverySectionBoundaryFailsClosed)
{
    // Cut the artifact exactly at, one byte before, and one byte
    // after every structural boundary: the fail-closed loader must
    // return a structured error for each — in-process, no death
    // tests, no UB.
    std::vector<SectionMark> marks;
    std::vector<std::uint8_t> bytes = makeArtifact(&marks);
    ASSERT_GT(marks.size(), 4u);
    for (const SectionMark &m : marks) {
        for (std::size_t delta : {std::size_t{0}, std::size_t{1},
                                  ~std::size_t{0}}) {
            const std::size_t keep = m.offset + delta; // ~0 = -1
            if (keep == 0 || keep >= bytes.size())
                continue;
            std::vector<std::uint8_t> cut(bytes.begin(),
                                          bytes.begin() + keep);
            RecordingLoadResult r = loadRecording(cut);
            EXPECT_FALSE(r.ok())
                << "cut at section '" << m.name << "' + " << delta
                << " (" << keep << " bytes) loaded";
            EXPECT_EQ(r.recording, nullptr);
            EXPECT_NE(r.error, LoadError::None);
            EXPECT_FALSE(r.detail.empty()) << m.name;
        }
    }
    // The untouched artifact still loads (the marks are accurate).
    EXPECT_TRUE(loadRecording(bytes).ok());
}

TEST(Corruption, RandomFlipsLoadInProcessWithStructuredErrors)
{
    // The fail-closed loader confronts every single-byte flip
    // in-process: it must never crash, assert, or allocate wildly,
    // and every rejection must carry a meaningful error code.
    std::vector<std::uint8_t> bytes = makeArtifact();
    Rng rng(4242);
    int rejected = 0, parsed = 0;
    for (int round = 0; round < 200; ++round) {
        std::vector<std::uint8_t> mutant = bytes;
        std::size_t pos = rng.below(mutant.size());
        mutant[pos] ^=
            static_cast<std::uint8_t>(1 + rng.below(255));
        RecordingLoadResult r = loadRecording(mutant);
        if (r.ok()) {
            ASSERT_NE(r.recording, nullptr);
            ++parsed;
            continue;
        }
        EXPECT_EQ(r.recording, nullptr);
        EXPECT_NE(r.error, LoadError::None);
        EXPECT_STRNE(loadErrorName(r.error), "ok");
        EXPECT_FALSE(r.detail.empty())
            << "flip at " << pos << " rejected without detail";
        EXPECT_LE(r.errorOffset, mutant.size())
            << "error offset points outside the artifact";
        ++rejected;
    }
    // The sweep must exercise the rejection path heavily; parse-valid
    // flips (timing metadata, program bytes) are legal and handled by
    // the verification-level sweep above.
    EXPECT_GT(rejected, 0);
    SUCCEED() << rejected << " rejected, " << parsed << " parsed";
}

TEST(Corruption, ParallelAndSequentialAgreeOnCorruptFinalHash)
{
    // Regression guard: parallel replay used to skip the
    // finalStateHash check entirely (it verified per-epoch digests
    // only), so a corrupted final hash failed sequential replay but
    // silently verified in parallel. Both modes must return the same
    // verdict on the same artifact.
    GuestProgram prog = testprogs::lockedCounter(2, 200);
    RecorderOptions opts;
    opts.epochLength = 15'000;
    UniparallelRecorder rec(prog, {}, opts);
    RecordOutcome out = rec.record();
    ASSERT_TRUE(out.ok);
    ASSERT_TRUE(out.recording.hasCheckpoints());

    {
        Replayer rep(out.recording);
        ReplayResult seq = rep.replaySequential();
        ReplayResult par = rep.replayParallel(2);
        EXPECT_TRUE(seq.ok);
        EXPECT_TRUE(par.ok);
        EXPECT_EQ(seq.stdoutBytes, par.stdoutBytes)
            << "parallel replay must reconstruct the same output";
    }

    out.recording.finalStateHash ^= 0x1ull << 17;
    Replayer rep(out.recording);
    ReplayResult seq = rep.replaySequential();
    ReplayResult par = rep.replayParallel(2);
    EXPECT_FALSE(seq.ok);
    EXPECT_FALSE(par.ok)
        << "parallel replay ignored the corrupted finalStateHash";
}

TEST(Corruption, CrossRecordingSplicesFail)
{
    // Epochs from a different execution must not verify.
    GuestProgram prog_a = testprogs::lockedCounter(2, 200);
    GuestProgram prog_b = testprogs::lockedCounter(2, 300);
    RecorderOptions opts;
    opts.epochLength = 15'000;
    UniparallelRecorder rec_a(prog_a, {}, opts);
    UniparallelRecorder rec_b(prog_b, {}, opts);
    RecordOutcome a = rec_a.record();
    RecordOutcome b = rec_b.record();
    ASSERT_TRUE(a.ok);
    ASSERT_TRUE(b.ok);
    ASSERT_GT(a.recording.epochs.size(), 1u);
    ASSERT_GT(b.recording.epochs.size(), 1u);

    a.recording.epochs[1] = b.recording.epochs[1];
    Replayer rep(a.recording);
    EXPECT_FALSE(rep.replaySequential().ok);
}

} // namespace
} // namespace dp
