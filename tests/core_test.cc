/**
 * @file
 * Integration tests for the uniparallel recorder: record, validate,
 * divergence handling, and the core invariants from DESIGN.md §6.
 */

#include <gtest/gtest.h>

#include "core/divergence.hh"
#include "core/recorder.hh"
#include "os/multicpu_sim.hh"
#include "os/simos.hh"
#include "replay/replayer.hh"
#include "testprogs.hh"

namespace dp
{
namespace
{

/** Plain native run on the multiprocessor sim; returns the machine. */
Machine
runNative(const GuestProgram &prog, const MachineConfig &cfg,
          CpuId cpus, std::uint64_t seed)
{
    Machine m(prog, cfg);
    SimOS os;
    MpOptions opts;
    opts.cpus = cpus;
    opts.seed = seed;
    MultiCpuSim sim(m, os, opts, {});
    StopReason r = sim.run(~Cycles{0} >> 1);
    EXPECT_EQ(r, StopReason::AllExited);
    return m;
}

TEST(Recorder, LockedCounterRecordsWithoutRollback)
{
    GuestProgram prog = testprogs::lockedCounter(3, 200);
    RecorderOptions opts;
    opts.workerCpus = 2;
    opts.epochLength = 20'000;
    UniparallelRecorder rec(prog, {}, opts);
    RecordOutcome out = rec.record();

    ASSERT_TRUE(out.ok);
    EXPECT_EQ(out.recording.stats.rollbacks, 0u)
        << "a data-race-free program must never diverge";
    EXPECT_GT(out.recording.epochs.size(), 1u);
    EXPECT_EQ(out.mainExitCode, 3u * 200u);
}

TEST(Recorder, LockedCounterMatchesNativeResult)
{
    GuestProgram prog = testprogs::lockedCounter(2, 100);
    Machine native = runNative(prog, {}, 2, 42);
    EXPECT_EQ(native.threads[0].exitCode, 200u);

    UniparallelRecorder rec(prog, {}, {});
    RecordOutcome out = rec.record();
    ASSERT_TRUE(out.ok);
    EXPECT_EQ(out.mainExitCode, 200u);
}

TEST(Recorder, AtomicCounterNeverDiverges)
{
    // All cross-thread communication is atomic: any interleaving is
    // fully captured by the sync order, so no rollbacks.
    GuestProgram prog = testprogs::atomicCounter(4, 300);
    RecorderOptions opts;
    opts.workerCpus = 4;
    opts.epochLength = 15'000;
    UniparallelRecorder rec(prog, {}, opts);
    RecordOutcome out = rec.record();
    ASSERT_TRUE(out.ok);
    EXPECT_EQ(out.recording.stats.rollbacks, 0u);
    EXPECT_EQ(out.mainExitCode, 4u * 300u);
}

TEST(Recorder, BarrierProgramRecordsCleanly)
{
    GuestProgram prog = testprogs::barrierPhases(3, 8);
    RecorderOptions opts;
    opts.workerCpus = 3;
    opts.epochLength = 10'000;
    UniparallelRecorder rec(prog, {}, opts);
    RecordOutcome out = rec.record();
    ASSERT_TRUE(out.ok);
    EXPECT_EQ(out.recording.stats.rollbacks, 0u);
    // Each of 3 workers sums a neighbour's slot over 8 phases; slot
    // values run 1..8, so each accumulator is 36, total 108.
    EXPECT_EQ(out.mainExitCode, 108u);
}

TEST(Recorder, SyscallStormRecordsInjectables)
{
    GuestProgram prog = testprogs::syscallStorm(2'000);
    MachineConfig cfg;
    cfg.netBytesPerConn = 4'096;
    cfg.netCyclesPerByte = 3;
    RecorderOptions opts;
    opts.workerCpus = 1;
    opts.epochLength = 30'000;
    UniparallelRecorder rec(prog, cfg, opts);
    RecordOutcome out = rec.record();
    ASSERT_TRUE(out.ok);
    EXPECT_EQ(out.recording.stats.rollbacks, 0u);

    std::size_t injectables = 0;
    for (const auto &e : out.recording.epochs)
        for (const auto &r : e.syscalls.records())
            injectables += r.injectable;
    EXPECT_GT(injectables, 0u)
        << "GetTime/NetRecv results must be captured";
}

TEST(Recorder, RacyCounterDivergesAndRecovers)
{
    // With a real lost-update race and enough contention, at least
    // one epoch's single-CPU re-execution should disagree with the
    // multiprocessor speculation across a spread of seeds.
    GuestProgram prog = testprogs::racyCounter(4, 2'000);
    bool saw_rollback = false;
    for (std::uint64_t seed = 1; seed <= 5 && !saw_rollback; ++seed) {
        RecorderOptions opts;
        opts.workerCpus = 4;
        opts.epochLength = 8'000;
        opts.seed = seed;
        UniparallelRecorder rec(prog, {}, opts);
        RecordOutcome out = rec.record();
        ASSERT_TRUE(out.ok) << "rollback must recover, not wedge";
        saw_rollback = out.recording.stats.rollbacks > 0;

        // Whatever happened, the recording must replay exactly.
        Replayer rep(out.recording);
        ReplayResult r = rep.replaySequential();
        EXPECT_TRUE(r.ok) << "failed at epoch " << r.firstFailedEpoch;
    }
    EXPECT_TRUE(saw_rollback)
        << "racy program never diverged across 5 seeds";
}

TEST(Recorder, StdoutCommitLengthsAreMonotonic)
{
    GuestProgram prog = testprogs::lockedCounter(2, 500);
    RecorderOptions opts;
    opts.epochLength = 25'000;
    UniparallelRecorder rec(prog, {}, opts);
    RecordOutcome out = rec.record();
    ASSERT_TRUE(out.ok);
    std::uint64_t prev = 0;
    for (const auto &e : out.recording.epochs) {
        EXPECT_GE(e.stdoutLen, prev);
        prev = e.stdoutLen;
    }
    EXPECT_EQ(prev, 8u) << "program writes one 8-byte record";
}

TEST(Recorder, EnforcementAblationStillRecovers)
{
    // Without sync-order enforcement even race-free programs can
    // diverge (lock acquisition order differs); rollbacks must still
    // converge to a valid recording.
    GuestProgram prog = testprogs::lockedCounter(3, 400);
    RecorderOptions opts;
    opts.workerCpus = 3;
    opts.epochLength = 10'000;
    opts.enforceSyncOrder = false;
    UniparallelRecorder rec(prog, {}, opts);
    RecordOutcome out = rec.record();
    ASSERT_TRUE(out.ok);
    EXPECT_EQ(out.mainExitCode, 3u * 400u);

    Replayer rep(out.recording);
    EXPECT_TRUE(rep.replaySequential().ok);
}

TEST(Divergence, ReportPinpointsDifferences)
{
    GuestProgram prog = testprogs::arithLoop(10);
    Machine a(prog, {});
    Machine b(prog, {});
    b.mem.write64(0x5000, 1234);
    b.threads[0].reg(Reg::r7) = 9;

    Checkpoint cb = Checkpoint::capture(b);
    EXPECT_FALSE(DivergenceDetector::matches(a, cb));
    DivergenceReport rep = DivergenceDetector::report(a, cb);
    EXPECT_FALSE(rep.equal);
    ASSERT_EQ(rep.pages.size(), 1u);
    EXPECT_EQ(rep.pages[0], 0x5000u >> 12);
    ASSERT_EQ(rep.threads.size(), 1u);
    EXPECT_EQ(rep.threads[0], 0u);
    EXPECT_FALSE(rep.osDiffers);
}

TEST(Divergence, IdenticalStatesMatch)
{
    GuestProgram prog = testprogs::arithLoop(10);
    Machine a(prog, {});
    Machine b(prog, {});
    Checkpoint cb = Checkpoint::capture(b);
    EXPECT_TRUE(DivergenceDetector::matches(a, cb));
    EXPECT_TRUE(DivergenceDetector::report(a, cb).equal);
}

// Untrusted option values (CLI flags, config files) must fail closed
// with a structured error naming the field, not divide by zero or
// spin forever. One case per guarded field.
TEST(RecorderOptions, EachInvalidFieldIsRejectedStructurally)
{
    EXPECT_EQ(validateRecorderOptions({}), OptionError::None);

    auto check = [](auto tweak, OptionError want) {
        RecorderOptions o;
        tweak(o);
        EXPECT_EQ(validateRecorderOptions(o), want)
            << optionErrorName(want);
    };
    check([](RecorderOptions &o) { o.workerCpus = 0; },
          OptionError::ZeroWorkerCpus);
    check([](RecorderOptions &o) { o.epochLength = 0; },
          OptionError::ZeroEpochLength);
    check([](RecorderOptions &o) { o.quantum = 0; },
          OptionError::ZeroQuantum);
    check([](RecorderOptions &o) { o.jitterDen = 0; },
          OptionError::ZeroJitterDen);
    check([](RecorderOptions &o) { o.mpQuantum = 0; },
          OptionError::ZeroMpQuantum);
    check(
        [](RecorderOptions &o) {
            o.hostWorkers = 2;
            o.maxInFlight = 0;
        },
        OptionError::ZeroMaxInFlight);
    // maxInFlight only gates the parallel pipeline; the synchronous
    // reference mode never consults it.
    check([](RecorderOptions &o) { o.maxInFlight = 0; },
          OptionError::None);
}

TEST(RecorderOptions, InvalidOptionsFailTheSessionBeforeItStarts)
{
    GuestProgram prog = testprogs::lockedCounter(2, 50);
    RecorderOptions opts;
    opts.epochLength = 0;
    UniparallelRecorder rec(prog, {}, opts);
    RecordOutcome out = rec.record();
    EXPECT_FALSE(out.ok);
    EXPECT_EQ(out.optionError, OptionError::ZeroEpochLength);
    EXPECT_TRUE(out.recording.epochs.empty());
    EXPECT_EQ(out.tpReason, StopReason::Stalled);
}

} // namespace
} // namespace dp
