/**
 * @file
 * Workload validation: every registered workload must (a) run to
 * completion natively with its expected result, (b) record under
 * uniparallelism, and (c) replay exactly. Parameterized over the
 * registry so new workloads are covered automatically.
 */

#include <gtest/gtest.h>

#include "baseline/baselines.hh"
#include "core/recorder.hh"
#include "replay/replayer.hh"
#include "workloads/registry.hh"

namespace dp
{
namespace
{

using workloads::allWorkloads;
using workloads::Workload;
using workloads::WorkloadBundle;
using workloads::WorkloadParams;

class WorkloadSuite : public ::testing::TestWithParam<Workload>
{};

TEST_P(WorkloadSuite, NativeRunProducesExpectedResult)
{
    const Workload &w = GetParam();
    WorkloadParams params{.threads = 2, .scale = 1};
    WorkloadBundle b = w.make(params);

    NativeResult res =
        runNativeBaseline(b.program, b.config, 2, /*seed=*/3);
    ASSERT_EQ(res.reason, StopReason::AllExited) << w.name;
    if (b.expectedExit != 0) {
        EXPECT_EQ(res.exitCode, b.expectedExit) << w.name;
    }
    EXPECT_GT(res.instrs, 1'000u) << w.name << " does trivial work";
    EXPECT_EQ(res.stdoutLen, 8u) << w.name;
}

TEST_P(WorkloadSuite, NativeResultIsThreadCountInvariant)
{
    const Workload &w = GetParam();
    WorkloadBundle two = w.make({.threads = 2, .scale = 1});
    WorkloadBundle four = w.make({.threads = 4, .scale = 1});
    if (two.expectedExit == 0)
        GTEST_SKIP() << w.name << " has schedule-dependent results";
    EXPECT_EQ(two.expectedExit, four.expectedExit)
        << w.name << ": total work must not depend on thread count";

    NativeResult r4 =
        runNativeBaseline(four.program, four.config, 4, 11);
    ASSERT_EQ(r4.reason, StopReason::AllExited);
    EXPECT_EQ(r4.exitCode, four.expectedExit);
}

TEST_P(WorkloadSuite, RecordsAndReplays)
{
    const Workload &w = GetParam();
    WorkloadParams params{.threads = 2, .scale = 1};
    WorkloadBundle b = w.make(params);

    RecorderOptions opts;
    opts.workerCpus = 2;
    opts.epochLength = 60'000;
    UniparallelRecorder rec(b.program, b.config, opts);
    RecordOutcome out = rec.record();
    ASSERT_TRUE(out.ok) << w.name << ": "
                        << stopReasonName(out.tpReason);
    if (b.expectedExit != 0) {
        EXPECT_EQ(out.mainExitCode, b.expectedExit) << w.name;
    }
    EXPECT_EQ(out.recording.stats.rollbacks, 0u)
        << w.name << " is data-race-free; rollbacks indicate a "
        << "recorder correctness bug";

    Replayer rep(out.recording);
    ReplayResult r = rep.replaySequential();
    EXPECT_TRUE(r.ok) << w.name << " failed at epoch "
                      << r.firstFailedEpoch;
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadSuite, ::testing::ValuesIn(allWorkloads()),
    [](const ::testing::TestParamInfo<Workload> &param_info) {
        return param_info.param.name;
    });

TEST(WorkloadRegistry, CataloguesTenWorkloads)
{
    EXPECT_EQ(allWorkloads().size(), 10u);
    EXPECT_NE(workloads::findWorkload("pbzip2"), nullptr);
    EXPECT_NE(workloads::findWorkload("water"), nullptr);
    EXPECT_EQ(workloads::findWorkload("nonesuch"), nullptr);
}

TEST(WorkloadRegistry, CategoriesMatchThePaperMix)
{
    std::size_t client = 0, server = 0, scientific = 0;
    for (const Workload &w : allWorkloads()) {
        client += w.category == "client";
        server += w.category == "server";
        scientific += w.category == "scientific";
    }
    EXPECT_EQ(client, 3u);
    EXPECT_EQ(server, 2u);
    EXPECT_EQ(scientific, 5u);
}

} // namespace
} // namespace dp
