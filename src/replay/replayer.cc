#include "replay/replayer.hh"

#include <algorithm>
#include <atomic>
#include <thread>

#include "common/logging.hh"
#include "os/simos.hh"
#include "os/uni_runner.hh"

namespace dp
{

bool
replayEpochOnMachine(Machine &m, const EpochRecord &epoch,
                     const CostModel &costs, Cycles &cycles,
                     std::uint64_t &instrs,
                     const ReplayObserver *observer)
{
    SimOS os(costs);

    std::size_t seg_cursor = 0;
    std::size_t rec_cursor = 0;
    std::size_t inject_cursor = 0;
    bool syscall_mismatch = false;

    // Pre-extract the injectable subset in order.
    std::vector<const SyscallRecord *> injectables;
    for (const SyscallRecord &r : epoch.syscalls.records())
        if (r.injectable)
            injectables.push_back(&r);

    UniHooks hooks;
    hooks.nextSegment = [&]() -> std::optional<ScheduleSegment> {
        if (seg_cursor >= epoch.schedule.segments().size())
            return std::nullopt;
        return epoch.schedule.segments()[seg_cursor++];
    };
    hooks.injectSyscall =
        [&](ThreadId tid, Sys sys) -> std::optional<std::uint64_t> {
        if (inject_cursor >= injectables.size()) {
            syscall_mismatch = true;
            return std::nullopt;
        }
        const SyscallRecord &r = *injectables[inject_cursor];
        if (r.tid != tid || r.sys != sys) {
            syscall_mismatch = true;
            return std::nullopt;
        }
        ++inject_cursor;
        return r.value;
    };
    hooks.onSyscall = [&](ThreadId tid, Sys sys, std::uint64_t value,
                          bool injectable) {
        // Deterministic calls re-execute; every completion must match
        // the recorded stream exactly (an end-to-end integrity check).
        const auto &recs = epoch.syscalls.records();
        if (rec_cursor >= recs.size()) {
            syscall_mismatch = true;
            return;
        }
        const SyscallRecord &r = recs[rec_cursor++];
        if (r.tid != tid || r.sys != sys || r.value != value ||
            r.injectable != injectable)
            syscall_mismatch = true;
    };

    if (observer) {
        hooks.onMemAccess = observer->onMemAccess;
        hooks.onSync = observer->onSync;
        hooks.onWake = observer->onWake;
        if (observer->onSyscall) {
            auto validate = hooks.onSyscall;
            auto observe = observer->onSyscall;
            hooks.onSyscall = [validate, observe](
                                  ThreadId tid, Sys sys,
                                  std::uint64_t value,
                                  bool injectable) {
                validate(tid, sys, value, injectable);
                observe(tid, sys, value, injectable);
            };
        }
    }

    UniOptions opts;
    opts.fuel = epoch.epInstrs + m.threads.size() + 16;
    opts.planSignals = true;
    opts.signalPlan = epoch.signals.events();

    UniRunner runner(m, os, std::move(opts), std::move(hooks));
    StopReason reason = runner.run();
    cycles += runner.stats().cycles;
    instrs += runner.stats().instrs;

    if (reason != StopReason::ScheduleEnded) {
        dp_warn("epoch replay stopped early: ", stopReasonName(reason));
        return false;
    }
    if (syscall_mismatch) {
        dp_warn("epoch replay: syscall stream mismatch");
        return false;
    }
    if (rec_cursor != epoch.syscalls.records().size()) {
        dp_warn("epoch replay: unconsumed syscall records");
        return false;
    }
    return m.stateHash() == epoch.endStateHash;
}

bool
Replayer::replayEpochOn(Machine &m, const EpochRecord &epoch,
                        Cycles &cycles, std::uint64_t &instrs,
                        const ReplayObserver *observer) const
{
    return replayEpochOnMachine(m, epoch, costs_, cycles, instrs,
                                observer);
}

ReplayResult
Replayer::replaySequential(const ReplayObserver *observer) const
{
    ReplayResult res;
    Machine m(rec_->program(), rec_->config());

    for (std::uint32_t i = 0; i < rec_->epochs.size(); ++i) {
        if (observer && observer->onEpochStart)
            observer->onEpochStart(i);
        if (!replayEpochOn(m, rec_->epochs[i], res.replayCycles,
                           res.instrs, observer)) {
            res.firstFailedEpoch = i;
            return res;
        }
        ++res.epochsVerified;
    }
    res.ok = res.epochsVerified == rec_->epochs.size() &&
             m.stateHash() == rec_->finalStateHash;
    res.stdoutBytes = m.stdoutBytes();
    return res;
}

ReplayResult
Replayer::replayParallel(unsigned host_threads) const
{
    ReplayResult res;
    if (!rec_->hasCheckpoints()) {
        dp_warn("parallel replay requires retained checkpoints");
        return res;
    }
    host_threads = std::max(1u, host_threads);

    const auto n = static_cast<std::uint32_t>(rec_->epochs.size());
    std::vector<std::uint8_t> ok(n, 0);
    std::vector<Cycles> cycles(n, 0);
    std::vector<std::uint64_t> instrs(n, 0);
    std::atomic<std::uint32_t> next{0};

    auto worker = [&]() {
        for (;;) {
            std::uint32_t i = next.fetch_add(1);
            if (i >= n)
                return;
            Machine m = rec_->checkpoints[i].materialize(
                rec_->program(), rec_->config());
            ok[i] = replayEpochOn(m, rec_->epochs[i], cycles[i],
                                  instrs[i]);
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(host_threads);
    for (unsigned t = 0; t < host_threads; ++t)
        pool.emplace_back(worker);
    for (std::thread &t : pool)
        t.join();

    // Modeled makespan: longest-processing-time list scheduling of the
    // epoch durations over the worker count.
    std::vector<Cycles> sorted(cycles.begin(), cycles.end());
    std::sort(sorted.rbegin(), sorted.rend());
    std::vector<Cycles> load(host_threads, 0);
    for (Cycles c : sorted)
        *std::min_element(load.begin(), load.end()) += c;
    res.replayCycles =
        load.empty() ? 0 : *std::max_element(load.begin(), load.end());

    for (std::uint32_t i = 0; i < n; ++i) {
        res.instrs += instrs[i];
        if (ok[i]) {
            ++res.epochsVerified;
        } else if (res.firstFailedEpoch == ~std::uint32_t{0}) {
            res.firstFailedEpoch = i;
        }
    }
    res.ok = res.epochsVerified == n;
    return res;
}

} // namespace dp
