/**
 * @file
 * E9 — Table: DoublePlay vs direct multiprocessor logging.
 *
 * The paper's motivation: logging shared-memory ordering directly on
 * a multiprocessor is expensive. This compares uniparallel recording
 * against a CREW page-ownership recorder (SMP-ReVirt-like; the paper
 * cites ~9x at 4 cores) and a load-value recorder (Nirvana-like;
 * multiple-x slowdown and fat logs). The shape to reproduce: both
 * baselines cost multiples of native where DoublePlay costs tens of
 * percent, and the value log dwarfs DoublePlay's log.
 */

#include "bench_common.hh"

using namespace dp;
using namespace dp::bench;

int
main()
{
    banner("E9 (Table: recorder comparison)",
           "DoublePlay vs CREW ordering vs load-value logging",
           "[recon] SMP-ReVirt ~9x @ 4 CPUs and value logging "
           "multiple-x are the paper's motivating numbers");

    Table t({"benchmark", "threads", "DoublePlay", "CREW",
             "value-log", "DP log", "CREW log", "value log"});

    RunningStat dp2, crew2, val2, dp4, crew4, val4;
    for (const auto &w : workloads::allWorkloads()) {
        for (std::uint32_t n : {2u, 4u}) {
            harness::MeasureOptions o = defaultOptions(n);
            o.scale = 8;
            harness::Measurement m = harness::measure(w, o);
            harness::BaselineMeasurement bm =
                harness::measureBaselines(w, o);
            if (!m.recordOk) {
                std::cerr << "record failed for " << w.name << "\n";
                return 1;
            }
            (n == 2 ? dp2 : dp4).add(m.slowdown);
            (n == 2 ? crew2 : crew4).add(1.0 + bm.crewOverhead);
            (n == 2 ? val2 : val4).add(1.0 + bm.valueOverhead);
            t.addRow({w.name, std::to_string(n),
                      Table::pct(m.overhead),
                      Table::pct(bm.crewOverhead),
                      Table::pct(bm.valueOverhead),
                      Table::bytes(m.replayLogBytes),
                      Table::bytes(bm.crewLogBytes),
                      Table::bytes(bm.valueLogBytes)});
        }
    }
    t.print(std::cout);
    std::cout << "\ngeomean slowdowns @2T: DoublePlay "
              << Table::num(dp2.geomean(), 2) << "x, CREW "
              << Table::num(crew2.geomean(), 2) << "x, value-log "
              << Table::num(val2.geomean(), 2) << "x\n"
              << "geomean slowdowns @4T: DoublePlay "
              << Table::num(dp4.geomean(), 2) << "x, CREW "
              << Table::num(crew4.geomean(), 2) << "x, value-log "
              << Table::num(val4.geomean(), 2) << "x\n";
    return 0;
}
