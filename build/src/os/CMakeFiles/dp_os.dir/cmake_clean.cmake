file(REMOVE_RECURSE
  "CMakeFiles/dp_os.dir/machine.cc.o"
  "CMakeFiles/dp_os.dir/machine.cc.o.d"
  "CMakeFiles/dp_os.dir/multicpu_sim.cc.o"
  "CMakeFiles/dp_os.dir/multicpu_sim.cc.o.d"
  "CMakeFiles/dp_os.dir/os_state.cc.o"
  "CMakeFiles/dp_os.dir/os_state.cc.o.d"
  "CMakeFiles/dp_os.dir/simos.cc.o"
  "CMakeFiles/dp_os.dir/simos.cc.o.d"
  "CMakeFiles/dp_os.dir/uni_runner.cc.o"
  "CMakeFiles/dp_os.dir/uni_runner.cc.o.d"
  "libdp_os.a"
  "libdp_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dp_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
