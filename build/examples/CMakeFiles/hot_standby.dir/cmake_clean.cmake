file(REMOVE_RECURSE
  "CMakeFiles/hot_standby.dir/hot_standby.cpp.o"
  "CMakeFiles/hot_standby.dir/hot_standby.cpp.o.d"
  "hot_standby"
  "hot_standby.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hot_standby.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
