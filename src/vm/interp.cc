#include "vm/interp.hh"

#include "common/logging.hh"
#include "mem/paged_memory.hh"

namespace dp
{

namespace
{

/** Faulting threads exit with this code (visible to join()). */
constexpr std::uint64_t faultExitCode = 0xdead;

} // namespace

StepKind
Interpreter::step(ThreadContext &tc, PagedMemory &mem) const
{
    dp_assert(tc.state == RunState::Runnable,
              "stepping a non-runnable thread ", tc.tid);

    if (tc.pc >= prog_->code.size()) {
        tc.state = RunState::Exited;
        tc.exitCode = faultExitCode;
        return StepKind::Fault;
    }

    const Instr &in = prog_->code[tc.pc];
    auto rs1 = [&] { return tc.reg(in.rs1); };
    auto rs2 = [&] { return tc.reg(in.rs2); };
    auto setRd = [&](std::uint64_t v) { tc.reg(in.rd) = v; };
    std::uint64_t next_pc = tc.pc + 1;

    switch (in.op) {
      case Opcode::Nop:
        break;
      case Opcode::Li:
        setRd(static_cast<std::uint64_t>(in.imm));
        break;
      case Opcode::Mov:
        setRd(rs1());
        break;

      case Opcode::Add: setRd(rs1() + rs2()); break;
      case Opcode::Sub: setRd(rs1() - rs2()); break;
      case Opcode::Mul: setRd(rs1() * rs2()); break;
      case Opcode::Divu:
        // RISC-V semantics: division by zero yields all ones.
        setRd(rs2() == 0 ? ~std::uint64_t{0} : rs1() / rs2());
        break;
      case Opcode::Remu:
        setRd(rs2() == 0 ? rs1() : rs1() % rs2());
        break;
      case Opcode::And: setRd(rs1() & rs2()); break;
      case Opcode::Or:  setRd(rs1() | rs2()); break;
      case Opcode::Xor: setRd(rs1() ^ rs2()); break;
      case Opcode::Shl: setRd(rs1() << (rs2() & 63)); break;
      case Opcode::Shr: setRd(rs1() >> (rs2() & 63)); break;
      case Opcode::Sar:
        setRd(static_cast<std::uint64_t>(
            static_cast<std::int64_t>(rs1()) >> (rs2() & 63)));
        break;
      case Opcode::SltU: setRd(rs1() < rs2() ? 1 : 0); break;
      case Opcode::SltS:
        setRd(static_cast<std::int64_t>(rs1()) <
                      static_cast<std::int64_t>(rs2())
                  ? 1
                  : 0);
        break;
      case Opcode::Seq: setRd(rs1() == rs2() ? 1 : 0); break;

      case Opcode::Addi:
        setRd(rs1() + static_cast<std::uint64_t>(in.imm));
        break;
      case Opcode::Andi:
        setRd(rs1() & static_cast<std::uint64_t>(in.imm));
        break;
      case Opcode::Ori:
        setRd(rs1() | static_cast<std::uint64_t>(in.imm));
        break;
      case Opcode::Xori:
        setRd(rs1() ^ static_cast<std::uint64_t>(in.imm));
        break;
      case Opcode::Shli:
        setRd(rs1() << (static_cast<std::uint64_t>(in.imm) & 63));
        break;
      case Opcode::Shri:
        setRd(rs1() >> (static_cast<std::uint64_t>(in.imm) & 63));
        break;
      case Opcode::Muli:
        setRd(rs1() * static_cast<std::uint64_t>(in.imm));
        break;

      case Opcode::Ld8:
        setRd(mem.read8(rs1() + static_cast<std::uint64_t>(in.imm)));
        break;
      case Opcode::Ld16:
        setRd(mem.read16(rs1() + static_cast<std::uint64_t>(in.imm)));
        break;
      case Opcode::Ld32:
        setRd(mem.read32(rs1() + static_cast<std::uint64_t>(in.imm)));
        break;
      case Opcode::Ld64:
        setRd(mem.read64(rs1() + static_cast<std::uint64_t>(in.imm)));
        break;
      case Opcode::St8:
        mem.write8(rs1() + static_cast<std::uint64_t>(in.imm),
                   static_cast<std::uint8_t>(rs2()));
        break;
      case Opcode::St16:
        mem.write16(rs1() + static_cast<std::uint64_t>(in.imm),
                    static_cast<std::uint16_t>(rs2()));
        break;
      case Opcode::St32:
        mem.write32(rs1() + static_cast<std::uint64_t>(in.imm),
                    static_cast<std::uint32_t>(rs2()));
        break;
      case Opcode::St64:
        mem.write64(rs1() + static_cast<std::uint64_t>(in.imm), rs2());
        break;

      case Opcode::Beq:
        if (rs1() == rs2())
            next_pc = static_cast<std::uint64_t>(in.imm);
        break;
      case Opcode::Bne:
        if (rs1() != rs2())
            next_pc = static_cast<std::uint64_t>(in.imm);
        break;
      case Opcode::BltU:
        if (rs1() < rs2())
            next_pc = static_cast<std::uint64_t>(in.imm);
        break;
      case Opcode::BltS:
        if (static_cast<std::int64_t>(rs1()) <
            static_cast<std::int64_t>(rs2()))
            next_pc = static_cast<std::uint64_t>(in.imm);
        break;
      case Opcode::BgeU:
        if (rs1() >= rs2())
            next_pc = static_cast<std::uint64_t>(in.imm);
        break;
      case Opcode::BgeS:
        if (static_cast<std::int64_t>(rs1()) >=
            static_cast<std::int64_t>(rs2()))
            next_pc = static_cast<std::uint64_t>(in.imm);
        break;
      case Opcode::Beqz:
        if (rs1() == 0)
            next_pc = static_cast<std::uint64_t>(in.imm);
        break;
      case Opcode::Bnez:
        if (rs1() != 0)
            next_pc = static_cast<std::uint64_t>(in.imm);
        break;
      case Opcode::Jmp:
        next_pc = static_cast<std::uint64_t>(in.imm);
        break;
      case Opcode::Jal:
        setRd(tc.pc + 1);
        next_pc = static_cast<std::uint64_t>(in.imm);
        break;
      case Opcode::Jr:
        next_pc = rs1();
        break;

      case Opcode::Cas: {
        std::uint64_t addr = rs1();
        std::uint64_t old = mem.read64(addr);
        if (old == tc.reg(in.rd))
            mem.write64(addr, rs2());
        setRd(old);
        break;
      }
      case Opcode::FetchAdd: {
        std::uint64_t addr = rs1();
        std::uint64_t old = mem.read64(addr);
        mem.write64(addr, old + rs2());
        setRd(old);
        break;
      }
      case Opcode::Xchg: {
        std::uint64_t addr = rs1();
        std::uint64_t old = mem.read64(addr);
        mem.write64(addr, rs2());
        setRd(old);
        break;
      }

      case Opcode::Syscall:
        // The OS completes the call and advances pc/retired.
        return StepKind::SyscallTrap;

      case Opcode::Halt:
        tc.state = RunState::Exited;
        tc.exitCode = tc.reg(Reg::r0);
        ++tc.retired;
        return StepKind::Halted;

      default:
        tc.state = RunState::Exited;
        tc.exitCode = faultExitCode;
        return StepKind::Fault;
    }

    tc.pc = next_pc;
    ++tc.retired;
    return StepKind::Ok;
}

} // namespace dp
