# Empty compiler generated dependencies file for signal_test.
# This may be replaced when dependencies are built.
