/**
 * @file
 * Parallel replay on real host threads.
 *
 * Uniparallelism's second dividend: because each epoch's replay needs
 * only its start checkpoint and its log, epochs replay concurrently.
 * This example records the fft workload and compares sequential vs
 * parallel replay in both virtual time (the model) and actual host
 * wall-clock time across a std::thread pool.
 */

#include <chrono>
#include <iostream>

#include "core/recorder.hh"
#include "replay/replayer.hh"
#include "workloads/registry.hh"

using namespace dp;

namespace
{

template <typename F>
double
wallMillis(F &&fn)
{
    auto t0 = std::chrono::steady_clock::now();
    fn();
    auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

} // namespace

int
main()
{
    const workloads::Workload *fft = workloads::findWorkload("fft");
    workloads::WorkloadParams params{.threads = 2, .scale = 24};
    workloads::WorkloadBundle b = fft->make(params);

    RecorderOptions opts;
    opts.workerCpus = 2;
    opts.epochLength = 120'000;
    opts.keepCheckpoints = true; // parallel replay needs these
    UniparallelRecorder recorder(b.program, b.config, opts);
    RecordOutcome out = recorder.record();
    if (!out.ok) {
        std::cerr << "recording failed\n";
        return 1;
    }
    std::cout << "recorded " << out.recording.epochs.size()
              << " epochs with checkpoints retained\n\n";

    Replayer replayer(out.recording);

    ReplayResult seq;
    double seq_ms =
        wallMillis([&] { seq = replayer.replaySequential(); });
    std::cout << "sequential replay: "
              << (seq.ok ? "verified" : "FAILED") << ", "
              << seq.replayCycles / 1000 << " kcyc virtual, "
              << seq_ms << " ms host\n";

    for (unsigned workers : {2u, 4u}) {
        ReplayResult par;
        double par_ms = wallMillis(
            [&] { par = replayer.replayParallel(workers); });
        std::cout << workers << "-way parallel:   "
                  << (par.ok ? "verified" : "FAILED") << ", "
                  << par.replayCycles / 1000 << " kcyc virtual, "
                  << par_ms << " ms host ("
                  << (par_ms > 0 ? seq_ms / par_ms : 0.0)
                  << "x host speedup)\n";
        if (!par.ok)
            return 1;
    }
    return seq.ok ? 0 : 1;
}
