/**
 * @file
 * Tests for the in-kernel pipe: blocking semantics, EOF, FIFO waiter
 * service, and producer/consumer programs through the full
 * record/replay pipeline.
 */

#include <gtest/gtest.h>

#include "analysis/race_detector.hh"
#include "core/recorder.hh"
#include "os/simos.hh"
#include "os/uni_runner.hh"
#include "replay/replayer.hh"
#include "vm/asmlib.hh"
#include "vm/assembler.hh"
#include "workloads/registry.hh"

namespace dp
{
namespace
{

using enum Reg;
namespace lib = dp::asmlib;

/**
 * Producer/consumer over pipe 1: a producer thread pushes `items`
 * 8-byte values; `consumers` workers pull values and fetch-add them
 * into a shared sum at 0x9000; producer closes the pipe; consumers
 * exit on EOF. Main exits with the sum.
 */
GuestProgram
pipelineProgram(std::uint64_t items, std::uint64_t consumers)
{
    Assembler a;
    Label producer = a.newLabel();
    Label consumer = a.newLabel();

    // main: spawn producer + consumers, join all, exit with sum.
    lib::spawnThread(a, producer, r5);
    a.mov(r13, r0);
    a.li(r14, 0); // consumer index
    a.li(r15, static_cast<std::int64_t>(consumers));
    Label spawn_loop = a.hereLabel();
    Label spawned = a.newLabel();
    a.bgeu(r14, r15, spawned);
    lib::spawnThread(a, consumer, r14);
    a.shli(r3, r14, 3);
    a.lia(r4, 0x9100);
    a.add(r3, r3, r4);
    a.st64(r3, 0, r0);
    a.addi(r14, r14, 1);
    a.jmp(spawn_loop);
    a.bind(spawned);
    lib::joinThread(a, r13);
    a.li(r14, 0);
    Label join_loop = a.hereLabel();
    Label joined = a.newLabel();
    a.bgeu(r14, r15, joined);
    a.shli(r3, r14, 3);
    a.lia(r4, 0x9100);
    a.add(r3, r3, r4);
    a.ld64(r4, r3, 0);
    lib::joinThread(a, r4);
    a.addi(r14, r14, 1);
    a.jmp(join_loop);
    a.bind(joined);
    a.lia(r4, 0x9000);
    a.ld64(r1, r4, 0);
    a.sys(Sys::Exit);

    // producer: write values 1..items, then close.
    a.bind(producer);
    a.li(r8, 1);
    a.li(r9, static_cast<std::int64_t>(items));
    Label prod_loop = a.hereLabel();
    Label close_it = a.newLabel();
    a.bltu(r9, r8, close_it); // items < next value: done
    a.lia(r4, 0x9200);
    a.st64(r4, 0, r8); // stage the value
    a.li(r1, 1);       // pipe id
    a.mov(r2, r4);
    a.li(r3, 8);
    a.sys(Sys::PipeWrite);
    a.addi(r8, r8, 1);
    a.jmp(prod_loop);
    a.bind(close_it);
    a.li(r1, 1);
    a.sys(Sys::PipeClose);
    lib::exitWith(a, 0);

    // consumer: read values until EOF; fetch-add each into the sum.
    a.bind(consumer);
    a.mov(r13, r1);
    a.muli(r9, r13, 0x100);
    a.addi(r9, r9, 0x9300); // private read buffer
    Label cons_loop = a.hereLabel();
    Label cons_done = a.newLabel();
    a.li(r1, 1);
    a.mov(r2, r9);
    a.li(r3, 8);
    a.sys(Sys::PipeRead);
    a.beqz(r0, cons_done); // EOF
    a.ld64(r4, r9, 0);
    a.lia(r5, 0x9000);
    a.fetchAdd(r6, r5, r4);
    a.jmp(cons_loop);
    a.bind(cons_done);
    lib::exitWith(a, 0);

    return a.finish("pipeline");
}

TEST(Pipe, BasicWriteThenRead)
{
    Assembler a;
    a.lia(r4, 0x100);
    a.li(r5, 0xabcdef);
    a.st64(r4, 0, r5);
    a.li(r1, 7);
    a.mov(r2, r4);
    a.li(r3, 8);
    a.sys(Sys::PipeWrite);
    a.li(r1, 7);
    a.lia(r2, 0x200);
    a.li(r3, 8);
    a.sys(Sys::PipeRead);
    a.mov(r15, r0); // 8
    a.lia(r2, 0x200);
    a.ld64(r4, r2, 0);
    a.li(r5, 0xabcdef);
    a.seq(r4, r4, r5);
    a.muli(r1, r15, 10);
    a.add(r1, r1, r4); // 81
    a.sys(Sys::Exit);
    GuestProgram prog = a.finish("pipe_basic");
    Machine m(prog, {});
    SimOS os;
    UniRunner r(m, os, {}, {});
    ASSERT_EQ(r.run(), StopReason::AllExited);
    EXPECT_EQ(m.threads[0].exitCode, 81u);
}

TEST(Pipe, ReadOnClosedEmptyPipeIsEof)
{
    Assembler a;
    a.li(r1, 3);
    a.sys(Sys::PipeClose);
    a.li(r1, 3);
    a.lia(r2, 0x100);
    a.li(r3, 8);
    a.sys(Sys::PipeRead);
    a.mov(r1, r0); // 0 = EOF
    a.sys(Sys::Exit);
    GuestProgram prog = a.finish("pipe_eof");
    Machine m(prog, {});
    SimOS os;
    UniRunner r(m, os, {}, {});
    ASSERT_EQ(r.run(), StopReason::AllExited);
    EXPECT_EQ(m.threads[0].exitCode, 0u);
}

TEST(Pipe, WriteToClosedPipeFails)
{
    Assembler a;
    a.li(r1, 3);
    a.sys(Sys::PipeClose);
    a.li(r1, 3);
    a.lia(r2, 0x100);
    a.li(r3, 8);
    a.sys(Sys::PipeWrite);
    a.li(r2, -1);
    a.seq(r1, r0, r2);
    a.sys(Sys::Exit);
    GuestProgram prog = a.finish("pipe_closed_write");
    Machine m(prog, {});
    SimOS os;
    UniRunner r(m, os, {}, {});
    ASSERT_EQ(r.run(), StopReason::AllExited);
    EXPECT_EQ(m.threads[0].exitCode, 1u);
}

TEST(Pipe, ProducerConsumerDeliversEverything)
{
    // 1+2+...+40 = 820, through 3 consumers.
    GuestProgram prog = pipelineProgram(40, 3);
    Machine m(prog, {});
    SimOS os;
    UniRunner r(m, os, {}, {});
    ASSERT_EQ(r.run(), StopReason::AllExited);
    EXPECT_EQ(m.threads[0].exitCode, 820u);
}

TEST(Pipe, ProducerConsumerRecordsAndReplays)
{
    GuestProgram prog = pipelineProgram(60, 2);
    RecorderOptions opts;
    opts.epochLength = 5'000;
    UniparallelRecorder rec(prog, {}, opts);
    RecordOutcome out = rec.record();
    ASSERT_TRUE(out.ok);
    EXPECT_EQ(out.mainExitCode, 60u * 61u / 2);
    EXPECT_EQ(out.recording.stats.rollbacks, 0u)
        << "pipe ordering is captured per-pipe; no divergence";

    Replayer rep(out.recording);
    EXPECT_TRUE(rep.replaySequential().ok);
    EXPECT_TRUE(rep.replayParallel(2).ok);
}

TEST(Pipe, PipelineIsRaceFreeUnderTheDetector)
{
    GuestProgram prog = pipelineProgram(30, 2);
    RecorderOptions opts;
    opts.epochLength = 8'000;
    UniparallelRecorder rec(prog, {}, opts);
    RecordOutcome out = rec.record();
    ASSERT_TRUE(out.ok);

    RaceDetector det;
    ReplayObserver obs = det.observer();
    Replayer rep(out.recording);
    ASSERT_TRUE(rep.replaySequential(&obs).ok);
    EXPECT_TRUE(det.races().empty())
        << "pipe hand-off must establish happens-before";
}

TEST(Pipe, HostParallelRecordingMatches)
{
    GuestProgram prog = pipelineProgram(50, 2);
    auto run = [&](unsigned hw) {
        RecorderOptions opts;
        opts.epochLength = 5'000;
        opts.hostWorkers = hw;
        opts.keepCheckpoints = false;
        UniparallelRecorder rec(prog, {}, opts);
        return rec.record();
    };
    RecordOutcome a0 = run(0);
    RecordOutcome a2 = run(2);
    ASSERT_TRUE(a0.ok);
    ASSERT_TRUE(a2.ok);
    EXPECT_EQ(a0.recording.finalStateHash,
              a2.recording.finalStateHash);
}

TEST(Pipe, Pbzip2PipeMatchesWorkPoolResult)
{
    // The pipe-structured compressor must produce the same compressed
    // byte count as the work-pool pbzip2 on identical input.
    workloads::WorkloadBundle piped =
        workloads::makePbzip2Pipe(3, 2);
    const workloads::Workload *pool =
        workloads::findWorkload("pbzip2");
    workloads::WorkloadBundle pooled =
        pool->make({.threads = 3, .scale = 2});
    ASSERT_EQ(piped.expectedExit, pooled.expectedExit);

    Machine m(piped.program, piped.config);
    SimOS os;
    UniRunner r(m, os, {}, {});
    ASSERT_EQ(r.run(), StopReason::AllExited);
    EXPECT_EQ(m.threads[0].exitCode, piped.expectedExit);
}

TEST(Pipe, Pbzip2PipeRecordsAndReplays)
{
    workloads::WorkloadBundle b = workloads::makePbzip2Pipe(2, 2);
    RecorderOptions opts;
    opts.epochLength = 40'000;
    UniparallelRecorder rec(b.program, b.config, opts);
    RecordOutcome out = rec.record();
    ASSERT_TRUE(out.ok);
    EXPECT_EQ(out.mainExitCode, b.expectedExit);
    EXPECT_EQ(out.recording.stats.rollbacks, 0u);

    Replayer rep(out.recording);
    EXPECT_TRUE(rep.replaySequential().ok);
}

TEST(Pipe, Pbzip2PipeIsRaceFree)
{
    workloads::WorkloadBundle b = workloads::makePbzip2Pipe(2, 1);
    RecorderOptions opts;
    opts.epochLength = 30'000;
    UniparallelRecorder rec(b.program, b.config, opts);
    RecordOutcome out = rec.record();
    ASSERT_TRUE(out.ok);

    RaceDetector det;
    ReplayObserver obs = det.observer();
    Replayer rep(out.recording);
    ASSERT_TRUE(rep.replaySequential(&obs).ok);
    EXPECT_TRUE(det.races().empty());
}

} // namespace
} // namespace dp
