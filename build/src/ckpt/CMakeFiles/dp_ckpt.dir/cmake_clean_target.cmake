file(REMOVE_RECURSE
  "libdp_ckpt.a"
)
