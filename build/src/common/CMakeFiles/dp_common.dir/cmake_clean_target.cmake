file(REMOVE_RECURSE
  "libdp_common.a"
)
