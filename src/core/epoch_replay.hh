/**
 * @file
 * The epoch-replay primitive: deterministic re-execution of one
 * recorded epoch on a machine holding the epoch's start state.
 *
 * This sits in core (below the whole-recording Replayer) because the
 * recorder itself needs it: resuming a journaled recording replays the
 * recovered prefix sequentially to reconstruct the boundary
 * checkpoint before recording continues. Replayer, LiveReplica, and
 * the analysis tools all build on the same primitive.
 */

#ifndef DP_CORE_EPOCH_REPLAY_HH
#define DP_CORE_EPOCH_REPLAY_HH

#include <cstdint>
#include <functional>

#include "core/recording.hh"
#include "timing/cost_model.hh"

namespace dp
{

/**
 * Observation hooks a replay consumer (race detector, debugger,
 * profiler) can attach to a sequential replay. Replay is where the
 * paper says heavyweight analyses belong: they see the exact recorded
 * execution without perturbing the original run.
 */
struct ReplayObserver
{
    /** A new epoch's re-execution begins. */
    std::function<void(EpochId)> onEpochStart;
    /** A memory instruction is about to execute. */
    std::function<void(ThreadId, Addr, unsigned size, bool is_write,
                       bool is_atomic)>
        onMemAccess;
    /** A synchronization operation executed. */
    std::function<void(ThreadId, SyncKind, SyncKey)> onSync;
    /** A syscall completed. */
    std::function<void(ThreadId, Sys, std::uint64_t value,
                       bool injectable)>
        onSyscall;
    /** @p woken became runnable because of @p waker (futex wake,
     *  exit-join, spawn): a happens-before edge. */
    std::function<void(ThreadId waker, ThreadId woken)> onWake;
};

/**
 * Re-execute one recorded epoch on @p m (which must hold the epoch's
 * start state): follow the timeslice schedule, inject logged results,
 * cross-check the deterministic syscall stream, and verify the
 * end-state digest. The building block under Replayer, LiveReplica,
 * and the recorder's resume mode.
 */
bool replayEpochOnMachine(Machine &m, const EpochRecord &epoch,
                          const CostModel &costs, Cycles &cycles,
                          std::uint64_t &instrs,
                          const ReplayObserver *observer = nullptr);

} // namespace dp

#endif // DP_CORE_EPOCH_REPLAY_HH
