# Empty compiler generated dependencies file for bench_ckpt_cost.
# This may be replaced when dependencies are built.
