#include "core/divergence.hh"

namespace dp
{

DivergenceReport
DivergenceDetector::report(const Machine &end_state,
                           const Checkpoint &expected)
{
    DivergenceReport rep;
    rep.pages = end_state.mem.diffPages(expected.memory());

    const auto &a = end_state.threads;
    const auto &b = expected.threads();
    std::size_t n = std::max(a.size(), b.size());
    for (std::size_t i = 0; i < n; ++i) {
        if (i >= a.size() || i >= b.size() || !(a[i] == b[i]))
            rep.threads.push_back(static_cast<ThreadId>(i));
    }

    rep.osDiffers = end_state.os.hash() != expected.osState().hash();
    rep.equal =
        rep.pages.empty() && rep.threads.empty() && !rep.osDiffers;
    return rep;
}

} // namespace dp
