#include "replay/replayer.hh"

#include <algorithm>
#include <atomic>
#include <thread>

#include "common/logging.hh"
#include "os/simos.hh"
#include "os/uni_runner.hh"
#include "trace/trace.hh"

namespace dp
{

bool
Replayer::replayEpochOn(Machine &m, const EpochRecord &epoch,
                        Cycles &cycles, std::uint64_t &instrs,
                        const ReplayObserver *observer) const
{
    return replayEpochOnMachine(m, epoch, costs_, cycles, instrs,
                                observer);
}

ReplayResult
Replayer::replaySequential(const ReplayObserver *observer) const
{
    ReplayResult res;
    Machine m(rec_->program(), rec_->config());

    for (std::uint32_t i = 0; i < rec_->epochs.size(); ++i) {
        if (observer && observer->onEpochStart)
            observer->onEpochStart(i);
        ScopedTraceSpan span(trace_, TraceStage::Replay, 0,
                             "replay-epoch", "replay");
        span.arg("epoch", i);
        if (!replayEpochOn(m, rec_->epochs[i], res.replayCycles,
                           res.instrs, observer)) {
            res.firstFailedEpoch = i;
            return res;
        }
        ++res.epochsVerified;
    }
    res.ok = res.epochsVerified == rec_->epochs.size() &&
             m.stateHash() == rec_->finalStateHash;
    res.stdoutBytes = m.stdoutBytes();
    return res;
}

ReplayResult
Replayer::replayParallel(unsigned host_threads) const
{
    ReplayResult res;
    if (!rec_->hasCheckpoints()) {
        dp_warn("parallel replay requires retained checkpoints");
        return res;
    }
    host_threads = std::max(1u, host_threads);

    const auto n = static_cast<std::uint32_t>(rec_->epochs.size());
    if (n == 0) {
        // Empty recording: the verdict is the initial state's digest
        // against finalStateHash, same as sequential replay.
        Machine m(rec_->program(), rec_->config());
        res.ok = m.stateHash() == rec_->finalStateHash;
        res.stdoutBytes = m.stdoutBytes();
        return res;
    }
    std::vector<std::uint8_t> ok(n, 0);
    std::vector<Cycles> cycles(n, 0);
    std::vector<std::uint64_t> instrs(n, 0);
    std::atomic<std::uint32_t> next{0};
    // The last epoch's end machine holds the run's complete final
    // state (each checkpoint carries the stdout written so far), so
    // the worker that replays it reconstructs the whole-run verdict
    // material; exactly one worker claims that index.
    std::uint64_t final_hash = 0;
    std::vector<std::uint8_t> final_stdout;

    auto worker = [&](std::uint32_t track) {
        for (;;) {
            std::uint32_t i = next.fetch_add(1);
            if (i >= n)
                return;
            ScopedTraceSpan span(trace_, TraceStage::Replay, track,
                                 "replay-epoch", "replay");
            span.arg("epoch", i);
            Machine m = rec_->checkpoints[i].materialize(
                rec_->program(), rec_->config());
            ok[i] = replayEpochOn(m, rec_->epochs[i], cycles[i],
                                  instrs[i]);
            if (i == n - 1) {
                final_hash = m.stateHash();
                final_stdout = m.stdoutBytes();
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(host_threads);
    for (unsigned t = 0; t < host_threads; ++t)
        pool.emplace_back(worker, t);
    for (std::thread &t : pool)
        t.join();

    // Modeled makespan: longest-processing-time list scheduling of the
    // epoch durations over the worker count.
    std::vector<Cycles> sorted(cycles.begin(), cycles.end());
    std::sort(sorted.rbegin(), sorted.rend());
    std::vector<Cycles> load(host_threads, 0);
    for (Cycles c : sorted)
        *std::min_element(load.begin(), load.end()) += c;
    res.replayCycles =
        load.empty() ? 0 : *std::max_element(load.begin(), load.end());

    for (std::uint32_t i = 0; i < n; ++i) {
        res.instrs += instrs[i];
        if (ok[i]) {
            ++res.epochsVerified;
        } else if (res.firstFailedEpoch == ~std::uint32_t{0}) {
            res.firstFailedEpoch = i;
        }
    }
    // Same verdict contract as replaySequential: every epoch digest
    // must verify AND the final state must match the recording's
    // finalStateHash — a tampered trailer fails --parallel too.
    res.ok = res.epochsVerified == n &&
             final_hash == rec_->finalStateHash;
    res.stdoutBytes = std::move(final_stdout);
    return res;
}

} // namespace dp
