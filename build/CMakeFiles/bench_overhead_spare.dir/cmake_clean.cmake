file(REMOVE_RECURSE
  "CMakeFiles/bench_overhead_spare.dir/bench/bench_overhead_spare.cc.o"
  "CMakeFiles/bench_overhead_spare.dir/bench/bench_overhead_spare.cc.o.d"
  "bench/bench_overhead_spare"
  "bench/bench_overhead_spare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_overhead_spare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
