file(REMOVE_RECURSE
  "libdp_baseline.a"
)
