/**
 * @file
 * Tests for the text assembler/disassembler: hand-written programs,
 * error reporting, and assemble/disassemble round trips over the
 * random-program corpus.
 */

#include <gtest/gtest.h>

#include "os/simos.hh"
#include "os/uni_runner.hh"
#include "testprogs.hh"
#include "vm/text_asm.hh"

namespace dp
{
namespace
{

std::uint64_t
runExit(const GuestProgram &prog)
{
    Machine m(prog, {});
    SimOS os;
    UniRunner r(m, os, {}, {});
    EXPECT_EQ(r.run(), StopReason::AllExited);
    return m.threads[0].exitCode;
}

TEST(TextAsm, AssemblesALoop)
{
    GuestProgram prog = assembleText(R"(
        ; sum 1..10, exit with the sum
            li r1, 0        ; acc
            li r2, 10       ; i
        loop:
            beqz r2, done
            add r1, r1, r2
            addi r2, r2, -1
            jmp loop
        done:
            mov r0, r1
            halt
    )");
    EXPECT_EQ(runExit(prog), 55u);
}

TEST(TextAsm, DataDirectivesAndEntry)
{
    GuestProgram prog = assembleText(R"(
        .data 0x1000
        .u64 7 11
        .data 0x2000
        .ascii "hi"
        .byte 0 255
        .entry main
        pad:
            nop
        main:
            li r2, 0x1000
            ld64 r1, r2, 8   ; 11
            li r2, 0x2000
            ld8 r3, r2, 0    ; 'h'
            add r1, r1, r3
            li r0, 0
            mov r1, r1
            syscall          ; exit(11 + 'h')
    )");
    EXPECT_EQ(prog.entry, 1u);
    EXPECT_EQ(runExit(prog), 11u + 'h');
}

TEST(TextAsm, HexNegativeAndCommaFormats)
{
    GuestProgram prog = assembleText(R"(
        li r1, 0xff
        li r2, -0x10
        add r0, r1, r2
        halt
    )");
    EXPECT_EQ(runExit(prog), 0xefu);
}

TEST(TextAsm, StoresAndAtomics)
{
    GuestProgram prog = assembleText(R"(
        li r1, 0x3000
        li r2, 5
        st64 r1, 0, r2
        li r3, 3
        fetchadd r4, r1, r3   ; r4 = 5, mem = 8
        ld64 r5, r1, 0
        mul r4, r4, r5        ; 40
        mov r0, r4
        halt
    )");
    EXPECT_EQ(runExit(prog), 40u);
}

TEST(TextAsm, ErrorsAreFatalWithLineNumbers)
{
    EXPECT_DEATH((void)assembleText("bogus r1, r2"),
                 "line 1.*unknown mnemonic");
    EXPECT_DEATH((void)assembleText("\n li r99, 1"),
                 "line 2.*bad register");
    EXPECT_DEATH((void)assembleText("add r1, r2"),
                 "expected 3 operands");
    EXPECT_DEATH((void)assembleText("jmp nowhere"), "never bound");
    EXPECT_DEATH((void)assembleText(".entry nowhere\nnop"),
                 "never defined");
    EXPECT_DEATH((void)assembleText(".u64 5"), "outside a .data");
}

TEST(TextAsm, DisassembleRoundTripsHandProgram)
{
    GuestProgram prog = testprogs::lockedCounter(3, 17);
    std::string text = disassemble(prog);
    GuestProgram back = assembleText(text, prog.name);
    ASSERT_EQ(back.code.size(), prog.code.size());
    for (std::size_t i = 0; i < prog.code.size(); ++i) {
        EXPECT_EQ(back.code[i].op, prog.code[i].op) << "at " << i;
        EXPECT_EQ(back.code[i].imm, prog.code[i].imm) << "at " << i;
    }
    EXPECT_EQ(back.entry, prog.entry);
    EXPECT_EQ(runExit(back), 51u);
}

TEST(TextAsm, DisassembleRoundTripsRandomCorpus)
{
    for (std::uint64_t seed = 300; seed < 312; ++seed) {
        GuestProgram prog =
            testprogs::randomProgram(seed, {.allowRaces = true});
        GuestProgram back =
            assembleText(disassemble(prog), prog.name);
        ASSERT_EQ(back.code.size(), prog.code.size())
            << "seed " << seed;
        for (std::size_t i = 0; i < prog.code.size(); ++i) {
            const Instr &x = prog.code[i];
            const Instr &y = back.code[i];
            EXPECT_TRUE(x.op == y.op && x.rd == y.rd &&
                        x.rs1 == y.rs1 && x.rs2 == y.rs2 &&
                        x.imm == y.imm)
                << "seed " << seed << " instr " << i << ": "
                << disassembleInstr(x) << " vs "
                << disassembleInstr(y);
        }
        EXPECT_EQ(back.hash(), prog.hash()) << "seed " << seed;
    }
}

TEST(TextAsm, DisassembleInstrFormats)
{
    EXPECT_EQ(disassembleInstr(
                  {Opcode::Li, Reg::r3, Reg::r0, Reg::r0, -7}),
              "li r3, -7");
    EXPECT_EQ(disassembleInstr({Opcode::St64, Reg::r0, Reg::r1,
                                Reg::r2, 16}),
              "st64 r1, 16, r2");
    EXPECT_EQ(disassembleInstr({Opcode::Beq, Reg::r0, Reg::r4,
                                Reg::r5, 12}),
              "beq r4, r5, L12");
    EXPECT_EQ(disassembleInstr(
                  {Opcode::Syscall, Reg::r0, Reg::r0, Reg::r0, 0}),
              "syscall");
}

} // namespace
} // namespace dp
