file(REMOVE_RECURSE
  "CMakeFiles/dp_baseline.dir/baselines.cc.o"
  "CMakeFiles/dp_baseline.dir/baselines.cc.o.d"
  "libdp_baseline.a"
  "libdp_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dp_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
