/**
 * @file
 * Recording a server with deferred output commit.
 *
 * DoublePlay holds externally visible output until the epoch that
 * produced it has been validated by the epoch-parallel execution.
 * This example records the apache-like workload and prints the
 * output-commit trace: which epoch released how many stdout bytes,
 * what each epoch cost, and what ended up in the replay log.
 */

#include <iostream>

#include "core/recorder.hh"
#include "replay/replayer.hh"
#include "workloads/registry.hh"

using namespace dp;

int
main()
{
    const workloads::Workload *apache =
        workloads::findWorkload("apache");
    workloads::WorkloadParams params{.threads = 4, .scale = 2};
    workloads::WorkloadBundle b = apache->make(params);

    RecorderOptions opts;
    opts.workerCpus = 4;
    opts.epochLength = 60'000;
    UniparallelRecorder recorder(b.program, b.config, opts);
    RecordOutcome out = recorder.record();
    if (!out.ok) {
        std::cerr << "recording failed\n";
        return 1;
    }

    std::cout << "epoch | tp kcyc | ep kcyc | committed stdout | "
                 "log bytes | diverged\n";
    std::uint64_t prev = 0;
    for (std::size_t i = 0; i < out.recording.epochs.size(); ++i) {
        const EpochRecord &e = out.recording.epochs[i];
        std::cout << "  " << i << "   |  " << e.tpCycles / 1000
                  << "   |  " << e.epCycles / 1000 << "   |  +"
                  << (e.stdoutLen - prev) << " bytes  |  "
                  << e.totalLogBytes() << "  |  "
                  << (e.diverged ? "yes" : "no") << "\n";
        prev = e.stdoutLen;
    }

    std::cout << "\nserved " << out.mainExitCode << " requests ("
              << params.scale * 48 << " expected); total replay log "
              << out.recording.replayLogBytes() << " bytes\n";

    Replayer replayer(out.recording);
    ReplayResult r = replayer.replaySequential();
    std::cout << "replay: " << (r.ok ? "verified" : "FAILED")
              << "; reproduced " << r.stdoutBytes.size()
              << " output bytes\n";
    return r.ok ? 0 : 1;
}
