file(REMOVE_RECURSE
  "CMakeFiles/uniplay.dir/uniplay.cc.o"
  "CMakeFiles/uniplay.dir/uniplay.cc.o.d"
  "uniplay"
  "uniplay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uniplay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
