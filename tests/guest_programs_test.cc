/**
 * @file
 * Golden tests over the sample guest assembly programs in guest/:
 * each must assemble, run to its documented result, and survive the
 * record/replay pipeline. DP_GUEST_DIR is injected by CMake.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "core/recorder.hh"
#include "os/simos.hh"
#include "os/uni_runner.hh"
#include "replay/replayer.hh"
#include "vm/text_asm.hh"

namespace dp
{
namespace
{

std::string
readGuestFile(const std::string &name)
{
    std::string path = std::string(DP_GUEST_DIR) + "/" + name;
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "missing " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

std::uint64_t
runGuest(const GuestProgram &prog)
{
    Machine m(prog, {});
    SimOS os;
    UniRunner r(m, os, {}, {});
    EXPECT_EQ(r.run(), StopReason::AllExited);
    return m.threads[0].exitCode;
}

struct Golden
{
    const char *file;
    std::uint64_t exitCode;
};

class GuestPrograms : public ::testing::TestWithParam<Golden>
{};

TEST_P(GuestPrograms, RunsToItsDocumentedResult)
{
    const Golden &g = GetParam();
    GuestProgram prog =
        assembleText(readGuestFile(g.file), g.file);
    EXPECT_EQ(runGuest(prog), g.exitCode) << g.file;
}

TEST_P(GuestPrograms, RecordsAndReplays)
{
    const Golden &g = GetParam();
    GuestProgram prog =
        assembleText(readGuestFile(g.file), g.file);
    RecorderOptions opts;
    opts.workerCpus = 1;
    UniparallelRecorder rec(prog, {}, opts);
    RecordOutcome out = rec.record();
    ASSERT_TRUE(out.ok) << g.file;
    EXPECT_EQ(out.mainExitCode, g.exitCode) << g.file;
    Replayer rep(out.recording);
    EXPECT_TRUE(rep.replaySequential().ok) << g.file;
}

TEST_P(GuestPrograms, DisassemblyRoundTrips)
{
    const Golden &g = GetParam();
    GuestProgram prog =
        assembleText(readGuestFile(g.file), g.file);
    GuestProgram back = assembleText(disassemble(prog), g.file);
    EXPECT_EQ(runGuest(back), g.exitCode) << g.file;
}

INSTANTIATE_TEST_SUITE_P(
    Golden, GuestPrograms,
    ::testing::Values(Golden{"fib.s", 832040u & 0xffff},
                      Golden{"hello_pipe.s", 'p' + 6},
                      Golden{"signal_echo.s", 42}),
    [](const ::testing::TestParamInfo<Golden> &param_info) {
        std::string n = param_info.param.file;
        return n.substr(0, n.size() - 2);
    });

} // namespace
} // namespace dp
