#include "exec/executor.hh"

#include "common/logging.hh"
#include "trace/trace.hh"

namespace dp
{

const char *
taskStateName(TaskState s)
{
    switch (s) {
    case TaskState::Pending: return "pending";
    case TaskState::Running: return "running";
    case TaskState::Done: return "done";
    case TaskState::Cancelled: return "cancelled";
    case TaskState::Failed: return "failed";
    }
    return "?";
}

Executor::Executor(unsigned workers, ExecutorOptions opts)
    : workers_(workers),
      capacity_(opts.queueCapacity ? opts.queueCapacity : 1),
      trace_(opts.trace)
{
    stats_.workers = workers_;
    threads_.reserve(workers_);
    for (unsigned i = 0; i < workers_; ++i) {
        ++stats_.threadsSpawned;
        threads_.emplace_back(&Executor::workerLoop, this, i);
    }
}

Executor::~Executor()
{
    drain();
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    notEmpty_.notify_all();
    for (std::thread &t : threads_)
        t.join();
}

void
Executor::enqueue(std::function<TaskState(const TaskContext &)> run,
                  std::function<void()> drop, const TaskOptions &opts)
{
    QueuedTask t{std::move(run), std::move(drop), opts.token,
                 opts.label};
    if (workers_ == 0) {
        // Inline mode: the caller's thread is the pool. Counted like
        // any other dispatch so the spawn/execution contract is
        // checkable uniformly across modes.
        {
            std::lock_guard<std::mutex> lock(mu_);
            ++stats_.tasksSubmitted;
            ++outstanding_;
        }
        dispatch(std::move(t), 0);
        return;
    }
    std::unique_lock<std::mutex> lock(mu_);
    dp_assert(!stop_, "submit on a stopped executor");
    if (queue_.size() >= capacity_) {
        ++stats_.backpressureWaits;
        notFull_.wait(lock,
                      [&] { return queue_.size() < capacity_; });
    }
    ++stats_.tasksSubmitted;
    ++outstanding_;
    queue_.push_back(std::move(t));
    stats_.peakQueueDepth =
        std::max<std::uint64_t>(stats_.peakQueueDepth,
                                queue_.size());
    lock.unlock();
    notEmpty_.notify_one();
}

void
Executor::dispatch(QueuedTask t, unsigned worker)
{
    TaskState outcome;
    if (t.token.cancelled()) {
        t.drop();
        outcome = TaskState::Cancelled;
        if (trace_)
            trace_->instant(TraceStage::Exec, worker, "task-squash",
                            "exec");
    } else {
        ScopedTraceSpan span(trace_, TraceStage::Exec, worker,
                             t.label, "exec");
        outcome = t.run(TaskContext{worker});
    }
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (outcome == TaskState::Cancelled)
            ++stats_.tasksCancelled;
        else
            ++stats_.tasksExecuted;
        if (outcome == TaskState::Failed)
            ++stats_.tasksFailed;
        --outstanding_;
    }
    idle_.notify_all();
}

void
Executor::workerLoop(unsigned index)
{
    if (trace_)
        trace_->instant(TraceStage::Exec, index, "worker-start",
                        "exec");
    for (;;) {
        QueuedTask t;
        {
            std::unique_lock<std::mutex> lock(mu_);
            notEmpty_.wait(
                lock, [&] { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                break; // stop_ and nothing left to do
            t = std::move(queue_.front());
            queue_.pop_front();
        }
        notFull_.notify_one();
        dispatch(std::move(t), index);
    }
    if (trace_)
        trace_->instant(TraceStage::Exec, index, "worker-exit",
                        "exec");
}

void
Executor::drain() const
{
    std::unique_lock<std::mutex> lock(mu_);
    idle_.wait(lock, [&] { return outstanding_ == 0; });
}

ExecutorStats
Executor::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

JsonValue
Executor::metricsSnapshot() const
{
    const ExecutorStats st = stats();
    JsonValue doc = JsonValue::object();
    doc.set("schema", JsonValue::str("dp-exec-v1"));
    doc.set("workers", JsonValue::number(st.workers));
    doc.set("threadsSpawned", JsonValue::number(st.threadsSpawned));
    doc.set("tasksSubmitted", JsonValue::number(st.tasksSubmitted));
    doc.set("tasksExecuted", JsonValue::number(st.tasksExecuted));
    doc.set("tasksCancelled", JsonValue::number(st.tasksCancelled));
    doc.set("tasksFailed", JsonValue::number(st.tasksFailed));
    doc.set("peakQueueDepth", JsonValue::number(st.peakQueueDepth));
    doc.set("backpressureWaits",
            JsonValue::number(st.backpressureWaits));
    return doc;
}

} // namespace dp
