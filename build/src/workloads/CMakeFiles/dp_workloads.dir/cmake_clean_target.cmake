file(REMOVE_RECURSE
  "libdp_workloads.a"
)
