/**
 * @file
 * A loaded guest program: code plus initial memory image.
 */

#ifndef DP_VM_PROGRAM_HH
#define DP_VM_PROGRAM_HH

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hh"
#include "vm/isa.hh"

namespace dp
{

class PagedMemory;
struct DecodedProgram;

namespace detail
{
/** Globally unique, monotonically increasing code stamp. */
std::uint64_t nextCodeStamp();
} // namespace detail

/**
 * Immutable program artifact produced by the Assembler. Code addresses
 * are instruction indices (the guest has a Harvard-style code space);
 * data segments are byte images copied into guest memory at load time.
 */
struct GuestProgram
{
    GuestProgram() = default;
    /** Copies carry the same code (and stamp) but start with an empty
     *  decode memo: copying never touches the source's memo, so a
     *  copy taken while another thread decodes the source is safe. */
    GuestProgram(const GuestProgram &o)
        : name(o.name), code(o.code), dataSegments(o.dataSegments),
          entry(o.entry), codeStamp_(o.codeStamp_)
    {}
    GuestProgram &
    operator=(const GuestProgram &o)
    {
        if (this != &o) {
            name = o.name;
            code = o.code;
            dataSegments = o.dataSegments;
            entry = o.entry;
            codeStamp_ = o.codeStamp_;
            decoded_.reset();
        }
        return *this;
    }
    GuestProgram(GuestProgram &&) = default;
    GuestProgram &operator=(GuestProgram &&) = default;

    std::string name;
    std::vector<Instr> code;

    /** (base address, bytes) pairs loaded before execution starts. */
    std::vector<std::pair<Addr, std::vector<std::uint8_t>>> dataSegments;

    /** Entry point of the initial thread. */
    std::uint64_t entry = 0;

    /** Copy all data segments into @p mem. */
    void loadInto(PagedMemory &mem) const;

    /** Content digest over code + data (identifies the program). */
    std::uint64_t hash() const;

    /**
     * Identity of the current code contents. Every freshly
     * constructed program gets a new stamp; invalidateCode() bumps
     * it. The interpreter's decoded-instruction cache is keyed by
     * this, so a decode built for stamp S is never dispatched once
     * the stamp moves past S.
     */
    std::uint64_t codeStamp() const { return codeStamp_; }

    /**
     * Declare that `code` was edited in place (re-assembly into a
     * live session, test surgery): bumps the stamp and drops this
     * object's memoized decode. Construction sites that build a fresh
     * GuestProgram need no call — a new object starts with a fresh
     * stamp and an empty cache. Not thread-safe against concurrent
     * execution of the same program; mutate between runs.
     */
    void invalidateCode();

    /**
     * The decoded (dispatch-ready) form of `code`, built on first use
     * and memoized until the stamp moves. Thread-safe: concurrent
     * epoch workers share one decode. Copies of a program share the
     * memo (same contents); invalidateCode() detaches only the copy
     * it is called on.
     */
    std::shared_ptr<const DecodedProgram> decoded() const;

  private:
    mutable std::shared_ptr<const DecodedProgram> decoded_;
    std::uint64_t codeStamp_ = detail::nextCodeStamp();
};

} // namespace dp

#endif // DP_VM_PROGRAM_HH
