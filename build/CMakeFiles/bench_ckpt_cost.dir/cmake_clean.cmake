file(REMOVE_RECURSE
  "CMakeFiles/bench_ckpt_cost.dir/bench/bench_ckpt_cost.cc.o"
  "CMakeFiles/bench_ckpt_cost.dir/bench/bench_ckpt_cost.cc.o.d"
  "bench/bench_ckpt_cost"
  "bench/bench_ckpt_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ckpt_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
