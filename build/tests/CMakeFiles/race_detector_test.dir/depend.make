# Empty dependencies file for race_detector_test.
# This may be replaced when dependencies are built.
