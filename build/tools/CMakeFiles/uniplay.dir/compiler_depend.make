# Empty compiler generated dependencies file for uniplay.
# This may be replaced when dependencies are built.
