/**
 * @file
 * fft workload: barrier-phased butterfly network over a shared array
 * (the SPLASH-2 fft sharing pattern: disjoint writes within a stage,
 * all-to-all reads across stages).
 */

#include "workloads/factories.hh"

#include "common/logging.hh"
#include "workloads/wl_common.hh"

namespace dp::workloads
{

using enum Reg;
namespace lib = dp::asmlib;

namespace
{

constexpr std::uint64_t fftN = 2048;  // power of two
constexpr std::uint64_t fftLog = 11;
constexpr std::int64_t mixConst = 0x9e3779b97f4a7c15ll;

/** Host reference: the exact integer butterfly the guest runs. */
std::uint64_t
fftReference(std::vector<std::uint64_t> data, std::uint32_t reps)
{
    for (std::uint32_t r = 0; r < reps; ++r) {
        for (std::uint64_t s = 0; s < fftLog; ++s) {
            std::uint64_t stride = std::uint64_t{1} << s;
            for (std::uint64_t p = 0; p < fftN / 2; ++p) {
                std::uint64_t i =
                    ((p >> s) << (s + 1)) | (p & (stride - 1));
                std::uint64_t j = i + stride;
                std::uint64_t av = data[i];
                std::uint64_t bv = data[j];
                data[i] = av + bv;
                data[j] = (av - bv) *
                          static_cast<std::uint64_t>(mixConst);
            }
        }
    }
    std::uint64_t sum = 0;
    for (std::uint64_t v : data)
        sum += v;
    return sum;
}

} // namespace

WorkloadBundle
makeFft(const WorkloadParams &p)
{
    dp_assert((fftN / 2) % p.threads == 0,
              "fft pair count must divide by thread count");
    const std::uint64_t pairsPerThread = (fftN / 2) / p.threads;
    const std::uint64_t wordsPerThread = fftN / p.threads;
    const std::uint64_t totalStages = fftLog * p.scale;

    std::vector<std::uint64_t> input = makeInputWords(fftN, p.seed);

    Assembler a;
    Label worker = a.newLabel();
    a.dataU64s(wlInput, input);

    emitSpawnJoin(a, p.threads, worker);
    emitWriteGlobalAndExit(a, gResult);

    // ---- worker ----
    a.bind(worker);
    a.mov(r13, r1); // my index
    a.lia(r8, wlBarrier);
    a.li(r9, static_cast<std::int64_t>(p.threads));
    a.lia(r14, wlInput);
    a.li(r11, 0); // flat stage counter (stage = r11 % fftLog)

    Label stage_loop = a.hereLabel();
    Label stages_done = a.newLabel();
    a.li(r1, static_cast<std::int64_t>(totalStages));
    a.bgeu(r11, r1, stages_done);
    // s = r11 % fftLog -> r15
    a.li(r1, static_cast<std::int64_t>(fftLog));
    a.remu(r15, r11, r1);

    a.muli(r10, r13, static_cast<std::int64_t>(pairsPerThread));
    a.addi(r12, r10, static_cast<std::int64_t>(pairsPerThread));

    Label pair_loop = a.hereLabel();
    Label pairs_done = a.newLabel();
    a.bgeu(r10, r12, pairs_done);
    // stride = 1 << s
    a.li(r4, 1);
    a.shl(r4, r4, r15);
    // i = ((p >> s) << (s+1)) | (p & (stride-1))
    a.shr(r5, r10, r15);
    a.addi(r6, r15, 1);
    a.shl(r5, r5, r6);
    a.addi(r6, r4, -1);
    a.and_(r7, r10, r6);
    a.or_(r5, r5, r7); // i
    a.add(r6, r5, r4); // j = i + stride
    a.shli(r5, r5, 3);
    a.add(r5, r5, r14); // &data[i]
    a.shli(r6, r6, 3);
    a.add(r6, r6, r14); // &data[j]
    a.ld64(r4, r5, 0);  // a
    a.ld64(r7, r6, 0);  // b
    a.add(r1, r4, r7);
    a.st64(r5, 0, r1);
    a.sub(r1, r4, r7);
    a.muli(r1, r1, mixConst);
    a.st64(r6, 0, r1);
    a.addi(r10, r10, 1);
    a.jmp(pair_loop);

    a.bind(pairs_done);
    lib::barrierWait(a, r8, r9, r5, r6);
    a.addi(r11, r11, 1);
    a.jmp(stage_loop);

    a.bind(stages_done);
    // Checksum my contiguous slice into the shared result.
    a.muli(r10, r13, static_cast<std::int64_t>(wordsPerThread * 8));
    a.add(r10, r10, r14); // slice base
    a.li(r11, static_cast<std::int64_t>(wordsPerThread));
    a.li(r12, 0);
    Label csum = a.hereLabel();
    Label cdone = a.newLabel();
    a.beqz(r11, cdone);
    a.ld64(r4, r10, 0);
    a.add(r12, r12, r4);
    a.addi(r10, r10, 8);
    a.addi(r11, r11, -1);
    a.jmp(csum);
    a.bind(cdone);
    a.lia(r5, wlGlobals + gResult);
    a.fetchAdd(r4, r5, r12);
    lib::exitWith(a, 0);

    WorkloadBundle b{a.finish("fft"), {},
                     fftReference(input, p.scale)};
    return b;
}

} // namespace dp::workloads
