/**
 * @file
 * Byte-stream writer/reader with LEB128 varint support.
 *
 * All uniplay logs are encoded with these primitives so that log sizes
 * reported by the benchmarks reflect a realistic compact encoding rather
 * than in-memory struct sizes.
 */

#ifndef DP_COMMON_BYTES_HH
#define DP_COMMON_BYTES_HH

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/logging.hh"

namespace dp
{

/** Append-only byte buffer with varint encoders. */
class ByteWriter
{
  public:
    /** Append one raw byte. */
    void u8(std::uint8_t v) { buf_.push_back(v); }

    /** Append a fixed-width little-endian 64-bit value. */
    void
    u64fixed(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    /** Append an unsigned LEB128 varint. */
    void
    varu(std::uint64_t v)
    {
        while (v >= 0x80) {
            buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
            v >>= 7;
        }
        buf_.push_back(static_cast<std::uint8_t>(v));
    }

    /** Append a zigzag-encoded signed varint. */
    void
    vari(std::int64_t v)
    {
        varu((static_cast<std::uint64_t>(v) << 1) ^
             static_cast<std::uint64_t>(v >> 63));
    }

    /** Append a length-prefixed byte string. */
    void
    blob(std::span<const std::uint8_t> b)
    {
        varu(b.size());
        buf_.insert(buf_.end(), b.begin(), b.end());
    }

    /** Append a length-prefixed UTF-8 string. */
    void
    str(const std::string &s)
    {
        varu(s.size());
        buf_.insert(buf_.end(), s.begin(), s.end());
    }

    std::size_t size() const { return buf_.size(); }
    const std::vector<std::uint8_t> &data() const { return buf_; }
    std::vector<std::uint8_t> take() { return std::move(buf_); }

  private:
    std::vector<std::uint8_t> buf_;
};

/** Sequential reader over an encoded byte buffer; panics on underrun. */
class ByteReader
{
  public:
    explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

    /** Read one raw byte. */
    std::uint8_t
    u8()
    {
        dp_assert(pos_ < data_.size(), "ByteReader underrun");
        return data_[pos_++];
    }

    /** Read a fixed-width little-endian 64-bit value. */
    std::uint64_t
    u64fixed()
    {
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(u8()) << (8 * i);
        return v;
    }

    /** Read an unsigned LEB128 varint. */
    std::uint64_t
    varu()
    {
        std::uint64_t v = 0;
        int shift = 0;
        for (;;) {
            std::uint8_t b = u8();
            v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
            if (!(b & 0x80))
                return v;
            shift += 7;
            dp_assert(shift < 64, "varint too long");
        }
    }

    /** Read a zigzag-encoded signed varint. */
    std::int64_t
    vari()
    {
        std::uint64_t z = varu();
        return static_cast<std::int64_t>((z >> 1) ^ (0 - (z & 1)));
    }

    /** Read a length-prefixed byte string. */
    std::vector<std::uint8_t>
    blob()
    {
        std::uint64_t n = varu();
        dp_assert(pos_ + n <= data_.size(), "ByteReader blob underrun");
        std::vector<std::uint8_t> out(data_.begin() + pos_,
                                      data_.begin() + pos_ + n);
        pos_ += n;
        return out;
    }

    /** Read a length-prefixed UTF-8 string. */
    std::string
    str()
    {
        std::uint64_t n = varu();
        dp_assert(pos_ + n <= data_.size(), "ByteReader str underrun");
        std::string out(data_.begin() + pos_, data_.begin() + pos_ + n);
        pos_ += n;
        return out;
    }

    bool atEnd() const { return pos_ == data_.size(); }
    std::size_t pos() const { return pos_; }

  private:
    std::span<const std::uint8_t> data_;
    std::size_t pos_ = 0;
};

} // namespace dp

#endif // DP_COMMON_BYTES_HH
