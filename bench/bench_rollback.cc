/**
 * @file
 * E7 — Table: divergence and rollback behaviour on racy programs,
 * plus the sync-order-enforcement ablation.
 *
 * Data races are the one thing uniparallel speculation can get wrong:
 * the single-CPU epoch re-execution may resolve a race differently
 * than the multiprocessor run, fail the epoch-end comparison, and
 * force a squash. This table sweeps race density and reports how
 * often that happens and what it costs. The ablation shows why
 * feeding the thread-parallel run's sync order into the epoch runs
 * matters: without it, even race-free programs divergence-storm.
 */

#include "bench_common.hh"

using namespace dp;
using namespace dp::bench;

namespace
{

struct RacyResult
{
    std::uint32_t epochs = 0;
    std::uint32_t rollbacks = 0;
    double overhead = 0.0;
    bool ok = false;
};

RacyResult
recordRacy(const workloads::WorkloadBundle &b, std::uint32_t threads,
           std::uint64_t seed)
{
    NativeResult native =
        runNativeBaseline(b.program, b.config, threads, seed);

    RecorderOptions ro;
    ro.workerCpus = threads;
    ro.epochLength = 40'000;
    ro.seed = seed;
    UniparallelRecorder rec(b.program, b.config, ro);
    RecordOutcome out = rec.record();

    RacyResult r;
    r.ok = out.ok;
    r.epochs = static_cast<std::uint32_t>(out.recording.epochs.size());
    r.rollbacks = out.recording.stats.rollbacks;
    if (out.ok && native.cycles > 0) {
        std::vector<EpochTiming> timings;
        for (const EpochRecord &e : out.recording.epochs)
            timings.push_back({e.tpCycles, e.epCycles, e.diverged});
        PipelineOptions po;
        po.workerCpus = threads;
        po.totalCpus = 2 * threads;
        PipelineResult pr = PipelineModel::run(timings, po);
        r.overhead = static_cast<double>(pr.completion) /
                         static_cast<double>(native.cycles) -
                     1.0;
    }
    return r;
}

} // namespace

int
main()
{
    banner("E7 (Table: rollback)",
           "divergence rate and rollback cost vs race density",
           "[recon] the paper reports rare rollbacks for its (mostly "
           "race-free) benchmarks; shape: rollbacks grow with race "
           "density, recording always recovers");

    Table t({"race: 1 in N", "threads", "epochs", "rollbacks",
             "rollback rate", "overhead", "recovered"});

    const std::uint64_t updates = 160'000;
    for (std::uint64_t one_in :
         {1ull, 64ull, 1024ull, 16384ull, 262144ull}) {
        for (std::uint32_t threads : {2u, 4u}) {
            workloads::WorkloadBundle b = workloads::makeRacyUpdates(
                threads, updates / threads, one_in);
            RacyResult r = recordRacy(b, threads, /*seed=*/9);
            double rate = r.epochs
                              ? static_cast<double>(r.rollbacks) /
                                    r.epochs
                              : 0.0;
            t.addRow({Table::num(one_in), std::to_string(threads),
                      Table::num(std::uint64_t{r.epochs}),
                      Table::num(std::uint64_t{r.rollbacks}),
                      Table::pct(rate), Table::pct(r.overhead),
                      r.ok ? "yes" : "NO"});
        }
    }
    t.print(std::cout);

    // Ablation: sync-order enforcement off for race-free workloads.
    banner("E7b (ablation)",
           "rollbacks on race-free workloads with and without "
           "sync-order enforcement",
           "[recon] design-choice ablation called out in DESIGN.md");

    Table t2({"benchmark", "enforced: rollbacks",
              "unenforced: rollbacks", "unenforced recovered"});
    for (const char *name : {"pbzip2", "mysql", "fft"}) {
        const workloads::Workload *w = workloads::findWorkload(name);
        harness::MeasureOptions on = defaultOptions(4);
        on.scale = 8;
        harness::MeasureOptions off = on;
        off.enforceSyncOrder = false;
        harness::Measurement mon = harness::measure(*w, on);
        harness::Measurement moff = harness::measure(*w, off);
        t2.addRow({name,
                   Table::num(std::uint64_t{mon.stats.rollbacks}),
                   Table::num(std::uint64_t{moff.stats.rollbacks}),
                   moff.recordOk ? "yes" : "NO"});
    }
    t2.print(std::cout);
    return 0;
}
