#include "trace/trace.hh"

#include <cstdio>

#include "common/logging.hh"
#include "trace/json.hh"

namespace dp
{

const char *
traceStageName(TraceStage s)
{
    switch (s) {
    case TraceStage::ThreadParallel: return "thread-parallel run";
    case TraceStage::EpochParallel: return "epoch-parallel workers";
    case TraceStage::Journal: return "epoch journal";
    case TraceStage::Replay: return "replay";
    case TraceStage::Exec: return "host executor";
    }
    return "?";
}

namespace
{

void
appendMicros(std::string &out, std::uint64_t ns)
{
    // Emit ts/dur in microseconds with ns precision kept as a
    // fraction, formatted exactly (no double rounding for the
    // magnitudes a session produces).
    out += std::to_string(ns / 1000);
    std::uint64_t frac = ns % 1000;
    if (frac) {
        char buf[8];
        std::snprintf(buf, sizeof buf, ".%03u",
                      static_cast<unsigned>(frac));
        out += buf;
    }
}

void
appendArgs(
    std::string &out,
    const std::vector<std::pair<const char *, std::uint64_t>> &args)
{
    out += "\"args\":{";
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (i)
            out += ',';
        appendJsonString(out, args[i].first);
        out += ':';
        out += std::to_string(args[i].second);
    }
    out += '}';
}

} // namespace

std::string
TraceRecorder::toChromeJson() const
{
    std::vector<TraceEvent> evs = events();

    std::string out;
    out.reserve(128 + evs.size() * 96);
    out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";

    // Process-name metadata: one pid per pipeline stage.
    bool first = true;
    for (TraceStage s :
         {TraceStage::ThreadParallel, TraceStage::EpochParallel,
          TraceStage::Journal, TraceStage::Replay,
          TraceStage::Exec}) {
        if (!first)
            out += ',';
        first = false;
        out += "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":";
        out += std::to_string(static_cast<std::uint32_t>(s));
        out += ",\"tid\":0,\"args\":{\"name\":";
        appendJsonString(out, traceStageName(s));
        out += "}}";
    }

    for (const TraceEvent &e : evs) {
        out += ",{\"name\":";
        appendJsonString(out, e.name);
        out += ",\"cat\":";
        appendJsonString(out, e.category);
        out += ",\"ph\":\"";
        switch (e.phase) {
        case TracePhase::Span: out += 'X'; break;
        case TracePhase::Instant: out += 'i'; break;
        case TracePhase::Counter: out += 'C'; break;
        }
        out += "\",\"pid\":";
        out += std::to_string(static_cast<std::uint32_t>(e.stage));
        out += ",\"tid\":";
        out += std::to_string(e.tid);
        out += ",\"ts\":";
        appendMicros(out, e.tsNs);
        if (e.phase == TracePhase::Span) {
            out += ",\"dur\":";
            appendMicros(out, e.durNs);
        }
        if (e.phase == TracePhase::Instant)
            out += ",\"s\":\"t\"";
        out += ',';
        appendArgs(out, e.args);
        out += '}';
    }
    out += "]}";
    return out;
}

bool
TraceRecorder::writeChromeJson(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f) {
        dp_warn("cannot write trace file ", path);
        return false;
    }
    std::string json = toChromeJson();
    std::size_t n = std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    if (n != json.size()) {
        dp_warn("short write to trace file ", path);
        return false;
    }
    return true;
}

} // namespace dp
