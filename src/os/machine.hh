/**
 * @file
 * Machine: one guest process = memory + threads + OS state + clock.
 *
 * A Machine is the unit of checkpointing and of execution: engines
 * (UniRunner, MultiCpuSim) advance a Machine; the recorder copies
 * Machines at epoch boundaries; divergence detection compares their
 * stateHash(). Virtual time (`now`) is deliberately excluded from the
 * hash: the thread-parallel and epoch-parallel executions of the same
 * interval take different amounts of virtual time by design.
 */

#ifndef DP_OS_MACHINE_HH
#define DP_OS_MACHINE_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hh"
#include "mem/paged_memory.hh"
#include "os/os_state.hh"
#include "vm/context.hh"
#include "vm/program.hh"

namespace dp
{

/** Boot-time configuration (not part of mutable state; never hashed). */
struct MachineConfig
{
    /** Seed for deterministic network stream content. */
    std::uint64_t netSeed = 0x5eed;
    /** Total bytes a network connection will ever deliver. */
    std::uint64_t netBytesPerConn = 64 * 1024;
    /** Virtual cycles per byte of network arrival (stream rate). */
    std::uint64_t netCyclesPerByte = 4;
    /** Files present at boot: (path, content). */
    std::vector<std::pair<std::string, std::vector<std::uint8_t>>>
        initialFiles;
};

/** A complete guest process. Copyable; copies share pages CoW. */
class Machine
{
  public:
    /** Boot @p prog: load data segments, open stdout/stderr, create
     *  the main thread (tid 0) at the entry point. */
    Machine(const GuestProgram &prog, MachineConfig cfg = {});
    /** The machine keeps a pointer to the program: temporaries are a
     *  lifetime bug, so binding one is a compile error. */
    Machine(GuestProgram &&, MachineConfig = {}) = delete;

    const GuestProgram &program() const { return *prog_; }
    const MachineConfig &config() const { return cfg_; }

    PagedMemory mem;
    std::vector<ThreadContext> threads;
    OsState os;
    Cycles now = 0;

    ThreadContext &
    thread(ThreadId t)
    {
        return threads[t];
    }
    const ThreadContext &
    thread(ThreadId t) const
    {
        return threads[t];
    }

    /** True when every thread has exited. */
    bool allExited() const;

    /** Number of threads in RunState::Runnable. */
    std::size_t runnableCount() const;

    /** Digest over memory + thread contexts + OS state (not `now`). */
    std::uint64_t stateHash() const;

    /** Bytes written so far to the stdout sink. */
    const std::vector<std::uint8_t> &stdoutBytes() const;

    /** Sum of retired instruction counts over all threads. */
    std::uint64_t totalRetired() const;

  private:
    const GuestProgram *prog_;
    MachineConfig cfg_;
};

} // namespace dp

#endif // DP_OS_MACHINE_HH
