file(REMOVE_RECURSE
  "CMakeFiles/bench_epoch_sweep.dir/bench/bench_epoch_sweep.cc.o"
  "CMakeFiles/bench_epoch_sweep.dir/bench/bench_epoch_sweep.cc.o.d"
  "bench/bench_epoch_sweep"
  "bench/bench_epoch_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_epoch_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
