# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/replay_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/mem_test[1]_include.cmake")
include("/root/repo/build/tests/vm_test[1]_include.cmake")
include("/root/repo/build/tests/os_test[1]_include.cmake")
include("/root/repo/build/tests/engines_test[1]_include.cmake")
include("/root/repo/build/tests/logs_test[1]_include.cmake")
include("/root/repo/build/tests/ckpt_test[1]_include.cmake")
include("/root/repo/build/tests/timing_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/recording_io_test[1]_include.cmake")
include("/root/repo/build/tests/text_asm_test[1]_include.cmake")
include("/root/repo/build/tests/race_detector_test[1]_include.cmake")
include("/root/repo/build/tests/debugger_test[1]_include.cmake")
include("/root/repo/build/tests/parallel_record_test[1]_include.cmake")
include("/root/repo/build/tests/pipe_test[1]_include.cmake")
include("/root/repo/build/tests/profiler_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
include("/root/repo/build/tests/live_replica_test[1]_include.cmake")
include("/root/repo/build/tests/signal_test[1]_include.cmake")
include("/root/repo/build/tests/corruption_test[1]_include.cmake")
include("/root/repo/build/tests/guest_programs_test[1]_include.cmake")
