# Empty dependencies file for live_replica_test.
# This may be replaced when dependencies are built.
