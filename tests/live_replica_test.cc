/**
 * @file
 * Tests for online epoch streaming: a LiveReplica fed committed
 * epochs during recording tracks the official execution exactly,
 * across clean runs, rollbacks, and host-parallel recording.
 */

#include <gtest/gtest.h>

#include "core/recorder.hh"
#include "replay/live_replica.hh"
#include "testprogs.hh"
#include "workloads/registry.hh"

namespace dp
{
namespace
{

TEST(LiveReplica, TracksEveryCommittedBoundary)
{
    GuestProgram prog = testprogs::lockedCounter(2, 400);
    LiveReplica replica(prog, {});

    RecorderOptions opts;
    opts.epochLength = 10'000;
    UniparallelRecorder rec(prog, {}, opts);

    std::uint32_t streamed = 0;
    RecordObserver obs;
    obs.onEpochCommitted = [&](const EpochRecord &e, EpochId idx) {
        EXPECT_EQ(idx, streamed);
        ASSERT_FALSE(replica.apply(e).has_value());
        EXPECT_EQ(replica.machine().stateHash(), e.endStateHash)
            << "replica must sit exactly at the committed boundary";
        ++streamed;
    };

    RecordOutcome out = rec.record(&obs);
    ASSERT_TRUE(out.ok);
    EXPECT_EQ(streamed, out.recording.epochs.size());
    EXPECT_EQ(replica.machine().stateHash(),
              out.recording.finalStateHash);
    EXPECT_TRUE(replica.healthy());
}

TEST(LiveReplica, SurvivesRollbacks)
{
    // Diverged epochs are official: the stream stays linear even
    // while the recorder squashes its speculation.
    GuestProgram prog = testprogs::racyCounter(4, 2'000);
    LiveReplica replica(prog, {});

    RecorderOptions opts;
    opts.epochLength = 8'000;
    UniparallelRecorder rec(prog, {}, opts);

    RecordObserver obs;
    obs.onEpochCommitted = [&](const EpochRecord &e, EpochId) {
        ASSERT_FALSE(replica.apply(e).has_value());
    };
    RecordOutcome out = rec.record(&obs);
    ASSERT_TRUE(out.ok);
    ASSERT_GT(out.recording.stats.rollbacks, 0u)
        << "this seed should race";
    EXPECT_EQ(replica.machine().stateHash(),
              out.recording.finalStateHash);
}

TEST(LiveReplica, TakeOverYieldsTheFinalMachine)
{
    const workloads::Workload *w = workloads::findWorkload("fft");
    workloads::WorkloadBundle b = w->make({.threads = 2, .scale = 1});
    LiveReplica replica(b.program, b.config);

    RecorderOptions opts;
    opts.epochLength = 40'000;
    UniparallelRecorder rec(b.program, b.config, opts);
    RecordObserver obs;
    obs.onEpochCommitted = [&](const EpochRecord &e, EpochId) {
        ASSERT_FALSE(replica.apply(e).has_value());
    };
    RecordOutcome out = rec.record(&obs);
    ASSERT_TRUE(out.ok);

    Machine standby = std::move(replica).takeOver();
    EXPECT_TRUE(standby.allExited());
    EXPECT_EQ(standby.threads[0].exitCode, b.expectedExit);
}

TEST(LiveReplica, WorksUnderHostParallelRecording)
{
    GuestProgram prog = testprogs::barrierPhases(3, 12);
    LiveReplica replica(prog, {});

    RecorderOptions opts;
    opts.epochLength = 6'000;
    opts.hostWorkers = 2; // commits still arrive in order
    UniparallelRecorder rec(prog, {}, opts);
    RecordObserver obs;
    obs.onEpochCommitted = [&](const EpochRecord &e, EpochId) {
        ASSERT_FALSE(replica.apply(e).has_value());
    };
    RecordOutcome out = rec.record(&obs);
    ASSERT_TRUE(out.ok);
    EXPECT_EQ(replica.epochsApplied(),
              out.recording.epochs.size());
    EXPECT_EQ(replica.machine().stateHash(),
              out.recording.finalStateHash);
}

TEST(LiveReplica, RejectsOutOfOrderEpochs)
{
    GuestProgram prog = testprogs::lockedCounter(2, 300);
    RecorderOptions opts;
    opts.epochLength = 10'000;
    UniparallelRecorder rec(prog, {}, opts);
    RecordOutcome out = rec.record();
    ASSERT_TRUE(out.ok);
    ASSERT_GT(out.recording.epochs.size(), 2u);

    LiveReplica replica(prog, {});
    // Feeding epoch 1 before epoch 0 must fail verification and
    // poison the replica.
    std::optional<ApplyError> err =
        replica.apply(out.recording.epochs[1]);
    ASSERT_TRUE(err.has_value());
    EXPECT_EQ(err->epoch, 0u) << "the first apply diverged";
    EXPECT_EQ(err->expectedDigest,
              out.recording.epochs[1].endStateHash);
    EXPECT_NE(err->actualDigest, err->expectedDigest);
    EXPECT_FALSE(replica.healthy());
    ASSERT_TRUE(replica.error().has_value());
    EXPECT_EQ(*replica.error(), *err) << "the first error sticks";
    EXPECT_FALSE(err->describe().empty());

    std::optional<ApplyError> again =
        replica.apply(out.recording.epochs[0]);
    ASSERT_TRUE(again.has_value())
        << "an unhealthy replica refuses further epochs";
    EXPECT_EQ(*again, *err)
        << "later applies report the original failure";
}

} // namespace
} // namespace dp
