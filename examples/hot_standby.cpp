/**
 * @file
 * Fault tolerance via journal shipping: a hot standby.
 *
 * The paper observes that uniparallel logs are small enough to stream
 * to a second machine, which replays epochs as they commit and can
 * take over on failure. This example records the key-value-store
 * workload while a ShipSender streams the committed journal across a
 * lossy (fault-injected) link to a StandbyApplier, which continuously
 * replays behind a bounded lag. The primary then "dies" mid-session:
 * the standby is promoted and its machine carries the exact state of
 * the shipped journal prefix — verified against recovery of the same
 * bytes.
 */

#include <iostream>

#include "core/recorder.hh"
#include "fault/fault.hh"
#include "journal/sharded.hh"
#include "ship/link.hh"
#include "ship/sender.hh"
#include "ship/standby.hh"
#include "workloads/registry.hh"

using namespace dp;

int
main()
{
    const workloads::Workload *mysql =
        workloads::findWorkload("mysql");
    workloads::WorkloadBundle b =
        mysql->make({.threads = 2, .scale = 2});

    RecorderOptions opts;
    opts.workerCpus = 2;
    opts.epochLength = 60'000;
    opts.keepCheckpoints = false; // the journal replaces checkpoints

    // The primary journals every committed epoch across two streams.
    ShardedJournalWriter journal(
        b.program, b.config, recorderOptionsFingerprint(opts),
        {.streams = 2});

    // The link misbehaves: seeded drops, duplicates, and torn
    // batches — every failure is a replayable decision stream.
    FaultPlan plan;
    plan.seed = 42;
    plan.with(FaultSite::LinkDrop, 0.10)
        .with(FaultSite::LinkDuplicate, 0.05)
        .with(FaultSite::LinkTornBatch, 0.05);
    FaultInjector faults(plan);

    StandbyApplier standby({.lagBound = 4, .faults = &faults});
    ShipLink link(standby, &faults);
    ShipSender sender(
        link, journal.streams(),
        [&](unsigned s) -> std::span<const std::uint8_t> {
            return journal.streamBytes(s); // flushes: durable bytes
        });

    RecordObserver obs;
    obs.addEpochSink([&](const EpochRecord &e, EpochId idx) {
        journal.appendEpoch(e, idx);
        sender.noteEpochCommitted();
        sender.pump(); // back-pressured by the standby's lag bound
        if (idx % 5 == 0)
            std::cout << "epoch " << idx << " committed; standby at "
                      << standby.replayedEpochs() << "/"
                      << standby.persistedEpochs()
                      << " replayed/persisted\n";
    });

    UniparallelRecorder recorder(b.program, b.config, opts);
    RecordOutcome out = recorder.record(&obs);
    if (!out.ok) {
        std::cerr << "recording failed\n";
        return 1;
    }
    sender.pump(); // the primary's last bytes
    if (sender.failed()) {
        std::cerr << "shipping failed: the standby is stale\n";
        return 1;
    }

    const ShipSenderStats &st = sender.stats();
    std::cout << "\nprimary finished: " << out.recording.epochs.size()
              << " epochs, exit code " << out.mainExitCode << "\n"
              << "shipped " << st.bytesShipped << " journal bytes in "
              << st.batchesAcked << " acked batches (" << st.retries
              << " retries over the lossy link)\n";

    // The primary dies here. Promote the standby and verify its
    // machine against recovery of the shipped journal bytes — the
    // state a cold restart would have to rebuild the slow way.
    Promotion p = standby.promote();
    std::cout << p.report.describe() << "\n";
    if (!p.report.promoted) {
        std::cerr << "promotion refused\n";
        return 1;
    }

    std::vector<std::vector<std::uint8_t>> images = journal.imageSet();
    std::vector<std::span<const std::uint8_t>> spans(images.begin(),
                                                     images.end());
    RecoveredShardedJournal rj = recoverShardedJournal(spans);
    bool match = rj.recording &&
                 rj.recording->finalStateHash ==
                     p.report.finalStateHash &&
                 p.machine->threads[0].exitCode == b.expectedExit;
    std::cout << "promoted standby matches recovered journal: "
              << (match ? "yes" : "NO") << "\n";
    return match ? 0 : 1;
}
