/**
 * @file
 * Replayer: deterministic re-execution of a Recording.
 *
 * Sequential replay needs nothing but the initial state and the logs:
 * each epoch's timeslice schedule is followed exactly and injectable
 * syscall results are fed from the log; every other syscall re-executes
 * deterministically and is cross-checked against the recorded result
 * stream. Epoch end states are verified against the recorded digests.
 *
 * Parallel replay exploits uniparallelism's second dividend: with the
 * epoch-start checkpoints retained, epochs are independent jobs and
 * replay runs them concurrently on real host threads.
 */

#ifndef DP_REPLAY_REPLAYER_HH
#define DP_REPLAY_REPLAYER_HH

#include <cstdint>
#include <vector>

#include "core/epoch_replay.hh"
#include "core/recording.hh"
#include "timing/cost_model.hh"

namespace dp
{

class TraceRecorder;

/** Outcome of a replay. */
struct ReplayResult
{
    bool ok = false;
    std::uint32_t epochsVerified = 0;
    /** First epoch whose replay failed verification (or ~0u). */
    std::uint32_t firstFailedEpoch = ~std::uint32_t{0};
    /** Virtual cycles consumed (sequential: total; parallel: modeled
     *  makespan over the worker pool). */
    Cycles replayCycles = 0;
    std::uint64_t instrs = 0;
    /** Reproduced whole-run stdout (sequential replay accumulates
     *  it; parallel replay reconstructs it from the last epoch's end
     *  state, which carries everything written before it). */
    std::vector<std::uint8_t> stdoutBytes;
};

/** Replays recordings produced by UniparallelRecorder. */
class Replayer
{
  public:
    explicit Replayer(const Recording &rec, CostModel costs = {})
        : rec_(&rec), costs_(costs)
    {}

    /** Attach an observability sink (nullptr = off). The replayer
     *  emits one "replay-epoch" span per epoch — tid 0 sequentially,
     *  one tid per host worker in parallel replay. Observe-only:
     *  never affects results. */
    void setTrace(TraceRecorder *tr) { trace_ = tr; }

    /** Whole-run replay from the initial state; verifies every epoch
     *  digest and the recorded syscall result stream. @p observer
     *  (optional) watches the re-execution. */
    ReplayResult
    replaySequential(const ReplayObserver *observer = nullptr) const;

    /**
     * Replay all epochs concurrently from their checkpoints on
     * @p host_threads OS threads. Requires the recording to have
     * retained checkpoints. replayCycles is the modeled makespan with
     * @p host_threads single-CPU workers.
     */
    ReplayResult replayParallel(unsigned host_threads) const;

    /**
     * Re-execute a single epoch on @p m (which must hold the epoch's
     * start state); true if its end digest verifies. Building block
     * for the debugger and other epoch-at-a-time consumers.
     */
    bool
    replayOneEpoch(Machine &m, EpochId epoch,
                   const ReplayObserver *observer = nullptr) const
    {
        Cycles cycles = 0;
        std::uint64_t instrs = 0;
        return replayEpochOn(m, rec_->epochs[epoch], cycles, instrs,
                             observer);
    }

    const Recording &recording() const { return *rec_; }

  private:
    /** Replay one epoch on @p m; true if it verifies. */
    bool replayEpochOn(Machine &m, const EpochRecord &epoch,
                       Cycles &cycles, std::uint64_t &instrs,
                       const ReplayObserver *observer = nullptr) const;

    const Recording *rec_;
    CostModel costs_;
    TraceRecorder *trace_ = nullptr;
};

} // namespace dp

#endif // DP_REPLAY_REPLAYER_HH
