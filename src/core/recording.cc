#include "core/recording.hh"

namespace dp
{

std::size_t
EpochRecord::replayLogBytes() const
{
    return schedule.sizeBytes() + syscalls.injectableSizeBytes() +
           signals.sizeBytes();
}

std::size_t
EpochRecord::totalLogBytes() const
{
    return schedule.sizeBytes() + syscalls.sizeBytes() +
           signals.sizeBytes();
}

std::size_t
Recording::replayLogBytes() const
{
    std::size_t n = 0;
    for (const EpochRecord &e : epochs)
        n += e.replayLogBytes();
    return n;
}

std::size_t
Recording::totalLogBytes() const
{
    std::size_t n = 0;
    for (const EpochRecord &e : epochs)
        n += e.totalLogBytes();
    return n;
}

} // namespace dp
