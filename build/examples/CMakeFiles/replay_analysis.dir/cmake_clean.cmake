file(REMOVE_RECURSE
  "CMakeFiles/replay_analysis.dir/replay_analysis.cpp.o"
  "CMakeFiles/replay_analysis.dir/replay_analysis.cpp.o.d"
  "replay_analysis"
  "replay_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replay_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
