/**
 * @file
 * Virtual-time cost model.
 *
 * All performance results in the benchmark harness are expressed in
 * guest cycles computed from this model, so they are deterministic and
 * machine-independent. Default constants are chosen so that the
 * relative costs (syscall ≫ atomic ≈ instruction; checkpoint cost
 * proportional to dirty pages) mirror the ratios on the paper's
 * hardware; EXPERIMENTS.md documents the calibration.
 */

#ifndef DP_TIMING_COST_MODEL_HH
#define DP_TIMING_COST_MODEL_HH

#include <cstdint>

#include "common/types.hh"

namespace dp
{

/** Cycle costs charged by the execution engines and the recorder. */
struct CostModel
{
    /// @name Baseline execution costs (charged in every run)
    /// @{
    /** Cycles per ordinary retired instruction. */
    Cycles instrCycles = 1;
    /** Extra cycles for executing any syscall (kernel entry/exit). */
    Cycles syscallCycles = 150;
    /** Extra cycles for a blocking syscall that actually blocks. */
    Cycles blockCycles = 150;
    /** Uniprocessor context switch (timeslice change). */
    Cycles contextSwitchCycles = 80;
    /// @}

    /// @name Recording instrumentation costs (DoublePlay only)
    /// @{
    /** Logging one sync-order entry in the thread-parallel run. */
    Cycles syncLogCycles = 4;
    /** Logging one syscall result record. */
    Cycles syscallLogCycles = 40;
    /** Quiescing all threads at an epoch barrier (per thread). */
    Cycles epochBarrierCyclesPerThread = 600;
    /** Copy-on-write checkpoint: per dirty page. */
    Cycles checkpointPageCycles = 100;
    /** Fixed checkpoint bookkeeping cost. */
    Cycles checkpointFixedCycles = 2500;
    /** Divergence check: per resident page compared (hash). */
    Cycles divergenceCheckPageCycles = 10;
    /// @}

    /// @name Baseline recorder costs (for the E9 comparison)
    /// @{
    /** CREW recorder: cost of a page-ownership transition (a page
     *  fault plus remote TLB/permission shootdown). */
    Cycles crewFaultCycles = 1500;
    /** Value-logging recorder: per-access dynamic instrumentation
     *  (binary-translation dispatch on every memory op). */
    Cycles valueInstrumentCycles = 16;
    /** Value-logging recorder: cost per logged shared load. */
    Cycles valueLogCycles = 12;
    /// @}
};

} // namespace dp

#endif // DP_TIMING_COST_MODEL_HH
