file(REMOVE_RECURSE
  "libdp_harness.a"
)
