/**
 * @file
 * Smoke test for the bench JSON emitter: run the bench_micro binary
 * (filtered down to one cheap microbench) and validate the
 * BENCH_micro.json it leaves behind against the dp-bench-v1 schema.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <unistd.h>

#include "trace/json.hh"

#ifndef DP_BENCH_MICRO_BIN
#error "DP_BENCH_MICRO_BIN must point at the bench_micro binary"
#endif

#ifndef DP_BENCH_CKPT_BIN
#error "DP_BENCH_CKPT_BIN must point at the bench_ckpt_cost binary"
#endif

#ifndef DP_BENCH_JOURNAL_BIN
#error "DP_BENCH_JOURNAL_BIN must point at bench_journal_scale"
#endif

#ifndef DP_BENCH_STANDBY_BIN
#error "DP_BENCH_STANDBY_BIN must point at bench_standby_lag"
#endif

namespace dp
{
namespace
{

/** Parse @p path and validate the shared dp-bench-v1 row fields. */
JsonValue
loadBenchJson(const std::string &path, const std::string &bench)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path << " was not written";
    std::ostringstream ss;
    ss << in.rdbuf();
    in.close();

    std::string err;
    std::optional<JsonValue> doc = JsonValue::parse(ss.str(), &err);
    EXPECT_TRUE(doc.has_value()) << err;
    if (!doc)
        return JsonValue::object();
    EXPECT_TRUE(doc->isObject());

    const JsonValue *schema = doc->find("schema");
    EXPECT_NE(schema, nullptr);
    if (schema)
        EXPECT_EQ(schema->asString(), "dp-bench-v1");
    const JsonValue *name = doc->find("bench");
    EXPECT_NE(name, nullptr);
    if (name)
        EXPECT_EQ(name->asString(), bench);

    const JsonValue *rows = doc->find("rows");
    EXPECT_NE(rows, nullptr);
    if (!rows || !rows->isArray() || rows->items().empty()) {
        ADD_FAILURE() << path << " has no rows";
        return JsonValue::object();
    }
    for (const JsonValue &row : rows->items()) {
        const JsonValue *fields[] = {
            row.find("name"),     row.find("workload"),
            row.find("workers"),  row.find("overhead"),
            row.find("logBytes"), row.find("epochs"),
        };
        for (const JsonValue *f : fields) {
            EXPECT_NE(f, nullptr) << "missing dp-bench-v1 field";
            if (!f)
                return JsonValue::object();
        }
        EXPECT_FALSE(row.find("name")->asString().empty());
        EXPECT_FALSE(row.find("workload")->asString().empty());
        EXPECT_GT(row.find("workers")->asNumber(), 0.0);
        EXPECT_GT(row.find("logBytes")->asNumber(), 0.0);
        EXPECT_GT(row.find("epochs")->asNumber(), 0.0);
    }
    return *std::move(doc);
}

TEST(BenchSmoke, MicroEmitsSchemaValidJson)
{
    char tmpl[] = "/tmp/dp-bench-smoke-XXXXXX";
    ASSERT_NE(mkdtemp(tmpl), nullptr);
    const std::string dir = tmpl;
    const std::string path = dir + "/BENCH_micro.json";

    const std::string cmd =
        "DP_BENCH_JSON_DIR=" + dir + " " + DP_BENCH_MICRO_BIN +
        " --benchmark_filter=BM_VarintEncode"
        " --benchmark_min_time=0.01 > /dev/null 2>&1";
    ASSERT_EQ(std::system(cmd.c_str()), 0) << cmd;

    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << path << " was not written";
    std::ostringstream ss;
    ss << in.rdbuf();
    in.close();

    std::string err;
    std::optional<JsonValue> doc = JsonValue::parse(ss.str(), &err);
    ASSERT_TRUE(doc.has_value()) << err;
    ASSERT_TRUE(doc->isObject());

    const JsonValue *schema = doc->find("schema");
    ASSERT_NE(schema, nullptr);
    EXPECT_EQ(schema->asString(), "dp-bench-v1");
    const JsonValue *bench = doc->find("bench");
    ASSERT_NE(bench, nullptr);
    EXPECT_EQ(bench->asString(), "micro");

    const JsonValue *rows = doc->find("rows");
    ASSERT_NE(rows, nullptr);
    ASSERT_TRUE(rows->isArray());
    ASSERT_FALSE(rows->items().empty());
    for (const JsonValue &row : rows->items()) {
        const JsonValue *name = row.find("name");
        const JsonValue *workload = row.find("workload");
        const JsonValue *workers = row.find("workers");
        const JsonValue *overhead = row.find("overhead");
        const JsonValue *log_bytes = row.find("logBytes");
        const JsonValue *epochs = row.find("epochs");
        ASSERT_NE(name, nullptr);
        ASSERT_NE(workload, nullptr);
        ASSERT_NE(workers, nullptr);
        ASSERT_NE(overhead, nullptr);
        ASSERT_NE(log_bytes, nullptr);
        ASSERT_NE(epochs, nullptr);
        EXPECT_FALSE(name->asString().empty());
        EXPECT_FALSE(workload->asString().empty());
        EXPECT_GT(workers->asNumber(), 0.0);
        EXPECT_GT(log_bytes->asNumber(), 0.0);
        EXPECT_GT(epochs->asNumber(), 0.0);
    }

    std::remove(path.c_str());
    rmdir(dir.c_str());
}

TEST(BenchSmoke, CkptCostEmitsSchemaValidJson)
{
    char tmpl[] = "/tmp/dp-bench-smoke-XXXXXX";
    ASSERT_NE(mkdtemp(tmpl), nullptr);
    const std::string dir = tmpl;
    const std::string path = dir + "/BENCH_ckpt_cost.json";

    const std::string cmd = "DP_BENCH_JSON_DIR=" + dir + " " +
                            DP_BENCH_CKPT_BIN " > /dev/null 2>&1";
    ASSERT_EQ(std::system(cmd.c_str()), 0) << cmd;

    JsonValue doc = loadBenchJson(path, "ckpt_cost");
    const JsonValue *rows = doc.find("rows");
    ASSERT_NE(rows, nullptr);

    // The sweep must include the sparse-dirty/large-footprint config
    // the incremental digest exists for, and the O(resident) rehash
    // must be decisively slower there (overhead = slowdown - 1, so
    // >= 4 means a >= 5x speedup). The ratio is host-timing based but
    // the asymmetry is ~1000x at this shape — 5x is a loose floor.
    bool saw_sparse = false;
    for (const JsonValue &row : rows->items()) {
        if (row.find("name")->asString() != "resident16384/dirty16")
            continue;
        saw_sparse = true;
        EXPECT_GE(row.find("overhead")->asNumber(), 4.0)
            << "incremental digest lost its O(dirty) advantage";
    }
    EXPECT_TRUE(saw_sparse)
        << "sweep no longer covers the sparse-dirty config";

    std::remove(path.c_str());
    rmdir(dir.c_str());
}

TEST(BenchSmoke, JournalScaleEmitsSchemaValidJson)
{
    char tmpl[] = "/tmp/dp-bench-smoke-XXXXXX";
    ASSERT_NE(mkdtemp(tmpl), nullptr);
    const std::string dir = tmpl;
    const std::string path = dir + "/BENCH_journal_scale.json";

    const std::string cmd = "DP_BENCH_JSON_DIR=" + dir + " " +
                            DP_BENCH_JOURNAL_BIN " > /dev/null 2>&1";
    ASSERT_EQ(std::system(cmd.c_str()), 0) << cmd;

    JsonValue doc = loadBenchJson(path, "journal_scale");
    const JsonValue *rows = doc.find("rows");
    ASSERT_NE(rows, nullptr);

    // Both sweeps must be present: commit throughput at 1/2/4
    // streams and recovery at 1/2/4 jobs. The bench exits nonzero on
    // any byte divergence across shapes, so the exit check above
    // already covers the identity contract.
    for (const char *want :
         {"commit:pfscan@s1", "commit:pfscan@s2", "commit:pfscan@s4",
          "recover:pfscan@j1", "recover:pfscan@j2",
          "recover:pfscan@j4"}) {
        bool saw = false;
        for (const JsonValue &row : rows->items())
            saw = saw || row.find("name")->asString() == want;
        EXPECT_TRUE(saw) << "missing row " << want;
    }

    std::remove(path.c_str());
    rmdir(dir.c_str());
}

TEST(BenchSmoke, StandbyLagEmitsSchemaValidJson)
{
    char tmpl[] = "/tmp/dp-bench-smoke-XXXXXX";
    ASSERT_NE(mkdtemp(tmpl), nullptr);
    const std::string dir = tmpl;
    const std::string path = dir + "/BENCH_standby_lag.json";

    // The bench itself fails on any standby divergence, so the exit
    // check is the correctness gate; the JSON check is the schema
    // gate.
    const std::string cmd = "DP_BENCH_JSON_DIR=" + dir + " " +
                            DP_BENCH_STANDBY_BIN " > /dev/null 2>&1";
    ASSERT_EQ(std::system(cmd.c_str()), 0) << cmd;

    JsonValue doc = loadBenchJson(path, "standby_lag");
    const JsonValue *rows = doc.find("rows");
    ASSERT_NE(rows, nullptr);

    // The sweep must cover the clean link and a lossy one at both
    // epoch rates.
    for (const char *want :
         {"ship:pfscan@e60k,f0", "ship:pfscan@e60k,f30",
          "ship:pfscan@e150k,f0", "ship:pfscan@e150k,f30"}) {
        bool saw = false;
        for (const JsonValue &row : rows->items())
            saw = saw || row.find("name")->asString() == want;
        EXPECT_TRUE(saw) << "missing row " << want;
    }

    std::remove(path.c_str());
    rmdir(dir.c_str());
}

} // namespace
} // namespace dp
