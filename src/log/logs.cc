#include "log/logs.hh"

#include <algorithm>

namespace dp
{

void
SyncOrderLog::append(ThreadId tid, SyncKind kind, SyncKey key)
{
    events_.push_back({tid, kind, key});
}

std::vector<std::uint8_t>
SyncOrderLog::encode() const
{
    ByteWriter w;
    w.varu(events_.size());
    for (const SyncEvent &e : events_) {
        w.varu((static_cast<std::uint64_t>(e.tid) << 1) |
               (e.kind == SyncKind::Syscall ? 1 : 0));
        // 0 denotes the global key; addresses shift up by one.
        w.varu(e.key == globalSyncKey ? 0 : e.key + 1);
    }
    return w.take();
}

SyncOrderLog
SyncOrderLog::decode(std::span<const std::uint8_t> bytes)
{
    ByteReader r(bytes);
    SyncOrderLog log;
    std::uint64_t n = r.varu();
    log.events_.reserve(std::min<std::uint64_t>(n, bytes.size()));
    for (std::uint64_t i = 0; i < n; ++i) {
        std::uint64_t v = r.varu();
        std::uint64_t k = r.varu();
        log.events_.push_back(
            {static_cast<ThreadId>(v >> 1),
             (v & 1) ? SyncKind::Syscall : SyncKind::Atomic,
             k == 0 ? globalSyncKey : k - 1});
    }
    return log;
}

std::size_t
SyncOrderLog::sizeBytes() const
{
    return encode().size();
}

void
ScheduleLog::append(const ScheduleSegment &seg)
{
    segments_.push_back(seg);
}

std::vector<std::uint8_t>
ScheduleLog::encode() const
{
    ByteWriter w;
    w.varu(segments_.size());
    for (const ScheduleSegment &s : segments_) {
        w.varu((static_cast<std::uint64_t>(s.tid) << 1) |
               (s.endedBlocked ? 1 : 0));
        w.varu(s.instrs);
    }
    return w.take();
}

ScheduleLog
ScheduleLog::decode(std::span<const std::uint8_t> bytes)
{
    ByteReader r(bytes);
    ScheduleLog log;
    std::uint64_t n = r.varu();
    log.segments_.reserve(std::min<std::uint64_t>(n, bytes.size()));
    for (std::uint64_t i = 0; i < n; ++i) {
        std::uint64_t head = r.varu();
        std::uint64_t instrs = r.varu();
        log.segments_.push_back({static_cast<ThreadId>(head >> 1),
                                 instrs, (head & 1) != 0});
    }
    return log;
}

std::size_t
ScheduleLog::sizeBytes() const
{
    return encode().size();
}

std::vector<std::uint8_t>
SignalLog::encode() const
{
    ByteWriter w;
    w.varu(events_.size());
    for (const SignalEvent &e : events_) {
        w.varu(e.tid);
        w.varu(e.retired);
        w.u8(e.sig);
    }
    return w.take();
}

SignalLog
SignalLog::decode(std::span<const std::uint8_t> bytes)
{
    ByteReader r(bytes);
    SignalLog log;
    std::uint64_t n = r.varu();
    log.events_.reserve(std::min<std::uint64_t>(n, bytes.size()));
    for (std::uint64_t i = 0; i < n; ++i) {
        SignalEvent e;
        e.tid = static_cast<ThreadId>(r.varu());
        e.retired = r.varu();
        e.sig = r.u8();
        log.events_.push_back(e);
    }
    return log;
}

std::size_t
SignalLog::sizeBytes() const
{
    return encode().size();
}

void
SyscallLog::append(const SyscallRecord &rec)
{
    records_.push_back(rec);
}

std::vector<std::uint8_t>
SyscallLog::encode() const
{
    ByteWriter w;
    w.varu(records_.size());
    for (const SyscallRecord &rec : records_) {
        // 5 bits of syscall id + the injectable flag under the tid.
        w.varu((static_cast<std::uint64_t>(rec.tid) << 6) |
               (static_cast<std::uint64_t>(rec.sys) << 1) |
               (rec.injectable ? 1 : 0));
        w.varu(rec.value);
    }
    return w.take();
}

SyscallLog
SyscallLog::decode(std::span<const std::uint8_t> bytes)
{
    ByteReader r(bytes);
    SyscallLog log;
    std::uint64_t n = r.varu();
    log.records_.reserve(std::min<std::uint64_t>(n, bytes.size()));
    for (std::uint64_t i = 0; i < n; ++i) {
        std::uint64_t head = r.varu();
        SyscallRecord rec;
        rec.tid = static_cast<ThreadId>(head >> 6);
        rec.sys = static_cast<Sys>((head >> 1) & 0x1f);
        rec.injectable = (head & 1) != 0;
        rec.value = r.varu();
        log.records_.push_back(rec);
    }
    return log;
}

std::size_t
SyscallLog::injectableSizeBytes() const
{
    ByteWriter w;
    for (const SyscallRecord &rec : records_) {
        if (!rec.injectable)
            continue;
        w.varu(static_cast<std::uint64_t>(rec.tid));
        w.varu(rec.value);
    }
    return w.size();
}

std::size_t
SyscallLog::sizeBytes() const
{
    return encode().size();
}

} // namespace dp
