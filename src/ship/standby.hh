/**
 * @file
 * StandbyApplier: the receiving half of journal shipping.
 *
 * The standby persists shipped journal bytes into local per-stream
 * images, incrementally parses committed frames out of them, and
 * continuously replays completed epochs on a LiveReplica via an apply
 * strand on the shared exec pool — so at any moment it maintains the
 * watermark pair the ERMIA replication design tracks:
 *
 *   persisted  — epochs whose frames are durable in local images
 *                (contiguous from the journal's base epoch);
 *   replayed   — epochs the replica machine has applied.
 *
 * Bounded lag: receive() holds its ack while persisted - replayed
 * exceeds the lag bound, which back-pressures the primary through the
 * sender's synchronous ship path. The bound is enforced at batch
 * granularity — the instantaneous lag can overshoot by the epochs one
 * batch carries, but the primary cannot run ahead further than one
 * unacked batch past the bound.
 *
 * Fail-closed rules: a digest mismatch during apply (LiveReplica's
 * ApplyError), structurally corrupt journal bytes inside an accepted
 * batch, or cross-stream identity mismatches all poison the standby —
 * it refuses every further batch and promote() refuses to hand out a
 * machine (the replica's state is past the last verified boundary).
 * Torn batches, gaps, duplicates, and reorders are *not* failures:
 * they are refused or absorbed idempotently and the ack's watermarks
 * resynchronize the sender.
 *
 * StandbyCrash (a FaultSite) models the standby process dying: all
 * volatile state — replica, decoded epochs, apply queue — is lost,
 * and the standby recovers exactly the way a restarted process would:
 * recoverJournal / recoverShardedJournal over its own persisted
 * images, truncation to the committed prefix / consistent cut, and a
 * from-scratch re-apply. The sender resyncs from the recovered
 * offsets carried in the nack.
 *
 * promote() is failover: drain the apply strand, then hand out the
 * replica's Machine plus a FailoverReport. Promotion rule: a machine
 * is produced iff the standby never failed closed; its state hash
 * then equals the digest of epoch (persisted-1)'s boundary — the same
 * state recovery of the shipped journal prefix would reach.
 */

#ifndef DP_SHIP_STANDBY_HH
#define DP_SHIP_STANDBY_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/recording.hh"
#include "exec/executor.hh"
#include "fault/fault.hh"
#include "replay/live_replica.hh"
#include "ship/ship.hh"

namespace dp
{

/** Shape of a standby. */
struct StandbyOptions
{
    /** Max persisted - replayed epochs before acks are held (the
     *  back-pressure bound). */
    std::uint64_t lagBound = 8;
    /** Workers of the private apply pool when @p pool is null
     *  (0 = applies run inline inside receive()). */
    unsigned applyWorkers = 1;
    /** Shared exec pool to run the apply strand on (null: the standby
     *  owns a private pool of applyWorkers). */
    Executor *pool = nullptr;
    /** Fault injector consulted for StandbyCrash (scope = batch
     *  sequence number). */
    FaultInjector *faults = nullptr;
};

/** What failover found when the standby was promoted. */
struct FailoverReport
{
    /** A machine was produced (the standby never failed closed and
     *  had materialized a replica from the shipped header). */
    bool promoted = false;
    /** The standby refused promotion: digest mismatch or structural
     *  corruption. */
    bool failedClosed = false;
    /** The digest mismatch, when that is what failed the standby. */
    std::optional<ApplyError> applyError;
    /** Human-readable cause when failedClosed. */
    std::string failReason;
    std::uint64_t persistedEpochs = 0;
    std::uint64_t replayedEpochs = 0;
    /** State hash of the promoted machine (0 when not promoted). */
    std::uint64_t finalStateHash = 0;
    /** StandbyCrash recoveries survived along the way. */
    std::uint64_t crashesRecovered = 0;

    /** One-line human-readable rendering. */
    std::string describe() const;
};

/** The result of promote(). */
struct Promotion
{
    /** Owns the guest program the machine points into. */
    std::shared_ptr<const GuestProgram> program;
    /** The promoted standby machine; null unless report.promoted. */
    std::unique_ptr<Machine> machine;
    FailoverReport report;
};

/** The receiving half of journal shipping (see file comment). */
class StandbyApplier
{
  public:
    explicit StandbyApplier(StandbyOptions opts = {});
    StandbyApplier(const StandbyApplier &) = delete;
    StandbyApplier &operator=(const StandbyApplier &) = delete;
    ~StandbyApplier();

    /**
     * Deliver one wire batch (possibly damaged). Appends fresh bytes,
     * parses any newly-completed frames, schedules epoch applies, and
     * holds the ack while the lag bound is exceeded. Never throws;
     * every failure shape becomes an ack.
     */
    ShipAck receive(std::span<const std::uint8_t> wire);

    /** Epochs durably persisted in local images (contiguous). */
    std::uint64_t persistedEpochs() const;
    /** Epochs the replica has replayed. */
    std::uint64_t replayedEpochs() const;
    /** The standby refused service permanently. */
    bool failedClosed() const;
    /** The digest mismatch that failed the standby, if any. */
    std::optional<ApplyError> applyError() const;
    /** Authoritative per-stream image sizes. */
    std::vector<std::uint64_t> imageOffsets() const;
    /** Copies of the standby's persisted stream images. */
    std::vector<std::vector<std::uint8_t>> imageSet() const;
    StandbyStats stats() const;

    /** Block until every persisted epoch has been applied (or the
     *  standby failed closed). */
    void drain();

    /** Fail over: drain, then hand out the standby machine and the
     *  report. The applier refuses all batches afterwards. */
    Promotion promote();

  private:
    struct StreamState
    {
        /** Persisted bytes (survive a StandbyCrash). */
        std::vector<std::uint8_t> image;
        /** Bytes consumed by fully-parsed frames. */
        std::size_t scanned = 0;
        bool headerSeen = false;
        /** Next epoch index this stream must deliver. */
        std::uint64_t nextIndex = 0;
    };

    ShipAck ackLocked(std::uint64_t seq, bool accepted) const;
    std::uint64_t lagLocked() const;
    void failLocked(std::string reason);
    void configureLocked(std::uint32_t stream_count);
    /** Parse newly-completed frames of stream @p s and hand finished
     *  epochs to the apply strand. */
    void ingestLocked(unsigned s);
    void advanceContiguousLocked();
    /** Lose all volatile state and recover from the images. */
    void crashLocked(std::unique_lock<std::mutex> &lock);
    void waitForStrandIdleLocked(std::unique_lock<std::mutex> &lock);
    void scheduleDrain(std::unique_lock<std::mutex> &lock);
    void drainApplies();

    StandbyOptions opts_;
    std::unique_ptr<Executor> ownPool_;
    Executor *pool_ = nullptr;

    mutable std::mutex mu_;
    std::condition_variable idleCv_; ///< strand went idle
    std::condition_variable lagCv_;  ///< replayed advanced

    bool configured_ = false;
    std::vector<StreamState> streams_;
    std::uint64_t baseEpoch_ = 0;
    /** Canonical v3 header payload after the streamIndex varint —
     *  byte-identical across the streams of one journal; the first
     *  decoded header pins it and siblings must match. */
    std::vector<std::uint8_t> headerSuffix_;
    /** Next epoch index to mark persisted (contiguous). */
    std::uint64_t nextPersist_ = 0;
    /** Parsed epochs waiting for their predecessors. */
    std::map<std::uint64_t, EpochRecord> parsed_;
    std::deque<EpochRecord> applyQueue_;
    bool strandRunning_ = false;
    std::uint64_t replayed_ = 0;

    /** Header ingredients (survive only as bytes across a crash —
     *  rebuilt by re-scanning the images). */
    std::shared_ptr<const GuestProgram> prog_;
    MachineConfig cfg_{};
    std::unique_ptr<LiveReplica> replica_;

    bool failed_ = false;
    std::string failReason_;
    std::optional<ApplyError> applyError_;
    bool promoted_ = false;
    StandbyStats stats_;
};

} // namespace dp

#endif // DP_SHIP_STANDBY_HH
