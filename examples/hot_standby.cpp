/**
 * @file
 * Fault tolerance via streamed replay: a hot standby.
 *
 * The paper observes that uniparallel logs are small enough to stream
 * to a second machine, which replays epochs as they commit and can
 * take over on failure. This example records the key-value-store
 * workload while streaming every committed epoch into a LiveReplica,
 * then "fails over": the standby machine finishes with the exact
 * state of the recorded execution.
 */

#include <iostream>

#include "core/recorder.hh"
#include "replay/live_replica.hh"
#include "workloads/registry.hh"

using namespace dp;

int
main()
{
    const workloads::Workload *mysql =
        workloads::findWorkload("mysql");
    workloads::WorkloadBundle b =
        mysql->make({.threads = 2, .scale = 2});

    // The "standby machine": same program image, fed only logs.
    LiveReplica standby(b.program, b.config);

    RecorderOptions opts;
    opts.workerCpus = 2;
    opts.epochLength = 60'000;
    opts.keepCheckpoints = false; // the stream replaces checkpoints
    UniparallelRecorder recorder(b.program, b.config, opts);

    std::uint64_t streamed_bytes = 0;
    RecordObserver obs;
    obs.onEpochCommitted = [&](const EpochRecord &e, EpochId idx) {
        streamed_bytes += e.replayLogBytes();
        if (!standby.apply(e)) {
            std::cerr << "standby lost sync at epoch " << idx << "\n";
            std::exit(1);
        }
        if (idx % 5 == 0)
            std::cout << "epoch " << idx << " committed; standby in "
                      << "sync (stream so far: " << streamed_bytes
                      << " bytes)\n";
    };

    RecordOutcome out = recorder.record(&obs);
    if (!out.ok) {
        std::cerr << "recording failed\n";
        return 1;
    }

    std::cout << "\nprimary finished: " << out.recording.epochs.size()
              << " epochs, exit code " << out.mainExitCode << "\n"
              << "total log streamed: " << streamed_bytes
              << " bytes (vs "
              << b.program.dataSegments[0].second.size()
              << "-byte initial table image)\n";

    // Fail over: the standby takes charge.
    Machine taken = std::move(standby).takeOver();
    std::cout << "standby state digest matches primary: "
              << (taken.stateHash() == out.recording.finalStateHash
                      ? "yes"
                      : "NO")
              << "\nstandby's exit code: " << taken.threads[0].exitCode
              << " (expected " << b.expectedExit << ")\n";
    return taken.stateHash() == out.recording.finalStateHash ? 0 : 1;
}
