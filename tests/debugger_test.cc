/**
 * @file
 * Tests for the epoch-granular replay debugger: seeking (with and
 * without checkpoints), watchpoints, and predicate search.
 */

#include <gtest/gtest.h>

#include "analysis/debugger.hh"
#include "core/recorder.hh"
#include "testprogs.hh"

namespace dp
{
namespace
{

RecordOutcome
record(bool keep_checkpoints)
{
    GuestProgram prog = testprogs::lockedCounter(2, 600);
    RecorderOptions opts;
    opts.epochLength = 10'000;
    opts.keepCheckpoints = keep_checkpoints;
    UniparallelRecorder rec(prog, {}, opts);
    RecordOutcome out = rec.record();
    EXPECT_TRUE(out.ok);
    EXPECT_GT(out.recording.epochs.size(), 3u);
    return out;
}

TEST(ReplayDebugger, StepsThroughAllEpochs)
{
    RecordOutcome out = record(true);
    ReplayDebugger dbg(out.recording);
    EXPECT_EQ(dbg.position(), 0u);
    std::uint64_t prev_counter = 0;
    while (dbg.position() < dbg.epochCount()) {
        ASSERT_TRUE(dbg.step());
        std::uint64_t counter =
            dbg.readWord(testprogs::counterAddr);
        EXPECT_GE(counter, prev_counter)
            << "counter regressed across epochs";
        prev_counter = counter;
    }
    EXPECT_EQ(prev_counter, 1'200u);
    EXPECT_EQ(dbg.machine().stateHash(),
              out.recording.finalStateHash);
}

TEST(ReplayDebugger, SeekMatchesCheckpoints)
{
    RecordOutcome out = record(true);
    ReplayDebugger dbg(out.recording);
    EpochId mid = dbg.epochCount() / 2;
    ASSERT_TRUE(dbg.seek(mid));
    EXPECT_EQ(dbg.position(), mid);
    EXPECT_EQ(dbg.machine().stateHash(),
              out.recording.checkpoints[mid].stateHash());

    // Backward seek (checkpoint rewind) agrees with forward replay.
    ASSERT_TRUE(dbg.seek(1));
    EXPECT_EQ(dbg.machine().stateHash(),
              out.recording.checkpoints[1].stateHash());
}

TEST(ReplayDebugger, SeekWorksWithoutCheckpoints)
{
    RecordOutcome out = record(false);
    ReplayDebugger dbg(out.recording);
    EpochId mid = dbg.epochCount() / 2;
    ASSERT_TRUE(dbg.seek(mid));
    std::uint64_t at_mid = dbg.readWord(testprogs::counterAddr);

    // Rewind (replays from the start) and land on the same state.
    ASSERT_TRUE(dbg.seek(1));
    ASSERT_TRUE(dbg.seek(mid));
    EXPECT_EQ(dbg.readWord(testprogs::counterAddr), at_mid);
}

TEST(ReplayDebugger, WatchSeesCounterWritesWithoutAdvancing)
{
    RecordOutcome out = record(true);
    ReplayDebugger dbg(out.recording);
    ASSERT_TRUE(dbg.seek(1));
    std::uint64_t before = dbg.readWord(testprogs::counterAddr);

    auto hits = dbg.watch(testprogs::counterAddr, 8);
    ASSERT_TRUE(hits.has_value());
    EXPECT_FALSE(hits->empty())
        << "epoch 1 must touch the shared counter";
    std::size_t writes = 0;
    for (const WatchedAccess &h : *hits) {
        EXPECT_EQ(h.epoch, 1u);
        EXPECT_GE(h.addr + h.size, testprogs::counterAddr);
        writes += h.isWrite;
    }
    EXPECT_GT(writes, 0u);
    EXPECT_EQ(dbg.position(), 1u) << "watch must not advance";
    EXPECT_EQ(dbg.readWord(testprogs::counterAddr), before);
}

TEST(ReplayDebugger, FindFirstBoundaryLocatesAThreshold)
{
    RecordOutcome out = record(true);
    ReplayDebugger dbg(out.recording);
    auto found = dbg.findFirstBoundary([](const Machine &m) {
        return m.mem.read64(testprogs::counterAddr) >= 600;
    });
    ASSERT_TRUE(found.has_value());
    EXPECT_GT(*found, 0u);
    EXPECT_GE(dbg.readWord(testprogs::counterAddr), 600u);

    // One boundary earlier the predicate must not hold.
    ASSERT_TRUE(dbg.seek(*found - 1));
    EXPECT_LT(dbg.readWord(testprogs::counterAddr), 600u);
}

TEST(ReplayDebugger, FindFirstBoundaryReturnsNulloptWhenNever)
{
    RecordOutcome out = record(true);
    ReplayDebugger dbg(out.recording);
    auto found = dbg.findFirstBoundary([](const Machine &m) {
        return m.mem.read64(testprogs::counterAddr) > 1'000'000;
    });
    EXPECT_FALSE(found.has_value());
    EXPECT_EQ(dbg.position(), dbg.epochCount());
}

} // namespace
} // namespace dp
