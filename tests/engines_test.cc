/**
 * @file
 * Unit tests for the execution engines: UniRunner scheduling
 * semantics (quantum, segments, blocked attempts, epoch targets) and
 * MultiCpuSim determinism and race behaviour.
 */

#include <gtest/gtest.h>

#include <set>

#include "os/multicpu_sim.hh"
#include "vm/assembler.hh"
#include "os/simos.hh"
#include "os/uni_runner.hh"
#include "testprogs.hh"

namespace dp
{
namespace
{

TEST(UniRunner, DeterministicAcrossRuns)
{
    GuestProgram prog = testprogs::lockedCounter(3, 50);
    auto run_once = [&] {
        Machine m(prog, {});
        SimOS os;
        UniRunner r(m, os, {}, {});
        EXPECT_EQ(r.run(), StopReason::AllExited);
        return m.stateHash();
    };
    EXPECT_EQ(run_once(), run_once());
}

TEST(UniRunner, QuantumControlsSegmentLengths)
{
    GuestProgram prog = testprogs::atomicCounter(2, 500);
    Machine m(prog, {});
    SimOS os;
    UniOptions opts;
    opts.quantum = 100;
    std::vector<ScheduleSegment> segs;
    UniHooks hooks;
    hooks.onSegment = [&](const ScheduleSegment &s) {
        segs.push_back(s);
    };
    UniRunner r(m, os, opts, hooks);
    EXPECT_EQ(r.run(), StopReason::AllExited);
    ASSERT_GT(segs.size(), 5u);
    for (const auto &s : segs)
        EXPECT_LE(s.instrs, 100u);
    // Total retired must equal segment sums plus wake-completions.
    std::uint64_t seg_sum = 0;
    for (const auto &s : segs)
        seg_sum += s.instrs;
    EXPECT_LE(seg_sum, m.totalRetired());
}

TEST(UniRunner, SegmentsRecordBlockedAttempts)
{
    // Futex-heavy program: some slices must end in a blocking
    // attempt that did not retire.
    GuestProgram prog = testprogs::lockedCounter(3, 100);
    Machine m(prog, {});
    SimOS os;
    UniOptions opts;
    opts.quantum = 60; // preempt inside critical sections
    std::vector<ScheduleSegment> segs;
    UniHooks hooks;
    hooks.onSegment = [&](const ScheduleSegment &s) {
        segs.push_back(s);
    };
    UniRunner r(m, os, opts, hooks);
    EXPECT_EQ(r.run(), StopReason::AllExited);
    bool any_blocked = false;
    for (const auto &s : segs)
        any_blocked = any_blocked || s.endedBlocked;
    EXPECT_TRUE(any_blocked);
}

TEST(UniRunner, DeadlockIsDetected)
{
    // One thread waits on a futex nobody will ever wake.
    using enum Reg;
    Assembler a;
    a.lia(r4, 0x800);
    a.mov(r1, r4);
    a.li(r2, 0); // matches the (zero) value: sleeps forever
    a.sys(Sys::FutexWait);
    a.li(r1, 0);
    a.sys(Sys::Exit);
    GuestProgram prog = a.finish("deadlock");
    Machine m(prog, {});
    SimOS os;
    UniRunner r(m, os, {}, {});
    EXPECT_EQ(r.run(), StopReason::Deadlock);
}

TEST(UniRunner, FuelFuseTrips)
{
    using enum Reg;
    Assembler a;
    Label spin = a.hereLabel();
    a.jmp(spin);
    GuestProgram prog = a.finish("spin_forever");
    Machine m(prog, {});
    SimOS os;
    UniOptions opts;
    opts.fuel = 10'000;
    UniRunner r(m, os, opts, {});
    EXPECT_EQ(r.run(), StopReason::FuelExhausted);
    EXPECT_GE(r.stats().instrs, 10'000u);
}

TEST(UniRunner, EpochTargetsStopExactly)
{
    GuestProgram prog = testprogs::arithLoop(10'000);
    Machine m(prog, {});
    SimOS os;
    UniOptions opts;
    opts.targets = {{1'000, RunState::Runnable}};
    UniRunner r(m, os, opts, {});
    EXPECT_EQ(r.run(), StopReason::TargetsReached);
    EXPECT_EQ(m.threads[0].retired, 1'000u);
    EXPECT_EQ(m.threads[0].state, RunState::Runnable);
}

TEST(UniRunner, TargetWithBlockedEndStateExecutesTheAttempt)
{
    using enum Reg;
    Assembler a;
    a.lia(r4, 0x800);
    a.mov(r1, r4);
    a.li(r2, 0);
    a.sys(Sys::FutexWait); // blocks at retired == 4 (lia/mov/li/li)
    a.li(r1, 0);
    a.sys(Sys::Exit);
    GuestProgram prog = a.finish("block_at_target");
    Machine m(prog, {});
    SimOS os;
    UniOptions opts;
    opts.targets = {{4, RunState::Blocked}};
    UniRunner r(m, os, opts, {});
    EXPECT_EQ(r.run(), StopReason::TargetsReached);
    EXPECT_EQ(m.threads[0].state, RunState::Blocked);
    EXPECT_EQ(m.threads[0].retired, 4u);
    EXPECT_EQ(m.os.futexQueues.at(0x800).front(), 0u);
}

TEST(UniRunner, EarlyExitBelowTargetFinishesForHashCheck)
{
    // A thread that exits below its target cannot make progress; the
    // runner finishes and the recorder's state-hash comparison is
    // what flags the divergence.
    GuestProgram prog = testprogs::arithLoop(10);
    Machine m(prog, {});
    SimOS os;
    UniOptions opts;
    opts.targets = {{1'000'000, RunState::Runnable}};
    UniRunner r(m, os, opts, {});
    EXPECT_EQ(r.run(), StopReason::AllExited);
    EXPECT_LT(m.threads[0].retired, 1'000'000u);
}

TEST(UniRunner, BlockedBelowTargetStalls)
{
    // The thread parks on a futex nobody wakes, far below its target:
    // the runner must report the stall instead of spinning.
    using enum Reg;
    Assembler a;
    a.lia(r4, 0x800);
    a.mov(r1, r4);
    a.li(r2, 0);
    a.sys(Sys::FutexWait); // sleeps forever at retired == 4
    a.li(r1, 0);
    a.sys(Sys::Exit);
    GuestProgram prog = a.finish("stall_below_target");
    Machine m(prog, {});
    SimOS os;
    UniOptions opts;
    opts.targets = {{1'000, RunState::Runnable}};
    UniRunner r(m, os, opts, {});
    EXPECT_EQ(r.run(), StopReason::Stalled);
}

TEST(MultiCpuSim, SameSeedSameResult)
{
    GuestProgram prog = testprogs::racyCounter(4, 500);
    auto run_once = [&](std::uint64_t seed) {
        Machine m(prog, {});
        SimOS os;
        MpOptions opts;
        opts.cpus = 4;
        opts.seed = seed;
        MultiCpuSim sim(m, os, opts, {});
        EXPECT_EQ(sim.run(~Cycles{0} >> 1), StopReason::AllExited);
        return m.stateHash();
    };
    EXPECT_EQ(run_once(7), run_once(7));
}

TEST(MultiCpuSim, DifferentSeedsResolveRacesDifferently)
{
    GuestProgram prog = testprogs::racyCounter(4, 2'000);
    std::set<std::uint64_t> exits;
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        Machine m(prog, {});
        SimOS os;
        MpOptions opts;
        opts.cpus = 4;
        opts.seed = seed;
        MultiCpuSim sim(m, os, opts, {});
        EXPECT_EQ(sim.run(~Cycles{0} >> 1), StopReason::AllExited);
        exits.insert(m.threads[0].exitCode);
        // Lost updates only ever lose counts.
        EXPECT_LE(m.threads[0].exitCode, 8'000u);
    }
    EXPECT_GT(exits.size(), 1u)
        << "racy program should vary across interleavings";
}

TEST(MultiCpuSim, RaceFreeProgramIsSeedInvariant)
{
    GuestProgram prog = testprogs::lockedCounter(4, 300);
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        Machine m(prog, {});
        SimOS os;
        MpOptions opts;
        opts.cpus = 4;
        opts.seed = seed;
        MultiCpuSim sim(m, os, opts, {});
        EXPECT_EQ(sim.run(~Cycles{0} >> 1), StopReason::AllExited);
        EXPECT_EQ(m.threads[0].exitCode, 1200u);
    }
}

TEST(MultiCpuSim, TimeLimitQuiescesCleanly)
{
    GuestProgram prog = testprogs::lockedCounter(2, 10'000);
    Machine m(prog, {});
    SimOS os;
    MpOptions opts;
    opts.cpus = 2;
    MultiCpuSim sim(m, os, opts, {});
    StopReason reason = sim.run(5'000);
    EXPECT_EQ(reason, StopReason::TimeLimit);
    EXPECT_GE(m.now, 5'000u);
    // State is clean: can checkpoint/hash and resume.
    std::uint64_t h = m.stateHash();
    EXPECT_NE(h, 0u);
    EXPECT_EQ(sim.run(~Cycles{0} >> 1), StopReason::AllExited);
    EXPECT_EQ(m.threads[0].exitCode, 20'000u);
}

TEST(MultiCpuSim, MoreCpusFinishSoonerOnParallelWork)
{
    GuestProgram prog = testprogs::atomicCounter(4, 2'000);
    auto elapsed = [&](CpuId cpus) {
        Machine m(prog, {});
        SimOS os;
        MpOptions opts;
        opts.cpus = cpus;
        MultiCpuSim sim(m, os, opts, {});
        EXPECT_EQ(sim.run(~Cycles{0} >> 1), StopReason::AllExited);
        return m.now;
    };
    Cycles t1 = elapsed(1);
    Cycles t4 = elapsed(4);
    EXPECT_LT(t4 * 2, t1) << "4 CPUs should be >2x faster than 1";
}

TEST(MultiCpuSim, DeadlockDetected)
{
    using enum Reg;
    Assembler a;
    a.lia(r4, 0x900);
    a.mov(r1, r4);
    a.li(r2, 0);
    a.sys(Sys::FutexWait);
    a.halt();
    GuestProgram prog = a.finish("mp_deadlock");
    Machine m(prog, {});
    SimOS os;
    MpOptions opts;
    opts.cpus = 2;
    MultiCpuSim sim(m, os, opts, {});
    EXPECT_EQ(sim.run(~Cycles{0} >> 1), StopReason::Deadlock);
}

TEST(SyncKeys, ClassifyOperations)
{
    EXPECT_EQ(syscallSyncKey(
                  static_cast<std::uint64_t>(Sys::FutexWait), 0x1234),
              0x1234u);
    EXPECT_EQ(syscallSyncKey(
                  static_cast<std::uint64_t>(Sys::FutexWake), 0x1234),
              0x1234u);
    EXPECT_EQ(
        syscallSyncKey(static_cast<std::uint64_t>(Sys::Yield), 0),
        std::nullopt);
    EXPECT_EQ(
        syscallSyncKey(static_cast<std::uint64_t>(Sys::Write), 1),
        globalSyncKey);
    EXPECT_EQ(syscallSyncKey(999, 0), globalSyncKey);
}

} // namespace
} // namespace dp
