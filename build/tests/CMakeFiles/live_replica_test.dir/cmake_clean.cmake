file(REMOVE_RECURSE
  "CMakeFiles/live_replica_test.dir/live_replica_test.cc.o"
  "CMakeFiles/live_replica_test.dir/live_replica_test.cc.o.d"
  "live_replica_test"
  "live_replica_test.pdb"
  "live_replica_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_replica_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
