/**
 * @file
 * Flat metrics snapshot of a recording: every RecorderStats counter
 * plus per-epoch gauges (pipeline queue depth, stall cycles, dirty
 * pages, log bytes), exported as one JSON document.
 *
 * The counters come straight from the Recording; the per-epoch queue
 * depth and stall cycles are reconstructed by the fluid pipeline
 * model from the epoch timing metadata the artifact already carries,
 * so the snapshot works on a loaded artifact or a recovered journal,
 * not just a live session. `uniplay stats FILE` prints it; the bench
 * JSON emitter shares the schema conventions (dp-*-v1 + flat
 * name->number members).
 */

#ifndef DP_TRACE_METRICS_HH
#define DP_TRACE_METRICS_HH

#include <cstdint>

#include "core/recording.hh"
#include "timing/pipeline.hh"
#include "trace/json.hh"

namespace dp
{

/** Machine shape fed to the pipeline-model reconstruction. */
struct MetricsOptions
{
    CpuId workerCpus = 2;
    CpuId totalCpus = 4;
    /** Outstanding-checkpoint bound (0 = unbounded). */
    std::uint32_t maxInFlight = 4;
};

/**
 * Build the snapshot:
 *   { "schema": "dp-metrics-v1",
 *     "counters": { one member per RecorderStats counter, plus
 *                   replayLogBytes / totalLogBytes },
 *     "pipeline": { completion, tpCompletion, meanEpochLag,
 *                   peakInFlight },
 *     "epochs":   [ { index, queueDepth, stallCycles, dirtyPages,
 *                     logBytes, tpCycles, epCycles, diverged } ] }
 */
JsonValue metricsSnapshot(const Recording &rec,
                          const MetricsOptions &opts = {});

} // namespace dp

#endif // DP_TRACE_METRICS_HH
