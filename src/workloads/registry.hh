/**
 * @file
 * Workload registry: synthetic equivalents of the paper's benchmark
 * suite, preserving each benchmark's concurrency structure.
 *
 * | name    | paper benchmark        | structure                     |
 * |---------|------------------------|-------------------------------|
 * | pbzip2  | pbzip2 (client)        | block pool + RLE compression  |
 * | pfscan  | pfscan (client)        | chunk pool + pattern scan     |
 * | aget    | aget (client)          | per-thread net streams + file |
 * | apache  | Apache (server)        | request queue + worker pool   |
 * | mysql   | MySQL (server)         | lock-striped key-value store  |
 * | fft     | SPLASH-2 fft           | barrier-phased butterflies    |
 * | lu      | SPLASH-2 lu            | barrier-phased elimination    |
 * | radix   | SPLASH-2 radix         | histogram/prefix/scatter      |
 * | ocean   | SPLASH-2 ocean         | barrier-phased stencil sweeps |
 * | water   | SPLASH-2 water         | n-body force/integrate phases |
 *
 * Total work is independent of the thread count (strong scaling), so
 * overhead comparisons across thread counts are apples-to-apples.
 */

#ifndef DP_WORKLOADS_REGISTRY_HH
#define DP_WORKLOADS_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "os/machine.hh"
#include "vm/program.hh"

namespace dp::workloads
{

/** Knobs every workload factory accepts. */
struct WorkloadParams
{
    /** Worker threads (the paper's 2- and 4-thread configurations).
     *  Must divide the workload's partitionable sizes; 1, 2, 4 and 8
     *  are always safe. */
    std::uint32_t threads = 2;
    /** Problem-size multiplier (total work scales linearly). */
    std::uint32_t scale = 1;
    /** Input-generation seed. */
    std::uint64_t seed = 7;
};

/** A ready-to-run workload instance. */
struct WorkloadBundle
{
    GuestProgram program;
    MachineConfig config;
    /** Expected main exit code; 0 means "not checked" (workloads whose
     *  result is schedule-dependent by design). */
    std::uint64_t expectedExit = 0;
};

/** Registry entry. */
struct Workload
{
    std::string name;
    std::string paperEquiv;
    std::string category; ///< "client" | "server" | "scientific"
    std::string sharing;  ///< dominant sharing pattern
    std::function<WorkloadBundle(const WorkloadParams &)> make;
};

/** All registered workloads, in the paper's presentation order. */
const std::vector<Workload> &allWorkloads();

/** Look up by name; nullptr if absent. */
const Workload *findWorkload(std::string_view name);

/**
 * Deliberately racy program for the divergence/rollback experiments:
 * each of @p threads workers performs @p updates iterations; one in
 * @p race_one_in (a power of two) is an unprotected load-add-store on
 * one of 16 shared words, the rest update a private word. Larger
 * race_one_in = sparser races = fewer epoch divergences. The result
 * is schedule-dependent by design (expectedExit is 0).
 */
WorkloadBundle makeRacyUpdates(std::uint32_t threads,
                               std::uint64_t updates,
                               std::uint64_t race_one_in);

/**
 * Pipe-structured variant of the compression workload, mirroring the
 * real pbzip2's architecture: a reader thread pushes input blocks
 * into a work pipe, @p threads compressor workers pull blocks,
 * RLE-compress them, and push results into an output pipe, and a
 * writer thread drains it. Same total work as makePbzip2 at the same
 * scale; expectedExit is the total compressed byte count.
 */
WorkloadBundle makePbzip2Pipe(std::uint32_t threads,
                              std::uint32_t scale,
                              std::uint64_t seed = 7);

} // namespace dp::workloads

#endif // DP_WORKLOADS_REGISTRY_HH
