file(REMOVE_RECURSE
  "CMakeFiles/dp_timing.dir/pipeline.cc.o"
  "CMakeFiles/dp_timing.dir/pipeline.cc.o.d"
  "libdp_timing.a"
  "libdp_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dp_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
