/**
 * @file
 * Error and status reporting helpers, in the spirit of gem5's
 * base/logging.hh.
 *
 * panic()  - an internal invariant was violated (a uniplay bug); aborts.
 * fatal()  - the caller/user asked for something impossible; exits(1).
 * warn()   - something suspicious happened but execution can continue.
 * inform() - a plain status message.
 */

#ifndef DP_COMMON_LOGGING_HH
#define DP_COMMON_LOGGING_HH

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace dp
{

namespace detail
{

/** Concatenate arbitrary streamable arguments into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/** Abort with a message; use for internal bugs that should never happen. */
#define dp_panic(...) \
    ::dp::detail::panicImpl(__FILE__, __LINE__, \
                            ::dp::detail::concat(__VA_ARGS__))

/** Exit with a message; use for unusable input or configuration. */
#define dp_fatal(...) \
    ::dp::detail::fatalImpl(__FILE__, __LINE__, \
                            ::dp::detail::concat(__VA_ARGS__))

/** Print a warning; execution continues. */
#define dp_warn(...) \
    ::dp::detail::warnImpl(::dp::detail::concat(__VA_ARGS__))

/** Print an informational message. */
#define dp_inform(...) \
    ::dp::detail::informImpl(::dp::detail::concat(__VA_ARGS__))

/** Assert an invariant with a formatted explanation on failure. */
#define dp_assert(cond, ...) \
    do { \
        if (!(cond)) { \
            dp_panic("assertion '", #cond, "' failed: ", \
                     ::dp::detail::concat(__VA_ARGS__)); \
        } \
    } while (0)

} // namespace dp

#endif // DP_COMMON_LOGGING_HH
