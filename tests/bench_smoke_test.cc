/**
 * @file
 * Smoke test for the bench JSON emitter: run the bench_micro binary
 * (filtered down to one cheap microbench) and validate the
 * BENCH_micro.json it leaves behind against the dp-bench-v1 schema.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <unistd.h>

#include "trace/json.hh"

#ifndef DP_BENCH_MICRO_BIN
#error "DP_BENCH_MICRO_BIN must point at the bench_micro binary"
#endif

namespace dp
{
namespace
{

TEST(BenchSmoke, MicroEmitsSchemaValidJson)
{
    char tmpl[] = "/tmp/dp-bench-smoke-XXXXXX";
    ASSERT_NE(mkdtemp(tmpl), nullptr);
    const std::string dir = tmpl;
    const std::string path = dir + "/BENCH_micro.json";

    const std::string cmd =
        "DP_BENCH_JSON_DIR=" + dir + " " + DP_BENCH_MICRO_BIN +
        " --benchmark_filter=BM_VarintEncode"
        " --benchmark_min_time=0.01 > /dev/null 2>&1";
    ASSERT_EQ(std::system(cmd.c_str()), 0) << cmd;

    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << path << " was not written";
    std::ostringstream ss;
    ss << in.rdbuf();
    in.close();

    std::string err;
    std::optional<JsonValue> doc = JsonValue::parse(ss.str(), &err);
    ASSERT_TRUE(doc.has_value()) << err;
    ASSERT_TRUE(doc->isObject());

    const JsonValue *schema = doc->find("schema");
    ASSERT_NE(schema, nullptr);
    EXPECT_EQ(schema->asString(), "dp-bench-v1");
    const JsonValue *bench = doc->find("bench");
    ASSERT_NE(bench, nullptr);
    EXPECT_EQ(bench->asString(), "micro");

    const JsonValue *rows = doc->find("rows");
    ASSERT_NE(rows, nullptr);
    ASSERT_TRUE(rows->isArray());
    ASSERT_FALSE(rows->items().empty());
    for (const JsonValue &row : rows->items()) {
        const JsonValue *name = row.find("name");
        const JsonValue *workload = row.find("workload");
        const JsonValue *workers = row.find("workers");
        const JsonValue *overhead = row.find("overhead");
        const JsonValue *log_bytes = row.find("logBytes");
        const JsonValue *epochs = row.find("epochs");
        ASSERT_NE(name, nullptr);
        ASSERT_NE(workload, nullptr);
        ASSERT_NE(workers, nullptr);
        ASSERT_NE(overhead, nullptr);
        ASSERT_NE(log_bytes, nullptr);
        ASSERT_NE(epochs, nullptr);
        EXPECT_FALSE(name->asString().empty());
        EXPECT_FALSE(workload->asString().empty());
        EXPECT_GT(workers->asNumber(), 0.0);
        EXPECT_GT(log_bytes->asNumber(), 0.0);
        EXPECT_GT(epochs->asNumber(), 0.0);
    }

    std::remove(path.c_str());
    rmdir(dir.c_str());
}

} // namespace
} // namespace dp
