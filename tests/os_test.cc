/**
 * @file
 * Unit tests for the simulated OS: file system, network streams,
 * futexes, thread lifecycle, and OS-state hashing.
 */

#include <gtest/gtest.h>

#include "os/simos.hh"
#include "os/uni_runner.hh"
#include "testprogs.hh"
#include "vm/asmlib.hh"
#include "vm/assembler.hh"

namespace dp
{
namespace
{

using enum Reg;

Machine
runUni(const GuestProgram &prog, MachineConfig cfg = {})
{
    Machine m(prog, std::move(cfg));
    SimOS os;
    UniRunner runner(m, os, {}, {});
    EXPECT_EQ(runner.run(), StopReason::AllExited);
    return m;
}

TEST(SimOS, FileWriteReadRoundTrip)
{
    Assembler a;
    const Addr path = 0x100;
    const std::string_view name = "f.txt";
    a.dataBytes(path,
                {reinterpret_cast<const std::uint8_t *>(name.data()),
                 name.size()});
    // fd = open, write "abc", reopen, read back, exit(first byte).
    a.lia(r1, path);
    a.li(r2, openCreate | openWrite);
    a.sys(Sys::Open);
    a.mov(r14, r0);
    a.li(r3, 0x636261); // "abc"
    a.lia(r4, 0x200);
    a.st32(r4, 0, r3);
    a.mov(r1, r14);
    a.mov(r2, r4);
    a.li(r3, 3);
    a.sys(Sys::Write);
    a.lia(r1, path);
    a.li(r2, openRead);
    a.sys(Sys::Open);
    a.mov(r1, r0);
    a.lia(r2, 0x300);
    a.li(r3, 16);
    a.sys(Sys::Read);
    a.mov(r15, r0); // bytes read
    a.lia(r2, 0x300);
    a.ld8(r4, r2, 0);
    a.muli(r15, r15, 1000);
    a.add(r1, r15, r4); // 3*1000 + 'a'
    a.sys(Sys::Exit);
    Machine m = runUni(a.finish("file_rt"));
    EXPECT_EQ(m.threads[0].exitCode, 3000u + 'a');
}

TEST(SimOS, OpenMissingFileFails)
{
    Assembler a;
    const Addr path = 0x100;
    const std::string_view name = "nope";
    a.dataBytes(path,
                {reinterpret_cast<const std::uint8_t *>(name.data()),
                 name.size()});
    a.lia(r1, path);
    a.li(r2, openRead); // no create
    a.sys(Sys::Open);
    a.li(r2, -1);
    a.seq(r1, r0, r2); // exit(1) iff error
    a.sys(Sys::Exit);
    Machine m = runUni(a.finish("open_missing"));
    EXPECT_EQ(m.threads[0].exitCode, 1u);
}

TEST(SimOS, SeekRepositionsAndReturnsOldOffset)
{
    Assembler a;
    const Addr path = 0x100;
    const std::string_view name = "s.bin";
    a.dataBytes(path,
                {reinterpret_cast<const std::uint8_t *>(name.data()),
                 name.size()});
    a.lia(r1, path);
    a.li(r2, openCreate | openWrite);
    a.sys(Sys::Open);
    a.mov(r14, r0);
    a.mov(r1, r14);
    a.li(r2, 100);
    a.sys(Sys::Seek); // old = 0
    a.mov(r15, r0);
    a.mov(r1, r14);
    a.li(r2, 0);
    a.sys(Sys::Seek); // old = 100
    a.add(r1, r15, r0);
    a.sys(Sys::Exit);
    Machine m = runUni(a.finish("seek"));
    EXPECT_EQ(m.threads[0].exitCode, 100u);
}

TEST(SimOS, BadFdOperationsFailGracefully)
{
    Assembler a;
    a.li(r1, 99);
    a.lia(r2, 0x100);
    a.li(r3, 4);
    a.sys(Sys::Write);
    a.mov(r15, r0); // ~0
    a.li(r1, 99);
    a.sys(Sys::Close);
    a.and_(r15, r15, r0); // both ~0 -> ~0
    a.li(r2, -1);
    a.seq(r1, r15, r2);
    a.sys(Sys::Exit);
    Machine m = runUni(a.finish("bad_fd"));
    EXPECT_EQ(m.threads[0].exitCode, 1u);
}

TEST(SimOS, StdoutIsAppendOnly)
{
    Assembler a;
    a.lia(r2, 0x100);
    a.li(r3, 0x4142); // "AB"
    a.st16(r2, 0, r3);
    for (int i = 0; i < 2; ++i) {
        a.li(r1, fdStdout);
        a.lia(r2, 0x100);
        a.li(r3, 2);
        a.sys(Sys::Write);
    }
    a.li(r1, 0);
    a.sys(Sys::Exit);
    Machine m = runUni(a.finish("stdout_append"));
    const auto &out = m.stdoutBytes();
    ASSERT_EQ(out.size(), 4u);
    // 0x4142 is little-endian: 'B' then 'A', appended twice.
    EXPECT_EQ(out[0], 'B');
    EXPECT_EQ(out[1], 'A');
    EXPECT_EQ(out[2], 'B');
    EXPECT_EQ(out[3], 'A');
}

TEST(SimOS, NetStreamContentIsDeterministic)
{
    MachineConfig cfg;
    cfg.netSeed = 99;
    EXPECT_EQ(SimOS::netByte(cfg, 3, 17), SimOS::netByte(cfg, 3, 17));
    MachineConfig other;
    other.netSeed = 100;
    bool differs = false;
    for (std::uint64_t off = 0; off < 64; ++off)
        differs =
            differs || SimOS::netByte(cfg, 3, off) !=
                           SimOS::netByte(other, 3, off);
    EXPECT_TRUE(differs);
}

TEST(SimOS, NetRecvHonorsArrivalRate)
{
    // At time ~0 nothing has arrived; after enough cycles, data flows.
    Assembler a;
    a.li(r1, 1);
    a.lia(r2, 0x100);
    a.li(r3, 64);
    a.sys(Sys::NetRecv);
    a.mov(r15, r0); // early recv: expect 0
    // Burn virtual time.
    a.li(r4, 2000);
    Label spin = a.hereLabel();
    Label done = a.newLabel();
    a.beqz(r4, done);
    a.addi(r4, r4, -1);
    a.jmp(spin);
    a.bind(done);
    a.li(r1, 1);
    a.lia(r2, 0x100);
    a.li(r3, 64);
    a.sys(Sys::NetRecv);
    a.muli(r15, r15, 1000);
    a.add(r1, r15, r0); // late recv: expect > 0
    a.sys(Sys::Exit);

    MachineConfig cfg;
    cfg.netCyclesPerByte = 100;
    cfg.netBytesPerConn = 1000;
    Machine m = runUni(a.finish("net_rate"), cfg);
    // Early recv 0 (0*1000), late recv tens of bytes.
    EXPECT_GT(m.threads[0].exitCode, 0u);
    EXPECT_LT(m.threads[0].exitCode, 1000u);
}

TEST(SimOS, JoinReturnsExitCodeAndHandlesErrors)
{
    Assembler a;
    Label child = a.newLabel();
    asmlib::spawnThread(a, child, r5);
    a.mov(r10, r0);
    asmlib::joinThread(a, r10); // blocks until child exits
    a.mov(r15, r0);             // child's code
    // Join on self fails.
    a.li(r1, 0);
    a.sys(Sys::Join);
    a.li(r2, -1);
    a.seq(r4, r0, r2);
    a.muli(r15, r15, 10);
    a.add(r1, r15, r4);
    a.sys(Sys::Exit);
    a.bind(child);
    asmlib::exitWith(a, 7);
    Machine m = runUni(a.finish("join"));
    EXPECT_EQ(m.threads[0].exitCode, 71u); // 7*10 + 1
}

TEST(SimOS, JoinOnAlreadyExitedThreadReturnsImmediately)
{
    Assembler a;
    Label child = a.newLabel();
    asmlib::spawnThread(a, child, r5);
    a.mov(r10, r0);
    // Busy-wait long enough for the child to finish under any
    // schedule, then join.
    a.li(r4, 2000);
    Label spin = a.hereLabel();
    Label done = a.newLabel();
    a.beqz(r4, done);
    a.addi(r4, r4, -1);
    a.jmp(spin);
    a.bind(done);
    asmlib::joinThread(a, r10);
    a.mov(r1, r0);
    a.sys(Sys::Exit);
    a.bind(child);
    asmlib::exitWith(a, 9);
    Machine m = runUni(a.finish("late_join"));
    EXPECT_EQ(m.threads[0].exitCode, 9u);
}

TEST(SimOS, FutexWaitValueMismatchReturnsOne)
{
    Assembler a;
    a.lia(r4, 0x500);
    a.li(r5, 42);
    a.st64(r4, 0, r5);
    a.mov(r1, r4);
    a.li(r2, 41); // mismatch
    a.sys(Sys::FutexWait);
    a.mov(r1, r0);
    a.sys(Sys::Exit);
    Machine m = runUni(a.finish("futex_mismatch"));
    EXPECT_EQ(m.threads[0].exitCode, 1u);
}

TEST(SimOS, FutexWakeWithoutWaitersReturnsZero)
{
    Assembler a;
    a.lia(r1, 0x500);
    a.li(r2, 5);
    a.sys(Sys::FutexWake);
    a.mov(r1, r0);
    a.sys(Sys::Exit);
    Machine m = runUni(a.finish("futex_nowaiters"));
    EXPECT_EQ(m.threads[0].exitCode, 0u);
}

TEST(SimOS, InvalidSyscallNumberFails)
{
    Assembler a;
    a.li(r0, 999);
    a.syscall();
    a.li(r2, -1);
    a.seq(r1, r0, r2);
    a.sys(Sys::Exit);
    Machine m = runUni(a.finish("bad_sys"));
    EXPECT_EQ(m.threads[0].exitCode, 1u);
}

TEST(SimOS, RandomAdvancesOsState)
{
    Assembler a;
    a.sys(Sys::Random);
    a.mov(r14, r0);
    a.sys(Sys::Random);
    a.seq(r4, r14, r0); // should differ
    a.li(r5, 1);
    a.sub(r1, r5, r4);
    a.sys(Sys::Exit);
    Machine m = runUni(a.finish("random"));
    EXPECT_EQ(m.threads[0].exitCode, 1u);
}

TEST(OsState, HashCoversQueuesAndFiles)
{
    OsState a, b;
    EXPECT_EQ(a.hash(), b.hash());
    b.futexQueues[0x100].push_back(3);
    EXPECT_NE(a.hash(), b.hash());

    OsState c, d;
    c.ensureFile("x");
    EXPECT_NE(c.hash(), d.hash());
    d.ensureFile("x");
    EXPECT_EQ(c.hash(), d.hash());
    d.writableFile(0).push_back(1);
    EXPECT_NE(c.hash(), d.hash());
}

TEST(OsState, FdAllocationReusesLowestClosedSlot)
{
    OsState os;
    std::uint32_t f = os.ensureFile("a");
    auto fd0 = os.allocFd({static_cast<std::int32_t>(f), 0, true,
                           false});
    auto fd1 = os.allocFd({static_cast<std::int32_t>(f), 0, true,
                           false});
    EXPECT_EQ(fd0, 0u);
    EXPECT_EQ(fd1, 1u);
    os.fds[0] = FileDesc{}; // close fd0
    auto fd2 = os.allocFd({static_cast<std::int32_t>(f), 0, true,
                           false});
    EXPECT_EQ(fd2, 0u) << "POSIX-style lowest-slot reuse";
}

TEST(Machine, BootOpensStandardFds)
{
    GuestProgram prog = testprogs::arithLoop(1);
    Machine m(prog, {});
    ASSERT_GE(m.os.fds.size(), 3u);
    EXPECT_TRUE(m.os.fds[1].writable);
    EXPECT_TRUE(m.os.fds[1].appendOnly);
    EXPECT_FALSE(m.os.fds[0].writable);
    EXPECT_EQ(m.threads.size(), 1u);
    EXPECT_EQ(m.threads[0].pc, prog.entry);
}

TEST(Machine, StateHashIgnoresVirtualTime)
{
    GuestProgram prog = testprogs::arithLoop(1);
    Machine a(prog, {});
    Machine b(prog, {});
    b.now = 12345;
    EXPECT_EQ(a.stateHash(), b.stateHash());
    b.threads[0].reg(Reg::r5) = 1;
    EXPECT_NE(a.stateHash(), b.stateHash());
}

} // namespace
} // namespace dp
