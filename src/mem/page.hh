/**
 * @file
 * Guest memory page: the unit of copy-on-write sharing.
 */

#ifndef DP_MEM_PAGE_HH
#define DP_MEM_PAGE_HH

#include <array>
#include <cstdint>
#include <memory>
#include <span>

#include "common/hash.hh"

namespace dp
{

/**
 * One fixed-size guest page. Pages are immutable once shared between
 * page tables: PagedMemory clones a page before the first write whenever
 * the page is referenced by more than one table (checkpoint or sibling
 * epoch). An absent table entry denotes an all-zero page.
 */
struct Page
{
    static constexpr std::size_t logBytes = 12;
    static constexpr std::size_t bytes = std::size_t{1} << logBytes;

    std::array<std::uint8_t, bytes> data{};

    /** Content digest of this page. */
    std::uint64_t
    hash() const
    {
        return fastHash64(std::span<const std::uint8_t>(data));
    }

    /** Digest shared by every all-zero page (and absent entries). */
    static std::uint64_t
    zeroHash()
    {
        static const std::uint64_t h = Page{}.hash();
        return h;
    }
};

/** Shared ownership handle; use_count()==1 means exclusively writable. */
using PageRef = std::shared_ptr<Page>;

} // namespace dp

#endif // DP_MEM_PAGE_HH
