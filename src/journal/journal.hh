/**
 * @file
 * Crash-durable epoch journal: append-only, checksummed frames the
 * recorder streams to as epochs retire.
 *
 * A monolithic artifact (recording_io.hh) only exists once a record
 * session finishes; a crash mid-session loses everything. The journal
 * closes that gap. Frame 0 is a header (magic, format version, guest
 * program, machine config, RecorderOptions fingerprint); every
 * committed epoch then appends one frame carrying its logs, digests
 * and timing metadata. Each frame ends with a CRC-32C and an explicit
 * commit marker, so recovery can always distinguish the committed
 * prefix from a torn tail:
 *
 *   frame := u8 kind | varu payloadLen | payload
 *            | u64fixed crc32c(kind || payload) | u8 0x5A
 *
 * The epoch payload embeds the exact byte layout the monolithic
 * artifact uses per epoch (writeEpochRecord), which is what makes
 * journal -> artifact conversion byte-identical to an uninterrupted
 * run's serializeRecording output.
 *
 * recoverJournal() scans a journal image, validates every frame, and
 * returns the longest committed prefix as a replayable Recording plus
 * a structured RecoveryReport — it never panics, whatever the bytes.
 * UniparallelRecorder::resume() then continues recording from that
 * prefix's boundary.
 */

#ifndef DP_JOURNAL_JOURNAL_HH
#define DP_JOURNAL_JOURNAL_HH

#include <cstdint>
#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/recording.hh"
#include "exec/executor.hh"
#include "fault/fault.hh"

namespace dp
{

class TraceRecorder;

/** "DPJL" — distinguishes a journal from a "DPLY" artifact. */
inline constexpr std::uint32_t journalMagic = 0x44504a4c;
/** v2: epoch frames carry tpInstrs (so recovered stats are exact). */
inline constexpr std::uint32_t journalVersion = 2;
/** v3: one stream of a sharded journal (sharded.hh). The header
 *  additionally carries (streamIndex, streamCount, baseEpoch) and
 *  epoch payloads a per-stream sequence number, so recovery can merge
 *  streams back into a total epoch order. Single-stream journals keep
 *  writing v2 — v3 only ever appears with streamCount > 1. */
inline constexpr std::uint32_t journalVersion3 = 3;

/** Frame kinds (first byte of every frame). */
inline constexpr std::uint8_t journalHeaderKind = 1;
inline constexpr std::uint8_t journalEpochKind = 2;
/** Trailing byte of every committed frame. */
inline constexpr std::uint8_t journalCommitMarker = 0x5a;

/**
 * Streams a journal as a record session progresses. Wire
 * appendEpoch() into RecordObserver::onEpochCommitted; committed
 * epochs are final (rollbacks squash only speculation), so every
 * frame written is permanent.
 *
 * The writer doubles as the crash surface for the fault matrix: at
 * each append it consults the injector's JournalCrash /
 * TornFrameWrite / JournalBitFlip sites (scope = epoch index) and
 * damages its own output exactly the way a dying writer or flaky disk
 * would, so recovery is tested against deterministic reproductions of
 * real failure shapes.
 */
class JournalWriter
{
  public:
    /** Start a fresh journal; the header frame is emitted (and
     *  streamed, once streamTo() attaches a file) immediately. */
    JournalWriter(const GuestProgram &prog, const MachineConfig &cfg,
                  std::uint64_t options_fingerprint,
                  FaultInjector *faults = nullptr);

    /**
     * Continue an existing journal. @p valid_prefix must be the
     * committed prefix recoverJournal() validated (header +
     * @p next_epoch_index epoch frames); new epochs append after it.
     */
    JournalWriter(std::vector<std::uint8_t> valid_prefix,
                  std::uint64_t next_epoch_index,
                  FaultInjector *faults = nullptr);

    JournalWriter(const JournalWriter &) = delete;
    JournalWriter &operator=(const JournalWriter &) = delete;
    ~JournalWriter();

    /** Append epoch @p index's frame; consults the journal fault
     *  sites. Appends after a fatal fault are dropped, exactly as a
     *  dead writer process would drop them. In asynchronous mode
     *  (enableAsyncCommit) this hands the epoch off and returns; the
     *  frame commits on the committer thread, still in append
     *  order. */
    void appendEpoch(const EpochRecord &e, EpochId index);

    /**
     * Move frame serialization, checksumming and file streaming onto
     * a dedicated committer thread: appendEpoch() then costs the
     * producer one EpochRecord copy instead of a CRC over the whole
     * frame. A bounded double-buffer (one frame committing, one
     * queued) back-pressures the producer past two outstanding
     * appends. Frames still commit strictly in append order, so the
     * committed-prefix crash guarantee is unchanged and the journal
     * bytes are identical to synchronous mode. Call before the first
     * append; idempotent.
     */
    void enableAsyncCommit();

    /** Block until every handed-off append has committed (and
     *  streamed, if a file is attached). No-op in synchronous mode;
     *  every accessor below flushes first, so readers never see a
     *  half-committed state. */
    void
    flush() const
    {
        if (committer_)
            committer_->drain();
    }

    /** False once a JournalCrash / TornFrameWrite fault killed the
     *  writer. */
    bool
    alive() const
    {
        flush();
        return alive_;
    }

    /** The journal image as it exists on "disk" — including any torn
     *  tail or bit flip the fault sites produced. */
    const std::vector<std::uint8_t> &
    bytes() const
    {
        flush();
        return buf_;
    }

    /** Journal size after each fully-committed frame; frameEnds()[0]
     *  is the header frame's end. Crash-sweep tests cut here. */
    const std::vector<std::size_t> &
    frameEnds() const
    {
        flush();
        return frameEnds_;
    }

    /** Epoch frames this writer has committed (prefix included). */
    std::uint64_t
    epochsWritten() const
    {
        flush();
        return nextIndex_;
    }

    /** Stream the journal to @p path: rewrites the bytes so far and
     *  flushes every future frame as it commits. False (with a
     *  warning) if the file cannot be opened. */
    bool streamTo(const std::string &path);

    /** Attach an observability sink (nullptr = off). Each successful
     *  appendEpoch emits one "journal-append" span; observe-only —
     *  never changes the journal bytes. */
    void setTrace(TraceRecorder *tr) { trace_ = tr; }

  private:
    /** The synchronous append body; in asynchronous mode it runs on
     *  the committer thread, strictly FIFO. */
    void commitEpoch(const EpochRecord &e, EpochId index);
    void flushTail();

    std::vector<std::uint8_t> buf_;
    std::vector<std::size_t> frameEnds_;
    std::uint64_t nextIndex_ = 0;
    bool alive_ = true;
    FaultInjector *faults_ = nullptr;
    TraceRecorder *trace_ = nullptr;
    std::FILE *file_ = nullptr;
    std::size_t flushed_ = 0;
    /** Single-worker commit pool (enableAsyncCommit); null in the
     *  synchronous default. All writer state above is touched only
     *  under its FIFO order — readers synchronize via flush(). */
    std::unique_ptr<Executor> committer_;
};

/** Why a journal scan stopped (or could not start). */
enum class JournalError : std::uint8_t
{
    /** Journal ends exactly at a frame boundary: nothing was lost. */
    None,
    /** Empty image, or the first frame is not a header frame. */
    MissingHeader,
    /** Header frame does not carry the journal magic. */
    BadMagic,
    /** Header frame carries an unsupported format version. */
    BadVersion,
    /** The image ends inside a frame: the classic torn tail. */
    TruncatedFrame,
    /** A frame's CRC does not match its bytes (torn write or storage
     *  corruption). */
    BadChecksum,
    /** The frame's trailing commit marker is wrong. */
    BadCommitMarker,
    /** A frame's kind byte is not a known kind. */
    BadFrameKind,
    /** The frame envelope is intact but its payload is malformed. */
    BadPayload,
    /** An epoch frame is out of sequence. */
    BadEpochIndex,
    /** Sharded recovery: a stream contradicts its siblings (wrong
     *  stream index, different program/config/fingerprint, or a
     *  stream count that disagrees with the set presented). */
    StreamMismatch,
    /** Sharded recovery: every stream is individually clean, but one
     *  stream's committed prefix ends behind its siblings', so frames
     *  beyond the consistent cut were discarded. */
    InconsistentCut,
};

/** Stable human-readable name of @p e (e.g. "truncated-frame"). */
const char *journalErrorName(JournalError e);

/** What recovery found, structurally — never a panic. */
struct RecoveryReport
{
    /** The header frame validated; a Recording was reconstructed. */
    bool headerOk = false;
    /** Committed epoch frames recovered. */
    std::uint64_t framesRecovered = 0;
    /** Length of the valid prefix (header + committed frames). A
     *  resume truncates the journal here. */
    std::size_t committedBytes = 0;
    /** Bytes after the valid prefix that were discarded. */
    std::size_t bytesDiscarded = 0;
    /** Why the scan stopped; None means a clean, fully-committed
     *  journal. */
    JournalError tailError = JournalError::None;
    /** Byte offset (within the image) of the damage, if any. For a
     *  merged sharded report, the offset is within stream
     *  streamIndex's image. */
    std::size_t errorOffset = 0;
    /** Diagnostic: what was malformed. */
    std::string detail;
    /** Which stream this report describes — or, in a merged sharded
     *  report, the stream that limited the consistent cut. Always 0
     *  for a v2 journal. */
    std::uint32_t streamIndex = 0;
    /** Streams in the sharded set this stream belongs to (1 for a v2
     *  journal). */
    std::uint32_t streamCount = 1;
    /** First epoch index the journal carries; non-zero once covered
     *  segments have been truncated away. */
    std::uint64_t baseEpoch = 0;

    /** Every frame validated and nothing was discarded. */
    bool clean() const
    {
        return headerOk && tailError == JournalError::None;
    }
};

/** Result of recoverJournal(). */
struct RecoveredJournal
{
    /** The committed prefix as a replayable Recording (its
     *  finalStateHash is the last committed epoch's digest, so it
     *  replay-verifies as-is). Non-null exactly when report.headerOk
     *  and the image is a whole journal (report.streamCount == 1) —
     *  a lone v3 stream scans to a report only; merge the full set
     *  with recoverShardedJournal() (sharded.hh) to get a
     *  Recording. */
    std::unique_ptr<Recording> recording;
    /** RecorderOptions fingerprint stored in the header frame;
     *  resume refuses to continue under mismatched options. */
    std::uint64_t optionsFingerprint = 0;
    RecoveryReport report;
};

/**
 * Scan @p bytes, validate every frame, and return the longest
 * committed prefix plus a report on the tail. Fail-closed: malformed
 * input of any shape — truncation, bit flips, garbage — yields a
 * structured report, never a crash or unbounded allocation.
 */
RecoveredJournal recoverJournal(std::span<const std::uint8_t> bytes);

/** What kind of uniplay file a byte image is. */
enum class UniplayFileKind : std::uint8_t
{
    Artifact, ///< monolithic recording artifact ("DPLY")
    Journal,  ///< epoch journal ("DPJL")
    Unknown,  ///< neither
};

/** Result of an integrity check (no replay performed). */
struct VerifyResult
{
    UniplayFileKind kind = UniplayFileKind::Unknown;
    /** Structurally intact: an artifact that loads, or a journal
     *  whose every frame validates with no torn tail. */
    bool ok = false;
    /** Epochs the file carries. */
    std::uint64_t epochs = 0;
    /** Human-readable verdict ("artifact: 12 epochs, ..." or the
     *  error). */
    std::string detail;
};

/**
 * Integrity-check an artifact or journal image without replaying it:
 * sniffs the kind, then validates structure and checksums end to end.
 */
VerifyResult verifyImage(std::span<const std::uint8_t> bytes);

} // namespace dp

#endif // DP_JOURNAL_JOURNAL_HH
