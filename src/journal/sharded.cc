#include "journal/sharded.hh"

#include <algorithm>
#include <map>

#include "common/bytes.hh"
#include "common/hash.hh"
#include "common/logging.hh"
#include "journal/frame.hh"
#include "os/machine.hh"
#include "replay/recording_io.hh"
#include "trace/trace.hh"

namespace dp
{

using journal_detail::Frame;
using journal_detail::FrameScanError;
using journal_detail::makeFrame;
using journal_detail::parseFrame;
using journal_detail::reportScanStop;

namespace
{

std::vector<std::uint8_t>
streamHeaderPayload(std::uint32_t stream, std::uint32_t count,
                    std::uint64_t base, const GuestProgram &prog,
                    const MachineConfig &cfg, std::uint64_t fingerprint)
{
    ByteWriter p;
    p.u64fixed((std::uint64_t{journalMagic} << 32) | journalVersion3);
    p.varu(stream);
    p.varu(count);
    p.varu(base);
    writeGuestProgram(p, prog);
    writeMachineConfig(p, cfg);
    p.u64fixed(fingerprint);
    return p.take();
}

/** First epoch index >= @p base owned by stream @p s of @p n. */
std::uint64_t
firstIndexOwned(std::uint64_t base, unsigned s, unsigned n)
{
    return base + (s + n - base % n) % n;
}

/** Epochs in [base, limit) owned by stream @p s of @p n. */
std::uint64_t
epochsOwnedBelow(std::uint64_t base, std::uint64_t limit, unsigned s,
                 unsigned n)
{
    std::uint64_t first = firstIndexOwned(base, s, n);
    return limit > first ? (limit - first + n - 1) / n : 0;
}

/** One validated epoch frame, located for the decode phase. */
struct FrameRef
{
    std::uint64_t index = 0;       ///< global epoch index
    std::size_t payloadOff = 0;    ///< within the stream image
    std::size_t payloadLen = 0;
    std::size_t frameEnd = 0;      ///< end offset of the whole frame
};

/** Everything phase A learns about one stream, CRC-verified. */
struct StreamScan
{
    RecoveryReport report;
    std::uint32_t version = 0;
    std::uint64_t fingerprint = 0;
    std::optional<GuestProgram> prog;
    std::optional<MachineConfig> cfg;
    /** Header payload after the streamIndex varint — byte-identical
     *  across the streams of one journal (v2: the whole payload). */
    std::vector<std::uint8_t> sharedSuffix;
    std::vector<FrameRef> frames;
    std::uint64_t firstSeq = 0;
    std::size_t headerEnd = 0;
    std::size_t imageSize = 0;
};

/**
 * Phase A: validate one stream image — frame envelopes, CRCs, and the
 * sequence/index dependency metadata — without decoding epoch bodies.
 * Fail-closed; the report mirrors recoverJournal's verdicts.
 */
StreamScan
scanStream(std::span<const std::uint8_t> bytes)
{
    StreamScan sc;
    RecoveryReport &rep = sc.report;
    sc.imageSize = bytes.size();
    rep.bytesDiscarded = bytes.size();
    if (bytes.empty()) {
        rep.tailError = JournalError::MissingHeader;
        rep.detail = "empty journal image";
        return sc;
    }

    std::size_t pos = 0;
    try {
        Frame header = parseFrame(bytes, pos);
        if (header.kind != journalHeaderKind)
            throw FrameScanError{JournalError::MissingHeader, 0,
                                 "first frame is not a header frame"};
        ByteReader p(header.payload);
        std::uint64_t magic = p.u64fixed();
        if (magic >> 32 != journalMagic)
            throw FrameScanError{JournalError::BadMagic, 0,
                                 "not a uniplay epoch journal"};
        sc.version = static_cast<std::uint32_t>(magic & 0xffffffff);
        if (sc.version != journalVersion &&
            sc.version != journalVersion3)
            throw FrameScanError{
                JournalError::BadVersion, 0,
                detail::concat("unsupported journal version ",
                               sc.version)};
        if (sc.version == journalVersion3) {
            std::uint64_t stream = p.varu();
            sc.sharedSuffix.assign(
                header.payload.begin() + p.pos(),
                header.payload.end());
            std::uint64_t count = p.varu();
            if (count == 0 || stream >= count)
                throw FrameScanError{
                    JournalError::BadPayload, 0,
                    detail::concat("stream ", stream, " of ", count,
                                   " is not a valid stream identity")};
            rep.streamIndex = static_cast<std::uint32_t>(stream);
            rep.streamCount = static_cast<std::uint32_t>(count);
            rep.baseEpoch = p.varu();
        } else {
            sc.sharedSuffix.assign(header.payload.begin(),
                                   header.payload.end());
        }
        sc.prog = readGuestProgram(p);
        sc.cfg = readMachineConfig(p);
        sc.fingerprint = p.u64fixed();
        if (!p.atEnd())
            throw FrameScanError{
                JournalError::BadPayload, pos,
                "trailing bytes in the header payload"};
    } catch (const FrameScanError &f) {
        reportScanStop(rep, f);
        return sc;
    } catch (const RecordingDecodeError &f) {
        reportScanStop(rep, {JournalError::BadPayload, f.offset,
                             f.detail});
        return sc;
    } catch (const ByteStreamError &e) {
        reportScanStop(rep, {JournalError::BadPayload, e.offset,
                             "header payload ended early"});
        return sc;
    } catch (const std::bad_alloc &) {
        reportScanStop(rep, {JournalError::BadPayload, 0,
                             "allocation rejected while recovering"});
        return sc;
    }

    rep.headerOk = true;
    rep.committedBytes = pos;
    sc.headerEnd = pos;
    sc.firstSeq =
        sc.version == journalVersion3
            ? firstIndexOwned(rep.baseEpoch, rep.streamIndex,
                              rep.streamCount) /
                  rep.streamCount
            : 0;
    try {
        while (pos < bytes.size()) {
            std::size_t frame_start = pos;
            Frame f = parseFrame(bytes, pos);
            if (f.kind != journalEpochKind)
                throw FrameScanError{
                    JournalError::BadFrameKind, frame_start,
                    "header frame after frame 0"};
            ByteReader p(f.payload);
            std::uint64_t index = p.varu();
            if (sc.version == journalVersion3) {
                std::uint64_t seq = p.varu();
                std::uint64_t expect = sc.firstSeq + sc.frames.size();
                if (index % rep.streamCount != rep.streamIndex)
                    throw FrameScanError{
                        JournalError::BadEpochIndex, frame_start,
                        detail::concat("epoch ", index,
                                       " does not belong to stream ",
                                       rep.streamIndex)};
                if (seq != index / rep.streamCount)
                    throw FrameScanError{
                        JournalError::BadEpochIndex, frame_start,
                        detail::concat("sequence ", seq,
                                       " contradicts epoch ", index)};
                if (seq != expect)
                    throw FrameScanError{
                        JournalError::BadEpochIndex, frame_start,
                        detail::concat("stream sequence ", seq,
                                       " where ", expect,
                                       " expected")};
            } else if (index != sc.frames.size()) {
                throw FrameScanError{
                    JournalError::BadEpochIndex, frame_start,
                    detail::concat("epoch frame ", index, " where ",
                                   sc.frames.size(), " expected")};
            }
            sc.frames.push_back(
                {index,
                 static_cast<std::size_t>(f.payload.data() -
                                          bytes.data()),
                 f.payload.size(), pos});
            rep.committedBytes = pos;
            ++rep.framesRecovered;
        }
    } catch (const FrameScanError &f) {
        reportScanStop(rep, f);
    } catch (const ByteStreamError &e) {
        reportScanStop(rep, {JournalError::BadPayload, e.offset,
                             "epoch payload ended early"});
    } catch (const std::bad_alloc &) {
        reportScanStop(rep, {JournalError::BadPayload, pos,
                             "allocation rejected while recovering"});
    }
    rep.bytesDiscarded = bytes.size() - rep.committedBytes;
    return sc;
}

/** Lowest-epoch decode failure (phase B), merged across workers. */
struct DecodeFailure
{
    std::uint64_t epoch = 0;
    JournalError error = JournalError::BadPayload;
    std::size_t offset = 0;
    std::string detail;
};

} // namespace

std::optional<StreamInfo>
peekStreamInfo(std::span<const std::uint8_t> bytes)
{
    if (bytes.empty() || bytes[0] != journalHeaderKind)
        return std::nullopt;
    try {
        std::size_t pos = 0;
        Frame header = parseFrame(bytes, pos);
        if (header.kind != journalHeaderKind)
            return std::nullopt;
        ByteReader p(header.payload);
        std::uint64_t magic = p.u64fixed();
        if (magic >> 32 != journalMagic ||
            (magic & 0xffffffff) != journalVersion3)
            return std::nullopt;
        StreamInfo si;
        si.streamIndex = static_cast<std::uint32_t>(p.varu());
        si.streamCount = static_cast<std::uint32_t>(p.varu());
        si.baseEpoch = p.varu();
        if (si.streamCount == 0 || si.streamIndex >= si.streamCount)
            return std::nullopt;
        return si;
    } catch (...) {
        return std::nullopt;
    }
}

namespace journal_detail
{

RecoveredJournal
recoverStreamReport(std::span<const std::uint8_t> bytes)
{
    StreamScan sc = scanStream(bytes);
    RecoveredJournal out;
    out.report = std::move(sc.report);
    out.optionsFingerprint = sc.fingerprint;
    return out;
}

} // namespace journal_detail

// ---------------------------------------------------------------------------
// ShardedJournalWriter

ShardedJournalWriter::ShardedJournalWriter(
    const GuestProgram &prog, const MachineConfig &cfg,
    std::uint64_t options_fingerprint, ShardedJournalOptions opts,
    FaultInjector *faults)
    : streams_(opts.streams ? opts.streams : 1),
      segmentEpochs_(opts.segmentEpochs), faults_(faults),
      prog_(prog), cfg_(cfg), fingerprint_(options_fingerprint)
{
    if (streams_ == 1) {
        v2_ = std::make_unique<JournalWriter>(
            prog, cfg, options_fingerprint, faults);
        return;
    }
    shards_.resize(streams_);
    for (unsigned s = 0; s < streams_; ++s) {
        shards_[s].buf = makeFrame(
            journalHeaderKind,
            streamHeaderPayload(s, streams_, base_, prog, cfg,
                                options_fingerprint));
        shards_[s].frameEnds.push_back(shards_[s].buf.size());
        shards_[s].nextSeq = firstIndexOwned(base_, s, streams_) /
                             streams_;
    }
}

ShardedJournalWriter::ShardedJournalWriter(
    std::vector<std::vector<std::uint8_t>> valid_prefixes,
    ShardedJournalOptions opts, FaultInjector *faults)
    : streams_(opts.streams ? opts.streams : 1),
      segmentEpochs_(opts.segmentEpochs), faults_(faults)
{
    dp_assert(valid_prefixes.size() == streams_,
              "resume prefixes must match the stream count");
    if (streams_ == 1) {
        // A v2 prefix: recoverJournal rederives the epoch cursor and
        // header ingredients from the (trusted valid) bytes.
        RecoveredJournal rj = recoverJournal(valid_prefixes[0]);
        dp_assert(rj.report.clean(),
                  "resume prefix must be a validated journal prefix");
        prog_ = rj.recording->program();
        cfg_ = rj.recording->config();
        fingerprint_ = rj.optionsFingerprint;
        nextIndex_ = rj.report.framesRecovered;
        v2_ = std::make_unique<JournalWriter>(
            std::move(valid_prefixes[0]), nextIndex_, faults);
        return;
    }
    shards_.resize(streams_);
    // Pass 1: scan the surviving prefixes. Any survivor can donate
    // the shared header ingredients — recovery already cross-checked
    // that all survivors agree on them.
    std::vector<StreamScan> scans(streams_);
    bool have_shared = false;
    for (unsigned s = 0; s < streams_; ++s) {
        if (valid_prefixes[s].empty())
            continue;
        scans[s] = scanStream(valid_prefixes[s]);
        const StreamScan &sc = scans[s];
        dp_assert(sc.report.clean() &&
                      sc.version == journalVersion3 &&
                      sc.report.streamIndex == s &&
                      sc.report.streamCount == streams_,
                  "resume prefix must be a validated stream prefix");
        if (!have_shared) {
            have_shared = true;
            base_ = sc.report.baseEpoch;
            prog_ = std::move(scans[s].prog);
            cfg_ = std::move(scans[s].cfg);
            fingerprint_ = sc.fingerprint;
        }
    }
    dp_assert(have_shared,
              "resume needs at least one surviving stream");
    std::uint64_t next = 0;
    for (unsigned s = 0; s < streams_; ++s) {
        Stream &st = shards_[s];
        if (valid_prefixes[s].empty()) {
            // A stream whose prefix was entirely lost is reborn
            // header-only. The consistent cut is at or below its
            // first owned index, so the reborn stream owes no epoch
            // the resumed session will not re-append.
            st.buf = makeFrame(
                journalHeaderKind,
                streamHeaderPayload(s, streams_, base_, *prog_,
                                    *cfg_, fingerprint_));
            st.frameEnds.push_back(st.buf.size());
            st.nextSeq =
                firstIndexOwned(base_, s, streams_) / streams_;
        } else {
            StreamScan &sc = scans[s];
            st.buf = std::move(valid_prefixes[s]);
            st.frameEnds.push_back(sc.headerEnd);
            for (const FrameRef &f : sc.frames)
                st.frameEnds.push_back(f.frameEnd);
            st.nextSeq = sc.firstSeq + sc.frames.size();
        }
        // The global append cursor resumes at the consistent cut: the
        // smallest epoch index missing from its owning stream.
        std::uint64_t missing = st.nextSeq * streams_ + s;
        next = s == 0 ? missing : std::min(next, missing);
    }
    nextIndex_ = next;
}

ShardedJournalWriter::~ShardedJournalWriter()
{
    // Drain and join the strands before the files close: every append
    // handed off before destruction lands on disk.
    pool_.reset();
    for (Stream &st : shards_)
        if (st.file)
            std::fclose(st.file);
}

std::uint64_t
ShardedJournalWriter::seqOf(std::uint64_t index) const
{
    return index / streams_;
}

std::uint64_t
ShardedJournalWriter::firstIndexOf(unsigned s) const
{
    return firstIndexOwned(base_, s, streams_);
}

std::string
ShardedJournalWriter::streamPath(const std::string &base, unsigned s,
                                 unsigned n)
{
    return n == 1 ? base : detail::concat(base, ".s", s);
}

void
ShardedJournalWriter::enableAsyncCommit()
{
    if (v2_) {
        v2_->enableAsyncCommit();
        return;
    }
    if (pool_)
        return;
    // One strand per stream on a shared pool: same-stream commits
    // stay FIFO (the crash guarantee is per stream), different
    // streams overlap — that overlap is the commit-throughput
    // scaling. At most one drain task per stream is ever queued, so
    // capacity == streams_ means submit() never blocks.
    pool_ = std::make_unique<Executor>(
        streams_, ExecutorOptions{.queueCapacity = streams_});
}

void
ShardedJournalWriter::appendEpoch(const EpochRecord &e, EpochId index)
{
    dp_assert(index == nextIndex_,
              "journal epochs must append in commit order");
    ++nextIndex_;
    if (v2_) {
        v2_->appendEpoch(e, index);
        return;
    }
    const unsigned s = static_cast<unsigned>(index % streams_);
    if (!pool_) {
        commitToStream(s, e, index);
        return;
    }
    std::unique_lock<std::mutex> lock(mu_);
    // Mirror the v2 bounded double-buffer per stream: one epoch
    // committing, one queued, then the producer back-pressures.
    room_.wait(lock,
               [&] { return shards_[s].pending.size() < 2; });
    shards_[s].pending.emplace_back(e, index);
    if (!shards_[s].running) {
        shards_[s].running = true;
        lock.unlock();
        pool_->submit([this, s] { drainStream(s); },
                      {.label = "journal-commit"});
    }
}

void
ShardedJournalWriter::drainStream(unsigned s)
{
    Stream &st = shards_[s];
    for (;;) {
        std::unique_lock<std::mutex> lock(mu_);
        if (st.pending.empty()) {
            st.running = false;
            idle_.notify_all();
            return;
        }
        auto [e, index] = std::move(st.pending.front());
        st.pending.pop_front();
        room_.notify_all();
        lock.unlock();
        commitToStream(s, e, index);
    }
}

void
ShardedJournalWriter::commitToStream(unsigned s, const EpochRecord &e,
                                     EpochId index)
{
    Stream &st = shards_[s];
    if (!st.aliveFlag)
        return;
    const std::uint64_t seq = seqOf(index);
    dp_assert(seq == st.nextSeq,
              "stream epochs must append in sequence order");
    ScopedTraceSpan span(trace_, TraceStage::Journal, s,
                         "journal-append", "journal");
    span.arg("epoch", index);
    span.arg("stream", s);

    if (faults_ && faults_->fire(FaultSite::StreamCrash, index)) {
        st.aliveFlag = false;
        return;
    }

    ByteWriter p;
    p.varu(index);
    p.varu(seq);
    p.varu(e.dirtyPages);
    p.varu(e.tpInstrs);
    writeEpochRecord(p, e);
    std::vector<std::uint8_t> frame =
        makeFrame(journalEpochKind, p.take());
    span.arg("bytes", frame.size());

    if (faults_ &&
        faults_->fire(FaultSite::StreamTornWrite, index)) {
        // Died mid-write on this stream only: a deterministic strict
        // prefix lands, siblings keep committing.
        std::size_t torn =
            1 + static_cast<std::size_t>(
                    mix64(0x7042f6a3c01d58b9ull ^
                          (index * 0x9e3779b97f4a7c15ull)) %
                    (frame.size() - 1));
        st.buf.insert(st.buf.end(), frame.begin(),
                      frame.begin() + torn);
        st.aliveFlag = false;
        flushTail(st);
        return;
    }

    st.buf.insert(st.buf.end(), frame.begin(), frame.end());
    if (faults_ && faults_->fire(FaultSite::StreamBitFlip, index)) {
        std::uint64_t h = mix64(0xb17f11b2d9c04e6full ^
                                (index * 0x9e3779b97f4a7c15ull));
        std::size_t pos = st.buf.size() - frame.size() +
                          static_cast<std::size_t>(h % frame.size());
        st.buf[pos] ^=
            static_cast<std::uint8_t>(1u << ((h >> 32) % 8));
    }
    st.nextSeq = seq + 1;
    st.frameEnds.push_back(st.buf.size());
    flushTail(st);
}

void
ShardedJournalWriter::flush() const
{
    if (v2_) {
        v2_->flush();
        return;
    }
    if (!pool_)
        return;
    std::unique_lock<std::mutex> lock(mu_);
    idle_.wait(lock, [&] {
        for (const Stream &st : shards_)
            if (st.running || !st.pending.empty())
                return false;
        return true;
    });
}

bool
ShardedJournalWriter::alive() const
{
    if (v2_)
        return v2_->alive();
    flush();
    for (const Stream &st : shards_)
        if (!st.aliveFlag)
            return false;
    return true;
}

bool
ShardedJournalWriter::streamAlive(unsigned s) const
{
    if (v2_)
        return v2_->alive();
    flush();
    return shards_[s].aliveFlag;
}

std::uint64_t
ShardedJournalWriter::epochsWritten() const
{
    return nextIndex_;
}

const std::vector<std::uint8_t> &
ShardedJournalWriter::streamBytes(unsigned s) const
{
    if (v2_)
        return v2_->bytes();
    flush();
    return shards_[s].buf;
}

const std::vector<std::size_t> &
ShardedJournalWriter::streamFrameEnds(unsigned s) const
{
    if (v2_)
        return v2_->frameEnds();
    flush();
    return shards_[s].frameEnds;
}

std::vector<std::vector<std::uint8_t>>
ShardedJournalWriter::imageSet() const
{
    std::vector<std::vector<std::uint8_t>> out;
    out.reserve(streams_);
    for (unsigned s = 0; s < streams_; ++s)
        out.push_back(streamBytes(s));
    return out;
}

std::size_t
ShardedJournalWriter::truncateCoveredSegments(
    std::uint64_t durable_epoch)
{
    if (v2_ || segmentEpochs_ == 0)
        return 0;
    // Nothing beyond the append cursor exists to be covered, and
    // truncating past it would leave stream headers claiming a base
    // ahead of their next frame's sequence number.
    durable_epoch = std::min(durable_epoch, nextIndex_);
    const std::uint64_t new_base =
        durable_epoch / segmentEpochs_ * segmentEpochs_;
    if (new_base <= base_)
        return 0;
    flush();
    std::size_t dropped = 0;
    for (unsigned s = 0; s < streams_; ++s) {
        Stream &st = shards_[s];
        // Frames below the new base, oldest first — per-stream frames
        // are in epoch order, so they are exactly a prefix.
        const std::uint64_t in_buf = st.frameEnds.size() - 1;
        const std::uint64_t first_seq = firstIndexOf(s) / streams_;
        const std::uint64_t keep_from_seq =
            firstIndexOwned(new_base, s, streams_) / streams_;
        const std::uint64_t drop = std::min<std::uint64_t>(
            in_buf, keep_from_seq - first_seq);

        std::vector<std::uint8_t> fresh = makeFrame(
            journalHeaderKind,
            streamHeaderPayload(s, streams_, new_base, *prog_, *cfg_,
                                fingerprint_));
        const std::size_t header_end = fresh.size();
        const std::size_t cut = st.frameEnds[drop];
        fresh.insert(fresh.end(), st.buf.begin() + cut,
                     st.buf.end());
        if (st.buf.size() > fresh.size())
            dropped += st.buf.size() - fresh.size();

        std::vector<std::size_t> ends;
        ends.push_back(header_end);
        for (std::size_t k = drop + 1; k < st.frameEnds.size(); ++k)
            ends.push_back(st.frameEnds[k] - cut + header_end);
        st.buf = std::move(fresh);
        st.frameEnds = std::move(ends);
    }
    base_ = new_base;
    // Restream the rewritten shards so the on-disk set matches.
    if (!basePath_.empty())
        streamTo(basePath_);
    return dropped;
}

bool
ShardedJournalWriter::streamTo(const std::string &base)
{
    if (v2_) {
        basePath_ = base;
        return v2_->streamTo(base);
    }
    flush();
    basePath_ = base;
    bool ok = true;
    for (unsigned s = 0; s < streams_; ++s) {
        Stream &st = shards_[s];
        if (st.file) {
            std::fclose(st.file);
            st.file = nullptr;
        }
        const std::string path = streamPath(base, s, streams_);
        st.file = std::fopen(path.c_str(), "wb");
        if (!st.file) {
            dp_warn("cannot open journal stream file ", path);
            ok = false;
            continue;
        }
        st.flushed = 0;
        flushTail(st);
    }
    return ok;
}

void
ShardedJournalWriter::flushTail(Stream &st)
{
    if (!st.file)
        return;
    if (st.flushed < st.buf.size()) {
        std::fwrite(st.buf.data() + st.flushed, 1,
                    st.buf.size() - st.flushed, st.file);
        st.flushed = st.buf.size();
    }
    std::fflush(st.file);
}

void
ShardedJournalWriter::setTrace(TraceRecorder *tr)
{
    if (v2_) {
        v2_->setTrace(tr);
        return;
    }
    trace_ = tr;
}

// ---------------------------------------------------------------------------
// Partitioned recovery

RecoveredShardedJournal
recoverShardedJournal(
    const std::vector<std::span<const std::uint8_t>> &streams,
    unsigned jobs, Executor *pool)
{
    RecoveredShardedJournal out;
    const unsigned n = static_cast<unsigned>(streams.size());
    out.streamCount = n;
    if (n == 0) {
        out.report.tailError = JournalError::MissingHeader;
        out.report.detail = "no journal streams";
        return out;
    }

    std::unique_ptr<Executor> own;
    Executor *ex = nullptr;
    if (jobs > 1) {
        if (pool) {
            ex = pool;
        } else {
            own = std::make_unique<Executor>(
                jobs,
                ExecutorOptions{.queueCapacity =
                                    std::max<std::size_t>(64, n)});
            ex = own.get();
        }
    }

    // Phase A: scan every stream independently — envelope, CRC,
    // sequence metadata. Pure per stream, so streams scan
    // concurrently; the per-stream verdicts cannot depend on jobs.
    std::vector<StreamScan> scans(n);
    if (ex && n > 1) {
        std::vector<TaskFuture<void>> waits;
        waits.reserve(n);
        for (unsigned s = 0; s < n; ++s)
            waits.push_back(ex->submit(
                [&scans, &streams, s] {
                    scans[s] = scanStream(streams[s]);
                },
                {.label = "journal-scan"}));
        for (TaskFuture<void> &w : waits)
            w.get();
    } else {
        for (unsigned s = 0; s < n; ++s)
            scans[s] = scanStream(streams[s]);
    }

    std::size_t total_bytes = 0;
    for (const StreamScan &sc : scans)
        total_bytes += sc.imageSize;

    // Cross-stream header validation. A stream is usable when its own
    // header validated, it sits in the right slot, and it agrees with
    // the canonical header suffix (majority wins; tie goes to the
    // group holding the lowest stream index).
    std::vector<bool> usable(n, false);
    for (unsigned s = 0; s < n; ++s) {
        StreamScan &sc = scans[s];
        if (!sc.report.headerOk)
            continue;
        if (sc.report.streamCount != n ||
            sc.report.streamIndex != s) {
            sc.report.tailError = JournalError::StreamMismatch;
            sc.report.errorOffset = 0;
            sc.report.detail = detail::concat(
                "stream header claims stream ", sc.report.streamIndex,
                " of ", sc.report.streamCount, " in slot ", s,
                " of a ", n, "-stream set");
            continue;
        }
        usable[s] = true;
    }
    std::map<std::vector<std::uint8_t>, std::vector<unsigned>> groups;
    for (unsigned s = 0; s < n; ++s)
        if (usable[s])
            groups[scans[s].sharedSuffix].push_back(s);
    const std::vector<unsigned> *majority = nullptr;
    for (const auto &[suffix, members] : groups) {
        if (!majority || members.size() > majority->size() ||
            (members.size() == majority->size() &&
             members.front() < majority->front()))
            majority = &members;
    }
    if (majority)
        for (unsigned s = 0; s < n; ++s) {
            if (!usable[s])
                continue;
            if (scans[s].sharedSuffix !=
                scans[(*majority)[0]].sharedSuffix) {
                usable[s] = false;
                scans[s].report.tailError =
                    JournalError::StreamMismatch;
                scans[s].report.errorOffset = 0;
                scans[s].report.detail =
                    "stream header disagrees with its siblings";
            }
        }

    out.streams.resize(n);
    for (unsigned s = 0; s < n; ++s)
        out.streams[s].report = scans[s].report;

    if (!majority) {
        // Not one trustworthy header: fail closed, nothing usable.
        const RecoveryReport &worst = scans[0].report;
        out.report = worst;
        out.report.headerOk = false;
        out.report.framesRecovered = 0;
        out.report.committedBytes = 0;
        out.report.bytesDiscarded = total_bytes;
        out.report.streamIndex = 0;
        out.report.streamCount = n;
        if (n > 1)
            out.report.detail =
                detail::concat("stream 0: ", worst.detail);
        return out;
    }

    const unsigned canonical = (*majority)[0];
    const std::uint64_t base = scans[canonical].report.baseEpoch;
    out.baseEpoch = base;
    out.optionsFingerprint = scans[canonical].fingerprint;
    out.report.headerOk = true;
    out.report.streamCount = n;
    out.report.baseEpoch = base;

    // The consistent cut E: the smallest epoch index missing from its
    // owning stream. Everything below E merges into a total order;
    // everything at or above it is unusable — fail closed.
    std::uint64_t cut = 0;
    unsigned limiting = 0;
    for (unsigned s = 0; s < n; ++s) {
        const std::uint64_t first_seq =
            firstIndexOwned(base, s, n) / n;
        const std::uint64_t committed =
            usable[s] ? scans[s].frames.size() : 0;
        const std::uint64_t missing =
            (first_seq + committed) * n + s;
        if (s == 0 || missing < cut) {
            cut = missing;
            limiting = s;
        }
    }

    // Phase B: decode the kept epochs, partitioned across the pool.
    // Writes land in disjoint slots; failures are merged to the
    // lowest epoch afterwards, so the result is independent of jobs.
    const std::uint64_t count = cut - base;
    std::vector<EpochRecord> epochs(
        static_cast<std::size_t>(count));
    std::mutex failures_mu;
    std::optional<DecodeFailure> failure;
    auto decodeRange = [&](std::uint64_t lo, std::uint64_t hi) {
        std::optional<DecodeFailure> local;
        for (std::uint64_t i = lo; i < hi && !local; ++i) {
            const unsigned s = static_cast<unsigned>(i % n);
            const StreamScan &sc = scans[s];
            const FrameRef &fr =
                sc.frames[static_cast<std::size_t>(i / n -
                                                   sc.firstSeq)];
            std::span<const std::uint8_t> payload =
                streams[s].subspan(fr.payloadOff, fr.payloadLen);
            try {
                ByteReader p(payload);
                p.varu(); // epoch index — validated by the scan
                if (sc.version == journalVersion3)
                    p.varu(); // stream sequence — likewise
                std::uint64_t dirty = p.varu();
                std::uint64_t tp_instrs = p.varu();
                EpochRecord e = readEpochRecord(p, i);
                if (!p.atEnd())
                    throw FrameScanError{
                        JournalError::BadPayload, fr.payloadOff,
                        "trailing bytes in an epoch payload"};
                e.dirtyPages = dirty;
                e.tpInstrs = tp_instrs;
                epochs[static_cast<std::size_t>(i - base)] =
                    std::move(e);
            } catch (const FrameScanError &f) {
                local = DecodeFailure{i, f.error, f.offset, f.detail};
            } catch (const RecordingDecodeError &f) {
                local = DecodeFailure{i, JournalError::BadPayload,
                                      fr.payloadOff + f.offset,
                                      f.detail};
            } catch (const ByteStreamError &e2) {
                local = DecodeFailure{i, JournalError::BadPayload,
                                      fr.payloadOff + e2.offset,
                                      "epoch payload ended early"};
            } catch (const std::bad_alloc &) {
                local = DecodeFailure{
                    i, JournalError::BadPayload, fr.payloadOff,
                    "allocation rejected while recovering"};
            }
        }
        if (local) {
            std::lock_guard<std::mutex> lock(failures_mu);
            if (!failure || local->epoch < failure->epoch)
                failure = std::move(local);
        }
    };
    if (ex && jobs > 1 && count > 1) {
        const std::uint64_t chunks =
            std::min<std::uint64_t>(jobs, count);
        const std::uint64_t per = (count + chunks - 1) / chunks;
        std::vector<TaskFuture<void>> waits;
        for (std::uint64_t c = 0; c < chunks; ++c) {
            const std::uint64_t lo = base + c * per;
            const std::uint64_t hi =
                std::min<std::uint64_t>(lo + per, cut);
            waits.push_back(
                ex->submit([&, lo, hi] { decodeRange(lo, hi); },
                           {.label = "journal-decode"}));
        }
        for (TaskFuture<void> &w : waits)
            w.get();
    } else {
        decodeRange(base, cut);
    }
    if (failure) {
        cut = failure->epoch;
        limiting = static_cast<unsigned>(cut % n);
        epochs.resize(static_cast<std::size_t>(cut - base));
    }
    out.consistentEpochs = cut;

    // Per-stream kept prefixes under the (possibly shrunk) cut.
    std::size_t committed_bytes = 0;
    bool any_beyond_cut = false;
    bool all_clean = true;
    for (unsigned s = 0; s < n; ++s) {
        StreamRecovery &sr = out.streams[s];
        if (!usable[s]) {
            all_clean = false;
            any_beyond_cut = true;
            continue;
        }
        sr.framesKept = epochsOwnedBelow(base, cut, s, n);
        sr.keptBytes =
            sr.framesKept == 0
                ? scans[s].headerEnd
                : scans[s]
                      .frames[static_cast<std::size_t>(
                          sr.framesKept - 1)]
                      .frameEnd;
        committed_bytes += sr.keptBytes;
        if (scans[s].frames.size() > sr.framesKept)
            any_beyond_cut = true;
        if (sr.report.tailError != JournalError::None)
            all_clean = false;
    }
    out.report.framesRecovered = cut - base;
    out.report.committedBytes = committed_bytes;
    out.report.bytesDiscarded = total_bytes - committed_bytes;

    if (failure) {
        out.report.tailError = failure->error;
        out.report.errorOffset = failure->offset;
        out.report.streamIndex = limiting;
        out.report.detail =
            n > 1 ? detail::concat("stream ", limiting, ": ",
                                   failure->detail)
                  : failure->detail;
    } else if (all_clean && !any_beyond_cut) {
        out.report.tailError = JournalError::None;
        out.report.streamIndex = limiting;
    } else {
        const RecoveryReport &lr = out.streams[limiting].report;
        out.report.streamIndex = limiting;
        if (lr.tailError != JournalError::None) {
            out.report.tailError = lr.tailError;
            out.report.errorOffset = lr.errorOffset;
            out.report.detail =
                n > 1 ? detail::concat("stream ", limiting, ": ",
                                       lr.detail)
                      : lr.detail;
        } else {
            // Every stream is individually intact but one stopped
            // behind its siblings: frames beyond the cut were
            // discarded to keep the total order contiguous.
            out.report.tailError = JournalError::InconsistentCut;
            out.report.errorOffset =
                out.streams[limiting].keptBytes;
            out.report.detail = detail::concat(
                "stream ", limiting, " ends at epoch ", cut,
                " behind its siblings");
        }
    }

    // Reassemble the replayable prefix (or, for a truncated journal,
    // the tail to apply on top of the covering checkpoint).
    if (base > 0) {
        out.tailEpochs = std::move(epochs);
        return out;
    }
    out.recording = std::make_unique<Recording>(
        *scans[canonical].prog, *scans[canonical].cfg);
    Recording &rec = *out.recording;
    rec.epochs = std::move(epochs);
    rec.stats.epochs = static_cast<std::uint32_t>(rec.epochs.size());
    for (const EpochRecord &e : rec.epochs) {
        rec.stats.rollbacks += e.diverged ? 1 : 0;
        rec.stats.checkpointPages += e.dirtyPages;
        rec.stats.tpTotalCycles += e.tpCycles;
        rec.stats.epTotalCycles += e.epCycles;
        rec.stats.tpInstrs += e.tpInstrs;
        rec.stats.epInstrs += e.epInstrs;
    }
    rec.finalStateHash =
        rec.epochs.empty()
            ? Machine(rec.program(), rec.config()).stateHash()
            : rec.epochs.back().endStateHash;
    return out;
}

} // namespace dp
