file(REMOVE_RECURSE
  "libdp_timing.a"
)
