/**
 * @file
 * Shared scaffolding for the table/figure bench binaries.
 */

#ifndef DP_BENCH_BENCH_COMMON_HH
#define DP_BENCH_BENCH_COMMON_HH

#include <iostream>
#include <string>

#include "common/stats.hh"
#include "common/table.hh"
#include "harness/experiment.hh"

namespace dp::bench
{

/** Default measurement shape shared by the overhead experiments:
 *  scale 32 gives ~25-50 epochs per run at the default epoch length,
 *  long enough that the pipeline reaches steady state. */
inline harness::MeasureOptions
defaultOptions(std::uint32_t threads)
{
    harness::MeasureOptions o;
    o.threads = threads;
    o.totalCpus = 2 * threads; // the paper's "with spare cores" shape
    o.scale = 32;
    o.epochLength = 150'000;
    return o;
}

/** Print the experiment banner every bench emits. */
inline void
banner(const std::string &id, const std::string &title,
       const std::string &provenance)
{
    std::cout << "\n=== " << id << ": " << title << " ===\n"
              << "provenance: " << provenance << "\n\n";
}

} // namespace dp::bench

#endif // DP_BENCH_BENCH_COMMON_HH
